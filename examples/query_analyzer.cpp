// Analyzes a zoo of join queries and prints, for each, the structural
// parameters the paper's theorems are stated against (acyclicity, treewidth,
// core, rho*) plus the applicable conditional lower-bound certificates and
// the recommended evaluation algorithm.

#include <cstdio>
#include <string>
#include <vector>

#include "core/analyzer.h"

int main() {
  using namespace qc;

  struct Entry {
    std::string name;
    db::JoinQuery query;
  };
  std::vector<Entry> zoo;

  {
    db::JoinQuery q;
    q.Add("R", {"a", "b"}).Add("S", {"b", "c"}).Add("T", {"c", "d"});
    zoo.push_back({"path P4: R(a,b) S(b,c) T(c,d)", q});
  }
  {
    db::JoinQuery q;
    q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
    zoo.push_back({"triangle: R1(a,b) R2(a,c) R3(b,c)", q});
  }
  {
    db::JoinQuery q;
    q.Add("R1", {"a", "b"}).Add("R2", {"b", "c"}).Add("R3", {"c", "d"}).Add(
        "R4", {"d", "a"});
    zoo.push_back({"4-cycle", q});
  }
  {
    db::JoinQuery q;
    q.Add("R1", {"c", "x"}).Add("R2", {"c", "y"}).Add("R3", {"c", "z"});
    zoo.push_back({"star (3 leaves)", q});
  }
  {
    // 5-clique query: all pairs among 5 attributes.
    db::JoinQuery q;
    const char* names[] = {"a", "b", "c", "d", "e"};
    int idx = 0;
    for (int i = 0; i < 5; ++i) {
      for (int j = i + 1; j < 5; ++j) {
        q.Add("E" + std::to_string(idx++), {names[i], names[j]});
      }
    }
    zoo.push_back({"5-clique (all pairs)", q});
  }
  {
    // Self-join that collapses to a smaller core: E(a,b), E(c,b).
    db::JoinQuery q;
    q.Add("E", {"a", "b"}).Add("E", {"c", "b"});
    zoo.push_back({"self-join E(a,b) E(c,b) (core collapses)", q});
  }
  {
    // Ternary acyclic query.
    db::JoinQuery q;
    q.Add("R", {"a", "b", "c"}).Add("S", {"c", "d"}).Add("T", {"c", "e"});
    zoo.push_back({"ternary acyclic: R(a,b,c) S(c,d) T(c,e)", q});
  }

  for (const auto& entry : zoo) {
    std::printf("==================================================\n");
    std::printf("query: %s\n", entry.name.c_str());
    std::printf("--------------------------------------------------\n%s\n\n",
                core::AnalyzeQuery(entry.query).ToString().c_str());
  }
  return 0;
}
