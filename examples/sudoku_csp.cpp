// Sudoku as a CSP (Section 2.2 in practice): 81 variables over domain
// {0..8}, binary disequality constraints along rows, columns and boxes, plus
// unary clues. Solved with the library's backtracking solver (MRV + forward
// checking); also reports what the structural analyzer says about the
// instance (the sudoku primal graph has large treewidth, so no Theorem 4.2
// shortcut applies).

#include <cstdio>
#include <string>

#include "core/analyzer.h"
#include "csp/generators.h"
#include "csp/solver.h"

namespace {

constexpr char kPuzzle[] =
    "530070000"
    "600195000"
    "098000060"
    "800060003"
    "400803001"
    "700020006"
    "060000280"
    "000419005"
    "000080079";

int CellVar(int row, int col) { return 9 * row + col; }

}  // namespace

int main() {
  using namespace qc;

  csp::CspInstance sudoku;
  sudoku.num_vars = 81;
  sudoku.domain_size = 9;
  csp::Relation neq = csp::DisequalityRelation(9);

  // Row, column, and box disequalities.
  for (int r = 0; r < 9; ++r) {
    for (int c = 0; c < 9; ++c) {
      for (int c2 = c + 1; c2 < 9; ++c2) {
        sudoku.AddConstraint({CellVar(r, c), CellVar(r, c2)}, neq);
        sudoku.AddConstraint({CellVar(c, r), CellVar(c2, r)}, neq);
      }
    }
  }
  for (int br = 0; br < 3; ++br) {
    for (int bc = 0; bc < 3; ++bc) {
      for (int i = 0; i < 9; ++i) {
        for (int j = i + 1; j < 9; ++j) {
          int v1 = CellVar(3 * br + i / 3, 3 * bc + i % 3);
          int v2 = CellVar(3 * br + j / 3, 3 * bc + j % 3);
          sudoku.AddConstraint({v1, v2}, neq);
        }
      }
    }
  }
  // Clues as unary constraints.
  for (int cell = 0; cell < 81; ++cell) {
    char ch = kPuzzle[cell];
    if (ch != '0') {
      csp::Relation pin(1);
      pin.Add({ch - '1'});
      sudoku.AddConstraint({cell}, std::move(pin));
    }
  }

  core::Analysis analysis =
      core::AnalyzeCsp(sudoku, core::AnalyzerOptions{.exact_treewidth_below = 0,
                                                     .core_computation_below = 0});
  std::printf("sudoku as CSP: %d variables, %zu constraints, treewidth <= %d\n\n",
              sudoku.num_vars, sudoku.constraints.size(), analysis.treewidth);

  csp::BacktrackingSolver solver;
  csp::CspSolution sol = solver.Solve(sudoku);
  if (!sol.found) {
    std::printf("no solution (puzzle inconsistent)\n");
    return 1;
  }
  std::printf("solved in %llu search nodes, %llu backtracks:\n\n",
              static_cast<unsigned long long>(sol.stats.nodes),
              static_cast<unsigned long long>(sol.stats.backtracks));
  for (int r = 0; r < 9; ++r) {
    std::string line;
    for (int c = 0; c < 9; ++c) {
      line += static_cast<char>('1' + sol.assignment[CellVar(r, c)]);
      line += (c == 2 || c == 5) ? " | " : " ";
    }
    std::printf("  %s\n", line.c_str());
    if (r == 2 || r == 5) std::printf("  ---------------------\n");
  }
  return 0;
}
