// Quickstart: the paper's running example, end to end.
//
// Builds the triangle join query Q = R1(a,b) |><| R2(a,c) |><| R3(b,c),
// analyzes its structure (treewidth, fractional edge cover, certificates),
// evaluates it with the worst-case-optimal Generic Join, and shows the AGM
// bound N^{3/2} both on a random database and on the extremal instance of
// Theorem 3.2, where it is met exactly.

#include <cstdio>

#include "core/analyzer.h"
#include "db/agm.h"
#include "db/generic_join.h"
#include "db/joins.h"
#include "util/rng.h"

int main() {
  using namespace qc;

  db::JoinQuery query;
  query.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});

  std::printf("=== Structural analysis (Marx, PODS 2021) ===\n%s\n\n",
              core::AnalyzeQuery(query).ToString().c_str());

  // A random database with N = 200 tuples per relation.
  util::Rng rng(42);
  db::Database random_db = db::RandomDatabase(query, 200, 40, &rng);
  auto agm = db::AnalyzeAgm(query);
  db::GenericJoin join(query, random_db);
  std::uint64_t answer = join.Count();
  std::printf("=== Random database ===\n");
  std::printf("N = %zu tuples/relation, |Q(D)| = %llu, AGM bound N^1.5 = %.0f\n\n",
              random_db.MaxRelationSize(),
              static_cast<unsigned long long>(answer),
              agm->BoundForN(static_cast<double>(random_db.MaxRelationSize())));

  // The extremal database of Theorem 3.2 meets the bound exactly.
  long long n = 0;
  db::Database tight_db = db::AgmTightInstance(query, *agm, 12, &n);
  std::uint64_t tight_answer = db::GenericJoin(query, tight_db).Count();
  std::printf("=== Extremal database (Theorem 3.2) ===\n");
  std::printf("N = %lld, |Q(D)| = %llu, bound N^1.5 = %.0f (met exactly)\n\n",
              n, static_cast<unsigned long long>(tight_answer),
              agm->BoundForN(static_cast<double>(n)));

  // Contrast: a binary join plan materializes a quadratic intermediate on
  // the extremal instance; Generic Join never exceeds the output size.
  db::JoinStats stats;
  db::EvaluateGreedyBinaryJoin(query, tight_db, &stats);
  std::printf("binary plan max intermediate: %llu tuples\n",
              static_cast<unsigned long long>(stats.max_intermediate));
  std::printf("generic join answer size:     %llu tuples\n",
              static_cast<unsigned long long>(tight_answer));
  return 0;
}
