// Interactive/stdin query runner built on the qc::api layer: reads a join
// query plus relation contents in the shared dataset format, loads them via
// api::LoadDataset, and evaluates with api::ExecuteQuery — the same entry
// points qc_serverd serves over the wire, so CLI and daemon cannot drift.
//
// Input format (stdin, or a file given as the positional argument):
//
//   query: R(a,b), S(b,c)
//   relation R:
//   1 2
//   2 3
//   relation S:
//   2 10
//   3 11
//
// Repeating a "relation X:" block appends its tuples to the existing
// relation instead of replacing it. Malformed rows — parse errors, arity
// mismatches — are reported with their 1-based input line number, every bad
// statement (not just the first). `--on-input-error abort` (default)
// rejects the whole input and applies nothing; `--on-input-error continue`
// applies the valid rows and reports each skipped one.
//
// Flags are the shared session set (see --help): --threads, --deadline-ms,
// --max-rows, --index-cache-mb, --report-json, --on-input-error. On
// truncation the status and effort counters are printed and the exit code
// reports the cause (4 deadline, 5 budget, 6 cancelled; 1 is a
// usage/parse/input error). Running with no stdin redirection uses a
// built-in demo input.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unistd.h>

#include "api/query_api.h"
#include "api/session_options.h"
#include "db/database.h"

namespace {

constexpr char kDemo[] =
    "query: R1(a,b), R2(a,c), R3(b,c)\n"
    "relation R1:\n0 1\n1 2\n2 0\n0 2\n"
    "relation R2:\n0 1\n1 2\n2 0\n0 2\n"
    "relation R3:\n0 1\n1 2\n2 0\n0 2\n";

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s%s [input-file]\n", argv0,
               qc::api::SessionFlagsUsage().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qc;

  api::SessionOptions options;
  const char* input_path = nullptr;
  for (int i = 1; i < argc;) {
    std::string error;
    int consumed = api::ParseSessionFlag(argc, argv, i, &options, &error);
    if (consumed < 0) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return Usage(argv[0]);
    }
    if (consumed > 0) {
      i += consumed;
      continue;
    }
    if (argv[i][0] == '-' && argv[i][1] != '\0') {
      return Usage(argv[0]);
    }
    if (input_path != nullptr) return Usage(argv[0]);
    input_path = argv[i];
    ++i;
  }

  std::string input;
  if (input_path != nullptr) {
    std::ifstream file(input_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", input_path);
      return 1;
    }
    std::stringstream ss;
    ss << file.rdbuf();
    input = ss.str();
  } else if (isatty(fileno(stdin))) {
    std::printf("(no input; using the built-in triangle demo)\n\n");
    input = kDemo;
  } else {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    input = ss.str();
  }
  if (input.find("query:") == std::string::npos) {
    std::printf("(no query in input; using the built-in triangle demo)\n\n");
    input = kDemo;
  }

  db::Database database;
  api::DatasetLoad load =
      api::LoadDataset(input, &database, options.continue_on_input_error);
  for (const api::InputDiagnostic& d : load.diagnostics) {
    std::fprintf(stderr, "input error: %s\n", d.ToString().c_str());
  }
  if (!load.ok) {
    std::fprintf(stderr, "input rejected (%zu error%s); nothing applied\n",
                 load.diagnostics.size(),
                 load.diagnostics.size() == 1 ? "" : "s");
    return 1;
  }
  if (load.tuples_skipped > 0) {
    std::fprintf(stderr, "(continuing past %zu bad row%s)\n",
                 load.tuples_skipped, load.tuples_skipped == 1 ? "" : "s");
  }

  api::QueryRequest request;
  request.query_text = load.query_text;
  request.options = options;
  request.want_analysis = true;
  // The CLI owns the process-wide Trace, so span collection is safe here
  // (unlike qc_serverd, which serves concurrent requests).
  request.collect_trace = !options.report_json.empty();

  auto cache = options.MakeIndexCache();
  api::QueryResponse resp =
      api::ExecuteQuery(request, database, cache.get());
  if (!resp.input_ok) {
    std::fprintf(stderr, "%s\n", resp.error.c_str());
    return 1;
  }

  std::printf("=== analysis ===\n%s\n", resp.analysis_text.c_str());
  std::printf("\n");
  std::printf("=== answer (via %s): %zu tuples%s ===\n", resp.method.c_str(),
              resp.result.tuples.size(),
              resp.result.truncated ? " (truncated)" : "");
  std::string header;
  for (const auto& a : resp.result.attributes) header += a + " ";
  std::printf("%s\n", header.c_str());
  std::size_t shown = 0;
  for (const auto& t : resp.result.tuples) {
    std::string row;
    for (db::Value v : t) row += std::to_string(v) + " ";
    std::printf("%s\n", row.c_str());
    if (++shown == 20 && resp.result.tuples.size() > 20) {
      std::printf("... (%zu more)\n", resp.result.tuples.size() - 20);
      break;
    }
  }
  if (resp.status != util::RunStatus::kCompleted) {
    std::printf("\nstatus: %s after %llu output rows (partial answer)\n",
                std::string(util::ToString(resp.status)).c_str(),
                static_cast<unsigned long long>(resp.report.budget.rows_used));
  }
  if (!resp.report.counters.empty()) {
    std::printf("\n=== effort (threads=%d) ===\n%s\n", resp.report.threads,
                resp.report.counters.ToString().c_str());
  }

  resp.report.tool = "query_cli";
  return api::FinishReport(options, resp.report, resp.status);
}
