// Interactive/stdin query runner built on the text parser: reads a join
// query, relation contents, and evaluates it with the auto-router, printing
// the structural analysis first.
//
// Input format (stdin, or a file given as argv[1]):
//
//   query: R(a,b), S(b,c)
//   relation R:
//   1 2
//   2 3
//   relation S:
//   2 10
//   3 11
//
// Running with no stdin redirection uses a built-in demo input.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unistd.h>

#include "core/analyzer.h"
#include "core/autosolver.h"
#include "core/context.h"
#include "db/parser.h"
#include "util/counters.h"

namespace {

constexpr char kDemo[] =
    "query: R1(a,b), R2(a,c), R3(b,c)\n"
    "relation R1:\n0 1\n1 2\n2 0\n0 2\n"
    "relation R2:\n0 1\n1 2\n2 0\n0 2\n"
    "relation R3:\n0 1\n1 2\n2 0\n0 2\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace qc;

  std::string input;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << file.rdbuf();
    input = ss.str();
  } else if (isatty(fileno(stdin))) {
    std::printf("(no input; using the built-in triangle demo)\n\n");
    input = kDemo;
  } else {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    input = ss.str();
  }
  if (input.find("query:") == std::string::npos) {
    std::printf("(no query in input; using the built-in triangle demo)\n\n");
    input = kDemo;
  }

  // Split into the query line and "relation <name>:" blocks.
  std::istringstream in(input);
  std::string line, query_text;
  db::Database database;
  std::string current_relation, current_body;
  auto flush_relation = [&]() -> bool {
    if (current_relation.empty()) return true;
    auto tuples = db::ParseTuples(current_body);
    if (!tuples) {
      std::fprintf(stderr, "relation %s: %s\n", current_relation.c_str(),
                   tuples.error.ToString().c_str());
      return false;
    }
    int arity = tuples->empty() ? 1 : static_cast<int>((*tuples)[0].size());
    database.SetRelation(current_relation, arity, std::move(*tuples));
    current_relation.clear();
    current_body.clear();
    return true;
  };
  while (std::getline(in, line)) {
    if (line.rfind("query:", 0) == 0) {
      query_text = line.substr(6);
    } else if (line.rfind("relation ", 0) == 0) {
      if (!flush_relation()) return 1;
      std::size_t colon = line.find(':');
      current_relation = line.substr(9, colon - 9);
    } else {
      current_body += line + "\n";
    }
  }
  if (!flush_relation()) return 1;

  auto query = db::ParseJoinQuery(query_text);
  if (!query) {
    std::fprintf(stderr, "query parse error: %s\n",
                 query.error.ToString().c_str());
    return 1;
  }
  for (const auto& atom : query->atoms) {
    if (!database.HasRelation(atom.relation)) {
      std::fprintf(stderr, "missing relation %s\n", atom.relation.c_str());
      return 1;
    }
  }

  util::Counters counters;
  ExecutionContext ctx;
  ctx.counters = &counters;

  std::printf("=== analysis ===\n%s\n\n",
              core::AnalyzeQuery(*query, ctx).ToString().c_str());
  core::AutoQueryResult result = core::EvaluateQueryAuto(*query, database, ctx);
  std::printf("=== answer (via %s): %zu tuples ===\n",
              core::ToString(result.method).c_str(),
              result.result.tuples.size());
  std::string header;
  for (const auto& a : result.result.attributes) header += a + " ";
  std::printf("%s\n", header.c_str());
  std::size_t shown = 0;
  for (const auto& t : result.result.tuples) {
    std::string row;
    for (db::Value v : t) row += std::to_string(v) + " ";
    std::printf("%s\n", row.c_str());
    if (++shown == 20 && result.result.tuples.size() > 20) {
      std::printf("... (%zu more)\n", result.result.tuples.size() - 20);
      break;
    }
  }
  if (!counters.empty()) {
    std::printf("\n=== effort (threads=%d) ===\n%s\n",
                ctx.ResolvedThreads(), counters.ToString().c_str());
  }
  return 0;
}
