// Interactive/stdin query runner built on the text parser: reads a join
// query, relation contents, and evaluates it with the auto-router, printing
// the structural analysis first.
//
// Input format (stdin, or a file given as the positional argument):
//
//   query: R(a,b), S(b,c)
//   relation R:
//   1 2
//   2 3
//   relation S:
//   2 10
//   3 11
//
// Repeating a "relation X:" block appends its tuples to the existing
// relation (AddTuple per row) instead of replacing it; malformed rows —
// arity mismatches, appends to unknown relations — are reported as
// diagnostics with exit code 1, never a process abort.
//
// Flags: --deadline-ms N caps wall-clock time, --max-rows N caps the answer
// size, --index-cache-mb N enables a shared trie-index cache of that many
// MiB (0 = off; answers are identical either way, repeated/self-join atoms
// just skip rebuilding their indexes), --report-json FILE writes a
// machine-readable RunReport (status, budget usage, cache usage, counters,
// span tree). On truncation the status and effort counters are printed and
// the exit code reports the cause (4 deadline, 5 budget, 6 cancelled; 1 is
// a usage/parse/input error). Running with no stdin redirection uses a
// built-in demo input.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <unistd.h>

#include "core/analyzer.h"
#include "core/autosolver.h"
#include "core/context.h"
#include "db/index_cache.h"
#include "db/parser.h"
#include "util/budget.h"
#include "util/counters.h"
#include "util/run_report.h"
#include "util/trace.h"

namespace {

constexpr char kDemo[] =
    "query: R1(a,b), R2(a,c), R3(b,c)\n"
    "relation R1:\n0 1\n1 2\n2 0\n0 2\n"
    "relation R2:\n0 1\n1 2\n2 0\n0 2\n"
    "relation R3:\n0 1\n1 2\n2 0\n0 2\n";

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--deadline-ms N] [--max-rows N] "
               "[--index-cache-mb N] [--report-json FILE] [input-file]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qc;

  std::uint64_t deadline_ms = 0;
  std::uint64_t max_rows = 0;
  std::uint64_t index_cache_mb = 0;
  const char* report_path = nullptr;
  const char* input_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    auto flag_value = [&](const char* name, std::uint64_t* out) {
      if (std::strcmp(argv[i], name) != 0) return false;
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      *out = std::strtoull(argv[++i], &end, 10);
      return end != nullptr && *end == '\0';
    };
    if (std::strcmp(argv[i], "--deadline-ms") == 0 ||
        std::strcmp(argv[i], "--max-rows") == 0 ||
        std::strcmp(argv[i], "--index-cache-mb") == 0) {
      const char* name = argv[i];
      std::uint64_t* out = std::strcmp(name, "--deadline-ms") == 0
                               ? &deadline_ms
                               : std::strcmp(name, "--max-rows") == 0
                                     ? &max_rows
                                     : &index_cache_mb;
      if (!flag_value(name, out)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--report-json") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      report_path = argv[++i];
    } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
      return Usage(argv[0]);
    } else if (input_path == nullptr) {
      input_path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }

  std::string input;
  if (input_path != nullptr) {
    std::ifstream file(input_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", input_path);
      return 1;
    }
    std::stringstream ss;
    ss << file.rdbuf();
    input = ss.str();
  } else if (isatty(fileno(stdin))) {
    std::printf("(no input; using the built-in triangle demo)\n\n");
    input = kDemo;
  } else {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    input = ss.str();
  }
  if (input.find("query:") == std::string::npos) {
    std::printf("(no query in input; using the built-in triangle demo)\n\n");
    input = kDemo;
  }

  // Split into the query line and "relation <name>:" blocks.
  std::istringstream in(input);
  std::string line, query_text;
  db::Database database;
  std::string current_relation, current_body;
  auto flush_relation = [&]() -> bool {
    if (current_relation.empty()) return true;
    auto tuples = db::ParseTuples(current_body);
    if (!tuples) {
      std::fprintf(stderr, "relation %s: %s\n", current_relation.c_str(),
                   tuples.error.ToString().c_str());
      return false;
    }
    if (database.HasRelation(current_relation)) {
      // A repeated "relation X:" block appends to the existing relation.
      for (auto& t : *tuples) {
        db::MutationResult added =
            database.AddTuple(current_relation, std::move(t));
        if (!added) {
          // The mutation diagnostic already names the relation.
          std::fprintf(stderr, "input error: %s\n", added.message.c_str());
          return false;
        }
      }
    } else {
      int arity = tuples->empty() ? 1 : static_cast<int>((*tuples)[0].size());
      db::MutationResult set =
          database.SetRelation(current_relation, arity, std::move(*tuples));
      if (!set) {
        std::fprintf(stderr, "input error: %s\n", set.message.c_str());
        return false;
      }
    }
    current_relation.clear();
    current_body.clear();
    return true;
  };
  while (std::getline(in, line)) {
    if (line.rfind("query:", 0) == 0) {
      query_text = line.substr(6);
    } else if (line.rfind("relation ", 0) == 0) {
      if (!flush_relation()) return 1;
      std::size_t colon = line.find(':');
      current_relation = line.substr(9, colon - 9);
    } else {
      current_body += line + "\n";
    }
  }
  if (!flush_relation()) return 1;

  auto query = db::ParseJoinQuery(query_text);
  if (!query) {
    std::fprintf(stderr, "query parse error: %s\n",
                 query.error.ToString().c_str());
    return 1;
  }
  for (const auto& atom : query->atoms) {
    if (!database.HasRelation(atom.relation)) {
      std::fprintf(stderr, "missing relation %s\n", atom.relation.c_str());
      return 1;
    }
  }

  util::Counters counters;
  ExecutionContext ctx;
  ctx.counters = &counters;
  std::unique_ptr<db::IndexCache> index_cache;
  if (index_cache_mb > 0) {
    index_cache = std::make_unique<db::IndexCache>(
        static_cast<std::size_t>(index_cache_mb) << 20);
    ctx.index_cache = index_cache.get();
  }
  // One budget shared by the analysis and the evaluation: the deadline is
  // end-to-end, and the row meter survives across both phases.
  auto budget = std::make_shared<util::Budget>();
  if (deadline_ms > 0) {
    budget->ArmDeadlineAfter(static_cast<double>(deadline_ms) / 1000.0);
  }
  if (max_rows > 0) budget->ArmRowLimit(max_rows);
  ctx.budget = budget;
  if (report_path != nullptr) util::Trace::Enable();
  auto run_start = std::chrono::steady_clock::now();

  core::Analysis analysis = core::AnalyzeQuery(*query, ctx);
  std::printf("=== analysis ===\n%s\n", analysis.ToString().c_str());
  if (analysis.status != util::RunStatus::kCompleted) {
    std::printf("(analysis degraded to heuristic measures: %s)\n",
                std::string(util::ToString(analysis.status)).c_str());
  }
  std::printf("\n");
  core::AutoQueryResult result = core::EvaluateQueryAuto(*query, database, ctx);
  std::printf("=== answer (via %s): %zu tuples%s ===\n",
              core::ToString(result.method).c_str(),
              result.result.tuples.size(),
              result.result.truncated ? " (truncated)" : "");
  std::string header;
  for (const auto& a : result.result.attributes) header += a + " ";
  std::printf("%s\n", header.c_str());
  std::size_t shown = 0;
  for (const auto& t : result.result.tuples) {
    std::string row;
    for (db::Value v : t) row += std::to_string(v) + " ";
    std::printf("%s\n", row.c_str());
    if (++shown == 20 && result.result.tuples.size() > 20) {
      std::printf("... (%zu more)\n", result.result.tuples.size() - 20);
      break;
    }
  }
  if (result.status != util::RunStatus::kCompleted) {
    std::printf("\nstatus: %s after %llu output rows (partial answer)\n",
                std::string(util::ToString(result.status)).c_str(),
                static_cast<unsigned long long>(budget->rows_used()));
  }
  if (index_cache != nullptr) index_cache->ExportCounters(&counters);
  if (!counters.empty()) {
    std::printf("\n=== effort (threads=%d) ===\n%s\n",
                ctx.ResolvedThreads(), counters.ToString().c_str());
  }
  if (report_path != nullptr) {
    util::RunReport report;
    report.tool = "query_cli";
    report.status = result.status;
    report.threads = ctx.ResolvedThreads();
    report.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - run_start)
                         .count();
    report.FillBudget(*budget, deadline_ms > 0);
    if (index_cache != nullptr) {
      db::IndexCacheStats cache_stats = index_cache->stats();
      report.cache.enabled = true;
      report.cache.hits = cache_stats.hits;
      report.cache.misses = cache_stats.misses;
      report.cache.evictions = cache_stats.evictions;
      report.cache.bytes = cache_stats.bytes;
      report.cache.capacity_bytes = cache_stats.capacity_bytes;
      report.cache.entries = cache_stats.entries;
    }
    report.counters = counters;
    report.counters.Set("threads", ctx.ResolvedThreads());
    report.trace = util::Trace::Collect();
    util::Trace::Disable();
    if (!report.WriteJsonFile(report_path)) return 1;
  }
  if (!util::IsKnown(result.status)) {
    // Fall-through of the status enum: report it loudly instead of exiting
    // with a silent "?" — exit code 7 marks the internal error.
    std::fprintf(stderr,
                 "internal error: unknown run status %d (please report)\n",
                 static_cast<int>(result.status));
  }
  return util::ExitCode(result.status);
}
