// A tour of the paper's reductions on one concrete input: a random graph
// with a planted 4-clique. The same question — "is there a 4-clique?" — is
// answered in all four domains of Section 2:
//
//   graphs                 direct k-clique search
//   CSP                    the k-variable clique CSP of Section 5
//   Special CSP            Definition 4.3 (clique + 2^k path)
//   partitioned subgraph   the microstructure view of Section 2.3
//   relational structures  homomorphism K_4 -> G
//
// and once more through SAT: a formula reduced to 3-colouring (Cor. 6.2).

#include <cstdio>

#include "csp/csp.h"
#include "csp/solver.h"
#include "graph/cliques.h"
#include "graph/coloring.h"
#include "graph/generators.h"
#include "graph/homomorphism.h"
#include "reductions/clique_reductions.h"
#include "reductions/sat_reductions.h"
#include "sat/dpll.h"
#include "sat/generators.h"
#include "structures/structure.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  util::Rng rng(7);

  const int k = 4;
  std::vector<int> planted;
  graph::Graph g = graph::PlantedClique(30, 0.25, k, &rng, &planted);
  std::printf("graph: 30 vertices, %d edges, planted %d-clique {%d %d %d %d}\n\n",
              g.num_edges(), k, planted[0], planted[1], planted[2],
              planted[3]);

  // 1. Direct search.
  auto direct = graph::FindKCliqueBruteForce(g, k);
  std::printf("[graphs]      brute-force search: %s\n",
              direct ? "clique found" : "none");

  // 2. Clique -> CSP (Section 5).
  csp::CspInstance clique_csp = reductions::CspFromClique(g, k);
  csp::CspSolution csp_sol = csp::BacktrackingSolver().Solve(clique_csp);
  std::printf("[CSP]         %d vars over |D|=%d: %s\n", clique_csp.num_vars,
              clique_csp.domain_size,
              csp_sol.found ? "solution found" : "unsatisfiable");

  // 3. Special CSP (Definition 4.3): k + 2^k variables.
  csp::CspInstance special = reductions::SpecialCspFromClique(g, k);
  csp::CspSolution special_sol = csp::BacktrackingSolver().Solve(special);
  std::printf("[special CSP] %d vars (k + 2^k): %s\n", special.num_vars,
              special_sol.found ? "solution found" : "unsatisfiable");

  // 4. Partitioned subgraph isomorphism on the microstructure (§2.3).
  csp::Microstructure ms = csp::BuildMicrostructure(clique_csp);
  auto psi = graph::FindPartitionedSubgraphIsomorphism(
      clique_csp.PrimalGraph(), ms.graph, ms.class_of);
  std::printf("[microstruct] partitioned subgraph isomorphism: %s\n",
              psi ? "embedding found" : "none");

  // 5. Homomorphism of relational structures (§2.4): K_k -> G.
  structures::Structure kk = structures::Structure::FromGraph(
      graph::Complete(k));
  structures::Structure sg = structures::Structure::FromGraph(g);
  auto hom = structures::FindHomomorphism(kk, sg);
  std::printf("[structures]  homomorphism K_%d -> G: %s\n\n", k,
              hom ? "exists" : "none");

  // All five answers must agree.
  bool answer = direct.has_value();
  if (csp_sol.found != answer || special_sol.found != answer ||
      psi.has_value() != answer || hom.has_value() != answer) {
    std::printf("DOMAIN DISAGREEMENT — this is a bug\n");
    return 1;
  }

  // Bonus: Corollary 6.2's reduction chain on a small formula.
  sat::CnfFormula f = sat::RandomKSat(6, 12, 3, &rng);
  reductions::ThreeColoringReduction tc = reductions::ThreeColoringFromSat(f);
  bool satisfiable = sat::SolveDpll(f).satisfiable;
  bool colorable = graph::FindKColoring(tc.graph, 3).has_value();
  std::printf("3SAT (6 vars, 12 clauses) -> 3-colouring (%d vertices): "
              "sat=%s, 3-colourable=%s\n",
              tc.graph.num_vertices(), satisfiable ? "yes" : "no",
              colorable ? "yes" : "no");
  return satisfiable == colorable ? 0 : 1;
}
