// A tour of the parameterized-algorithmics toolbox of Section 5 on one
// input graph: kernelization + bounded-depth branching for Vertex Cover
// (the FPT side), colour coding for k-Path, and the treewidth dynamic
// programs — against the brute-force baselines whose optimality the
// paper's lower bounds assert for the W[1]-hard problems (Clique).
//
// Flags are the shared qc::api session set: --deadline-ms N caps the
// tour's wall-clock time (the budgeted engines — exact treewidth, colour
// coding — stop at the next safe point; exit code 4), --threads N feeds
// the parallel engines. --max-rows N and --index-cache-mb N are accepted
// for interface parity with query_cli but the graph engines here produce
// no row stream and build no relational indexes (the report's cache
// section records the configured capacity with zero traffic).
// --report-json FILE writes a machine-readable RunReport (same schema as
// query_cli's, emitted through the same api::FinishReport path).

#include <chrono>
#include <cstdio>
#include <string>

#include "api/query_api.h"
#include "api/session_options.h"
#include "graph/cliques.h"
#include "graph/colorcoding.h"
#include "graph/generators.h"
#include "graph/nice_decomposition.h"
#include "graph/treewidth.h"
#include "graph/vertexcover.h"
#include "util/budget.h"
#include "util/rng.h"
#include "util/run_report.h"
#include "util/timer.h"
#include "util/trace.h"

namespace {

/// Shared by every exit path so --report-json sees aborted tours too.
struct ReportSink {
  qc::api::SessionOptions options;
  std::chrono::steady_clock::time_point start;

  /// Builds the tour's RunReport and hands it to api::FinishReport — the
  /// same finishing path query_cli and qc_serverd use. Returns the exit
  /// code.
  int Finish(const qc::util::Budget& budget, qc::util::RunStatus status) {
    qc::util::RunReport report;
    report.tool = "fpt_toolbox";
    report.status = status;
    report.threads = options.threads > 0 ? options.threads : 1;
    report.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    report.FillBudget(budget, options.deadline_ms > 0);
    report.cache.enabled = options.index_cache_mb > 0;
    report.cache.capacity_bytes = options.index_cache_mb << 20;
    if (!options.report_json.empty()) {
      report.trace = qc::util::Trace::Collect();
      qc::util::Trace::Disable();
    }
    return qc::api::FinishReport(options, report, status);
  }
};

ReportSink g_report;

/// If the shared budget tripped, report how and exit with its code.
int FinishIfTripped(qc::util::Budget* budget) {
  if (!budget->Stopped()) return 0;
  std::printf("\nstatus: %s (tour cut short)\n",
              std::string(qc::util::ToString(budget->status())).c_str());
  return g_report.Finish(*budget, budget->status());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qc;
  util::Rng rng(11);

  for (int i = 1; i < argc;) {
    std::string error;
    int consumed =
        api::ParseSessionFlag(argc, argv, i, &g_report.options, &error);
    if (consumed < 0) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (consumed == 0) {
      std::fprintf(stderr, "usage: %s%s\n", argv[0],
                   api::SessionFlagsUsage().c_str());
      return 1;
    }
    i += consumed;
  }
  auto budget_ptr = g_report.options.MakeBudget();
  util::Budget& budget = *budget_ptr;
  const int threads = g_report.options.threads;
  g_report.start = std::chrono::steady_clock::now();
  if (!g_report.options.report_json.empty()) util::Trace::Enable();

  // A sparse graph with some high-degree hubs: the friendly regime for the
  // Buss kernel.
  graph::Graph g = graph::SkewedGraph(400, 12, 0.8, 1, &rng);
  std::printf("graph: %d vertices, %d edges\n\n", g.num_vertices(),
              g.num_edges());

  // --- Vertex Cover: FPT via kernel + 2^k branching. The budget comes
  // from the maximal-matching 2-approximation, so a cover exists and the
  // branching descends greedily instead of exhausting 2^k.
  const int k = static_cast<int>(graph::TwoApproxVertexCover(g).size());
  util::Timer timer;
  graph::VertexCoverKernel kernel = graph::KernelizeVertexCover(g, k);
  std::printf("[vertex cover] Buss kernel for k = %d: %zu forced vertices, "
              "%zu residual vertices (%.2f ms)\n",
              k, kernel.forced.size(), kernel.kernel_vertices.size(),
              timer.Millis());
  // At a tight budget the high-degree rule actually fires: every hub with
  // degree > k' is forced into the cover.
  graph::VertexCoverKernel tight = graph::KernelizeVertexCover(g, 20);
  std::printf("[vertex cover] Buss kernel for k = 20: %zu forced hubs, "
              "verdict: %s\n",
              tight.forced.size(),
              tight.definitely_no ? "definitely no" : "undecided");
  timer.Reset();
  auto cover = graph::FindVertexCoverKernelized(g, k);
  std::printf("[vertex cover] kernelized 2^k branching: %s (%.2f ms)\n",
              cover ? "cover found" : "no cover <= k", timer.Millis());
  if (cover && !graph::IsVertexCover(g, *cover)) return 1;
  budget.Poll();  // Safe point between phases (the VC engines don't poll).
  if (int code = FinishIfTripped(&budget)) return code;

  // --- k-Path: randomized FPT via colour coding. ---
  timer.Reset();
  auto path = graph::FindKPathColorCoding(g, 7, &rng, /*rounds=*/0, threads,
                                          &budget);
  std::printf("[k-path]       colour coding, k = 7: %s (%.2f ms)\n",
              path ? "path found" : "none found", timer.Millis());
  if (int code = FinishIfTripped(&budget)) return code;
  if (path && !graph::IsSimplePath(g, *path)) return 1;

  // --- Treewidth DPs on a bounded-width instance. ---
  graph::Graph ktree = graph::RandomPartialKTree(200, 3, 0.85, &rng);
  timer.Reset();
  graph::ExactTreewidthResult exact_tw =
      graph::ExactTreewidth(graph::RandomPartialKTree(16, 3, 0.85, &rng), 24,
                            threads, &budget);
  std::printf("[treewidth]    exact DP on 16 vertices: width %d (%.2f ms)\n",
              exact_tw.treewidth, timer.Millis());
  if (int code = FinishIfTripped(&budget)) return code;
  graph::TreeDecomposition td = graph::HeuristicTreewidth(ktree).decomposition;
  graph::NiceTreeDecomposition ntd =
      graph::NiceTreeDecomposition::FromTreeDecomposition(td, ktree);
  timer.Reset();
  int mis = graph::MaxIndependentSetTreewidth(ktree, ntd);
  double mis_ms = timer.Millis();
  timer.Reset();
  int gamma = graph::MinDominatingSetTreewidth(ktree, ntd);
  double ds_ms = timer.Millis();
  std::printf("[treewidth]    width-%d graph on 200 vertices: alpha = %d "
              "(%.2f ms), gamma = %d (%.2f ms)\n",
              ntd.Width(), mis, mis_ms, gamma, ds_ms);

  // --- Contrast: Clique is W[1]-hard; brute force n^k is the state of the
  // art (Theorem 6.3), and it shows.
  graph::Graph dense = graph::RandomGnp(64, 0.5, &rng);
  for (int kc : {4, 6, 8}) {
    timer.Reset();
    auto clique = graph::FindKCliqueBruteForce(dense, kc);
    std::printf("[clique]       k = %d on G(64, .5): %s (%.2f ms)\n", kc,
                clique ? "found" : "none", timer.Millis());
  }
  std::printf("\n(vertex cover, k-path and the treewidth problems are FPT; "
              "clique's cost climbs with k — the FPT vs W[1] divide of "
              "Section 5)\n");
  return g_report.Finish(budget, budget.status());
}
