// A4 — ablation: decomposition quality end to end. Min-degree and min-fill
// orderings versus the exact 2^n DP, and what a worse width costs the
// downstream Freuder DP (every extra width unit multiplies the table by
// |D|).

#include "bench_util.h"
#include "csp/generators.h"
#include "csp/treedp.h"
#include "graph/generators.h"
#include "graph/treewidth.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("A4 (ablation): treewidth heuristics vs exact",
                "heuristic width gaps translate to |D|^gap DP blowups");

  util::Rng rng(1);

  std::printf("\n--- width quality on random graphs (n = 16) ---\n");
  util::Table t({"p", "exact", "min-degree", "min-fill", "degeneracy LB"});
  double total_gap_mindeg = 0, total_gap_minfill = 0;
  const int trials = 8;
  for (double p : {0.15, 0.25, 0.35}) {
    for (int trial = 0; trial < trials; ++trial) {
      graph::Graph g = graph::RandomGnp(16, p, &rng);
      int exact = graph::ExactTreewidth(g).treewidth;
      int mindeg = graph::EliminationOrderWidth(g, graph::MinDegreeOrder(g));
      int minfill = graph::EliminationOrderWidth(g, graph::MinFillOrder(g));
      total_gap_mindeg += mindeg - exact;
      total_gap_minfill += minfill - exact;
      if (trial == 0) {
        t.AddRowOf(p, exact, mindeg, minfill, graph::TreewidthLowerBound(g));
      }
    }
  }
  t.Print();
  std::printf("mean width gap over %d graphs: min-degree +%.2f, min-fill "
              "+%.2f\n",
              3 * trials, total_gap_mindeg / (3 * trials),
              total_gap_minfill / (3 * trials));

  std::printf("\n--- downstream cost: Freuder DP table rows per width ---\n");
  util::Table t2({"|D|", "rows (exact td)", "rows (min-degree td)",
                  "counts agree"});
  graph::Graph structure = graph::RandomGnp(14, 0.3, &rng);
  graph::TreeDecomposition exact_td =
      graph::ExactTreewidth(structure).decomposition;
  graph::TreeDecomposition heur_td = graph::DecompositionFromOrder(
      structure, graph::MinDegreeOrder(structure));
  for (int dsize : {2, 3, 4, 5}) {
    csp::CspInstance csp =
        csp::PlantedBinaryCsp(structure, dsize, 0.3, &rng);
    csp::TreeDpResult a = csp::SolveWithDecomposition(csp, exact_td);
    csp::TreeDpResult b = csp::SolveWithDecomposition(csp, heur_td);
    bool agree = a.solution_count == b.solution_count;
    t2.AddRowOf(dsize, static_cast<unsigned long long>(a.table_entries),
                static_cast<unsigned long long>(b.table_entries),
                agree ? "yes" : "NO (BUG)");
    if (!agree) return 1;
  }
  t2.Print();
  std::printf("(exact width %d vs heuristic width %d here)\n",
              exact_td.Width(), heur_td.Width());
  return 0;
}
