// E1 — Theorems 3.1 / 3.2: the AGM bound |Q(D)| <= N^{rho*} holds on every
// database and is met exactly by the extremal construction.

#include "bench_util.h"
#include "db/agm.h"
#include "db/generic_join.h"
#include "util/rng.h"

namespace {

using namespace qc;

void RunQuery(const char* name, const db::JoinQuery& query,
              const std::vector<int>& t_values, int random_n) {
  auto analysis = db::AnalyzeAgm(query);
  std::printf("\n--- %s: rho* = %s ---\n", name,
              analysis->rho_star.ToString().c_str());

  util::Table tight({"t", "N", "|Q(D)| (extremal)", "N^rho*", "ratio"});
  std::vector<double> ns, counts;
  for (int t : t_values) {
    long long n = 0;
    db::Database d = db::AgmTightInstance(query, *analysis, t, &n);
    std::uint64_t count = db::GenericJoin(query, d).Count();
    double bound = analysis->BoundForN(static_cast<double>(n));
    tight.AddRowOf(t, static_cast<long long>(n),
                   static_cast<unsigned long long>(count), bound,
                   static_cast<double>(count) / bound);
    ns.push_back(static_cast<double>(n));
    counts.push_back(static_cast<double>(count));
  }
  tight.Print();
  std::printf("measured exponent log_N |Q(D)| = %.3f (paper: %s)\n",
              bench::FitPowerLawExponent(ns, counts),
              analysis->rho_star.ToString().c_str());

  util::Table random({"N", "|Q(D)| (random)", "N^rho*", "bound holds"});
  util::Rng rng(1);
  for (int n : {random_n / 4, random_n / 2, random_n}) {
    db::Database d = db::RandomDatabase(query, n, 2 * n, &rng);
    std::uint64_t count = db::GenericJoin(query, d).Count();
    double bound = analysis->BoundForN(static_cast<double>(d.MaxRelationSize()));
    random.AddRowOf(n, static_cast<unsigned long long>(count), bound,
                    count <= bound ? "yes" : "NO (BUG)");
  }
  random.Print();
}

}  // namespace

int main() {
  bench::Banner("E1: AGM output-size bound (Theorems 3.1/3.2)",
                "|Q(D)| <= N^{rho*}; tight for the extremal database");

  db::JoinQuery triangle;
  triangle.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  RunQuery("triangle (rho* = 3/2)", triangle, {2, 4, 8, 12, 16, 20}, 400);

  db::JoinQuery four_cycle;
  four_cycle.Add("R1", {"a", "b"}).Add("R2", {"b", "c"}).Add("R3", {"c", "d"})
      .Add("R4", {"d", "a"});
  RunQuery("4-cycle (rho* = 2)", four_cycle, {2, 3, 4, 6, 8}, 150);

  db::JoinQuery star;
  star.Add("R1", {"c", "x"}).Add("R2", {"c", "y"}).Add("R3", {"c", "z"});
  RunQuery("star (rho* = 3)", star, {2, 3, 4, 6, 8, 10}, 80);

  db::JoinQuery path;
  path.Add("R", {"a", "b"}).Add("S", {"b", "c"});
  RunQuery("path (rho* = 2)", path, {2, 4, 8, 16, 24}, 200);
  return 0;
}
