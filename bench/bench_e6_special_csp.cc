// E6 — Definition 4.3 + Section 6: "Special CSP" (primal graph = k-clique +
// path on 2^k vertices) is quasipolynomial: solvable in n^{O(log n)} where
// n = k + 2^k is the instance size, because k <= log n. The measured search
// cost must grow far slower than exponential in n (polylog exponent), and
// the path part must be free.

#include "bench_util.h"
#include "csp/solver.h"
#include "graph/cliques.h"
#include "graph/generators.h"
#include "reductions/clique_reductions.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner(
      "E6: Special CSP is quasipolynomial (Definition 4.3, Section 6)",
      "n^{O(log n)} overall: brute force on the k <= log n clique part, "
      "linear on the 2^k path part");

  util::Rng rng(1);
  const int graph_n = 14;  // |D| for the clique part.

  std::printf("\n--- unsatisfiable instances (full search; G(n,p) with no "
              "k-clique) ---\n");
  util::Table t({"k", "vars n = k+2^k", "search nodes", "ms",
                 "n^{log2 n} (scaled)", "2^n (scaled)"});
  std::vector<double> ns, nodes;
  for (int k : {2, 3, 4, 5, 6}) {
    // p tuned so no k-clique exists (verified below).
    double p = k <= 3 ? 0.15 : (k == 4 ? 0.3 : (k == 5 ? 0.42 : 0.5));
    graph::Graph g = graph::RandomGnp(graph_n, p, &rng);
    while (graph::FindKCliqueBruteForce(g, k).has_value()) {
      g = graph::RandomGnp(graph_n, p, &rng);
    }
    csp::CspInstance csp = reductions::SpecialCspFromClique(g, k);
    util::Timer timer;
    csp::BacktrackingSolver solver;
    csp::CspSolution sol = solver.Solve(csp);
    double ms = timer.Millis();
    if (sol.found) return 1;  // Must be unsatisfiable.
    double n = static_cast<double>(csp.num_vars);
    t.AddRowOf(k, csp.num_vars,
               static_cast<unsigned long long>(sol.stats.nodes), ms,
               std::pow(n, std::log2(n)) / 1e6, std::pow(2.0, n) / 1e6);
    ns.push_back(n);
    nodes.push_back(static_cast<double>(sol.stats.nodes));
  }
  t.Print();
  std::printf(
      "search-node exponent in n: %.2f -> cost ~ n^{%.2f}, and log2(n) at "
      "the largest instance is %.1f: consistent with n^{O(log n)}, ruled "
      "far below 2^n\n",
      bench::FitPowerLawExponent(ns, nodes),
      bench::FitPowerLawExponent(ns, nodes), std::log2(ns.back()));

  std::printf("\n--- satisfiable instances (planted k-clique) ---\n");
  util::Table t2({"k", "vars", "search nodes", "ms", "clique valid"});
  for (int k : {3, 4, 5, 6}) {
    std::vector<int> planted;
    graph::Graph g = graph::PlantedClique(graph_n, 0.3, k, &rng, &planted);
    csp::CspInstance csp = reductions::SpecialCspFromClique(g, k);
    util::Timer timer;
    csp::BacktrackingSolver solver;
    csp::CspSolution sol = solver.Solve(csp);
    double ms = timer.Millis();
    if (!sol.found) return 1;
    std::vector<int> clique = reductions::ExtractClique(sol.assignment, k);
    t2.AddRowOf(k, csp.num_vars,
                static_cast<unsigned long long>(sol.stats.nodes), ms,
                graph::IsClique(g, clique) ? "yes" : "NO");
  }
  t2.Print();
  return 0;
}
