// E4 — Theorems 6.3 / 6.4: k-Clique brute force scales as n^{Theta(k)}, and
// equivalently the k-variable clique CSP needs |D|^{Theta(k)}. The measured
// exponent of the search cost in n must grow linearly with k, matching the
// "no f(k) * n^{o(k)}" lower bound's upper-bound side.

#include "bench_util.h"
#include "csp/solver.h"
#include "graph/cliques.h"
#include "graph/generators.h"
#include "reductions/clique_reductions.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("E4: k-Clique and the clique CSP (Theorems 6.3/6.4)",
                "brute force n^{Theta(k)}; CSP with k variables needs "
                "|D|^{Theta(k)}");

  util::Rng rng(1);
  // Unsatisfiable side (full search): G(n, p) with p below the k-clique
  // threshold, counting all k-cliques forces the whole tree.
  std::printf("\n--- counting k-cliques in G(n, 0.3) (full enumeration) ---\n");
  std::vector<double> exponents;
  for (int k : {3, 4, 5}) {
    util::Table t({"n", "k-cliques", "count ms"});
    std::vector<double> ns, counts;
    for (int n : {64, 96, 128, 192, 256}) {
      graph::Graph g = graph::RandomGnp(n, 0.3, &rng);
      util::Timer timer;
      std::uint64_t count = graph::CountKCliques(g, k);
      double ms = timer.Millis();
      t.AddRowOf(n, static_cast<unsigned long long>(count), ms);
      ns.push_back(n);
      counts.push_back(static_cast<double>(count));
    }
    std::printf("k = %d:\n", k);
    t.Print();
    // The enumeration must touch every k-clique, so the clique count is a
    // clean lower bound on its work — and it scales as n^k at fixed p.
    double e = bench::FitPowerLawExponent(ns, counts);
    exponents.push_back(e);
    std::printf("k-clique-count exponent in n: %.2f (paper: ~%d)\n\n", e, k);
  }
  std::printf("exponent growth per +1 in k: %.2f (paper: ~1; the search is "
              "n^{Theta(k)}, exactly what Theorem 6.3 says cannot be "
              "improved to n^{o(k)})\n",
              (exponents[2] - exponents[0]) / 2.0);

  std::printf("\n--- the same search as a CSP (Section 5 reduction) ---\n");
  util::Table t({"k", "|D| = n", "CSP nodes", "CSP ms", "graph ms"});
  for (int k : {3, 4, 5}) {
    int n = 96;
    graph::Graph g = graph::RandomGnp(n, 0.3, &rng);
    csp::CspInstance csp = reductions::CspFromClique(g, k);
    util::Timer timer;
    csp::BacktrackingSolver solver;
    csp::SearchStats stats;
    std::uint64_t csp_count = solver.CountSolutions(csp, &stats);
    double csp_ms = timer.Millis();
    timer.Reset();
    std::uint64_t graph_count = graph::CountKCliques(g, k);
    double graph_ms = timer.Millis();
    // Each unordered clique appears as k! ordered CSP solutions.
    std::uint64_t factorial = 1;
    for (int i = 2; i <= k; ++i) factorial *= i;
    if (csp_count != graph_count * factorial) {
      std::printf("MISMATCH: %llu vs %llu * %d!\n",
                  static_cast<unsigned long long>(csp_count),
                  static_cast<unsigned long long>(graph_count), k);
      return 1;
    }
    t.AddRowOf(k, n, static_cast<unsigned long long>(stats.nodes), csp_ms,
               graph_ms);
  }
  t.Print();
  std::printf("(CSP solutions = k! * #cliques verified for every row)\n");
  return 0;
}
