// E12 — Theorem 5.3 (Grohe): the complexity of HOM(A, _) tracks the
// treewidth of A's *core*, not of A itself. Even cycles have core K_2, so
// homomorphism testing stays flat as the cycle grows once the core is
// computed, while the naive |B|^{|A|} enumeration explodes; odd cycles are
// their own cores and gain nothing.

#include "bench_util.h"
#include "csp/solver.h"
#include "graph/generators.h"
#include "graph/treewidth.h"
#include "structures/structure.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("E12: cores govern homomorphism complexity (Theorem 5.3)",
                "HOM(A,_) is FPT/poly iff A's core has small treewidth");

  util::Rng rng(1);
  // Target B: a sparse bipartite-ish graph, so even cycles map in, odd
  // cycles do not (B is triangle-free and has long odd girth).
  graph::Graph target = graph::CompleteBipartite(3, 3);
  structures::Structure b = structures::Structure::FromGraph(target);

  std::printf("\n--- even cycles C_{2k}: core is K_2 ---\n");
  // Exhaustive enumeration (the |B|^{|A|} "try all assignments" baseline of
  // Section 5) with and without collapsing A to its core first: the core
  // keeps the answer while shrinking the exponent to 2.
  util::Table t({"cycle length", "core size", "core tw",
                 "space |B|^|A|", "direct ms", "core space", "core ms",
                 "answers agree"});
  for (int len : {4, 6, 8}) {
    structures::Structure a =
        structures::Structure::FromGraph(graph::Cycle(len));
    structures::Structure core = structures::ComputeCore(a);
    csp::CspInstance direct = structures::HomomorphismCsp(a, b);
    util::Timer timer;
    bool found_direct = csp::CountSolutionsBruteForce(direct) > 0;
    double direct_ms = timer.Millis();
    csp::CspInstance reduced = structures::HomomorphismCsp(core, b);
    timer.Reset();
    bool found_core = csp::CountSolutionsBruteForce(reduced) > 0;
    double core_ms = timer.Millis();
    bool agree = found_direct == found_core;
    t.AddRowOf(len, core.universe_size(),
               graph::ExactTreewidth(core.GaifmanGraph()).treewidth,
               std::pow(6.0, len), direct_ms, 36.0, core_ms,
               agree ? "yes" : "NO (BUG)");
    if (!agree) return 1;
  }
  t.Print();
  std::printf("(core preprocessing flattens the |B|^{|A|} explosion: the "
              "core column is constant while the direct column multiplies "
              "by |B|^2 = 36 per extra cycle segment)\n");

  std::printf("\n--- odd cycles: self-core, no collapse ---\n");
  util::Table t2({"cycle length", "core size", "hom into bipartite B",
                  "hom into B + odd cycle"});
  graph::Graph enriched = target.DisjointUnion(graph::Cycle(7));
  structures::Structure b2 = structures::Structure::FromGraph(enriched);
  for (int len : {5, 7, 9}) {
    structures::Structure a =
        structures::Structure::FromGraph(graph::Cycle(len));
    structures::Structure core = structures::ComputeCore(a);
    bool into_bipartite = structures::FindHomomorphism(a, b).has_value();
    bool into_enriched = structures::FindHomomorphism(a, b2).has_value();
    t2.AddRowOf(len, core.universe_size(), into_bipartite ? "yes" : "no",
                into_enriched ? "yes" : "no");
  }
  t2.Print();
  std::printf("(C_5 and C_7 map into B + C_7; C_9 maps onto C_7 as well "
              "since odd girth 7 <= 9... only if a hom C_9 -> C_7 exists, "
              "which requires girth(C_7) <= ... measured above)\n");

  std::printf("\n--- random structures: core never increases treewidth ---\n");
  util::Table t3({"trial", "|A|", "tw(A)", "core size", "tw(core)"});
  for (int trial = 0; trial < 5; ++trial) {
    graph::Graph g = graph::RandomGnp(8, 0.3, &rng);
    structures::Structure a = structures::Structure::FromGraph(g);
    structures::Structure core = structures::ComputeCore(a);
    int tw_a = graph::ExactTreewidth(a.GaifmanGraph()).treewidth;
    int tw_core = graph::ExactTreewidth(core.GaifmanGraph()).treewidth;
    t3.AddRowOf(trial, a.universe_size(), tw_a, core.universe_size(),
                tw_core);
    if (tw_core > tw_a) return 1;
  }
  t3.Print();
  return 0;
}
