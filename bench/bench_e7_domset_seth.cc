// E7 — Theorems 7.1 / 7.2: k-Dominating-Set brute force costs n^{k +- o(1)}
// (SETH says no n^{k-eps} is possible), and the proof's reduction embeds it
// into a CSP whose primal graph has treewidth k — so a |D|^{k-eps} CSP
// algorithm would break SETH. We measure the direct search exponent and
// validate the reduction end-to-end, including the D -> D^g grouping step.

#include "bench_util.h"
#include "csp/solver.h"
#include "graph/domination.h"
#include "graph/generators.h"
#include "reductions/domset_reduction.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("E7: k-Dominating-Set and the SETH reduction (Thm 7.1/7.2)",
                "direct search n^{k+-o(1)}; reduction to treewidth-k CSP "
                "preserves answers");

  util::Rng rng(1);

  std::printf("\n--- direct brute force, no-instances (exponent fit) ---\n");
  for (int k : {2, 3}) {
    util::Table t({"n", "has k-domset", "candidate sets", "ms"});
    std::vector<double> ns, nodes;
    // Sparse graphs have no tiny dominating set: forces the full n^k scan.
    for (int n : {64, 96, 128, 192, 256}) {
      graph::Graph g = graph::RandomGnm(n, 2 * n, &rng);
      util::Timer timer;
      std::uint64_t examined = 0;
      auto ds = graph::FindDominatingSetOfSize(g, k, &examined);
      double ms = timer.Millis();
      t.AddRowOf(n, ds ? "yes" : "no",
                 static_cast<unsigned long long>(examined), ms);
      if (!ds) {
        ns.push_back(n);
        nodes.push_back(static_cast<double>(examined));
      }
    }
    std::printf("k = %d:\n", k);
    t.Print();
    std::printf("candidate-set exponent in n: %.2f (paper: ~%d; SETH says "
                "no n^{%d-eps} is possible)\n\n",
                bench::FitPowerLawExponent(ns, nodes), k, k);
  }

  std::printf("--- reduction of Theorem 7.2: answers preserved ---\n");
  util::Table t({"n", "t", "group g", "CSP vars", "|D|", "direct", "via CSP",
                 "agree"});
  for (int n : {8, 10, 12}) {
    graph::Graph g = graph::RandomGnp(n, 0.3, &rng);
    for (int t_par : {2, 3}) {
      for (int group : {1, 2}) {
        reductions::DomSetReduction red =
            reductions::CspFromDominatingSet(g, t_par, group);
        bool direct = graph::FindDominatingSetOfSize(g, t_par).has_value();
        csp::CspSolution sol = csp::BacktrackingSolver().Solve(red.csp);
        bool agree = direct == sol.found;
        if (sol.found) {
          agree = agree && graph::IsDominatingSet(
                               g, red.ExtractDominatingSet(sol.assignment));
        }
        t.AddRowOf(n, t_par, group, red.csp.num_vars, red.csp.domain_size,
                   direct ? "yes" : "no", sol.found ? "yes" : "no",
                   agree ? "yes" : "NO (BUG)");
        if (!agree) return 1;
      }
    }
  }
  t.Print();

  std::printf("\n--- grouped reduction: trading variables for domain "
              "(the D -> D^g step) ---\n");
  {
    graph::Graph g = graph::RandomGnp(12, 0.35, &rng);
    util::Table t2({"group g", "witness vars", "|D|", "CSP nodes", "ms"});
    for (int group : {1, 2, 3}) {
      reductions::DomSetReduction red =
          reductions::CspFromDominatingSet(g, 3, group);
      util::Timer timer;
      csp::BacktrackingSolver solver;
      csp::CspSolution sol = solver.Solve(red.csp);
      double ms = timer.Millis();
      t2.AddRowOf(group, red.csp.num_vars - 3, red.csp.domain_size,
                  static_cast<unsigned long long>(sol.stats.nodes), ms);
    }
    t2.Print();
  }
  return 0;
}
