// A3 — ablation: how much the global attribute order matters for Generic
// Join. On a star query the center-first order intersects all relations
// immediately; leaf-first orders enumerate large cross products before any
// pruning. Worst-case optimality caps the damage at N^{rho*}, but the
// constant between good and bad orders is large.

#include "bench_util.h"
#include "db/agm.h"
#include "db/generic_join.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("A3 (ablation): Generic Join attribute order",
                "orders differ by large constants; all stay within the "
                "worst-case-optimal envelope");

  db::JoinQuery star;
  star.Add("R1", {"c", "x"}).Add("R2", {"c", "y"}).Add("R3", {"c", "z"});

  util::Rng rng(1);
  util::Table t({"N", "|Q(D)|", "center-first ms", "leaves-first ms",
                 "probes (center)", "probes (leaves)"});
  for (int n : {100, 200, 400}) {
    db::Database d = db::RandomDatabase(star, n, n / 2, &rng);
    db::GenericJoin good(star, d, {"c", "x", "y", "z"});
    util::Timer timer;
    std::uint64_t count_good = good.Count();
    double good_ms = timer.Millis();
    db::GenericJoin bad(star, d, {"x", "y", "z", "c"});
    timer.Reset();
    std::uint64_t count_bad = bad.Count();
    double bad_ms = timer.Millis();
    if (count_good != count_bad) return 1;
    t.AddRowOf(n, static_cast<unsigned long long>(count_good), good_ms,
               bad_ms, static_cast<unsigned long long>(good.stats().probes),
               static_cast<unsigned long long>(bad.stats().probes));
  }
  t.Print();

  std::printf("\n--- triangle query: all six orders ---\n");
  db::JoinQuery tri;
  tri.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  db::Database d = db::RandomDatabase(tri, 20000, 6000, &rng);
  util::Table t2({"order", "ms", "probes"});
  std::vector<std::vector<std::string>> orders = {
      {"a", "b", "c"}, {"a", "c", "b"}, {"b", "a", "c"},
      {"b", "c", "a"}, {"c", "a", "b"}, {"c", "b", "a"}};
  std::uint64_t reference = db::GenericJoin(tri, d).Count();
  for (const auto& order : orders) {
    db::GenericJoin gj(tri, d, order);
    util::Timer timer;
    std::uint64_t count = gj.Count();
    double ms = timer.Millis();
    if (count != reference) return 1;
    t2.AddRowOf(order[0] + order[1] + order[2], ms,
                static_cast<unsigned long long>(gj.stats().probes));
  }
  t2.Print();
  std::printf("(symmetric query, near-symmetric costs — order sensitivity "
              "is a property of skewed schemas like the star above)\n");
  return 0;
}
