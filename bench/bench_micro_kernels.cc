// Google-benchmark microbenchmarks for the library's hot kernels: the
// worst-case-optimal join, the treewidth DP, AC-3, triangle detection, and
// DPLL. These complement the E1-E14 experiment harnesses with
// statistically-stable per-kernel numbers.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "core/context.h"
#include "csp/arc_consistency.h"
#include "csp/generators.h"
#include "csp/treedp.h"
#include "db/agm.h"
#include "db/generic_join.h"
#include "graph/boolmatrix.h"
#include "graph/generators.h"
#include "graph/treewidth.h"
#include "graph/triangles.h"
#include "sat/dpll.h"
#include "sat/generators.h"
#include "util/rng.h"
#include "util/trace.h"

namespace {

using namespace qc;

db::JoinQuery TriangleQuery() {
  db::JoinQuery q;
  q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  return q;
}

// Since the search kernel carries per-level ScopedSpans, this row doubles
// as the disabled-tracing overhead check: tracing stays off here, so the
// spans cost one relaxed load per node (< 2% vs the pre-span baseline, the
// same bound as BudgetPoll below).
void BM_GenericJoinTriangle(benchmark::State& state) {
  util::Rng rng(1);
  db::JoinQuery q = TriangleQuery();
  db::Database d =
      db::RandomDatabase(q, static_cast<int>(state.range(0)),
                         state.range(0) / 2, &rng);
  for (auto _ : state) {
    db::GenericJoin join(q, d);
    benchmark::DoNotOptimize(join.Count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GenericJoinTriangle)->Range(256, 4096)->Complexity();

// The same join with tracing recording every span, for the enabled-path
// cost (two clock reads + one ring-buffer append per span).
void BM_GenericJoinTriangleTraced(benchmark::State& state) {
  util::Rng rng(1);
  db::JoinQuery q = TriangleQuery();
  db::Database d =
      db::RandomDatabase(q, static_cast<int>(state.range(0)),
                         state.range(0) / 2, &rng);
  util::Trace::Enable();
  for (auto _ : state) {
    db::GenericJoin join(q, d);
    benchmark::DoNotOptimize(join.Count());
  }
  util::Trace::Disable();
  util::Trace::Reset();
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GenericJoinTriangleTraced)->Range(256, 4096)->Complexity();

// The same E2 triangle join with an armed (far-future) deadline: every
// search node pays one Budget::Poll(). Compare against the unarmed
// BM_GenericJoinTriangle row at the same size — the stride-cached clock
// check keeps the gap below 2%.
void BM_GenericJoinTriangleBudgetPoll(benchmark::State& state) {
  util::Rng rng(1);
  db::JoinQuery q = TriangleQuery();
  db::Database d =
      db::RandomDatabase(q, static_cast<int>(state.range(0)),
                         state.range(0) / 2, &rng);
  ExecutionContext ctx;
  ctx.budget = std::make_shared<util::Budget>();
  ctx.budget->ArmDeadlineAfter(3600.0);  // Armed but never trips.
  for (auto _ : state) {
    db::GenericJoin join(q, d, ctx);
    benchmark::DoNotOptimize(join.Count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GenericJoinTriangleBudgetPoll)->Range(256, 4096)->Complexity();

// The parallel root partition of Generic Join: thread count is the
// benchmark argument (1 = serial path). Results are bit-identical across
// thread counts; only wall-clock should differ.
void BM_GenericJoinTriangleParallel(benchmark::State& state) {
  util::Rng rng(1);
  db::JoinQuery q = TriangleQuery();
  db::Database d = db::RandomDatabase(q, 4096, 2048, &rng);
  ExecutionContext ctx;
  ctx.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    db::GenericJoin join(q, d, ctx);
    benchmark::DoNotOptimize(join.Count());
  }
}
BENCHMARK(BM_GenericJoinTriangleParallel)->Arg(1)->Arg(2)->Arg(8)
    ->UseRealTime();

// Row-block-parallel Boolean matrix product at 2048x2048. The acceptance
// target is >= 3x at 8 threads vs 1 on an 8-way machine (compare the
// real-time columns of the /1 and /8 rows).
void BM_BoolMatrixMultiply2048(benchmark::State& state) {
  util::Rng rng(7);
  const int n = 2048;
  graph::BoolMatrix a(n, n), b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.NextBounded(2) == 0) a.Set(i, j);
      if (rng.NextBounded(2) == 0) b.Set(i, j);
    }
  }
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(b, threads).rows());
  }
}
BENCHMARK(BM_BoolMatrixMultiply2048)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_TreewidthDp(benchmark::State& state) {
  util::Rng rng(2);
  graph::Graph structure = graph::RandomKTree(30, 2, &rng);
  csp::CspInstance csp = csp::PlantedBinaryCsp(
      structure, static_cast<int>(state.range(0)), 0.3, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csp::SolveTreewidthDp(csp, 0).solution_count);
  }
}
BENCHMARK(BM_TreewidthDp)->Arg(2)->Arg(4)->Arg(8);

void BM_ExactTreewidth(benchmark::State& state) {
  util::Rng rng(3);
  graph::Graph g =
      graph::RandomGnp(static_cast<int>(state.range(0)), 0.3, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ExactTreewidth(g).treewidth);
  }
}
BENCHMARK(BM_ExactTreewidth)->Arg(12)->Arg(16)->Arg(18);

void BM_Ac3(benchmark::State& state) {
  util::Rng rng(4);
  graph::Graph structure =
      graph::RandomGnp(static_cast<int>(state.range(0)), 0.3, &rng);
  csp::CspInstance csp = csp::RandomBinaryCsp(structure, 8, 0.5, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csp::EnforceArcConsistency(csp).consistent);
  }
}
BENCHMARK(BM_Ac3)->Arg(20)->Arg(40)->Arg(80);

void BM_TriangleEnumeration(benchmark::State& state) {
  util::Rng rng(5);
  graph::Graph g = graph::CompleteBipartite(
      static_cast<int>(state.range(0)) / 2,
      static_cast<int>(state.range(0)) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::FindTriangleEnumeration(g).has_value());
  }
}
BENCHMARK(BM_TriangleEnumeration)->Range(256, 2048);

void BM_TriangleMatrix(benchmark::State& state) {
  graph::Graph g = graph::CompleteBipartite(
      static_cast<int>(state.range(0)) / 2,
      static_cast<int>(state.range(0)) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::FindTriangleMatrix(g).has_value());
  }
}
BENCHMARK(BM_TriangleMatrix)->Range(256, 2048);

void BM_Dpll3SatThreshold(benchmark::State& state) {
  util::Rng rng(6);
  int n = static_cast<int>(state.range(0));
  sat::CnfFormula f = sat::RandomKSat(n, static_cast<int>(n * 4.26), 3, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sat::SolveDpll(f).satisfiable);
  }
}
BENCHMARK(BM_Dpll3SatThreshold)->Arg(20)->Arg(28)->Arg(36);

// Console output as usual, plus one JsonReport record per benchmark run
// when --json <file> is given (the flag is stripped before
// benchmark::Initialize sees argv).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(bench::JsonReport* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;  // skip aggregates
      double iters = static_cast<double>(
          run.iterations > 0 ? run.iterations : 1);
      json_->Record(run.benchmark_name(), {{"iterations", iters}},
                    run.real_accumulated_time / iters * 1e3);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::JsonReport* json_;
};

}  // namespace

int main(int argc, char** argv) {
  qc::bench::JsonReport json(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
