// Google-benchmark microbenchmarks for the library's hot kernels: the
// isolated SIMD kernels (sorted-set intersection, radix row sort), the
// worst-case-optimal join, the treewidth DP, AC-3, triangle detection, and
// DPLL. These complement the E1-E14 experiment harnesses with
// statistically-stable per-kernel numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/context.h"
#include "csp/arc_consistency.h"
#include "csp/generators.h"
#include "csp/treedp.h"
#include "db/agm.h"
#include "db/flat_relation.h"
#include "db/generic_join.h"
#include "db/trie_index.h"
#include "graph/boolmatrix.h"
#include "graph/generators.h"
#include "graph/treewidth.h"
#include "graph/triangles.h"
#include "kernels/dispatch.h"
#include "kernels/intersect.h"
#include "sat/dpll.h"
#include "sat/generators.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/trace.h"

namespace {

using namespace qc;

db::JoinQuery TriangleQuery() {
  db::JoinQuery q;
  q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  return q;
}

// ---------------------------------------------------------------------------
// Isolated intersection kernel: size x skew x density sweep.
//
// Args: (long-side size, skew, density %). The long side b has range(0)
// strictly-increasing values, the short side a has range(0)/skew values of
// which ~density% hit b. The acceptance row for the SIMD layer is the dense
// non-skewed case (skew=1, density=90) — compare the scalar row against the
// avx2/avx512 rows at the same args (>= 1.5x on this machine's best level).

using IntersectFn = std::size_t (*)(const std::int64_t*, std::size_t,
                                    const std::int64_t*, std::size_t,
                                    std::int32_t*, std::int32_t*);

std::vector<std::int64_t> SortedUniqueValues(std::size_t n,
                                             std::int64_t range,
                                             util::Rng* rng) {
  std::vector<std::int64_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<std::int64_t>(rng->NextBounded(range)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void IntersectKernelBench(benchmark::State& state, IntersectFn fn,
                          kernels::SimdLevel required) {
  if (kernels::BestSupportedSimdLevel() < required) {
    state.SkipWithError("SIMD level not supported on this CPU");
    return;
  }
  util::Rng rng(101);
  const std::size_t nb = static_cast<std::size_t>(state.range(0));
  const std::size_t skew = static_cast<std::size_t>(state.range(1));
  const double density = static_cast<double>(state.range(2)) / 100.0;
  std::vector<std::int64_t> b =
      SortedUniqueValues(nb, static_cast<std::int64_t>(nb) * 2, &rng);
  std::vector<std::int64_t> a;
  for (std::size_t i = 0; i < nb / skew; ++i) {
    a.push_back(rng.NextBool(density)
                    ? b[rng.NextBounded(b.size())]
                    : static_cast<std::int64_t>(
                          rng.NextBounded(static_cast<std::int64_t>(nb) * 2)));
  }
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::vector<std::int32_t> pos_a(std::min(a.size(), b.size()));
  std::vector<std::int32_t> pos_b(pos_a.size());
  std::size_t matches = 0;
  for (auto _ : state) {
    matches = fn(a.data(), a.size(), b.data(), b.size(), pos_a.data(),
                 pos_b.data());
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * (a.size() + b.size())));
  state.counters["matches"] = static_cast<double>(matches);
}

void RegisterIntersectRow(const char* name, IntersectFn fn,
                          kernels::SimdLevel required) {
  benchmark::RegisterBenchmark(name,
                               [fn, required](benchmark::State& state) {
                                 IntersectKernelBench(state, fn, required);
                               })
      ->ArgsProduct({{1 << 12, 1 << 16, 1 << 20}, {1, 64}, {90, 10}})
      ->Unit(benchmark::kMicrosecond);
}

void RegisterIntersectBenchmarks() {
  RegisterIntersectRow("BM_IntersectKernel/scalar",
                       kernels::IntersectPairPositionsScalar,
                       kernels::SimdLevel::kScalar);
  RegisterIntersectRow("BM_IntersectKernel/avx2",
                       kernels::IntersectPairPositionsAvx2,
                       kernels::SimdLevel::kAvx2);
  RegisterIntersectRow("BM_IntersectKernel/avx512",
                       kernels::IntersectPairPositionsAvx512,
                       kernels::SimdLevel::kAvx512);
  RegisterIntersectRow("BM_IntersectKernel/gallop",
                       kernels::IntersectPairPositionsGallop,
                       kernels::SimdLevel::kScalar);
  RegisterIntersectRow("BM_IntersectKernel/dispatched",
                       kernels::IntersectPairPositions,
                       kernels::SimdLevel::kScalar);
}

// ---------------------------------------------------------------------------
// Trie-build materialize+sort: comparison sort vs the LSD radix kernel.
//
// Args: (rows, arity). The timed region is exactly what the GenericJoin
// constructor pays per atom — sort + dedup of the materialized projection,
// then the CSR trie build on top.

void TrieBuildSortBench(benchmark::State& state,
                        db::FlatRelation::SortPolicy policy) {
  util::Rng rng(202);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int arity = static_cast<int>(state.range(1));
  db::FlatRelation rel(arity);
  rel.Reserve(n);
  std::vector<db::Value> row(arity);
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < arity; ++c) {
      row[c] = static_cast<db::Value>(rng.NextBounded(n / 2 + 1));
    }
    rel.PushRow(row.data());
  }
  util::Arena arena;
  for (auto _ : state) {
    db::FlatRelation copy = rel;  // Sort is in-place; copy cost is common
    copy.SortLexAndDedup(policy, &arena);  // to both policy rows.
    benchmark::DoNotOptimize(copy.size());
    arena.Reset();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}

void BM_TrieBuildSortComparison(benchmark::State& state) {
  TrieBuildSortBench(state, db::FlatRelation::SortPolicy::kComparison);
}
BENCHMARK(BM_TrieBuildSortComparison)
    ->ArgsProduct({{1 << 14, 1 << 18}, {2, 4}})
    ->Unit(benchmark::kMicrosecond);

void BM_TrieBuildSortRadix(benchmark::State& state) {
  TrieBuildSortBench(state, db::FlatRelation::SortPolicy::kRadix);
}
BENCHMARK(BM_TrieBuildSortRadix)
    ->ArgsProduct({{1 << 14, 1 << 18}, {2, 4}})
    ->Unit(benchmark::kMicrosecond);

// Full sorted-projection -> CSR trie pipeline with the arena backing the
// build scratch (the per-atom cost inside the GenericJoin constructor).
void BM_TrieIndexBuild(benchmark::State& state) {
  util::Rng rng(303);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  db::FlatRelation rel(3);
  rel.Reserve(n);
  db::Value row[3];
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < 3; ++c) {
      row[c] = static_cast<db::Value>(rng.NextBounded(n / 4 + 1));
    }
    rel.PushRow(row);
  }
  rel.SortLexAndDedup();
  util::Arena arena;
  for (auto _ : state) {
    db::TrieIndex trie(rel, &arena);
    benchmark::DoNotOptimize(trie.num_nodes());
    arena.Reset();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_TrieIndexBuild)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMicrosecond);

// Since the search kernel carries per-level ScopedSpans, this row doubles
// as the disabled-tracing overhead check: tracing stays off here, so the
// spans cost one relaxed load per node (< 2% vs the pre-span baseline, the
// same bound as BudgetPoll below).
void BM_GenericJoinTriangle(benchmark::State& state) {
  util::Rng rng(1);
  db::JoinQuery q = TriangleQuery();
  db::Database d =
      db::RandomDatabase(q, static_cast<int>(state.range(0)),
                         state.range(0) / 2, &rng);
  for (auto _ : state) {
    db::GenericJoin join(q, d);
    benchmark::DoNotOptimize(join.Count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GenericJoinTriangle)->Range(256, 4096)->Complexity();

// The same join with tracing recording every span, for the enabled-path
// cost (two clock reads + one ring-buffer append per span).
void BM_GenericJoinTriangleTraced(benchmark::State& state) {
  util::Rng rng(1);
  db::JoinQuery q = TriangleQuery();
  db::Database d =
      db::RandomDatabase(q, static_cast<int>(state.range(0)),
                         state.range(0) / 2, &rng);
  util::Trace::Enable();
  for (auto _ : state) {
    db::GenericJoin join(q, d);
    benchmark::DoNotOptimize(join.Count());
  }
  util::Trace::Disable();
  util::Trace::Reset();
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GenericJoinTriangleTraced)->Range(256, 4096)->Complexity();

// The same E2 triangle join with an armed (far-future) deadline: every
// search node pays one Budget::Poll(). Compare against the unarmed
// BM_GenericJoinTriangle row at the same size — the stride-cached clock
// check keeps the gap below 2%.
void BM_GenericJoinTriangleBudgetPoll(benchmark::State& state) {
  util::Rng rng(1);
  db::JoinQuery q = TriangleQuery();
  db::Database d =
      db::RandomDatabase(q, static_cast<int>(state.range(0)),
                         state.range(0) / 2, &rng);
  ExecutionContext ctx;
  ctx.budget = std::make_shared<util::Budget>();
  ctx.budget->ArmDeadlineAfter(3600.0);  // Armed but never trips.
  for (auto _ : state) {
    db::GenericJoin join(q, d, ctx);
    benchmark::DoNotOptimize(join.Count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GenericJoinTriangleBudgetPoll)->Range(256, 4096)->Complexity();

// The parallel root partition of Generic Join: thread count is the
// benchmark argument (1 = serial path). Results are bit-identical across
// thread counts; only wall-clock should differ.
void BM_GenericJoinTriangleParallel(benchmark::State& state) {
  util::Rng rng(1);
  db::JoinQuery q = TriangleQuery();
  db::Database d = db::RandomDatabase(q, 4096, 2048, &rng);
  ExecutionContext ctx;
  ctx.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    db::GenericJoin join(q, d, ctx);
    benchmark::DoNotOptimize(join.Count());
  }
}
BENCHMARK(BM_GenericJoinTriangleParallel)->Arg(1)->Arg(2)->Arg(8)
    ->UseRealTime();

// Row-block-parallel Boolean matrix product at 2048x2048. The acceptance
// target is >= 3x at 8 threads vs 1 on an 8-way machine (compare the
// real-time columns of the /1 and /8 rows).
void BM_BoolMatrixMultiply2048(benchmark::State& state) {
  util::Rng rng(7);
  const int n = 2048;
  graph::BoolMatrix a(n, n), b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.NextBounded(2) == 0) a.Set(i, j);
      if (rng.NextBounded(2) == 0) b.Set(i, j);
    }
  }
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(b, threads).rows());
  }
}
BENCHMARK(BM_BoolMatrixMultiply2048)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_TreewidthDp(benchmark::State& state) {
  util::Rng rng(2);
  graph::Graph structure = graph::RandomKTree(30, 2, &rng);
  csp::CspInstance csp = csp::PlantedBinaryCsp(
      structure, static_cast<int>(state.range(0)), 0.3, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csp::SolveTreewidthDp(csp, 0).solution_count);
  }
}
BENCHMARK(BM_TreewidthDp)->Arg(2)->Arg(4)->Arg(8);

void BM_ExactTreewidth(benchmark::State& state) {
  util::Rng rng(3);
  graph::Graph g =
      graph::RandomGnp(static_cast<int>(state.range(0)), 0.3, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ExactTreewidth(g).treewidth);
  }
}
BENCHMARK(BM_ExactTreewidth)->Arg(12)->Arg(16)->Arg(18);

void BM_Ac3(benchmark::State& state) {
  util::Rng rng(4);
  graph::Graph structure =
      graph::RandomGnp(static_cast<int>(state.range(0)), 0.3, &rng);
  csp::CspInstance csp = csp::RandomBinaryCsp(structure, 8, 0.5, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csp::EnforceArcConsistency(csp).consistent);
  }
}
BENCHMARK(BM_Ac3)->Arg(20)->Arg(40)->Arg(80);

void BM_TriangleEnumeration(benchmark::State& state) {
  util::Rng rng(5);
  graph::Graph g = graph::CompleteBipartite(
      static_cast<int>(state.range(0)) / 2,
      static_cast<int>(state.range(0)) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::FindTriangleEnumeration(g).has_value());
  }
}
BENCHMARK(BM_TriangleEnumeration)->Range(256, 2048);

void BM_TriangleMatrix(benchmark::State& state) {
  graph::Graph g = graph::CompleteBipartite(
      static_cast<int>(state.range(0)) / 2,
      static_cast<int>(state.range(0)) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::FindTriangleMatrix(g).has_value());
  }
}
BENCHMARK(BM_TriangleMatrix)->Range(256, 2048);

void BM_Dpll3SatThreshold(benchmark::State& state) {
  util::Rng rng(6);
  int n = static_cast<int>(state.range(0));
  sat::CnfFormula f = sat::RandomKSat(n, static_cast<int>(n * 4.26), 3, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sat::SolveDpll(f).satisfiable);
  }
}
BENCHMARK(BM_Dpll3SatThreshold)->Arg(20)->Arg(28)->Arg(36);

// Console output as usual, plus one JsonReport record per benchmark run
// when --json <file> is given (the flag is stripped before
// benchmark::Initialize sees argv).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(bench::JsonReport* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;  // skip aggregates
      double iters = static_cast<double>(
          run.iterations > 0 ? run.iterations : 1);
      json_->Record(run.benchmark_name(), {{"iterations", iters}},
                    run.real_accumulated_time / iters * 1e3);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::JsonReport* json_;
};

}  // namespace

int main(int argc, char** argv) {
  qc::bench::JsonReport json(&argc, argv);
  RegisterIntersectBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
