// E16 — Section 8's enumeration discussion ([13], [16]): alpha-acyclic
// queries admit constant-delay enumeration after linear preprocessing,
// while the hyperclique conjecture rules that out for cyclic queries. We
// measure the worst per-answer delay of the AcyclicEnumerator as the
// database grows (it must stay flat), against the per-answer gaps of
// Generic Join on a cyclic query over adversarial data (they grow).

#include <algorithm>

#include "bench_util.h"
#include "db/agm.h"
#include "db/enumeration.h"
#include "db/generic_join.h"
#include "util/rng.h"

namespace {

using namespace qc;

/// Max and mean inter-answer delay of a pull-based enumeration.
struct DelayProfile {
  double preprocess_ms = 0;
  double max_delay_us = 0;
  double mean_delay_us = 0;
  std::uint64_t answers = 0;
};

}  // namespace

int main() {
  bench::Banner("E16: constant-delay enumeration (Section 8, [13]/[16])",
                "acyclic: flat per-answer delay after linear preprocessing; "
                "cyclic: gaps grow with the data");

  std::printf("\n--- acyclic path query R(a,b) S(b,c) T(c,d) ---\n");
  util::Table t({"N", "answers", "preprocess ms", "p99 delay us",
                 "mean delay us"});
  util::Rng rng(1);
  db::JoinQuery path;
  path.Add("R", {"a", "b"}).Add("S", {"b", "c"}).Add("T", {"c", "d"});
  for (int n : {1000, 4000, 16000, 64000}) {
    db::Database d = db::RandomDatabase(path, n, n / 3, &rng);
    util::Timer pre;
    db::AcyclicEnumerator e(path, d);
    DelayProfile p;
    p.preprocess_ms = pre.Millis();
    util::Timer gap;
    std::vector<double> delays;
    while (true) {
      gap.Reset();
      auto tuple = e.Next();
      double us = gap.Seconds() * 1e6;
      if (!tuple) break;
      ++p.answers;
      delays.push_back(us);
      if (p.answers >= 200000) break;  // Enough samples.
    }
    double total_us = 0;
    for (double us : delays) total_us += us;
    std::sort(delays.begin(), delays.end());
    double p99 = delays.empty() ? 0 : delays[delays.size() * 99 / 100];
    p.mean_delay_us = p.answers ? total_us / p.answers : 0;
    t.AddRowOf(n, static_cast<unsigned long long>(p.answers),
               p.preprocess_ms, p99, p.mean_delay_us);
  }
  t.Print();
  std::printf("(p99 delay flat in N; preprocessing linear — the [13] shape)\n");

  std::printf("\n--- cyclic triangle query, needle-in-haystack data ---\n");
  // R1 = {(i,0)}, R2 = {(i,i)}, R3 = {(0,N)}: the single answer (N,0,N)
  // hides behind N-1 candidate bindings that each fail only at the last
  // attribute — so the delay before the first answer grows linearly, with
  // no preprocessing able to help a join-at-enumeration-time evaluator.
  util::Table t2({"N", "answers", "delay to answer us"});
  std::vector<double> ns2, gaps2;
  db::JoinQuery tri;
  tri.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  for (int n : {1000, 4000, 16000, 64000}) {
    std::vector<db::Tuple> r1, r2;
    for (int i = 1; i <= n; ++i) {
      r1.push_back({i, 0});
      r2.push_back({i, i});
    }
    db::Database d;
    d.SetRelation("R1", 2, r1);
    d.SetRelation("R2", 2, r2);
    d.SetRelation("R3", 2, {{0, n}});
    db::GenericJoin gj(tri, d);
    util::Timer gap;
    std::vector<double> gaps;
    gj.Enumerate([&](const db::Tuple&) {
      gaps.push_back(gap.Seconds() * 1e6);
      gap.Reset();
      return true;
    });
    double first = gaps.empty() ? 0 : gaps[0];
    t2.AddRowOf(n, static_cast<unsigned long long>(gaps.size()), first);
    ns2.push_back(n);
    gaps2.push_back(first);
  }
  t2.Print();
  std::printf("inter-answer delay exponent in N: %.2f (grows ~linearly — "
              "constant delay for cyclic queries is exactly what the "
              "hyperclique conjecture forbids)\n",
              bench::FitPowerLawExponent(ns2, gaps2));

  return 0;
}
