// E10 — Section 4 (Schaefer's Dichotomy): instances inside a tractable
// class are solved in (near-)linear time by the matching polynomial
// algorithm, while the NP-hard side (general 3SAT via DPLL) grows
// exponentially in n. The dispatcher must route each pool correctly.

#include "bench_util.h"
#include "sat/dpll.h"
#include "sat/generators.h"
#include "sat/hornsat.h"
#include "sat/schaefer.h"
#include "sat/twosat.h"
#include "sat/xorsat.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("E10: Schaefer's dichotomy in practice (Section 4)",
                "2SAT/Horn/XOR polynomial; general 3SAT exponential");

  util::Rng rng(1);

  std::printf("\n--- tractable classes: time vs n (density 3 m/n) ---\n");
  util::Table t({"n", "2SAT ms", "Horn ms", "XOR ms"});
  std::vector<double> ns, twosat_ms, horn_ms, xor_ms;
  for (int n : {1000, 2000, 4000, 8000, 16000}) {
    sat::CnfFormula two = sat::RandomTwoSat(n, 1 * n, &rng);
    sat::CnfFormula horn = sat::RandomHorn(n, 3 * n, 2, 0.8, &rng);
    sat::XorSystem xs = sat::RandomXorSystem(n, n / 2, 3, &rng);
    util::Timer timer;
    sat::SolveTwoSat(two);
    double tw = timer.Millis();
    timer.Reset();
    sat::SolveHornSat(horn);
    double hn = timer.Millis();
    timer.Reset();
    sat::SolveXorSystem(xs);
    double xr = timer.Millis();
    t.AddRowOf(n, tw, hn, xr);
    ns.push_back(n);
    twosat_ms.push_back(tw);
    horn_ms.push_back(hn);
    xor_ms.push_back(xr);
  }
  t.Print();
  std::printf("exponents in n: 2SAT %.2f, Horn %.2f, XOR %.2f "
              "(all polynomial, small)\n",
              bench::FitPowerLawExponent(ns, twosat_ms),
              bench::FitPowerLawExponent(ns, horn_ms),
              bench::FitPowerLawExponent(ns, xor_ms));

  std::printf("\n--- NP-hard side: DPLL on random 3SAT at density 4.26 ---\n");
  util::Table t2({"n", "decisions", "ms"});
  std::vector<double> n2, decisions;
  for (int n : {20, 26, 32, 38, 44}) {
    std::uint64_t total = 0;
    double total_ms = 0;
    const int trials = 5;
    for (int trial = 0; trial < trials; ++trial) {
      sat::CnfFormula f =
          sat::RandomKSat(n, static_cast<int>(n * 4.26), 3, &rng);
      util::Timer timer;
      sat::SatResult r = sat::SolveDpll(f);
      total_ms += timer.Millis();
      total += r.decisions;
    }
    t2.AddRowOf(n, static_cast<unsigned long long>(total / trials),
                total_ms / trials);
    n2.push_back(n);
    decisions.push_back(static_cast<double>(total) / trials);
  }
  t2.Print();
  std::printf("DPLL decisions ~ 2^{%.3f n}: exponential, consistent with "
              "the dichotomy's NP-hard side\n",
              bench::FitExponentialRate(n2, decisions));

  std::printf("\n--- dispatcher routing check ---\n");
  {
    util::Table t3({"pool", "method chosen"});
    auto route = [&](const char* name, sat::BoolRelation rel,
                     int vars) {
      sat::BoolCsp csp;
      csp.num_vars = vars;
      for (int i = 0; i + rel.arity() <= vars; i += rel.arity()) {
        std::vector<int> scope;
        for (int j = 0; j < rel.arity(); ++j) scope.push_back(i + j);
        csp.AddConstraint(scope, rel);
      }
      sat::SchaeferSolveResult r = sat::SolveSchaefer(csp);
      t3.AddRowOf(name, sat::ToString(r.method));
    };
    route("implication chains", sat::ImplicationRelation(), 40);
    route("parity triples", sat::ParityRelation(3, false), 39);
    route("1-in-3 triples", sat::OneInThreeRelation(), 12);
    t3.Print();
  }
  return 0;
}
