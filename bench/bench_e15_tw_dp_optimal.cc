// E15 — Section 7's citations [15]/[51] (Lokshtanov–Marx–Saurabh): the
// standard dynamic programs on tree decompositions — 2^w for Independent
// Set, 3^w for Dominating Set — are SETH-optimal. We measure (a) that the
// DPs' costs indeed grow with those bases as the width increases on
// fixed-size k-trees, and (b) that at bounded width they crush the
// exponential-in-n branching solvers.

#include "bench_util.h"
#include "graph/domination.h"
#include "graph/generators.h"
#include "graph/nice_decomposition.h"
#include "graph/treewidth.h"
#include "graph/vertexcover.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("E15: 2^w and 3^w treewidth DPs (Section 7, [51])",
                "IS in 2^w, DomSet in 3^w per bag; SETH says the bases "
                "cannot be improved");

  util::Rng rng(1);

  std::printf("\n--- width sweep on 48-vertex k-trees ---\n");
  util::Table t({"w", "MIS DP ms", "DomSet DP ms", "MIS size", "gamma",
                 "2^w", "3^w"});
  std::vector<double> ws, mis_ms, ds_ms;
  for (int w : {2, 3, 4, 5, 6, 7}) {
    graph::Graph g = graph::RandomPartialKTree(48, w, 0.85, &rng);
    graph::TreeDecomposition td = graph::HeuristicTreewidth(g).decomposition;
    graph::NiceTreeDecomposition ntd =
        graph::NiceTreeDecomposition::FromTreeDecomposition(td, g);
    util::Timer timer;
    int mis = graph::MaxIndependentSetTreewidth(g, ntd);
    double t_mis = timer.Millis();
    timer.Reset();
    int gamma = graph::MinDominatingSetTreewidth(g, ntd);
    double t_ds = timer.Millis();
    t.AddRowOf(ntd.Width(), t_mis, t_ds, mis, gamma, 1 << ntd.Width(),
               static_cast<int>(std::pow(3.0, ntd.Width())));
    ws.push_back(ntd.Width());
    mis_ms.push_back(t_mis);
    ds_ms.push_back(t_ds);
  }
  t.Print();
  std::printf("MIS DP base: 2^{%.2f w}; DomSet DP base: 2^{%.2f w} = "
              "%.2f^w (paper: 2^w and 3^w = 2^{1.58 w})\n",
              bench::FitExponentialRate(ws, mis_ms),
              bench::FitExponentialRate(ws, ds_ms),
              std::pow(2.0, bench::FitExponentialRate(ws, ds_ms)));

  std::printf("\n--- n sweep at width <= 3: DP vs branching solvers ---\n");
  util::Table t2({"n", "MIS DP ms", "VC-branching ms", "DomSet DP ms",
                  "DomSet B&B ms", "answers agree"});
  for (int n : {20, 28, 36, 44}) {
    graph::Graph g = graph::RandomPartialKTree(n, 3, 0.8, &rng);
    graph::TreeDecomposition td = graph::HeuristicTreewidth(g).decomposition;
    graph::NiceTreeDecomposition ntd =
        graph::NiceTreeDecomposition::FromTreeDecomposition(td, g);
    util::Timer timer;
    int mis_dp = graph::MaxIndependentSetTreewidth(g, ntd);
    double t1 = timer.Millis();
    timer.Reset();
    int mis_branch = static_cast<int>(graph::MaxIndependentSet(g).size());
    double t2ms = timer.Millis();
    timer.Reset();
    int ds_dp = graph::MinDominatingSetTreewidth(g, ntd);
    double t3 = timer.Millis();
    timer.Reset();
    int ds_bb = static_cast<int>(graph::MinDominatingSet(g).size());
    double t4 = timer.Millis();
    bool agree = mis_dp == mis_branch && ds_dp == ds_bb;
    t2.AddRowOf(n, t1, t2ms, t3, t4, agree ? "yes" : "NO (BUG)");
    if (!agree) return 1;
  }
  t2.Print();
  std::printf("(the DPs stay flat in n at fixed width; the branching "
              "solvers blow up — the FPT-vs-exponential contrast of "
              "Section 5)\n");
  return 0;
}
