// A1 — ablation: what MRV variable ordering and forward checking each buy
// the backtracking CSP solver. Search nodes and wall time on planted
// binary CSPs, with each feature toggled independently.

#include "bench_util.h"
#include "csp/generators.h"
#include "csp/solver.h"
#include "graph/generators.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("A1 (ablation): MRV + forward checking",
                "each heuristic removes orders of magnitude of search");

  util::Rng rng(1);
  util::Table t({"n", "tightness", "nodes (plain)", "nodes (mrv)",
                 "nodes (fc)", "nodes (mrv+fc)"});
  for (int n : {14, 18, 22}) {
    for (double tightness : {0.25, 0.4}) {
      graph::Graph structure = graph::RandomGnp(n, 0.3, &rng);
      csp::CspInstance csp =
          csp::PlantedBinaryCsp(structure, 5, tightness, &rng);
      std::uint64_t nodes[4];
      int idx = 0;
      for (bool mrv : {false, true}) {
        for (bool fc : {false, true}) {
          csp::BacktrackingSolver solver(csp::BacktrackingSolver::Options{
              .forward_checking = fc, .mrv = mrv, .max_nodes = 50'000'000});
          csp::CspSolution sol = solver.Solve(csp);
          nodes[idx++] = sol.stats.nodes;
          if (!sol.found && !solver.aborted()) return 1;  // Planted: SAT.
        }
      }
      // Order written: plain, fc, mrv, mrv+fc -> match header.
      t.AddRowOf(n, tightness, static_cast<unsigned long long>(nodes[0]),
                 static_cast<unsigned long long>(nodes[2]),
                 static_cast<unsigned long long>(nodes[1]),
                 static_cast<unsigned long long>(nodes[3]));
    }
  }
  t.Print();
  std::printf("(planted satisfiable instances; node budget 5e7 — a hit "
              "means the configuration gave up)\n");
  return 0;
}
