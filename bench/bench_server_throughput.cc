// Server throughput under mixed read/write traffic: an in-process
// qc_serverd (real loopback sockets, real admission control) is driven by
// 1 → 64 concurrent clients issuing triangle queries with a configurable
// fraction of single-tuple mutations. Reported per step: sustained
// requests/sec plus p50/p99 query latency — the MVCC claim under test is
// that writer traffic never blocks readers (each query runs against its
// pinned snapshot) and that the version-keyed IndexCache keeps serving
// across snapshots.
//
// Flags: --step-ms N (per-step duration, default 700), --max-clients N
// (default 64), --write-ratio PCT (default 20), --json FILE.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "kernels/dispatch.h"
#include "server/client.h"
#include "server/server.h"
#include "util/rng.h"

namespace {

using namespace qc;

constexpr char kQuery[] = "R1(a,b), R2(a,c), R3(b,c)";

/// Random triangle-shaped dataset: three binary relations over a small
/// domain so the join does real work but answers stay bounded.
std::string MakeDataset(int rows_per_relation, int domain, util::Rng* rng) {
  std::string text = "query: R1(a,b), R2(a,c), R3(b,c)\n";
  for (const char* name : {"R1", "R2", "R3"}) {
    text += std::string("relation ") + name + ":\n";
    for (int i = 0; i < rows_per_relation; ++i) {
      text += std::to_string(rng->Next() % domain);
      text += ' ';
      text += std::to_string(rng->Next() % domain);
      text += '\n';
    }
  }
  return text;
}

struct StepResult {
  std::uint64_t queries = 0;
  std::uint64_t mutations = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::vector<double> latencies_ms;
};

void Worker(const std::string& host, int port, std::uint64_t step_ms,
            int write_ratio, unsigned seed, StepResult* out) {
  server::Client client;
  std::string error;
  if (!client.Connect(host, port, &error)) {
    out->errors++;
    return;
  }
  std::uint64_t rng = 0x9e3779b97f4a7c15ull ^ seed;
  auto next_rand = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(step_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (write_ratio > 0 &&
        static_cast<int>(next_rand() % 100) < write_ratio) {
      std::string body = "relation R1:\n" +
                         std::to_string(next_rand() % 48) + " " +
                         std::to_string(next_rand() % 48) + "\n";
      server::MutateReply r = client.Mutate(body);
      if (!r.ok || r.rejected) {
        out->errors++;
        return;
      }
      out->mutations++;
      continue;
    }
    const auto t0 = std::chrono::steady_clock::now();
    server::QueryReply r = client.Query(kQuery);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!r.ok) {
      out->errors++;
      return;
    }
    if (r.rejected) {
      out->rejected++;
      continue;
    }
    out->queries++;
    out->latencies_ms.push_back(ms);
  }
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * (idx - double(lo));
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json(&argc, argv);
  std::uint64_t step_ms = 700;
  int max_clients = 64;
  int write_ratio = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--step-ms") == 0 && i + 1 < argc) {
      step_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-clients") == 0 && i + 1 < argc) {
      max_clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--write-ratio") == 0 && i + 1 < argc) {
      write_ratio = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--step-ms N] [--max-clients N] "
                   "[--write-ratio PCT] [--json FILE]\n",
                   argv[0]);
      return 1;
    }
  }

  bench::Banner("server throughput: MVCC snapshots + admission control",
                "writers never block readers; queries/sec should scale with "
                "clients until the executor pool saturates, then hold (not "
                "collapse) as admission queues the excess");

  server::ServerOptions options;
  options.session.index_cache_mb = 64;
  const unsigned hw = std::thread::hardware_concurrency();
  options.admission.max_concurrent = hw > 0 ? static_cast<int>(hw) : 8;
  options.admission.queue_capacity = 256;
  server::QueryServer server(options);

  util::Rng rng(7);
  const std::string dataset = MakeDataset(1500, 48, &rng);
  api::DatasetLoad load;
  server.database().Mutate([&](db::Database& db) {
    load = api::LoadDataset(dataset, &db, false);
    return load.ok ? db::MutationResult::Ok()
                   : db::MutationResult::Fail("seed rejected");
  });
  if (!load.ok) {
    std::fprintf(stderr, "seed dataset rejected\n");
    return 1;
  }

  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("\nserver on 127.0.0.1:%d  executors=%d  write-ratio=%d%%  "
              "step=%llums  simd=%s\n",
              server.port(), options.admission.max_concurrent, write_ratio,
              static_cast<unsigned long long>(step_ms),
              kernels::SimdLevelName(kernels::ActiveSimdLevel()));

  util::Table t({"clients", "req/s", "queries", "mutations", "p50 ms",
                 "p99 ms", "rejected", "errors"});
  std::vector<double> clients_series, qps_series;
  for (int clients = 1; clients <= max_clients; clients *= 2) {
    std::vector<StepResult> results(static_cast<std::size_t>(clients));
    std::vector<std::thread> threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back(Worker, options.host, server.port(), step_ms,
                           write_ratio, static_cast<unsigned>(c + 1),
                           &results[static_cast<std::size_t>(c)]);
    }
    for (auto& th : threads) th.join();
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    StepResult total;
    std::vector<double> latencies;
    for (StepResult& r : results) {
      total.queries += r.queries;
      total.mutations += r.mutations;
      total.rejected += r.rejected;
      total.errors += r.errors;
      latencies.insert(latencies.end(), r.latencies_ms.begin(),
                       r.latencies_ms.end());
    }
    std::sort(latencies.begin(), latencies.end());
    const double p50 = Percentile(latencies, 0.50);
    const double p99 = Percentile(latencies, 0.99);
    const double qps =
        wall_ms > 0.0
            ? double(total.queries + total.mutations) * 1000.0 / wall_ms
            : 0.0;
    t.AddRowOf(clients, qps, static_cast<unsigned long long>(total.queries),
               static_cast<unsigned long long>(total.mutations), p50, p99,
               static_cast<unsigned long long>(total.rejected),
               static_cast<unsigned long long>(total.errors));
    clients_series.push_back(clients);
    qps_series.push_back(qps);
    json.Record("server.qps", {{"clients", double(clients)},
                               {"write_ratio", double(write_ratio)}},
                qps);
    json.Record("server.p50_ms", {{"clients", double(clients)}}, p50);
    json.Record("server.p99_ms", {{"clients", double(clients)}}, p99);
    if (total.errors > 0) {
      std::fprintf(stderr, "transport errors at %d clients\n", clients);
      server.Stop();
      return 1;
    }
  }
  t.Print();
  std::printf("qps scaling exponent in clients: %.2f (1.0 = linear, 0.0 = "
              "saturated)\n",
              bench::FitPowerLawExponent(clients_series, qps_series));

  server.Stop();
  std::printf("\nfinal server stats: %s\n", server.StatsJson().c_str());
  return 0;
}
