// E19 — Section 6's dynamic lower bounds (OMv/OuMv, [34]): incremental
// view maintenance against the mutation stream. Three workloads:
//
//   A  acyclic chain R(a,b) S(b,c) T(c,d), random sparse updates — the
//      delta rule re-sweeps only dirty subtrees of the join tree, so one
//      update costs o(full recompute); measured as update throughput of
//      the maintained view vs a naive recompute-per-update baseline.
//   B  OuMv-style adversarial stream on R(a,b) S(b,c): S is a hub table
//      whose fanout F is the dirty-subtree width. Every update to R joins
//      through a hub, forcing the delta sweep to touch F rows — as F grows
//      (k = N/F hubs shrink), per-update cost degrades toward the full
//      recompute, which is exactly the OMv-hardness shape: no IVM
//      algorithm gets strongly sublinear worst-case updates unless the
//      OMv conjecture fails.
//   C  triangle counting under edge inserts (the Section 6.2 query):
//      per-edge delta counting vs static recount.
//
// Every maintained answer is checked bit-identical against RecomputeView
// on a snapshot — a speedup with a wrong count is a disqualification, so
// correctness failures hard-fail the binary (exit 1).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "db/database.h"
#include "db/ivm.h"
#include "db/mvcc.h"
#include "db/parser.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace qc;

db::ViewDefinition ChainDef() {
  db::ViewDefinition def;
  def.name = "chain";
  def.kind = db::ViewDefinition::Kind::kJoin;
  def.text = "R(a,b), S(b,c), T(c,d)";
  def.query = *db::ParseJoinQuery(def.text);
  return def;
}

db::ViewDefinition HubDef() {
  db::ViewDefinition def;
  def.name = "hub";
  def.kind = db::ViewDefinition::Kind::kJoin;
  def.text = "R(a,b), S(b,c)";
  def.query = *db::ParseJoinQuery(def.text);
  return def;
}

db::ViewDefinition TriDef() {
  db::ViewDefinition def;
  def.name = "tri";
  def.kind = db::ViewDefinition::Kind::kTriangleCount;
  def.relation = "E";
  def.text = "E";
  return def;
}

bool g_correct = true;

void CheckAgainstRecompute(db::MvccDatabase& mvcc, db::ViewRegistry& views,
                           const db::ViewDefinition& def) {
  db::MvccSnapshot snap = mvcc.Snapshot();
  db::ViewRead maintained = views.Read(def.name);
  db::ViewRead expected = db::RecomputeView(def, *snap.db, snap.epoch);
  if (!maintained.ok || !expected.ok ||
      maintained.rows != expected.rows ||
      maintained.attributes != expected.attributes) {
    std::fprintf(stderr,
                 "FAIL: view '%s' diverged from recompute at epoch %llu\n",
                 def.name.c_str(),
                 static_cast<unsigned long long>(snap.epoch));
    g_correct = false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json(&argc, argv);
  bench::Banner(
      "E19: dynamic IVM vs OMv-style adversarial streams (Section 6, [34])",
      "acyclic deltas: o(recompute) per update; OuMv hub streams: per-"
      "update cost degrades with forced fanout, the OMv-hardness shape");

  // --- Workload A: acyclic chain, random sparse updates -----------------
  std::printf(
      "\n--- A: chain R(a,b) S(b,c) T(c,d), random updates "
      "(incremental vs naive recompute-per-update) ---\n");
  util::Table ta({"N", "updates", "incr ms/upd", "naive ms/upd", "speedup"});
  double gate_speedup = 0;
  for (int n : {10000, 100000}) {
    util::Rng rng(7);
    auto fill = [&](int rows) {
      std::vector<db::Tuple> t;
      t.reserve(rows);
      for (int i = 0; i < rows; ++i) {
        t.push_back({db::Value(rng.Next() % n), db::Value(rng.Next() % n)});
      }
      return t;
    };
    db::MvccDatabase mvcc;
    db::ViewRegistry views;
    mvcc.AttachViews(&views);
    (void)mvcc.SetRelation("R", 2, fill(n));
    (void)mvcc.SetRelation("S", 2, fill(n));
    (void)mvcc.SetRelation("T", 2, fill(n));
    const db::ViewDefinition def = ChainDef();
    if (!mvcc.RegisterView(def)) {
      std::fprintf(stderr, "FAIL: registration\n");
      return 1;
    }

    // Incremental: every update flows through the delta rule.
    const int kIncrUpdates = 512;
    util::Timer incr;
    for (int i = 0; i < kIncrUpdates; ++i) {
      const char* rels[3] = {"R", "S", "T"};
      (void)mvcc.AddTuple(rels[i % 3], {db::Value(rng.Next() % n),
                                        db::Value(rng.Next() % n)});
    }
    const double incr_ms = incr.Millis() / kIncrUpdates;
    CheckAgainstRecompute(mvcc, views, def);

    // Naive baseline: recompute the full view after each update (few
    // updates — it is slow by design).
    const int kNaiveUpdates = 16;
    util::Timer naive;
    for (int i = 0; i < kNaiveUpdates; ++i) {
      (void)mvcc.AddTuple("S", {db::Value(rng.Next() % n),
                                db::Value(rng.Next() % n)});
      db::MvccSnapshot snap = mvcc.Snapshot();
      db::ViewRead full = db::RecomputeView(def, *snap.db, snap.epoch);
      if (!full.ok) g_correct = false;
    }
    const double naive_ms = naive.Millis() / kNaiveUpdates;
    CheckAgainstRecompute(mvcc, views, def);

    const double speedup = incr_ms > 0 ? naive_ms / incr_ms : 0;
    if (n >= 100000) gate_speedup = speedup;
    ta.AddRowOf(n, kIncrUpdates, incr_ms, naive_ms, speedup);
    json.Record("ivm.chain.incr_ms_per_update", {{"n", double(n)}}, incr_ms);
    json.Record("ivm.chain.naive_ms_per_update", {{"n", double(n)}},
                naive_ms);
    json.Record("ivm.chain.speedup", {{"n", double(n)}}, speedup);
  }
  ta.Print();
  std::printf(
      "(dirty-subtree sweeps touch O(delta * matched rows); the naive "
      "baseline rescans all N rows per atom on every update)\n");

  // --- Workload B: OuMv-style hub stream --------------------------------
  std::printf(
      "\n--- B: adversarial hub stream R(a,b) S(b,c), N=40000 S-rows, "
      "k hubs of fanout F=N/k (every R update joins through a hub) ---\n");
  util::Table tb({"hubs k", "fanout F", "incr ms/upd", "rows/delta"});
  {
    const int n = 40000;
    for (int k : {40000, 200, 16, 1}) {
      const int fanout = n / k;
      db::MvccDatabase mvcc;
      db::ViewRegistry views;
      mvcc.AttachViews(&views);
      util::Rng rng(11);
      // R starts empty-ish; S maps hub h -> F distinct c values.
      std::vector<db::Tuple> s_rows;
      s_rows.reserve(n);
      for (int h = 0; h < k; ++h) {
        for (int f = 0; f < fanout; ++f) {
          s_rows.push_back({db::Value(h), db::Value(f)});
        }
      }
      (void)mvcc.SetRelation("R", 2, {{0, 0}});
      (void)mvcc.SetRelation("S", 2, std::move(s_rows));
      const db::ViewDefinition def = HubDef();
      if (!mvcc.RegisterView(def)) {
        std::fprintf(stderr, "FAIL: registration\n");
        return 1;
      }
      db::IvmStats before = views.stats();
      // Adversary: every update is a fresh R row pointing at a hub, so
      // the delta sweep must materialize its full fanout.
      const int kUpdates = 256;
      util::Timer timer;
      for (int i = 0; i < kUpdates; ++i) {
        (void)mvcc.AddTuple("R", {db::Value(1 + i), db::Value(
                                      static_cast<db::Value>(
                                          rng.Next() % k))});
      }
      const double ms = timer.Millis() / kUpdates;
      db::IvmStats after = views.stats();
      const double rows_per_delta =
          double(after.rows_delta_applied - before.rows_delta_applied) /
          kUpdates;
      CheckAgainstRecompute(mvcc, views, def);
      tb.AddRowOf(k, fanout, ms, rows_per_delta);
      json.Record("ivm.hub.incr_ms_per_update", {{"fanout", double(fanout)}},
                  ms);
      json.Record("ivm.hub.rows_per_delta", {{"fanout", double(fanout)}},
                  rows_per_delta);
    }
  }
  tb.Print();
  std::printf(
      "(per-update cost tracks the forced fanout F — the worst-case "
      "degradation the OMv conjecture says is unavoidable)\n");

  // --- Workload C: triangle counting under edge inserts -----------------
  std::printf(
      "\n--- C: triangle count over E, per-edge delta vs static recount "
      "---\n");
  util::Table tc({"nodes", "edges", "incr us/edge", "recount ms"});
  for (int nodes : {300, 1000}) {
    db::MvccDatabase mvcc;
    db::ViewRegistry views;
    mvcc.AttachViews(&views);
    util::Rng rng(3);
    (void)mvcc.SetRelation("E", 2, {{0, 1}});
    const db::ViewDefinition def = TriDef();
    if (!mvcc.RegisterView(def)) {
      std::fprintf(stderr, "FAIL: registration\n");
      return 1;
    }
    const int kEdges = 4000;
    util::Timer timer;
    for (int i = 0; i < kEdges; ++i) {
      (void)mvcc.AddTuple("E", {db::Value(rng.Next() % nodes),
                                db::Value(rng.Next() % nodes)});
    }
    const double us = timer.Millis() * 1000.0 / kEdges;
    db::MvccSnapshot snap = mvcc.Snapshot();
    util::Timer recount;
    db::ViewRead full = db::RecomputeView(def, *snap.db, snap.epoch);
    const double recount_ms = recount.Millis();
    db::ViewRead maintained = views.Read("tri");
    if (!full.ok || !maintained.ok || full.rows != maintained.rows) {
      std::fprintf(stderr, "FAIL: triangle count diverged\n");
      g_correct = false;
    }
    tc.AddRowOf(nodes, kEdges, us, recount_ms);
    json.Record("ivm.triangle.incr_us_per_edge", {{"nodes", double(nodes)}},
                us);
    json.Record("ivm.triangle.recount_ms", {{"nodes", double(nodes)}},
                recount_ms);
  }
  tc.Print();
  std::printf(
      "(one edge's delta intersects three adjacency lists — o(recount) "
      "per update on sparse streams)\n");

  if (!g_correct) return 1;
  std::printf("\nincremental speedup at N=100000 (workload A): %.1fx %s\n",
              gate_speedup,
              gate_speedup >= 5.0 ? "(>= 5x target met)"
                                  : "(below 5x target)");
  return 0;
}
