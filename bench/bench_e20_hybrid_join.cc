// E20 — the degree-split hybrid MM/WCOJ planner (DESIGN.md §15): where does
// the blocked-Boolean-MM heavy core start beating the pure trie GenericJoin,
// and how much does the split cost when nothing is heavy? Hub graphs are the
// extreme yes-case (a dense quadratic core the MM route crushes), Zipf
// exponents sweep the skew axis, and a near-regular G(n, m) instance pins
// the all-light delegation overhead that the CI gate enforces.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <vector>

#include "api/query_api.h"
#include "api/session_options.h"
#include "bench_util.h"
#include "core/autosolver.h"
#include "db/database.h"
#include "db/generic_join.h"
#include "db/hybrid_join.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/run_report.h"
#include "util/timer.h"
#include "util/trace.h"

namespace {

using namespace qc;

db::JoinQuery TriangleQuery() {
  db::JoinQuery q;
  q.Add("E", {"a", "b"}).Add("E", {"a", "c"}).Add("E", {"b", "c"});
  return q;
}

db::JoinQuery FourCycleQuery() {
  db::JoinQuery q;
  q.Add("E", {"a", "b"}).Add("E", {"b", "c"}).Add("E", {"c", "d"}).Add(
      "E", {"a", "d"});
  return q;
}

/// Both orientations of every edge, so the pattern queries above see a
/// symmetric edge relation (same encoding the hybrid planner tests use).
db::Database EdgeDb(const graph::Graph& g) {
  db::FlatRelation edges(2);
  edges.Reserve(static_cast<std::size_t>(2 * g.num_edges()));
  for (const auto& [u, v] : g.Edges()) {
    db::Value row[2] = {u, v};
    edges.PushRow(row);
    row[0] = v;
    row[1] = u;
    edges.PushRow(row);
  }
  db::Database d;
  d.SetRelation("E", std::move(edges));
  return d;
}

struct TimedCount {
  std::uint64_t count = 0;
  double ms = 0;
};

TimedCount PureCount(const db::JoinQuery& q, const db::Database& d) {
  util::Timer timer;
  TimedCount r;
  r.count = db::GenericJoin(q, d).Count();
  r.ms = timer.Millis();
  return r;
}

/// Forced hybrid (delta = 0 means the planner's own sqrt(N) auto-pick).
TimedCount HybridCount(const db::JoinQuery& q, const db::Database& d,
                       std::int64_t delta, db::HybridPlan* plan_out) {
  util::Timer timer;
  TimedCount r;
  db::HybridJoin hybrid(q, d, ExecutionContext(), delta);
  r.count = hybrid.Count();
  r.ms = timer.Millis();
  if (plan_out != nullptr) *plan_out = hybrid.plan();
  return r;
}

/// Bit-identity: hybrid Evaluate at 1/2/8 threads must reproduce the pure
/// GenericJoin output exactly (same tuples, same order).
bool BitIdentical(const db::JoinQuery& q, const db::Database& d,
                  std::int64_t delta) {
  db::JoinResult ref = db::GenericJoin(q, d).Evaluate();
  for (int threads : {1, 2, 8}) {
    ExecutionContext ctx;
    ctx.threads = threads;
    db::HybridJoin hybrid(q, d, ctx, delta);
    db::JoinResult got = hybrid.Evaluate();
    if (got.tuples != ref.tuples) return false;
  }
  return true;
}

double BestOf(int reps, const db::JoinQuery& q, const db::Database& d,
              bool hybrid, std::int64_t delta) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    double ms = hybrid ? HybridCount(q, d, delta, nullptr).ms
                       : PureCount(q, d).ms;
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qc;
  bench::JsonReport json(&argc, argv);
  const char* report_path = nullptr;
  bool check_light_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report-json") == 0 && i + 1 < argc) {
      report_path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      --i;
    } else if (std::strcmp(argv[i], "--check-light-overhead") == 0) {
      check_light_overhead = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      argc -= 1;
      --i;
    }
  }
  if (report_path != nullptr) util::Trace::Enable();
  auto run_start = std::chrono::steady_clock::now();
  bench::Banner("E20: degree-split hybrid MM/WCOJ crossover",
                "on skewed instances the blocked-MM heavy core beats the "
                "pure trie GenericJoin; on near-regular instances the split "
                "delegates with bounded overhead");

  util::Rng rng(20);
  db::JoinQuery tri = TriangleQuery();
  db::JoinQuery cyc = FourCycleQuery();
  bool ok = true;
  db::HybridPlan last_plan;

  // --- 1. Triangle crossover on hub graphs: sweep the heavy-core size. ---
  std::printf("\n--- triangles on HubGraph(n=2000, hubs=H, periphery m=4000), "
              "auto delta ---\n");
  util::Table t1({"hubs", "m", "triangles", "pure ms", "auto ms",
                  "mm(d=1) ms", "best speedup", "heavy rows", "light rows"});
  double best_hub_speedup = 0;
  for (int hubs : {2, 4, 8, 16, 32, 64}) {
    graph::Graph g = graph::HubGraph(2000, hubs, 4000, &rng);
    db::Database d = EdgeDb(g);
    TimedCount pure = PureCount(tri, d);
    db::HybridPlan plan;
    TimedCount hyb = HybridCount(tri, d, 0, &plan);
    // Δ=1 pushes every value heavy: the pure blocked-MM route, the far end
    // of the frontier the delta sweep below maps.
    db::HybridPlan mm_plan;
    TimedCount mm = HybridCount(tri, d, 1, &mm_plan);
    if (pure.count != hyb.count || pure.count != mm.count) {
      std::fprintf(stderr, "COUNT MISMATCH hubs=%d pure=%llu hybrid=%llu "
                   "mm=%llu\n",
                   hubs, (unsigned long long)pure.count,
                   (unsigned long long)hyb.count,
                   (unsigned long long)mm.count);
      ok = false;
    }
    double best_ms = std::min(hyb.ms, mm.ms);
    double speedup = best_ms > 0 ? pure.ms / best_ms : 0;
    best_hub_speedup = std::max(best_hub_speedup, speedup);
    last_plan = plan;
    t1.AddRowOf(hubs, g.num_edges(), (unsigned long long)hyb.count, pure.ms,
                hyb.ms, mm.ms, speedup, (unsigned long long)plan.heavy_rows,
                (unsigned long long)plan.light_rows);
    json.Record("e20.triangle.hub.pure",
                {{"hubs", double(hubs)}, {"m", double(g.num_edges())}},
                pure.ms);
    json.Record("e20.triangle.hub.hybrid",
                {{"hubs", double(hubs)},
                 {"m", double(g.num_edges())},
                 {"delta", double(plan.threshold)}},
                hyb.ms);
    json.Record("e20.triangle.hub.hybrid_mm",
                {{"hubs", double(hubs)},
                 {"m", double(g.num_edges())},
                 {"delta", 1.0}},
                mm.ms);
  }
  t1.Print();
  std::printf("best hub-workload speedup: %.2fx (acceptance floor 1.5x)\n",
              best_hub_speedup);

  // --- 2. Delta frontier on one skewed instance: where does the split pay?
  std::printf("\n--- delta sweep, triangles on HubGraph(n=2000, hubs=32, "
              "m=4000) ---\n");
  {
    graph::Graph g = graph::HubGraph(2000, 32, 4000, &rng);
    db::Database d = EdgeDb(g);
    TimedCount pure = PureCount(tri, d);
    util::Table t2({"delta", "heavy values", "delegated", "hybrid ms",
                    "pure ms"});
    for (std::int64_t delta : {1, 4, 16, 64, 256, 1024, 8192}) {
      db::HybridPlan plan;
      TimedCount hyb = HybridCount(tri, d, delta, &plan);
      if (pure.count != hyb.count) {
        std::fprintf(stderr, "COUNT MISMATCH delta=%lld\n",
                     (long long)delta);
        ok = false;
      }
      t2.AddRowOf((long long)delta, (unsigned long long)plan.heavy_values,
                  plan.delegated ? "yes" : "no", hyb.ms, pure.ms);
      json.Record("e20.triangle.delta_sweep",
                  {{"delta", double(delta)},
                   {"heavy_values", double(plan.heavy_values)}},
                  hyb.ms);
    }
    t2.Print();
  }

  // --- 3. Zipf skew axis: the crossover as the tail fattens. ---
  std::printf("\n--- triangles on ZipfGraph(n=1500, m<=30000), exponent "
              "sweep, auto delta ---\n");
  util::Table t3({"exponent", "m", "triangles", "pure ms", "hybrid ms",
                  "speedup"});
  for (double exponent : {1.0, 1.5, 2.0}) {
    graph::Graph g = graph::ZipfGraph(1500, 30000, exponent, &rng);
    db::Database d = EdgeDb(g);
    TimedCount pure = PureCount(tri, d);
    db::HybridPlan plan;
    TimedCount hyb = HybridCount(tri, d, 0, &plan);
    if (pure.count != hyb.count) {
      std::fprintf(stderr, "COUNT MISMATCH zipf exponent=%.1f\n", exponent);
      ok = false;
    }
    double speedup = hyb.ms > 0 ? pure.ms / hyb.ms : 0;
    t3.AddRowOf(exponent, g.num_edges(), (unsigned long long)hyb.count,
                pure.ms, hyb.ms, speedup);
    json.Record("e20.triangle.zipf.pure",
                {{"exponent", exponent}, {"m", double(g.num_edges())}},
                pure.ms);
    json.Record("e20.triangle.zipf.hybrid",
                {{"exponent", exponent},
                 {"m", double(g.num_edges())},
                 {"delta", double(plan.threshold)}},
                hyb.ms);
  }
  t3.Print();

  // --- 4. 4-cycles, Count mode (the popcount path never materializes the
  // quadratically exploding output). ---
  std::printf("\n--- 4-cycles on HubGraph(n=400, hubs=H, m=1500), Count "
              "only, auto delta ---\n");
  util::Table t4({"hubs", "4-cycles", "pure ms", "hybrid ms", "speedup"});
  for (int hubs : {4, 8, 16}) {
    graph::Graph g = graph::HubGraph(400, hubs, 1500, &rng);
    db::Database d = EdgeDb(g);
    TimedCount pure = PureCount(cyc, d);
    db::HybridPlan plan;
    TimedCount hyb = HybridCount(cyc, d, 0, &plan);
    if (pure.count != hyb.count) {
      std::fprintf(stderr, "COUNT MISMATCH 4-cycle hubs=%d\n", hubs);
      ok = false;
    }
    double speedup = hyb.ms > 0 ? pure.ms / hyb.ms : 0;
    t4.AddRowOf(hubs, (unsigned long long)hyb.count, pure.ms, hyb.ms,
                speedup);
    json.Record("e20.fourcycle.hub.pure", {{"hubs", double(hubs)}}, pure.ms);
    json.Record("e20.fourcycle.hub.hybrid",
                {{"hubs", double(hubs)}, {"delta", double(plan.threshold)}},
                hyb.ms);
  }
  t4.Print();

  // --- 5. Bit-identity spot checks (small instances, full Evaluate). ---
  std::printf("\n--- bit-identity: hybrid Evaluate at 1/2/8 threads vs pure "
              "GenericJoin ---\n");
  {
    graph::Graph hub = graph::HubGraph(200, 6, 400, &rng);
    graph::Graph zipf = graph::ZipfGraph(120, 600, 1.5, &rng);
    db::Database dh = EdgeDb(hub);
    db::Database dz = EdgeDb(zipf);
    struct Check {
      const char* name;
      const db::JoinQuery* q;
      const db::Database* d;
      std::int64_t delta;
    };
    const Check checks[] = {
        {"triangle/hub/auto", &tri, &dh, 0},
        {"triangle/hub/delta=1", &tri, &dh, 1},
        {"triangle/zipf/auto", &tri, &dz, 0},
        {"4cycle/hub/auto", &cyc, &dh, 0},
        {"4cycle/zipf/delta=4", &cyc, &dz, 4},
    };
    for (const Check& c : checks) {
      bool same = BitIdentical(*c.q, *c.d, c.delta);
      std::printf("  %-24s %s\n", c.name, same ? "identical" : "MISMATCH");
      if (!same) ok = false;
    }
  }

  // --- 6. All-light overhead: near-regular G(n, m), auto delta finds no
  // heavy values, the planner delegates — the gate bounds the routing tax.
  std::printf("\n--- all-light delegation overhead on RandomGnm(2000, 6000) "
              "---\n");
  {
    graph::Graph g = graph::RandomGnm(2000, 6000, &rng);
    db::Database d = EdgeDb(g);
    db::HybridPlan plan;
    TimedCount probe = HybridCount(tri, d, 0, &plan);
    if (probe.count != PureCount(tri, d).count) ok = false;
    double pure_ms = BestOf(3, tri, d, /*hybrid=*/false, 0);
    double hyb_ms = BestOf(3, tri, d, /*hybrid=*/true, 0);
    double overhead = pure_ms > 0 ? (hyb_ms - pure_ms) / pure_ms * 100.0
                                  : 0.0;
    std::printf("delegated=%s  pure %.3f ms  hybrid %.3f ms  overhead "
                "%+.1f%% (CI gate: <= +10%%)\n",
                plan.delegated ? "yes" : "no", pure_ms, hyb_ms, overhead);
    json.Record("e20.light.overhead.pure", {{"m", double(g.num_edges())}},
                pure_ms);
    json.Record("e20.light.overhead.hybrid",
                {{"m", double(g.num_edges())}}, hyb_ms);
    if (check_light_overhead && hyb_ms > pure_ms * 1.10) {
      std::fprintf(stderr,
                   "LIGHT-OVERHEAD GATE FAILED: hybrid %.3f ms vs pure "
                   "%.3f ms (> +10%%)\n",
                   hyb_ms, pure_ms);
      ok = false;
    }
  }

  // Emission through the shared api::FinishReport path: the planner section
  // carries the last hub-sweep plan, the trace carries the hybrid.* spans.
  api::SessionOptions report_opts;
  if (report_path != nullptr) report_opts.report_json = report_path;
  util::RunReport report;
  report.tool = "bench_e20_hybrid_join";
  report.status = util::RunStatus::kCompleted;
  report.threads = 1;
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - run_start)
                       .count();
  api::FillPlannerSection(&report, last_plan);
  if (report_path != nullptr) {
    report.trace = util::Trace::Collect();
    util::Trace::Disable();
  }
  int rc = api::FinishReport(report_opts, report, report.status);
  return ok ? rc : 1;
}
