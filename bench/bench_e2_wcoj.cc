// E2 — Theorem 3.3: worst-case-optimal joins run in O~(N^{rho*}) while any
// binary join plan can be forced to materialize Omega(N^2) intermediates on
// the triangle query. Uses the classical adversarial "bowtie" instance:
//
//   R1 = R2 = R3 = {(i, 0) : i in [N/2]} u {(0, j) : j in [N/2]}
//
// whose answer has O(N) tuples but whose every pairwise join has ~N^2/4.

#include "bench_util.h"
#include "db/agm.h"
#include "db/generic_join.h"
#include "db/joins.h"
#include "util/rng.h"

namespace {

using namespace qc;

db::JoinQuery Triangle() {
  db::JoinQuery q;
  q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  return q;
}

db::Database BowtieInstance(int n) {
  std::vector<db::Tuple> rel = {{0, 0}};
  for (int i = 1; i <= n / 2; ++i) {
    rel.push_back({i, 0});
    rel.push_back({0, i});
  }
  db::Database d;
  d.SetRelation("R1", 2, rel);
  d.SetRelation("R2", 2, rel);
  d.SetRelation("R3", 2, rel);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json(&argc, argv);
  bench::Banner("E2: worst-case-optimal join vs binary plans (Theorem 3.3)",
                "Generic Join O~(N^{3/2}) on triangles; binary plans pay "
                "Omega(N^2) intermediates on adversarial inputs");

  db::JoinQuery q = Triangle();

  std::printf("\n--- adversarial bowtie instance ---\n");
  util::Table t({"N", "|Q(D)|", "binary max-intermediate", "binary ms",
                 "generic-join ms", "speedup"});
  std::vector<double> ns, binary_times, wcoj_times, intermediates;
  for (int n : {512, 1024, 2048, 4096, 8192}) {
    db::Database d = BowtieInstance(n);
    util::Timer timer;
    db::JoinStats stats;
    db::JoinResult binary = db::EvaluateGreedyBinaryJoin(q, d, &stats);
    double binary_ms = timer.Millis();
    timer.Reset();
    db::GenericJoin gj(q, d);
    std::uint64_t count = gj.Count();
    double wcoj_ms = timer.Millis();
    if (binary.tuples.size() != count) {
      std::printf("MISMATCH: %zu vs %llu\n", binary.tuples.size(),
                  static_cast<unsigned long long>(count));
      return 1;
    }
    t.AddRowOf(n, static_cast<unsigned long long>(count),
               static_cast<unsigned long long>(stats.max_intermediate),
               binary_ms, wcoj_ms, binary_ms / std::max(wcoj_ms, 1e-6));
    ns.push_back(n);
    binary_times.push_back(binary_ms);
    wcoj_times.push_back(wcoj_ms);
    intermediates.push_back(static_cast<double>(stats.max_intermediate));
    json.Record("e2.bowtie.binary", {{"n", double(n)}}, binary_ms);
    json.Record("e2.bowtie.generic_join", {{"n", double(n)}}, wcoj_ms);
  }
  t.Print();
  std::printf("binary-plan intermediate exponent: %.2f (paper: 2)\n",
              bench::FitPowerLawExponent(ns, intermediates));
  std::printf("binary-plan time exponent:         %.2f\n",
              bench::FitPowerLawExponent(ns, binary_times));
  std::printf("generic-join time exponent:        %.2f (paper: ~1, output-"
              "linear here)\n",
              bench::FitPowerLawExponent(ns, wcoj_times));
  json.Record("e2.bowtie.binary", {{"n", ns.back()}}, binary_times.back(),
              bench::FitPowerLawExponent(ns, binary_times));
  json.Record("e2.bowtie.generic_join", {{"n", ns.back()}},
              wcoj_times.back(), bench::FitPowerLawExponent(ns, wcoj_times));

  std::printf("\n--- AGM-extremal instance (output = N^{3/2}) ---\n");
  auto agm = db::AnalyzeAgm(q);
  util::Table t2({"N", "|Q(D)|", "generic-join ms", "ms / N^{1.5}"});
  std::vector<double> n2, time2;
  for (int base : {16, 24, 32, 48, 64}) {
    long long n = 0;
    db::Database d = db::AgmTightInstance(q, *agm, base, &n);
    util::Timer timer;
    std::uint64_t count = db::GenericJoin(q, d).Count();
    double ms = timer.Millis();
    t2.AddRowOf(static_cast<long long>(n),
                static_cast<unsigned long long>(count), ms,
                ms / std::pow(static_cast<double>(n), 1.5));
    n2.push_back(static_cast<double>(n));
    time2.push_back(ms);
    json.Record("e2.agm.generic_join", {{"n", double(n)}}, ms);
  }
  t2.Print();
  std::printf("generic-join time exponent on extremal inputs: %.2f "
              "(paper: 3/2)\n",
              bench::FitPowerLawExponent(n2, time2));
  json.Record("e2.agm.generic_join", {{"n", n2.back()}}, time2.back(),
              bench::FitPowerLawExponent(n2, time2));

  std::printf("\n--- random instance (both fine; who wins) ---\n");
  util::Rng rng(3);
  util::Table t3({"N", "|Q(D)|", "binary ms", "generic-join ms"});
  for (int n : {1000, 4000, 16000}) {
    db::Database d = db::RandomDatabase(q, n, 3 * n / 2, &rng);
    util::Timer timer;
    db::JoinStats stats;
    db::JoinResult binary = db::EvaluateGreedyBinaryJoin(q, d, &stats);
    double binary_ms = timer.Millis();
    timer.Reset();
    std::uint64_t count = db::GenericJoin(q, d).Count();
    double wcoj_ms = timer.Millis();
    t3.AddRowOf(n, static_cast<unsigned long long>(count), binary_ms, wcoj_ms);
    if (binary.tuples.size() != count) return 1;
  }
  t3.Print();
  return 0;
}
