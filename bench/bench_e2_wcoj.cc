// E2 — Theorem 3.3: worst-case-optimal joins run in O~(N^{rho*}) while any
// binary join plan can be forced to materialize Omega(N^2) intermediates on
// the triangle query. Uses the classical adversarial "bowtie" instance:
//
//   R1 = R2 = R3 = {(i, 0) : i in [N/2]} u {(0, j) : j in [N/2]}
//
// whose answer has O(N) tuples but whose every pairwise join has ~N^2/4.

#include <cstring>

#include "bench_util.h"
#include "db/agm.h"
#include "db/generic_join.h"
#include "db/index_cache.h"
#include "db/joins.h"
#include "util/rng.h"

namespace {

using namespace qc;

db::JoinQuery Triangle() {
  db::JoinQuery q;
  q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  return q;
}

db::Database BowtieInstance(int n) {
  std::vector<db::Tuple> rel = {{0, 0}};
  for (int i = 1; i <= n / 2; ++i) {
    rel.push_back({i, 0});
    rel.push_back({0, i});
  }
  db::Database d;
  d.SetRelation("R1", 2, rel);
  d.SetRelation("R2", 2, rel);
  d.SetRelation("R3", 2, rel);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json(&argc, argv);
  // --warm-cache-only: run just the warm-vs-cold cache section (the fast CI
  // variant; the adversarial sweeps above it take far longer).
  bool warm_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--warm-cache-only") == 0) warm_only = true;
  }
  bench::Banner("E2: worst-case-optimal join vs binary plans (Theorem 3.3)",
                "Generic Join O~(N^{3/2}) on triangles; binary plans pay "
                "Omega(N^2) intermediates on adversarial inputs");

  db::JoinQuery q = Triangle();

  if (!warm_only) {
  std::printf("\n--- adversarial bowtie instance ---\n");
  util::Table t({"N", "|Q(D)|", "binary max-intermediate", "binary ms",
                 "generic-join ms", "speedup"});
  std::vector<double> ns, binary_times, wcoj_times, intermediates;
  for (int n : {512, 1024, 2048, 4096, 8192}) {
    db::Database d = BowtieInstance(n);
    util::Timer timer;
    db::JoinStats stats;
    db::JoinResult binary = db::EvaluateGreedyBinaryJoin(q, d, &stats);
    double binary_ms = timer.Millis();
    timer.Reset();
    db::GenericJoin gj(q, d);
    std::uint64_t count = gj.Count();
    double wcoj_ms = timer.Millis();
    if (binary.tuples.size() != count) {
      std::printf("MISMATCH: %zu vs %llu\n", binary.tuples.size(),
                  static_cast<unsigned long long>(count));
      return 1;
    }
    t.AddRowOf(n, static_cast<unsigned long long>(count),
               static_cast<unsigned long long>(stats.max_intermediate),
               binary_ms, wcoj_ms, binary_ms / std::max(wcoj_ms, 1e-6));
    ns.push_back(n);
    binary_times.push_back(binary_ms);
    wcoj_times.push_back(wcoj_ms);
    intermediates.push_back(static_cast<double>(stats.max_intermediate));
    json.Record("e2.bowtie.binary", {{"n", double(n)}}, binary_ms);
    json.Record("e2.bowtie.generic_join", {{"n", double(n)}}, wcoj_ms);
  }
  t.Print();
  std::printf("binary-plan intermediate exponent: %.2f (paper: 2)\n",
              bench::FitPowerLawExponent(ns, intermediates));
  std::printf("binary-plan time exponent:         %.2f\n",
              bench::FitPowerLawExponent(ns, binary_times));
  std::printf("generic-join time exponent:        %.2f (paper: ~1, output-"
              "linear here)\n",
              bench::FitPowerLawExponent(ns, wcoj_times));
  json.Record("e2.bowtie.binary", {{"n", ns.back()}}, binary_times.back(),
              bench::FitPowerLawExponent(ns, binary_times));
  json.Record("e2.bowtie.generic_join", {{"n", ns.back()}},
              wcoj_times.back(), bench::FitPowerLawExponent(ns, wcoj_times));

  std::printf("\n--- AGM-extremal instance (output = N^{3/2}) ---\n");
  auto agm = db::AnalyzeAgm(q);
  util::Table t2({"N", "|Q(D)|", "generic-join ms", "ms / N^{1.5}"});
  std::vector<double> n2, time2;
  for (int base : {16, 24, 32, 48, 64}) {
    long long n = 0;
    db::Database d = db::AgmTightInstance(q, *agm, base, &n);
    util::Timer timer;
    std::uint64_t count = db::GenericJoin(q, d).Count();
    double ms = timer.Millis();
    t2.AddRowOf(static_cast<long long>(n),
                static_cast<unsigned long long>(count), ms,
                ms / std::pow(static_cast<double>(n), 1.5));
    n2.push_back(static_cast<double>(n));
    time2.push_back(ms);
    json.Record("e2.agm.generic_join", {{"n", double(n)}}, ms);
  }
  t2.Print();
  std::printf("generic-join time exponent on extremal inputs: %.2f "
              "(paper: 3/2)\n",
              bench::FitPowerLawExponent(n2, time2));
  json.Record("e2.agm.generic_join", {{"n", n2.back()}}, time2.back(),
              bench::FitPowerLawExponent(n2, time2));

  std::printf("\n--- random instance (both fine; who wins) ---\n");
  util::Rng rng(3);
  util::Table t3({"N", "|Q(D)|", "binary ms", "generic-join ms"});
  for (int n : {1000, 4000, 16000}) {
    db::Database d = db::RandomDatabase(q, n, 3 * n / 2, &rng);
    util::Timer timer;
    db::JoinStats stats;
    db::JoinResult binary = db::EvaluateGreedyBinaryJoin(q, d, &stats);
    double binary_ms = timer.Millis();
    timer.Reset();
    std::uint64_t count = db::GenericJoin(q, d).Count();
    double wcoj_ms = timer.Millis();
    t3.AddRowOf(n, static_cast<unsigned long long>(count), binary_ms, wcoj_ms);
    if (binary.tuples.size() != count) return 1;
  }
  t3.Print();
  }  // !warm_only

  // --- Warm trie-index cache: repeated evaluation of one query. The cold
  // side rebuilds all three atom tries every repetition; the warm side
  // shares one IndexCache, so after the first (priming) evaluation every
  // construction is three cache hits and the run is pure search. Counts
  // must match exactly — the cache never changes answers.
  std::printf("\n--- warm trie-index cache (repeated evaluation) ---\n");
  const int reps = 5;
  util::Table t4({"N", "cold ms", "warm ms", "speedup", "hits", "misses"});
  std::vector<double> n4, cold4, warm4;
  for (int n : {8192, 16384, 32768}) {
    db::Database d = BowtieInstance(n);
    util::Timer timer;
    std::uint64_t cold_count = 0;
    for (int r = 0; r < reps; ++r) {
      cold_count = db::GenericJoin(q, d).Count();
    }
    double cold_ms = timer.Millis() / reps;
    db::IndexCache cache(64ull << 20);
    ExecutionContext cache_ctx;
    cache_ctx.index_cache = &cache;
    std::uint64_t warm_count = db::GenericJoin(q, d, cache_ctx).Count();
    timer.Reset();
    for (int r = 0; r < reps; ++r) {
      warm_count = db::GenericJoin(q, d, cache_ctx).Count();
    }
    double warm_ms = timer.Millis() / reps;
    if (warm_count != cold_count) {
      std::printf("CACHE MISMATCH: warm %llu vs cold %llu\n",
                  static_cast<unsigned long long>(warm_count),
                  static_cast<unsigned long long>(cold_count));
      return 1;
    }
    db::IndexCacheStats cs = cache.stats();
    t4.AddRowOf(n, cold_ms, warm_ms, cold_ms / std::max(warm_ms, 1e-6),
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses));
    n4.push_back(n);
    cold4.push_back(cold_ms);
    warm4.push_back(warm_ms);
    json.Record("e2.warm_cache.cold", {{"n", double(n)}}, cold_ms);
    json.Record("e2.warm_cache.warm",
                {{"n", double(n)},
                 {"hits", double(cs.hits)},
                 {"misses", double(cs.misses)},
                 {"evictions", double(cs.evictions)},
                 {"bytes", double(cs.bytes)}},
                warm_ms);
  }
  t4.Print();
  std::printf("warm/cold speedup at largest N: %.2fx (build_trie skipped on "
              "every warm construction)\n",
              cold4.back() / std::max(warm4.back(), 1e-6));
  return 0;
}
