#ifndef QC_BENCH_BENCH_UTIL_H_
#define QC_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/table.h"
#include "util/timer.h"

namespace qc::bench {

/// Least-squares slope of log(y) against log(x): the empirical exponent of a
/// power-law series. Points with y <= 0 are skipped.
inline double FitPowerLawExponent(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    double lx = std::log(x[i]), ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

/// Least-squares slope of log2(y) against x: the empirical base-2 exponent
/// rate of an exponential series (y ~ 2^{rate * x}).
inline double FitExponentialRate(const std::vector<double>& x,
                                 const std::vector<double>& y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (y[i] <= 0) continue;
    double ly = std::log2(y[i]);
    sx += x[i];
    sy += ly;
    sxx += x[i] * x[i];
    sxy += x[i] * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

/// Machine-readable benchmark output behind the shared `--json <file>`
/// flag. Construct with (&argc, argv): when the flag is present it (and its
/// argument) are removed from argv so downstream parsers — including
/// google-benchmark's Initialize — never see them. Each Record() appends one
/// object {"bench", "params", "wall_ms", "fitted_exponent"}; the full array
/// is written on Flush() (also called from the destructor). Without the
/// flag every call is a no-op, so harnesses can record unconditionally.
class JsonReport {
 public:
  JsonReport(int* argc, char** argv) {
    for (int i = 1; i < *argc; ++i) {
      if (std::string(argv[i]) == "--json" && i + 1 < *argc) {
        path_ = argv[i + 1];
        for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
        *argc -= 2;
        break;
      }
    }
  }
  ~JsonReport() { Flush(); }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  bool enabled() const { return !path_.empty(); }

  /// Appends one record. Pass NaN (the default) as `fitted_exponent` to
  /// emit null — per-point records have no exponent; series summaries do.
  void Record(const std::string& bench,
              const std::vector<std::pair<std::string, double>>& params,
              double wall_ms,
              double fitted_exponent =
                  std::numeric_limits<double>::quiet_NaN()) {
    if (!enabled()) return;
    records_.push_back(Entry{bench, params, wall_ms, fitted_exponent});
  }

  void Flush() {
    if (!enabled() || flushed_) return;
    flushed_ = true;
    // Serialized with the shared util::JsonWriter (the same serializer the
    // RunReport uses), so escaping and number formatting match repo-wide.
    util::JsonWriter w;
    w.BeginArray();
    for (const Entry& e : records_) {
      w.BeginObject();
      w.Key("bench").String(e.bench);
      w.Key("params").BeginObject();
      for (const auto& [name, value] : e.params) w.Key(name).Double(value);
      w.EndObject();
      w.Key("wall_ms").Double(e.wall_ms);
      w.Key("fitted_exponent").Double(e.fitted_exponent);
      w.EndObject();
    }
    w.EndArray();
    FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --json file %s\n", path_.c_str());
      return;
    }
    std::string json = w.Take();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }

 private:
  struct Entry {
    std::string bench;
    std::vector<std::pair<std::string, double>> params;
    double wall_ms;
    double fitted_exponent;
  };

  std::string path_;
  std::vector<Entry> records_;
  bool flushed_ = false;
};

/// Prints the experiment banner used by EXPERIMENTS.md.
inline void Banner(const char* id, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace qc::bench

#endif  // QC_BENCH_BENCH_UTIL_H_
