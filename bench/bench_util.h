#ifndef QC_BENCH_BENCH_UTIL_H_
#define QC_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <vector>

#include "util/table.h"
#include "util/timer.h"

namespace qc::bench {

/// Least-squares slope of log(y) against log(x): the empirical exponent of a
/// power-law series. Points with y <= 0 are skipped.
inline double FitPowerLawExponent(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    double lx = std::log(x[i]), ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

/// Least-squares slope of log2(y) against x: the empirical base-2 exponent
/// rate of an exponential series (y ~ 2^{rate * x}).
inline double FitExponentialRate(const std::vector<double>& x,
                                 const std::vector<double>& y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (y[i] <= 0) continue;
    double ly = std::log2(y[i]);
    sx += x[i];
    sy += ly;
    sxx += x[i] * x[i];
    sxy += x[i] * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

/// Prints the experiment banner used by EXPERIMENTS.md.
inline void Banner(const char* id, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace qc::bench

#endif  // QC_BENCH_BENCH_UTIL_H_
