// E13 — Section 8, the d-uniform hyperclique conjecture: for d = 2 matrix
// multiplication accelerates k-clique detection, but for d >= 3 nothing
// beats enumeration. We measure (a) the d = 3 brute-force growth in n and
// (b) the d = 2 MM speedup that has no d = 3 analogue in this library —
// mirroring the state of the art the conjecture encodes.

#include "bench_util.h"
#include "finegrained/hyperclique.h"
#include "graph/cliques.h"
#include "graph/generators.h"
#include "graph/triangles.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("E13: d-uniform hyperclique (Section 8)",
                "d=2 enjoys MM speedups; d=3 is stuck at enumeration n^k");

  util::Rng rng(1);

  std::printf("\n--- d = 3, k = 4: full enumeration (counting) growth ---\n");
  util::Table t({"n", "edges", "4-hypercliques", "nodes visited", "ms"});
  std::vector<double> ns, nodes;
  for (int n : {16, 24, 32, 48, 64}) {
    graph::Hypergraph h = graph::RandomUniformHypergraph(n, 3, 0.4, &rng);
    finegrained::HypercliqueSearcher searcher(h, 3);
    util::Timer timer;
    std::uint64_t count = searcher.Count(4);
    double ms = timer.Millis();
    t.AddRowOf(n, h.num_edges(), static_cast<unsigned long long>(count),
               static_cast<unsigned long long>(searcher.nodes_visited()), ms);
    ns.push_back(n);
    nodes.push_back(static_cast<double>(searcher.nodes_visited()));
  }
  t.Print();
  std::printf("search-node exponent in n: %.2f (~k at constant density; "
              "conjecture: no n^{(1-eps)k} algorithm exists for d >= 3)\n",
              bench::FitPowerLawExponent(ns, nodes));

  std::printf("\n--- d = 2 contrast: triangle (k=3) via MM vs enumeration "
              "---\n");
  util::Table t2({"n", "edges", "enumeration ms", "matrix ms"});
  for (int n : {512, 1024, 2048}) {
    graph::Graph g = graph::CompleteBipartite(n / 2, n / 2);  // No triangle.
    util::Timer timer;
    bool a = graph::FindTriangleEnumeration(g).has_value();
    double enum_ms = timer.Millis();
    timer.Reset();
    bool b = graph::FindTriangleMatrix(g).has_value();
    double mm_ms = timer.Millis();
    if (a || b) return 1;
    t2.AddRowOf(n, g.num_edges(), enum_ms, mm_ms);
  }
  t2.Print();
  std::printf("(the word-parallel MM substrate gives d=2 the speedup whose "
              "absence at d=3 the conjecture postulates)\n");

  std::printf("\n--- counting consistency at small n ---\n");
  util::Table t3({"n", "k", "hypercliques", "valid"});
  for (int n : {10, 12}) {
    graph::Hypergraph h = graph::RandomUniformHypergraph(n, 3, 0.5, &rng);
    finegrained::HypercliqueSearcher searcher(h, 3);
    for (int k : {4, 5}) {
      std::uint64_t count = searcher.Count(k);
      // Cross-check a found witness.
      auto witness = searcher.Find(k);
      bool valid = !witness.has_value() ||
                   graph::InducesHyperclique(h, *witness, 3);
      t3.AddRowOf(n, k, static_cast<unsigned long long>(count),
                  valid ? "yes" : "NO");
      if (!valid) return 1;
    }
  }
  t3.Print();
  return 0;
}
