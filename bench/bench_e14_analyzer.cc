// E14 — integration: the analyzer's predictions versus reality on a query
// zoo. For each query we check (a) the measured output-size exponent on the
// extremal databases equals the predicted rho*, and (b) the auto-router's
// engine choice is sound (its answers match the reference evaluator).

#include "bench_util.h"
#include "core/analyzer.h"
#include "core/autosolver.h"
#include "db/agm.h"
#include "db/generic_join.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("E14: analyzer predictions vs measurements (integration)",
                "predicted rho* equals measured output exponent; routed "
                "engine returns reference answers");

  struct Entry {
    const char* name;
    db::JoinQuery query;
    std::vector<int> ts;
  };
  std::vector<Entry> zoo;
  {
    db::JoinQuery q;
    q.Add("R", {"a", "b"}).Add("S", {"b", "c"});
    zoo.push_back({"path-2", q, {4, 8, 16}});
  }
  {
    db::JoinQuery q;
    q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
    zoo.push_back({"triangle", q, {4, 8, 16}});
  }
  {
    db::JoinQuery q;
    q.Add("R1", {"a", "b"}).Add("R2", {"b", "c"}).Add("R3", {"c", "d"})
        .Add("R4", {"d", "a"});
    zoo.push_back({"4-cycle", q, {3, 5, 7}});
  }
  {
    db::JoinQuery q;
    q.Add("R1", {"c", "x"}).Add("R2", {"c", "y"}).Add("R3", {"c", "z"});
    zoo.push_back({"star-3", q, {3, 5, 7}});
  }

  util::Table t({"query", "acyclic", "tw", "rho* predicted",
                 "measured exponent", "router", "answers ok"});
  util::Rng rng(1);
  bool all_ok = true;
  for (auto& entry : zoo) {
    core::Analysis analysis = core::AnalyzeQuery(entry.query);
    auto agm = db::AnalyzeAgm(entry.query);
    std::vector<double> ns, counts;
    for (int tval : entry.ts) {
      long long n = 0;
      db::Database d = db::AgmTightInstance(entry.query, *agm, tval, &n);
      std::uint64_t c = db::GenericJoin(entry.query, d).Count();
      ns.push_back(static_cast<double>(n));
      counts.push_back(static_cast<double>(c));
    }
    double measured = bench::FitPowerLawExponent(ns, counts);

    // Router soundness on a random database.
    db::Database rdb = db::RandomDatabase(entry.query, 60, 15, &rng);
    core::AutoQueryResult routed = core::EvaluateQueryAuto(entry.query, rdb);
    db::JoinResult reference = db::GenericJoin(entry.query, rdb).Evaluate();
    routed.result.Normalize();
    reference.Normalize();
    bool ok = routed.result.tuples == reference.tuples;
    all_ok = all_ok && ok;
    t.AddRowOf(entry.name, analysis.acyclic ? "yes" : "no",
               analysis.treewidth, analysis.rho_star.ToString(), measured,
               core::ToString(routed.method), ok ? "yes" : "NO");
  }
  t.Print();
  std::printf("\nanalyzer reports (certificates included):\n");
  for (auto& entry : zoo) {
    std::printf("\n## %s\n%s\n", entry.name,
                core::AnalyzeQuery(entry.query).ToString().c_str());
  }
  return all_ok ? 0 : 1;
}
