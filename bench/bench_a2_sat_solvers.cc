// A2 — ablation: the library's SAT solver ladder (brute force, DPLL, CDCL,
// WalkSAT) on the same instances. CDCL shrinks the effective exponent but
// stays exponential at the threshold — the ETH in action; WalkSAT is fast
// on satisfiable instances but cannot refute.

#include "bench_util.h"
#include "sat/cdcl.h"
#include "sat/cnf.h"
#include "sat/dpll.h"
#include "sat/generators.h"
#include "sat/walksat.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("A2 (ablation): brute force vs DPLL vs CDCL vs WalkSAT",
                "better engineering lowers the exponent's constant, never "
                "removes the exponent");

  util::Rng rng(1);

  std::printf("\n--- threshold-density random 3SAT (decision) ---\n");
  util::Table t({"n", "brute ms", "dpll ms", "cdcl ms", "dpll decisions",
                 "cdcl conflicts", "all agree"});
  std::vector<double> ns, dpll_dec, cdcl_conf;
  for (int n : {20, 28, 36, 44, 52}) {
    const int trials = 5;
    double brute_ms = 0, dpll_ms = 0, cdcl_ms = 0;
    std::uint64_t ddec = 0, cconf = 0;
    bool agree = true;
    for (int trial = 0; trial < trials; ++trial) {
      sat::CnfFormula f =
          sat::RandomKSat(n, static_cast<int>(n * 4.26), 3, &rng);
      util::Timer timer;
      bool b = n <= 22 ? sat::SolveBruteForce(f).satisfiable : false;
      if (n <= 22) brute_ms += timer.Millis();
      timer.Reset();
      sat::SatResult rd = sat::SolveDpll(f);
      dpll_ms += timer.Millis();
      ddec += rd.decisions;
      timer.Reset();
      sat::CdclSolver cdcl;
      sat::SatResult rc = cdcl.Solve(f);
      cdcl_ms += timer.Millis();
      cconf += cdcl.stats().conflicts;
      agree = agree && rd.satisfiable == rc.satisfiable &&
              (n > 22 || b == rd.satisfiable);
    }
    t.AddRowOf(n, n <= 22 ? brute_ms / trials : -1.0, dpll_ms / trials,
               cdcl_ms / trials,
               static_cast<unsigned long long>(ddec / trials),
               static_cast<unsigned long long>(cconf / trials),
               agree ? "yes" : "NO (BUG)");
    if (!agree) return 1;
    ns.push_back(n);
    dpll_dec.push_back(static_cast<double>(ddec) / trials);
    cdcl_conf.push_back(static_cast<double>(cconf) / trials);
  }
  t.Print();
  std::printf("DPLL decisions ~ 2^{%.3f n}; CDCL conflicts ~ 2^{%.3f n} "
              "(both exponential: clause learning cuts the constant, not "
              "the exponent)\n",
              bench::FitExponentialRate(ns, dpll_dec),
              bench::FitExponentialRate(ns, cdcl_conf));

  std::printf("\n--- satisfiable (planted) instances: WalkSAT's regime ---\n");
  util::Table t2({"n", "dpll ms", "cdcl ms", "walksat ms", "walksat found"});
  for (int n : {50, 100, 200}) {
    sat::CnfFormula f = sat::PlantedKSat(n, 4 * n, 3, &rng);
    util::Timer timer;
    sat::SatResult rd = sat::SolveDpll(f);
    double t_dpll = timer.Millis();
    timer.Reset();
    sat::SatResult rc = sat::CdclSolver().Solve(f);
    double t_cdcl = timer.Millis();
    timer.Reset();
    sat::SatResult rw = sat::SolveWalkSat(f, &rng);
    double t_walk = timer.Millis();
    if (!rd.satisfiable || !rc.satisfiable) return 1;
    t2.AddRowOf(n, t_dpll, t_cdcl, t_walk, rw.satisfiable ? "yes" : "no");
  }
  t2.Print();
  return 0;
}
