// E3 — Theorem 4.2 (Freuder): CSPs whose primal graph has treewidth k are
// solved in O(|V| * |D|^{k+1}) by dynamic programming over a tree
// decomposition. The DP's work (table rows touched) must scale polynomially
// with |D| at exponent ~k+1 and stay linear in |V|, while generic search is
// exponential in |V|.

#include "bench_util.h"
#include "csp/generators.h"
#include "csp/solver.h"
#include "csp/treedp.h"
#include "graph/generators.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("E3: treewidth dynamic programming (Theorem 4.2)",
                "O(|V| * |D|^{k+1}) for treewidth-k primal graphs");

  util::Rng rng(1);

  std::printf("\n--- domain sweep at fixed k = 2, |V| = 40 ---\n");
  {
    graph::Graph structure = graph::RandomKTree(40, 2, &rng);
    util::Table t({"|D|", "table rows", "|V|*|D|^3 bound", "DP ms",
                   "backtracking ms", "solutions agree"});
    std::vector<double> ds, rows;
    for (int d : {2, 3, 4, 6, 8, 12, 16}) {
      csp::CspInstance csp = csp::PlantedBinaryCsp(structure, d, 0.35, &rng);
      util::Timer timer;
      csp::TreeDpResult dp = csp::SolveTreewidthDp(csp, 0);
      double dp_ms = timer.Millis();
      timer.Reset();
      csp::CspSolution bt = csp::BacktrackingSolver().Solve(csp);
      double bt_ms = timer.Millis();
      double bound = 40.0 * d * d * d;
      t.AddRowOf(d, static_cast<unsigned long long>(dp.table_entries), bound,
                 dp_ms, bt_ms, dp.satisfiable == bt.found ? "yes" : "NO");
      ds.push_back(d);
      rows.push_back(static_cast<double>(dp.table_entries));
    }
    t.Print();
    std::printf("DP work exponent in |D|: %.2f (paper: <= k+1 = 3)\n",
                bench::FitPowerLawExponent(ds, rows));
  }

  std::printf("\n--- width sweep at fixed |D| = 5, |V| = 30 ---\n");
  {
    util::Table t({"k", "width used", "table rows", "|V|*|D|^{k+1}", "DP ms"});
    std::vector<double> ks, rows;
    for (int k : {1, 2, 3, 4}) {
      graph::Graph structure = graph::RandomKTree(30, k, &rng);
      csp::CspInstance csp = csp::PlantedBinaryCsp(structure, 5, 0.3, &rng);
      util::Timer timer;
      csp::TreeDpResult dp = csp::SolveTreewidthDp(csp, 0);
      double ms = timer.Millis();
      double bound = 30.0 * std::pow(5.0, k + 1);
      t.AddRowOf(k, dp.width_used,
                 static_cast<unsigned long long>(dp.table_entries), bound, ms);
      ks.push_back(k);
      rows.push_back(static_cast<double>(dp.table_entries));
    }
    t.Print();
    std::printf("log5(work) slope in k: %.2f (paper: ~1: one extra |D| "
                "factor per width unit)\n",
                bench::FitExponentialRate(ks, rows) / std::log2(5.0));
  }

  std::printf("\n--- |V| sweep at fixed k = 2, |D| = 6 (linearity) ---\n");
  {
    util::Table t({"|V|", "table rows", "rows / |V|", "DP ms"});
    std::vector<double> ns, rows;
    for (int n : {20, 40, 80, 160, 320}) {
      graph::Graph structure = graph::RandomKTree(n, 2, &rng);
      csp::CspInstance csp = csp::PlantedBinaryCsp(structure, 6, 0.35, &rng);
      util::Timer timer;
      csp::TreeDpResult dp = csp::SolveTreewidthDp(csp, 0);
      double ms = timer.Millis();
      t.AddRowOf(n, static_cast<unsigned long long>(dp.table_entries),
                 static_cast<double>(dp.table_entries) / n, ms);
      ns.push_back(n);
      rows.push_back(static_cast<double>(dp.table_entries));
    }
    t.Print();
    std::printf("DP work exponent in |V|: %.2f (paper: 1)\n",
                bench::FitPowerLawExponent(ns, rows));
  }
  return 0;
}
