// E5 — Section 8 (k-clique conjecture) upper-bound side: Nešetřil–Poljak
// detect k-cliques via matrix-multiplication-based triangle detection on an
// auxiliary graph of k/3-cliques, beating plain enumeration on dense
// graphs. Our MM substrate is word-parallel Boolean multiplication
// (DESIGN.md §1), so the expected shape is a constant-factor win growing
// with density, not a different exponent.

#include "bench_util.h"
#include "graph/cliques.h"
#include "graph/generators.h"
#include "graph/triangles.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("E5: clique detection via matrix multiplication (Section 8)",
                "Nešetřil–Poljak n^{omega k/3} beats n^k enumeration on "
                "dense graphs; triangle MM beats edge scanning");

  util::Rng rng(1);

  std::printf("\n--- triangle detection on dense triangle-free-ish graphs ---\n");
  // Sparse-random graphs below the triangle threshold force full scans.
  util::Table t1({"n", "edges", "enumeration ms", "matrix ms", "speedup"});
  for (int n : {256, 512, 1024, 2048}) {
    double p = 0.6 / n;  // Far below the triangle threshold ~ n^{-1/2}...
    // Use bipartite-ish density instead: complete bipartite has no triangle
    // and maximal density.
    graph::Graph g = graph::CompleteBipartite(n / 2, n / 2);
    // Sprinkle random cross edges that keep it triangle-free? Skip: K_{n/2,n/2}
    // is the dense triangle-free extremal graph (Turán).
    (void)p;
    util::Timer timer;
    bool enum_found = graph::FindTriangleEnumeration(g).has_value();
    double enum_ms = timer.Millis();
    timer.Reset();
    bool mm_found = graph::FindTriangleMatrix(g).has_value();
    double mm_ms = timer.Millis();
    if (enum_found || mm_found) return 1;  // Triangle-free by construction.
    t1.AddRowOf(n, g.num_edges(), enum_ms, mm_ms,
                enum_ms / std::max(mm_ms, 1e-6));
  }
  t1.Print();

  std::printf("\n--- k = 6 clique detection in dense G(n, 0.5) without a "
              "6-clique... G(n,.5) has 6-cliques for n >= ~50; use counting "
              "instead: full detection on no-instance via low p ---\n");
  util::Table t2({"n", "p", "brute-force ms", "Nešetřil–Poljak ms",
                  "found agree"});
  for (int n : {32, 48, 64}) {
    double p = 0.35;
    graph::Graph g = graph::RandomGnp(n, p, &rng);
    util::Timer timer;
    auto bf = graph::FindKCliqueBruteForce(g, 6);
    double bf_ms = timer.Millis();
    timer.Reset();
    auto np = graph::FindKCliqueNesetrilPoljak(g, 6);
    double np_ms = timer.Millis();
    if (bf.has_value() != np.has_value()) return 1;
    t2.AddRowOf(n, p, bf_ms, np_ms, bf.has_value() ? "yes (found)" : "yes (none)");
  }
  t2.Print();
  std::printf("(the auxiliary-graph construction dominates at these sizes; "
              "the MM win shows once the aux graph is dense — see the "
              "triangle table above for the clean MM-vs-scan shape)\n");
  return 0;
}
