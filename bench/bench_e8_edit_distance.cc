// E8 — Section 7 fine-grained example: the textbook edit-distance DP is
// quadratic (and Backurs–Indyk says SETH forbids O(n^{2-eps})); the banded
// variant is the output-sensitive O(n*s) refinement that does not contradict
// the lower bound because it is only fast when the distance is small.

#include "bench_util.h"
#include "finegrained/sequences.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("E8: edit distance (Section 7, SETH fine-grained)",
                "quadratic DP exponent ~2; banded O(n*s) linear in n for "
                "similar strings");

  util::Rng rng(1);

  std::printf("\n--- random strings (distance ~ n: quadratic regime) ---\n");
  util::Table t({"n", "distance", "quadratic ms"});
  std::vector<double> ns, times;
  for (int n : {500, 1000, 2000, 4000, 8000}) {
    std::string a = finegrained::RandomString(n, 4, &rng);
    std::string b = finegrained::RandomString(n, 4, &rng);
    util::Timer timer;
    int dist = finegrained::EditDistanceQuadratic(a, b);
    double ms = timer.Millis();
    t.AddRowOf(n, dist, ms);
    ns.push_back(n);
    times.push_back(ms);
  }
  t.Print();
  std::printf("quadratic DP time exponent: %.2f (paper: 2)\n",
              bench::FitPowerLawExponent(ns, times));

  std::printf("\n--- similar strings (distance <= 16: banded regime) ---\n");
  util::Table t2({"n", "distance", "quadratic ms", "banded ms", "speedup"});
  std::vector<double> n2, banded_times;
  for (int n : {1000, 2000, 4000, 8000, 16000}) {
    std::string a = finegrained::RandomString(n, 4, &rng);
    std::string b = finegrained::MutateString(a, 12, 4, &rng);
    util::Timer timer;
    int dist = finegrained::EditDistanceQuadratic(a, b);
    double quad_ms = timer.Millis();
    timer.Reset();
    auto banded = finegrained::EditDistanceBanded(a, b, 16);
    double band_ms = timer.Millis();
    if (!banded || *banded != dist) {
      std::printf("MISMATCH at n=%d\n", n);
      return 1;
    }
    t2.AddRowOf(n, dist, quad_ms, band_ms,
                quad_ms / std::max(band_ms, 1e-6));
    n2.push_back(n);
    banded_times.push_back(band_ms);
  }
  t2.Print();
  std::printf("banded time exponent: %.2f (paper: ~1 at fixed s)\n",
              bench::FitPowerLawExponent(n2, banded_times));

  std::printf("\n--- LCS (same quadratic family) ---\n");
  util::Table t3({"n", "LCS", "ms"});
  std::vector<double> n3, t3times;
  for (int n : {500, 1000, 2000, 4000}) {
    std::string a = finegrained::RandomString(n, 3, &rng);
    std::string b = finegrained::RandomString(n, 3, &rng);
    util::Timer timer;
    int lcs = finegrained::LongestCommonSubsequenceLinearSpace(a, b);
    double ms = timer.Millis();
    t3.AddRowOf(n, lcs, ms);
    n3.push_back(n);
    t3times.push_back(ms);
  }
  t3.Print();
  std::printf("LCS time exponent: %.2f (paper: 2)\n",
              bench::FitPowerLawExponent(n3, t3times));
  return 0;
}
