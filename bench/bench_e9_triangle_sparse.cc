// E9 — Section 8, the (strong) triangle conjecture: detecting a triangle in
// an m-edge graph. The Alon–Yuster–Zwick split handles low-degree vertices
// by neighbour-pair scanning and the dense heavy core by matrix
// multiplication; it should beat plain per-edge enumeration on skewed
// graphs whose heavy core is where the triangles hide.

#include <chrono>
#include <cstring>

#include "api/query_api.h"
#include "api/session_options.h"
#include "bench_util.h"
#include "db/database.h"
#include "db/generic_join.h"
#include "graph/generators.h"
#include "graph/triangles.h"
#include "util/budget.h"
#include "util/rng.h"
#include "util/run_report.h"
#include "util/trace.h"

namespace {

using namespace qc;

/// Counts triangles with the trie-indexed worst-case-optimal join: edges go
/// into one oriented relation E = {(u, v) : u < v}, and the query
/// R1(a,b), R2(a,c), R3(b,c) over three copies of E binds a < b < c, so
/// each triangle is counted exactly once.
std::uint64_t CountTrianglesWcoj(const graph::Graph& g) {
  db::FlatRelation edges(2);
  edges.Reserve(static_cast<std::size_t>(g.num_edges()));
  for (int u = 0; u < g.num_vertices(); ++u) {
    const util::Bitset& nbrs = g.Neighbors(u);
    for (int v = nbrs.NextSetBit(u + 1); v >= 0; v = nbrs.NextSetBit(v + 1)) {
      db::Value row[2] = {u, v};
      edges.PushRow(row);
    }
  }
  db::Database d;
  d.SetRelation("E", std::move(edges));
  db::JoinQuery q;
  q.Add("E", {"a", "b"}).Add("E", {"a", "c"}).Add("E", {"b", "c"});
  return db::GenericJoin(q, d).Count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qc;
  bench::JsonReport json(&argc, argv);
  // --report-json FILE: a RunReport with the harness's span tree — the
  // triangles.ayz light/heavy split is the headline (EXPERIMENTS.md E9).
  const char* report_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report-json") == 0 && i + 1 < argc) {
      report_path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  if (report_path != nullptr) util::Trace::Enable();
  auto run_start = std::chrono::steady_clock::now();
  bench::Banner("E9: sparse triangle detection (Section 8)",
                "AYZ m^{2w/(w+1)}-style split vs per-edge enumeration; the "
                "split wins on degree-skewed graphs");

  util::Rng rng(1);

  std::printf("\n--- triangle counting at fixed n = 4000, density sweep "
              "(full work) ---\n");
  const int n = 4000;
  util::Table t({"n", "m", "triangles", "scalar-count ms", "bitset-count ms",
                 "wcoj-trie ms"});
  std::vector<double> ms_list, scalar_times, bitset_times, wcoj_times;
  for (int m_target : {40000, 80000, 160000, 320000, 640000}) {
    graph::Graph g = graph::RandomGnm(n, m_target, &rng);
    util::Timer timer;
    std::uint64_t c1 = graph::CountTrianglesScalar(g);
    double scalar_ms = timer.Millis();
    timer.Reset();
    std::uint64_t c2 = graph::CountTriangles(g);
    double bitset_ms = timer.Millis();
    timer.Reset();
    std::uint64_t c3 = CountTrianglesWcoj(g);
    double wcoj_ms = timer.Millis();
    if (c1 != c2 || c1 != c3) return 1;
    t.AddRowOf(n, g.num_edges(), static_cast<unsigned long long>(c1),
               scalar_ms, bitset_ms, wcoj_ms);
    ms_list.push_back(g.num_edges());
    scalar_times.push_back(scalar_ms);
    bitset_times.push_back(bitset_ms);
    wcoj_times.push_back(wcoj_ms);
    json.Record("e9.count.scalar", {{"m", double(g.num_edges())}}, scalar_ms);
    json.Record("e9.count.bitset", {{"m", double(g.num_edges())}}, bitset_ms);
    json.Record("e9.count.wcoj_trie", {{"m", double(g.num_edges())}},
                wcoj_ms);
  }
  t.Print();
  json.Record("e9.count.wcoj_trie", {{"m", ms_list.back()}},
              wcoj_times.back(),
              bench::FitPowerLawExponent(ms_list, wcoj_times));
  std::printf("scalar-counting exponent in m: %.2f (classical ~3/2); "
              "word-parallel exponent in m: %.2f (~1 at fixed n) — the "
              "MM-substrate advantage whose limit the triangle conjecture "
              "pins at m^{2w/(w+1)}\n",
              bench::FitPowerLawExponent(ms_list, scalar_times),
              bench::FitPowerLawExponent(ms_list, bitset_times));

  std::printf("\n--- skewed graphs with triangles (yes-instances) ---\n");
  util::Table t2({"n", "m", "enum ms", "ayz ms", "all agree"});
  for (int n : {2000, 4000, 8000}) {
    graph::Graph g = graph::SkewedGraph(n, n / 10, 0.3, 2, &rng);
    util::Timer timer;
    auto r1 = graph::FindTriangleEnumerationScalar(g);
    double enum_ms = timer.Millis();
    timer.Reset();
    auto r2 = graph::FindTriangleAyz(g);
    double ayz_ms = timer.Millis();
    bool agree = r1.has_value() == r2.has_value();
    t2.AddRowOf(n, g.num_edges(), enum_ms, ayz_ms, agree ? "yes" : "NO");
    if (!agree) return 1;
  }
  t2.Print();
  // Emission goes through the same api::FinishReport path as query_cli,
  // fpt_toolbox and qc_serverd — one schema, one writer.
  api::SessionOptions report_opts;
  if (report_path != nullptr) report_opts.report_json = report_path;
  util::RunReport report;
  report.tool = "bench_e9_triangle_sparse";
  report.status = util::RunStatus::kCompleted;
  report.threads = 1;
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - run_start)
                       .count();
  if (report_path != nullptr) {
    report.trace = util::Trace::Collect();
    util::Trace::Disable();
  }
  return api::FinishReport(report_opts, report, report.status);
}
