// E11 — Hypotheses 1/2 (ETH + Sparsification Lemma): 3SAT at linear clause
// density already takes time exponential in n, and hardness peaks near the
// satisfiability threshold m/n ~ 4.27 — the empirical face of "3SAT with n
// variables and m clauses cannot be solved in 2^{o(n+m)}".

#include "bench_util.h"
#include "reductions/sat_reductions.h"
#include "sat/dpll.h"
#include "sat/generators.h"
#include "util/rng.h"

int main() {
  using namespace qc;
  bench::Banner("E11: ETH-style scaling of 3SAT (Hypotheses 1/2)",
                "2^{Theta(n)} at fixed linear density; hardness peaks at "
                "the threshold density ~4.27");

  util::Rng rng(1);

  std::printf("\n--- n sweep at density 4.26 ---\n");
  util::Table t({"n", "m", "avg decisions", "avg ms", "sat fraction"});
  std::vector<double> ns, decisions;
  for (int n : {20, 26, 32, 38, 44, 50}) {
    const int trials = 5;
    std::uint64_t total = 0;
    double total_ms = 0;
    int sat_count = 0;
    for (int trial = 0; trial < trials; ++trial) {
      sat::CnfFormula f =
          sat::RandomKSat(n, static_cast<int>(n * 4.26), 3, &rng);
      util::Timer timer;
      sat::SatResult r = sat::SolveDpll(f);
      total_ms += timer.Millis();
      total += r.decisions;
      sat_count += r.satisfiable ? 1 : 0;
    }
    t.AddRowOf(n, static_cast<int>(n * 4.26),
               static_cast<unsigned long long>(total / trials),
               total_ms / trials, static_cast<double>(sat_count) / trials);
    ns.push_back(n);
    decisions.push_back(static_cast<double>(total) / trials);
  }
  t.Print();
  double rate = bench::FitExponentialRate(ns, decisions);
  std::printf("decisions ~ 2^{%.3f n}: exponential in n as ETH predicts "
              "(2^{o(n)} would show a decaying rate)\n", rate);

  std::printf("\n--- density sweep at n = 36 (the hardness peak) ---\n");
  util::Table t2({"m/n", "avg decisions", "sat fraction"});
  for (double density : {1.0, 2.0, 3.0, 3.8, 4.26, 5.0, 6.0, 8.0}) {
    const int trials = 8;
    std::uint64_t total = 0;
    int sat_count = 0;
    for (int trial = 0; trial < trials; ++trial) {
      sat::CnfFormula f =
          sat::RandomKSat(36, static_cast<int>(36 * density), 3, &rng);
      sat::SatResult r = sat::SolveDpll(f);
      total += r.decisions;
      sat_count += r.satisfiable ? 1 : 0;
    }
    t2.AddRowOf(density, static_cast<unsigned long long>(total / trials),
                static_cast<double>(sat_count) / trials);
  }
  t2.Print();
  std::printf("(the decision peak sits near the sat/unsat threshold, the "
              "\"hard instances have linear clause count\" regime the "
              "Sparsification Lemma licenses)\n");

  std::printf("\n--- Corollary 6.2 chain: 3SAT -> 3-colouring size ---\n");
  util::Table t3({"n", "m", "colouring vertices", "colouring edges",
                  "(linear in n+m)"});
  for (int n : {20, 40, 80}) {
    sat::CnfFormula f = sat::RandomKSat(n, 4 * n, 3, &rng);
    reductions::ThreeColoringReduction red =
        reductions::ThreeColoringFromSat(f);
    t3.AddRowOf(n, 4 * n, red.graph.num_vertices(), red.graph.num_edges(),
                static_cast<double>(red.graph.num_vertices()) / (n + 4 * n));
  }
  t3.Print();
  return 0;
}
