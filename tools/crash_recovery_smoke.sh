#!/usr/bin/env bash
# Crash-recovery smoke for qc_serverd's WAL.
#
# Proves the durability contract end to end, the way an operator would
# experience it:
#   1. start qc_serverd with --wal-dir and fsync=always;
#   2. stream single-tuple mutations at it (each with an idempotency id)
#      and kill -9 the server mid-stream;
#   3. restart on the same --wal-dir — recovery must replay every
#      acknowledged mutation (acked <= recovered rows, and the rows form a
#      contiguous prefix {0..n-1}: nothing lost, nothing double-applied);
#   4. replay the same n mutations against a never-crashed oracle server
#      and diff the sorted row dumps — recovered answers must be
#      bit-identical to the clean run;
#   5. register a materialized view on the recovered server, stream more
#      mutations under it, kill -9 again, restart — the rebuilt view's
#      rows must be identical to the recovered base relation (the view is
#      `stream(x)`, so view == relation at every epoch).
#
# Usage: tools/crash_recovery_smoke.sh [BUILD_DIR] [STREAM_COUNT]
set -euo pipefail

BUILD_DIR=${1:-build}
STREAM_COUNT=${2:-2000}
SERVERD="$BUILD_DIR/src/server/qc_serverd"
LOADGEN="$BUILD_DIR/src/server/qc_loadgen"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/qc_crash_smoke.XXXXXX")

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# start_server NAME [extra args...] — writes stdout to $WORK/NAME.out,
# records the pid in $WORK/NAME.pid, echoes the resolved port.
start_server() {
  local name=$1
  shift
  "$SERVERD" --port 0 "$@" > "$WORK/$name.out" 2> "$WORK/$name.err" &
  local pid=$!
  PIDS+=("$pid")
  echo "$pid" > "$WORK/$name.pid"
  for _ in $(seq 1 100); do
    grep -q "listening on" "$WORK/$name.out" 2>/dev/null && break
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "FAIL: $name died on startup" >&2
      cat "$WORK/$name.out" "$WORK/$name.err" >&2
      exit 1
    fi
    sleep 0.1
  done
  grep "listening on" "$WORK/$name.out" | sed 's/.*://'
}

echo "== phase 1: stream mutations, kill -9 mid-stream"
PORT=$(start_server victim --wal-dir "$WORK/wal" --fsync always)
"$LOADGEN" --port "$PORT" --write-relation stream \
  --stream-mutations "$STREAM_COUNT" \
  > "$WORK/stream.out" 2> "$WORK/stream.err" &
LOADGEN_PID=$!
# Let some mutations land, then pull the plug — no shutdown frame, no
# SIGTERM, nothing graceful.
sleep 0.5
kill -9 "$(cat "$WORK/victim.pid")" 2>/dev/null || true
wait "$LOADGEN_PID" || true  # Transport error at the kill point is expected.
ACKED=$(sed -n 's/.*stream_acked=\([0-9]*\).*/\1/p' "$WORK/stream.out")
if [ -z "$ACKED" ]; then
  echo "FAIL: load generator reported no acked count" >&2
  cat "$WORK/stream.out" "$WORK/stream.err" >&2
  exit 1
fi
echo "   acked before kill -9: $ACKED"
if [ "$ACKED" -eq 0 ]; then
  echo "FAIL: no mutation was acknowledged before the kill; nothing to verify" >&2
  exit 1
fi

echo "== phase 2: restart on the same --wal-dir and verify the prefix"
PORT=$(start_server reborn --wal-dir "$WORK/wal" --fsync always)
grep "recovered" "$WORK/reborn.out" || true
"$LOADGEN" --port "$PORT" --verify-prefix stream --expect-at-least "$ACKED" \
  > "$WORK/verify.out"
cat "$WORK/verify.out"
ROWS=$(sed -n 's/.*verify_rows=\([0-9]*\).*/\1/p' "$WORK/verify.out")
"$LOADGEN" --port "$PORT" --dump-rows stream > "$WORK/recovered.rows"

echo "== phase 3: diff against a never-crashed oracle ($ROWS mutations)"
ORACLE_PORT=$(start_server oracle --wal-dir "$WORK/oracle-wal" --fsync off)
"$LOADGEN" --port "$ORACLE_PORT" --write-relation stream \
  --stream-mutations "$ROWS" > /dev/null
"$LOADGEN" --port "$ORACLE_PORT" --dump-rows stream > "$WORK/oracle.rows"
if ! diff -u "$WORK/oracle.rows" "$WORK/recovered.rows"; then
  echo "FAIL: recovered rows differ from the clean-run oracle" >&2
  exit 1
fi

echo "== phase 4: recovered server still accepts writes (WAL reopened)"
"$LOADGEN" --port "$PORT" --write-relation stream2 --stream-mutations 3 \
  > /dev/null || { echo "FAIL: post-recovery mutation rejected" >&2; exit 1; }
"$LOADGEN" --port "$PORT" --verify-prefix stream2 --expect-at-least 3 \
  > /dev/null

echo "== phase 5: views survive kill -9 (kViewDef replay + rebuild)"
"$LOADGEN" --port "$PORT" --register-view 'all=join=stream(x)' \
  > "$WORK/view.out" || {
    echo "FAIL: view registration rejected" >&2
    cat "$WORK/view.out" >&2
    exit 1
  }
"$LOADGEN" --port "$PORT" --write-relation stream \
  --stream-mutations $((ROWS + 200)) > /dev/null  # ids 0..ROWS-1 dedup.
kill -9 "$(cat "$WORK/reborn.pid")" 2>/dev/null || true
PORT=$(start_server reborn2 --wal-dir "$WORK/wal" --fsync always)
grep -q "views_rebuilt=1" "$WORK/reborn2.err" || {
  echo "FAIL: recovery did not rebuild the registered view" >&2
  cat "$WORK/reborn2.out" >&2
  exit 1
}
"$LOADGEN" --port "$PORT" --dump-view all | sort -n > "$WORK/view.rows"
"$LOADGEN" --port "$PORT" --dump-rows stream > "$WORK/base.rows"
if ! diff -u "$WORK/base.rows" "$WORK/view.rows"; then
  echo "FAIL: rebuilt view differs from the recovered relation" >&2
  exit 1
fi
VIEW_ROWS=$(wc -l < "$WORK/view.rows")

echo "PASS: $ACKED acked, $ROWS recovered, prefix contiguous, oracle-identical, view rebuilt ($VIEW_ROWS rows)"
