#!/usr/bin/env python3
"""Validates a --report-json RunReport against the shared schema.

Usage: check_report_schema.py report.json [report2.json ...]

The schema is the one documented in src/util/run_report.h and emitted by
query_cli, fpt_toolbox, the E-harnesses and qc_serverd's per-request
report frames (which add the optional "server" section). Exits nonzero
(with a message naming the offending key) on the first violation.
Stdlib only.
"""

import json
import sys

KNOWN_STATUSES = {
    "completed",
    "deadline-exceeded",
    "budget-exhausted",
    "cancelled",
    "internal-error",
}

KNOWN_SIMD_LEVELS = {"scalar", "avx2", "avx512"}

KNOWN_PLANNER_PATTERNS = {"triangle", "4-cycle", "4-clique", "5-clique"}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def check_type(path, obj, key, expected):
    if key not in obj:
        fail(path, f"missing required key {key!r}")
    if not isinstance(obj[key], expected):
        fail(path, f"key {key!r} has type {type(obj[key]).__name__}, "
                   f"expected {expected}")


def check_span(path, span, where):
    if not isinstance(span, dict):
        fail(path, f"{where}: span is not an object")
    for key, expected in (("name", str), ("count", int),
                          ("total_ms", (int, float)), ("children", list)):
        if key not in span:
            fail(path, f"{where}: span missing {key!r}")
        if not isinstance(span[key], expected):
            fail(path, f"{where}.{key}: wrong type")
    if span["count"] < 0:
        fail(path, f"{where}: negative count")
    for i, child in enumerate(span["children"]):
        check_span(path, child, f"{where}.children[{i}]")


def check_report(path):
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    if not isinstance(report, dict):
        fail(path, "top level is not an object")

    check_type(path, report, "tool", str)
    check_type(path, report, "status", str)
    check_type(path, report, "exit_code", int)
    check_type(path, report, "threads", int)
    check_type(path, report, "wall_ms", (int, float))
    check_type(path, report, "budget", dict)
    check_type(path, report, "cache", dict)
    check_type(path, report, "stats", dict)
    check_type(path, report, "counters", dict)
    check_type(path, report, "gauges", dict)
    check_type(path, report, "spans", list)

    if report["status"] not in KNOWN_STATUSES:
        fail(path, f"unknown status {report['status']!r}")
    if report["threads"] < 1:
        fail(path, "threads < 1")
    if report["wall_ms"] < 0:
        fail(path, "negative wall_ms")

    budget = report["budget"]
    check_type(path, budget, "deadline_armed", bool)
    for key in ("work_used", "work_limit", "rows_used", "row_limit"):
        check_type(path, budget, key, int)
        if budget[key] < 0:
            fail(path, f"budget.{key} is negative")

    cache = report["cache"]
    check_type(path, cache, "enabled", bool)
    for key in ("hits", "misses", "evictions", "bytes", "capacity_bytes",
                "entries"):
        check_type(path, cache, key, int)
        if cache[key] < 0:
            fail(path, f"cache.{key} is negative")
    if not cache["enabled"] and any(
            cache[k] for k in ("hits", "misses", "bytes", "entries")):
        fail(path, "cache disabled but reports nonzero usage")

    # Execution-substrate stats: the kernel SIMD level the run dispatched to
    # and the per-query arena scratch footprint (0 = no arena in use).
    stats = report["stats"]
    check_type(path, stats, "simd_level", str)
    if stats["simd_level"] not in KNOWN_SIMD_LEVELS:
        fail(path, f"unknown stats.simd_level {stats['simd_level']!r}")
    check_type(path, stats, "arena_high_water_bytes", int)
    if stats["arena_high_water_bytes"] < 0:
        fail(path, "stats.arena_high_water_bytes is negative")

    for section in ("counters", "gauges"):
        for key, value in report[section].items():
            if not isinstance(value, int) or value < 0:
                fail(path, f"{section}[{key!r}] is not a non-negative int")

    for i, span in enumerate(report["spans"]):
        check_span(path, span, f"spans[{i}]")

    # Optional "server" section: present only on qc_serverd per-request
    # reports (request id, admission queue wait, pinned MVCC epoch).
    if "server" in report:
        server = report["server"]
        if not isinstance(server, dict):
            fail(path, "server is not an object")
        for key in ("request_id", "snapshot_epoch"):
            check_type(path, server, key, int)
            if server[key] < 0:
                fail(path, f"server.{key} is negative")
        check_type(path, server, "queue_ms", (int, float))
        if server["queue_ms"] < 0:
            fail(path, "server.queue_ms is negative")
        unknown = set(server) - {"request_id", "queue_ms", "snapshot_epoch"}
        if unknown:
            fail(path, f"server has unknown keys {sorted(unknown)}")

    # Optional "ivm" section: present only when the serving process has
    # registered materialized views (counters from db::IvmStats).
    if "ivm" in report:
        ivm = report["ivm"]
        if not isinstance(ivm, dict):
            fail(path, "ivm is not an object")
        ivm_keys = ("views", "updates", "dirty_subtree_sweeps",
                    "rows_delta_applied", "full_recomputes")
        for key in ivm_keys:
            check_type(path, ivm, key, int)
            if ivm[key] < 0:
                fail(path, f"ivm.{key} is negative")
        unknown = set(ivm) - set(ivm_keys)
        if unknown:
            fail(path, f"ivm has unknown keys {sorted(unknown)}")

    # Optional "planner" section: present only when the degree-split hybrid
    # planner examined the query (db::HybridPlan with pattern != none).
    if "planner" in report:
        planner = report["planner"]
        if not isinstance(planner, dict):
            fail(path, "planner is not an object")
        check_type(path, planner, "pattern", str)
        if planner["pattern"] not in KNOWN_PLANNER_PATTERNS:
            fail(path, f"unknown planner.pattern {planner['pattern']!r}")
        for key in ("threshold_overridden", "delegated"):
            check_type(path, planner, key, bool)
        int_keys = ("threshold", "heavy_values", "heavy_tuples",
                    "light_tuples", "heavy_rows", "light_rows")
        for key in int_keys:
            check_type(path, planner, key, int)
            if planner[key] < 0:
                fail(path, f"planner.{key} is negative")
        if planner["threshold"] < 1:
            fail(path, "planner.threshold < 1")
        if planner["delegated"] and planner["heavy_values"] != 0:
            fail(path, "planner delegated but reports heavy values")
        unknown = set(planner) - set(int_keys) - {
            "pattern", "threshold_overridden", "delegated"}
        if unknown:
            fail(path, f"planner has unknown keys {sorted(unknown)}")

    served = " (served)" if "server" in report else ""
    print(f"{path}: ok ({report['tool']}, status={report['status']}, "
          f"simd={stats['simd_level']}, "
          f"{len(report['spans'])} top-level spans){served}")


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in sys.argv[1:]:
        check_report(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
