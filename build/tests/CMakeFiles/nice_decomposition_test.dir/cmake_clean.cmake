file(REMOVE_RECURSE
  "CMakeFiles/nice_decomposition_test.dir/nice_decomposition_test.cc.o"
  "CMakeFiles/nice_decomposition_test.dir/nice_decomposition_test.cc.o.d"
  "nice_decomposition_test"
  "nice_decomposition_test.pdb"
  "nice_decomposition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nice_decomposition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
