# Empty dependencies file for nice_decomposition_test.
# This may be replaced when dependencies are built.
