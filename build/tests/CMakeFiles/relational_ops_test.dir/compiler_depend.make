# Empty compiler generated dependencies file for relational_ops_test.
# This may be replaced when dependencies are built.
