file(REMOVE_RECURSE
  "CMakeFiles/relational_ops_test.dir/relational_ops_test.cc.o"
  "CMakeFiles/relational_ops_test.dir/relational_ops_test.cc.o.d"
  "relational_ops_test"
  "relational_ops_test.pdb"
  "relational_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
