# Empty dependencies file for hypergraph_test.
# This may be replaced when dependencies are built.
