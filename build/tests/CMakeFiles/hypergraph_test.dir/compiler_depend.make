# Empty compiler generated dependencies file for hypergraph_test.
# This may be replaced when dependencies are built.
