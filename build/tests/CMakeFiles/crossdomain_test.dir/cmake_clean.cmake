file(REMOVE_RECURSE
  "CMakeFiles/crossdomain_test.dir/crossdomain_test.cc.o"
  "CMakeFiles/crossdomain_test.dir/crossdomain_test.cc.o.d"
  "crossdomain_test"
  "crossdomain_test.pdb"
  "crossdomain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossdomain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
