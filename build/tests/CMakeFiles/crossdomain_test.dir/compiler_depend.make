# Empty compiler generated dependencies file for crossdomain_test.
# This may be replaced when dependencies are built.
