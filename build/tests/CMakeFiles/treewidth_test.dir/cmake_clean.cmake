file(REMOVE_RECURSE
  "CMakeFiles/treewidth_test.dir/treewidth_test.cc.o"
  "CMakeFiles/treewidth_test.dir/treewidth_test.cc.o.d"
  "treewidth_test"
  "treewidth_test.pdb"
  "treewidth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewidth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
