# Empty compiler generated dependencies file for treewidth_test.
# This may be replaced when dependencies are built.
