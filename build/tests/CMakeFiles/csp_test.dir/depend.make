# Empty dependencies file for csp_test.
# This may be replaced when dependencies are built.
