file(REMOVE_RECURSE
  "CMakeFiles/csp_test.dir/csp_test.cc.o"
  "CMakeFiles/csp_test.dir/csp_test.cc.o.d"
  "csp_test"
  "csp_test.pdb"
  "csp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
