# Empty compiler generated dependencies file for np_reductions_test.
# This may be replaced when dependencies are built.
