file(REMOVE_RECURSE
  "CMakeFiles/np_reductions_test.dir/np_reductions_test.cc.o"
  "CMakeFiles/np_reductions_test.dir/np_reductions_test.cc.o.d"
  "np_reductions_test"
  "np_reductions_test.pdb"
  "np_reductions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_reductions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
