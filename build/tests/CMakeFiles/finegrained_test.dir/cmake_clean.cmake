file(REMOVE_RECURSE
  "CMakeFiles/finegrained_test.dir/finegrained_test.cc.o"
  "CMakeFiles/finegrained_test.dir/finegrained_test.cc.o.d"
  "finegrained_test"
  "finegrained_test.pdb"
  "finegrained_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finegrained_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
