# Empty dependencies file for finegrained_test.
# This may be replaced when dependencies are built.
