file(REMOVE_RECURSE
  "CMakeFiles/schaefer_test.dir/schaefer_test.cc.o"
  "CMakeFiles/schaefer_test.dir/schaefer_test.cc.o.d"
  "schaefer_test"
  "schaefer_test.pdb"
  "schaefer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schaefer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
