# Empty compiler generated dependencies file for schaefer_test.
# This may be replaced when dependencies are built.
