file(REMOVE_RECURSE
  "CMakeFiles/cliques_test.dir/cliques_test.cc.o"
  "CMakeFiles/cliques_test.dir/cliques_test.cc.o.d"
  "cliques_test"
  "cliques_test.pdb"
  "cliques_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cliques_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
