# Empty dependencies file for cliques_test.
# This may be replaced when dependencies are built.
