file(REMOVE_RECURSE
  "CMakeFiles/random_query_test.dir/random_query_test.cc.o"
  "CMakeFiles/random_query_test.dir/random_query_test.cc.o.d"
  "random_query_test"
  "random_query_test.pdb"
  "random_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
