file(REMOVE_RECURSE
  "CMakeFiles/enumeration_test.dir/enumeration_test.cc.o"
  "CMakeFiles/enumeration_test.dir/enumeration_test.cc.o.d"
  "enumeration_test"
  "enumeration_test.pdb"
  "enumeration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumeration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
