# Empty dependencies file for enumeration_test.
# This may be replaced when dependencies are built.
