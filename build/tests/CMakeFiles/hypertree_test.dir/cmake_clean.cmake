file(REMOVE_RECURSE
  "CMakeFiles/hypertree_test.dir/hypertree_test.cc.o"
  "CMakeFiles/hypertree_test.dir/hypertree_test.cc.o.d"
  "hypertree_test"
  "hypertree_test.pdb"
  "hypertree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypertree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
