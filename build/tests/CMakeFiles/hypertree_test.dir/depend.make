# Empty dependencies file for hypertree_test.
# This may be replaced when dependencies are built.
