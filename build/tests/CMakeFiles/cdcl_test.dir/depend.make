# Empty dependencies file for cdcl_test.
# This may be replaced when dependencies are built.
