file(REMOVE_RECURSE
  "CMakeFiles/cdcl_test.dir/cdcl_test.cc.o"
  "CMakeFiles/cdcl_test.dir/cdcl_test.cc.o.d"
  "cdcl_test"
  "cdcl_test.pdb"
  "cdcl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdcl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
