# Empty compiler generated dependencies file for structures_test.
# This may be replaced when dependencies are built.
