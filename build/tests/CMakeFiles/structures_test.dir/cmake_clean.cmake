file(REMOVE_RECURSE
  "CMakeFiles/structures_test.dir/structures_test.cc.o"
  "CMakeFiles/structures_test.dir/structures_test.cc.o.d"
  "structures_test"
  "structures_test.pdb"
  "structures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
