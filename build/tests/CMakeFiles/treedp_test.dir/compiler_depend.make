# Empty compiler generated dependencies file for treedp_test.
# This may be replaced when dependencies are built.
