file(REMOVE_RECURSE
  "CMakeFiles/treedp_test.dir/treedp_test.cc.o"
  "CMakeFiles/treedp_test.dir/treedp_test.cc.o.d"
  "treedp_test"
  "treedp_test.pdb"
  "treedp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treedp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
