# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/treewidth_test[1]_include.cmake")
include("/root/repo/build/tests/cliques_test[1]_include.cmake")
include("/root/repo/build/tests/hypergraph_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/schaefer_test[1]_include.cmake")
include("/root/repo/build/tests/csp_test[1]_include.cmake")
include("/root/repo/build/tests/treedp_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/structures_test[1]_include.cmake")
include("/root/repo/build/tests/reductions_test[1]_include.cmake")
include("/root/repo/build/tests/finegrained_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/nice_decomposition_test[1]_include.cmake")
include("/root/repo/build/tests/cdcl_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/enumeration_test[1]_include.cmake")
include("/root/repo/build/tests/relational_ops_test[1]_include.cmake")
include("/root/repo/build/tests/crossdomain_test[1]_include.cmake")
include("/root/repo/build/tests/hypertree_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/random_query_test[1]_include.cmake")
include("/root/repo/build/tests/np_reductions_test[1]_include.cmake")
