# Empty compiler generated dependencies file for bench_e10_schaefer.
# This may be replaced when dependencies are built.
