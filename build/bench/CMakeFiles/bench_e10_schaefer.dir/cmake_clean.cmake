file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_schaefer.dir/bench_e10_schaefer.cc.o"
  "CMakeFiles/bench_e10_schaefer.dir/bench_e10_schaefer.cc.o.d"
  "bench_e10_schaefer"
  "bench_e10_schaefer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_schaefer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
