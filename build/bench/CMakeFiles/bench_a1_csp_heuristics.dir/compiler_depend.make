# Empty compiler generated dependencies file for bench_a1_csp_heuristics.
# This may be replaced when dependencies are built.
