file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_csp_heuristics.dir/bench_a1_csp_heuristics.cc.o"
  "CMakeFiles/bench_a1_csp_heuristics.dir/bench_a1_csp_heuristics.cc.o.d"
  "bench_a1_csp_heuristics"
  "bench_a1_csp_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_csp_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
