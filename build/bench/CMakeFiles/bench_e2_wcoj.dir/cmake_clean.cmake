file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_wcoj.dir/bench_e2_wcoj.cc.o"
  "CMakeFiles/bench_e2_wcoj.dir/bench_e2_wcoj.cc.o.d"
  "bench_e2_wcoj"
  "bench_e2_wcoj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_wcoj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
