file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_triangle_sparse.dir/bench_e9_triangle_sparse.cc.o"
  "CMakeFiles/bench_e9_triangle_sparse.dir/bench_e9_triangle_sparse.cc.o.d"
  "bench_e9_triangle_sparse"
  "bench_e9_triangle_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_triangle_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
