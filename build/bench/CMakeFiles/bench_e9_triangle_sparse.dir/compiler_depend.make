# Empty compiler generated dependencies file for bench_e9_triangle_sparse.
# This may be replaced when dependencies are built.
