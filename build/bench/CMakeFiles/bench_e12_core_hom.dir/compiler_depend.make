# Empty compiler generated dependencies file for bench_e12_core_hom.
# This may be replaced when dependencies are built.
