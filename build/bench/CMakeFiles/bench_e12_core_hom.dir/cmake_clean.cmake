file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_core_hom.dir/bench_e12_core_hom.cc.o"
  "CMakeFiles/bench_e12_core_hom.dir/bench_e12_core_hom.cc.o.d"
  "bench_e12_core_hom"
  "bench_e12_core_hom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_core_hom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
