# Empty compiler generated dependencies file for bench_e15_tw_dp_optimal.
# This may be replaced when dependencies are built.
