file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_tw_dp_optimal.dir/bench_e15_tw_dp_optimal.cc.o"
  "CMakeFiles/bench_e15_tw_dp_optimal.dir/bench_e15_tw_dp_optimal.cc.o.d"
  "bench_e15_tw_dp_optimal"
  "bench_e15_tw_dp_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_tw_dp_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
