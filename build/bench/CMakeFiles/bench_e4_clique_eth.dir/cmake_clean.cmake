file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_clique_eth.dir/bench_e4_clique_eth.cc.o"
  "CMakeFiles/bench_e4_clique_eth.dir/bench_e4_clique_eth.cc.o.d"
  "bench_e4_clique_eth"
  "bench_e4_clique_eth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_clique_eth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
