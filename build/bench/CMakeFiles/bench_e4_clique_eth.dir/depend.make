# Empty dependencies file for bench_e4_clique_eth.
# This may be replaced when dependencies are built.
