# Empty dependencies file for bench_e5_mm_clique.
# This may be replaced when dependencies are built.
