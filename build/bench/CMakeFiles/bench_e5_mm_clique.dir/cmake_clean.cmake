file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_mm_clique.dir/bench_e5_mm_clique.cc.o"
  "CMakeFiles/bench_e5_mm_clique.dir/bench_e5_mm_clique.cc.o.d"
  "bench_e5_mm_clique"
  "bench_e5_mm_clique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_mm_clique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
