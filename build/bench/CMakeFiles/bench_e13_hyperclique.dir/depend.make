# Empty dependencies file for bench_e13_hyperclique.
# This may be replaced when dependencies are built.
