file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_hyperclique.dir/bench_e13_hyperclique.cc.o"
  "CMakeFiles/bench_e13_hyperclique.dir/bench_e13_hyperclique.cc.o.d"
  "bench_e13_hyperclique"
  "bench_e13_hyperclique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_hyperclique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
