# Empty dependencies file for bench_e6_special_csp.
# This may be replaced when dependencies are built.
