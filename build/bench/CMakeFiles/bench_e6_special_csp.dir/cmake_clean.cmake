file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_special_csp.dir/bench_e6_special_csp.cc.o"
  "CMakeFiles/bench_e6_special_csp.dir/bench_e6_special_csp.cc.o.d"
  "bench_e6_special_csp"
  "bench_e6_special_csp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_special_csp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
