# Empty compiler generated dependencies file for bench_e16_enumeration_delay.
# This may be replaced when dependencies are built.
