file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_enumeration_delay.dir/bench_e16_enumeration_delay.cc.o"
  "CMakeFiles/bench_e16_enumeration_delay.dir/bench_e16_enumeration_delay.cc.o.d"
  "bench_e16_enumeration_delay"
  "bench_e16_enumeration_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_enumeration_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
