file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_eth_3sat.dir/bench_e11_eth_3sat.cc.o"
  "CMakeFiles/bench_e11_eth_3sat.dir/bench_e11_eth_3sat.cc.o.d"
  "bench_e11_eth_3sat"
  "bench_e11_eth_3sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_eth_3sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
