# Empty dependencies file for bench_e11_eth_3sat.
# This may be replaced when dependencies are built.
