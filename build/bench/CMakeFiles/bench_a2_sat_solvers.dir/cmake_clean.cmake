file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_sat_solvers.dir/bench_a2_sat_solvers.cc.o"
  "CMakeFiles/bench_a2_sat_solvers.dir/bench_a2_sat_solvers.cc.o.d"
  "bench_a2_sat_solvers"
  "bench_a2_sat_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_sat_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
