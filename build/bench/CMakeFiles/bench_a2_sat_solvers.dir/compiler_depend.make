# Empty compiler generated dependencies file for bench_a2_sat_solvers.
# This may be replaced when dependencies are built.
