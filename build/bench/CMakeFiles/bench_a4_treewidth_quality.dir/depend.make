# Empty dependencies file for bench_a4_treewidth_quality.
# This may be replaced when dependencies are built.
