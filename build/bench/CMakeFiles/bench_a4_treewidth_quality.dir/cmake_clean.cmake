file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_treewidth_quality.dir/bench_a4_treewidth_quality.cc.o"
  "CMakeFiles/bench_a4_treewidth_quality.dir/bench_a4_treewidth_quality.cc.o.d"
  "bench_a4_treewidth_quality"
  "bench_a4_treewidth_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_treewidth_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
