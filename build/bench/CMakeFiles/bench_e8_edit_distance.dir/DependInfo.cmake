
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e8_edit_distance.cc" "bench/CMakeFiles/bench_e8_edit_distance.dir/bench_e8_edit_distance.cc.o" "gcc" "bench/CMakeFiles/bench_e8_edit_distance.dir/bench_e8_edit_distance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/finegrained/CMakeFiles/qc_finegrained.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
