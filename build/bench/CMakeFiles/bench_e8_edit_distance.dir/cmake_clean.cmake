file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_edit_distance.dir/bench_e8_edit_distance.cc.o"
  "CMakeFiles/bench_e8_edit_distance.dir/bench_e8_edit_distance.cc.o.d"
  "bench_e8_edit_distance"
  "bench_e8_edit_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_edit_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
