# Empty dependencies file for bench_e8_edit_distance.
# This may be replaced when dependencies are built.
