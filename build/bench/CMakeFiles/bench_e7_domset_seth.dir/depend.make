# Empty dependencies file for bench_e7_domset_seth.
# This may be replaced when dependencies are built.
