file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_domset_seth.dir/bench_e7_domset_seth.cc.o"
  "CMakeFiles/bench_e7_domset_seth.dir/bench_e7_domset_seth.cc.o.d"
  "bench_e7_domset_seth"
  "bench_e7_domset_seth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_domset_seth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
