file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_agm_bound.dir/bench_e1_agm_bound.cc.o"
  "CMakeFiles/bench_e1_agm_bound.dir/bench_e1_agm_bound.cc.o.d"
  "bench_e1_agm_bound"
  "bench_e1_agm_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_agm_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
