# Empty dependencies file for bench_e1_agm_bound.
# This may be replaced when dependencies are built.
