# Empty compiler generated dependencies file for bench_e3_treewidth_dp.
# This may be replaced when dependencies are built.
