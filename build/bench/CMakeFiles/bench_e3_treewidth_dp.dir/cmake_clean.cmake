file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_treewidth_dp.dir/bench_e3_treewidth_dp.cc.o"
  "CMakeFiles/bench_e3_treewidth_dp.dir/bench_e3_treewidth_dp.cc.o.d"
  "bench_e3_treewidth_dp"
  "bench_e3_treewidth_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_treewidth_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
