file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_join_order.dir/bench_a3_join_order.cc.o"
  "CMakeFiles/bench_a3_join_order.dir/bench_a3_join_order.cc.o.d"
  "bench_a3_join_order"
  "bench_a3_join_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_join_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
