# Empty compiler generated dependencies file for bench_a3_join_order.
# This may be replaced when dependencies are built.
