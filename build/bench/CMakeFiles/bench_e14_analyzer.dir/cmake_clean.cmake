file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_analyzer.dir/bench_e14_analyzer.cc.o"
  "CMakeFiles/bench_e14_analyzer.dir/bench_e14_analyzer.cc.o.d"
  "bench_e14_analyzer"
  "bench_e14_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
