# Empty compiler generated dependencies file for bench_e14_analyzer.
# This may be replaced when dependencies are built.
