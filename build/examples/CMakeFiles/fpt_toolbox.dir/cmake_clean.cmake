file(REMOVE_RECURSE
  "CMakeFiles/fpt_toolbox.dir/fpt_toolbox.cpp.o"
  "CMakeFiles/fpt_toolbox.dir/fpt_toolbox.cpp.o.d"
  "fpt_toolbox"
  "fpt_toolbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpt_toolbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
