# Empty compiler generated dependencies file for fpt_toolbox.
# This may be replaced when dependencies are built.
