# Empty compiler generated dependencies file for reductions_tour.
# This may be replaced when dependencies are built.
