file(REMOVE_RECURSE
  "CMakeFiles/reductions_tour.dir/reductions_tour.cpp.o"
  "CMakeFiles/reductions_tour.dir/reductions_tour.cpp.o.d"
  "reductions_tour"
  "reductions_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reductions_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
