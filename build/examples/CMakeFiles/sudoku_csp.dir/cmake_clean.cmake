file(REMOVE_RECURSE
  "CMakeFiles/sudoku_csp.dir/sudoku_csp.cpp.o"
  "CMakeFiles/sudoku_csp.dir/sudoku_csp.cpp.o.d"
  "sudoku_csp"
  "sudoku_csp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku_csp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
