# Empty compiler generated dependencies file for sudoku_csp.
# This may be replaced when dependencies are built.
