file(REMOVE_RECURSE
  "CMakeFiles/query_cli.dir/query_cli.cpp.o"
  "CMakeFiles/query_cli.dir/query_cli.cpp.o.d"
  "query_cli"
  "query_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
