# Empty dependencies file for query_cli.
# This may be replaced when dependencies are built.
