# Empty dependencies file for query_analyzer.
# This may be replaced when dependencies are built.
