file(REMOVE_RECURSE
  "CMakeFiles/query_analyzer.dir/query_analyzer.cpp.o"
  "CMakeFiles/query_analyzer.dir/query_analyzer.cpp.o.d"
  "query_analyzer"
  "query_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
