# Empty dependencies file for qc_sat.
# This may be replaced when dependencies are built.
