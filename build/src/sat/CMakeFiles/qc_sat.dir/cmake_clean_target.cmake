file(REMOVE_RECURSE
  "libqc_sat.a"
)
