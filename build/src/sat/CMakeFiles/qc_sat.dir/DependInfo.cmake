
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sat/cdcl.cc" "src/sat/CMakeFiles/qc_sat.dir/cdcl.cc.o" "gcc" "src/sat/CMakeFiles/qc_sat.dir/cdcl.cc.o.d"
  "/root/repo/src/sat/cnf.cc" "src/sat/CMakeFiles/qc_sat.dir/cnf.cc.o" "gcc" "src/sat/CMakeFiles/qc_sat.dir/cnf.cc.o.d"
  "/root/repo/src/sat/dpll.cc" "src/sat/CMakeFiles/qc_sat.dir/dpll.cc.o" "gcc" "src/sat/CMakeFiles/qc_sat.dir/dpll.cc.o.d"
  "/root/repo/src/sat/generators.cc" "src/sat/CMakeFiles/qc_sat.dir/generators.cc.o" "gcc" "src/sat/CMakeFiles/qc_sat.dir/generators.cc.o.d"
  "/root/repo/src/sat/hornsat.cc" "src/sat/CMakeFiles/qc_sat.dir/hornsat.cc.o" "gcc" "src/sat/CMakeFiles/qc_sat.dir/hornsat.cc.o.d"
  "/root/repo/src/sat/model_counting.cc" "src/sat/CMakeFiles/qc_sat.dir/model_counting.cc.o" "gcc" "src/sat/CMakeFiles/qc_sat.dir/model_counting.cc.o.d"
  "/root/repo/src/sat/schaefer.cc" "src/sat/CMakeFiles/qc_sat.dir/schaefer.cc.o" "gcc" "src/sat/CMakeFiles/qc_sat.dir/schaefer.cc.o.d"
  "/root/repo/src/sat/twosat.cc" "src/sat/CMakeFiles/qc_sat.dir/twosat.cc.o" "gcc" "src/sat/CMakeFiles/qc_sat.dir/twosat.cc.o.d"
  "/root/repo/src/sat/walksat.cc" "src/sat/CMakeFiles/qc_sat.dir/walksat.cc.o" "gcc" "src/sat/CMakeFiles/qc_sat.dir/walksat.cc.o.d"
  "/root/repo/src/sat/xorsat.cc" "src/sat/CMakeFiles/qc_sat.dir/xorsat.cc.o" "gcc" "src/sat/CMakeFiles/qc_sat.dir/xorsat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
