file(REMOVE_RECURSE
  "CMakeFiles/qc_sat.dir/cdcl.cc.o"
  "CMakeFiles/qc_sat.dir/cdcl.cc.o.d"
  "CMakeFiles/qc_sat.dir/cnf.cc.o"
  "CMakeFiles/qc_sat.dir/cnf.cc.o.d"
  "CMakeFiles/qc_sat.dir/dpll.cc.o"
  "CMakeFiles/qc_sat.dir/dpll.cc.o.d"
  "CMakeFiles/qc_sat.dir/generators.cc.o"
  "CMakeFiles/qc_sat.dir/generators.cc.o.d"
  "CMakeFiles/qc_sat.dir/hornsat.cc.o"
  "CMakeFiles/qc_sat.dir/hornsat.cc.o.d"
  "CMakeFiles/qc_sat.dir/model_counting.cc.o"
  "CMakeFiles/qc_sat.dir/model_counting.cc.o.d"
  "CMakeFiles/qc_sat.dir/schaefer.cc.o"
  "CMakeFiles/qc_sat.dir/schaefer.cc.o.d"
  "CMakeFiles/qc_sat.dir/twosat.cc.o"
  "CMakeFiles/qc_sat.dir/twosat.cc.o.d"
  "CMakeFiles/qc_sat.dir/walksat.cc.o"
  "CMakeFiles/qc_sat.dir/walksat.cc.o.d"
  "CMakeFiles/qc_sat.dir/xorsat.cc.o"
  "CMakeFiles/qc_sat.dir/xorsat.cc.o.d"
  "libqc_sat.a"
  "libqc_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
