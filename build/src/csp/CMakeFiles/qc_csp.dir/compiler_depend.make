# Empty compiler generated dependencies file for qc_csp.
# This may be replaced when dependencies are built.
