file(REMOVE_RECURSE
  "CMakeFiles/qc_csp.dir/arc_consistency.cc.o"
  "CMakeFiles/qc_csp.dir/arc_consistency.cc.o.d"
  "CMakeFiles/qc_csp.dir/csp.cc.o"
  "CMakeFiles/qc_csp.dir/csp.cc.o.d"
  "CMakeFiles/qc_csp.dir/gac.cc.o"
  "CMakeFiles/qc_csp.dir/gac.cc.o.d"
  "CMakeFiles/qc_csp.dir/generators.cc.o"
  "CMakeFiles/qc_csp.dir/generators.cc.o.d"
  "CMakeFiles/qc_csp.dir/serialization.cc.o"
  "CMakeFiles/qc_csp.dir/serialization.cc.o.d"
  "CMakeFiles/qc_csp.dir/solver.cc.o"
  "CMakeFiles/qc_csp.dir/solver.cc.o.d"
  "CMakeFiles/qc_csp.dir/treedp.cc.o"
  "CMakeFiles/qc_csp.dir/treedp.cc.o.d"
  "libqc_csp.a"
  "libqc_csp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_csp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
