file(REMOVE_RECURSE
  "libqc_csp.a"
)
