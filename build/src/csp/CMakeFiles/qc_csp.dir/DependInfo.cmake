
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/csp/arc_consistency.cc" "src/csp/CMakeFiles/qc_csp.dir/arc_consistency.cc.o" "gcc" "src/csp/CMakeFiles/qc_csp.dir/arc_consistency.cc.o.d"
  "/root/repo/src/csp/csp.cc" "src/csp/CMakeFiles/qc_csp.dir/csp.cc.o" "gcc" "src/csp/CMakeFiles/qc_csp.dir/csp.cc.o.d"
  "/root/repo/src/csp/gac.cc" "src/csp/CMakeFiles/qc_csp.dir/gac.cc.o" "gcc" "src/csp/CMakeFiles/qc_csp.dir/gac.cc.o.d"
  "/root/repo/src/csp/generators.cc" "src/csp/CMakeFiles/qc_csp.dir/generators.cc.o" "gcc" "src/csp/CMakeFiles/qc_csp.dir/generators.cc.o.d"
  "/root/repo/src/csp/serialization.cc" "src/csp/CMakeFiles/qc_csp.dir/serialization.cc.o" "gcc" "src/csp/CMakeFiles/qc_csp.dir/serialization.cc.o.d"
  "/root/repo/src/csp/solver.cc" "src/csp/CMakeFiles/qc_csp.dir/solver.cc.o" "gcc" "src/csp/CMakeFiles/qc_csp.dir/solver.cc.o.d"
  "/root/repo/src/csp/treedp.cc" "src/csp/CMakeFiles/qc_csp.dir/treedp.cc.o" "gcc" "src/csp/CMakeFiles/qc_csp.dir/treedp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/qc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
