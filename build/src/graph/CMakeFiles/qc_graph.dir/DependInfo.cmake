
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/boolmatrix.cc" "src/graph/CMakeFiles/qc_graph.dir/boolmatrix.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/boolmatrix.cc.o.d"
  "/root/repo/src/graph/cliques.cc" "src/graph/CMakeFiles/qc_graph.dir/cliques.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/cliques.cc.o.d"
  "/root/repo/src/graph/colorcoding.cc" "src/graph/CMakeFiles/qc_graph.dir/colorcoding.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/colorcoding.cc.o.d"
  "/root/repo/src/graph/coloring.cc" "src/graph/CMakeFiles/qc_graph.dir/coloring.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/coloring.cc.o.d"
  "/root/repo/src/graph/distance.cc" "src/graph/CMakeFiles/qc_graph.dir/distance.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/distance.cc.o.d"
  "/root/repo/src/graph/domination.cc" "src/graph/CMakeFiles/qc_graph.dir/domination.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/domination.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/qc_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/qc_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/homomorphism.cc" "src/graph/CMakeFiles/qc_graph.dir/homomorphism.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/homomorphism.cc.o.d"
  "/root/repo/src/graph/hypergraph.cc" "src/graph/CMakeFiles/qc_graph.dir/hypergraph.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/hypergraph.cc.o.d"
  "/root/repo/src/graph/hypertree.cc" "src/graph/CMakeFiles/qc_graph.dir/hypertree.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/hypertree.cc.o.d"
  "/root/repo/src/graph/nice_decomposition.cc" "src/graph/CMakeFiles/qc_graph.dir/nice_decomposition.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/nice_decomposition.cc.o.d"
  "/root/repo/src/graph/treewidth.cc" "src/graph/CMakeFiles/qc_graph.dir/treewidth.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/treewidth.cc.o.d"
  "/root/repo/src/graph/triangles.cc" "src/graph/CMakeFiles/qc_graph.dir/triangles.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/triangles.cc.o.d"
  "/root/repo/src/graph/vertexcover.cc" "src/graph/CMakeFiles/qc_graph.dir/vertexcover.cc.o" "gcc" "src/graph/CMakeFiles/qc_graph.dir/vertexcover.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
