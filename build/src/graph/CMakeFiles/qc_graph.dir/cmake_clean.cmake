file(REMOVE_RECURSE
  "CMakeFiles/qc_graph.dir/boolmatrix.cc.o"
  "CMakeFiles/qc_graph.dir/boolmatrix.cc.o.d"
  "CMakeFiles/qc_graph.dir/cliques.cc.o"
  "CMakeFiles/qc_graph.dir/cliques.cc.o.d"
  "CMakeFiles/qc_graph.dir/colorcoding.cc.o"
  "CMakeFiles/qc_graph.dir/colorcoding.cc.o.d"
  "CMakeFiles/qc_graph.dir/coloring.cc.o"
  "CMakeFiles/qc_graph.dir/coloring.cc.o.d"
  "CMakeFiles/qc_graph.dir/distance.cc.o"
  "CMakeFiles/qc_graph.dir/distance.cc.o.d"
  "CMakeFiles/qc_graph.dir/domination.cc.o"
  "CMakeFiles/qc_graph.dir/domination.cc.o.d"
  "CMakeFiles/qc_graph.dir/generators.cc.o"
  "CMakeFiles/qc_graph.dir/generators.cc.o.d"
  "CMakeFiles/qc_graph.dir/graph.cc.o"
  "CMakeFiles/qc_graph.dir/graph.cc.o.d"
  "CMakeFiles/qc_graph.dir/homomorphism.cc.o"
  "CMakeFiles/qc_graph.dir/homomorphism.cc.o.d"
  "CMakeFiles/qc_graph.dir/hypergraph.cc.o"
  "CMakeFiles/qc_graph.dir/hypergraph.cc.o.d"
  "CMakeFiles/qc_graph.dir/hypertree.cc.o"
  "CMakeFiles/qc_graph.dir/hypertree.cc.o.d"
  "CMakeFiles/qc_graph.dir/nice_decomposition.cc.o"
  "CMakeFiles/qc_graph.dir/nice_decomposition.cc.o.d"
  "CMakeFiles/qc_graph.dir/treewidth.cc.o"
  "CMakeFiles/qc_graph.dir/treewidth.cc.o.d"
  "CMakeFiles/qc_graph.dir/triangles.cc.o"
  "CMakeFiles/qc_graph.dir/triangles.cc.o.d"
  "CMakeFiles/qc_graph.dir/vertexcover.cc.o"
  "CMakeFiles/qc_graph.dir/vertexcover.cc.o.d"
  "libqc_graph.a"
  "libqc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
