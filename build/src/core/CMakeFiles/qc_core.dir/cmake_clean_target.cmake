file(REMOVE_RECURSE
  "libqc_core.a"
)
