# Empty dependencies file for qc_core.
# This may be replaced when dependencies are built.
