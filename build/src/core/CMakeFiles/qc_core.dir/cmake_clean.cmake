file(REMOVE_RECURSE
  "CMakeFiles/qc_core.dir/analyzer.cc.o"
  "CMakeFiles/qc_core.dir/analyzer.cc.o.d"
  "CMakeFiles/qc_core.dir/autosolver.cc.o"
  "CMakeFiles/qc_core.dir/autosolver.cc.o.d"
  "libqc_core.a"
  "libqc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
