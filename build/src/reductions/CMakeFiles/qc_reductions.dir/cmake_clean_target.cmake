file(REMOVE_RECURSE
  "libqc_reductions.a"
)
