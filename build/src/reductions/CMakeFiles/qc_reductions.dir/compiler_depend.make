# Empty compiler generated dependencies file for qc_reductions.
# This may be replaced when dependencies are built.
