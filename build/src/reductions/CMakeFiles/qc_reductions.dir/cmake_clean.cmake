file(REMOVE_RECURSE
  "CMakeFiles/qc_reductions.dir/clique_reductions.cc.o"
  "CMakeFiles/qc_reductions.dir/clique_reductions.cc.o.d"
  "CMakeFiles/qc_reductions.dir/domset_reduction.cc.o"
  "CMakeFiles/qc_reductions.dir/domset_reduction.cc.o.d"
  "CMakeFiles/qc_reductions.dir/np_reductions.cc.o"
  "CMakeFiles/qc_reductions.dir/np_reductions.cc.o.d"
  "CMakeFiles/qc_reductions.dir/query_reductions.cc.o"
  "CMakeFiles/qc_reductions.dir/query_reductions.cc.o.d"
  "CMakeFiles/qc_reductions.dir/sat_reductions.cc.o"
  "CMakeFiles/qc_reductions.dir/sat_reductions.cc.o.d"
  "libqc_reductions.a"
  "libqc_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
