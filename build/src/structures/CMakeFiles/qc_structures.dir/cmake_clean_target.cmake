file(REMOVE_RECURSE
  "libqc_structures.a"
)
