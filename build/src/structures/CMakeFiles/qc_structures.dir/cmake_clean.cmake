file(REMOVE_RECURSE
  "CMakeFiles/qc_structures.dir/structure.cc.o"
  "CMakeFiles/qc_structures.dir/structure.cc.o.d"
  "libqc_structures.a"
  "libqc_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
