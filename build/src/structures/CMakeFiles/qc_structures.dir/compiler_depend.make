# Empty compiler generated dependencies file for qc_structures.
# This may be replaced when dependencies are built.
