
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/finegrained/curves.cc" "src/finegrained/CMakeFiles/qc_finegrained.dir/curves.cc.o" "gcc" "src/finegrained/CMakeFiles/qc_finegrained.dir/curves.cc.o.d"
  "/root/repo/src/finegrained/hyperclique.cc" "src/finegrained/CMakeFiles/qc_finegrained.dir/hyperclique.cc.o" "gcc" "src/finegrained/CMakeFiles/qc_finegrained.dir/hyperclique.cc.o.d"
  "/root/repo/src/finegrained/orthogonal_vectors.cc" "src/finegrained/CMakeFiles/qc_finegrained.dir/orthogonal_vectors.cc.o" "gcc" "src/finegrained/CMakeFiles/qc_finegrained.dir/orthogonal_vectors.cc.o.d"
  "/root/repo/src/finegrained/sequences.cc" "src/finegrained/CMakeFiles/qc_finegrained.dir/sequences.cc.o" "gcc" "src/finegrained/CMakeFiles/qc_finegrained.dir/sequences.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/qc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
