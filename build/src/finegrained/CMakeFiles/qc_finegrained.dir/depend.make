# Empty dependencies file for qc_finegrained.
# This may be replaced when dependencies are built.
