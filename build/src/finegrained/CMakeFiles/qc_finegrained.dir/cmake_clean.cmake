file(REMOVE_RECURSE
  "CMakeFiles/qc_finegrained.dir/curves.cc.o"
  "CMakeFiles/qc_finegrained.dir/curves.cc.o.d"
  "CMakeFiles/qc_finegrained.dir/hyperclique.cc.o"
  "CMakeFiles/qc_finegrained.dir/hyperclique.cc.o.d"
  "CMakeFiles/qc_finegrained.dir/orthogonal_vectors.cc.o"
  "CMakeFiles/qc_finegrained.dir/orthogonal_vectors.cc.o.d"
  "CMakeFiles/qc_finegrained.dir/sequences.cc.o"
  "CMakeFiles/qc_finegrained.dir/sequences.cc.o.d"
  "libqc_finegrained.a"
  "libqc_finegrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_finegrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
