file(REMOVE_RECURSE
  "libqc_finegrained.a"
)
