file(REMOVE_RECURSE
  "libqc_db.a"
)
