# Empty compiler generated dependencies file for qc_db.
# This may be replaced when dependencies are built.
