
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/agm.cc" "src/db/CMakeFiles/qc_db.dir/agm.cc.o" "gcc" "src/db/CMakeFiles/qc_db.dir/agm.cc.o.d"
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/qc_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/qc_db.dir/database.cc.o.d"
  "/root/repo/src/db/enumeration.cc" "src/db/CMakeFiles/qc_db.dir/enumeration.cc.o" "gcc" "src/db/CMakeFiles/qc_db.dir/enumeration.cc.o.d"
  "/root/repo/src/db/generic_join.cc" "src/db/CMakeFiles/qc_db.dir/generic_join.cc.o" "gcc" "src/db/CMakeFiles/qc_db.dir/generic_join.cc.o.d"
  "/root/repo/src/db/joins.cc" "src/db/CMakeFiles/qc_db.dir/joins.cc.o" "gcc" "src/db/CMakeFiles/qc_db.dir/joins.cc.o.d"
  "/root/repo/src/db/parser.cc" "src/db/CMakeFiles/qc_db.dir/parser.cc.o" "gcc" "src/db/CMakeFiles/qc_db.dir/parser.cc.o.d"
  "/root/repo/src/db/relational_ops.cc" "src/db/CMakeFiles/qc_db.dir/relational_ops.cc.o" "gcc" "src/db/CMakeFiles/qc_db.dir/relational_ops.cc.o.d"
  "/root/repo/src/db/yannakakis.cc" "src/db/CMakeFiles/qc_db.dir/yannakakis.cc.o" "gcc" "src/db/CMakeFiles/qc_db.dir/yannakakis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/qc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
