file(REMOVE_RECURSE
  "CMakeFiles/qc_db.dir/agm.cc.o"
  "CMakeFiles/qc_db.dir/agm.cc.o.d"
  "CMakeFiles/qc_db.dir/database.cc.o"
  "CMakeFiles/qc_db.dir/database.cc.o.d"
  "CMakeFiles/qc_db.dir/enumeration.cc.o"
  "CMakeFiles/qc_db.dir/enumeration.cc.o.d"
  "CMakeFiles/qc_db.dir/generic_join.cc.o"
  "CMakeFiles/qc_db.dir/generic_join.cc.o.d"
  "CMakeFiles/qc_db.dir/joins.cc.o"
  "CMakeFiles/qc_db.dir/joins.cc.o.d"
  "CMakeFiles/qc_db.dir/parser.cc.o"
  "CMakeFiles/qc_db.dir/parser.cc.o.d"
  "CMakeFiles/qc_db.dir/relational_ops.cc.o"
  "CMakeFiles/qc_db.dir/relational_ops.cc.o.d"
  "CMakeFiles/qc_db.dir/yannakakis.cc.o"
  "CMakeFiles/qc_db.dir/yannakakis.cc.o.d"
  "libqc_db.a"
  "libqc_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
