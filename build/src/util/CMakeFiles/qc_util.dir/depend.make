# Empty dependencies file for qc_util.
# This may be replaced when dependencies are built.
