file(REMOVE_RECURSE
  "CMakeFiles/qc_util.dir/fraction.cc.o"
  "CMakeFiles/qc_util.dir/fraction.cc.o.d"
  "CMakeFiles/qc_util.dir/lp.cc.o"
  "CMakeFiles/qc_util.dir/lp.cc.o.d"
  "CMakeFiles/qc_util.dir/table.cc.o"
  "CMakeFiles/qc_util.dir/table.cc.o.d"
  "libqc_util.a"
  "libqc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
