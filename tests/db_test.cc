#include <gtest/gtest.h>

#include <thread>

#include "db/agm.h"
#include "db/database.h"
#include "db/generic_join.h"
#include "db/joins.h"
#include "db/yannakakis.h"
#include "util/rng.h"

namespace qc::db {
namespace {

using util::Fraction;

/// The running example of Section 3:
/// Q = R1(a,b) |><| R2(a,c) |><| R3(b,c).
JoinQuery TriangleQuery() {
  JoinQuery q;
  q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  return q;
}

/// Path query R(a,b) |><| S(b,c): acyclic.
JoinQuery PathQuery() {
  JoinQuery q;
  q.Add("R", {"a", "b"}).Add("S", {"b", "c"});
  return q;
}

Database TriangleDb(const std::vector<Tuple>& r1, const std::vector<Tuple>& r2,
                    const std::vector<Tuple>& r3) {
  Database db;
  db.SetRelation("R1", 2, r1);
  db.SetRelation("R2", 2, r2);
  db.SetRelation("R3", 2, r3);
  return db;
}

TEST(JoinQueryTest, SchemaAndGraphs) {
  JoinQuery q = TriangleQuery();
  EXPECT_EQ(q.AttributeOrder(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(q.Hypergraph().num_edges(), 3);
  EXPECT_EQ(q.PrimalGraph().num_edges(), 3);
}

TEST(DatabaseTest, RelationManagement) {
  Database db;
  db.SetRelation("R", 2, {{1, 2}});
  db.AddTuple("R", {3, 4});
  EXPECT_TRUE(db.HasRelation("R"));
  EXPECT_FALSE(db.HasRelation("S"));
  EXPECT_EQ(db.Arity("R"), 2);
  EXPECT_EQ(db.Tuples("R").size(), 2u);
  EXPECT_EQ(db.MaxRelationSize(), 2u);
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"R"}));
}

TEST(NestedLoopTest, TriangleByHand) {
  // Edges of a 4-cycle as a "graph": 0-1, 1-2, 2-3, 3-0 — no triangle.
  std::vector<Tuple> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  Database db = TriangleDb(edges, edges, edges);
  JoinResult r = EvaluateNestedLoop(TriangleQuery(), db);
  EXPECT_TRUE(r.tuples.empty());
  // Add the chord 0-2 in all relations: triangles appear.
  for (const char* rel : {"R1", "R2", "R3"}) db.AddTuple(rel, {0, 2});
  r = EvaluateNestedLoop(TriangleQuery(), db);
  EXPECT_FALSE(r.tuples.empty());
  // (0,1,2) requires R1(0,1), R2(0,2), R3(1,2): all present.
  EXPECT_NE(std::find(r.tuples.begin(), r.tuples.end(), Tuple({0, 1, 2})),
            r.tuples.end());
}

TEST(HashJoinTest, SharedAndCrossProduct) {
  JoinResult a{{"x", "y"}, {{1, 2}, {3, 4}}};
  JoinResult b{{"y", "z"}, {{2, 5}, {2, 6}, {9, 9}}};
  JoinResult ab = HashJoin(a, b);
  ab.Normalize();
  EXPECT_EQ(ab.attributes, (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_EQ(ab.tuples,
            (std::vector<Tuple>{{1, 2, 5}, {1, 2, 6}}));
  // Cross product when no shared attributes.
  JoinResult c{{"w"}, {{7}, {8}}};
  JoinResult ac = HashJoin(a, c);
  EXPECT_EQ(ac.tuples.size(), 4u);
}

TEST(MaterializeAtomTest, RepeatedAttributeFiltersEquality) {
  Database db;
  db.SetRelation("R", 2, {{1, 1}, {1, 2}, {3, 3}});
  Atom atom{"R", {"a", "a"}};
  JoinResult r = MaterializeAtom(atom, db);
  EXPECT_EQ(r.attributes, (std::vector<std::string>{"a"}));
  EXPECT_EQ(r.tuples, (std::vector<Tuple>{{1}, {3}}));
}

class JoinAlgorithmsAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinAlgorithmsAgreementTest, AllEvaluatorsAgreeOnTriangle) {
  util::Rng rng(900 + GetParam());
  JoinQuery q = TriangleQuery();
  Database db = RandomDatabase(q, 30, 8, &rng);
  JoinResult expected = EvaluateNestedLoop(q, db);
  expected.Normalize();

  JoinResult greedy = EvaluateGreedyBinaryJoin(q, db);
  greedy.Normalize();
  EXPECT_EQ(greedy.tuples, expected.tuples);

  GenericJoin gj(q, db);
  JoinResult wcoj = gj.Evaluate();
  wcoj.Normalize();
  EXPECT_EQ(wcoj.tuples, expected.tuples);
  EXPECT_EQ(GenericJoin(q, db).Count(), expected.tuples.size());
  EXPECT_EQ(GenericJoin(q, db).IsEmpty(), expected.tuples.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinAlgorithmsAgreementTest,
                         ::testing::Range(0, 15));

TEST(JoinAlgorithmsTest, AcyclicAgreement) {
  util::Rng rng(7);
  JoinQuery q;
  q.Add("R", {"a", "b"}).Add("S", {"b", "c"}).Add("T", {"c", "d"}).Add(
      "U", {"b", "e"});
  for (int trial = 0; trial < 10; ++trial) {
    Database db = RandomDatabase(q, 25, 6, &rng);
    JoinResult expected = EvaluateNestedLoop(q, db);
    expected.Normalize();
    auto yan = EvaluateYannakakis(q, db);
    ASSERT_TRUE(yan.has_value());
    yan->Normalize();
    EXPECT_EQ(yan->tuples, expected.tuples);
    auto boolean = BooleanYannakakis(q, db);
    ASSERT_TRUE(boolean.has_value());
    EXPECT_EQ(*boolean, !expected.tuples.empty());
    JoinResult wcoj = GenericJoin(q, db).Evaluate();
    wcoj.Normalize();
    EXPECT_EQ(wcoj.tuples, expected.tuples);
  }
}

TEST(JoinAlgorithmsTest, GenericJoinCustomOrderAgrees) {
  util::Rng rng(8);
  JoinQuery q = TriangleQuery();
  Database db = RandomDatabase(q, 40, 7, &rng);
  JoinResult base = GenericJoin(q, db).Evaluate();
  base.Normalize();
  for (std::vector<std::string> order :
       {std::vector<std::string>{"c", "a", "b"},
        std::vector<std::string>{"b", "c", "a"}}) {
    GenericJoin gj(q, db, order);
    JoinResult r = gj.Evaluate();
    // Reorder columns to canonical order before comparing.
    JoinResult canon;
    canon.attributes = {"a", "b", "c"};
    for (const auto& t : r.tuples) {
      Tuple u(3);
      for (int i = 0; i < 3; ++i) {
        auto it = std::find(r.attributes.begin(), r.attributes.end(),
                            canon.attributes[i]);
        u[i] = t[it - r.attributes.begin()];
      }
      canon.tuples.push_back(u);
    }
    canon.Normalize();
    EXPECT_EQ(canon.tuples, base.tuples);
  }
}

TEST(YannakakisTest, RejectsCyclicQuery) {
  EXPECT_FALSE(IsAcyclicQuery(TriangleQuery()));
  EXPECT_TRUE(IsAcyclicQuery(PathQuery()));
  util::Rng rng(9);
  Database db = RandomDatabase(TriangleQuery(), 10, 5, &rng);
  EXPECT_FALSE(EvaluateYannakakis(TriangleQuery(), db).has_value());
  EXPECT_FALSE(BooleanYannakakis(TriangleQuery(), db).has_value());
}

TEST(SemijoinTest, Basic) {
  JoinResult a{{"x", "y"}, {{1, 2}, {3, 4}, {5, 6}}};
  JoinResult b{{"y"}, {{2}, {6}}};
  JoinResult r = Semijoin(a, b);
  EXPECT_EQ(r.tuples, (std::vector<Tuple>{{1, 2}, {5, 6}}));
  // Empty right side with no shared attrs removes everything.
  JoinResult empty{{"z"}, {}};
  EXPECT_TRUE(Semijoin(a, empty).tuples.empty());
}

TEST(AgmTest, TriangleAnalysis) {
  auto analysis = AnalyzeAgm(TriangleQuery());
  ASSERT_TRUE(analysis.has_value());
  EXPECT_EQ(analysis->rho_star, Fraction(3, 2));
  for (const auto& w : analysis->edge_weights) EXPECT_EQ(w, Fraction(1, 2));
  for (const auto& x : analysis->vertex_shares) EXPECT_EQ(x, Fraction(1, 2));
  EXPECT_DOUBLE_EQ(analysis->BoundForN(100.0), 1000.0);
}

TEST(AgmTest, PathAnalysis) {
  auto analysis = AnalyzeAgm(PathQuery());
  ASSERT_TRUE(analysis.has_value());
  EXPECT_EQ(analysis->rho_star, Fraction(2));
}

TEST(AgmTest, BoundHoldsOnRandomDatabases) {
  util::Rng rng(10);
  JoinQuery q = TriangleQuery();
  auto analysis = AnalyzeAgm(q);
  ASSERT_TRUE(analysis.has_value());
  for (int trial = 0; trial < 10; ++trial) {
    Database db = RandomDatabase(q, 40, 9, &rng);
    std::uint64_t count = GenericJoin(q, db).Count();
    double bound =
        analysis->BoundForN(static_cast<double>(db.MaxRelationSize()));
    EXPECT_LE(static_cast<double>(count), bound + 1e-9);
  }
}

TEST(AgmTest, TightInstanceMeetsBoundExactly) {
  JoinQuery q = TriangleQuery();
  auto analysis = AnalyzeAgm(q);
  ASSERT_TRUE(analysis.has_value());
  for (int t : {2, 3, 4}) {
    long long n = 0;
    Database db = AgmTightInstance(q, *analysis, t, &n);
    EXPECT_EQ(n, static_cast<long long>(t) * t);  // L = 2 for the triangle.
    // Every relation has exactly N tuples.
    for (const auto& name : db.RelationNames()) {
      EXPECT_EQ(db.Tuples(name).size(), static_cast<std::size_t>(n));
    }
    // The answer has exactly N^{3/2} = t^3 tuples.
    std::uint64_t count = GenericJoin(q, db).Count();
    EXPECT_EQ(count, static_cast<std::uint64_t>(t) * t * t);
  }
}

TEST(AgmTest, StarQueryTightInstance) {
  // Star query R1(c,x) |><| R2(c,y) |><| R3(c,z): rho* = 3 (edges share only
  // the center; each leaf attribute needs its own edge at weight 1).
  JoinQuery q;
  q.Add("R1", {"c", "x"}).Add("R2", {"c", "y"}).Add("R3", {"c", "z"});
  auto analysis = AnalyzeAgm(q);
  ASSERT_TRUE(analysis.has_value());
  EXPECT_EQ(analysis->rho_star, Fraction(3));
  long long n = 0;
  Database db = AgmTightInstance(q, *analysis, 3, &n);
  std::uint64_t count = GenericJoin(q, db).Count();
  EXPECT_EQ(static_cast<double>(count),
            analysis->BoundForN(static_cast<double>(n)));
}

TEST(GenericJoinTest, EmptyRelationShortCircuits) {
  JoinQuery q = TriangleQuery();
  Database db = TriangleDb({}, {{1, 2}}, {{1, 2}});
  GenericJoin gj(q, db);
  EXPECT_TRUE(gj.IsEmpty());
  EXPECT_EQ(gj.Count(), 0u);
}

TEST(DatabaseMutationTest, MalformedInputRejectedWithDiagnostic) {
  Database db;
  // Arity mismatch inside SetRelation: rejected, database unchanged.
  MutationResult bad = db.SetRelation("R", 2, {{1, 2}, {3}});
  EXPECT_FALSE(bad);
  EXPECT_NE(bad.message.find("tuple 1"), std::string::npos);
  EXPECT_FALSE(db.HasRelation("R"));

  ASSERT_TRUE(db.SetRelation("R", 2, {{1, 2}}));
  // AddTuple to a missing relation and with the wrong arity: both rejected,
  // both leave the relation untouched.
  EXPECT_FALSE(db.AddTuple("S", {1, 2}));
  MutationResult wrong_arity = db.AddTuple("R", {1, 2, 3});
  EXPECT_FALSE(wrong_arity);
  EXPECT_NE(wrong_arity.message.find("arity"), std::string::npos);
  EXPECT_EQ(db.NumTuples("R"), 1u);
  EXPECT_FALSE(db.SetRelation("N", -1, {}));
}

TEST(DatabaseMutationTest, EveryMutationBumpsVersion) {
  Database db;
  EXPECT_EQ(db.RelationVersion("R"), 0u);  // Missing relation.
  ASSERT_TRUE(db.SetRelation("R", 2, {{1, 2}}));
  std::uint64_t v1 = db.RelationVersion("R");
  EXPECT_NE(v1, 0u);
  ASSERT_TRUE(db.AddTuple("R", {3, 4}));
  std::uint64_t v2 = db.RelationVersion("R");
  EXPECT_NE(v2, v1);
  ASSERT_TRUE(db.SetRelation("R", 2, {{5, 6}}));
  std::uint64_t v3 = db.RelationVersion("R");
  EXPECT_NE(v3, v2);
  // Rejected mutations must NOT bump the version.
  EXPECT_FALSE(db.AddTuple("R", {1}));
  EXPECT_EQ(db.RelationVersion("R"), v3);
  // Versions are process-unique: a second database reusing the name gets a
  // distinct stamp.
  Database other;
  ASSERT_TRUE(other.SetRelation("R", 2, {{5, 6}}));
  EXPECT_NE(other.RelationVersion("R"), v3);
}

TEST(DatabaseMutationTest, RowCacheInvalidatedByVersionBump) {
  Database db;
  ASSERT_TRUE(db.SetRelation("R", 2, {{1, 2}}));
  EXPECT_EQ(db.Tuples("R").size(), 1u);  // Materializes the row cache.
  ASSERT_TRUE(db.AddTuple("R", {3, 4}));
  EXPECT_EQ(db.Tuples("R").size(), 2u);  // Stale cache dropped via version.
  ASSERT_TRUE(db.SetRelation("R", 2, {{7, 8}, {9, 10}, {11, 12}}));
  EXPECT_EQ(db.Tuples("R").size(), 3u);
  EXPECT_EQ(db.Tuples("R")[0], (Tuple{7, 8}));
}

TEST(DatabaseConcurrentTuplesTest, EightThreadsShareLazyRowCache) {
  // Regression for the lazy row_cache data race: Tuples() on a shared const
  // Database used to materialize the mutable cache unguarded, so two threads
  // could write it concurrently (caught by TSan, occasionally a crash).
  Database db;
  std::vector<Tuple> rows;
  for (int i = 0; i < 512; ++i) rows.push_back({i, i * 2});
  ASSERT_TRUE(db.SetRelation("R", 2, rows));
  const Database& shared = db;
  std::vector<std::thread> threads;
  std::vector<std::size_t> sizes(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&shared, &sizes, t]() {
      sizes[t] = shared.Tuples("R").size();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(sizes[t], 512u);
  EXPECT_EQ(shared.Tuples("R")[511], (Tuple{511, 1022}));
}

TEST(GenericJoinTest, SelfJoinSharedRelation) {
  // Q = E(a,b) |><| E(b,c): paths of length 2 in a directed graph.
  JoinQuery q;
  q.Add("E", {"a", "b"}).Add("E", {"b", "c"});
  Database db;
  db.SetRelation("E", 2, {{0, 1}, {1, 2}, {2, 0}});
  JoinResult r = GenericJoin(q, db).Evaluate();
  r.Normalize();
  EXPECT_EQ(r.tuples.size(), 3u);  // 0->1->2, 1->2->0, 2->0->1.
  JoinResult expected = EvaluateNestedLoop(q, db);
  expected.Normalize();
  EXPECT_EQ(r.tuples, expected.tuples);
}

}  // namespace
}  // namespace qc::db
