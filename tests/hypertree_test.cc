// Tests for fractional hypertree width, the treewidth branch & bound, the
// #SAT counter, and subgraph isomorphism.

#include <gtest/gtest.h>

#include "graph/cliques.h"
#include "graph/generators.h"
#include "graph/homomorphism.h"
#include "graph/hypertree.h"
#include "graph/treewidth.h"
#include "sat/generators.h"
#include "sat/model_counting.h"
#include "util/rng.h"

namespace qc {
namespace {

using util::Fraction;

graph::Hypergraph TriangleHypergraph() {
  graph::Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({0, 2});
  h.AddEdge({1, 2});
  return h;
}

TEST(FhwTest, AcyclicHypergraphHasWidthOne) {
  graph::Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({2, 3});
  auto td = graph::JoinTreeDecomposition(h);
  ASSERT_TRUE(td.has_value());
  auto width = graph::FractionalHypertreeWidthOf(h, *td);
  ASSERT_TRUE(width.has_value());
  EXPECT_EQ(*width, Fraction(1));
  auto best = graph::HeuristicFractionalHypertreeWidth(h);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->width, Fraction(1));
}

TEST(FhwTest, TriangleIsThreeHalves) {
  // The one-bag decomposition of the triangle query has fhw = rho* = 3/2,
  // and no decomposition can beat it (fhw(triangle) = 3/2).
  graph::Hypergraph h = TriangleHypergraph();
  auto best = graph::HeuristicFractionalHypertreeWidth(h);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->width, Fraction(3, 2));
}

TEST(FhwTest, BigEdgeAbsorbsTriangle) {
  // Triangle of binary edges plus a covering ternary edge: alpha-acyclic,
  // fhw = 1 via the join tree.
  graph::Hypergraph h = TriangleHypergraph();
  h.AddEdge({0, 1, 2});
  auto best = graph::HeuristicFractionalHypertreeWidth(h);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->width, Fraction(1));
}

TEST(FhwTest, JoinTreeRejectsCyclic) {
  EXPECT_FALSE(graph::JoinTreeDecomposition(TriangleHypergraph()).has_value());
}

TEST(FhwTest, UncoveredVertexIsInfeasible) {
  graph::Hypergraph h(3);
  h.AddEdge({0, 1});
  EXPECT_FALSE(graph::HeuristicFractionalHypertreeWidth(h).has_value());
}

TEST(FhwTest, FhwNeverExceedsTreewidthPlusOneOnBinaryHypergraphs) {
  // For a graph (binary hyperedges), any bag of size s needs >= s/2 weight,
  // and the treewidth decomposition gives fhw <= (tw+1)... just check fhw
  // is sane: 1 <= fhw <= #edges on random covering hypergraphs.
  util::Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    graph::Hypergraph h = graph::RandomUniformHypergraph(7, 3, 0.4, &rng);
    if (!h.CoversAllVertices() || h.num_edges() == 0) continue;
    auto best = graph::HeuristicFractionalHypertreeWidth(h);
    ASSERT_TRUE(best.has_value());
    EXPECT_GE(best->width, Fraction(1));
    EXPECT_LE(best->width, Fraction(h.num_edges()));
    // And the decomposition is a real tree decomposition.
    EXPECT_EQ(best->decomposition.Validate(h.PrimalGraph()), std::nullopt);
  }
}

TEST(BranchAndBoundTreewidthTest, MatchesSubsetDpOnKnownGraphs) {
  EXPECT_EQ(graph::BranchAndBoundTreewidth(graph::Path(8)), 1);
  EXPECT_EQ(graph::BranchAndBoundTreewidth(graph::Cycle(8)), 2);
  EXPECT_EQ(graph::BranchAndBoundTreewidth(graph::Complete(6)), 5);
  EXPECT_EQ(graph::BranchAndBoundTreewidth(graph::Grid(3, 3)), 3);
  EXPECT_EQ(graph::BranchAndBoundTreewidth(graph::Graph(0)), -1);
  EXPECT_EQ(graph::BranchAndBoundTreewidth(graph::Graph(3)), 0);
}

class BbTreewidthRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BbTreewidthRandomTest, AgreesWithExactDp) {
  util::Rng rng(6000 + GetParam());
  double p = 0.15 + 0.05 * (GetParam() % 5);
  graph::Graph g = graph::RandomGnp(12, p, &rng);
  EXPECT_EQ(graph::BranchAndBoundTreewidth(g),
            graph::ExactTreewidth(g).treewidth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BbTreewidthRandomTest, ::testing::Range(0, 15));

TEST(BranchAndBoundTreewidthTest, LargerPartialKTree) {
  util::Rng rng(2);
  graph::Graph g = graph::RandomPartialKTree(30, 3, 0.75, &rng);
  int bb = graph::BranchAndBoundTreewidth(g);
  EXPECT_LE(bb, 3);
  EXPECT_GE(bb, graph::TreewidthLowerBound(g));
}

TEST(ModelCountingTest, SmallFormulas) {
  sat::CnfFormula f;
  f.num_vars = 3;
  // Empty formula: all 8 assignments.
  EXPECT_EQ(sat::CountModels(f), 8u);
  f.AddClause({1, 2});
  // (x1 or x2): 3 of 4 assignments, times 2 for x3.
  EXPECT_EQ(sat::CountModels(f), 6u);
  f.AddClause({-1});
  // x1 = 0 and x2 = 1: 1 * 2.
  EXPECT_EQ(sat::CountModels(f), 2u);
  f.AddClause({-2});
  EXPECT_EQ(sat::CountModels(f), 0u);
}

TEST(ModelCountingTest, FreedVariablesCounted) {
  // (x1 or x2) and (x1): x1 forced true frees x2 -> 2 models.
  sat::CnfFormula f;
  f.num_vars = 2;
  f.AddClause({1, 2});
  f.AddClause({1});
  EXPECT_EQ(sat::CountModels(f), 2u);
}

TEST(ModelCountingTest, ComponentsMultiply) {
  // Two independent (x or y) components: 3 * 3 models.
  sat::CnfFormula f;
  f.num_vars = 4;
  f.AddClause({1, 2});
  f.AddClause({3, 4});
  EXPECT_EQ(sat::CountModels(f), 9u);
}

class ModelCountAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelCountAgreementTest, MatchesEnumeration) {
  util::Rng rng(6100 + GetParam());
  int n = 5 + GetParam() % 6;
  int m = static_cast<int>(rng.NextBounded(4 * n));
  sat::CnfFormula f = sat::RandomKSat(n, m, 3, &rng);
  std::uint64_t expected = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<bool> a(n);
    for (int v = 0; v < n; ++v) a[v] = (mask >> v) & 1u;
    if (f.Evaluate(a)) ++expected;
  }
  EXPECT_EQ(sat::CountModels(f), expected)
      << "n=" << n << " m=" << m << " seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelCountAgreementTest,
                         ::testing::Range(0, 25));

TEST(SubgraphIsomorphismTest, CliquePatternMatchesCliqueSearch) {
  util::Rng rng(3);
  graph::Graph g = graph::RandomGnp(14, 0.5, &rng);
  for (int k = 3; k <= 5; ++k) {
    auto iso = graph::FindSubgraphIsomorphism(graph::Complete(k), g);
    EXPECT_EQ(iso.has_value(),
              graph::FindKCliqueBruteForce(g, k).has_value());
    if (iso) {
      std::vector<int> img = *iso;
      EXPECT_TRUE(graph::IsClique(g, img));
    }
  }
}

TEST(SubgraphIsomorphismTest, InducedVsNonInduced) {
  // P_3 embeds in K_3 as a (non-induced) subgraph but not as an induced
  // one (K_3 has no induced path on 3 vertices).
  graph::Graph p3 = graph::Path(3);
  graph::Graph k3 = graph::Complete(3);
  EXPECT_TRUE(graph::FindSubgraphIsomorphism(p3, k3, false).has_value());
  EXPECT_FALSE(graph::FindSubgraphIsomorphism(p3, k3, true).has_value());
  // Both work into C_5.
  graph::Graph c5 = graph::Cycle(5);
  EXPECT_TRUE(graph::FindSubgraphIsomorphism(p3, c5, false).has_value());
  EXPECT_TRUE(graph::FindSubgraphIsomorphism(p3, c5, true).has_value());
}

TEST(SubgraphIsomorphismTest, PatternLargerThanHostFails) {
  EXPECT_FALSE(
      graph::FindSubgraphIsomorphism(graph::Path(5), graph::Path(4))
          .has_value());
}

TEST(SubgraphIsomorphismTest, MappingIsInjectiveAndEdgePreserving) {
  util::Rng rng(4);
  graph::Graph h = graph::Cycle(4);
  graph::Graph g = graph::RandomGnp(10, 0.5, &rng);
  auto iso = graph::FindSubgraphIsomorphism(h, g);
  if (iso) {
    std::vector<int> img = *iso;
    std::sort(img.begin(), img.end());
    EXPECT_EQ(std::unique(img.begin(), img.end()), img.end());
    for (auto [u, v] : h.Edges()) {
      EXPECT_TRUE(g.HasEdge((*iso)[u], (*iso)[v]));
    }
  }
}

}  // namespace
}  // namespace qc
