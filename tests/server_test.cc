// qc_serverd's engine: admission control, the socket-free HandleRequest
// pipeline (admission → snapshot → execute → stream), and the loopback TCP
// front end with the blocking Client. Suite names match the tsan preset
// filter (Admission*/ServerConcurrency*).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/wire.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/server.h"
#include "util/fault.h"

namespace qc {
namespace {

using server::AdmissionController;
using server::AdmissionOptions;

// --- AdmissionController ------------------------------------------------

TEST(AdmissionTest, AdmitsUpToMaxConcurrent) {
  AdmissionOptions opts;
  opts.max_concurrent = 2;
  opts.queue_capacity = 0;  // No queue: reject on saturation.
  AdmissionController ctl(opts);

  auto d1 = ctl.Admit();
  auto d2 = ctl.Admit();
  EXPECT_EQ(d1.outcome, AdmissionController::Outcome::kAdmitted);
  EXPECT_EQ(d2.outcome, AdmissionController::Outcome::kAdmitted);
  auto d3 = ctl.Admit();
  EXPECT_EQ(d3.outcome, AdmissionController::Outcome::kRejectedSaturated);
  EXPECT_EQ(d3.running, 2);

  ctl.Release();
  EXPECT_EQ(ctl.Admit().outcome, AdmissionController::Outcome::kAdmitted);
  ctl.Release();
  ctl.Release();
  server::AdmissionStats s = ctl.stats();
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.running, 0);
}

TEST(AdmissionTest, QueuedWaiterGetsTheFreedSlot) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.queue_capacity = 4;
  AdmissionController ctl(opts);
  ASSERT_EQ(ctl.Admit().outcome, AdmissionController::Outcome::kAdmitted);

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto d = ctl.Admit();
    EXPECT_EQ(d.outcome, AdmissionController::Outcome::kAdmitted);
    admitted.store(true);
    ctl.Release();
  });
  // The waiter is queued, not admitted, until the slot frees.
  while (ctl.stats().queued == 0 && !admitted.load()) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(admitted.load());
  ctl.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_GE(ctl.stats().max_queued, 1u);
}

TEST(AdmissionTest, QueueTimeoutReturnsStructuredOutcome) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.queue_capacity = 4;
  opts.queue_timeout_ms = 30;
  AdmissionController ctl(opts);
  ASSERT_EQ(ctl.Admit().outcome, AdmissionController::Outcome::kAdmitted);
  auto d = ctl.Admit();  // Queues, then gives up.
  EXPECT_EQ(d.outcome, AdmissionController::Outcome::kTimedOut);
  EXPECT_GE(d.queue_ms, 0.0);
  EXPECT_EQ(ctl.stats().timed_out, 1u);
  ctl.Release();
}

TEST(AdmissionTest, CloseWakesWaitersWithClosed) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.queue_capacity = 4;
  AdmissionController ctl(opts);
  ASSERT_EQ(ctl.Admit().outcome, AdmissionController::Outcome::kAdmitted);
  std::thread waiter([&] {
    EXPECT_EQ(ctl.Admit().outcome, AdmissionController::Outcome::kClosed);
  });
  while (ctl.stats().queued == 0) std::this_thread::yield();
  ctl.Close();
  waiter.join();
  EXPECT_EQ(ctl.Admit().outcome, AdmissionController::Outcome::kClosed);
}

// --- HandleRequest: the whole pipeline, no sockets ----------------------

// Dense enough that the triangle query below returns 6 rows — multiple
// batch frames at batch_rows = 2.
constexpr char kTriangleDataset[] =
    "relation R1:\n0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n2 1\n"
    "relation R2:\n0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n2 1\n"
    "relation R3:\n0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n2 1\n";
constexpr char kTriangleQuery[] = "R1(a,b), R2(a,c), R3(b,c)";

server::ServerOptions SmallServerOptions() {
  server::ServerOptions options;
  options.session.index_cache_mb = 4;
  options.batch_rows = 2;  // Force multiple batch frames.
  return options;
}

std::map<std::string, int> CountKinds(const std::vector<api::Frame>& frames) {
  std::map<std::string, int> kinds;
  for (const api::Frame& f : frames) kinds[f.kind]++;
  return kinds;
}

TEST(ServerPipelineTest, QueryStreamsHdrBatchesReportEnd) {
  server::QueryServer server(SmallServerOptions());
  api::Frame mutate;
  mutate.kind = "mutate";
  mutate.Add("id", "1");
  mutate.body = kTriangleDataset;
  std::vector<api::Frame> replies = server.HandleRequest(mutate);
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].kind, "end");
  EXPECT_EQ(replies[0].FindUint("applied", 0), 21u);

  api::Frame query;
  query.kind = "query";
  query.Add("id", "2").Add("want_analysis", "1");
  query.body = kTriangleQuery;
  replies = server.HandleRequest(query);
  auto kinds = CountKinds(replies);
  EXPECT_EQ(kinds["hdr"], 1);
  EXPECT_EQ(kinds["report"], 1);
  EXPECT_EQ(kinds["end"], 1);
  // The dataset has 6 result rows; batch_rows = 2 gives 3 batches.
  EXPECT_EQ(kinds["batch"], 3);
  ASSERT_EQ(replies.front().kind, "hdr");
  const api::Frame& hdr = replies.front();
  EXPECT_EQ(*hdr.Find("status"), "completed");
  EXPECT_EQ(hdr.FindUint("rows", 0), 6u);
  EXPECT_FALSE(hdr.body.empty());  // want_analysis text rides in the hdr.
  ASSERT_EQ(replies.back().kind, "end");
  EXPECT_EQ(replies.back().FindUint("code", 99), 0u);

  // The per-request report is branded and carries the server section.
  const api::Frame* report = nullptr;
  for (const api::Frame& f : replies) {
    if (f.kind == "report") report = &f;
  }
  ASSERT_NE(report, nullptr);
  EXPECT_NE(report->body.find("\"tool\": \"qc_serverd\""), std::string::npos);
  EXPECT_NE(report->body.find("\"server\":"), std::string::npos);
  EXPECT_NE(report->body.find("\"request_id\": 2"), std::string::npos);
  EXPECT_NE(report->body.find("\"snapshot_epoch\":"), std::string::npos);
}

TEST(ServerPipelineTest, PerRequestBudgetTruncates) {
  server::QueryServer server(SmallServerOptions());
  api::Frame mutate;
  mutate.kind = "mutate";
  mutate.body = kTriangleDataset;
  server.HandleRequest(mutate);

  api::Frame query;
  query.kind = "query";
  query.Add("id", "3").Add("max_rows", "1");
  query.body = kTriangleQuery;
  std::vector<api::Frame> replies = server.HandleRequest(query);
  ASSERT_EQ(replies.front().kind, "hdr");
  EXPECT_EQ(*replies.front().Find("status"), "budget-exhausted");
  EXPECT_EQ(*replies.front().Find("truncated"), "1");
  EXPECT_EQ(replies.back().FindUint("code", 0), 5u);
}

TEST(ServerPipelineTest, AdmissionRejectionIsStructured) {
  server::ServerOptions options = SmallServerOptions();
  options.admission.max_concurrent = 0;  // Reject everything.
  options.admission.queue_capacity = 0;
  server::QueryServer server(options);
  api::Frame query;
  query.kind = "query";
  query.Add("id", "4");
  query.body = kTriangleQuery;
  std::vector<api::Frame> replies = server.HandleRequest(query);
  ASSERT_EQ(replies.size(), 1u);
  const api::Frame& err = replies[0];
  EXPECT_EQ(err.kind, "error");
  EXPECT_EQ(err.FindUint("code", 0),
            static_cast<std::uint64_t>(server::kAdmissionRejectedCode));
  EXPECT_EQ(*err.Find("reason"), "admission-rejected");
  ASSERT_NE(err.Find("running"), nullptr);
  ASSERT_NE(err.Find("queue_depth"), nullptr);
  EXPECT_EQ(server.stats().admission.rejected, 1u);
}

TEST(ServerPipelineTest, InputAndProtocolErrors) {
  server::QueryServer server(SmallServerOptions());
  api::Frame query;
  query.kind = "query";
  query.Add("id", "5");
  query.body = "Missing(a,b)";
  std::vector<api::Frame> replies = server.HandleRequest(query);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].kind, "error");
  EXPECT_EQ(replies[0].FindUint("code", 0), 1u);

  query.fields.clear();
  query.Add("id", "6").Add("report_json", "/tmp/forbidden.json");
  replies = server.HandleRequest(query);
  EXPECT_EQ(replies[0].kind, "error");
  EXPECT_EQ(replies[0].FindUint("code", 0), 2u);  // Unknown request field.

  api::Frame bogus;
  bogus.kind = "dance";
  replies = server.HandleRequest(bogus);
  EXPECT_EQ(replies[0].kind, "error");
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

TEST(ServerPipelineTest, MutateAbortVsContinue) {
  server::QueryServer server(SmallServerOptions());
  api::Frame bad;
  bad.kind = "mutate";
  bad.Add("id", "7");
  bad.body = "relation R:\n1 2\n1 2 3\n";
  std::vector<api::Frame> replies = server.HandleRequest(bad);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].kind, "error");
  EXPECT_EQ(replies[0].FindUint("code", 0), 1u);
  EXPECT_NE(replies[0].body.find("line 3"), std::string::npos);
  const std::uint64_t epoch_after_reject =
      server.database().Epoch();

  bad.Add("on_input_error", "continue");
  replies = server.HandleRequest(bad);
  ASSERT_EQ(replies[0].kind, "end");
  EXPECT_EQ(replies[0].FindUint("applied", 0), 1u);
  EXPECT_EQ(replies[0].FindUint("skipped", 0), 1u);
  EXPECT_GT(server.database().Epoch(), epoch_after_reject);
}

// --- Snapshot isolation through the full pipeline: 8 concurrent client
// threads issue queries while a writer streams appends; every reply must
// be internally consistent with its pinned snapshot_epoch.
TEST(ServerConcurrencyTest, ConcurrentQueriesSeeConsistentSnapshots) {
  server::ServerOptions options;
  options.session.index_cache_mb = 8;
  options.admission.max_concurrent = 16;
  server::QueryServer server(options);
  // R starts empty; the writer appends k-th tuple {k}; a query counts R.
  ASSERT_TRUE(server.database().SetRelation("R", 1, {}));
  const std::uint64_t base_epoch = server.database().Epoch();

  constexpr int kWrites = 200;
  constexpr int kReaders = 8;
  std::atomic<bool> writer_done{false};
  std::atomic<int> mismatches{0};

  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      api::Frame mutate;
      mutate.kind = "mutate";
      mutate.body = "relation R:\n" + std::to_string(i) + "\n";
      std::vector<api::Frame> replies = server.HandleRequest(mutate);
      ASSERT_EQ(replies[0].kind, "end");
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      do {
        api::Frame query;
        query.kind = "query";
        query.Add("id", "1");
        query.body = "R(a)";
        std::vector<api::Frame> replies = server.HandleRequest(query);
        if (replies.front().kind != "hdr") {
          mismatches.fetch_add(1);
          continue;
        }
        const api::Frame& hdr = replies.front();
        const std::uint64_t epoch = hdr.FindUint("epoch", 0);
        const std::uint64_t rows = hdr.FindUint("rows", 9999);
        // Epoch base_epoch + k pins exactly k appended tuples: the count a
        // serial run at that version would produce.
        if (rows != epoch - base_epoch) mismatches.fetch_add(1);
        // The streamed batches must agree with the header.
        std::size_t streamed = 0;
        for (const api::Frame& f : replies) {
          if (f.kind == "batch") streamed += f.FindUint("rows", 0);
        }
        if (streamed != rows) mismatches.fetch_add(1);
      } while (!writer_done.load());
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.database().Epoch(),
            base_epoch + static_cast<std::uint64_t>(kWrites));
}

// --- Socket end-to-end --------------------------------------------------

TEST(ServerSocketTest, ClientRoundtripOverTcp) {
  server::ServerOptions options = SmallServerOptions();
  server::QueryServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  server::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  EXPECT_TRUE(client.Ping(&error)) << error;

  server::MutateReply m = client.Mutate(kTriangleDataset);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_FALSE(m.rejected);
  EXPECT_EQ(m.applied, 21u);

  server::QueryReply q = client.Query(
      kTriangleQuery, {{"want_analysis", "1"}, {"deadline_ms", "60000"}});
  ASSERT_TRUE(q.ok) << q.error;
  EXPECT_FALSE(q.rejected);
  EXPECT_EQ(q.code, 0);
  EXPECT_EQ(q.status, "completed");
  EXPECT_EQ(q.rows, 6u);
  EXPECT_EQ(q.attributes, (std::vector<std::string>{"a", "b", "c"}));
  // Six rows of "a b c\n" text.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(q.row_text.begin(), q.row_text.end(), '\n')),
            q.rows);
  EXPECT_NE(q.report_json.find("\"tool\": \"qc_serverd\""), std::string::npos);
  EXPECT_FALSE(q.analysis_text.empty());

  std::string stats_json;
  ASSERT_TRUE(client.Stats(&stats_json, &error)) << error;
  EXPECT_NE(stats_json.find("\"queries\": 1"), std::string::npos);

  server.Stop();
}

TEST(ServerSocketTest, ShutdownFrameStopsTheListener) {
  server::QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  server::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  ASSERT_TRUE(client.Shutdown(&error)) << error;
  server.Wait();  // Returns because the shutdown frame closed the listener.
  EXPECT_TRUE(server.shutdown_requested());
  server.Stop();

  // New connections are refused after shutdown.
  server::Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server.port(), &error));
}

// Client always frames correctly; the server must survive peers that do
// not — a raw socket spews garbage and must get a structured error frame
// back, not a hang or a crash.
TEST(ServerSocketTest, GarbageBytesGetProtocolError) {
  server::QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, 0), 0);

  // The server answers with one error frame, then closes the connection.
  api::FrameParser parser;
  api::Frame frame;
  std::string parse_error;
  char buf[4096];
  bool got_error_frame = false;
  while (true) {
    if (parser.Next(&frame, &parse_error) ==
        api::FrameParser::Result::kFrame) {
      got_error_frame = frame.kind == "error";
      break;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    parser.Feed(buf, static_cast<std::size_t>(n));
  }
  EXPECT_TRUE(got_error_frame);
  ::close(fd);
  server.Stop();
  EXPECT_GE(server.stats().protocol_errors, 1u);
}

// --- FrameParser malformed-frame corpus ---------------------------------
//
// The parser fronts an untrusted TCP peer: every way a header can be
// damaged must end in kNeedMore (incomplete) or a terminal kError — never
// a crash, never a silently misframed body.

TEST(FrameParserCorpusTest, TruncatedHeaderIsNeedMoreUntilComplete) {
  api::FrameParser parser;
  api::Frame frame;
  std::string error;
  parser.Feed("qcp que");  // Header cut mid-kind.
  EXPECT_EQ(parser.Next(&frame, &error), api::FrameParser::Result::kNeedMore);
  parser.Feed("ry 2\nid 1\n.");  // Still no terminating newline.
  EXPECT_EQ(parser.Next(&frame, &error), api::FrameParser::Result::kNeedMore);
  parser.Feed("\nok");
  ASSERT_EQ(parser.Next(&frame, &error), api::FrameParser::Result::kFrame);
  EXPECT_EQ(frame.kind, "query");
  EXPECT_EQ(frame.body, "ok");
}

TEST(FrameParserCorpusTest, MalformedHeadersPoisonTheParser) {
  const char* corpus[] = {
      "nope query 0\n",       // Wrong protocol token.
      "qcp\n",                // Missing kind and length.
      "qcp query\n",          // Missing length.
      "qcp query xyz\n",      // Non-numeric length.
      "qcp query 5 extra\n",  // Trailing token.
  };
  for (const char* bad : corpus) {
    api::FrameParser parser;
    api::Frame frame;
    std::string error;
    parser.Feed(bad);
    EXPECT_EQ(parser.Next(&frame, &error), api::FrameParser::Result::kError)
        << bad;
    // Poisoned: even a perfectly valid frame after the damage is refused,
    // because resync inside a length-prefixed stream is guesswork.
    parser.Feed("qcp ping 0\n.\n");
    EXPECT_EQ(parser.Next(&frame, &error), api::FrameParser::Result::kError)
        << bad;
  }
}

TEST(FrameParserCorpusTest, OversizedBodyLengthIsRejected) {
  api::FrameParser parser;
  api::Frame frame;
  std::string error;
  const std::string huge =
      std::to_string(api::FrameParser::kMaxBodyBytes + 1);
  parser.Feed("qcp mutate " + huge + "\n.\n");
  EXPECT_EQ(parser.Next(&frame, &error), api::FrameParser::Result::kError);
  EXPECT_FALSE(error.empty());
}

TEST(FrameParserCorpusTest, OversizedHeaderLineIsRejected) {
  api::FrameParser parser;
  api::Frame frame;
  std::string error;
  // One header line longer than the cap, never terminated: the parser must
  // reject rather than buffer unboundedly.
  parser.Feed("qcp query 0\n");
  parser.Feed(std::string(api::FrameParser::kMaxHeaderLine + 2, 'k'));
  EXPECT_EQ(parser.Next(&frame, &error), api::FrameParser::Result::kError);
}

TEST(FrameParserCorpusTest, MidFrameEofLeavesPartialFrameUnconsumed) {
  api::FrameParser parser;
  api::Frame frame;
  std::string error;
  parser.Feed("qcp mutate 100\nid 9\n.\npartial body then EOF");
  // The body promises 100 bytes and the connection died early: the frame
  // must never surface. (EOF itself is the transport's signal; the client
  // resets its parser on reconnect — see Client::Connect.)
  EXPECT_EQ(parser.Next(&frame, &error), api::FrameParser::Result::kNeedMore);
  EXPECT_EQ(parser.Next(&frame, &error), api::FrameParser::Result::kNeedMore);
}

TEST(FrameParserCorpusTest, DuplicatedEndOfFieldsMarkerBreaksFraming) {
  api::FrameParser parser;
  api::Frame frame;
  std::string error;
  // First frame is fine; the stray extra ".\n" then reads as the next
  // frame's header line, which is malformed → terminal error.
  parser.Feed("qcp end 0\n.\n.\nqcp ping 0\n.\n");
  ASSERT_EQ(parser.Next(&frame, &error), api::FrameParser::Result::kFrame);
  EXPECT_EQ(frame.kind, "end");
  EXPECT_EQ(parser.Next(&frame, &error), api::FrameParser::Result::kError);
}

TEST(FrameParserCorpusTest, TooManyFieldsRejected) {
  api::FrameParser parser;
  api::Frame frame;
  std::string error;
  std::string msg = "qcp query 0\n";
  for (std::size_t i = 0; i < api::FrameParser::kMaxFields + 1; ++i) {
    msg += "k v\n";
  }
  msg += ".\n";
  parser.Feed(msg);
  EXPECT_EQ(parser.Next(&frame, &error), api::FrameParser::Result::kError);
}

// --- Durability, degradation, and recovery through the pipeline ---------

class WalServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string templ = ::testing::TempDir() + "qc_srv_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    dir_ = ::mkdtemp(buf.data());
  }
  void TearDown() override {
    util::FaultRegistry::Global().Clear();
    util::FaultRegistry::Global().ResetStats();
    std::remove((dir_ + "/wal.log").c_str());
    std::remove((dir_ + "/snapshot.dat").c_str());
    std::remove((dir_ + "/snapshot.tmp").c_str());
    ::rmdir(dir_.c_str());
  }

  server::ServerOptions WalOptions() {
    server::ServerOptions options = SmallServerOptions();
    options.wal.dir = dir_;
    options.wal.fsync = db::FsyncPolicy::kOff;  // Tests tear down cleanly.
    return options;
  }

  static std::vector<api::Frame> Mutate(server::QueryServer& server,
                                        const std::string& body,
                                        std::uint64_t request_id = 0) {
    api::Frame f;
    f.kind = "mutate";
    f.Add("id", "1");
    if (request_id != 0) f.Add("request_id", std::to_string(request_id));
    f.body = body;
    return server.HandleRequest(f);
  }

  static std::vector<api::Frame> Query(server::QueryServer& server,
                                       const std::string& text) {
    api::Frame f;
    f.kind = "query";
    f.Add("id", "2");
    f.body = text;
    return server.HandleRequest(f);
  }

  std::string dir_;
};

TEST_F(WalServerTest, MutationsSurviveRestart) {
  {
    server::QueryServer server(WalOptions());
    std::string error;
    ASSERT_TRUE(server.Recover(&error)) << error;
    EXPECT_TRUE(server.stats().wal_enabled);
    std::vector<api::Frame> r = Mutate(server, kTriangleDataset);
    ASSERT_EQ(r[0].kind, "end");
    EXPECT_EQ(r[0].FindUint("applied", 0), 21u);
    EXPECT_GE(server.stats().wal.records_appended, 1u);
  }
  server::QueryServer reborn(WalOptions());
  std::string error;
  ASSERT_TRUE(reborn.Recover(&error)) << error;
  EXPECT_EQ(reborn.recovery().log_records, 1u);
  std::vector<api::Frame> r = Query(reborn, kTriangleQuery);
  ASSERT_EQ(r.front().kind, "hdr");
  EXPECT_EQ(r.front().FindUint("rows", 0), 6u);
}

TEST_F(WalServerTest, RequestIdDedupWithinRunAndAcrossRestart) {
  const char kAppend[] = "relation R1:\n9 9\n";
  {
    server::QueryServer server(WalOptions());
    std::string error;
    ASSERT_TRUE(server.Recover(&error)) << error;
    Mutate(server, kTriangleDataset, 500);
    std::vector<api::Frame> first = Mutate(server, kAppend, 501);
    ASSERT_EQ(first[0].kind, "end");
    EXPECT_EQ(first[0].FindUint("applied", 0), 1u);
    EXPECT_EQ(first[0].FindUint("deduped", 0), 0u);
    // A retry of the same request id must ack without re-applying.
    std::vector<api::Frame> retry = Mutate(server, kAppend, 501);
    ASSERT_EQ(retry[0].kind, "end");
    EXPECT_EQ(retry[0].FindUint("deduped", 0), 1u);
    EXPECT_EQ(retry[0].FindUint("applied", 9), 0u);
    EXPECT_EQ(server.stats().mutations_deduped, 1u);
    std::vector<api::Frame> q = Query(server, "R1(a,b)");
    EXPECT_EQ(q.front().FindUint("rows", 0), 8u);  // 7 + 1, not + 2.
  }
  // The dedup window is WAL-recovered: a post-crash retry still dedups.
  server::QueryServer reborn(WalOptions());
  std::string error;
  ASSERT_TRUE(reborn.Recover(&error)) << error;
  std::vector<api::Frame> retry = Mutate(reborn, kAppend, 501);
  ASSERT_EQ(retry[0].kind, "end");
  EXPECT_EQ(retry[0].FindUint("deduped", 0), 1u);
  std::vector<api::Frame> q = Query(reborn, "R1(a,b)");
  EXPECT_EQ(q.front().FindUint("rows", 0), 8u);
}

TEST_F(WalServerTest, ConcurrentSameRequestIdAppliesExactlyOnce) {
  server::QueryServer server(WalOptions());
  std::string error;
  ASSERT_TRUE(server.Recover(&error)) << error;
  Mutate(server, "relation R1:\n1 1\n", 700);

  // The seen-check and remember run under the MVCC writer lock: racing
  // mutations that share a request id must resolve to exactly one apply,
  // never two (check-then-act outside the lock would let both through).
  constexpr int kThreads = 8;
  std::atomic<int> applied{0};
  std::atomic<int> deduped{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      std::vector<api::Frame> r = Mutate(server, "relation R1:\n2 2\n", 701);
      if (r.empty() || r[0].kind != "end") {
        ++other;
      } else if (r[0].FindUint("deduped", 0) == 1u) {
        ++deduped;
      } else {
        applied += static_cast<int>(r[0].FindUint("applied", 0));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(applied.load(), 1);
  EXPECT_EQ(deduped.load(), kThreads - 1);
  EXPECT_EQ(server.stats().mutations_deduped,
            static_cast<std::uint64_t>(kThreads - 1));
  std::vector<api::Frame> q = Query(server, "R1(a,b)");
  EXPECT_EQ(q.front().FindUint("rows", 0), 2u);
}

TEST_F(WalServerTest, DrainingRejectsNewWorkRetryably) {
  server::QueryServer server(SmallServerOptions());
  Mutate(server, kTriangleDataset);
  server.Drain();
  EXPECT_TRUE(server.draining());

  std::vector<api::Frame> r = Query(server, kTriangleQuery);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].kind, "error");
  EXPECT_EQ(r[0].FindUint("code", 0), 6u);
  EXPECT_EQ(*r[0].Find("reason"), "server-draining");
  EXPECT_EQ(r[0].FindUint("retryable", 0), 1u);

  r = Mutate(server, kTriangleDataset);
  EXPECT_EQ(r[0].kind, "error");
  EXPECT_EQ(r[0].FindUint("code", 0), 6u);
  EXPECT_EQ(server.stats().drain_rejects, 2u);

  // health and stats still answer while draining.
  api::Frame health;
  health.kind = "health";
  std::vector<api::Frame> h = server.HandleRequest(health);
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0].kind, "health-reply");
  EXPECT_EQ(*h[0].Find("status"), "draining");
}

TEST_F(WalServerTest, HealthFrameReportsServingAndDurability) {
  server::QueryServer server(WalOptions());
  std::string error;
  ASSERT_TRUE(server.Recover(&error)) << error;
  api::Frame health;
  health.kind = "health";
  health.Add("id", "42");
  std::vector<api::Frame> h = server.HandleRequest(health);
  ASSERT_EQ(h.size(), 1u);
  ASSERT_EQ(h[0].kind, "health-reply");
  EXPECT_EQ(*h[0].Find("status"), "serving");
  EXPECT_EQ(h[0].FindUint("wal", 0), 1u);
  ASSERT_NE(h[0].Find("epoch"), nullptr);
}

TEST_F(WalServerTest, QueueDeadlineShedsWithStructuredError) {
  server::ServerOptions options = SmallServerOptions();
  options.admission.max_concurrent = 1;
  options.admission.queue_capacity = 4;
  server::QueryServer server(options);
  // 1024 tuples per relation → a 32768-row triangle result streamed at
  // batch_rows=2: each slow query holds the single executor slot for many
  // milliseconds, so a request that queued behind it with deadline_ms=1 is
  // stale by the time it admits.
  std::string dataset;
  for (const char* rel : {"R1", "R2", "R3"}) {
    dataset += std::string("relation ") + rel + ":\n";
    for (int a = 0; a < 32; ++a) {
      for (int b = 0; b < 32; ++b) {
        dataset += std::to_string(a) + " " + std::to_string(b) + "\n";
      }
    }
  }
  Mutate(server, dataset);

  std::atomic<bool> shed_seen{false};
  std::atomic<bool> slow_done{false};
  std::thread slow([&] {
    for (int i = 0; i < 200 && !shed_seen.load(); ++i) {
      Query(server, kTriangleQuery);
    }
    slow_done.store(true);
  });
  std::thread victim([&] {
    while (!shed_seen.load() && !slow_done.load()) {
      // Only bother once the slow query actually holds the slot, so the
      // victim lands in the queue rather than admitting instantly.
      if (server.stats().admission.running == 0) {
        std::this_thread::yield();
        continue;
      }
      api::Frame f;
      f.kind = "query";
      f.Add("id", "9").Add("deadline_ms", "1");
      f.body = kTriangleQuery;
      std::vector<api::Frame> r = server.HandleRequest(f);
      if (r.size() == 1 && r[0].kind == "error" &&
          r[0].Find("reason") != nullptr &&
          *r[0].Find("reason") == "shed-queue-deadline") {
        EXPECT_EQ(r[0].FindUint("code", 0), 4u);
        EXPECT_EQ(r[0].FindUint("retryable", 0), 1u);
        ASSERT_NE(r[0].Find("queue_ms"), nullptr);
        shed_seen.store(true);
      }
    }
  });
  slow.join();
  victim.join();
  EXPECT_TRUE(shed_seen.load());
  EXPECT_GE(server.stats().queue_sheds, 1u);
}

TEST_F(WalServerTest, AllocationFaultBecomesStructuredInternalError) {
  server::QueryServer server(SmallServerOptions());
  Mutate(server, kTriangleDataset);
  std::string cfg_error;
  ASSERT_TRUE(util::FaultRegistry::Global().Configure("arena.alloc:after=0",
                                                      1, &cfg_error))
      << cfg_error;
  std::vector<api::Frame> r = Query(server, kTriangleQuery);
  util::FaultRegistry::Global().Clear();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].kind, "error");
  EXPECT_EQ(r[0].FindUint("code", 0), 7u);
  EXPECT_EQ(*r[0].Find("reason"), "internal");
  EXPECT_EQ(r[0].FindUint("retryable", 0), 1u);
  // The fault is contained: the same query succeeds once faults clear.
  r = Query(server, kTriangleQuery);
  ASSERT_EQ(r.front().kind, "hdr");
  EXPECT_EQ(r.front().FindUint("rows", 0), 6u);
}

TEST_F(WalServerTest, WalAppendFaultRejectsMutationWithoutStateChange) {
  server::QueryServer server(WalOptions());
  std::string error;
  ASSERT_TRUE(server.Recover(&error)) << error;
  Mutate(server, kTriangleDataset);
  const std::uint64_t epoch = server.database().Epoch();

  std::string cfg_error;
  ASSERT_TRUE(util::FaultRegistry::Global().Configure("wal.write:once=1", 1,
                                                      &cfg_error))
      << cfg_error;
  std::vector<api::Frame> r = Mutate(server, "relation R1:\n5 5\n");
  util::FaultRegistry::Global().Clear();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].kind, "error");
  EXPECT_EQ(r[0].FindUint("code", 0), 7u);
  EXPECT_EQ(r[0].FindUint("retryable", 0), 1u);
  EXPECT_EQ(server.database().Epoch(), epoch);  // Nothing was applied.
  std::vector<api::Frame> q = Query(server, "R1(a,b)");
  EXPECT_EQ(q.front().FindUint("rows", 0), 7u);
}

// --- Socket-level retry, dedup, and restart recovery --------------------

TEST(ServerSocketTest, ClientRetriesRetryableRejections) {
  server::ServerOptions options = SmallServerOptions();
  options.admission.max_concurrent = 0;  // Everything rejected (code 8).
  options.admission.queue_capacity = 0;
  server::QueryServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  server::Client client;
  server::RetryOptions retry;
  retry.max_retries = 2;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 4;
  client.set_retry(retry);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;

  server::QueryReply q = client.Query(kTriangleQuery);
  ASSERT_TRUE(q.ok) << q.error;
  EXPECT_TRUE(q.rejected);
  EXPECT_TRUE(q.retryable);
  EXPECT_EQ(q.code, server::kAdmissionRejectedCode);
  EXPECT_EQ(q.attempts, 3);  // Initial try + max_retries.
  EXPECT_GE(server.stats().admission.rejected, 3u);
  server.Stop();
}

TEST(ServerSocketTest, MutationRetryWithRequestIdNeverDoubleApplies) {
  server::QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  server::Client client;
  server::RetryOptions retry;
  retry.max_retries = 3;
  retry.base_backoff_ms = 1;
  client.set_retry(retry);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  ASSERT_TRUE(client.Mutate("relation R:\n1\n").ok);

  // Simulate "applied but ack lost": apply once, then retry the same
  // request id from a fresh connection (as a reconnecting client would).
  server::MutateReply first = client.Mutate("relation R:\n2\n", "", 9001);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.applied, 1u);
  server::Client again;
  again.set_retry(retry);
  ASSERT_TRUE(again.Connect("127.0.0.1", server.port(), &error)) << error;
  server::MutateReply second = again.Mutate("relation R:\n2\n", "", 9001);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.deduped);
  EXPECT_EQ(second.applied, 0u);

  server::QueryReply q = client.Query("R(x)");
  ASSERT_TRUE(q.ok) << q.error;
  EXPECT_EQ(q.rows, 2u);  // {1}, {2} — the retry did not double-apply.
  server.Stop();
}

TEST(ServerSocketTest, DefaultClientsAutoGenerateDistinctRequestIds) {
  server::QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Two clients with identical (default-seed) retry options: their
  // auto-generated idempotency ids must not collide, or the second
  // client's distinct mutation would be deduped away as already applied.
  server::RetryOptions retry;
  retry.max_retries = 1;
  retry.base_backoff_ms = 1;
  server::Client a;
  server::Client b;
  a.set_retry(retry);
  b.set_retry(retry);
  ASSERT_TRUE(a.Connect("127.0.0.1", server.port(), &error)) << error;
  ASSERT_TRUE(b.Connect("127.0.0.1", server.port(), &error)) << error;

  server::MutateReply ra = a.Mutate("relation R:\n1\n");
  ASSERT_TRUE(ra.ok) << ra.error;
  EXPECT_EQ(ra.applied, 1u);
  server::MutateReply rb = b.Mutate("relation R:\n2\n");
  ASSERT_TRUE(rb.ok) << rb.error;
  EXPECT_NE(ra.request_id, rb.request_id);
  EXPECT_FALSE(rb.deduped);
  EXPECT_EQ(rb.applied, 1u);

  server::QueryReply q = a.Query("R(x)");
  ASSERT_TRUE(q.ok) << q.error;
  EXPECT_EQ(q.rows, 2u);
  server.Stop();
}

TEST(ServerSocketTest, HealthProbeOverTcp) {
  server::QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  server::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  server::HealthReply h = client.Health();
  ASSERT_TRUE(h.ok) << h.error;
  EXPECT_EQ(h.status, "serving");
  EXPECT_FALSE(h.wal);
  server.Stop();
}

// --- Incremental view maintenance through the pipeline ------------------

// Maintained views require alpha-acyclic queries; the triangle query above
// is cyclic by design, so the view tests join the same relations along an
// acyclic chain.
constexpr char kChainQuery[] = "R1(a,b), R2(b,c), R3(c,d)";

static std::vector<api::Frame> RegisterViewFrame(server::QueryServer& server,
                                                 const std::string& name,
                                                 const std::string& kind,
                                                 const std::string& body) {
  api::Frame f;
  f.kind = "view_register";
  f.Add("id", "41").Add("name", name).Add("kind", kind);
  f.body = body;
  return server.HandleRequest(f);
}

static std::vector<api::Frame> ReadViewFrame(server::QueryServer& server,
                                             const std::string& name) {
  api::Frame f;
  f.kind = "view_read";
  f.Add("id", "42").Add("name", name);
  return server.HandleRequest(f);
}

static std::string BatchText(const std::vector<api::Frame>& frames) {
  std::string text;
  for (const api::Frame& f : frames) {
    if (f.kind == "batch") text += f.body;
  }
  return text;
}

// Lex-sorts and dedups row lines: the engine streams rows in evaluation
// order with duplicates, the maintained view stores the normalized
// (sorted, duplicate-free) result — the IVM correctness contract is
// equality after normalization.
static std::string NormalizeRowText(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line += c;
    }
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

TEST(IvmServerTest, ViewRegisterAndReadRoundTrip) {
  server::QueryServer server(SmallServerOptions());
  api::Frame mutate;
  mutate.kind = "mutate";
  mutate.Add("id", "1");
  mutate.body = kTriangleDataset;
  server.HandleRequest(mutate);

  std::vector<api::Frame> reg =
      RegisterViewFrame(server, "chain", "join", kChainQuery);
  ASSERT_EQ(reg.size(), 1u);
  ASSERT_EQ(reg[0].kind, "end") << *reg[0].Find("message");
  EXPECT_EQ(reg[0].FindUint("code", 9), 0u);

  // The maintained rows equal the query's streamed rows (both normalized
  // row text over the canonical attribute order).
  api::Frame query;
  query.kind = "query";
  query.Add("id", "2");
  query.body = kChainQuery;
  std::vector<api::Frame> qr = server.HandleRequest(query);
  std::string query_rows = NormalizeRowText(BatchText(qr));
  std::vector<api::Frame> read = ReadViewFrame(server, "chain");
  ASSERT_EQ(read.front().kind, "hdr");
  EXPECT_EQ(*read.front().Find("method"), "ivm");
  EXPECT_GT(read.front().FindUint("rows", 0), 0u);
  EXPECT_EQ(BatchText(read), query_rows);

  // A mutation flows into the maintained state; the read epoch advances.
  const std::uint64_t epoch_before = read.front().FindUint("epoch", 0);
  query.fields.clear();
  query.Add("id", "12");
  api::Frame append;
  append.kind = "mutate";
  append.Add("id", "3");
  append.body = "relation R1:\n3 0\n";  // No new triangle from this alone.
  server.HandleRequest(append);
  mutate.fields.clear();
  mutate.Add("id", "4");
  server.HandleRequest(mutate);  // Re-append the whole dataset (dups).
  read = ReadViewFrame(server, "chain");
  ASSERT_EQ(read.front().kind, "hdr");
  EXPECT_GT(read.front().FindUint("epoch", 0), epoch_before);
  query_rows = NormalizeRowText(BatchText(server.HandleRequest(query)));
  EXPECT_EQ(BatchText(read), query_rows);

  // Stats and report carry the ivm section.
  server::ServerStats stats = server.stats();
  EXPECT_EQ(stats.ivm.views, 1u);
  EXPECT_EQ(stats.view_registers, 1u);
  EXPECT_EQ(stats.view_reads, 2u);
  EXPECT_NE(server.StatsJson().find("\"ivm\":"), std::string::npos);
  const api::Frame* report = nullptr;
  for (const api::Frame& f : read) {
    if (f.kind == "report") report = &f;
  }
  ASSERT_NE(report, nullptr);
  EXPECT_NE(report->body.find("\"ivm\":"), std::string::npos);
  EXPECT_NE(report->body.find("\"views\": 1"), std::string::npos);
}

TEST(IvmServerTest, ViewErrorsAreStructured) {
  server::QueryServer server(SmallServerOptions());
  api::Frame mutate;
  mutate.kind = "mutate";
  mutate.Add("id", "1");
  mutate.body = kTriangleDataset;
  server.HandleRequest(mutate);

  // Unknown view.
  std::vector<api::Frame> r = ReadViewFrame(server, "nope");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].kind, "error");
  EXPECT_EQ(r[0].FindUint("code", 0), 1u);

  // Missing name field.
  api::Frame no_name;
  no_name.kind = "view_read";
  no_name.Add("id", "2");
  r = server.HandleRequest(no_name);
  EXPECT_EQ(r[0].kind, "error");
  EXPECT_EQ(r[0].FindUint("code", 0), 2u);

  // Bad kind.
  r = RegisterViewFrame(server, "v", "matrix", "R1(a,b)");
  EXPECT_EQ(r[0].kind, "error");
  EXPECT_EQ(r[0].FindUint("code", 0), 2u);

  // Cyclic query is rejected as input.
  r = RegisterViewFrame(server, "v", "join",
                        "R1(a,b), R2(b,c), R3(c,a)");
  EXPECT_EQ(r[0].kind, "error");
  EXPECT_EQ(r[0].FindUint("code", 0), 1u);

  // Duplicate name.
  ASSERT_EQ(RegisterViewFrame(server, "v", "join", "R1(a,b)")[0].kind,
            "end");
  r = RegisterViewFrame(server, "v", "join", "R1(a,b)");
  EXPECT_EQ(r[0].kind, "error");
  EXPECT_EQ(r[0].FindUint("code", 0), 1u);

  // Draining rejects view traffic retryably.
  server.Drain();
  r = ReadViewFrame(server, "v");
  EXPECT_EQ(r[0].kind, "error");
  EXPECT_EQ(r[0].FindUint("code", 0), 6u);
  EXPECT_EQ(r[0].FindUint("retryable", 0), 1u);
}

TEST(IvmServerTest, ViewRoundtripOverTcp) {
  server::QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  server::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  ASSERT_TRUE(client.Mutate(kTriangleDataset).ok);

  server::ViewRegisterReply reg =
      client.RegisterView("chain", "join", kChainQuery);
  ASSERT_TRUE(reg.ok) << reg.error;
  EXPECT_FALSE(reg.rejected) << reg.message;

  server::QueryReply view = client.ViewRead("chain");
  ASSERT_TRUE(view.ok) << view.error;
  EXPECT_FALSE(view.rejected);
  EXPECT_EQ(view.method, "ivm");
  EXPECT_EQ(view.attributes,
            (std::vector<std::string>{"a", "b", "c", "d"}));
  server::QueryReply q = client.Query(kChainQuery);
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(view.row_text, NormalizeRowText(q.row_text));
  EXPECT_NE(view.report_json.find("\"ivm\":"), std::string::npos);

  server::QueryReply missing = client.ViewRead("nope");
  ASSERT_TRUE(missing.ok) << missing.error;
  EXPECT_TRUE(missing.rejected);
  EXPECT_EQ(missing.code, 1);
  server.Stop();
}

TEST_F(WalServerTest, ViewsSurviveRestartAndCompaction) {
  {
    server::QueryServer server(WalOptions());
    std::string error;
    ASSERT_TRUE(server.Recover(&error)) << error;
    Mutate(server, kTriangleDataset);
    std::vector<api::Frame> reg =
        RegisterViewFrame(server, "tri", "join", kChainQuery);
    ASSERT_EQ(reg[0].kind, "end") << *reg[0].Find("message");
    Mutate(server, "relation R1:\n3 0\n");
  }
  {
    // Restart: the kViewDef log record rebuilds the view against the
    // replayed data.
    server::QueryServer reborn(WalOptions());
    std::string error;
    ASSERT_TRUE(reborn.Recover(&error)) << error;
    EXPECT_EQ(reborn.recovery().view_defs, 1u);
    EXPECT_EQ(reborn.recovery().views_rebuilt, 1u);
    EXPECT_EQ(reborn.recovery().views_failed, 0u);
    std::vector<api::Frame> read = ReadViewFrame(reborn, "tri");
    ASSERT_EQ(read.front().kind, "hdr");
    std::string maintained = BatchText(read);
    EXPECT_EQ(maintained,
              NormalizeRowText(BatchText(Query(reborn, kChainQuery))));

    // Compaction must carry the definition into the snapshot...
    ASSERT_TRUE(reborn.database().CompactWal({}));
    Mutate(reborn, "relation R2:\n3 0\n");
  }
  // ...so a restart after log rotation still rebuilds it.
  server::QueryServer again(WalOptions());
  std::string error;
  ASSERT_TRUE(again.Recover(&error)) << error;
  EXPECT_EQ(again.recovery().views_rebuilt, 1u);
  std::vector<api::Frame> read = ReadViewFrame(again, "tri");
  ASSERT_EQ(read.front().kind, "hdr");
  EXPECT_EQ(BatchText(read),
            NormalizeRowText(BatchText(Query(again, kChainQuery))));
}

TEST_F(WalServerTest, RetriedRequestIdOccupiesOneDedupSlot) {
  // Regression: RememberRequestId must be idempotent. If a replayed-then-
  // retried id were pushed into the eviction order twice, the set and the
  // order deque would desync and the id would fall out of the window
  // early (or evict a newer id in its place).
  server::ServerOptions options = WalOptions();
  options.dedup_window = 4;
  {
    server::QueryServer server(options);
    std::string error;
    ASSERT_TRUE(server.Recover(&error)) << error;
    ASSERT_EQ(Mutate(server, "relation R:\n1 1\n", 100)[0].kind, "end");
  }
  server::QueryServer reborn(options);
  std::string error;
  ASSERT_TRUE(reborn.Recover(&error)) << error;
  // Replay remembered id 100; two retries must still dedup and must not
  // consume extra window slots.
  for (int i = 0; i < 2; ++i) {
    std::vector<api::Frame> retry = Mutate(reborn, "relation R:\n1 1\n", 100);
    ASSERT_EQ(retry[0].kind, "end");
    EXPECT_EQ(retry[0].FindUint("deduped", 0), 1u) << "retry " << i;
  }
  // Exactly window-1 fresh ids: 100 is now the oldest of 4 remembered ids
  // and must still be present. A duplicated push would already have
  // evicted it here.
  for (std::uint64_t id = 101; id <= 103; ++id) {
    std::vector<api::Frame> r = Mutate(reborn, "relation R:\n2 2\n", id);
    ASSERT_EQ(r[0].kind, "end");
    EXPECT_EQ(r[0].FindUint("deduped", 0), 0u);
  }
  std::vector<api::Frame> still = Mutate(reborn, "relation R:\n1 1\n", 100);
  ASSERT_EQ(still[0].kind, "end");
  EXPECT_EQ(still[0].FindUint("deduped", 0), 1u);
  // One more fresh id evicts 100; the next retry genuinely re-applies.
  ASSERT_EQ(Mutate(reborn, "relation R:\n2 2\n", 104)[0].kind, "end");
  std::vector<api::Frame> evicted = Mutate(reborn, "relation R:\n1 1\n", 100);
  ASSERT_EQ(evicted[0].kind, "end");
  EXPECT_EQ(evicted[0].FindUint("deduped", 0), 0u);
  EXPECT_EQ(evicted[0].FindUint("applied", 0), 1u);
}

}  // namespace
}  // namespace qc
