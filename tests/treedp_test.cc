#include <gtest/gtest.h>

#include "csp/generators.h"
#include "csp/solver.h"
#include "csp/treedp.h"
#include "graph/generators.h"
#include "graph/treewidth.h"
#include "util/rng.h"

namespace qc::csp {
namespace {

TEST(TreeDpTest, PathColoringCounts) {
  // Proper 3-colourings of P_4: 3 * 2^3 = 24.
  CspInstance csp = ColoringCsp(graph::Path(4), 3);
  TreeDpResult r = SolveTreewidthDp(csp);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_EQ(r.solution_count, 24u);
  EXPECT_TRUE(csp.Check(r.assignment));
  EXPECT_EQ(r.width_used, 1);
}

TEST(TreeDpTest, OddCycleTwoColoringUnsat) {
  CspInstance csp = ColoringCsp(graph::Cycle(7), 2);
  TreeDpResult r = SolveTreewidthDp(csp);
  EXPECT_FALSE(r.satisfiable);
  EXPECT_EQ(r.solution_count, 0u);
}

TEST(TreeDpTest, CycleColoringCountMatchesChromaticPolynomial) {
  // Proper k-colourings of C_n: (k-1)^n + (-1)^n (k-1).
  for (int n : {3, 4, 5, 6}) {
    for (int k : {2, 3, 4}) {
      CspInstance csp = ColoringCsp(graph::Cycle(n), k);
      TreeDpResult r = SolveTreewidthDp(csp);
      long long expected = 1;
      for (int i = 0; i < n; ++i) expected *= (k - 1);
      expected += (n % 2 == 0 ? 1 : -1) * (k - 1);
      EXPECT_EQ(r.solution_count, static_cast<std::uint64_t>(expected))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(TreeDpTest, UnconstrainedVariablesMultiplyCount) {
  // 3 isolated variables over domain 4: 64 solutions.
  CspInstance csp;
  csp.num_vars = 3;
  csp.domain_size = 4;
  TreeDpResult r = SolveTreewidthDp(csp);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_EQ(r.solution_count, 64u);
}

TEST(TreeDpTest, ZeroVariables) {
  CspInstance csp;
  csp.num_vars = 0;
  csp.domain_size = 3;
  TreeDpResult r = SolveTreewidthDp(csp);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_EQ(r.solution_count, 1u);
}

TEST(TreeDpTest, NonBinaryConstraintsSupported) {
  // Ternary all-different-ish constraint on a triangle of variables plus a
  // pendant binary constraint.
  CspInstance csp;
  csp.num_vars = 4;
  csp.domain_size = 3;
  Relation alldiff(3);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        if (a != b && b != c && a != c) alldiff.Add({a, b, c});
      }
    }
  }
  csp.AddConstraint({0, 1, 2}, std::move(alldiff));
  csp.AddConstraint({2, 3}, DisequalityRelation(3));
  TreeDpResult r = SolveTreewidthDp(csp);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_TRUE(csp.Check(r.assignment));
  // 3! orderings * 2 choices for var 3 = 12.
  EXPECT_EQ(r.solution_count, 12u);
}

class TreeDpAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeDpAgreementTest, MatchesBruteForceOnRandomPartialKTrees) {
  util::Rng rng(700 + GetParam());
  int k = 1 + GetParam() % 3;
  graph::Graph structure = graph::RandomPartialKTree(8, k, 0.7, &rng);
  CspInstance csp = RandomBinaryCsp(structure, 3, 0.4, &rng);
  TreeDpResult dp = SolveTreewidthDp(csp);
  std::uint64_t expected = CountSolutionsBruteForce(csp);
  EXPECT_EQ(dp.solution_count, expected);
  EXPECT_EQ(dp.satisfiable, expected > 0);
  if (dp.satisfiable) {
    EXPECT_TRUE(csp.Check(dp.assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeDpAgreementTest, ::testing::Range(0, 20));

TEST(TreeDpTest, ExplicitDecompositionUsed) {
  // Hand-built decomposition of a path CSP.
  CspInstance csp = ColoringCsp(graph::Path(4), 2);
  graph::TreeDecomposition td;
  td.bags = {{0, 1}, {1, 2}, {2, 3}};
  td.edges = {{0, 1}, {1, 2}};
  TreeDpResult r = SolveWithDecomposition(csp, td);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_EQ(r.solution_count, 2u);
  EXPECT_TRUE(csp.Check(r.assignment));
  // Work is bounded by #bags * D^{bagsize} = 3 * 4.
  EXPECT_EQ(r.table_entries, 12u);
}

TEST(TreeDpTest, WorkScalesAsTheoremFourTwo) {
  // Freuder's bound: table entries <= #bags * D^{k+1}. Verify the work
  // measure respects it on k-trees of growing domain.
  util::Rng rng(9);
  graph::Graph structure = graph::RandomKTree(10, 2, &rng);
  for (int d : {2, 3, 5}) {
    CspInstance csp = RandomBinaryCsp(structure, d, 0.3, &rng);
    TreeDpResult r = SolveTreewidthDp(csp);
    ASSERT_LE(r.width_used, 2);
    std::uint64_t bound = 10ull;
    for (int i = 0; i <= r.width_used; ++i) bound *= d;
    EXPECT_LE(r.table_entries, bound);
  }
}

TEST(TreeDpTest, AgreesWithBacktrackingOnColorings) {
  util::Rng rng(10);
  for (int trial = 0; trial < 6; ++trial) {
    graph::Graph g = graph::RandomPartialKTree(9, 2, 0.8, &rng);
    CspInstance csp = ColoringCsp(g, 3);
    BacktrackingSolver solver;
    EXPECT_EQ(SolveTreewidthDp(csp).solution_count,
              solver.CountSolutions(csp, nullptr));
  }
}

}  // namespace
}  // namespace qc::csp
