// Budget/cancellation subsystem tests: Budget semantics, prompt termination
// of every engine under a ~0 deadline at 1/2/8 threads, deterministic
// pre-cancelled behaviour, row-limit partial results, concurrent external
// cancellation (the tsan preset runs these suites at QC_THREADS=8), and
// bit-identical results with and without an armed-but-untripped budget.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "core/autosolver.h"
#include "core/context.h"
#include "csp/generators.h"
#include "csp/solver.h"
#include "csp/treedp.h"
#include "db/agm.h"
#include "db/enumeration.h"
#include "db/generic_join.h"
#include "db/yannakakis.h"
#include "finegrained/hyperclique.h"
#include "finegrained/orthogonal_vectors.h"
#include "graph/colorcoding.h"
#include "graph/generators.h"
#include "graph/hypergraph.h"
#include "graph/treewidth.h"
#include "graph/triangles.h"
#include "gtest/gtest.h"
#include "sat/cdcl.h"
#include "sat/dpll.h"
#include "sat/generators.h"
#include "util/budget.h"
#include "util/rng.h"
#include "util/timer.h"

// Wall-clock bounds are scaled up when a sanitizer instruments the build.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define QC_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define QC_UNDER_SANITIZER 1
#endif
#endif

namespace qc {
namespace {

#ifdef QC_UNDER_SANITIZER
constexpr double kPromptMillis = 2000.0;
#else
constexpr double kPromptMillis = 100.0;
#endif

/// A budget whose deadline has already passed and whose trip has been
/// registered. Arming bumps the budget's epoch, which invalidates every
/// thread's stride cache, so the very first Poll() consults the clock and
/// trips; the loop is belt-and-braces. Engines then observe the trip at
/// their first safe point, making the promptness tests deterministic.
void ArmExpired(util::Budget* b) {
  b->ArmDeadlineAfter(0.0);
  while (!b->Poll()) {
  }
}

db::JoinQuery TriangleQuery() {
  db::JoinQuery q;
  q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  return q;
}

db::JoinQuery PathQuery() {
  db::JoinQuery q;
  q.Add("R", {"a", "b"}).Add("S", {"b", "c"}).Add("T", {"c", "d"});
  return q;
}

// ---------------------------------------------------------------------------
// Budget semantics

TEST(BudgetTest, UnarmedNeverTrips) {
  util::Budget b;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(b.Poll());
  EXPECT_FALSE(b.ChargeWork(1000));
  EXPECT_FALSE(b.ChargeRows(1000));
  EXPECT_FALSE(b.Stopped());
  EXPECT_EQ(b.status(), util::RunStatus::kCompleted);
}

TEST(BudgetTest, CancelTripsImmediately) {
  util::Budget b;
  b.RequestCancel();
  EXPECT_TRUE(b.Poll());
  EXPECT_TRUE(b.Stopped());
  EXPECT_EQ(b.status(), util::RunStatus::kCancelled);
}

TEST(BudgetTest, FirstCauseWins) {
  util::Budget b;
  b.ArmWorkLimit(1);
  EXPECT_TRUE(b.ChargeWork());  // Trips kBudgetExhausted.
  b.RequestCancel();            // Too late; cause is already recorded.
  EXPECT_EQ(b.status(), util::RunStatus::kBudgetExhausted);
}

TEST(BudgetTest, WorkLimitTripsAtLimit) {
  util::Budget b;
  b.ArmWorkLimit(10);
  for (int i = 0; i < 9; ++i) EXPECT_FALSE(b.ChargeWork());
  EXPECT_TRUE(b.ChargeWork());
  EXPECT_EQ(b.status(), util::RunStatus::kBudgetExhausted);
  EXPECT_GE(b.work_used(), 10u);
}

TEST(BudgetTest, RowLimitTripsAtLimit) {
  util::Budget b;
  b.ArmRowLimit(3);
  EXPECT_FALSE(b.ChargeRows());
  EXPECT_FALSE(b.ChargeRows());
  EXPECT_TRUE(b.ChargeRows());
  EXPECT_EQ(b.status(), util::RunStatus::kBudgetExhausted);
}

TEST(BudgetTest, ExpiredDeadlineTripsWithinOneStride) {
  util::Budget b;
  ArmExpired(&b);
  bool tripped = false;
  // Arming invalidates the stride cache, so the first poll already consults
  // the clock; the loop only documents the stride upper bound.
  for (int i = 0; i < 1000 && !tripped; ++i) tripped = b.Poll();
  EXPECT_TRUE(tripped);
  EXPECT_EQ(b.status(), util::RunStatus::kDeadlineExceeded);
}

TEST(BudgetTest, ExpiredDeadlineTripsOnTheVeryFirstPoll) {
  // Regression for the cross-instance stride cache: the first poll after
  // arming must consult the clock, not inherit another budget's countdown.
  util::Budget b;
  b.ArmDeadlineAfter(-1.0);
  EXPECT_TRUE(b.Poll());
  EXPECT_EQ(b.status(), util::RunStatus::kDeadlineExceeded);
}

TEST(BudgetTest, ResetClearsTrip) {
  util::Budget b;
  b.ArmWorkLimit(1);
  EXPECT_TRUE(b.ChargeWork());
  b.Reset();
  EXPECT_FALSE(b.Stopped());
  EXPECT_EQ(b.work_used(), 0u);
}

// ---------------------------------------------------------------------------
// Prompt termination per engine (~0 deadline; 1/2/8 threads where the
// engine is threaded)

TEST(CancellationPromptness, GenericJoinAllEntryPoints) {
  util::Rng rng(1);
  db::JoinQuery q = TriangleQuery();
  db::Database d = db::RandomDatabase(q, 4096, 2048, &rng);
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    ExecutionContext ctx;
    ctx.threads = threads;
    ctx.budget = std::make_shared<util::Budget>();
    ArmExpired(ctx.budget.get());
    util::Timer timer;
    db::GenericJoin join(q, d, ctx);
    db::JoinResult r = join.Evaluate();
    EXPECT_LT(timer.Millis(), kPromptMillis);
    EXPECT_EQ(join.status(), util::RunStatus::kDeadlineExceeded);
    EXPECT_TRUE(r.truncated);

    ctx.budget->Reset();
    ArmExpired(ctx.budget.get());
    timer.Reset();
    db::GenericJoin counter(q, d, ctx);
    counter.Count();
    EXPECT_LT(timer.Millis(), kPromptMillis);
    EXPECT_EQ(counter.status(), util::RunStatus::kDeadlineExceeded);

    ctx.budget->Reset();
    ArmExpired(ctx.budget.get());
    timer.Reset();
    db::GenericJoin empty(q, d, ctx);
    empty.IsEmpty();
    EXPECT_LT(timer.Millis(), kPromptMillis);
    // "Empty" under a tripped budget is untrustworthy, and the status says
    // so.
    EXPECT_EQ(empty.status(), util::RunStatus::kDeadlineExceeded);
  }
}

TEST(CancellationPromptness, YannakakisAndEnumerator) {
  util::Rng rng(2);
  db::JoinQuery q = PathQuery();
  db::Database d = db::RandomDatabase(q, 20000, 4000, &rng);
  util::Budget budget;
  ArmExpired(&budget);
  util::Timer timer;
  auto r = db::EvaluateYannakakis(q, d, nullptr, &budget);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->truncated);
  EXPECT_EQ(r->attributes, q.AttributeOrder());

  budget.Reset();
  ArmExpired(&budget);
  timer.Reset();
  db::AcyclicEnumerator enumerator(q, d, &budget);
  while (enumerator.Next().has_value()) {
  }
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_EQ(enumerator.status(), util::RunStatus::kDeadlineExceeded);
}

TEST(CancellationPromptness, ExactTreewidth) {
  util::Rng rng(3);
  graph::Graph g = graph::RandomGnp(20, 0.3, &rng);
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    util::Budget budget;
    ArmExpired(&budget);
    util::Timer timer;
    graph::ExactTreewidthResult r =
        graph::ExactTreewidth(g, 24, threads, &budget);
    EXPECT_LT(timer.Millis(), kPromptMillis);
    EXPECT_EQ(r.status, util::RunStatus::kDeadlineExceeded);
    EXPECT_EQ(r.treewidth, -1);
    EXPECT_TRUE(r.decomposition.bags.empty());
  }
}

TEST(CancellationPromptness, ColorCoding) {
  util::Rng rng(4);
  graph::Graph g = graph::RandomGnp(200, 0.05, &rng);
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    util::Budget budget;
    ArmExpired(&budget);
    util::Rng search_rng(11);
    util::Timer timer;
    auto path = graph::FindKPathColorCoding(g, 9, &search_rng, /*rounds=*/64,
                                            threads, &budget);
    EXPECT_LT(timer.Millis(), kPromptMillis);
    EXPECT_FALSE(path.has_value());
    EXPECT_EQ(budget.status(), util::RunStatus::kDeadlineExceeded);
  }
}

TEST(CancellationPromptness, SatSolvers) {
  util::Rng rng(5);
  sat::CnfFormula f = sat::RandomKSat(60, 256, 3, &rng);

  util::Budget budget;
  ArmExpired(&budget);
  sat::CdclSolver::Options copts;
  copts.budget = &budget;
  util::Timer timer;
  sat::SatResult cr = sat::CdclSolver(copts).Solve(f);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_FALSE(cr.satisfiable);  // Unknown, per cr.status.
  EXPECT_EQ(cr.status, util::RunStatus::kDeadlineExceeded);

  budget.Reset();
  ArmExpired(&budget);
  sat::DpllSolver::Options dopts;
  dopts.budget = &budget;
  timer.Reset();
  sat::SatResult dr = sat::DpllSolver(dopts).Solve(f);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_FALSE(dr.satisfiable);
  EXPECT_EQ(dr.status, util::RunStatus::kDeadlineExceeded);

  budget.Reset();
  ArmExpired(&budget);
  timer.Reset();
  sat::SatResult br = sat::SolveBruteForce(f, &budget);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_FALSE(br.satisfiable);
  EXPECT_EQ(br.status, util::RunStatus::kDeadlineExceeded);
}

TEST(CancellationPromptness, CspEngines) {
  util::Rng rng(6);
  graph::Graph structure = graph::RandomGnp(40, 0.2, &rng);
  csp::CspInstance instance = csp::RandomBinaryCsp(structure, 8, 0.4, &rng);

  util::Budget budget;
  ArmExpired(&budget);
  csp::BacktrackingSolver::Options opts;
  opts.budget = &budget;
  util::Timer timer;
  csp::CspSolution sol = csp::BacktrackingSolver(opts).Solve(instance);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_FALSE(sol.found);  // Unknown, per sol.status.
  EXPECT_EQ(sol.status, util::RunStatus::kDeadlineExceeded);

  budget.Reset();
  ArmExpired(&budget);
  timer.Reset();
  csp::TreeDpResult dp = csp::SolveTreewidthDp(instance, 16, 1, &budget);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_EQ(dp.status, util::RunStatus::kDeadlineExceeded);
}

TEST(CancellationPromptness, FineGrainedSearches) {
  util::Rng rng(7);
  graph::Hypergraph h = graph::RandomUniformHypergraph(40, 3, 0.4, &rng);
  util::Budget budget;
  ArmExpired(&budget);
  finegrained::HypercliqueSearcher searcher(h, 3, &budget);
  util::Timer timer;
  auto found = searcher.Find(6);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_FALSE(found.has_value());
  EXPECT_EQ(searcher.status(), util::RunStatus::kDeadlineExceeded);

  budget.Reset();
  ArmExpired(&budget);
  timer.Reset();
  searcher.Count(4);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_EQ(searcher.status(), util::RunStatus::kDeadlineExceeded);

  finegrained::OvInstance ov =
      finegrained::RandomOvInstance(2000, 128, 0.9, &rng);
  budget.Reset();
  ArmExpired(&budget);
  timer.Reset();
  auto pair = finegrained::FindOrthogonalPair(ov, &budget);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_FALSE(pair.has_value());
  EXPECT_TRUE(budget.Stopped());

  budget.Reset();
  ArmExpired(&budget);
  timer.Reset();
  finegrained::CountOrthogonalPairs(ov, &budget);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_TRUE(budget.Stopped());
}

TEST(CancellationPromptness, CoreEntryPoints) {
  util::Rng rng(8);
  // A 16-clique query: the exact treewidth DP would be the expensive part.
  db::JoinQuery q;
  for (int i = 0; i < 16; ++i) {
    for (int j = i + 1; j < 16; ++j) {
      q.Add("E" + std::to_string(i) + "_" + std::to_string(j),
            {"x" + std::to_string(i), "x" + std::to_string(j)});
    }
  }
  ExecutionContext ctx;
  ctx.budget = std::make_shared<util::Budget>();
  ArmExpired(ctx.budget.get());
  util::Timer timer;
  core::Analysis a = core::AnalyzeQuery(q, ctx);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_EQ(a.status, util::RunStatus::kDeadlineExceeded);
  EXPECT_FALSE(a.treewidth_exact);  // Degraded to the heuristic bound.
  EXPECT_GE(a.treewidth, 0);        // But still well-formed.

  graph::Graph structure = graph::RandomGnp(30, 0.2, &rng);
  csp::CspInstance instance = csp::RandomBinaryCsp(structure, 4, 0.4, &rng);
  ctx.budget->Reset();
  ArmExpired(ctx.budget.get());
  timer.Reset();
  core::AutoCspResult cr = core::SolveCspAuto(instance, ctx);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_EQ(cr.status, util::RunStatus::kDeadlineExceeded);

  db::JoinQuery tq = TriangleQuery();
  db::Database d = db::RandomDatabase(tq, 2048, 1024, &rng);
  ctx.budget->Reset();
  ArmExpired(ctx.budget.get());
  timer.Reset();
  core::AutoQueryResult qr = core::EvaluateQueryAuto(tq, d, ctx);
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_EQ(qr.status, util::RunStatus::kDeadlineExceeded);
  EXPECT_TRUE(qr.result.truncated);
}

TEST(CancellationPromptness, TriangleDetectors) {
  // FindTriangleMatrix / FindTriangleAyz / CountTriangles accept a Budget
  // and must observe a trip promptly — returning nullopt / a partial count
  // even though K_300 is full of triangles, proving they aborted rather
  // than completed.
  graph::Graph g = graph::Complete(300);
  util::Budget b;
  ArmExpired(&b);
  util::Timer timer;
  EXPECT_FALSE(graph::FindTriangleMatrix(g, &b).has_value());
  EXPECT_LT(timer.Millis(), kPromptMillis);
  EXPECT_TRUE(b.Stopped());

  // Default delta ≈ sqrt(m) = 211 < 299: every vertex heavy, MM phase.
  b.Reset();
  ArmExpired(&b);
  timer.Reset();
  EXPECT_FALSE(graph::FindTriangleAyz(g, 0, &b).has_value());
  EXPECT_LT(timer.Millis(), kPromptMillis);

  // delta ≥ max degree: every vertex light, the scan phase polls.
  b.Reset();
  ArmExpired(&b);
  timer.Reset();
  EXPECT_FALSE(graph::FindTriangleAyz(g, 400, &b).has_value());
  EXPECT_LT(timer.Millis(), kPromptMillis);

  b.Reset();
  ArmExpired(&b);
  timer.Reset();
  EXPECT_EQ(graph::CountTriangles(g, &b), 0u);  // Partial undercount.
  EXPECT_LT(timer.Millis(), kPromptMillis);

  // An armed-but-untripped budget never changes the answer.
  util::Budget generous;
  generous.ArmDeadlineAfter(3600.0);
  EXPECT_TRUE(graph::FindTriangleMatrix(g, &generous).has_value());
  EXPECT_TRUE(graph::FindTriangleAyz(g, 0, &generous).has_value());
  EXPECT_EQ(graph::CountTriangles(g, &generous), graph::CountTriangles(g));
}

// ---------------------------------------------------------------------------
// Pre-cancelled budgets: deterministic kCancelled everywhere

TEST(CancellationPromptness, PreCancelledBudgetReportsCancelled) {
  util::Rng rng(9);
  db::JoinQuery q = TriangleQuery();
  db::Database d = db::RandomDatabase(q, 512, 256, &rng);
  ExecutionContext ctx;
  ctx.budget = std::make_shared<util::Budget>();
  ctx.budget->RequestCancel();
  db::GenericJoin join(q, d, ctx);
  db::JoinResult r = join.Evaluate();
  EXPECT_EQ(join.status(), util::RunStatus::kCancelled);
  EXPECT_TRUE(r.truncated);
  EXPECT_TRUE(r.tuples.empty());

  core::AutoQueryResult qr = core::EvaluateQueryAuto(q, d, ctx);
  EXPECT_EQ(qr.status, util::RunStatus::kCancelled);
}

// ---------------------------------------------------------------------------
// Row limits: exact partial results

TEST(CancellationRowLimit, SerialEvaluateStopsAtExactlyMaxRows) {
  util::Rng rng(10);
  db::JoinQuery q = TriangleQuery();
  db::Database d = db::RandomDatabase(q, 1024, 64, &rng);
  ExecutionContext ctx;
  ctx.threads = 1;
  std::uint64_t full_count = db::GenericJoin(q, d, ctx).Count();
  ASSERT_GT(full_count, 10u);

  ctx.max_output_rows = 10;
  db::GenericJoin join(q, d, ctx);
  db::JoinResult r = join.Evaluate();
  EXPECT_EQ(r.tuples.size(), 10u);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(join.status(), util::RunStatus::kBudgetExhausted);
}

TEST(CancellationRowLimit, ParallelEvaluateClampsToMaxRows) {
  util::Rng rng(10);
  db::JoinQuery q = TriangleQuery();
  db::Database d = db::RandomDatabase(q, 1024, 64, &rng);
  for (int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    ExecutionContext ctx;
    ctx.threads = threads;
    ctx.max_output_rows = 10;
    db::GenericJoin join(q, d, ctx);
    db::JoinResult r = join.Evaluate();
    EXPECT_LE(r.tuples.size(), 10u);
    EXPECT_TRUE(r.truncated);
    EXPECT_EQ(join.status(), util::RunStatus::kBudgetExhausted);
  }
}

TEST(CancellationRowLimit, RowLimitedTuplesAreASubsetOfTheAnswer) {
  util::Rng rng(10);
  db::JoinQuery q = TriangleQuery();
  db::Database d = db::RandomDatabase(q, 1024, 64, &rng);
  ExecutionContext ctx;
  ctx.threads = 1;
  db::JoinResult full = db::GenericJoin(q, d, ctx).Evaluate();
  full.Normalize();
  ctx.max_output_rows = 10;
  db::JoinResult partial = db::GenericJoin(q, d, ctx).Evaluate();
  for (const auto& t : partial.tuples) {
    EXPECT_NE(std::find(full.tuples.begin(), full.tuples.end(), t),
              full.tuples.end());
  }
}

TEST(CancellationRowLimit, EnumeratorDeliversExactlyMaxRows) {
  util::Rng rng(12);
  db::JoinQuery q = PathQuery();
  db::Database d = db::RandomDatabase(q, 256, 64, &rng);
  db::AcyclicEnumerator unlimited(q, d);
  ASSERT_TRUE(unlimited.IsValid());
  std::uint64_t total = 0;
  while (unlimited.Next().has_value()) ++total;
  ASSERT_GT(total, 5u);

  util::Budget budget;
  budget.ArmRowLimit(5);
  db::AcyclicEnumerator limited(q, d, &budget);
  ASSERT_TRUE(limited.IsValid());
  std::uint64_t seen = 0;
  while (limited.Next().has_value()) ++seen;
  EXPECT_EQ(seen, 5u);
  EXPECT_EQ(limited.status(), util::RunStatus::kBudgetExhausted);
}

// ---------------------------------------------------------------------------
// External cancellation from another thread (tsan exercises the atomics)

TEST(CancellationConcurrent, MidRunCancelTerminatesCleanly) {
  util::Rng rng(13);
  db::JoinQuery q = TriangleQuery();
  db::Database d = db::RandomDatabase(q, 4096, 2048, &rng);
  ExecutionContext ctx;
  ctx.threads = 8;
  ctx.budget = std::make_shared<util::Budget>();
  std::thread canceller([budget = ctx.budget] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    budget->RequestCancel();
  });
  db::GenericJoin join(q, d, ctx);
  std::uint64_t count = join.Count();
  canceller.join();
  // Either the join finished before the cancel landed, or it was cut short;
  // both are valid — what matters is a clean unwind and a truthful status.
  if (join.status() == util::RunStatus::kCompleted) {
    ExecutionContext serial;
    serial.threads = 1;
    EXPECT_EQ(count, db::GenericJoin(q, d, serial).Count());
  } else {
    EXPECT_EQ(join.status(), util::RunStatus::kCancelled);
  }
}

// ---------------------------------------------------------------------------
// No budget, or an armed-but-untripped budget: bit-identical results

TEST(CancellationDeterminism, UntrippedBudgetNeverChangesTheAnswer) {
  util::Rng rng(14);
  db::JoinQuery q = TriangleQuery();
  db::Database d = db::RandomDatabase(q, 1024, 512, &rng);
  ExecutionContext plain;
  plain.threads = 1;
  db::JoinResult baseline = db::GenericJoin(q, d, plain).Evaluate();
  EXPECT_FALSE(baseline.truncated);
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    ExecutionContext ctx;
    ctx.threads = threads;
    ctx.budget = std::make_shared<util::Budget>();
    ctx.budget->ArmDeadlineAfter(3600.0);  // Armed, never trips.
    ctx.budget->ArmRowLimit(1u << 30);
    db::GenericJoin join(q, d, ctx);
    db::JoinResult r = join.Evaluate();
    EXPECT_EQ(join.status(), util::RunStatus::kCompleted);
    EXPECT_FALSE(r.truncated);
    EXPECT_EQ(r.tuples, baseline.tuples);
  }
}

TEST(CancellationDeterminism, ColorCodingRngUnaffectedByArmedBudget) {
  util::Rng rng(15);
  graph::Graph g = graph::RandomGnp(60, 0.15, &rng);
  util::Rng rng_a(42), rng_b(42);
  auto plain = graph::FindKPathColorCoding(g, 5, &rng_a);
  util::Budget budget;
  budget.ArmDeadlineAfter(3600.0);
  auto budgeted =
      graph::FindKPathColorCoding(g, 5, &rng_b, 0, 0, &budget);
  EXPECT_EQ(plain.has_value(), budgeted.has_value());
  if (plain.has_value()) EXPECT_EQ(*plain, *budgeted);
  // The generator advanced identically: both streams must now agree.
  EXPECT_EQ(rng_a.Next(), rng_b.Next());
}

TEST(CancellationDeterminism, ExactTreewidthUnaffectedByArmedBudget) {
  util::Rng rng(16);
  graph::Graph g = graph::RandomGnp(14, 0.4, &rng);
  graph::ExactTreewidthResult plain = graph::ExactTreewidth(g);
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    util::Budget budget;
    budget.ArmDeadlineAfter(3600.0);
    graph::ExactTreewidthResult r =
        graph::ExactTreewidth(g, 24, threads, &budget);
    EXPECT_EQ(r.status, util::RunStatus::kCompleted);
    EXPECT_EQ(r.treewidth, plain.treewidth);
    EXPECT_EQ(r.elimination_order, plain.elimination_order);
  }
}

}  // namespace
}  // namespace qc
