// Write-ahead log: record codec, torn-tail recovery, compaction,
// MvccDatabase durability wiring, and the deterministic fault-injection
// sweep over every WAL fault point.
//
// The recovery suite is adversarial on purpose: it tears the log at every
// byte offset, flips bits inside committed records, and injects faults at
// each named point, asserting that each case ends in either a clean
// recovery (torn tail truncated) or a structured error — never a crash,
// never a silently divergent database.

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/mvcc.h"
#include "db/wal.h"
#include "util/fault.h"

namespace qc {
namespace {

// wal.log / snapshot.dat header: 8-byte magic + u64 generation.
constexpr std::size_t kHeaderBytes = 16;

// Unique scratch directory per test; removed on destruction.
class TempDir {
 public:
  TempDir() {
    std::string templ = ::testing::TempDir() + "qc_wal_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    path_ = ::mkdtemp(buf.data());
  }
  ~TempDir() {
    std::remove((path_ + "/wal.log").c_str());
    std::remove((path_ + "/wal.log.tmp").c_str());
    std::remove((path_ + "/snapshot.dat").c_str());
    std::remove((path_ + "/snapshot.tmp").c_str());
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

db::WalOptions Options(const TempDir& dir,
                       db::FsyncPolicy fsync = db::FsyncPolicy::kOff) {
  db::WalOptions o;
  o.dir = dir.path();
  o.fsync = fsync;
  return o;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

db::WalRecord SetRecord(const std::string& relation, int arity,
                        std::vector<db::Tuple> tuples,
                        std::uint64_t request_id = 0) {
  db::WalRecord r;
  r.kind = db::WalRecord::Kind::kSetRelation;
  r.relation = relation;
  r.arity = arity;
  r.tuples = std::move(tuples);
  r.request_id = request_id;
  return r;
}

db::WalRecord AddRecord(const std::string& relation,
                        std::vector<db::Tuple> tuples,
                        std::uint64_t request_id = 0) {
  db::WalRecord r;
  r.kind = db::WalRecord::Kind::kAddTuples;
  r.relation = relation;
  r.tuples = std::move(tuples);
  if (!r.tuples.empty()) r.arity = static_cast<int>(r.tuples.front().size());
  r.request_id = request_id;
  return r;
}

// Replay into a plain Database via the same structured dispatch the server
// uses (kDataset is exercised separately through MvccDatabase).
db::WalRecovery ReplayInto(const db::WalOptions& options, db::Database* db) {
  return db::Wal::Replay(options, [db](const db::WalRecord& r) {
    switch (r.kind) {
      case db::WalRecord::Kind::kSetRelation:
        return db->SetRelation(r.relation, r.arity, r.tuples);
      case db::WalRecord::Kind::kAddTuples: {
        db::MutationResult out = db::MutationResult::Ok();
        for (const db::Tuple& t : r.tuples) {
          out = db->AddTuple(r.relation, t);
          if (!out) break;
        }
        return out;
      }
      default:
        return db::MutationResult::Fail("unexpected record kind");
    }
  });
}

TEST(WalRecordCodecTest, RoundTripsEveryKind) {
  std::vector<db::WalRecord> records;
  records.push_back(SetRecord("edges", 2, {{1, 2}, {3, 4}}, 77));
  records.push_back(AddRecord("edges", {{5, 6}}, 78));
  records.push_back(SetRecord("nullary", 0, {{}, {}}, 79));
  {
    db::WalRecord r;
    r.kind = db::WalRecord::Kind::kDataset;
    r.dataset = "relation R:\n1 2\n";
    r.continue_on_error = true;
    r.request_id = 99;
    records.push_back(r);
  }
  {
    db::WalRecord r;
    r.kind = db::WalRecord::Kind::kDedup;
    r.dedup_ids = {1, 2, 0xffffffffffffffffull};
    records.push_back(r);
  }
  {
    db::WalRecord r;
    r.kind = db::WalRecord::Kind::kViewDef;
    r.relation = "triangles";
    r.arity = 1;  // ViewDefinition::Kind::kTriangleCount.
    r.dataset = "E";
    records.push_back(r);
  }

  for (const db::WalRecord& r : records) {
    const std::string payload = db::EncodeWalRecord(r);
    db::WalRecord decoded;
    std::string error;
    ASSERT_TRUE(db::DecodeWalRecord(payload, &decoded, &error)) << error;
    EXPECT_EQ(decoded.kind, r.kind);
    EXPECT_EQ(decoded.request_id, r.request_id);
    EXPECT_EQ(decoded.relation, r.relation);
    EXPECT_EQ(decoded.arity, r.arity);
    EXPECT_EQ(decoded.tuples, r.tuples);
    EXPECT_EQ(decoded.dataset, r.dataset);
    EXPECT_EQ(decoded.continue_on_error, r.continue_on_error);
    EXPECT_EQ(decoded.dedup_ids, r.dedup_ids);
  }
}

TEST(WalRecordCodecTest, RejectsGarbageWithoutCrashing) {
  db::WalRecord out;
  std::string error;
  EXPECT_FALSE(db::DecodeWalRecord("", &out, &error));
  EXPECT_FALSE(db::DecodeWalRecord("\x07garbage", &out, &error));
  // Truncate a valid payload at every length: each prefix must be cleanly
  // rejected (or, for the rare self-delimiting prefix, decode to something).
  const std::string payload =
      db::EncodeWalRecord(SetRecord("edges", 2, {{1, 2}, {3, 4}}, 7));
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    db::WalRecord r;
    std::string e;
    EXPECT_FALSE(db::DecodeWalRecord(payload.substr(0, cut), &r, &e))
        << "prefix of length " << cut << " unexpectedly decoded";
  }
}

TEST(WalRecordCodecTest, RejectsNullaryRowBomb) {
  // arity=0 rows occupy no payload bytes, so the per-byte length check
  // cannot bound them; a crafted/corrupt row count must still be rejected
  // before it drives a huge reserve (never-crashes-on-garbage contract).
  std::string payload;
  payload.push_back('\1');  // kSetRelation
  for (int i = 0; i < 8; ++i) payload.push_back('\0');  // request_id = 0
  payload.push_back('\1');  // name_len = 1 (u32 LE)
  for (int i = 0; i < 3; ++i) payload.push_back('\0');
  payload.push_back('R');
  for (int i = 0; i < 4; ++i) payload.push_back('\0');  // arity = 0
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<char>(0xFF));  // rows = 2^64 - 1
  }
  db::WalRecord out;
  std::string error;
  EXPECT_FALSE(db::DecodeWalRecord(payload, &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(WalTest, AppendAndReplayRoundTrip) {
  TempDir dir;
  {
    db::Wal wal;
    std::string error;
    ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
    ASSERT_TRUE(wal.Append(SetRecord("R", 2, {{1, 2}, {2, 3}}, 11), &error))
        << error;
    ASSERT_TRUE(wal.Append(AddRecord("R", {{3, 4}}, 12), &error)) << error;
    EXPECT_EQ(wal.stats().records_appended, 2u);
    wal.Close();
  }
  db::Database db;
  db::WalRecovery rec = ReplayInto(Options(dir), &db);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.log_records, 2u);
  EXPECT_EQ(rec.snapshot_records, 0u);
  EXPECT_EQ(rec.torn_bytes_truncated, 0u);
  EXPECT_EQ(rec.request_ids, (std::vector<std::uint64_t>{11, 12}));
  EXPECT_EQ(db.Tuples("R"), (std::vector<db::Tuple>{{1, 2}, {2, 3}, {3, 4}}));
}

TEST(WalTest, ReplayOnMissingDirectoryIsCleanAndEmpty) {
  db::WalOptions options;
  options.dir = ::testing::TempDir() + "qc_wal_never_created";
  db::Database db;
  db::WalRecovery rec = ReplayInto(options, &db);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.log_records + rec.snapshot_records, 0u);
}

// Kill -9 can tear the log at any byte. Every cut must recover the longest
// valid record prefix and truncate the rest — no cut may produce an error
// or a partially-applied record.
TEST(WalTest, TornTailAtEveryByteOffsetRecoversPrefix) {
  TempDir dir;
  {
    db::Wal wal;
    std::string error;
    ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
    ASSERT_TRUE(wal.Append(SetRecord("R", 1, {{1}}), &error)) << error;
    ASSERT_TRUE(wal.Append(AddRecord("R", {{2}}), &error)) << error;
    ASSERT_TRUE(wal.Append(AddRecord("R", {{3}}), &error)) << error;
    wal.Close();
  }
  const std::string log_path = dir.path() + "/wal.log";
  const std::string full = ReadFileBytes(log_path);
  ASSERT_GT(full.size(), kHeaderBytes);

  // Record boundaries: scan the framing ourselves (u32 len, u32 crc).
  std::vector<std::size_t> boundaries = {kHeaderBytes};
  {
    std::size_t off = kHeaderBytes;
    while (off + 8 <= full.size()) {
      std::uint32_t len = 0;
      std::memcpy(&len, full.data() + off, 4);
      off += 8 + len;
      boundaries.push_back(off);
    }
    ASSERT_EQ(off, full.size());
  }

  for (std::size_t cut = kHeaderBytes; cut < full.size(); ++cut) {
    WriteFileBytes(log_path, full.substr(0, cut));
    db::Database db;
    db::WalRecovery rec = ReplayInto(Options(dir), &db);
    ASSERT_TRUE(rec.ok) << "cut at " << cut << ": " << rec.error;

    // Complete records strictly before the cut survive.
    std::size_t expect_records = 0;
    std::size_t valid_end = kHeaderBytes;
    for (std::size_t b : boundaries) {
      if (b <= cut && b > kHeaderBytes) {
        ++expect_records;
        valid_end = b;
      }
    }
    EXPECT_EQ(rec.log_records, expect_records) << "cut at " << cut;
    EXPECT_EQ(rec.torn_bytes_truncated, cut - valid_end) << "cut at " << cut;
    EXPECT_EQ(db.HasRelation("R"), expect_records > 0);
    if (expect_records > 0) {
      EXPECT_EQ(db.NumTuples("R"), expect_records);
    }
    // The torn tail is gone from disk: a second replay is clean.
    struct stat st{};
    ASSERT_EQ(::stat(log_path.c_str(), &st), 0);
    EXPECT_EQ(static_cast<std::size_t>(st.st_size), valid_end);
    db::Database db2;
    db::WalRecovery again = ReplayInto(Options(dir), &db2);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.torn_bytes_truncated, 0u) << "cut at " << cut;
    EXPECT_EQ(again.log_records, expect_records);
  }
}

TEST(WalTest, CorruptPayloadByteEndsLogAtThatRecord) {
  TempDir dir;
  {
    db::Wal wal;
    std::string error;
    ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
    ASSERT_TRUE(wal.Append(SetRecord("R", 1, {{1}}), &error)) << error;
    ASSERT_TRUE(wal.Append(AddRecord("R", {{2}}), &error)) << error;
    wal.Close();
  }
  const std::string log_path = dir.path() + "/wal.log";
  std::string bytes = ReadFileBytes(log_path);
  // Flip one bit inside the second record's payload: its CRC no longer
  // matches, so recovery keeps only the first record.
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x40);
  WriteFileBytes(log_path, bytes);

  db::Database db;
  db::WalRecovery rec = ReplayInto(Options(dir), &db);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.log_records, 1u);
  EXPECT_GT(rec.torn_bytes_truncated, 0u);
  EXPECT_EQ(db.NumTuples("R"), 1u);
}

TEST(WalTest, BadLogMagicIsAHardError) {
  TempDir dir;
  {
    db::Wal wal;
    std::string error;
    ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
    ASSERT_TRUE(wal.Append(SetRecord("R", 1, {{1}}), &error)) << error;
    wal.Close();
  }
  const std::string log_path = dir.path() + "/wal.log";
  std::string bytes = ReadFileBytes(log_path);
  bytes[0] = 'X';
  WriteFileBytes(log_path, bytes);
  db::Database db;
  db::WalRecovery rec = ReplayInto(Options(dir), &db);
  EXPECT_FALSE(rec.ok);
  EXPECT_NE(rec.error.find("magic"), std::string::npos) << rec.error;
}

TEST(WalTest, CompactionSnapshotsAndRotates) {
  TempDir dir;
  db::Database db;
  ASSERT_TRUE(db.SetRelation("R", 2, {{1, 2}, {3, 4}}));
  ASSERT_TRUE(db.SetRelation("S", 1, {{9}}));

  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wal.Append(AddRecord("R", {{100 + i, i}}), &error)) << error;
  }
  const std::uint64_t before = wal.log_bytes();
  ASSERT_TRUE(wal.Compact(db, {41, 42}, &error)) << error;
  EXPECT_LT(wal.log_bytes(), before);
  EXPECT_EQ(wal.stats().compactions, 1u);
  // Post-compaction appends land in the rotated log.
  ASSERT_TRUE(wal.Append(AddRecord("R", {{7, 7}}, 43), &error)) << error;
  wal.Close();

  db::Database recovered;
  db::WalRecovery rec = ReplayInto(Options(dir), &recovered);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.snapshot_records, 2u);  // One kSetRelation per relation.
  EXPECT_EQ(rec.log_records, 1u);
  // Dedup window from the snapshot plus the post-compaction record's id.
  EXPECT_EQ(rec.request_ids, (std::vector<std::uint64_t>{41, 42, 43}));
  EXPECT_EQ(recovered.Tuples("R"),
            (std::vector<db::Tuple>{{1, 2}, {3, 4}, {7, 7}}));
  EXPECT_EQ(recovered.Tuples("S"), (std::vector<db::Tuple>{{9}}));
}

// A kill -9 between Compact's snapshot rename and its log rotation leaves
// the new snapshot next to the old log — whose every record the snapshot
// already contains. The generation stamps must make recovery discard that
// log instead of replaying it on top of the snapshot (which would
// duplicate every previously-logged tuple).
TEST(WalTest, StaleLogAfterCompactionCrashIsNotReplayed) {
  TempDir dir;
  db::Database db;
  ASSERT_TRUE(db.SetRelation("R", 1, {{1}, {2}}));
  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
  ASSERT_TRUE(wal.Append(SetRecord("R", 1, {{1}, {2}}, 5), &error)) << error;
  const std::string old_log = ReadFileBytes(dir.path() + "/wal.log");
  ASSERT_TRUE(wal.Compact(db, {5}, &error)) << error;
  EXPECT_EQ(wal.generation(), 2u);  // Rotated one past the snapshot's.
  wal.Close();
  // Resurrect the pre-compaction log, as the crash window would leave it.
  WriteFileBytes(dir.path() + "/wal.log", old_log);

  db::Database recovered;
  db::WalRecovery rec = ReplayInto(Options(dir), &recovered);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.snapshot_records, 1u);
  EXPECT_EQ(rec.log_records, 0u);
  EXPECT_EQ(rec.stale_log_bytes_skipped, old_log.size());
  EXPECT_EQ(recovered.Tuples("R"), (std::vector<db::Tuple>{{1}, {2}}));
  EXPECT_EQ(rec.request_ids, (std::vector<std::uint64_t>{5}));

  // The stale log was discarded; a fresh Open starts a newer generation
  // whose appends the next recovery replays on top of the snapshot.
  db::Wal wal2;
  ASSERT_TRUE(wal2.Open(Options(dir), &error)) << error;
  EXPECT_EQ(wal2.generation(), 2u);
  ASSERT_TRUE(wal2.Append(AddRecord("R", {{3}}, 6), &error)) << error;
  wal2.Close();
  db::Database again;
  db::WalRecovery rec2 = ReplayInto(Options(dir), &again);
  ASSERT_TRUE(rec2.ok) << rec2.error;
  EXPECT_EQ(again.Tuples("R"), (std::vector<db::Tuple>{{1}, {2}, {3}}));
  EXPECT_EQ(rec2.request_ids, (std::vector<std::uint64_t>{5, 6}));
}

// A failed fsync persists a record whose mutation was rejected; the
// client's acknowledged retry logs a second copy of the same request_id.
// Replay must apply the id exactly once.
TEST(WalTest, ReplayAppliesDuplicateRequestIdOnlyOnce) {
  TempDir dir;
  {
    db::Wal wal;
    std::string error;
    ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
    ASSERT_TRUE(wal.Append(SetRecord("R", 1, {{1}}), &error)) << error;
    ASSERT_TRUE(wal.Append(AddRecord("R", {{2}}, 55), &error)) << error;
    ASSERT_TRUE(wal.Append(AddRecord("R", {{2}}, 55), &error)) << error;
    wal.Close();
  }
  db::Database db;
  db::WalRecovery rec = ReplayInto(Options(dir), &db);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.duplicate_records_skipped, 1u);
  EXPECT_EQ(db.Tuples("R"), (std::vector<db::Tuple>{{1}, {2}}));
  EXPECT_EQ(rec.request_ids, (std::vector<std::uint64_t>{55}));
}

TEST(WalTest, CorruptSnapshotIsAHardError) {
  TempDir dir;
  db::Database db;
  ASSERT_TRUE(db.SetRelation("R", 1, {{1}}));
  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
  ASSERT_TRUE(wal.Compact(db, {}, &error)) << error;
  wal.Close();

  const std::string snap_path = dir.path() + "/snapshot.dat";
  std::string bytes = ReadFileBytes(snap_path);
  ASSERT_GT(bytes.size(), 8u);
  // A truncated snapshot cannot happen under fsync-then-rename; if it is
  // seen anyway (disk corruption), recovery must refuse loudly.
  WriteFileBytes(snap_path, bytes.substr(0, bytes.size() - 1));
  db::Database recovered;
  db::WalRecovery rec = ReplayInto(Options(dir), &recovered);
  EXPECT_FALSE(rec.ok);
  EXPECT_NE(rec.error.find("snapshot"), std::string::npos) << rec.error;
}

TEST(WalTest, FsyncPolicyParsesAndBatchSyncs) {
  db::FsyncPolicy p;
  EXPECT_TRUE(db::ParseFsyncPolicy("always", &p));
  EXPECT_EQ(p, db::FsyncPolicy::kAlways);
  EXPECT_TRUE(db::ParseFsyncPolicy("batch", &p));
  EXPECT_EQ(p, db::FsyncPolicy::kBatch);
  EXPECT_TRUE(db::ParseFsyncPolicy("off", &p));
  EXPECT_EQ(p, db::FsyncPolicy::kOff);
  EXPECT_FALSE(db::ParseFsyncPolicy("sometimes", &p));

  TempDir dir;
  db::WalOptions options = Options(dir, db::FsyncPolicy::kBatch);
  options.batch_bytes = 1;  // Sync after every record.
  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(options, &error)) << error;
  ASSERT_TRUE(wal.Append(AddRecord("R", {{1}}), &error)) << error;
  EXPECT_GE(wal.stats().syncs, 1u);
  wal.Close();
}

// ---------------------------------------------------------------------------
// Fault-injection sweep: every WAL fault point fires and surfaces as a
// structured error (and the registry counts it), never a crash.

class WalFaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::FaultRegistry::Global().Clear();
    util::FaultRegistry::Global().ResetStats();
  }
  void Arm(const std::string& spec) {
    std::string error;
    ASSERT_TRUE(util::FaultRegistry::Global().Configure(spec, 1, &error))
        << error;
  }
  static std::uint64_t Fires(const std::string& point) {
    for (const auto& s : util::FaultRegistry::Global().stats()) {
      if (s.point == point) return s.fires;
    }
    return 0;
  }
};

TEST_F(WalFaultTest, OpenFaultFailsStructured) {
  TempDir dir;
  Arm("wal.open:once=1");
  db::Wal wal;
  std::string error;
  EXPECT_FALSE(wal.Open(Options(dir), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(wal.is_open());
  EXPECT_EQ(Fires("wal.open"), 1u);
  // The fault was once=1: the next open succeeds.
  EXPECT_TRUE(wal.Open(Options(dir), &error)) << error;
}

TEST_F(WalFaultTest, WriteFaultRejectsAppendAndKeepsLogValid) {
  TempDir dir;
  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
  ASSERT_TRUE(wal.Append(SetRecord("R", 1, {{1}}), &error)) << error;
  Arm("wal.write:once=1");
  EXPECT_FALSE(wal.Append(AddRecord("R", {{2}}), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(wal.stats().append_failures, 1u);
  EXPECT_EQ(Fires("wal.write"), 1u);
  // Rejected append left no partial bytes: the log still replays cleanly
  // and the next append goes through.
  ASSERT_TRUE(wal.Append(AddRecord("R", {{3}}), &error)) << error;
  wal.Close();
  db::Database db;
  db::WalRecovery rec = ReplayInto(Options(dir), &db);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.log_records, 2u);
  EXPECT_EQ(rec.torn_bytes_truncated, 0u);
}

TEST_F(WalFaultTest, FsyncFaultRejectsAppendUnderAlways) {
  TempDir dir;
  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(Options(dir, db::FsyncPolicy::kAlways), &error))
      << error;
  Arm("wal.fsync:once=1");
  EXPECT_FALSE(wal.Append(AddRecord("R", {{1}}), &error));
  EXPECT_NE(error.find("fsync"), std::string::npos) << error;
  EXPECT_EQ(Fires("wal.fsync"), 1u);
  wal.Close();
}

TEST_F(WalFaultTest, CompactFaultLeavesLogUsable) {
  TempDir dir;
  db::Database db;
  ASSERT_TRUE(db.SetRelation("R", 1, {{1}}));
  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
  ASSERT_TRUE(wal.Append(SetRecord("R", 1, {{2}}), &error)) << error;
  Arm("wal.compact:once=1");
  EXPECT_FALSE(wal.Compact(db, {}, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(Fires("wal.compact"), 1u);
  EXPECT_EQ(wal.stats().compactions, 0u);
  // Failed compaction must not have rotated the log.
  wal.Close();
  db::Database recovered;
  db::WalRecovery rec = ReplayInto(Options(dir), &recovered);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.log_records, 1u);
}

TEST_F(WalFaultTest, EveryRuleFiresPeriodically) {
  Arm("p:every=3");
  int fires = 0;
  for (int i = 0; i < 9; ++i) {
    if (util::FaultPoint("p")) ++fires;
  }
  EXPECT_EQ(fires, 3);
}

TEST_F(WalFaultTest, AfterRuleIsPersistent) {
  Arm("p:after=2");
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(util::FaultPoint("p"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true}));
}

TEST_F(WalFaultTest, ProbRuleIsDeterministicPerSeed) {
  Arm("p:prob=0.5");
  std::vector<bool> a;
  for (int i = 0; i < 64; ++i) a.push_back(util::FaultPoint("p"));
  util::FaultRegistry::Global().Clear();
  Arm("p:prob=0.5");
  std::vector<bool> b;
  for (int i = 0; i < 64; ++i) b.push_back(util::FaultPoint("p"));
  EXPECT_EQ(a, b);  // Same seed, same schedule.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

// ---------------------------------------------------------------------------
// MvccDatabase + WAL: log-before-apply, rejection leaves state untouched,
// recovery rebuilds the identical database.

TEST(MvccWalTest, StructuredMutationsSurviveReplay) {
  TempDir dir;
  std::uint64_t epoch_before_close = 0;
  {
    db::Wal wal;
    std::string error;
    ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
    db::MvccDatabase mvcc;
    mvcc.AttachWal(&wal);
    ASSERT_TRUE(mvcc.SetRelation("R", 2, {{1, 2}}));
    ASSERT_TRUE(mvcc.AddTuple("R", {3, 4}));
    ASSERT_TRUE(mvcc.AddTuples("R", {{5, 6}, {7, 8}}));
    ASSERT_TRUE(mvcc.MutateLogged(
        [] {
          db::WalRecord r;
          r.kind = db::WalRecord::Kind::kSetRelation;
          r.relation = "S";
          r.arity = 1;
          r.tuples = {{42}};
          return r;
        }(),
        [](db::Database& d) { return d.SetRelation("S", 1, {{42}}); }));
    epoch_before_close = mvcc.Epoch();
    wal.Close();
  }

  db::MvccDatabase recovered;
  db::WalRecovery rec =
      db::Wal::Replay(Options(dir), [&](const db::WalRecord& r) {
        switch (r.kind) {
          case db::WalRecord::Kind::kSetRelation:
            return recovered.SetRelation(r.relation, r.arity, r.tuples);
          case db::WalRecord::Kind::kAddTuples:
            return recovered.AddTuples(r.relation, r.tuples);
          default:
            return db::MutationResult::Fail("unexpected kind");
        }
      });
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.log_records, 4u);
  db::MvccSnapshot snap = recovered.Snapshot();
  EXPECT_EQ(snap.db->Tuples("R"),
            (std::vector<db::Tuple>{{1, 2}, {3, 4}, {5, 6}, {7, 8}}));
  EXPECT_EQ(snap.db->Tuples("S"), (std::vector<db::Tuple>{{42}}));
  EXPECT_EQ(recovered.Epoch(), epoch_before_close);
}

TEST(MvccWalTest, WalRejectionLeavesDatabaseAndEpochUntouched) {
  TempDir dir;
  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
  db::MvccDatabase mvcc;
  mvcc.AttachWal(&wal);
  ASSERT_TRUE(mvcc.SetRelation("R", 1, {{1}}));
  const std::uint64_t epoch = mvcc.Epoch();

  std::string cfg_error;
  ASSERT_TRUE(util::FaultRegistry::Global().Configure("wal.write:once=1", 1,
                                                      &cfg_error))
      << cfg_error;
  db::MutationResult r = mvcc.AddTuple("R", {2});
  util::FaultRegistry::Global().Clear();
  util::FaultRegistry::Global().ResetStats();

  EXPECT_FALSE(r);
  EXPECT_NE(r.message.find("wal"), std::string::npos) << r.message;
  EXPECT_EQ(mvcc.Epoch(), epoch);  // No epoch bump for a rejected write.
  EXPECT_EQ(mvcc.Snapshot().db->NumTuples("R"), 1u);
  EXPECT_EQ(mvcc.stats().wal_rejections, 1u);
  // The database is still writable after the fault clears.
  EXPECT_TRUE(mvcc.AddTuple("R", {3}));
  wal.Close();
}

TEST(MvccWalTest, FailedMutateLambdaRollsBackStagedClone) {
  TempDir dir;
  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
  db::MvccDatabase mvcc;
  mvcc.AttachWal(&wal);
  ASSERT_TRUE(mvcc.SetRelation("R", 1, {{1}}));
  const std::uint64_t epoch = mvcc.Epoch();

  db::MutationResult r = mvcc.Mutate([](db::Database& d) {
    // Mutate the staged clone, then fail: nothing may be published.
    EXPECT_TRUE(d.AddTuple("R", {2}));
    return db::MutationResult::Fail("deliberate");
  });
  EXPECT_FALSE(r);
  EXPECT_EQ(mvcc.Epoch(), epoch);
  EXPECT_EQ(mvcc.Snapshot().db->NumTuples("R"), 1u);
  wal.Close();
}

TEST(MvccWalTest, CompactionPreservesStateAcrossReplay) {
  TempDir dir;
  {
    db::Wal wal;
    std::string error;
    ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
    db::MvccDatabase mvcc;
    mvcc.AttachWal(&wal);
    ASSERT_TRUE(mvcc.SetRelation("R", 1, {{0}}));
    for (int i = 1; i <= 5; ++i) ASSERT_TRUE(mvcc.AddTuple("R", {i}));
    ASSERT_TRUE(mvcc.CompactWal({101, 102}));
    for (int i = 6; i <= 8; ++i) ASSERT_TRUE(mvcc.AddTuple("R", {i}));
    wal.Close();
  }
  db::Database db;
  db::WalRecovery rec = ReplayInto(Options(dir), &db);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.snapshot_records, 1u);
  EXPECT_EQ(rec.log_records, 3u);
  EXPECT_EQ(db.Tuples("R"), (std::vector<db::Tuple>{
                                {0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}));
  std::vector<std::uint64_t> ids = rec.request_ids;
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{101, 102}));
}

// The validate/log/apply path used for dataset mutate frames: no staged
// clone, but the same rejection guarantees as MutateLogged.
TEST(MvccWalTest, InPlaceMutationIsDurableAndReplays) {
  TempDir dir;
  {
    db::Wal wal;
    std::string error;
    ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
    db::MvccDatabase mvcc;
    mvcc.AttachWal(&wal);
    ASSERT_TRUE(mvcc.SetRelation("R", 1, {{1}}));
    ASSERT_TRUE(mvcc.MutateLoggedInPlace(
        AddRecord("R", {{2}}, 71),
        [](const db::Database& d) {
          return d.HasRelation("R")
                     ? db::MutationResult::Ok()
                     : db::MutationResult::Fail("no such relation R");
        },
        [](db::Database& d) { return d.AddTuple("R", {2}); }));
    wal.Close();
  }
  db::Database db;
  db::WalRecovery rec = ReplayInto(Options(dir), &db);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(db.Tuples("R"), (std::vector<db::Tuple>{{1}, {2}}));
  EXPECT_EQ(rec.request_ids, (std::vector<std::uint64_t>{71}));
}

TEST(MvccWalTest, InPlaceValidateFailureTouchesNothingAndLogsNothing) {
  TempDir dir;
  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
  db::MvccDatabase mvcc;
  mvcc.AttachWal(&wal);
  ASSERT_TRUE(mvcc.SetRelation("R", 1, {{1}}));
  const std::uint64_t epoch = mvcc.Epoch();
  const std::uint64_t appended = wal.stats().records_appended;
  bool apply_ran = false;
  db::MutationResult r = mvcc.MutateLoggedInPlace(
      AddRecord("R", {{2}}),
      [](const db::Database&) { return db::MutationResult::Fail("nope"); },
      [&](db::Database& d) {
        apply_ran = true;
        return d.AddTuple("R", {2});
      });
  EXPECT_FALSE(r);
  EXPECT_FALSE(apply_ran);
  EXPECT_EQ(mvcc.Epoch(), epoch);
  EXPECT_EQ(wal.stats().records_appended, appended);
  EXPECT_EQ(mvcc.Snapshot().db->Tuples("R"), (std::vector<db::Tuple>{{1}}));
}

TEST_F(WalFaultTest, InPlaceWalRejectionSkipsApply) {
  TempDir dir;
  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
  db::MvccDatabase mvcc;
  mvcc.AttachWal(&wal);
  ASSERT_TRUE(mvcc.SetRelation("R", 1, {{1}}));
  Arm("wal.write:once=1");
  const std::uint64_t epoch = mvcc.Epoch();
  bool apply_ran = false;
  db::MutationResult r = mvcc.MutateLoggedInPlace(
      AddRecord("R", {{2}}),
      [](const db::Database&) { return db::MutationResult::Ok(); },
      [&](db::Database& d) {
        apply_ran = true;
        return d.AddTuple("R", {2});
      });
  EXPECT_FALSE(r);
  EXPECT_FALSE(apply_ran);
  EXPECT_EQ(mvcc.Epoch(), epoch);
  EXPECT_EQ(mvcc.stats().wal_rejections, 1u);
  // The fault is one-shot: the same mutation succeeds on retry.
  EXPECT_TRUE(mvcc.MutateLoggedInPlace(
      AddRecord("R", {{2}}),
      [](const db::Database&) { return db::MutationResult::Ok(); },
      [](db::Database& d) { return d.AddTuple("R", {2}); }));
  EXPECT_EQ(mvcc.Snapshot().db->Tuples("R"),
            (std::vector<db::Tuple>{{1}, {2}}));
}

// The fsync-failure crash window end to end: the record's bytes reach the
// disk, the sync fails, the mutation is rejected (retryable code 7), and
// the client retries with the same idempotency id. The log then holds two
// copies of that id; recovery must apply it once.
TEST_F(WalFaultTest, FsyncFailureRetryDoesNotDoubleApplyOnRecovery) {
  TempDir dir;
  {
    db::Wal wal;
    std::string error;
    ASSERT_TRUE(wal.Open(Options(dir, db::FsyncPolicy::kAlways), &error))
        << error;
    db::MvccDatabase mvcc;
    mvcc.AttachWal(&wal);
    ASSERT_TRUE(mvcc.SetRelation("R", 1, {{1}}));
    Arm("wal.fsync:once=1");
    EXPECT_FALSE(mvcc.MutateLoggedInPlace(
        AddRecord("R", {{2}}, 91),
        [](const db::Database&) { return db::MutationResult::Ok(); },
        [](db::Database& d) { return d.AddTuple("R", {2}); }));
    EXPECT_TRUE(mvcc.MutateLoggedInPlace(
        AddRecord("R", {{2}}, 91),
        [](const db::Database&) { return db::MutationResult::Ok(); },
        [](db::Database& d) { return d.AddTuple("R", {2}); }));
    wal.Close();
  }
  db::Database db;
  db::WalRecovery rec = ReplayInto(Options(dir), &db);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.duplicate_records_skipped, 1u);
  EXPECT_EQ(rec.request_ids, (std::vector<std::uint64_t>{91}));
  EXPECT_EQ(db.Tuples("R"), (std::vector<db::Tuple>{{1}, {2}}));
}

TEST(MvccWalTest, EmptyAddTuplesBatchLogsNothing) {
  TempDir dir;
  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(Options(dir), &error)) << error;
  db::MvccDatabase mvcc;
  mvcc.AttachWal(&wal);
  ASSERT_TRUE(mvcc.SetRelation("R", 2, {{1, 2}}));

  const std::uint64_t records_before = wal.stats().records_appended;
  const std::uint64_t epoch_before = mvcc.Epoch();
  // A zero-record batch must not reach the WAL: a durable no-op record
  // would replay as an extra epoch bump and desync recovered epochs from
  // the acknowledged history.
  ASSERT_TRUE(mvcc.AddTuples("R", {}));
  EXPECT_EQ(wal.stats().records_appended, records_before);
  EXPECT_EQ(mvcc.Epoch(), epoch_before);
}

}  // namespace
}  // namespace qc
