#include <gtest/gtest.h>

#include <algorithm>

#include "graph/cliques.h"
#include "graph/generators.h"
#include "graph/vertexcover.h"
#include "reductions/np_reductions.h"
#include "sat/cnf.h"
#include "sat/generators.h"
#include "util/rng.h"

namespace qc::reductions {
namespace {

class CliqueFromSatTest : public ::testing::TestWithParam<int> {};

TEST_P(CliqueFromSatTest, SatisfiableIffCliqueOfSizeM) {
  util::Rng rng(8000 + GetParam());
  int n = 4 + GetParam() % 4;
  int m = 3 + static_cast<int>(rng.NextBounded(5));
  sat::CnfFormula f = sat::RandomKSat(n, m, 3, &rng);
  CliqueFromSatReduction red = CliqueFromSat(f);
  EXPECT_EQ(red.target_clique_size, m);
  EXPECT_EQ(red.graph.num_vertices(), 3 * m);
  auto clique =
      graph::FindKCliqueBruteForce(red.graph, red.target_clique_size);
  bool satisfiable = sat::SolveBruteForce(f).satisfiable;
  ASSERT_EQ(clique.has_value(), satisfiable) << "n=" << n << " m=" << m;
  if (clique) {
    EXPECT_TRUE(f.Evaluate(red.DecodeAssignment(*clique, n)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliqueFromSatTest, ::testing::Range(0, 20));

TEST(CliqueFromSatTest, UnsatContradiction) {
  sat::CnfFormula f;
  f.num_vars = 1;
  f.AddClause({1});
  f.AddClause({-1});
  CliqueFromSatReduction red = CliqueFromSat(f);
  EXPECT_FALSE(graph::FindKCliqueBruteForce(red.graph, 2).has_value());
}

TEST(ComplementIdentityTest, CoverIndependentSetCliqueTriangle) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    graph::Graph g = graph::RandomGnp(12, 0.4, &rng);
    std::vector<int> cover = graph::MinVertexCover(g);
    std::vector<int> rest = ComplementVertexSet(g, cover);
    // V \ cover is independent in G...
    for (std::size_t i = 0; i < rest.size(); ++i) {
      for (std::size_t j = i + 1; j < rest.size(); ++j) {
        EXPECT_FALSE(g.HasEdge(rest[i], rest[j]));
      }
    }
    // ...and a clique in the complement.
    graph::Graph gc = ComplementGraph(g);
    EXPECT_TRUE(graph::IsClique(gc, rest));
    // Sizes: alpha(G) = n - tau(G) = omega(complement).
    EXPECT_EQ(graph::MaxClique(gc).size(),
              static_cast<std::size_t>(g.num_vertices()) - cover.size());
  }
}

}  // namespace
}  // namespace qc::reductions
