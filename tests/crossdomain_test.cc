// Cross-domain property tests: the Section 2 equivalences must commute.
// One instance is pushed through every representation (CSP, join query,
// microstructure graph, relational structure) and every solver, and all
// answers/counts must coincide.

#include <gtest/gtest.h>

#include "core/autosolver.h"
#include "csp/generators.h"
#include "csp/solver.h"
#include "csp/treedp.h"
#include "db/generic_join.h"
#include "graph/coloring.h"
#include "graph/generators.h"
#include "graph/homomorphism.h"
#include "reductions/query_reductions.h"
#include "reductions/sat_reductions.h"
#include "sat/cdcl.h"
#include "sat/dpll.h"
#include "sat/generators.h"
#include "structures/structure.h"
#include "util/rng.h"

namespace qc {
namespace {

class FourDomainsTest : public ::testing::TestWithParam<int> {};

TEST_P(FourDomainsTest, SolutionCountsCommuteAcrossRepresentations) {
  util::Rng rng(5000 + GetParam());
  graph::Graph structure = graph::RandomGnp(6, 0.5, &rng);
  csp::CspInstance csp = csp::RandomBinaryCsp(structure, 3, 0.4, &rng);

  // 1. Direct counts: brute force, backtracking, treewidth DP.
  std::uint64_t brute = csp::CountSolutionsBruteForce(csp);
  csp::BacktrackingSolver solver;
  EXPECT_EQ(solver.CountSolutions(csp, nullptr), brute);
  EXPECT_EQ(csp::SolveTreewidthDp(csp).solution_count, brute);

  // 2. CSP -> join query -> Generic Join (Section 2.2).
  reductions::CspToQueryReduction query = reductions::JoinQueryFromCsp(csp);
  EXPECT_EQ(db::GenericJoin(query.query, query.db).Count(), brute);

  // 3. CSP -> microstructure -> partitioned subgraph isomorphism
  //    (Section 2.3; decision only).
  csp::Microstructure ms = csp::BuildMicrostructure(csp);
  auto psi = graph::FindPartitionedSubgraphIsomorphism(
      csp.PrimalGraph(), ms.graph, ms.class_of);
  EXPECT_EQ(psi.has_value(), brute > 0);

  // 4. Auto-router agrees.
  core::AutoCspResult routed = core::SolveCspAuto(csp);
  EXPECT_EQ(routed.satisfiable, brute > 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FourDomainsTest, ::testing::Range(0, 20));

class HomCountChannelsTest : public ::testing::TestWithParam<int> {};

TEST_P(HomCountChannelsTest, GraphAndStructureAndCspHomCountsAgree) {
  util::Rng rng(5100 + GetParam());
  graph::Graph h = graph::RandomGnp(5, 0.5, &rng);
  graph::Graph g = graph::RandomGnp(4, 0.6, &rng);
  std::uint64_t via_graph = graph::CountHomomorphisms(h, g);
  structures::Structure sh = structures::Structure::FromGraph(h);
  structures::Structure sg = structures::Structure::FromGraph(g);
  EXPECT_EQ(structures::CountHomomorphisms(sh, sg), via_graph);
  EXPECT_EQ(structures::CountHomomorphismsTreewidth(sh, sg), via_graph);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HomCountChannelsTest, ::testing::Range(0, 15));

class SatPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(SatPipelineTest, ModelCountSurvivesSatToCspToQuery) {
  util::Rng rng(5200 + GetParam());
  int n = 5 + GetParam() % 4;
  sat::CnfFormula f = sat::RandomKSat(n, 3 * n, 3, &rng);
  // Reference model count.
  std::uint64_t models = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<bool> a(n);
    for (int v = 0; v < n; ++v) a[v] = (mask >> v) & 1u;
    if (f.Evaluate(a)) ++models;
  }
  csp::CspInstance csp = reductions::CspFromSat(f);
  EXPECT_EQ(csp::CountSolutionsBruteForce(csp), models);
  reductions::CspToQueryReduction q = reductions::JoinQueryFromCsp(csp);
  EXPECT_EQ(db::GenericJoin(q.query, q.db).Count(), models);
  // Solver ladder agrees on the decision.
  bool satisfiable = models > 0;
  EXPECT_EQ(sat::SolveDpll(f).satisfiable, satisfiable);
  EXPECT_EQ(sat::CdclSolver().Solve(f).satisfiable, satisfiable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatPipelineTest, ::testing::Range(0, 15));

TEST(CrossDomainTest, ColoringEverywhere) {
  // One 3-colouring question through five channels.
  util::Rng rng(7);
  graph::Graph g = graph::RandomGnp(9, 0.35, &rng);
  bool expected = graph::FindKColoring(g, 3).has_value();
  // Graph homomorphism into K_3.
  EXPECT_EQ(graph::FindHomomorphism(g, graph::Complete(3)).has_value(),
            expected);
  // CSP with disequality constraints.
  csp::CspInstance csp = csp::ColoringCsp(g, 3);
  EXPECT_EQ(csp::BacktrackingSolver().Solve(csp).found, expected);
  // Structure homomorphism.
  structures::Structure sg = structures::Structure::FromGraph(g);
  structures::Structure k3 =
      structures::Structure::FromGraph(graph::Complete(3));
  EXPECT_EQ(structures::FindHomomorphism(sg, k3).has_value(), expected);
  // Join query emptiness via the CSP -> query reduction.
  reductions::CspToQueryReduction q = reductions::JoinQueryFromCsp(csp);
  EXPECT_EQ(!db::GenericJoin(q.query, q.db).IsEmpty(), expected);
}

}  // namespace
}  // namespace qc
