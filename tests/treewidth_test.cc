#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/treewidth.h"
#include "util/rng.h"

namespace qc::graph {
namespace {

TEST(TreewidthTest, KnownWidths) {
  EXPECT_EQ(ExactTreewidth(Path(8)).treewidth, 1);
  EXPECT_EQ(ExactTreewidth(Cycle(8)).treewidth, 2);
  EXPECT_EQ(ExactTreewidth(Complete(6)).treewidth, 5);
  EXPECT_EQ(ExactTreewidth(CompleteBipartite(3, 5)).treewidth, 3);
  EXPECT_EQ(ExactTreewidth(Grid(3, 3)).treewidth, 3);
  EXPECT_EQ(ExactTreewidth(Grid(2, 6)).treewidth, 2);
  EXPECT_EQ(ExactTreewidth(Star(9)).treewidth, 1);
}

TEST(TreewidthTest, SingleVertexAndEmpty) {
  EXPECT_EQ(ExactTreewidth(Graph(1)).treewidth, 0);
  EXPECT_EQ(ExactTreewidth(Graph(3)).treewidth, 0);  // No edges.
  EXPECT_EQ(ExactTreewidth(Graph(0)).treewidth, -1);
}

TEST(TreewidthTest, ExactDecompositionValidates) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomGnp(12, 0.3, &rng);
    auto res = ExactTreewidth(g);
    EXPECT_EQ(res.decomposition.Validate(g), std::nullopt);
    EXPECT_EQ(res.decomposition.Width(), res.treewidth);
  }
}

TEST(TreewidthTest, KTreeHasTreewidthExactlyK) {
  util::Rng rng(2);
  for (int k : {1, 2, 3, 4}) {
    Graph g = RandomKTree(12, k, &rng);
    EXPECT_EQ(ExactTreewidth(g).treewidth, k) << "k=" << k;
  }
}

TEST(TreewidthTest, PartialKTreeHasTreewidthAtMostK) {
  util::Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = RandomPartialKTree(13, 3, 0.6, &rng);
    EXPECT_LE(ExactTreewidth(g).treewidth, 3);
  }
}

TEST(TreewidthTest, HeuristicsUpperBoundExact) {
  util::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomGnp(13, 0.25, &rng);
    int exact = ExactTreewidth(g).treewidth;
    TreewidthUpperBound ub = HeuristicTreewidth(g);
    EXPECT_GE(ub.width, exact);
    EXPECT_EQ(ub.decomposition.Validate(g), std::nullopt);
    EXPECT_EQ(ub.decomposition.Width(), ub.width);
    EXPECT_LE(TreewidthLowerBound(g), exact);
  }
}

TEST(TreewidthTest, HeuristicExactOnTreesAndCliques) {
  util::Rng rng(5);
  Graph t = RandomTree(30, &rng);
  EXPECT_EQ(HeuristicTreewidth(t).width, 1);
  EXPECT_EQ(HeuristicTreewidth(Complete(10)).width, 9);
}

TEST(TreewidthTest, EliminationOrderWidthIdentityOrder) {
  // Eliminating a path in endpoint-first order gives width 1.
  std::vector<int> order = {0, 1, 2, 3, 4};
  EXPECT_EQ(EliminationOrderWidth(Path(5), order), 1);
  // Eliminating the middle of a path first gives width 2? No: eliminating
  // vertex 2 of P_5 has live neighbourhood {1,3}, width 2.
  std::vector<int> bad = {2, 0, 1, 3, 4};
  EXPECT_EQ(EliminationOrderWidth(Path(5), bad), 2);
}

TEST(TreewidthTest, ValidateCatchesBrokenDecompositions) {
  Graph g = Path(3);
  // Missing edge coverage.
  TreeDecomposition td;
  td.bags = {{0, 1}, {2}};
  td.edges = {{0, 1}};
  EXPECT_NE(td.Validate(g), std::nullopt);
  // Disconnected occurrence of vertex 1.
  TreeDecomposition td2;
  td2.bags = {{0, 1}, {2}, {1, 2}};
  td2.edges = {{0, 1}, {1, 2}};
  EXPECT_NE(td2.Validate(g), std::nullopt);
  // Correct one.
  TreeDecomposition td3;
  td3.bags = {{0, 1}, {1, 2}};
  td3.edges = {{0, 1}};
  EXPECT_EQ(td3.Validate(g), std::nullopt);
}

TEST(TreewidthTest, DecompositionFromOrderHandlesDisconnected) {
  Graph g = Path(3).DisjointUnion(Path(3));
  auto res = ExactTreewidth(g);
  EXPECT_EQ(res.treewidth, 1);
  EXPECT_EQ(res.decomposition.Validate(g), std::nullopt);
}

class TreewidthRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(TreewidthRandomTest, ExactIsConsistentWithDecomposition) {
  util::Rng rng(100 + GetParam());
  double p = 0.15 + 0.05 * (GetParam() % 5);
  Graph g = RandomGnp(11, p, &rng);
  auto res = ExactTreewidth(g);
  ASSERT_EQ(res.decomposition.Validate(g), std::nullopt);
  EXPECT_EQ(res.decomposition.Width(), res.treewidth);
  EXPECT_EQ(EliminationOrderWidth(g, res.elimination_order), res.treewidth);
  EXPECT_GE(res.treewidth, TreewidthLowerBound(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreewidthRandomTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace qc::graph
