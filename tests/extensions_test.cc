// Tests for the extension components: WalkSAT, generalized arc consistency,
// DTW / discrete Fréchet, graph distances, list homomorphism, and the query
// text parser.

#include <gtest/gtest.h>

#include <cmath>

#include "csp/gac.h"
#include "csp/generators.h"
#include "csp/solver.h"
#include "db/generic_join.h"
#include "db/parser.h"
#include "finegrained/curves.h"
#include "graph/coloring.h"
#include "graph/distance.h"
#include "graph/generators.h"
#include "graph/homomorphism.h"
#include "sat/dpll.h"
#include "sat/generators.h"
#include "sat/walksat.h"
#include "util/rng.h"

namespace qc {
namespace {

TEST(WalkSatTest, FindsPlantedSolutions) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    sat::CnfFormula f = sat::PlantedKSat(40, 150, 3, &rng);
    sat::SatResult r = sat::SolveWalkSat(f, &rng);
    ASSERT_TRUE(r.satisfiable) << trial;
    EXPECT_TRUE(f.Evaluate(r.assignment));
  }
}

TEST(WalkSatTest, NeverClaimsSatOnUnsat) {
  util::Rng rng(2);
  // Density 8: unsatisfiable with overwhelming probability.
  sat::CnfFormula f = sat::RandomKSat(20, 160, 3, &rng);
  ASSERT_FALSE(sat::SolveDpll(f).satisfiable);
  sat::WalkSatOptions options;
  options.max_flips = 5000;
  options.restarts = 3;
  sat::SatResult r = sat::SolveWalkSat(f, &rng, options);
  EXPECT_FALSE(r.satisfiable);
}

TEST(WalkSatTest, EmptyClauseRejected) {
  util::Rng rng(3);
  sat::CnfFormula f;
  f.num_vars = 2;
  f.AddClause({});
  EXPECT_FALSE(sat::SolveWalkSat(f, &rng).satisfiable);
}

TEST(GacTest, MatchesAc3OnBinaryInstances) {
  util::Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    graph::Graph structure = graph::RandomGnp(7, 0.5, &rng);
    csp::CspInstance csp = csp::RandomBinaryCsp(structure, 4, 0.45, &rng);
    csp::AcResult ac3 = csp::EnforceArcConsistency(csp);
    csp::AcResult gac = csp::EnforceGeneralizedArcConsistency(csp);
    EXPECT_EQ(ac3.consistent, gac.consistent) << trial;
    if (ac3.consistent) {
      EXPECT_EQ(ac3.alive, gac.alive) << trial;
    }
  }
}

TEST(GacTest, PrunesTernaryConstraints) {
  // x + y + z == 4 over domain {0,1,2}: value 0... every value has support
  // except none pruned; tighten: x + y + z == 6 forces all = 2.
  csp::CspInstance csp;
  csp.num_vars = 3;
  csp.domain_size = 3;
  csp::Relation sum6(3);
  sum6.Add({2, 2, 2});
  csp.AddConstraint({0, 1, 2}, std::move(sum6));
  csp::AcResult gac = csp::EnforceGeneralizedArcConsistency(csp);
  ASSERT_TRUE(gac.consistent);
  for (int v = 0; v < 3; ++v) {
    EXPECT_EQ(gac.alive[v], (std::vector<char>{0, 0, 1}));
  }
}

TEST(GacTest, SoundnessOnRandomTernary) {
  util::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    csp::CspInstance csp;
    csp.num_vars = 5;
    csp.domain_size = 3;
    for (int c = 0; c < 4; ++c) {
      csp::Relation rel(3);
      for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
          for (int d = 0; d < 3; ++d) {
            if (rng.NextBool(0.55)) rel.Add({a, b, d});
          }
        }
      }
      csp.AddConstraint(rng.Sample(5, 3), std::move(rel));
    }
    csp::AcResult gac = csp::EnforceGeneralizedArcConsistency(csp);
    // Every brute-force solution must survive GAC.
    std::uint64_t solutions = 0;
    std::vector<int> assignment(5, 0);
    while (true) {
      if (csp.Check(assignment)) {
        ++solutions;
        ASSERT_TRUE(gac.consistent);
        for (int v = 0; v < 5; ++v) {
          EXPECT_TRUE(gac.alive[v][assignment[v]]);
        }
      }
      int i = 0;
      while (i < 5 && ++assignment[i] == 3) {
        assignment[i] = 0;
        ++i;
      }
      if (i == 5) break;
    }
    if (!gac.consistent) {
      EXPECT_EQ(solutions, 0u);
    }
  }
}

TEST(GacTest, PreprocessedSolveAgreesWithPlainSolve) {
  util::Rng rng(9);
  for (int trial = 0; trial < 12; ++trial) {
    graph::Graph structure = graph::RandomGnp(7, 0.5, &rng);
    csp::CspInstance csp = csp::RandomBinaryCsp(structure, 4, 0.5, &rng);
    csp::CspSolution pre = csp::SolveWithGacPreprocessing(csp);
    csp::CspSolution plain = csp::BacktrackingSolver().Solve(csp);
    EXPECT_EQ(pre.found, plain.found) << trial;
    if (pre.found) {
      EXPECT_TRUE(csp.Check(pre.assignment));
    }
  }
}

TEST(DtwTest, KnownValues) {
  EXPECT_DOUBLE_EQ(finegrained::DynamicTimeWarping({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(finegrained::DynamicTimeWarping({1, 2, 3}, {1, 2, 3}),
                   0.0);
  // Time shift is free under warping: [1,1,2,3] vs [1,2,2,3].
  EXPECT_DOUBLE_EQ(
      finegrained::DynamicTimeWarping({1, 1, 2, 3}, {1, 2, 2, 3}), 0.0);
  // Constant offset: each of 3 alignments pays (1)^2.
  EXPECT_DOUBLE_EQ(finegrained::DynamicTimeWarping({0, 0, 0}, {1, 1, 1}),
                   3.0);
  // Empty vs nonempty is infinite.
  EXPECT_TRUE(std::isinf(finegrained::DynamicTimeWarping({}, {1.0})));
}

TEST(FrechetTest, KnownValues) {
  using finegrained::Point;
  std::vector<Point> a = {{0, 0}, {1, 0}, {2, 0}};
  std::vector<Point> b = {{0, 1}, {1, 1}, {2, 1}};
  EXPECT_DOUBLE_EQ(finegrained::DiscreteFrechet(a, b), 1.0);
  EXPECT_DOUBLE_EQ(finegrained::DiscreteFrechet(a, a), 0.0);
  // Frechet >= endpoint distances.
  std::vector<Point> c = {{0, 0}, {5, 5}};
  EXPECT_GE(finegrained::DiscreteFrechet(a, c), std::sqrt(18.0) - 1e-9);
}

TEST(FrechetTest, SymmetricAndBoundedByMaxPairwise) {
  util::Rng rng(6);
  auto a = finegrained::RandomCurve(12, 1.0, &rng);
  auto b = finegrained::RandomCurve(15, 1.0, &rng);
  double ab = finegrained::DiscreteFrechet(a, b);
  double ba = finegrained::DiscreteFrechet(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GE(ab, 0.0);
}

TEST(DistanceTest, BfsAndDiameter) {
  EXPECT_EQ(graph::ExactDiameter(graph::Path(10)), 9);
  EXPECT_EQ(graph::ExactDiameter(graph::Cycle(10)), 5);
  EXPECT_EQ(graph::ExactDiameter(graph::Complete(6)), 1);
  EXPECT_EQ(graph::ExactDiameter(graph::Grid(3, 4)), 5);
  // Disconnected.
  EXPECT_EQ(graph::ExactDiameter(graph::Path(3).DisjointUnion(graph::Path(2))),
            -1);
  auto dist = graph::BfsDistances(graph::Path(5), 2);
  EXPECT_EQ(dist, (std::vector<int>{2, 1, 0, 1, 2}));
}

TEST(DistanceTest, TwoApproxWithinFactor) {
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    graph::Graph g = graph::RandomGnp(30, 0.12, &rng);
    int exact = graph::ExactDiameter(g);
    int approx = graph::DiameterTwoApprox(g);
    if (exact < 0) {
      EXPECT_EQ(approx, -1);
      continue;
    }
    EXPECT_LE(approx, exact);
    EXPECT_GE(2 * approx, exact);
  }
}

TEST(ListHomomorphismTest, RestrictsImages) {
  // P_3 into K_3 with singleton lists forcing a specific colouring.
  graph::Graph h = graph::Path(3);
  graph::Graph g = graph::Complete(3);
  std::vector<std::vector<int>> lists = {{0}, {1}, {0}};
  auto f = graph::FindListHomomorphism(h, g, lists);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, (std::vector<int>{0, 1, 0}));
  // Conflicting lists: middle vertex must differ from both neighbours.
  std::vector<std::vector<int>> bad = {{0}, {0}, {0}};
  EXPECT_FALSE(graph::FindListHomomorphism(h, g, bad).has_value());
}

TEST(ListHomomorphismTest, FullListsEqualPlainHomomorphism) {
  util::Rng rng(8);
  graph::Graph h = graph::RandomGnp(6, 0.5, &rng);
  graph::Graph g = graph::RandomGnp(5, 0.6, &rng);
  std::vector<std::vector<int>> full(h.num_vertices());
  for (auto& list : full) {
    for (int v = 0; v < g.num_vertices(); ++v) list.push_back(v);
  }
  EXPECT_EQ(graph::FindListHomomorphism(h, g, full).has_value(),
            graph::FindHomomorphism(h, g).has_value());
}

TEST(ParserTest, ParsesTriangleQuery) {
  auto q = db::ParseJoinQuery("R1(a, b), R2(a, c), R3(b, c)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->atoms.size(), 3u);
  EXPECT_EQ(q->atoms[0].relation, "R1");
  EXPECT_EQ(q->atoms[2].attributes, (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(q->AttributeOrder(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParserTest, WhitespaceAndRepeatedAttributes) {
  auto q = db::ParseJoinQuery("  E ( x  y )   E(y x)  ");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->atoms.size(), 2u);
  EXPECT_EQ(q->atoms[1].attributes, (std::vector<std::string>{"y", "x"}));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(db::ParseJoinQuery("").has_value());
  EXPECT_FALSE(db::ParseJoinQuery("R(a").has_value());
  EXPECT_FALSE(db::ParseJoinQuery("R()").has_value());
  EXPECT_FALSE(db::ParseJoinQuery("(a,b)").has_value());
  EXPECT_FALSE(db::ParseJoinQuery("R(a,1b)").has_value());
  auto r = db::ParseJoinQuery("R(a,1b)");
  EXPECT_FALSE(r.error.message.empty());
  EXPECT_EQ(r.error.line, 1);
  EXPECT_EQ(r.error.column, 5);  // The '1' of "1b".
  EXPECT_NE(r.error.ToString().find("column 5"), std::string::npos);
}

TEST(ParserTest, TuplesRoundTrip) {
  auto tuples = db::ParseTuples("1 2\n3, 4 # comment\n\n5 6\n");
  ASSERT_TRUE(tuples.has_value());
  EXPECT_EQ(*tuples, (std::vector<db::Tuple>{{1, 2}, {3, 4}, {5, 6}}));
  EXPECT_FALSE(db::ParseTuples("1 2\n3\n").has_value());
  auto bad = db::ParseTuples("1 2\n3 x\n");
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error.line, 2);
  EXPECT_EQ(bad.error.column, 3);  // The 'x'.
}

TEST(ParserTest, ParsedQueryEvaluates) {
  auto q = db::ParseJoinQuery("R(a,b) S(b,c)");
  ASSERT_TRUE(q.has_value());
  db::Database d;
  d.SetRelation("R", 2, *db::ParseTuples("1 2\n2 3"));
  d.SetRelation("S", 2, *db::ParseTuples("2 5\n3 6"));
  EXPECT_EQ(db::GenericJoin(*q, d).Count(), 2u);
}

}  // namespace
}  // namespace qc
