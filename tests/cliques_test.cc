#include <gtest/gtest.h>

#include <algorithm>

#include "graph/cliques.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace qc::graph {
namespace {

TEST(CliquesTest, CompleteGraphHasAllCliques) {
  Graph g = Complete(6);
  for (int k = 0; k <= 6; ++k) {
    auto c = FindKCliqueBruteForce(g, k);
    ASSERT_TRUE(c.has_value()) << k;
    EXPECT_EQ(c->size(), static_cast<std::size_t>(k));
    EXPECT_TRUE(IsClique(g, *c));
  }
  EXPECT_FALSE(FindKCliqueBruteForce(g, 7).has_value());
}

TEST(CliquesTest, CountsOnCompleteGraph) {
  // C(6, 3) = 20, C(6, 4) = 15.
  Graph g = Complete(6);
  EXPECT_EQ(CountKCliques(g, 3), 20u);
  EXPECT_EQ(CountKCliques(g, 4), 15u);
  EXPECT_EQ(CountKCliques(g, 0), 1u);
  EXPECT_EQ(CountKCliques(g, 6), 1u);
  EXPECT_EQ(CountKCliques(g, 7), 0u);
}

TEST(CliquesTest, BipartiteHasNoTriangle) {
  Graph g = CompleteBipartite(5, 5);
  EXPECT_FALSE(FindKCliqueBruteForce(g, 3).has_value());
  EXPECT_FALSE(FindKCliqueNesetrilPoljak(g, 3).has_value());
}

TEST(CliquesTest, MaxCliqueOnKnownGraphs) {
  EXPECT_EQ(MaxClique(Complete(5)).size(), 5u);
  EXPECT_EQ(MaxClique(Cycle(7)).size(), 2u);
  EXPECT_EQ(MaxClique(CompleteBipartite(4, 4)).size(), 2u);
  EXPECT_EQ(MaxClique(Graph(4)).size(), 1u);
  EXPECT_EQ(MaxClique(Graph(0)).size(), 0u);
}

TEST(CliquesTest, PlantedCliqueFound) {
  util::Rng rng(1);
  std::vector<int> planted;
  Graph g = PlantedClique(35, 0.2, 6, &rng, &planted);
  auto bf = FindKCliqueBruteForce(g, 6);
  ASSERT_TRUE(bf.has_value());
  EXPECT_TRUE(IsClique(g, *bf));
  auto np = FindKCliqueNesetrilPoljak(g, 6);
  ASSERT_TRUE(np.has_value());
  EXPECT_EQ(np->size(), 6u);
  EXPECT_TRUE(IsClique(g, *np));
  EXPECT_GE(MaxClique(g).size(), 6u);
}

class CliqueAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(CliqueAgreementTest, BruteForceAndNesetrilPoljakAgree) {
  util::Rng rng(200 + GetParam());
  double p = 0.3 + 0.04 * (GetParam() % 8);
  Graph g = RandomGnp(24, p, &rng);
  for (int k = 3; k <= 6; ++k) {
    auto bf = FindKCliqueBruteForce(g, k);
    auto np = FindKCliqueNesetrilPoljak(g, k);
    EXPECT_EQ(bf.has_value(), np.has_value()) << "k=" << k;
    if (np) {
      EXPECT_EQ(np->size(), static_cast<std::size_t>(k));
      EXPECT_TRUE(IsClique(g, *np));
      // Vertices must be distinct.
      auto v = *np;
      std::sort(v.begin(), v.end());
      EXPECT_EQ(std::unique(v.begin(), v.end()), v.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliqueAgreementTest, ::testing::Range(0, 12));

TEST(CliquesTest, MaxCliqueMatchesBruteForceOnRandom) {
  util::Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = RandomGnp(18, 0.45, &rng);
    std::size_t omega = MaxClique(g).size();
    EXPECT_TRUE(
        FindKCliqueBruteForce(g, static_cast<int>(omega)).has_value());
    EXPECT_FALSE(
        FindKCliqueBruteForce(g, static_cast<int>(omega) + 1).has_value());
  }
}

TEST(CliquesTest, EnumerateKCliquesDistinctAndComplete) {
  util::Rng rng(4);
  Graph g = RandomGnp(14, 0.5, &rng);
  auto cliques = EnumerateKCliques(g, 3);
  // All distinct and valid.
  for (const auto& c : cliques) {
    EXPECT_TRUE(IsClique(g, c));
    EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
  }
  auto copy = cliques;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(std::unique(copy.begin(), copy.end()), copy.end());
  // Count agrees with a naive triple loop.
  std::uint64_t naive = 0;
  for (int a = 0; a < 14; ++a) {
    for (int b = a + 1; b < 14; ++b) {
      for (int c = b + 1; c < 14; ++c) {
        if (g.HasEdge(a, b) && g.HasEdge(a, c) && g.HasEdge(b, c)) ++naive;
      }
    }
  }
  EXPECT_EQ(cliques.size(), naive);
}

TEST(CliquesTest, NesetrilPoljakNonDivisibleK) {
  // k = 4 and k = 5 exercise the unequal part sizes.
  util::Rng rng(5);
  std::vector<int> planted;
  Graph g = PlantedClique(26, 0.25, 5, &rng, &planted);
  auto c4 = FindKCliqueNesetrilPoljak(g, 4);
  ASSERT_TRUE(c4.has_value());
  EXPECT_EQ(c4->size(), 4u);
  EXPECT_TRUE(IsClique(g, *c4));
  auto c5 = FindKCliqueNesetrilPoljak(g, 5);
  ASSERT_TRUE(c5.has_value());
  EXPECT_EQ(c5->size(), 5u);
  EXPECT_TRUE(IsClique(g, *c5));
}

}  // namespace
}  // namespace qc::graph
