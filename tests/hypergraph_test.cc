#include <gtest/gtest.h>

#include "graph/hypergraph.h"
#include "util/rng.h"

namespace qc::graph {
namespace {

using util::Fraction;

Hypergraph TriangleQueryHypergraph() {
  // R1(a,b) |><| R2(a,c) |><| R3(b,c): the running example of Section 3.
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({0, 2});
  h.AddEdge({1, 2});
  return h;
}

TEST(HypergraphTest, BasicAccessors) {
  Hypergraph h = TriangleQueryHypergraph();
  EXPECT_EQ(h.num_vertices(), 3);
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_EQ(h.EdgesContaining(0), (std::vector<int>{0, 1}));
  EXPECT_TRUE(h.IsUniform(2));
  EXPECT_TRUE(h.CoversAllVertices());
}

TEST(HypergraphTest, EdgeDeduplicatesVertices) {
  Hypergraph h(4);
  h.AddEdge({2, 1, 2, 3});
  EXPECT_EQ(h.Edge(0), (std::vector<int>{1, 2, 3}));
}

TEST(HypergraphTest, PrimalGraph) {
  Hypergraph h(4);
  h.AddEdge({0, 1, 2});
  h.AddEdge({2, 3});
  Graph g = h.PrimalGraph();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_EQ(g.num_edges(), 4);
}

TEST(FractionalCoverTest, TriangleIsThreeHalves) {
  // The paper's flagship example: rho*(triangle) = 3/2.
  auto fc = FractionalEdgeCoverNumber(TriangleQueryHypergraph());
  ASSERT_TRUE(fc.has_value());
  EXPECT_EQ(fc->total, Fraction(3, 2));
  // The optimal assignment puts weight 1/2 on each edge.
  for (const auto& w : fc->weight) EXPECT_EQ(w, Fraction(1, 2));
}

TEST(FractionalCoverTest, PathQuery) {
  // R1(a,b) |><| R2(b,c): rho* = 2 (both edges needed at weight 1 to cover
  // the endpoint-only attributes a and c).
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  auto fc = FractionalEdgeCoverNumber(h);
  ASSERT_TRUE(fc.has_value());
  EXPECT_EQ(fc->total, Fraction(2));
}

TEST(FractionalCoverTest, SingleEdgeCoversAll) {
  Hypergraph h(4);
  h.AddEdge({0, 1, 2, 3});
  auto fc = FractionalEdgeCoverNumber(h);
  ASSERT_TRUE(fc.has_value());
  EXPECT_EQ(fc->total, Fraction(1));
}

TEST(FractionalCoverTest, UncoveredVertexIsInfeasible) {
  Hypergraph h(3);
  h.AddEdge({0, 1});
  EXPECT_FALSE(FractionalEdgeCoverNumber(h).has_value());
  EXPECT_FALSE(IntegralEdgeCoverNumber(h).has_value());
}

TEST(FractionalCoverTest, OddCycleIsHalfLength) {
  // rho* of the 5-cycle hypergraph (binary edges) is 5/2.
  Hypergraph h(5);
  for (int i = 0; i < 5; ++i) h.AddEdge({i, (i + 1) % 5});
  auto fc = FractionalEdgeCoverNumber(h);
  ASSERT_TRUE(fc.has_value());
  EXPECT_EQ(fc->total, Fraction(5, 2));
  // Integral cover needs 3.
  EXPECT_EQ(IntegralEdgeCoverNumber(h), 3);
}

TEST(FractionalCoverTest, FractionalNeverExceedsIntegral) {
  util::Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    Hypergraph h = RandomUniformHypergraph(7, 3, 0.4, &rng);
    if (!h.CoversAllVertices()) continue;
    auto frac = FractionalEdgeCoverNumber(h);
    auto integral = IntegralEdgeCoverNumber(h);
    ASSERT_TRUE(frac.has_value());
    ASSERT_TRUE(integral.has_value());
    EXPECT_LE(frac->total, Fraction(*integral));
    // The LP weights must actually cover each vertex.
    for (int v = 0; v < h.num_vertices(); ++v) {
      Fraction sum(0);
      for (int e : h.EdgesContaining(v)) sum += frac->weight[e];
      EXPECT_GE(sum, Fraction(1));
    }
  }
}

TEST(AcyclicityTest, AcyclicExamples) {
  // Single edge.
  Hypergraph h1(3);
  h1.AddEdge({0, 1, 2});
  EXPECT_TRUE(IsAlphaAcyclic(h1));
  // Path of relations: R(a,b), S(b,c), T(c,d).
  Hypergraph h2(4);
  h2.AddEdge({0, 1});
  h2.AddEdge({1, 2});
  h2.AddEdge({2, 3});
  EXPECT_TRUE(IsAlphaAcyclic(h2));
  // The classic alpha-acyclic-but-"cyclic-looking" example: a big edge
  // containing a triangle of small edges.
  Hypergraph h3(3);
  h3.AddEdge({0, 1});
  h3.AddEdge({1, 2});
  h3.AddEdge({0, 2});
  h3.AddEdge({0, 1, 2});
  EXPECT_TRUE(IsAlphaAcyclic(h3));
}

TEST(AcyclicityTest, CyclicExamples) {
  EXPECT_FALSE(IsAlphaAcyclic(
      []() {
        Hypergraph h(3);
        h.AddEdge({0, 1});
        h.AddEdge({1, 2});
        h.AddEdge({0, 2});
        return h;
      }()));
  // 4-cycle of binary edges.
  Hypergraph h(4);
  for (int i = 0; i < 4; ++i) h.AddEdge({i, (i + 1) % 4});
  EXPECT_FALSE(IsAlphaAcyclic(h));
}

TEST(AcyclicityTest, JoinTreeParentExported) {
  Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({2, 3});
  std::vector<int> parent;
  ASSERT_TRUE(IsAlphaAcyclic(h, &parent));
  EXPECT_EQ(parent.size(), 3u);
  int roots = 0;
  for (int p : parent) {
    if (p == -1) ++roots;
  }
  EXPECT_EQ(roots, 1);
}

TEST(HypercliqueTest, DetectsCompleteTriple) {
  // 3-uniform hypergraph on {0..4} with all triples inside {0,1,2,3}.
  Hypergraph h(5);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      for (int c = b + 1; c < 4; ++c) h.AddEdge({a, b, c});
    }
  }
  EXPECT_TRUE(InducesHyperclique(h, {0, 1, 2, 3}, 3));
  EXPECT_TRUE(InducesHyperclique(h, {0, 1, 2}, 3));
  EXPECT_FALSE(InducesHyperclique(h, {0, 1, 2, 4}, 3));
  EXPECT_FALSE(InducesHyperclique(h, {0, 1}, 3));
}

TEST(HypercliqueTest, RandomUniformIsUniform) {
  util::Rng rng(11);
  Hypergraph h = RandomUniformHypergraph(8, 3, 0.5, &rng);
  EXPECT_TRUE(h.IsUniform(3));
  EXPECT_GT(h.num_edges(), 0);
  EXPECT_LT(h.num_edges(), 56);  // C(8,3) = 56; p=0.5 should not hit either end.
}

}  // namespace
}  // namespace qc::graph
