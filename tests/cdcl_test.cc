#include <gtest/gtest.h>

#include "sat/cdcl.h"
#include "sat/dpll.h"
#include "sat/generators.h"
#include "util/rng.h"

namespace qc::sat {
namespace {

CnfFormula Make(int vars, std::vector<std::vector<Lit>> clauses) {
  CnfFormula f;
  f.num_vars = vars;
  for (auto& c : clauses) f.AddClause(std::move(c));
  return f;
}

TEST(CdclTest, TrivialCases) {
  // Empty formula.
  EXPECT_TRUE(CdclSolver().Solve(Make(3, {})).satisfiable);
  // Single unit.
  SatResult r = CdclSolver().Solve(Make(1, {{1}}));
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(r.assignment[0]);
  // Contradicting units.
  EXPECT_FALSE(CdclSolver().Solve(Make(1, {{1}, {-1}})).satisfiable);
  // Empty clause.
  EXPECT_FALSE(CdclSolver().Solve(Make(1, {{}})).satisfiable);
}

TEST(CdclTest, TautologyAndDuplicateLiterals) {
  // (x or !x) is dropped; (x or x or y) behaves like (x or y).
  SatResult r = CdclSolver().Solve(Make(2, {{1, -1}, {1, 1, 2}, {-1}}));
  ASSERT_TRUE(r.satisfiable);
  EXPECT_FALSE(r.assignment[0]);
  EXPECT_TRUE(r.assignment[1]);
}

TEST(CdclTest, PigeonholeUnsat) {
  // PHP(4,3): 4 pigeons, 3 holes — classically hard for resolution but
  // small here; must be UNSAT.
  const int pigeons = 4, holes = 3;
  CnfFormula f;
  f.num_vars = pigeons * holes;
  auto var = [holes](int p, int h) { return p * holes + h + 1; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(var(p, h));
    f.AddClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f.AddClause({-var(p1, h), -var(p2, h)});
      }
    }
  }
  SatResult r = CdclSolver().Solve(f);
  EXPECT_FALSE(r.satisfiable);
}

class CdclAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(CdclAgreementTest, AgreesWithDpllOnRandom3Sat) {
  util::Rng rng(3000 + GetParam());
  int n = 8 + static_cast<int>(rng.NextBounded(16));
  int m = static_cast<int>(rng.NextBounded(6 * n)) + 1;
  CnfFormula f = RandomKSat(n, m, 3, &rng);
  SatResult cdcl = CdclSolver().Solve(f);
  SatResult dpll = SolveDpll(f);
  EXPECT_EQ(cdcl.satisfiable, dpll.satisfiable)
      << "n=" << n << " m=" << m;
  if (cdcl.satisfiable) {
    EXPECT_TRUE(f.Evaluate(cdcl.assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdclAgreementTest, ::testing::Range(0, 40));

TEST(CdclTest, MixedClauseSizes) {
  util::Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    int n = 10;
    CnfFormula f;
    f.num_vars = n;
    for (int i = 0; i < 25; ++i) {
      int k = 1 + static_cast<int>(rng.NextBounded(5));
      std::vector<int> vars = rng.Sample(n, k);
      std::vector<Lit> clause;
      for (int v : vars) {
        clause.push_back((v + 1) * (rng.NextBool(0.5) ? 1 : -1));
      }
      f.AddClause(clause);
    }
    SatResult cdcl = CdclSolver().Solve(f);
    SatResult brute = SolveBruteForce(f);
    EXPECT_EQ(cdcl.satisfiable, brute.satisfiable) << trial;
    if (cdcl.satisfiable) {
      EXPECT_TRUE(f.Evaluate(cdcl.assignment));
    }
  }
}

TEST(CdclTest, LargePlantedInstanceSolvedFast) {
  util::Rng rng(8);
  CnfFormula f = PlantedKSat(120, 500, 3, &rng);
  CdclSolver solver;
  SatResult r = solver.Solve(f);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(f.Evaluate(r.assignment));
}

TEST(CdclTest, LearnsClausesAndRestarts) {
  util::Rng rng(9);
  // An unsatisfiable threshold-density instance forces real conflict
  // analysis work.
  CnfFormula f = RandomKSat(30, 180, 3, &rng);
  CdclSolver solver;
  SatResult r = solver.Solve(f);
  EXPECT_FALSE(r.satisfiable);  // Density 6 >> threshold: UNSAT whp.
  EXPECT_GT(solver.stats().conflicts, 0u);
  EXPECT_GT(solver.stats().learned_clauses, 0u);
}

TEST(CdclTest, ConflictLimitAborts) {
  util::Rng rng(10);
  CnfFormula f = RandomKSat(60, 258, 3, &rng);
  CdclSolver solver(CdclSolver::Options{.max_conflicts = 3,
                                        .activity_decay = 0.95,
                                        .luby_unit = 64});
  solver.Solve(f);
  // Either solved within 3 conflicts or aborted; both are fine, but it must
  // return promptly and flag the abort when it happens.
  if (solver.stats().conflicts >= 3) {
    EXPECT_TRUE(solver.aborted());
  }
}

}  // namespace
}  // namespace qc::sat
