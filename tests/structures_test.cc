#include <gtest/gtest.h>

#include <algorithm>

#include "graph/coloring.h"
#include "graph/generators.h"
#include "graph/treewidth.h"
#include "structures/structure.h"
#include "util/rng.h"

namespace qc::structures {
namespace {

TEST(StructureTest, BasicAccessors) {
  Structure s({RelSymbol{"E", 2}, RelSymbol{"P", 1}}, 3);
  s.AddTuple(0, {0, 1});
  s.AddTuple(1, {2});
  EXPECT_TRUE(s.HasTuple(0, {0, 1}));
  EXPECT_FALSE(s.HasTuple(0, {1, 0}));
  EXPECT_TRUE(s.HasTuple(1, {2}));
  EXPECT_EQ(s.universe_size(), 3);
}

TEST(StructureTest, InducedSubstructureRenames) {
  Structure s = Structure::FromDigraphEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  Structure sub = s.InducedSubstructure({1, 2});
  EXPECT_EQ(sub.universe_size(), 2);
  EXPECT_TRUE(sub.HasTuple(0, {0, 1}));   // Old (1,2).
  EXPECT_FALSE(sub.HasTuple(0, {1, 0}));
}

TEST(StructureTest, GaifmanGraph) {
  Structure s({RelSymbol{"T", 3}}, 4);
  s.AddTuple(0, {0, 1, 2});
  graph::Graph g = s.GaifmanGraph();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(3), 0);
}

TEST(HomomorphismTest, DirectedPathIntoCycle) {
  // Directed path 0->1->2 maps into directed 3-cycle; the cycle does not
  // map into the path.
  Structure path = Structure::FromDigraphEdges(3, {{0, 1}, {1, 2}});
  Structure cycle = Structure::FromDigraphEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  auto h = FindHomomorphism(path, cycle);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(path.IsHomomorphism(cycle, *h));
  EXPECT_FALSE(FindHomomorphism(cycle, path).has_value());
  EXPECT_FALSE(AreHomEquivalent(path, cycle));
}

TEST(HomomorphismTest, GraphHomEquivalenceWithColoring) {
  // An undirected graph maps homomorphically into K_k iff it is
  // k-colourable (Section 2.3).
  util::Rng rng(1);
  graph::Graph g = graph::RandomGnp(8, 0.4, &rng);
  Structure sg = Structure::FromGraph(g);
  for (int k = 2; k <= 4; ++k) {
    Structure kk = Structure::FromGraph(graph::Complete(k));
    bool colorable = graph::FindKColoring(g, k).has_value();
    EXPECT_EQ(FindHomomorphism(sg, kk).has_value(), colorable) << k;
  }
}

TEST(HomomorphismTest, CountMatchesGraphCount) {
  // Hom counts from paths into K_3: P_2 -> 6, P_3 -> 12.
  Structure p2 = Structure::FromGraph(graph::Path(2));
  Structure p3 = Structure::FromGraph(graph::Path(3));
  Structure k3 = Structure::FromGraph(graph::Complete(3));
  EXPECT_EQ(CountHomomorphisms(p2, k3), 6u);
  EXPECT_EQ(CountHomomorphisms(p3, k3), 12u);
}

TEST(HomomorphismTest, RepeatedVariablesInTuples) {
  // A reflexive tuple (loop) can only map onto a looped element.
  Structure a({RelSymbol{"E", 2}}, 1);
  a.AddTuple(0, {0, 0});
  Structure b_no_loop = Structure::FromDigraphEdges(2, {{0, 1}});
  EXPECT_FALSE(FindHomomorphism(a, b_no_loop).has_value());
  Structure b_loop = Structure::FromDigraphEdges(2, {{0, 1}, {1, 1}});
  auto h = FindHomomorphism(a, b_loop);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ((*h)[0], 1);
}

TEST(CoreTest, EvenCycleCoreIsEdge) {
  // The core of C_6 (bipartite) is a single edge (K_2).
  Structure c6 = Structure::FromGraph(graph::Cycle(6));
  Structure core = ComputeCore(c6);
  EXPECT_EQ(core.universe_size(), 2);
  EXPECT_TRUE(AreHomEquivalent(core, c6));
  // A core has no proper retract: recomputing does not shrink it.
  EXPECT_EQ(ComputeCore(core).universe_size(), 2);
}

TEST(CoreTest, OddCycleIsItsOwnCore) {
  Structure c5 = Structure::FromGraph(graph::Cycle(5));
  Structure core = ComputeCore(c5);
  EXPECT_EQ(core.universe_size(), 5);
}

TEST(CoreTest, CompleteGraphIsItsOwnCore) {
  Structure k4 = Structure::FromGraph(graph::Complete(4));
  EXPECT_EQ(ComputeCore(k4).universe_size(), 4);
}

TEST(CoreTest, TreeCoreIsEdge) {
  util::Rng rng(2);
  graph::Graph t = graph::RandomTree(7, &rng);
  Structure st = Structure::FromGraph(t);
  Structure core = ComputeCore(st);
  EXPECT_EQ(core.universe_size(), 2);
}

TEST(CoreTest, KeptElementsInduceTheCore) {
  Structure c6 = Structure::FromGraph(graph::Cycle(6));
  std::vector<int> kept;
  Structure core = ComputeCore(c6, &kept);
  ASSERT_EQ(kept.size(), 2u);
  // The kept vertices must be adjacent in C_6.
  int diff = std::abs(kept[0] - kept[1]);
  EXPECT_TRUE(diff == 1 || diff == 5);
}

TEST(CoreTest, DisjointCliquePlusTriangleCoresToTriangle) {
  // K_3 + K_2 (disjoint): everything maps into the K_3, so the core is K_3.
  graph::Graph g = graph::Complete(3).DisjointUnion(graph::Complete(2));
  Structure s = Structure::FromGraph(g);
  Structure core = ComputeCore(s);
  EXPECT_EQ(core.universe_size(), 3);
  // Theorem 5.3's parameter: the treewidth of the core (2 for K_3) vs the
  // treewidth of the structure itself.
  EXPECT_EQ(graph::ExactTreewidth(core.GaifmanGraph()).treewidth, 2);
}

TEST(CorePropertyTest, CoreIsHomEquivalentAndMinimal) {
  util::Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    graph::Graph g = graph::RandomGnp(7, 0.35, &rng);
    Structure s = Structure::FromGraph(g);
    Structure core = ComputeCore(s);
    EXPECT_TRUE(AreHomEquivalent(s, core));
    EXPECT_EQ(ComputeCore(core).universe_size(), core.universe_size());
    EXPECT_LE(core.universe_size(), s.universe_size());
  }
}

TEST(HomCspTest, CspMatchesHomomorphismSemantics) {
  Structure a = Structure::FromDigraphEdges(3, {{0, 1}, {1, 2}});
  Structure b = Structure::FromDigraphEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  csp::CspInstance csp = HomomorphismCsp(a, b);
  EXPECT_EQ(csp.num_vars, 3);
  EXPECT_EQ(csp.domain_size, 4);
  EXPECT_EQ(csp.constraints.size(), 2u);
  EXPECT_EQ(CountHomomorphisms(a, b), 2u);  // 0->1->2 and 1->2->3.
}

}  // namespace
}  // namespace qc::structures
