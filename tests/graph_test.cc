#include <gtest/gtest.h>

#include <algorithm>

#include "graph/boolmatrix.h"
#include "graph/coloring.h"
#include "graph/domination.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/homomorphism.h"
#include "graph/triangles.h"
#include "graph/vertexcover.h"
#include "util/rng.h"

namespace qc::graph {
namespace {

TEST(GraphTest, AddEdgeIdempotentAndLoopFree) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(2, 2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_EQ(g.Degree(0), 1);
}

TEST(GraphTest, InducedSubgraph) {
  Graph g = Complete(5);
  Graph sub = g.InducedSubgraph({0, 2, 4});
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 3);
}

TEST(GraphTest, ComplementOfCompleteIsEmpty) {
  Graph g = Complete(6);
  EXPECT_EQ(g.Complement().num_edges(), 0);
  EXPECT_EQ(Graph(6).Complement().num_edges(), 15);
}

TEST(GraphTest, DisjointUnionShifts) {
  Graph a = Path(3), b = Cycle(3);
  Graph u = a.DisjointUnion(b);
  EXPECT_EQ(u.num_vertices(), 6);
  EXPECT_EQ(u.num_edges(), 2 + 3);
  EXPECT_TRUE(u.HasEdge(3, 4));
  EXPECT_FALSE(u.HasEdge(2, 3));
}

TEST(GraphTest, ConnectedComponents) {
  Graph g = Path(3).DisjointUnion(Complete(4));
  auto comps = g.ConnectedComponents();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(comps[1], (std::vector<int>{3, 4, 5, 6}));
}

TEST(GraphTest, IsForest) {
  EXPECT_TRUE(Path(10).IsForest());
  EXPECT_TRUE(Path(3).DisjointUnion(Path(4)).IsForest());
  EXPECT_FALSE(Cycle(4).IsForest());
}

TEST(GraphTest, DegeneracyOfCompleteGraph) {
  EXPECT_EQ(Complete(7).DegeneracyOrder().second, 6);
  EXPECT_EQ(Path(10).DegeneracyOrder().second, 1);
  EXPECT_EQ(Cycle(10).DegeneracyOrder().second, 2);
}

TEST(GeneratorsTest, GnpEdgeCountPlausible) {
  util::Rng rng(1);
  Graph g = RandomGnp(100, 0.5, &rng);
  // 100*99/2 = 4950 pairs; expect about half, generously bounded.
  EXPECT_GT(g.num_edges(), 2000);
  EXPECT_LT(g.num_edges(), 3000);
}

TEST(GeneratorsTest, GnmExactEdgeCount) {
  util::Rng rng(2);
  Graph g = RandomGnm(50, 200, &rng);
  EXPECT_EQ(g.num_edges(), 200);
}

TEST(GeneratorsTest, BasicShapes) {
  EXPECT_EQ(Path(5).num_edges(), 4);
  EXPECT_EQ(Cycle(5).num_edges(), 5);
  EXPECT_EQ(Complete(5).num_edges(), 10);
  EXPECT_EQ(CompleteBipartite(3, 4).num_edges(), 12);
  EXPECT_EQ(Star(6).num_edges(), 6);
  EXPECT_EQ(Grid(3, 4).num_edges(), 3 * 3 + 2 * 4);
}

TEST(GeneratorsTest, RandomTreeIsTree) {
  util::Rng rng(5);
  for (int n : {1, 2, 3, 10, 40}) {
    Graph t = RandomTree(n, &rng);
    EXPECT_TRUE(t.IsForest());
    EXPECT_EQ(t.ConnectedComponents().size(), 1u) << "n=" << n;
    EXPECT_EQ(t.num_edges(), n - 1);
  }
}

TEST(GeneratorsTest, KTreeHasRightEdgeCount) {
  util::Rng rng(6);
  // A k-tree on n vertices has k(k+1)/2 + (n-k-1)k edges.
  Graph g = RandomKTree(12, 3, &rng);
  EXPECT_EQ(g.num_edges(), 3 * 4 / 2 + (12 - 4) * 3);
}

TEST(GeneratorsTest, PlantedCliqueIsClique) {
  util::Rng rng(7);
  std::vector<int> planted;
  Graph g = PlantedClique(40, 0.2, 6, &rng, &planted);
  ASSERT_EQ(planted.size(), 6u);
  for (std::size_t i = 0; i < planted.size(); ++i) {
    for (std::size_t j = i + 1; j < planted.size(); ++j) {
      EXPECT_TRUE(g.HasEdge(planted[i], planted[j]));
    }
  }
}

TEST(GeneratorsTest, SpecialGraphShape) {
  Graph g = SpecialGraph(4);
  // K_4 plus a path on 16 vertices.
  EXPECT_EQ(g.num_vertices(), 4 + 16);
  EXPECT_EQ(g.num_edges(), 6 + 15);
  auto comps = g.ConnectedComponents();
  EXPECT_EQ(comps.size(), 2u);
}

TEST(BoolMatrixTest, MultiplyMatchesDefinition) {
  util::Rng rng(11);
  BoolMatrix a(17, 23), b(23, 9);
  for (int i = 0; i < 17; ++i) {
    for (int j = 0; j < 23; ++j) {
      if (rng.NextBool(0.3)) a.Set(i, j);
    }
  }
  for (int i = 0; i < 23; ++i) {
    for (int j = 0; j < 9; ++j) {
      if (rng.NextBool(0.3)) b.Set(i, j);
    }
  }
  BoolMatrix c = a.Multiply(b);
  for (int i = 0; i < 17; ++i) {
    for (int j = 0; j < 9; ++j) {
      bool expect = false;
      for (int k = 0; k < 23 && !expect; ++k) {
        expect = a.Test(i, k) && b.Test(k, j);
      }
      EXPECT_EQ(c.Test(i, j), expect) << i << "," << j;
    }
  }
}

class TriangleAlgorithmsTest : public ::testing::TestWithParam<int> {};

TEST_P(TriangleAlgorithmsTest, AllDetectorsAgreeOnRandomGraphs) {
  util::Rng rng(GetParam());
  double p = 0.02 + 0.01 * (GetParam() % 7);
  Graph g = RandomGnp(60, p, &rng);
  bool expect = CountTriangles(g) > 0;
  auto check = [&](std::optional<std::array<int, 3>> t) {
    EXPECT_EQ(t.has_value(), expect);
    if (t) {
      EXPECT_TRUE(g.HasEdge((*t)[0], (*t)[1]));
      EXPECT_TRUE(g.HasEdge((*t)[0], (*t)[2]));
      EXPECT_TRUE(g.HasEdge((*t)[1], (*t)[2]));
    }
  };
  check(FindTriangleEnumeration(g));
  check(FindTriangleMatrix(g));
  check(FindTriangleAyz(g));
  check(FindTriangleAyz(g, 3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleAlgorithmsTest,
                         ::testing::Range(0, 20));

TEST(TriangleTest, TriangleFreeGraphs) {
  EXPECT_FALSE(FindTriangleEnumeration(CompleteBipartite(5, 5)).has_value());
  EXPECT_FALSE(FindTriangleMatrix(CompleteBipartite(5, 5)).has_value());
  EXPECT_FALSE(FindTriangleAyz(Cycle(5)).has_value());
  EXPECT_EQ(CountTriangles(Grid(4, 4)), 0u);
}

TEST(TriangleTest, CompleteGraphCount) {
  // C(6,3) = 20 triangles in K_6.
  EXPECT_EQ(CountTriangles(Complete(6)), 20u);
}

TEST(TriangleTest, AyzEmptyAndTinyGraphs) {
  // m == 0 (empty / singleton / edgeless) short-circuits before the delta
  // auto-pick, for any requested delta.
  EXPECT_FALSE(FindTriangleAyz(Graph(0)).has_value());
  EXPECT_FALSE(FindTriangleAyz(Graph(1)).has_value());
  Graph edgeless(5);
  EXPECT_FALSE(FindTriangleAyz(edgeless).has_value());
  EXPECT_FALSE(FindTriangleAyz(edgeless, 3).has_value());

  Graph g(3);
  g.AddEdge(0, 1);
  EXPECT_FALSE(FindTriangleAyz(g).has_value());
  g.AddEdge(1, 2);
  EXPECT_FALSE(FindTriangleAyz(g).has_value());
  g.AddEdge(0, 2);
  for (int delta : {0, 1, 2, 3}) {
    auto t = FindTriangleAyz(g, delta);
    ASSERT_TRUE(t.has_value()) << "delta=" << delta;
    EXPECT_EQ(*t, (std::array<int, 3>{0, 1, 2}));
  }
}

TEST(TriangleTest, AyzBoundaryDegreeEqualsDeltaIsLight) {
  // Complete(4): every degree is exactly 3. A vertex is heavy iff
  // Degree(v) > delta, so delta == 3 classifies everything light (the
  // light scan alone must own every triangle) and delta == 2 classifies
  // everything heavy (the MM phase alone must).
  Graph g = Complete(4);
  for (int delta : {2, 3}) {
    auto t = FindTriangleAyz(g, delta);
    ASSERT_TRUE(t.has_value()) << "delta=" << delta;
    EXPECT_TRUE(g.HasEdge((*t)[0], (*t)[1]));
    EXPECT_TRUE(g.HasEdge((*t)[0], (*t)[2]));
    EXPECT_TRUE(g.HasEdge((*t)[1], (*t)[2]));
  }
}

TEST(TriangleTest, AyzAgreesWithCountAcrossAllDeltas) {
  // Sweeping delta across every degree present in the graph puts vertices
  // exactly on the boundary at each step: detection must agree with the
  // exact count for every split, so no triangle is owned by zero phases.
  util::Rng rng(77);
  Graph g = RandomGnm(24, 60, &rng);
  const bool expect = CountTriangles(g) > 0;
  int max_deg = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.Degree(v));
  }
  for (int delta = 1; delta <= max_deg + 1; ++delta) {
    auto t = FindTriangleAyz(g, delta);
    EXPECT_EQ(t.has_value(), expect) << "delta=" << delta;
    if (t) {
      EXPECT_TRUE(g.HasEdge((*t)[0], (*t)[1]));
      EXPECT_TRUE(g.HasEdge((*t)[0], (*t)[2]));
      EXPECT_TRUE(g.HasEdge((*t)[1], (*t)[2]));
    }
  }
}

TEST(GeneratorsTest, ZipfGraphShape) {
  util::Rng rng(3);
  Graph g = ZipfGraph(50, 120, 1.5, &rng);
  EXPECT_EQ(g.num_vertices(), 50);
  // The rejection loop is attempt-capped, so the edge count may fall short
  // of the request on heavily skewed draws — but never exceed it.
  EXPECT_LE(g.num_edges(), 120);
  EXPECT_GT(g.num_edges(), 0);
  // Skew axis: low-id vertices get the probability mass, so vertex 0
  // should clearly out-degree the median vertex.
  EXPECT_GT(g.Degree(0), g.Degree(25));
}

TEST(GeneratorsTest, HubGraphShape) {
  util::Rng rng(4);
  Graph g = HubGraph(30, 3, 20, &rng);
  EXPECT_EQ(g.num_vertices(), 30);
  // Hubs are adjacent to everything (including each other).
  for (int h = 0; h < 3; ++h) EXPECT_EQ(g.Degree(h), 29);
  // Hub edges: C(3,2) + 3*27 = 84, plus the periphery edges.
  EXPECT_EQ(g.num_edges(), 84 + 20);
}

TEST(DominationTest, IsDominatingSet) {
  Graph g = Star(5);
  EXPECT_TRUE(IsDominatingSet(g, {0}));
  EXPECT_FALSE(IsDominatingSet(g, {1}));
  EXPECT_TRUE(IsDominatingSet(g, {1, 2, 3, 4, 5}));
}

TEST(DominationTest, BruteForceMatchesBranchAndBound) {
  util::Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomGnp(14, 0.25, &rng);
    std::vector<int> exact = MinDominatingSet(g);
    EXPECT_TRUE(IsDominatingSet(g, exact));
    int k = static_cast<int>(exact.size());
    EXPECT_TRUE(FindDominatingSetOfSize(g, k).has_value());
    if (k > 1) {
      EXPECT_FALSE(FindDominatingSetOfSize(g, k - 1).has_value());
    }
  }
}

TEST(DominationTest, GreedyIsValid) {
  util::Rng rng(17);
  Graph g = RandomGnp(30, 0.15, &rng);
  EXPECT_TRUE(IsDominatingSet(g, GreedyDominatingSet(g)));
}

TEST(DominationTest, PathDominationNumber) {
  // gamma(P_n) = ceil(n/3).
  EXPECT_EQ(MinDominatingSet(Path(9)).size(), 3u);
  EXPECT_EQ(MinDominatingSet(Path(10)).size(), 4u);
}

TEST(VertexCoverTest, BranchingFindsOptimal) {
  // VC of C_5 is 3; of K_5 is 4; of a star is 1.
  EXPECT_EQ(MinVertexCover(Cycle(5)).size(), 3u);
  EXPECT_EQ(MinVertexCover(Complete(5)).size(), 4u);
  EXPECT_EQ(MinVertexCover(Star(7)).size(), 1u);
}

TEST(VertexCoverTest, TwoApproxIsCoverWithinFactor) {
  util::Rng rng(19);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = RandomGnp(16, 0.3, &rng);
    auto approx = TwoApproxVertexCover(g);
    EXPECT_TRUE(IsVertexCover(g, approx));
    auto exact = MinVertexCover(g);
    EXPECT_LE(approx.size(), 2 * exact.size());
  }
}

TEST(VertexCoverTest, IndependentSetComplementsCover) {
  util::Rng rng(23);
  Graph g = RandomGnp(14, 0.4, &rng);
  auto is = MaxIndependentSet(g);
  for (std::size_t i = 0; i < is.size(); ++i) {
    for (std::size_t j = i + 1; j < is.size(); ++j) {
      EXPECT_FALSE(g.HasEdge(is[i], is[j]));
    }
  }
  EXPECT_EQ(is.size() + MinVertexCover(g).size(),
            static_cast<std::size_t>(g.num_vertices()));
}

TEST(ColoringTest, ChromaticNumbers) {
  EXPECT_EQ(ChromaticNumber(Complete(5)), 5);
  EXPECT_EQ(ChromaticNumber(Cycle(5)), 3);  // Odd cycle.
  EXPECT_EQ(ChromaticNumber(Cycle(6)), 2);  // Even cycle.
  EXPECT_EQ(ChromaticNumber(Path(8)), 2);
  EXPECT_EQ(ChromaticNumber(CompleteBipartite(4, 4)), 2);
  EXPECT_EQ(ChromaticNumber(Graph(3)), 1);
}

TEST(ColoringTest, FindKColoringIsProper) {
  util::Rng rng(29);
  Graph g = RandomGnp(20, 0.3, &rng);
  int chi = ChromaticNumber(g);
  auto coloring = FindKColoring(g, chi);
  ASSERT_TRUE(coloring.has_value());
  EXPECT_TRUE(IsProperColoring(g, *coloring));
  EXPECT_FALSE(FindKColoring(g, chi - 1).has_value());
}

TEST(ColoringTest, GreedyIsProper) {
  util::Rng rng(31);
  Graph g = RandomGnp(25, 0.3, &rng);
  std::vector<int> order(25);
  for (int i = 0; i < 25; ++i) order[i] = i;
  EXPECT_TRUE(IsProperColoring(g, GreedyColoring(g, order)));
}

TEST(HomomorphismTest, OddCycleToTriangle) {
  // C_5 -> K_3 exists (it is 3-colourable); C_5 -> K_2 does not.
  EXPECT_TRUE(FindHomomorphism(Cycle(5), Complete(3)).has_value());
  EXPECT_FALSE(FindHomomorphism(Cycle(5), Complete(2)).has_value());
  // Even cycle maps to an edge.
  EXPECT_TRUE(FindHomomorphism(Cycle(6), Complete(2)).has_value());
}

TEST(HomomorphismTest, HomomorphismToCompleteIsColoring) {
  util::Rng rng(37);
  Graph g = RandomGnp(12, 0.3, &rng);
  for (int k = 1; k <= 5; ++k) {
    EXPECT_EQ(FindHomomorphism(g, Complete(k)).has_value(),
              FindKColoring(g, k).has_value())
        << "k=" << k;
  }
}

TEST(HomomorphismTest, CountHomsPathToEdge) {
  // Homs from P_3 (2 edges) to K_2: 2 choices for middle... exactly 2 per
  // choice of image of the middle vertex; total 2.
  // P_3 vertices a-b-c: f(b) in {0,1}, then f(a),f(c) forced. Count = 2.
  EXPECT_EQ(CountHomomorphisms(Path(3), Complete(2)), 2u);
  // Homs from a single edge to K_3: 3*2 = 6.
  EXPECT_EQ(CountHomomorphisms(Path(2), Complete(3)), 6u);
}

TEST(HomomorphismTest, PartitionedSubgraphIsomorphism) {
  // G: two classes joined by one edge; H: single edge.
  Graph h = Path(2);
  Graph g(4);
  // Classes: {0,1} -> class 0, {2,3} -> class 1. Only edge 1-2.
  g.AddEdge(1, 2);
  std::vector<int> class_of = {0, 0, 1, 1};
  auto f = FindPartitionedSubgraphIsomorphism(h, g, class_of);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ((*f)[0], 1);
  EXPECT_EQ((*f)[1], 2);
  // Remove the edge: no solution.
  Graph g2(4);
  g2.AddEdge(0, 3);  // Wrong orientation? 0 in class 0, 3 in class 1: fine.
  auto f2 = FindPartitionedSubgraphIsomorphism(h, g2, class_of);
  ASSERT_TRUE(f2.has_value());
  Graph g3(4);
  EXPECT_FALSE(FindPartitionedSubgraphIsomorphism(h, g3, class_of));
}

TEST(HomomorphismTest, PartitionedCliqueDetectsPlantedClique) {
  util::Rng rng(41);
  // Build the k-partite structure of Section 2.3 by hand: k classes of d
  // vertices; plant one vertex per class forming a clique.
  const int k = 4, d = 5;
  Graph g(k * d);
  std::vector<int> class_of(k * d);
  for (int v = 0; v < k * d; ++v) class_of[v] = v / d;
  std::vector<int> chosen(k);
  for (int c = 0; c < k; ++c) {
    chosen[c] = c * d + static_cast<int>(rng.NextBounded(d));
  }
  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      g.AddEdge(chosen[a], chosen[b]);
    }
  }
  auto f = FindPartitionedSubgraphIsomorphism(Complete(k), g, class_of);
  ASSERT_TRUE(f.has_value());
  std::vector<int> got = *f;
  std::sort(got.begin(), got.end());
  std::sort(chosen.begin(), chosen.end());
  EXPECT_EQ(got, chosen);
}

}  // namespace
}  // namespace qc::graph
