#include <gtest/gtest.h>

#include "sat/dpll.h"
#include "sat/schaefer.h"
#include "util/rng.h"

namespace qc::sat {
namespace {

TEST(BoolRelationTest, FromTuplesAndAccessors) {
  BoolRelation r = BoolRelation::FromTuples(2, {0b00, 0b11});
  EXPECT_EQ(r.arity(), 2);
  EXPECT_EQ(r.size(), 2);
  EXPECT_TRUE(r.Allows(0b00));
  EXPECT_FALSE(r.Allows(0b01));
  EXPECT_EQ(r.Tuples(), (std::vector<std::uint32_t>{0b00, 0b11}));
}

TEST(BoolRelationTest, ClosurePropertiesOfEquality) {
  // x == y: {00, 11} is in every class.
  BoolRelation eq = BoolRelation::FromTuples(2, {0b00, 0b11});
  EXPECT_TRUE(eq.IsZeroValid());
  EXPECT_TRUE(eq.IsOneValid());
  EXPECT_TRUE(eq.IsHornClosed());
  EXPECT_TRUE(eq.IsDualHornClosed());
  EXPECT_TRUE(eq.IsAffineClosed());
  EXPECT_TRUE(eq.IsBijunctiveClosed());
}

TEST(BoolRelationTest, OneInThreeIsInNoClass) {
  BoolRelation r = OneInThreeRelation();
  EXPECT_FALSE(r.IsZeroValid());
  EXPECT_FALSE(r.IsOneValid());
  EXPECT_FALSE(r.IsHornClosed());       // 001 & 010 = 000 not allowed.
  EXPECT_FALSE(r.IsDualHornClosed());   // 001 | 010 = 011 not allowed.
  EXPECT_FALSE(r.IsAffineClosed());     // 001^010^100 = 111 not allowed.
  EXPECT_FALSE(r.IsBijunctiveClosed()); // maj(001,010,100) = 000.
}

TEST(BoolRelationTest, ParityIsAffineOnly) {
  BoolRelation r = ParityRelation(3, true);
  EXPECT_TRUE(r.IsAffineClosed());
  EXPECT_FALSE(r.IsHornClosed());
  EXPECT_FALSE(r.IsDualHornClosed());
  EXPECT_FALSE(r.IsBijunctiveClosed());
  EXPECT_FALSE(r.IsZeroValid());
  EXPECT_TRUE(ParityRelation(3, false).IsZeroValid());
}

TEST(BoolRelationTest, ClauseRelationClasses) {
  // All-negative clause (!x or !y or !z): Horn, 0-valid, not 1-valid.
  BoolRelation neg = ClauseRelation({false, false, false});
  EXPECT_TRUE(neg.IsHornClosed());
  EXPECT_TRUE(neg.IsZeroValid());
  EXPECT_FALSE(neg.IsOneValid());
  // All-positive 3-clause: dual-Horn, 1-valid.
  BoolRelation pos = ClauseRelation({true, true, true});
  EXPECT_TRUE(pos.IsDualHornClosed());
  EXPECT_FALSE(pos.IsHornClosed());
  EXPECT_TRUE(pos.IsOneValid());
  // Mixed 3-clause is in no Schaefer class except... check it is not
  // bijunctive/affine/horn/dual-horn.
  BoolRelation mixed = ClauseRelation({true, false, false});
  EXPECT_TRUE(mixed.IsHornClosed());  // One positive literal: Horn.
  EXPECT_FALSE(mixed.IsBijunctiveClosed());
}

TEST(BoolRelationTest, ImplicationIsEverywhereTractable) {
  BoolRelation imp = ImplicationRelation();
  EXPECT_TRUE(imp.IsHornClosed());
  EXPECT_TRUE(imp.IsDualHornClosed());
  EXPECT_TRUE(imp.IsBijunctiveClosed());
  EXPECT_FALSE(imp.IsAffineClosed());  // 00^10^11 = 01 not allowed.
}

TEST(SchaeferVerdictTest, ToStringAndTractable) {
  SchaeferVerdict v;
  EXPECT_FALSE(v.Tractable());
  EXPECT_EQ(v.ToString(), "np-hard");
  v.horn = true;
  EXPECT_TRUE(v.Tractable());
  EXPECT_EQ(v.ToString(), "horn");
}

TEST(BoolCspTest, EvaluateAndCnf) {
  BoolCsp csp;
  csp.num_vars = 3;
  csp.AddConstraint({0, 1}, ImplicationRelation());
  csp.AddConstraint({1, 2}, ImplicationRelation());
  EXPECT_TRUE(csp.Evaluate({false, false, false}));
  EXPECT_TRUE(csp.Evaluate({true, true, true}));
  EXPECT_FALSE(csp.Evaluate({true, false, false}));
  CnfFormula f = csp.ToCnf();
  EXPECT_EQ(f.clauses.size(), 2u);  // One forbidden tuple per constraint.
  SatResult r = SolveDpll(f);
  EXPECT_TRUE(r.satisfiable);
}

TEST(SchaeferSolveTest, EmptyRelationUnsat) {
  BoolCsp csp;
  csp.num_vars = 2;
  csp.AddConstraint({0, 1}, BoolRelation(2));
  EXPECT_FALSE(SolveSchaefer(csp).satisfiable);
}

TEST(SchaeferSolveTest, DispatchesToExpectedMethod) {
  {
    BoolCsp csp;
    csp.num_vars = 2;
    csp.AddConstraint({0, 1}, BoolRelation::FromTuples(2, {0b00, 0b10}));
    auto r = SolveSchaefer(csp);
    EXPECT_EQ(r.method, SchaeferMethod::kZeroValid);
    EXPECT_TRUE(r.satisfiable);
    EXPECT_TRUE(csp.Evaluate(r.assignment));
  }
  {
    // x0+x1 = 1 (affine, not 0/1-valid) plus 1-in-3 (in no class):
    // combined verdict is np-hard -> DPLL.
    BoolCsp csp;
    csp.num_vars = 3;
    csp.AddConstraint({0, 1}, ParityRelation(2, true));
    csp.AddConstraint({0, 1, 2}, OneInThreeRelation());
    auto r = SolveSchaefer(csp);
    EXPECT_EQ(r.method, SchaeferMethod::kGeneral);
    EXPECT_TRUE(r.satisfiable);
    EXPECT_TRUE(csp.Evaluate(r.assignment));
  }
  {
    // x0+x1 = 1, x1+x2 = 1: affine only (parity of arity 2 is also
    // bijunctive, so bijunctive wins the dispatch order).
    BoolCsp csp;
    csp.num_vars = 3;
    csp.AddConstraint({0, 1}, ParityRelation(2, true));
    csp.AddConstraint({1, 2}, ParityRelation(2, true));
    auto r = SolveSchaefer(csp);
    EXPECT_EQ(r.method, SchaeferMethod::kBijunctive);
    EXPECT_TRUE(r.satisfiable);
    EXPECT_TRUE(csp.Evaluate(r.assignment));
  }
  {
    // Arity-3 odd parity is 1-valid (111 has odd weight).
    BoolCsp csp;
    csp.num_vars = 3;
    csp.AddConstraint({0, 1, 2}, ParityRelation(3, true));
    auto r = SolveSchaefer(csp);
    EXPECT_EQ(r.method, SchaeferMethod::kOneValid);
    EXPECT_TRUE(r.satisfiable);
    EXPECT_TRUE(csp.Evaluate(r.assignment));
  }
  {
    // Even parity on 3 vars together with a forbidden-all-zero unit breaks
    // 0-validity; even parity is affine and in no other class at arity 3.
    BoolCsp csp;
    csp.num_vars = 4;
    csp.AddConstraint({0, 1, 2}, ParityRelation(3, false));
    csp.AddConstraint({1, 2, 3}, ParityRelation(3, false));
    csp.AddConstraint({0}, BoolRelation::FromTuples(1, {1}));
    auto r = SolveSchaefer(csp);
    EXPECT_EQ(r.method, SchaeferMethod::kAffine);
    EXPECT_TRUE(r.satisfiable);
    EXPECT_TRUE(csp.Evaluate(r.assignment));
  }
}

TEST(SchaeferSolveTest, HornInstance) {
  // Not 0-valid (x0 forced true), not 1-valid (x2 forced false), Horn.
  BoolCsp csp;
  csp.num_vars = 3;
  csp.AddConstraint({0}, BoolRelation::FromTuples(1, {1}));   // x0.
  csp.AddConstraint({0, 1}, ImplicationRelation());           // x0 -> x1.
  csp.AddConstraint({2}, BoolRelation::FromTuples(1, {0}));   // !x2.
  auto r = SolveSchaefer(csp);
  // Implication and units are also bijunctive; bijunctive is checked first.
  EXPECT_EQ(r.method, SchaeferMethod::kBijunctive);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_EQ(r.assignment, (std::vector<bool>{true, true, false}));
}

TEST(SchaeferSolveTest, HornOnlyInstance) {
  // Ternary AND-closed relation that is not bijunctive: x&y -> z with a
  // forced-true and forced-false variable to break 0/1-validity.
  BoolRelation horn3(3);
  for (std::uint32_t t = 0; t < 8; ++t) {
    bool x = t & 1, y = t & 2, z = t & 4;
    if (!(x && y) || z) horn3.Allow(t);
  }
  ASSERT_TRUE(horn3.IsHornClosed());
  ASSERT_FALSE(horn3.IsBijunctiveClosed());
  BoolCsp csp;
  csp.num_vars = 4;
  csp.AddConstraint({0, 1, 2}, horn3);
  csp.AddConstraint({0}, BoolRelation::FromTuples(1, {1}));
  csp.AddConstraint({1}, BoolRelation::FromTuples(1, {1}));
  csp.AddConstraint({3}, BoolRelation::FromTuples(1, {0}));
  auto r = SolveSchaefer(csp);
  EXPECT_EQ(r.method, SchaeferMethod::kHorn);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_EQ(r.assignment, (std::vector<bool>{true, true, true, false}));
}

TEST(SchaeferSolveTest, UnsatisfiableOneInThree) {
  // Two 1-in-3 constraints sharing all variables with a unit pinning two
  // variables true: 110 has two ones -> unsat.
  BoolCsp csp;
  csp.num_vars = 3;
  csp.AddConstraint({0, 1, 2}, OneInThreeRelation());
  csp.AddConstraint({0}, BoolRelation::FromTuples(1, {1}));
  csp.AddConstraint({1}, BoolRelation::FromTuples(1, {1}));
  auto r = SolveSchaefer(csp);
  EXPECT_FALSE(r.satisfiable);
}

/// Random BoolCsp whose relations are drawn from a pool, for agreement
/// testing against DPLL on the CNF encoding.
BoolCsp RandomBoolCsp(int num_vars, int num_constraints,
                      const std::vector<BoolRelation>& pool, util::Rng* rng) {
  BoolCsp csp;
  csp.num_vars = num_vars;
  for (int i = 0; i < num_constraints; ++i) {
    const BoolRelation& rel = pool[rng->NextBounded(pool.size())];
    csp.AddConstraint(rng->Sample(num_vars, rel.arity()), rel);
  }
  return csp;
}

class SchaeferAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SchaeferAgreementTest, DispatcherAgreesWithDpll) {
  util::Rng rng(300 + GetParam());
  // Pools chosen per class so the dispatcher exercises each method.
  std::vector<std::vector<BoolRelation>> pools = {
      {ParityRelation(3, true), ParityRelation(2, false)},      // Affine.
      {ImplicationRelation(),
       BoolRelation::FromTuples(2, {0b00, 0b01, 0b10})},        // 2SAT.
      {ClauseRelation({false, false, true}),
       BoolRelation::FromTuples(1, {1})},                       // Horn.
      {OneInThreeRelation(), NaeThreeRelation()},               // NP-hard.
      {ClauseRelation({true, true, false}),
       BoolRelation::FromTuples(1, {0})},                       // Dual-horn.
  };
  for (const auto& pool : pools) {
    BoolCsp csp = RandomBoolCsp(8, 6, pool, &rng);
    auto dispatch = SolveSchaefer(csp);
    auto dpll = SolveDpll(csp.ToCnf());
    EXPECT_EQ(dispatch.satisfiable, dpll.satisfiable)
        << "pool with method " << ToString(dispatch.method);
    if (dispatch.satisfiable) {
      EXPECT_TRUE(csp.Evaluate(dispatch.assignment))
          << "method " << ToString(dispatch.method);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchaeferAgreementTest,
                         ::testing::Range(0, 25));

TEST(SchaeferExhaustiveTest, AllBinaryRelationsClassifiedConsistently) {
  // For every one of the 16 binary relations, check the closure predicates
  // against brute-force definitions.
  for (std::uint32_t mask = 0; mask < 16; ++mask) {
    BoolRelation r(2);
    std::vector<std::uint32_t> tuples;
    for (std::uint32_t t = 0; t < 4; ++t) {
      if ((mask >> t) & 1u) {
        r.Allow(t);
        tuples.push_back(t);
      }
    }
    bool horn = true, dual = true, affine = true, bij = true;
    for (auto a : tuples) {
      for (auto b : tuples) {
        horn &= r.Allows(a & b);
        dual &= r.Allows(a | b);
        for (auto c : tuples) {
          affine &= r.Allows(a ^ b ^ c);
          bij &= r.Allows((a & b) | (a & c) | (b & c));
        }
      }
    }
    EXPECT_EQ(r.IsHornClosed(), horn) << mask;
    EXPECT_EQ(r.IsDualHornClosed(), dual) << mask;
    EXPECT_EQ(r.IsAffineClosed(), affine) << mask;
    EXPECT_EQ(r.IsBijunctiveClosed(), bij) << mask;
    // Every binary relation is bijunctive-definable, hence closed under
    // majority.
    EXPECT_TRUE(r.IsBijunctiveClosed()) << mask;
  }
}

}  // namespace
}  // namespace qc::sat
