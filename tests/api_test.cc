// qc::api layer: the shared session option table, dataset loading with
// line-numbered diagnostics, the qcp/1 wire codec, and the RunReport
// server section.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/query_api.h"
#include "api/session_options.h"
#include "api/wire.h"
#include "db/database.h"
#include "util/json.h"
#include "util/run_report.h"

namespace qc {
namespace {

// --- Session options ---------------------------------------------------

TEST(SessionOptionsTest, ParseSessionFlagConsumesKnownFlags) {
  const char* argv[] = {"tool",         "--threads",  "4",
                        "--deadline-ms", "250",       "--max-rows",
                        "10",           "--index-cache-mb", "8",
                        "--report-json", "/tmp/r.json", "--on-input-error",
                        "continue",     "positional"};
  const int argc = static_cast<int>(std::size(argv));
  api::SessionOptions opts;
  std::string error;
  int i = 1;
  while (i < argc) {
    int consumed = api::ParseSessionFlag(
        argc, const_cast<char* const*>(argv), i, &opts, &error);
    ASSERT_GE(consumed, 0) << error;
    if (consumed == 0) break;
    i += consumed;
  }
  EXPECT_EQ(std::string(argv[i]), "positional");
  EXPECT_EQ(opts.threads, 4);
  EXPECT_EQ(opts.deadline_ms, 250u);
  EXPECT_EQ(opts.max_rows, 10u);
  EXPECT_EQ(opts.index_cache_mb, 8u);
  EXPECT_EQ(opts.report_json, "/tmp/r.json");
  EXPECT_TRUE(opts.continue_on_input_error);
}

TEST(SessionOptionsTest, BadValueIsAnErrorNotACrash) {
  const char* argv[] = {"tool", "--deadline-ms", "soon"};
  api::SessionOptions opts;
  std::string error;
  EXPECT_EQ(api::ParseSessionFlag(3, const_cast<char* const*>(argv), 1, &opts,
                                  &error),
            -1);
  EXPECT_NE(error.find("--deadline-ms"), std::string::npos) << error;
}

TEST(SessionOptionsTest, SetSessionOptionByWireKey) {
  api::SessionOptions opts;
  std::string error;
  EXPECT_TRUE(api::SetSessionOption(&opts, "deadline_ms", "100", &error));
  EXPECT_TRUE(api::SetSessionOption(&opts, "max_rows", "5", &error));
  EXPECT_TRUE(api::SetSessionOption(&opts, "threads", "2", &error));
  EXPECT_TRUE(api::SetSessionOption(&opts, "on_input_error", "abort", &error));
  EXPECT_EQ(opts.deadline_ms, 100u);
  EXPECT_EQ(opts.max_rows, 5u);
  EXPECT_EQ(opts.threads, 2);
  EXPECT_FALSE(opts.continue_on_input_error);

  EXPECT_FALSE(api::SetSessionOption(&opts, "no_such_knob", "1", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(api::SetSessionOption(&opts, "max_rows", "many", &error));
}

TEST(SessionOptionsTest, TableFlagAndKeySpellingsAgree) {
  for (const api::SessionOptionSpec& spec : api::SessionOptionTable()) {
    // "--index-cache-mb" <-> "index_cache_mb": same words, different
    // separators.
    std::string flag_as_key(spec.flag + 2);
    for (char& c : flag_as_key) {
      if (c == '-') c = '_';
    }
    EXPECT_EQ(flag_as_key, spec.key);
    EXPECT_NE(api::SessionFlagsUsage().find(spec.flag), std::string::npos);
  }
}

TEST(SessionOptionsTest, MakeBudgetArmsLimits) {
  api::SessionOptions opts;
  opts.max_rows = 3;
  auto budget = opts.MakeBudget();
  ASSERT_NE(budget, nullptr);
  EXPECT_EQ(budget->row_limit(), 3u);
  EXPECT_EQ(opts.MakeIndexCache(), nullptr);  // 0 MiB = disabled.
  opts.index_cache_mb = 1;
  auto cache = opts.MakeIndexCache();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->capacity_bytes(), std::size_t{1} << 20);
}

// --- LoadDataset -------------------------------------------------------

constexpr char kBadDataset[] =
    "query: R(a,b)\n"
    "relation R:\n"   // line 2
    "1 2\n"           // line 3
    "1 2 3\n"         // line 4: arity 3, expected 2
    "x y\n"           // line 5: parse error
    "3 4\n"           // line 6: fine
    "7\n";            // line 7: arity 1

TEST(LoadDatasetTest, AbortSemanticsApplyNothingAndNumberEveryError) {
  db::Database db;
  api::DatasetLoad load = api::LoadDataset(kBadDataset, &db, false);
  EXPECT_FALSE(load.ok);
  EXPECT_FALSE(load.applied);
  EXPECT_FALSE(db.HasRelation("R"));  // Untouched.
  // Every bad statement is reported — not just the first — with its line.
  ASSERT_EQ(load.diagnostics.size(), 3u);
  EXPECT_EQ(load.diagnostics[0].line, 5);  // Parse errors surface in pass 1.
  EXPECT_EQ(load.diagnostics[1].line, 4);
  EXPECT_EQ(load.diagnostics[2].line, 7);
  for (const api::InputDiagnostic& d : load.diagnostics) {
    EXPECT_NE(d.ToString().find("line "), std::string::npos);
  }
}

TEST(LoadDatasetTest, ContinueSemanticsSkipBadRowsAndApplyTheRest) {
  db::Database db;
  api::DatasetLoad load = api::LoadDataset(kBadDataset, &db, true);
  EXPECT_TRUE(load.ok);
  EXPECT_TRUE(load.applied);
  EXPECT_EQ(load.query_text, " R(a,b)");
  ASSERT_TRUE(db.HasRelation("R"));
  EXPECT_EQ(db.NumTuples("R"), 2u);  // 1 2 and 3 4.
  EXPECT_EQ(load.tuples_applied, 2u);
  EXPECT_EQ(load.tuples_skipped, 2u);  // Arity mismatches; the parse error
                                       // never staged a row.
  EXPECT_EQ(load.diagnostics.size(), 3u);
}

TEST(LoadDatasetTest, RepeatedBlockAppendsToExistingRelation) {
  db::Database db;
  ASSERT_TRUE(db.SetRelation("R", 2, {{1, 1}}));
  api::DatasetLoad load = api::LoadDataset(
      "relation R:\n2 2\nrelation S:\n9\nrelation R:\n3 3\n", &db, false);
  EXPECT_TRUE(load.ok);
  EXPECT_EQ(db.NumTuples("R"), 3u);
  EXPECT_EQ(db.NumTuples("S"), 1u);
  EXPECT_EQ(load.tuples_applied, 3u);  // 2 2, 9, 3 3 — the pre-existing
                                       // 1 1 row is not the loader's.
}

TEST(LoadDatasetTest, ExistingArityWinsOverFirstRow) {
  db::Database db;
  ASSERT_TRUE(db.SetRelation("R", 2, {{1, 1}}));
  // First row has arity 3, but R exists with arity 2: the row is the
  // error, not the relation.
  api::DatasetLoad load =
      api::LoadDataset("relation R:\n1 2 3\n", &db, false);
  EXPECT_FALSE(load.ok);
  ASSERT_EQ(load.diagnostics.size(), 1u);
  EXPECT_EQ(load.diagnostics[0].line, 2);
  EXPECT_EQ(db.NumTuples("R"), 1u);
}

TEST(LoadDatasetTest, StageThenApplyMatchesLoadDataset) {
  // The server's in-place mutate path: stage read-only, then apply the
  // resolved blocks. Repeated blocks of a NEW relation must resolve to one
  // create followed by appends, in input order.
  db::Database db;
  ASSERT_TRUE(db.SetRelation("R", 2, {{1, 1}}));
  api::DatasetStaging staging = api::StageDataset(
      "relation T:\n5 6\nrelation R:\n2 2\nrelation T:\n7 8\n", db, false);
  ASSERT_TRUE(staging.load.ok);
  ASSERT_EQ(staging.blocks.size(), 3u);
  EXPECT_TRUE(staging.blocks[0].create);    // First T block creates.
  EXPECT_FALSE(staging.blocks[1].create);   // R exists.
  EXPECT_FALSE(staging.blocks[2].create);   // Second T block appends.
  EXPECT_FALSE(db.HasRelation("T"));        // Staging never touches the db.
  ASSERT_TRUE(api::ApplyDataset(&staging, &db));
  EXPECT_TRUE(staging.load.applied);
  EXPECT_EQ(staging.load.tuples_applied, 3u);
  EXPECT_EQ(db.Tuples("T"), (std::vector<db::Tuple>{{5, 6}, {7, 8}}));
  EXPECT_EQ(db.NumTuples("R"), 2u);
}

TEST(LoadDatasetTest, StagingRejectionRefusesToApply) {
  db::Database db;
  api::DatasetStaging staging =
      api::StageDataset("relation R:\n1 2\n1 2 3\n", db, false);
  EXPECT_FALSE(staging.load.ok);
  db::MutationResult r = api::ApplyDataset(&staging, &db);
  EXPECT_FALSE(r);
  EXPECT_FALSE(db.HasRelation("R"));
}

TEST(LoadDatasetTest, StructuralErrorsAreDiagnosed) {
  db::Database db;
  api::DatasetLoad load = api::LoadDataset(
      "1 2\n"             // line 1: tuple outside any block
      "relation R\n"      // line 2: missing ':'
      "relation  :\n",    // line 3: no name
      &db, false);
  EXPECT_FALSE(load.ok);
  EXPECT_EQ(load.diagnostics.size(), 3u);
}

// --- Wire codec --------------------------------------------------------

TEST(WireTest, EncodeDecodeRoundtrip) {
  api::Frame in;
  in.kind = "query";
  in.Add("id", "42").Add("deadline_ms", "100");
  in.body = "R(a,b), S(b,c)\nwith a newline";

  api::FrameParser parser;
  parser.Feed(api::EncodeFrame(in));
  api::Frame out;
  std::string error;
  ASSERT_EQ(parser.Next(&out, &error), api::FrameParser::Result::kFrame)
      << error;
  EXPECT_EQ(out.kind, "query");
  ASSERT_NE(out.Find("id"), nullptr);
  EXPECT_EQ(*out.Find("id"), "42");
  EXPECT_EQ(out.FindUint("deadline_ms", 0), 100u);
  EXPECT_EQ(out.FindUint("absent", 7), 7u);
  EXPECT_EQ(out.body, in.body);
  EXPECT_EQ(parser.Next(&out, &error), api::FrameParser::Result::kNeedMore);
}

TEST(WireTest, ByteAtATimeFeedStillParses) {
  api::Frame in;
  in.kind = "mutate";
  in.Add("id", "1");
  in.body = "relation R:\n1 2\n";
  const std::string wire = api::EncodeFrame(in);

  api::FrameParser parser;
  api::Frame out;
  std::string error;
  for (char c : wire) {
    parser.Feed(&c, 1);
  }
  ASSERT_EQ(parser.Next(&out, &error), api::FrameParser::Result::kFrame);
  EXPECT_EQ(out.body, in.body);
}

TEST(WireTest, BackToBackFramesDecodeInOrder) {
  api::Frame a, b;
  a.kind = "ping";
  a.Add("id", "1");
  b.kind = "stats";
  b.Add("id", "2");
  api::FrameParser parser;
  parser.Feed(api::EncodeFrame(a) + api::EncodeFrame(b));
  api::Frame out;
  std::string error;
  ASSERT_EQ(parser.Next(&out, &error), api::FrameParser::Result::kFrame);
  EXPECT_EQ(out.kind, "ping");
  ASSERT_EQ(parser.Next(&out, &error), api::FrameParser::Result::kFrame);
  EXPECT_EQ(out.kind, "stats");
}

TEST(WireTest, MalformedMagicPoisonsTheParser) {
  api::FrameParser parser;
  parser.Feed(std::string_view("nope query 0\n.\n"));
  api::Frame out;
  std::string error;
  EXPECT_EQ(parser.Next(&out, &error), api::FrameParser::Result::kError);
  EXPECT_FALSE(error.empty());
  // Poisoned: even valid bytes fail now.
  parser.Feed(api::EncodeFrame(api::Frame{"ping", {}, ""}));
  EXPECT_EQ(parser.Next(&out, &error), api::FrameParser::Result::kError);
}

TEST(WireTest, OversizedBodyDeclarationIsRejected) {
  api::FrameParser parser;
  parser.Feed(std::string_view("qcp query 99999999999\n.\n"));
  api::Frame out;
  std::string error;
  EXPECT_EQ(parser.Next(&out, &error), api::FrameParser::Result::kError);
}

TEST(WireTest, FieldValuesMayContainSpaces) {
  api::Frame in;
  in.kind = "error";
  in.Add("message", "admission queue saturated (8 running, 64 queued)");
  api::FrameParser parser;
  parser.Feed(api::EncodeFrame(in));
  api::Frame out;
  std::string error;
  ASSERT_EQ(parser.Next(&out, &error), api::FrameParser::Result::kFrame);
  EXPECT_EQ(*out.Find("message"),
            "admission queue saturated (8 running, 64 queued)");
}

TEST(WireTest, NewlinesInFieldValuesAreSanitizedNotFramed) {
  api::Frame in;
  in.kind = "error";
  in.Add("message", "two\nlines");
  api::FrameParser parser;
  parser.Feed(api::EncodeFrame(in));
  api::Frame out;
  std::string error;
  // The encoder must not let a value forge a header line.
  ASSERT_EQ(parser.Next(&out, &error), api::FrameParser::Result::kFrame);
  EXPECT_EQ(*out.Find("message"), "two_lines");
}

// --- RunReport server section ------------------------------------------

TEST(RunReportServerSectionTest, EmittedOnlyWhenPresent) {
  util::RunReport report;
  report.tool = "qc_serverd";
  EXPECT_EQ(report.ToJson().find("\"server\""), std::string::npos);

  report.server.present = true;
  report.server.request_id = 42;
  report.server.queue_ms = 1.5;
  report.server.snapshot_epoch = 7;
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"server\""), std::string::npos);
  EXPECT_NE(json.find("\"request_id\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"snapshot_epoch\": 7"), std::string::npos);

  // Emit() into a caller-owned writer is the same serializer ToJson uses.
  util::JsonWriter w;
  report.Emit(w);
  EXPECT_EQ(w.Take(), json);
}

// --- ExecuteQuery ------------------------------------------------------

TEST(QueryApiTest, ExecuteQueryAgainstDatabase) {
  db::Database db;
  ASSERT_TRUE(db.SetRelation("R", 2, {{1, 2}, {2, 3}}));
  ASSERT_TRUE(db.SetRelation("S", 2, {{2, 10}, {3, 11}}));
  api::QueryRequest req;
  req.id = 9;
  req.query_text = "R(a,b), S(b,c)";
  req.want_analysis = true;
  api::QueryResponse resp = api::ExecuteQuery(req, db, nullptr);
  ASSERT_TRUE(resp.input_ok) << resp.error;
  EXPECT_EQ(resp.ExitCode(), 0);
  EXPECT_EQ(resp.result.tuples.size(), 2u);
  EXPECT_FALSE(resp.method.empty());
  EXPECT_FALSE(resp.analysis_text.empty());
  EXPECT_EQ(resp.report.server.request_id, 9u);
  EXPECT_FALSE(resp.report.server.present);  // Branding is the server's job.
}

TEST(QueryApiTest, ExecuteQueryInputErrors) {
  db::Database db;
  ASSERT_TRUE(db.SetRelation("R", 2, {{1, 2}}));
  api::QueryRequest req;
  req.query_text = "R(a,b), Missing(b,c)";
  api::QueryResponse resp = api::ExecuteQuery(req, db, nullptr);
  EXPECT_FALSE(resp.input_ok);
  EXPECT_EQ(resp.ExitCode(), 1);
  EXPECT_NE(resp.error.find("Missing"), std::string::npos);

  req.query_text = "R(a,";
  resp = api::ExecuteQuery(req, db, nullptr);
  EXPECT_FALSE(resp.input_ok);
  EXPECT_EQ(resp.ExitCode(), 1);
}

TEST(QueryApiTest, MaxRowsTruncatesWithBudgetExhaustedStatus) {
  db::Database db;
  ASSERT_TRUE(db.SetRelation("R", 2, {{1, 1}, {2, 2}, {3, 3}, {4, 4}}));
  api::QueryRequest req;
  req.query_text = "R(a,b)";
  req.options.max_rows = 2;
  api::QueryResponse resp = api::ExecuteQuery(req, db, nullptr);
  ASSERT_TRUE(resp.input_ok);
  EXPECT_EQ(resp.status, util::RunStatus::kBudgetExhausted);
  EXPECT_EQ(resp.ExitCode(), 5);
  EXPECT_TRUE(resp.result.truncated);
  EXPECT_LE(resp.result.tuples.size(), 2u);
}

// --- LoadDatasetFile: I/O failures vs parse failures --------------------
//
// A missing file and a malformed file are different operational events
// (retry/config-fix vs fix-the-data); the api must never blur them into
// one diagnostic.

TEST(LoadDatasetFileTest, MissingFileIsAnIoErrorNotAParseError) {
  db::Database db;
  api::DatasetFileLoad load = api::LoadDatasetFile(
      "/nonexistent/qc_no_such_file.txt", &db, false);
  EXPECT_FALSE(load.io_ok);
  EXPECT_NE(load.io_error.find("qc_no_such_file"), std::string::npos)
      << load.io_error;
  // The underlying errno text travels in the diagnostic.
  EXPECT_NE(load.io_error.find("No such file"), std::string::npos)
      << load.io_error;
  EXPECT_EQ(load.load.tuples_applied, 0u);
}

TEST(LoadDatasetFileTest, ParseErrorStillReportsIoSuccess) {
  const std::string path = ::testing::TempDir() + "qc_api_bad_dataset.txt";
  {
    std::ofstream out(path);
    out << "relation R:\n1 2\nnot a number here\n";
  }
  db::Database db;
  api::DatasetFileLoad load = api::LoadDatasetFile(path, &db, false);
  EXPECT_TRUE(load.io_ok) << load.io_error;  // The read itself worked.
  EXPECT_FALSE(load.load.ok);
  EXPECT_FALSE(load.load.diagnostics.empty());
  std::remove(path.c_str());
}

TEST(LoadDatasetFileTest, CleanFileLoads) {
  const std::string path = ::testing::TempDir() + "qc_api_good_dataset.txt";
  {
    std::ofstream out(path);
    out << "relation R:\n1 2\n3 4\n";
  }
  db::Database db;
  api::DatasetFileLoad load = api::LoadDatasetFile(path, &db, false);
  EXPECT_TRUE(load.io_ok) << load.io_error;
  EXPECT_TRUE(load.load.ok);
  EXPECT_EQ(load.load.tuples_applied, 2u);
  EXPECT_EQ(db.NumTuples("R"), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qc
