#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/autosolver.h"
#include "csp/generators.h"
#include "db/agm.h"
#include "db/generic_join.h"
#include "graph/generators.h"
#include "reductions/clique_reductions.h"
#include "reductions/sat_reductions.h"
#include "sat/generators.h"
#include "sat/dpll.h"
#include "util/rng.h"

namespace qc::core {
namespace {

db::JoinQuery TriangleQuery() {
  db::JoinQuery q;
  q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  return q;
}

TEST(AnalyzerTest, TriangleQueryReport) {
  Analysis a = AnalyzeQuery(TriangleQuery());
  EXPECT_EQ(a.num_variables, 3);
  EXPECT_EQ(a.num_constraints, 3);
  EXPECT_FALSE(a.acyclic);
  EXPECT_EQ(a.treewidth, 2);
  EXPECT_TRUE(a.treewidth_exact);
  ASSERT_TRUE(a.rho_star_valid);
  EXPECT_EQ(a.rho_star, util::Fraction(3, 2));
  EXPECT_DOUBLE_EQ(a.AgmBound(4.0), 8.0);
  // Triangle query with distinct relation names is its own core.
  EXPECT_EQ(a.core_universe_size, 3);
  EXPECT_EQ(a.core_treewidth, 2);
  // ETH certificate (tw = 2) and the unconditional AGM certificate.
  bool has_eth = false, has_agm = false, has_clique = false;
  for (const auto& lb : a.lower_bounds) {
    if (lb.assumption == "ETH") has_eth = true;
    if (lb.assumption == "unconditional") has_agm = true;
    if (lb.assumption == "k-clique conjecture") has_clique = true;
  }
  EXPECT_TRUE(has_eth);
  EXPECT_TRUE(has_agm);
  EXPECT_TRUE(has_clique);  // Primal graph of the triangle is K_3.
  EXPECT_NE(a.ToString().find("rho*"), std::string::npos);
}

TEST(AnalyzerTest, AcyclicPathQuery) {
  db::JoinQuery q;
  q.Add("R", {"a", "b"}).Add("S", {"b", "c"});
  Analysis a = AnalyzeQuery(q);
  EXPECT_TRUE(a.acyclic);
  EXPECT_EQ(a.treewidth, 1);
  EXPECT_NE(a.recommended_algorithm.find("Yannakakis"), std::string::npos);
  // Core of R(a,b), S(b,c) with distinct names is everything.
  EXPECT_EQ(a.core_universe_size, 3);
  // Polynomial case flagged via Theorem 5.3.
  bool has_poly = false;
  for (const auto& lb : a.lower_bounds) {
    if (lb.theorem == "Theorem 5.3") has_poly = true;
  }
  EXPECT_TRUE(has_poly);
}

TEST(AnalyzerTest, SelfJoinEvenCycleCollapsesCore) {
  // Q = E(a,b) |><| E(b,c) |><| E(c,d) |><| E(d,a) with ONE relation E used
  // four times and symmetric usage... the canonical structure is a directed
  // 4-cycle over a single symbol; its core is a self-loop? No: directed
  // 4-cycle core is... a directed cycle maps onto smaller structures only
  // if a homomorphism exists; C4 directed -> single loop requires a loop.
  // Use the undirected encoding instead: both orientations per atom pair is
  // not expressible per atom; instead test with an even path:
  // E(a,b), E(c,b): two tuples, one symbol; h(c)=a collapses it.
  db::JoinQuery q;
  q.Add("E", {"a", "b"}).Add("E", {"c", "b"});
  Analysis a = AnalyzeQuery(q);
  EXPECT_EQ(a.core_universe_size, 2);
  EXPECT_EQ(a.core_treewidth, 1);
}

TEST(AnalyzerTest, CspCliqueInstance) {
  util::Rng rng(1);
  graph::Graph g = graph::RandomGnp(10, 0.5, &rng);
  csp::CspInstance csp = reductions::CspFromClique(g, 5);
  Analysis a = AnalyzeCsp(csp);
  EXPECT_EQ(a.num_variables, 5);
  EXPECT_EQ(a.treewidth, 4);  // K_5 primal graph.
  bool has_clique_cert = false;
  for (const auto& lb : a.lower_bounds) {
    if (lb.assumption == "k-clique conjecture") has_clique_cert = true;
  }
  EXPECT_TRUE(has_clique_cert);
}

TEST(AnalyzerTest, LargeInstanceUsesHeuristics) {
  util::Rng rng(2);
  graph::Graph g = graph::RandomGnp(40, 0.2, &rng);
  csp::CspInstance csp = csp::RandomBinaryCsp(g, 3, 0.3, &rng);
  Analysis a = AnalyzeCsp(csp);
  EXPECT_FALSE(a.treewidth_exact);
  EXPECT_EQ(a.core_universe_size, -1);  // Skipped: too large.
  EXPECT_GE(a.treewidth, 1);
}

TEST(AutoSolverTest, RoutesBooleanTractableToSchaefer) {
  // 2-colouring = disequality over domain 2: bijunctive, Schaefer-tractable.
  csp::CspInstance csp = csp::ColoringCsp(graph::Cycle(6), 2);
  AutoCspResult r = SolveCspAuto(csp);
  EXPECT_EQ(r.method, SolveMethod::kSchaefer);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(csp.Check(r.assignment));
  // Odd cycle: unsatisfiable, still via Schaefer.
  csp::CspInstance odd = csp::ColoringCsp(graph::Cycle(7), 2);
  AutoCspResult ro = SolveCspAuto(odd);
  EXPECT_EQ(ro.method, SolveMethod::kSchaefer);
  EXPECT_FALSE(ro.satisfiable);
}

TEST(AutoSolverTest, RoutesSmallWidthToTreeDp) {
  util::Rng rng(3);
  graph::Graph structure = graph::RandomPartialKTree(12, 2, 0.8, &rng);
  csp::CspInstance csp = csp::RandomBinaryCsp(structure, 4, 0.3, &rng);
  AutoCspResult r = SolveCspAuto(csp);
  EXPECT_EQ(r.method, SolveMethod::kTreewidthDp);
  EXPECT_EQ(r.satisfiable, csp::SolveBruteForce(csp).found);
  if (r.satisfiable) {
    EXPECT_TRUE(csp.Check(r.assignment));
  }
}

TEST(AutoSolverTest, RoutesDenseToBacktracking) {
  util::Rng rng(4);
  csp::CspInstance csp =
      csp::RandomBinaryCsp(graph::Complete(10), 4, 0.25, &rng);
  AutoCspResult r = SolveCspAuto(csp);
  EXPECT_EQ(r.method, SolveMethod::kBacktracking);
  if (r.satisfiable) {
    EXPECT_TRUE(csp.Check(r.assignment));
  }
}

TEST(AutoSolverTest, BooleanNpHardFallsThrough) {
  // 1-in-3 constraints sit in no Schaefer class, so the router must skip
  // the dichotomy dispatcher and use a structural engine instead.
  util::Rng rng(5);
  csp::CspInstance csp;
  csp.num_vars = 9;
  csp.domain_size = 2;
  csp::Relation one_in_three(3);
  one_in_three.Add({0, 0, 1});
  one_in_three.Add({0, 1, 0});
  one_in_three.Add({1, 0, 0});
  for (int i = 0; i < 6; ++i) {
    std::vector<int> scope = rng.Sample(9, 3);
    csp.AddConstraint(scope, one_in_three);
  }
  AutoCspResult r = SolveCspAuto(csp);
  EXPECT_NE(r.method, SolveMethod::kSchaefer);
  EXPECT_EQ(r.satisfiable, csp::SolveBruteForce(csp).found);
}

TEST(AutoSolverTest, QueryRouting) {
  util::Rng rng(6);
  // Acyclic query -> Yannakakis.
  db::JoinQuery path;
  path.Add("R", {"a", "b"}).Add("S", {"b", "c"});
  db::Database pdb = db::RandomDatabase(path, 20, 5, &rng);
  AutoQueryResult pr = EvaluateQueryAuto(path, pdb);
  EXPECT_EQ(pr.method, SolveMethod::kYannakakis);
  db::JoinResult expected = db::EvaluateNestedLoop(path, pdb);
  expected.Normalize();
  pr.result.Normalize();
  EXPECT_EQ(pr.result.tuples, expected.tuples);
  // Cyclic -> Generic Join.
  db::JoinQuery tri = TriangleQuery();
  db::Database tdb = db::RandomDatabase(tri, 20, 5, &rng);
  AutoQueryResult tr = EvaluateQueryAuto(tri, tdb);
  EXPECT_EQ(tr.method, SolveMethod::kGenericJoin);
  db::JoinResult texp = db::EvaluateNestedLoop(tri, tdb);
  texp.Normalize();
  tr.result.Normalize();
  EXPECT_EQ(tr.result.tuples, texp.tuples);
}

TEST(AutoSolverTest, MethodNames) {
  EXPECT_EQ(ToString(SolveMethod::kSchaefer), "schaefer");
  EXPECT_EQ(ToString(SolveMethod::kYannakakis), "yannakakis");
  EXPECT_EQ(ToString(SolveMethod::kGenericJoin), "generic-join");
  EXPECT_EQ(ToString(SolveMethod::kTreewidthDp), "treewidth-dp");
  EXPECT_EQ(ToString(SolveMethod::kBacktracking), "backtracking");
}

class AutoSolverAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(AutoSolverAgreementTest, AlwaysAgreesWithBruteForce) {
  util::Rng rng(1600 + GetParam());
  int style = GetParam() % 3;
  graph::Graph structure =
      style == 0   ? graph::RandomPartialKTree(7, 2, 0.7, &rng)
      : style == 1 ? graph::RandomGnp(7, 0.5, &rng)
                   : graph::Cycle(7);
  int domain = 2 + GetParam() % 3;
  csp::CspInstance csp = csp::RandomBinaryCsp(structure, domain, 0.4, &rng);
  AutoCspResult r = SolveCspAuto(csp);
  EXPECT_EQ(r.satisfiable, csp::SolveBruteForce(csp).found)
      << "method " << ToString(r.method);
  if (r.satisfiable) {
    EXPECT_TRUE(csp.Check(r.assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutoSolverAgreementTest,
                         ::testing::Range(0, 18));

}  // namespace
}  // namespace qc::core
