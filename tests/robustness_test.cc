// Malformed-input hardening corpus for the text front ends (db/parser and
// csp/serialization): truncated input, unbalanced parens, huge arities,
// embedded NUL bytes, multi-megabyte tokens. Every case must come back as a
// position-annotated ParseError — never a crash, hang, or unbounded
// allocation. The asan preset runs this suite under
// -fsanitize=address,undefined to also catch leaks and UB on these paths.

#include <string>
#include <vector>

#include "csp/serialization.h"
#include "db/parser.h"
#include "gtest/gtest.h"
#include "util/parse.h"

namespace qc {
namespace {

// ---------------------------------------------------------------------------
// db::ParseJoinQuery

struct QueryCase {
  const char* name;
  std::string text;
};

std::vector<QueryCase> BadQueryCorpus() {
  std::vector<QueryCase> corpus = {
      {"empty", ""},
      {"whitespace_only", "  \t\n  "},
      {"truncated_after_paren", "R("},
      {"truncated_attr_list", "R(a,b"},
      {"lone_close_paren", ")"},
      {"close_before_open", "R)a("},
      {"no_attributes", "R()"},
      {"missing_paren", "R a, b"},
      {"bad_start", "123(a)"},
      {"nul_in_name", std::string("R\0S(a)", 6)},
      {"nul_at_attr", std::string("R(\0)", 4)},
      {"second_atom_truncated", "R(a,b), S(b"},
  };
  // A 10MB relation name: must be rejected with a clipped message, not
  // echoed back verbatim or materialized into an atom.
  corpus.push_back({"huge_relation_name",
                    std::string(10u << 20, 'x') + "(a,b)"});
  // An atom with more attributes than kMaxAtomArity.
  std::string wide = "R(";
  for (std::size_t i = 0; i <= db::kMaxAtomArity; ++i) {
    wide += "a" + std::to_string(i) + ",";
  }
  wide += "z)";
  corpus.push_back({"huge_arity_atom", std::move(wide)});
  return corpus;
}

TEST(RobustnessQueryParser, CorpusRejectsWithPositions) {
  for (const QueryCase& c : BadQueryCorpus()) {
    SCOPED_TRACE(c.name);
    auto result = db::ParseJoinQuery(c.text);
    ASSERT_FALSE(result.has_value());
    EXPECT_GE(result.error.line, 1);
    EXPECT_GE(result.error.column, 1);
    EXPECT_FALSE(result.error.message.empty());
    // Error strings stay bounded no matter how large the input token was.
    EXPECT_LT(result.error.message.size(), 256u);
  }
}

TEST(RobustnessQueryParser, GoodQueriesStillParse) {
  auto q = db::ParseJoinQuery("R1(a, b), R2(a, c), R3(b, c)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->atoms.size(), 3u);
  auto self_join = db::ParseJoinQuery("E(x,y) E(y,z)");
  ASSERT_TRUE(self_join.has_value());
  EXPECT_EQ(self_join->atoms.size(), 2u);
}

TEST(RobustnessQueryParser, ErrorPositionPointsAtOffendingToken) {
  auto r = db::ParseJoinQuery("R(a,b),\nS(b,");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error.line, 2);
}

// ---------------------------------------------------------------------------
// db::ParseTuples

TEST(RobustnessTupleParser, CorpusRejectsWithPositions) {
  std::vector<QueryCase> corpus = {
      {"alpha_value", "1 2\n3 x\n"},
      {"arity_mismatch", "1 2\n3 4 5\n"},
      {"bare_minus", "1 -\n"},
      {"overflow_value", "1 99999999999999999999999999\n"},
      {"nul_value", std::string("1 \0002\n", 5)},
  };
  corpus.push_back({"huge_token", std::string(5u << 20, '7') + "9x\n"});
  std::string wide;
  for (std::size_t i = 0; i <= db::kMaxTupleArity; ++i) wide += "1 ";
  corpus.push_back({"huge_tuple_arity", wide + "\n"});
  for (const QueryCase& c : corpus) {
    SCOPED_TRACE(c.name);
    auto result = db::ParseTuples(c.text);
    ASSERT_FALSE(result.has_value());
    EXPECT_GE(result.error.line, 1);
    EXPECT_GE(result.error.column, 1);
    EXPECT_LT(result.error.message.size(), 256u);
  }
}

TEST(RobustnessTupleParser, GoodTuplesStillParse) {
  auto t = db::ParseTuples("1 2\n# comment\n3 4\n\n-5 6\n");
  ASSERT_TRUE(t.has_value());
  ASSERT_EQ(t->size(), 3u);
  EXPECT_EQ((*t)[2][0], -5);
}

// ---------------------------------------------------------------------------
// csp serialization

TEST(RobustnessCspParser, CorpusRejectsWithPositions) {
  std::vector<QueryCase> corpus = {
      {"empty", ""},
      {"missing_header", "constraint 1 0\n0\nend\n"},
      {"bad_header_token_count", "csp 3\n"},
      {"bad_var_count", "csp x 2\n"},
      {"negative_vars", "csp -4 2\n"},
      {"implausible_vars", "csp 99999999999 2\n"},
      {"huge_arity", "csp 3 2\nconstraint 5000000000 0\n"},
      {"arity_scope_mismatch", "csp 3 2\nconstraint 2 0\n"},
      {"scope_var_out_of_range", "csp 3 2\nconstraint 1 7\n0\nend\n"},
      {"tuple_value_out_of_domain", "csp 3 2\nconstraint 1 0\n5\nend\n"},
      {"tuple_arity_mismatch", "csp 3 2\nconstraint 2 0 1\n0\nend\n"},
      {"end_without_constraint", "csp 3 2\nend\n"},
      {"nested_constraint",
       "csp 3 2\nconstraint 1 0\nconstraint 1 1\nend\n"},
      {"unterminated_constraint", "csp 3 2\nconstraint 1 0\n0\n"},
      {"tuple_outside_constraint", "csp 3 2\n0 1\n"},
      {"nul_in_value", std::string("csp 3 2\nconstraint 1 0\n\0\nend\n", 29)},
  };
  corpus.push_back({"huge_token",
                    "csp 3 2\nconstraint 1 0\n" + std::string(5u << 20, '1') +
                        "\nend\n"});
  for (const QueryCase& c : corpus) {
    SCOPED_TRACE(c.name);
    auto result = csp::ParseCsp(c.text);
    ASSERT_FALSE(result.has_value());
    EXPECT_GE(result.error.line, 1);
    EXPECT_GE(result.error.column, 1);
    EXPECT_LT(result.error.message.size(), 256u);
  }
}

TEST(RobustnessCspParser, RoundTripStillWorks) {
  csp::CspInstance csp;
  csp.num_vars = 3;
  csp.domain_size = 2;
  csp::Relation rel(2);
  rel.Add({0, 1});
  rel.Add({1, 0});
  rel.Seal();
  csp.AddConstraint({0, 2}, std::move(rel));
  auto parsed = csp::ParseCsp(csp::ToText(csp));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_vars, 3);
  EXPECT_EQ(parsed->domain_size, 2);
  ASSERT_EQ(parsed->constraints.size(), 1u);
  EXPECT_EQ(parsed->constraints[0].scope, (std::vector<int>{0, 2}));
}

TEST(RobustnessCspParser, LegacyWrapperReportsRenderedError) {
  std::string error;
  auto csp = csp::FromText("csp 3\n", &error);
  EXPECT_FALSE(csp.has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(RobustnessCspParser, CommentsAndBlankLinesIgnored) {
  auto parsed = csp::ParseCsp(
      "# a comment\n\ncsp 2 2\n# another\nconstraint 1 0\n0\n1\nend\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->constraints.size(), 1u);
}

// ---------------------------------------------------------------------------
// Clipping helper

TEST(RobustnessClipForError, ClipsAndEscapes) {
  std::string clipped = util::ClipForError(std::string(1000, 'a'));
  EXPECT_LT(clipped.size(), 80u);
  EXPECT_NE(clipped.find("1000 bytes"), std::string::npos);
  EXPECT_EQ(util::ClipForError(std::string("a\0b", 3)), "a\\x00b");
}

}  // namespace
}  // namespace qc
