#include <gtest/gtest.h>

#include <set>

#include "db/agm.h"
#include "db/enumeration.h"
#include "db/generic_join.h"
#include "graph/colorcoding.h"
#include "graph/generators.h"
#include "graph/vertexcover.h"
#include "util/rng.h"

namespace qc {
namespace {

TEST(AcyclicEnumeratorTest, RejectsCyclicQueries) {
  db::JoinQuery tri;
  tri.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  util::Rng rng(1);
  db::Database d = db::RandomDatabase(tri, 10, 5, &rng);
  db::AcyclicEnumerator e(tri, d);
  EXPECT_FALSE(e.IsValid());
}

TEST(AcyclicEnumeratorTest, PathQueryProducesAllAnswersOnce) {
  db::JoinQuery q;
  q.Add("R", {"a", "b"}).Add("S", {"b", "c"});
  db::Database d;
  d.SetRelation("R", 2, {{1, 10}, {2, 10}, {3, 11}});
  d.SetRelation("S", 2, {{10, 7}, {10, 8}, {12, 9}});
  db::AcyclicEnumerator e(q, d);
  ASSERT_TRUE(e.IsValid());
  std::set<db::Tuple> seen;
  while (auto t = e.Next()) {
    EXPECT_TRUE(seen.insert(*t).second) << "duplicate answer";
  }
  // Answers: (1,10,7), (1,10,8), (2,10,7), (2,10,8).
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count({1, 10, 7}));
  EXPECT_TRUE(seen.count({2, 10, 8}));
  // Exhausted stays exhausted; Reset restarts.
  EXPECT_FALSE(e.Next().has_value());
  e.Reset();
  EXPECT_TRUE(e.Next().has_value());
}

TEST(AcyclicEnumeratorTest, EmptyAnswerSet) {
  db::JoinQuery q;
  q.Add("R", {"a", "b"}).Add("S", {"b", "c"});
  db::Database d;
  d.SetRelation("R", 2, {{1, 10}});
  d.SetRelation("S", 2, {{11, 7}});
  db::AcyclicEnumerator e(q, d);
  ASSERT_TRUE(e.IsValid());
  EXPECT_FALSE(e.Next().has_value());
}

class EnumeratorAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(EnumeratorAgreementTest, MatchesGenericJoinOnAcyclicQueries) {
  util::Rng rng(4000 + GetParam());
  db::JoinQuery q;
  int shape = GetParam() % 3;
  if (shape == 0) {
    q.Add("R", {"a", "b"}).Add("S", {"b", "c"}).Add("T", {"c", "d"});
  } else if (shape == 1) {
    q.Add("R", {"a", "b"}).Add("S", {"b", "c"}).Add("T", {"b", "d"});
  } else {
    q.Add("R", {"a", "b", "c"}).Add("S", {"c", "d"}).Add("T", {"c", "e"});
  }
  db::Database d = db::RandomDatabase(q, 25, 5, &rng);
  db::AcyclicEnumerator e(q, d);
  ASSERT_TRUE(e.IsValid());
  db::JoinResult enumerated;
  enumerated.attributes = e.attributes();
  while (auto t = e.Next()) enumerated.tuples.push_back(*t);
  std::size_t raw = enumerated.tuples.size();
  enumerated.Normalize();
  EXPECT_EQ(enumerated.tuples.size(), raw) << "duplicates produced";
  db::JoinResult reference = db::GenericJoin(q, d).Evaluate();
  reference.Normalize();
  EXPECT_EQ(enumerated.tuples, reference.tuples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumeratorAgreementTest,
                         ::testing::Range(0, 18));

TEST(VertexCoverKernelTest, ForcesHighDegreeVertices) {
  // Star with 6 leaves, k = 2: the centre has degree 6 > 2, forced.
  graph::Graph g = graph::Star(6);
  graph::VertexCoverKernel kernel = graph::KernelizeVertexCover(g, 2);
  EXPECT_FALSE(kernel.definitely_no);
  EXPECT_EQ(kernel.forced, (std::vector<int>{0}));
  EXPECT_EQ(kernel.remaining_budget, 1);
  EXPECT_TRUE(kernel.kernel_vertices.empty());  // All edges covered.
}

TEST(VertexCoverKernelTest, EdgeBoundRejects) {
  // K_8 needs a cover of size 7; with k = 2 no vertex has degree > 2... all
  // do (degree 7 > 2): forced removals exhaust the budget -> NO.
  graph::VertexCoverKernel kernel =
      graph::KernelizeVertexCover(graph::Complete(8), 2);
  EXPECT_TRUE(kernel.definitely_no);
  // A k^2-edge bound rejection: many disjoint edges, tiny k.
  graph::Graph matching(20);
  for (int i = 0; i < 10; ++i) matching.AddEdge(2 * i, 2 * i + 1);
  graph::VertexCoverKernel km = graph::KernelizeVertexCover(matching, 2);
  EXPECT_TRUE(km.definitely_no);  // 10 > 2*2 edges, no high-degree rule.
}

class VcKernelAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(VcKernelAgreementTest, KernelizedSearchMatchesPlain) {
  util::Rng rng(4100 + GetParam());
  graph::Graph g = graph::RandomGnp(16, 0.25, &rng);
  for (int k = 2; k <= 8; k += 2) {
    auto plain = graph::FindVertexCoverOfSize(g, k);
    auto kerneled = graph::FindVertexCoverKernelized(g, k);
    EXPECT_EQ(plain.has_value(), kerneled.has_value())
        << "k=" << k << " seed=" << GetParam();
    if (kerneled) {
      EXPECT_TRUE(graph::IsVertexCover(g, *kerneled));
      EXPECT_LE(kerneled->size(), static_cast<std::size_t>(k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VcKernelAgreementTest, ::testing::Range(0, 12));

TEST(ColorCodingTest, FindsPathsInPathGraph) {
  util::Rng rng(5);
  graph::Graph g = graph::Path(12);
  for (int k : {2, 4, 6}) {
    auto path = graph::FindKPathColorCoding(g, k, &rng);
    ASSERT_TRUE(path.has_value()) << k;
    EXPECT_EQ(path->size(), static_cast<std::size_t>(k));
    EXPECT_TRUE(graph::IsSimplePath(g, *path));
  }
  // No 13-vertex path exists in P_12.
  EXPECT_FALSE(graph::FindKPathColorCoding(g, 13, &rng, 40).has_value());
}

TEST(ColorCodingTest, AgreesWithBruteForceOnRandom) {
  util::Rng rng(6);
  for (int trial = 0; trial < 8; ++trial) {
    graph::Graph g = graph::RandomGnp(14, 0.12, &rng);
    for (int k : {3, 5}) {
      auto brute = graph::FindKPathBruteForce(g, k);
      auto cc = graph::FindKPathColorCoding(g, k, &rng);
      if (brute) {
        // One-sided error: with the default round count a miss is possible
        // but vanishingly rare at k = 5.
        ASSERT_TRUE(cc.has_value()) << "trial " << trial << " k " << k;
        EXPECT_TRUE(graph::IsSimplePath(g, *cc));
      } else {
        EXPECT_FALSE(cc.has_value());
      }
    }
  }
}

TEST(ColorCodingTest, IsSimplePathRejectsBadWitnesses) {
  graph::Graph g = graph::Path(5);
  EXPECT_TRUE(graph::IsSimplePath(g, {0, 1, 2}));
  EXPECT_FALSE(graph::IsSimplePath(g, {0, 1, 0}));   // Repeats a vertex.
  EXPECT_FALSE(graph::IsSimplePath(g, {0, 2}));      // Not an edge.
}

}  // namespace
}  // namespace qc
