// Targeted edge-case coverage across modules: accessors, stats plumbing,
// analyzer fhw field, degenerate inputs, and a few additional property
// sweeps on query shapes not exercised elsewhere.

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "csp/generators.h"
#include "csp/solver.h"
#include "db/agm.h"
#include "db/enumeration.h"
#include "db/generic_join.h"
#include "db/joins.h"
#include "db/yannakakis.h"
#include "graph/generators.h"
#include "graph/vertexcover.h"
#include "sat/cdcl.h"
#include "sat/cnf.h"
#include "util/rng.h"
#include "util/table.h"

namespace qc {
namespace {

TEST(AnalyzerFhwTest, ReportsFractionalHypertreeWidth) {
  db::JoinQuery tri;
  tri.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  core::Analysis a = core::AnalyzeQuery(tri);
  ASSERT_TRUE(a.fhw_valid);
  EXPECT_EQ(a.fhw_upper, util::Fraction(3, 2));
  EXPECT_NE(a.ToString().find("fhw"), std::string::npos);

  db::JoinQuery path;
  path.Add("R", {"a", "b"}).Add("S", {"b", "c"});
  core::Analysis ap = core::AnalyzeQuery(path);
  ASSERT_TRUE(ap.fhw_valid);
  EXPECT_EQ(ap.fhw_upper, util::Fraction(1));  // Acyclic.
}

TEST(GenericJoinStatsTest, ProbesAndNodesAccumulate) {
  util::Rng rng(1);
  db::JoinQuery tri;
  tri.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  db::Database d = db::RandomDatabase(tri, 50, 12, &rng);
  db::GenericJoin gj(tri, d);
  gj.Count();
  EXPECT_GT(gj.stats().probes, 0u);
  EXPECT_EQ(gj.attribute_order(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(JoinStatsTest, BinaryPlanReportsIntermediates) {
  util::Rng rng(2);
  db::JoinQuery q;
  q.Add("R", {"a", "b"}).Add("S", {"b", "c"});
  db::Database d = db::RandomDatabase(q, 30, 6, &rng);
  db::JoinStats stats;
  db::EvaluateGreedyBinaryJoin(q, d, &stats);
  EXPECT_GT(stats.probes, 0u);
  EXPECT_GE(stats.max_intermediate, 0u);
}

TEST(FiveCycleQueryTest, AllEvaluatorsAgree) {
  // rho*(C5) = 5/2; a query shape not used in the other suites.
  util::Rng rng(3);
  db::JoinQuery q;
  const char* attrs[] = {"a", "b", "c", "d", "e"};
  for (int i = 0; i < 5; ++i) {
    q.Add("R" + std::to_string(i), {attrs[i], attrs[(i + 1) % 5]});
  }
  auto agm = db::AnalyzeAgm(q);
  ASSERT_TRUE(agm.has_value());
  EXPECT_EQ(agm->rho_star, util::Fraction(5, 2));
  db::Database d = db::RandomDatabase(q, 40, 8, &rng);
  db::JoinResult expected = db::EvaluateNestedLoop(q, d);
  expected.Normalize();
  db::JoinResult wcoj = db::GenericJoin(q, d).Evaluate();
  wcoj.Normalize();
  EXPECT_EQ(wcoj.tuples, expected.tuples);
  db::JoinResult greedy = db::EvaluateGreedyBinaryJoin(q, d);
  greedy.Normalize();
  EXPECT_EQ(greedy.tuples, expected.tuples);
  EXPECT_FALSE(db::IsAcyclicQuery(q));
}

TEST(StarEnumerationTest, EnumeratorHandlesHighFanout) {
  // Star query: one centre, three leaves — stresses the enumerator's
  // sibling-frame handling (all children share only the centre).
  util::Rng rng(4);
  db::JoinQuery q;
  q.Add("R1", {"c", "x"}).Add("R2", {"c", "y"}).Add("R3", {"c", "z"});
  db::Database d = db::RandomDatabase(q, 30, 4, &rng);
  db::AcyclicEnumerator e(q, d);
  ASSERT_TRUE(e.IsValid());
  db::JoinResult got;
  got.attributes = e.attributes();
  while (auto t = e.Next()) got.tuples.push_back(*t);
  std::size_t raw = got.tuples.size();
  got.Normalize();
  EXPECT_EQ(got.tuples.size(), raw);
  db::JoinResult expected = db::GenericJoin(q, d).Evaluate();
  expected.Normalize();
  EXPECT_EQ(got.tuples, expected.tuples);
}

TEST(CdclStatsTest, CountersPlumbThrough) {
  util::Rng rng(5);
  sat::CnfFormula f;
  f.num_vars = 6;
  f.AddClause({1, 2, 3});
  f.AddClause({-1, -2});
  f.AddClause({4, 5});
  f.AddClause({-4, 6});
  sat::CdclSolver solver;
  sat::SatResult r = solver.Solve(f);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_EQ(r.propagations, solver.stats().propagations);
  EXPECT_FALSE(solver.aborted());
}

TEST(TableTest, ScientificNotationAndZero) {
  util::Table t({"v"});
  t.AddRowOf(0.0);
  t.AddRowOf(1e-9);
  t.AddRowOf(1e12);
  std::string s = t.ToString();
  EXPECT_NE(s.find("0.0000"), std::string::npos);
  EXPECT_NE(s.find("e-09"), std::string::npos);
  EXPECT_NE(s.find("e+12"), std::string::npos);
}

TEST(VertexCoverKernelTest, EmptyGraphAndZeroBudget) {
  graph::Graph empty(5);
  graph::VertexCoverKernel kernel = graph::KernelizeVertexCover(empty, 0);
  EXPECT_FALSE(kernel.definitely_no);
  EXPECT_TRUE(kernel.forced.empty());
  auto cover = graph::FindVertexCoverKernelized(empty, 0);
  ASSERT_TRUE(cover.has_value());
  EXPECT_TRUE(cover->empty());
  // One edge, zero budget: definite no (via the search, not the kernel).
  graph::Graph one(2);
  one.AddEdge(0, 1);
  EXPECT_FALSE(graph::FindVertexCoverKernelized(one, 0).has_value());
}

TEST(BruteForceCspTest, StatsCountNodes) {
  csp::CspInstance csp = csp::ColoringCsp(graph::Cycle(5), 2);
  csp::CspSolution sol = csp::SolveBruteForce(csp);
  EXPECT_FALSE(sol.found);
  EXPECT_EQ(sol.stats.nodes, 32u);  // All 2^5 assignments visited.
}

TEST(BacktrackingStatsTest, ChecksAndBacktracksReported) {
  util::Rng rng(6);
  csp::CspInstance csp =
      csp::RandomBinaryCsp(graph::Complete(6), 3, 0.55, &rng);
  csp::BacktrackingSolver solver;
  csp::CspSolution sol = solver.Solve(csp);
  EXPECT_GT(sol.stats.nodes, 0u);
  EXPECT_GT(sol.stats.consistency_checks, 0u);
}

TEST(AgmDegenerateTest, AttributeInNoAtomImpossibleByConstruction) {
  // Queries build their attribute set from atoms, so AnalyzeAgm always has
  // covering edges; check a single-atom query for the trivial case.
  db::JoinQuery q;
  q.Add("R", {"a", "b", "c"});
  auto agm = db::AnalyzeAgm(q);
  ASSERT_TRUE(agm.has_value());
  EXPECT_EQ(agm->rho_star, util::Fraction(1));
  long long n = 0;
  db::Database d = db::AgmTightInstance(q, *agm, 5, &n);
  EXPECT_EQ(db::GenericJoin(q, d).Count(), static_cast<std::uint64_t>(n));
}

TEST(YannakakisSingleAtomTest, Works) {
  db::JoinQuery q;
  q.Add("R", {"a", "b"});
  db::Database d;
  d.SetRelation("R", 2, {{1, 2}, {3, 4}});
  auto r = db::EvaluateYannakakis(q, d);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->tuples.size(), 2u);
  EXPECT_EQ(db::BooleanYannakakis(q, d), std::optional<bool>(true));
  d.SetRelation("R", 2, {});
  EXPECT_EQ(db::BooleanYannakakis(q, d), std::optional<bool>(false));
}

}  // namespace
}  // namespace qc
