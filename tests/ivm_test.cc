// Incremental view maintenance (db/ivm.h): delta-rule correctness against
// definitional recompute, triangle delta counting against brute force,
// randomized mutation streams across every MvccDatabase write path, WAL
// fault injection, and reader/writer concurrency at 1/2/8 threads.
//
// The one contract everything here pins: ViewRegistry::Read(name) is
// bit-identical to RecomputeView(def, snapshot, epoch) — the maintained
// state must be indistinguishable from a full recompute at every single
// epoch, or the "incremental" in IVM is a silent wrong-answer generator.
// Suite names match the tsan preset filter (Ivm*), so the race-detecting
// build runs the concurrency suite too.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/ivm.h"
#include "db/mvcc.h"
#include "db/parser.h"
#include "db/wal.h"
#include "util/fault.h"

namespace qc {
namespace {

db::ViewDefinition JoinDef(const std::string& name,
                           const std::string& query_text) {
  db::ViewDefinition def;
  def.name = name;
  def.kind = db::ViewDefinition::Kind::kJoin;
  def.text = query_text;
  db::ParseResult<db::JoinQuery> parsed = db::ParseJoinQuery(query_text);
  EXPECT_TRUE(parsed) << query_text;
  def.query = *parsed;
  return def;
}

db::ViewDefinition TriangleDef(const std::string& name,
                               const std::string& relation) {
  db::ViewDefinition def;
  def.name = name;
  def.kind = db::ViewDefinition::Kind::kTriangleCount;
  def.relation = relation;
  def.text = relation;
  return def;
}

// O(E^2) definitional triangle count: |{(a,b,c) : E(a,b),E(b,c),E(a,c)}|
// over the distinct edge set (set semantics, self-loops legal).
std::uint64_t BruteTriangles(const db::Database& db,
                             const std::string& rel) {
  std::set<std::pair<db::Value, db::Value>> edges;
  for (const db::Tuple& t : db.Tuples(rel)) edges.insert({t[0], t[1]});
  std::uint64_t n = 0;
  for (const auto& [a, b] : edges) {
    for (const auto& [b2, c] : edges) {
      if (b2 == b && edges.count({a, c}) != 0) ++n;
    }
  }
  return n;
}

// The whole correctness contract in one helper: every registered view's
// maintained state equals a from-scratch recompute on a fresh snapshot.
void ExpectViewsMatchRecompute(
    db::MvccDatabase& mvcc, db::ViewRegistry& views,
    const std::vector<db::ViewDefinition>& defs) {
  db::MvccSnapshot snap = mvcc.Snapshot();
  for (const db::ViewDefinition& def : defs) {
    db::ViewRead maintained = views.Read(def.name);
    ASSERT_TRUE(maintained.ok) << maintained.error;
    db::ViewRead expected = db::RecomputeView(def, *snap.db, snap.epoch);
    ASSERT_TRUE(expected.ok) << expected.error;
    EXPECT_EQ(maintained.epoch, snap.epoch) << def.name;
    EXPECT_EQ(maintained.attributes, expected.attributes) << def.name;
    EXPECT_EQ(maintained.rows, expected.rows) << def.name;
  }
}

// --- Registration, validation, and the definition codec -----------------

TEST(IvmViewTest, ValidatesDefinitionsAgainstTheDatabase) {
  db::Database d;
  ASSERT_TRUE(d.SetRelation("R", 2, {{1, 2}}));
  ASSERT_TRUE(d.SetRelation("S", 2, {{2, 3}}));
  ASSERT_TRUE(d.SetRelation("U", 1, {{7}}));
  db::ViewRegistry views;

  EXPECT_TRUE(views.Validate(JoinDef("v", "R(a,b), S(b,c)"), d));
  EXPECT_TRUE(views.Validate(TriangleDef("t", "R"), d));
  // Unknown relation.
  EXPECT_FALSE(views.Validate(JoinDef("v", "R(a,b), X(b,c)"), d));
  // Arity mismatch.
  db::ViewDefinition bad = JoinDef("v", "R(a,b,c)");
  EXPECT_FALSE(views.Validate(bad, d));
  // Cyclic query.
  EXPECT_FALSE(views.Validate(JoinDef("v", "R(a,b), S(b,c), R(c,a)"), d));
  // Triangle view over a non-binary relation.
  EXPECT_FALSE(views.Validate(TriangleDef("t", "U"), d));
  // Empty name.
  EXPECT_FALSE(views.Validate(JoinDef("", "R(a,b)"), d));

  ASSERT_TRUE(views.Register(JoinDef("v", "R(a,b), S(b,c)"), d, 0));
  // Duplicate name.
  EXPECT_FALSE(views.Register(JoinDef("v", "R(a,b)"), d, 0));
  EXPECT_FALSE(views.Validate(JoinDef("v", "R(a,b)"), d));
  EXPECT_TRUE(views.Has("v"));
  EXPECT_EQ(views.ViewNames(), (std::vector<std::string>{"v"}));
  EXPECT_TRUE(views.Unregister("v"));
  EXPECT_FALSE(views.Unregister("v"));
  EXPECT_TRUE(views.empty());
}

TEST(IvmViewTest, DefinitionRecordRoundTrips) {
  for (const db::ViewDefinition& def :
       {JoinDef("chain", "R(a,b), S(b,c)"), TriangleDef("tri", "E")}) {
    db::WalRecord record = db::ViewDefinitionRecord(def);
    EXPECT_EQ(record.kind, db::WalRecord::Kind::kViewDef);
    EXPECT_EQ(record.request_id, 0u);  // Never dedup-skipped on replay.
    db::ViewDefinition back;
    ASSERT_TRUE(db::ViewDefinitionFromRecord(record, &back));
    EXPECT_EQ(back.name, def.name);
    EXPECT_EQ(back.kind, def.kind);
    EXPECT_EQ(back.text, def.text);
    EXPECT_EQ(back.relation, def.relation);
    EXPECT_EQ(back.query.atoms.size(), def.query.atoms.size());
  }
  // Unparseable body is a structured failure.
  db::WalRecord garbage;
  garbage.kind = db::WalRecord::Kind::kViewDef;
  garbage.relation = "v";
  garbage.arity = 0;
  garbage.dataset = "not a ( query";
  db::ViewDefinition out;
  EXPECT_FALSE(db::ViewDefinitionFromRecord(garbage, &out));
  garbage.kind = db::WalRecord::Kind::kAddTuples;
  EXPECT_FALSE(db::ViewDefinitionFromRecord(garbage, &out));
}

// --- Join maintenance across every mutation path ------------------------

TEST(IvmViewTest, AppendsMaintainChainJoinIncrementally) {
  db::MvccDatabase mvcc;
  db::ViewRegistry views;
  mvcc.AttachViews(&views);
  ASSERT_TRUE(mvcc.SetRelation("R", 2, {{1, 2}}));
  ASSERT_TRUE(mvcc.SetRelation("S", 2, {{2, 3}}));
  ASSERT_TRUE(mvcc.SetRelation("T", 2, {{3, 4}}));
  const db::ViewDefinition def = JoinDef("chain", "R(a,b), S(b,c), T(c,d)");
  ASSERT_TRUE(mvcc.RegisterView(def));
  ExpectViewsMatchRecompute(mvcc, views, {def});
  EXPECT_EQ(views.Read("chain").rows,
            (std::vector<db::Tuple>{{1, 2, 3, 4}}));

  // Appends to every atom, including ones creating no new result rows.
  ASSERT_TRUE(mvcc.AddTuple("S", {2, 30}));  // Dead end: no T(30, _).
  ExpectViewsMatchRecompute(mvcc, views, {def});
  ASSERT_TRUE(mvcc.AddTuple("T", {30, 5}));  // Revives it.
  ExpectViewsMatchRecompute(mvcc, views, {def});
  EXPECT_EQ(views.Read("chain").rows.size(), 2u);
  ASSERT_TRUE(mvcc.AddTuples("R", {{0, 2}, {1, 2}, {1, 2}}));  // Dups.
  ExpectViewsMatchRecompute(mvcc, views, {def});
  EXPECT_EQ(views.Read("chain").rows.size(), 4u);

  // A delta sweep ran instead of a full recompute.
  db::IvmStats stats = views.stats();
  EXPECT_GT(stats.dirty_subtree_sweeps, 0u);
  EXPECT_GT(stats.rows_delta_applied, 0u);
  EXPECT_EQ(stats.full_recomputes, 1u);  // Registration only.

  // Replacing a relation falls back to one full recompute.
  ASSERT_TRUE(mvcc.SetRelation("S", 2, {{2, 3}}));
  ExpectViewsMatchRecompute(mvcc, views, {def});
  EXPECT_EQ(views.stats().full_recomputes, 2u);
  EXPECT_EQ(views.Read("chain").rows,
            (std::vector<db::Tuple>{{0, 2, 3, 4}, {1, 2, 3, 4}}));
}

TEST(IvmViewTest, SelfJoinRepeatedAttributeAndCrossProduct) {
  db::MvccDatabase mvcc;
  db::ViewRegistry views;
  mvcc.AttachViews(&views);
  ASSERT_TRUE(mvcc.SetRelation("E", 2, {{1, 2}, {2, 3}}));
  ASSERT_TRUE(mvcc.SetRelation("U", 1, {{7}}));
  // Self-join: both atoms over E are dirty on every E append.
  const db::ViewDefinition paths = JoinDef("paths", "E(a,b), E(b,c)");
  // Repeated attribute inside one atom: E(x,x) filters the diagonal.
  const db::ViewDefinition loops = JoinDef("loops", "E(x,x)");
  // Disconnected query: join tree has two components (cross product).
  const db::ViewDefinition cross = JoinDef("cross", "E(a,b), U(c)");
  ASSERT_TRUE(mvcc.RegisterView(paths));
  ASSERT_TRUE(mvcc.RegisterView(loops));
  ASSERT_TRUE(mvcc.RegisterView(cross));
  ExpectViewsMatchRecompute(mvcc, views, {paths, loops, cross});

  ASSERT_TRUE(mvcc.AddTuple("E", {3, 3}));  // Self-loop: hits all three.
  ExpectViewsMatchRecompute(mvcc, views, {paths, loops, cross});
  EXPECT_EQ(views.Read("loops").rows, (std::vector<db::Tuple>{{3}}));
  ASSERT_TRUE(mvcc.AddTuples("U", {{8}, {9}}));
  ExpectViewsMatchRecompute(mvcc, views, {paths, loops, cross});
  ASSERT_TRUE(mvcc.AddTuple("E", {2, 1}));  // Creates a 2-cycle.
  ExpectViewsMatchRecompute(mvcc, views, {paths, loops, cross});
}

// --- Triangle counting --------------------------------------------------

TEST(IvmViewTest, TriangleCountMatchesBruteForceOnAdversarialStream) {
  db::MvccDatabase mvcc;
  db::ViewRegistry views;
  mvcc.AttachViews(&views);
  ASSERT_TRUE(mvcc.SetRelation("E", 2, {{1, 1}}));  // Seed self-loop.
  const db::ViewDefinition def = TriangleDef("tri", "E");
  ASSERT_TRUE(mvcc.RegisterView(def));

  // Deterministic stream biased toward self-loops, duplicate edges, and
  // hub nodes — every branch of the per-edge delta formula fires.
  std::mt19937 rng(7);
  std::uniform_int_distribution<db::Value> node(0, 5);
  for (int step = 0; step < 160; ++step) {
    db::Value u = node(rng);
    db::Value w = (step % 5 == 0) ? u : node(rng);  // Forced self-loops.
    ASSERT_TRUE(mvcc.AddTuple("E", {u, w}));
    db::ViewRead read = views.Read("tri");
    ASSERT_TRUE(read.ok);
    db::MvccSnapshot snap = mvcc.Snapshot();
    ASSERT_EQ(read.rows.size(), 1u);
    EXPECT_EQ(static_cast<std::uint64_t>(read.rows[0][0]),
              BruteTriangles(*snap.db, "E"))
        << "after inserting (" << u << "," << w << ")";
    EXPECT_EQ(read.attributes, (std::vector<std::string>{"count"}));
  }
  // The whole stream was maintained by deltas: registration is the only
  // full recompute.
  EXPECT_EQ(views.stats().full_recomputes, 1u);

  // Replacement falls back to recompute and stays correct.
  ASSERT_TRUE(mvcc.SetRelation("E", 2, {{0, 1}, {1, 2}, {0, 2}}));
  EXPECT_EQ(views.Read("tri").rows[0][0], 1);
  ExpectViewsMatchRecompute(mvcc, views, {def});
}

// --- Randomized streams over every write path ---------------------------

TEST(IvmEquivalenceTest, RandomizedMutationStreamMatchesRecomputeEveryEpoch) {
  for (std::uint32_t seed : {11u, 23u, 47u}) {
    db::MvccDatabase mvcc;
    db::ViewRegistry views;
    mvcc.AttachViews(&views);
    ASSERT_TRUE(mvcc.SetRelation("R", 2, {{0, 1}}));
    ASSERT_TRUE(mvcc.SetRelation("S", 2, {{1, 2}}));
    ASSERT_TRUE(mvcc.SetRelation("T", 2, {{2, 3}}));
    const std::vector<db::ViewDefinition> defs = {
        JoinDef("chain", "R(a,b), S(b,c), T(c,d)"),
        JoinDef("pair", "S(x,y), S(y,z)"),
        TriangleDef("tri", "R"),
    };
    for (const db::ViewDefinition& def : defs) {
      ASSERT_TRUE(mvcc.RegisterView(def));
    }

    std::mt19937 rng(seed);
    std::uniform_int_distribution<db::Value> val(0, 6);
    std::uniform_int_distribution<int> pick(0, 99);
    const std::string rels[3] = {"R", "S", "T"};
    for (int step = 0; step < 120; ++step) {
      const std::string& rel = rels[pick(rng) % 3];
      int action = pick(rng);
      if (action < 50) {
        ASSERT_TRUE(mvcc.AddTuple(rel, {val(rng), val(rng)}));
      } else if (action < 75) {
        std::vector<db::Tuple> batch;
        for (int i = pick(rng) % 4; i >= 0; --i) {
          batch.push_back({val(rng), val(rng)});
        }
        ASSERT_TRUE(mvcc.AddTuples(rel, std::move(batch)));
      } else if (action < 85) {
        // Staged arbitrary mutation: conservative replace deltas.
        ASSERT_TRUE(mvcc.Mutate([&](db::Database& d) {
          return d.AddTuple(rel, {val(rng), val(rng)});
        }));
      } else if (action < 95) {
        // In-place durable path (create-or-append contract).
        db::WalRecord record;
        record.kind = db::WalRecord::Kind::kAddTuples;
        record.relation = rel;
        db::Tuple t = {val(rng), val(rng)};
        record.tuples = {t};
        ASSERT_TRUE(mvcc.MutateLoggedInPlace(
            record,
            [](const db::Database&) { return db::MutationResult::Ok(); },
            [&](db::Database& d) { return d.AddTuple(rel, t); }));
      } else {
        // Full replacement with a shrunk relation.
        ASSERT_TRUE(mvcc.SetRelation(rel, 2, {{val(rng), val(rng)}}));
      }
      ExpectViewsMatchRecompute(mvcc, views, defs);
    }
    EXPECT_GT(views.stats().dirty_subtree_sweeps, 0u) << "seed " << seed;
  }
}

// --- WAL rejection and fault injection ----------------------------------

class IvmWalFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string templ = ::testing::TempDir() + "qc_ivm_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    dir_ = ::mkdtemp(buf.data());
  }
  void TearDown() override {
    util::FaultRegistry::Global().Clear();
    util::FaultRegistry::Global().ResetStats();
    std::remove((dir_ + "/wal.log").c_str());
    std::remove((dir_ + "/snapshot.dat").c_str());
    ::rmdir(dir_.c_str());
  }
  db::WalOptions Options() const {
    db::WalOptions o;
    o.dir = dir_;
    o.fsync = db::FsyncPolicy::kAlways;  // Fault point wal.fsync is live.
    return o;
  }
  std::string dir_;
};

TEST_F(IvmWalFaultTest, RejectedMutationsLeaveViewsUntouched) {
  db::Wal wal;
  std::string error;
  ASSERT_TRUE(wal.Open(Options(), &error)) << error;
  db::MvccDatabase mvcc;
  db::ViewRegistry views;
  mvcc.AttachViews(&views);
  mvcc.AttachWal(&wal);
  ASSERT_TRUE(mvcc.SetRelation("R", 2, {{1, 2}}));
  ASSERT_TRUE(mvcc.SetRelation("S", 2, {{2, 3}}));
  const db::ViewDefinition def = JoinDef("v", "R(a,b), S(b,c)");
  ASSERT_TRUE(mvcc.RegisterView(def));

  // Every mutation under an injected fsync fault is rejected before it is
  // applied — the maintained view must not move, and must still equal the
  // recompute at the unchanged epoch.
  ASSERT_TRUE(util::FaultRegistry::Global().Configure("wal.fsync:after=0",
                                                      1, &error))
      << error;
  const std::uint64_t epoch = mvcc.Epoch();
  EXPECT_FALSE(mvcc.AddTuple("R", {2, 2}));
  EXPECT_FALSE(mvcc.AddTuples("S", {{3, 4}, {4, 5}}));
  EXPECT_FALSE(mvcc.SetRelation("R", 2, {{9, 9}}));
  EXPECT_EQ(mvcc.Epoch(), epoch);
  ExpectViewsMatchRecompute(mvcc, views, {def});
  EXPECT_EQ(views.Read("v").rows, (std::vector<db::Tuple>{{1, 2, 3}}));

  // Registration is durable too: a WAL that cannot log the definition
  // refuses the registration.
  EXPECT_FALSE(mvcc.RegisterView(JoinDef("v2", "R(a,b)")));
  EXPECT_FALSE(views.Has("v2"));

  // Fault cleared: the stream resumes and maintenance catches up.
  util::FaultRegistry::Global().Clear();
  ASSERT_TRUE(mvcc.AddTuple("R", {2, 2}));
  ASSERT_TRUE(mvcc.AddTuple("S", {2, 9}));
  ExpectViewsMatchRecompute(mvcc, views, {def});
  // R = {(1,2),(2,2)} x S = {(2,3),(2,9)} joins to 4 rows.
  EXPECT_EQ(views.Read("v").rows.size(), 4u);
}

// --- Concurrency: readers at 1/2/8 threads against a mutation stream ----

TEST(IvmConcurrencyTest, ReadersSeeEpochConsistentStateUnderLoad) {
  for (int reader_threads : {1, 2, 8}) {
    db::MvccDatabase mvcc;
    db::ViewRegistry views;
    mvcc.AttachViews(&views);
    ASSERT_TRUE(mvcc.SetRelation("R", 2, {{0, 1}}));
    ASSERT_TRUE(mvcc.SetRelation("S", 2, {{1, 2}}));
    const db::ViewDefinition def = JoinDef("v", "R(a,b), S(b,c)");
    ASSERT_TRUE(mvcc.RegisterView(def));

    std::atomic<bool> done{false};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> readers;
    readers.reserve(reader_threads);
    for (int t = 0; t < reader_threads; ++t) {
      readers.emplace_back([&] {
        while (!done.load(std::memory_order_relaxed)) {
          // A view read and a snapshot taken with no intervening commit
          // must agree bit-for-bit. The double-read pins that window:
          // when the epoch moved mid-probe, the probe is inconclusive
          // and skipped, never counted as a pass.
          db::ViewRead first = views.Read("v");
          db::MvccSnapshot snap = mvcc.Snapshot();
          db::ViewRead second = views.Read("v");
          if (!first.ok || !second.ok) {
            ++mismatches;
            continue;
          }
          if (first.epoch != second.epoch || snap.epoch != first.epoch) {
            continue;  // A commit raced the probe.
          }
          db::ViewRead expected =
              db::RecomputeView(def, *snap.db, snap.epoch);
          if (second.rows != expected.rows ||
              second.attributes != expected.attributes) {
            ++mismatches;
          }
        }
      });
    }
    std::mt19937 rng(1234);
    std::uniform_int_distribution<db::Value> val(0, 5);
    for (int step = 0; step < 300; ++step) {
      const std::string rel = (step % 2 == 0) ? "R" : "S";
      ASSERT_TRUE(mvcc.AddTuple(rel, {val(rng), val(rng)}));
    }
    done.store(true, std::memory_order_relaxed);
    for (std::thread& t : readers) t.join();
    EXPECT_EQ(mismatches.load(), 0) << reader_threads << " readers";
    ExpectViewsMatchRecompute(mvcc, views, {def});
  }
}

}  // namespace
}  // namespace qc
