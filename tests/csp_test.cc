#include <gtest/gtest.h>

#include "csp/arc_consistency.h"
#include "csp/csp.h"
#include "csp/generators.h"
#include "csp/solver.h"
#include "graph/generators.h"
#include "graph/homomorphism.h"
#include "util/rng.h"

namespace qc::csp {
namespace {

TEST(RelationTest, AddSealContains) {
  Relation r(2);
  r.Add({1, 2});
  r.Add({0, 0});
  r.Add({1, 2});  // Duplicate.
  r.Seal();
  EXPECT_EQ(r.size(), 2);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({2, 1}));
}

TEST(CspInstanceTest, CheckAndPrimalGraph) {
  CspInstance csp;
  csp.num_vars = 3;
  csp.domain_size = 2;
  csp.AddConstraint({0, 1}, DisequalityRelation(2));
  csp.AddConstraint({1, 2}, DisequalityRelation(2));
  EXPECT_TRUE(csp.Check({0, 1, 0}));
  EXPECT_FALSE(csp.Check({0, 0, 1}));
  graph::Graph primal = csp.PrimalGraph();
  EXPECT_TRUE(primal.HasEdge(0, 1));
  EXPECT_TRUE(primal.HasEdge(1, 2));
  EXPECT_FALSE(primal.HasEdge(0, 2));
  EXPECT_TRUE(csp.IsBinary());
  graph::Hypergraph h = csp.ConstraintHypergraph();
  EXPECT_EQ(h.num_edges(), 2);
}

TEST(SolverTest, TwoColoringOfPathAndOddCycle) {
  {
    CspInstance csp = ColoringCsp(graph::Path(5), 2);
    BacktrackingSolver solver;
    CspSolution sol = solver.Solve(csp);
    ASSERT_TRUE(sol.found);
    EXPECT_TRUE(csp.Check(sol.assignment));
  }
  {
    CspInstance csp = ColoringCsp(graph::Cycle(5), 2);
    EXPECT_FALSE(BacktrackingSolver().Solve(csp).found);
    EXPECT_FALSE(SolveBruteForce(csp).found);
  }
}

TEST(SolverTest, CountMatchesBruteForce) {
  util::Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    graph::Graph g = graph::RandomGnp(6, 0.5, &rng);
    CspInstance csp = RandomBinaryCsp(g, 3, 0.35, &rng);
    BacktrackingSolver solver;
    EXPECT_EQ(solver.CountSolutions(csp, nullptr),
              CountSolutionsBruteForce(csp))
        << "trial " << trial;
  }
}

TEST(SolverTest, OptionsVariantsAgree) {
  util::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    graph::Graph g = graph::RandomGnp(7, 0.4, &rng);
    CspInstance csp = RandomBinaryCsp(g, 3, 0.45, &rng);
    bool expected = SolveBruteForce(csp).found;
    for (bool fc : {false, true}) {
      for (bool mrv : {false, true}) {
        BacktrackingSolver solver(BacktrackingSolver::Options{
            .forward_checking = fc, .mrv = mrv, .max_nodes = 0});
        CspSolution sol = solver.Solve(csp);
        EXPECT_EQ(sol.found, expected) << "fc=" << fc << " mrv=" << mrv;
        if (sol.found) {
          EXPECT_TRUE(csp.Check(sol.assignment));
        }
      }
    }
  }
}

TEST(SolverTest, PlantedInstancesAlwaysSolvable) {
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    graph::Graph g = graph::RandomGnp(10, 0.4, &rng);
    std::vector<int> hidden;
    CspInstance csp = PlantedBinaryCsp(g, 4, 0.5, &rng, &hidden);
    EXPECT_TRUE(csp.Check(hidden));
    CspSolution sol = BacktrackingSolver().Solve(csp);
    ASSERT_TRUE(sol.found);
    EXPECT_TRUE(csp.Check(sol.assignment));
  }
}

TEST(SolverTest, EnumerateVisitsAllSolutions) {
  CspInstance csp = ColoringCsp(graph::Path(3), 2);
  // P_3 2-colourings: 2 proper colourings... vertex coloring of path with
  // 2 colors: 2 * 1 * 1 = 2.
  std::vector<std::vector<int>> sols;
  BacktrackingSolver solver;
  std::uint64_t n = solver.EnumerateSolutions(
      csp, [&sols](const std::vector<int>& a) {
        sols.push_back(a);
        return true;
      });
  EXPECT_EQ(n, 2u);
  ASSERT_EQ(sols.size(), 2u);
  for (const auto& a : sols) EXPECT_TRUE(csp.Check(a));
  // Early stop after the first.
  int visited = 0;
  solver.EnumerateSolutions(csp, [&visited](const std::vector<int>&) {
    ++visited;
    return false;
  });
  EXPECT_EQ(visited, 1);
}

TEST(SolverTest, NodeLimitAborts) {
  util::Rng rng(4);
  CspInstance csp =
      RandomBinaryCsp(graph::Complete(12), 6, 0.5, &rng);
  BacktrackingSolver solver(BacktrackingSolver::Options{
      .forward_checking = true, .mrv = true, .max_nodes = 5});
  solver.Solve(csp);
  EXPECT_TRUE(solver.aborted() || true);  // Must return promptly either way.
}

TEST(SolverTest, ZeroVariables) {
  CspInstance csp;
  csp.num_vars = 0;
  csp.domain_size = 5;
  EXPECT_TRUE(BacktrackingSolver().Solve(csp).found);
  EXPECT_TRUE(SolveBruteForce(csp).found);
  EXPECT_EQ(CountSolutionsBruteForce(csp), 1u);
}

TEST(SolverTest, EmptyRelationUnsolvable) {
  CspInstance csp;
  csp.num_vars = 2;
  csp.domain_size = 3;
  csp.AddConstraint({0, 1}, Relation(2));
  EXPECT_FALSE(BacktrackingSolver().Solve(csp).found);
  EXPECT_FALSE(SolveBruteForce(csp).found);
}

TEST(ArcConsistencyTest, PrunesUnsupportedValues) {
  // x0 < x1 over domain {0,1,2}: AC removes 2 from x0 and 0 from x1.
  CspInstance csp;
  csp.num_vars = 2;
  csp.domain_size = 3;
  Relation lt(2);
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) lt.Add({a, b});
  }
  csp.AddConstraint({0, 1}, std::move(lt));
  AcResult ac = EnforceArcConsistency(csp);
  ASSERT_TRUE(ac.consistent);
  EXPECT_EQ(ac.alive[0], (std::vector<char>{1, 1, 0}));
  EXPECT_EQ(ac.alive[1], (std::vector<char>{0, 1, 1}));
}

TEST(ArcConsistencyTest, DetectsWipeout) {
  // x0 < x1 and x1 < x0 on a 2-value domain.
  CspInstance csp;
  csp.num_vars = 2;
  csp.domain_size = 2;
  Relation lt(2);
  lt.Add({0, 1});
  csp.AddConstraint({0, 1}, lt);
  csp.AddConstraint({1, 0}, lt);
  AcResult ac = EnforceArcConsistency(csp);
  EXPECT_FALSE(ac.consistent);
}

class AcSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(AcSoundnessTest, NeverRemovesSolutionValues) {
  util::Rng rng(500 + GetParam());
  graph::Graph g = graph::RandomGnp(6, 0.5, &rng);
  CspInstance csp = RandomBinaryCsp(g, 3, 0.4, &rng);
  AcResult ac = EnforceArcConsistency(csp);
  // Collect all solutions by brute force; every solution value must survive.
  std::vector<int> assignment(csp.num_vars, 0);
  bool any_solution = false;
  while (true) {
    if (csp.Check(assignment)) {
      any_solution = true;
      ASSERT_TRUE(ac.consistent);
      for (int v = 0; v < csp.num_vars; ++v) {
        EXPECT_TRUE(ac.alive[v][assignment[v]])
            << "AC-3 removed a solution value";
      }
    }
    int i = 0;
    while (i < csp.num_vars && ++assignment[i] == csp.domain_size) {
      assignment[i] = 0;
      ++i;
    }
    if (i == csp.num_vars) break;
  }
  // Restricting to alive values preserves the solution count.
  if (ac.consistent) {
    CspInstance restricted = RestrictToAlive(csp, ac.alive);
    EXPECT_EQ(CountSolutionsBruteForce(restricted),
              CountSolutionsBruteForce(csp));
  } else {
    EXPECT_FALSE(any_solution);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcSoundnessTest, ::testing::Range(0, 20));

TEST(MicrostructureTest, MatchesSolutions) {
  // Solving the CSP == finding a partitioned subgraph isomorphic to the
  // primal graph in the microstructure (Section 2.3).
  util::Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    graph::Graph structure = graph::RandomGnp(5, 0.6, &rng);
    CspInstance csp = RandomBinaryCsp(structure, 3, 0.4, &rng);
    Microstructure ms = BuildMicrostructure(csp);
    graph::Graph primal = csp.PrimalGraph();
    auto psi = graph::FindPartitionedSubgraphIsomorphism(primal, ms.graph,
                                                         ms.class_of);
    bool solvable = BacktrackingSolver().Solve(csp).found;
    ASSERT_EQ(psi.has_value(), solvable) << "trial " << trial;
    if (psi) {
      // Decode and verify the assignment.
      std::vector<int> assignment(csp.num_vars);
      for (int v = 0; v < csp.num_vars; ++v) {
        assignment[v] = (*psi)[v] % csp.domain_size;
        EXPECT_EQ((*psi)[v] / csp.domain_size, v);
      }
      EXPECT_TRUE(csp.Check(assignment));
    }
  }
}

TEST(GeneratorsTest, RelationHelpers) {
  Relation neq = DisequalityRelation(3);
  EXPECT_EQ(neq.size(), 6);
  EXPECT_FALSE(neq.Contains({1, 1}));
  Relation eq = EqualityRelation(3);
  EXPECT_EQ(eq.size(), 3);
  EXPECT_TRUE(eq.Contains({2, 2}));
  Relation pairs = BinaryRelationFromPairs({{0, 1}, {1, 0}});
  EXPECT_EQ(pairs.size(), 2);
}

TEST(GeneratorsTest, InputSizeAccounting) {
  CspInstance csp = ColoringCsp(graph::Path(3), 2);
  // 3 vars + 2 domain + 2 constraints * 2 * (2 tuples + 1).
  EXPECT_EQ(csp.InputSize(), 3 + 2 + 2 * 2 * 3);
}

}  // namespace
}  // namespace qc::csp
