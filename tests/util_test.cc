#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/fraction.h"
#include "util/lp.h"
#include "util/rng.h"
#include "util/table.h"

namespace qc::util {
namespace {

using Sense = LpProblem::Sense;

TEST(FractionTest, DefaultIsZero) {
  Fraction f;
  EXPECT_TRUE(f.IsZero());
  EXPECT_EQ(f.num(), 0);
  EXPECT_EQ(f.den(), 1);
}

TEST(FractionTest, NormalizesSignAndGcd) {
  Fraction f(4, -6);
  EXPECT_EQ(f.num(), -2);
  EXPECT_EQ(f.den(), 3);
  EXPECT_TRUE(f.IsNegative());
}

TEST(FractionTest, Arithmetic) {
  Fraction half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Fraction(5, 6));
  EXPECT_EQ(half - third, Fraction(1, 6));
  EXPECT_EQ(half * third, Fraction(1, 6));
  EXPECT_EQ(half / third, Fraction(3, 2));
  EXPECT_EQ(-half, Fraction(-1, 2));
}

TEST(FractionTest, Comparisons) {
  EXPECT_LT(Fraction(1, 3), Fraction(1, 2));
  EXPECT_LT(Fraction(-1, 2), Fraction(-1, 3));
  EXPECT_GE(Fraction(2, 4), Fraction(1, 2));
  EXPECT_EQ(Fraction(2, 4), Fraction(1, 2));
}

TEST(FractionTest, CeilFloor) {
  EXPECT_EQ(Fraction(3, 2).Ceil(), 2);
  EXPECT_EQ(Fraction(3, 2).Floor(), 1);
  EXPECT_EQ(Fraction(-3, 2).Ceil(), -1);
  EXPECT_EQ(Fraction(-3, 2).Floor(), -2);
  EXPECT_EQ(Fraction(4).Ceil(), 4);
  EXPECT_EQ(Fraction(4).Floor(), 4);
}

TEST(FractionTest, ToString) {
  EXPECT_EQ(Fraction(3, 2).ToString(), "3/2");
  EXPECT_EQ(Fraction(4, 2).ToString(), "2");
  EXPECT_EQ(Fraction(-1, 3).ToString(), "-1/3");
}

TEST(FractionTest, CrossReductionAvoidsOverflow) {
  // (2^40 / 3) * (3 / 2^40) must not overflow intermediates.
  Fraction a(1LL << 40, 3);
  Fraction b(3, 1LL << 40);
  EXPECT_EQ(a * b, Fraction(1));
}

TEST(LpTest, SimpleMinimization) {
  // min x + y  s.t.  x + 2y >= 3, 2x + y >= 3, x,y >= 0.  Optimum at (1,1).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {Fraction(1), Fraction(1)};
  lp.AddRow({Fraction(1), Fraction(2)}, Sense::kGe, Fraction(3));
  lp.AddRow({Fraction(2), Fraction(1)}, Sense::kGe, Fraction(3));
  LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_EQ(sol.objective, Fraction(2));
  EXPECT_EQ(sol.x[0], Fraction(1));
  EXPECT_EQ(sol.x[1], Fraction(1));
}

TEST(LpTest, FractionalOptimum) {
  // The triangle fractional edge cover LP: three edge variables, each vertex
  // covered by two of them. Optimum 3/2.
  LpProblem lp;
  lp.num_vars = 3;
  lp.objective = {Fraction(1), Fraction(1), Fraction(1)};
  lp.AddRow({Fraction(1), Fraction(1), Fraction(0)}, Sense::kGe, Fraction(1));
  lp.AddRow({Fraction(1), Fraction(0), Fraction(1)}, Sense::kGe, Fraction(1));
  lp.AddRow({Fraction(0), Fraction(1), Fraction(1)}, Sense::kGe, Fraction(1));
  LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_EQ(sol.objective, Fraction(3, 2));
}

TEST(LpTest, InfeasibleDetected) {
  // x >= 2 and x <= 1.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {Fraction(1)};
  lp.AddRow({Fraction(1)}, Sense::kGe, Fraction(2));
  lp.AddRow({Fraction(1)}, Sense::kLe, Fraction(1));
  EXPECT_EQ(SolveLp(lp).status, LpSolution::Status::kInfeasible);
}

TEST(LpTest, UnboundedDetected) {
  // min -x  s.t.  x >= 0 only.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {Fraction(-1)};
  lp.AddRow({Fraction(1)}, Sense::kGe, Fraction(0));
  EXPECT_EQ(SolveLp(lp).status, LpSolution::Status::kUnbounded);
}

TEST(LpTest, EqualityConstraints) {
  // min x + y  s.t.  x + y == 5, x - y == 1  ->  x=3, y=2.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {Fraction(1), Fraction(1)};
  lp.AddRow({Fraction(1), Fraction(1)}, Sense::kEq, Fraction(5));
  lp.AddRow({Fraction(1), Fraction(-1)}, Sense::kEq, Fraction(1));
  LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_EQ(sol.x[0], Fraction(3));
  EXPECT_EQ(sol.x[1], Fraction(2));
}

TEST(LpTest, MaximizeWrapper) {
  // max x + y  s.t.  x + y <= 4, x <= 3.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {Fraction(1), Fraction(1)};
  lp.AddRow({Fraction(1), Fraction(1)}, Sense::kLe, Fraction(4));
  lp.AddRow({Fraction(1), Fraction(0)}, Sense::kLe, Fraction(3));
  LpSolution sol = MaximizeLp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_EQ(sol.objective, Fraction(4));
}

TEST(LpTest, NegativeRhsHandled) {
  // min x  s.t.  -x >= -5 (i.e. x <= 5), x >= 2.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {Fraction(1)};
  lp.AddRow({Fraction(-1)}, Sense::kGe, Fraction(-5));
  lp.AddRow({Fraction(1)}, Sense::kGe, Fraction(2));
  LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_EQ(sol.objective, Fraction(2));
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, NextIntInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, SampleDistinct) {
  Rng rng(3);
  auto s = rng.Sample(20, 10);
  ASSERT_EQ(s.size(), 10u);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(std::unique(s.begin(), s.end()), s.end());
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(BitsetTest, SetTestReset) {
  Bitset b(130);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2);
}

TEST(BitsetTest, NextSetBit) {
  Bitset b(200);
  b.Set(5);
  b.Set(63);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.NextSetBit(0), 5);
  EXPECT_EQ(b.NextSetBit(6), 63);
  EXPECT_EQ(b.NextSetBit(64), 64);
  EXPECT_EQ(b.NextSetBit(65), 199);
  EXPECT_EQ(b.NextSetBit(200), -1);
  EXPECT_EQ((Bitset(10)).NextSetBit(0), -1);
}

TEST(BitsetTest, SetOperations) {
  Bitset a(100), b(100);
  a.Set(1);
  a.Set(70);
  b.Set(70);
  b.Set(99);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.IntersectCount(b), 1);
  Bitset u = a;
  u |= b;
  EXPECT_EQ(u.Count(), 3);
  EXPECT_TRUE(a.IsSubsetOf(u));
  Bitset i = a;
  i &= b;
  EXPECT_EQ(i.ToVector(), std::vector<int>{70});
}

TEST(TableTest, AlignsColumns) {
  Table t({"n", "time"});
  t.AddRowOf(10, 0.5);
  t.AddRowOf(1000, 2.25);
  std::string s = t.ToString();
  EXPECT_NE(s.find("n"), std::string::npos);
  EXPECT_NE(s.find("1000"), std::string::npos);
  EXPECT_NE(s.find("2.2500"), std::string::npos);
}

}  // namespace
}  // namespace qc::util
