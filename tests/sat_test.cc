#include <gtest/gtest.h>

#include "sat/cnf.h"
#include "sat/dpll.h"
#include "sat/generators.h"
#include "sat/hornsat.h"
#include "sat/twosat.h"
#include "sat/xorsat.h"
#include "util/rng.h"

namespace qc::sat {
namespace {

CnfFormula Make(int vars, std::vector<std::vector<Lit>> clauses) {
  CnfFormula f;
  f.num_vars = vars;
  for (auto& c : clauses) f.AddClause(std::move(c));
  return f;
}

TEST(CnfTest, Evaluate) {
  CnfFormula f = Make(3, {{1, -2}, {2, 3}});
  EXPECT_TRUE(f.Evaluate({true, false, true}));
  EXPECT_FALSE(f.Evaluate({false, true, false}));  // First clause dies.
}

TEST(CnfTest, Predicates) {
  EXPECT_TRUE(Make(3, {{1, -2}, {-3}}).IsTwoSat());
  EXPECT_FALSE(Make(3, {{1, 2, 3}}).IsTwoSat());
  EXPECT_TRUE(Make(3, {{1, -2, -3}, {-1}}).IsHorn());
  EXPECT_FALSE(Make(3, {{1, 2, -3}}).IsHorn());
}

TEST(CnfTest, DimacsRoundTrip) {
  CnfFormula f = Make(4, {{1, -2, 3}, {-4}, {2, 4}});
  auto parsed = CnfFormula::FromDimacs(f.ToDimacs());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_vars, 4);
  EXPECT_EQ(parsed->clauses, f.clauses);
}

TEST(CnfTest, DimacsRejectsMalformed) {
  EXPECT_FALSE(CnfFormula::FromDimacs("p cnf 2 1\n1 3 0\n").has_value());
  EXPECT_FALSE(CnfFormula::FromDimacs("p cnf 2 2\n1 0\n").has_value());
  EXPECT_FALSE(CnfFormula::FromDimacs("p cnf 2 1\n1 2\n").has_value());
}

TEST(DpllTest, SimpleSatAndUnsat) {
  CnfFormula sat = Make(2, {{1, 2}, {-1, 2}});
  SatResult r = SolveDpll(sat);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(sat.Evaluate(r.assignment));

  CnfFormula unsat = Make(1, {{1}, {-1}});
  EXPECT_FALSE(SolveDpll(unsat).satisfiable);

  // Classic unsatisfiable 2^3 enumeration: all sign patterns on 3 vars.
  CnfFormula f = Make(3, {});
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<Lit> clause;
    for (int v = 0; v < 3; ++v) {
      clause.push_back((mask >> v) & 1 ? (v + 1) : -(v + 1));
    }
    f.AddClause(clause);
  }
  EXPECT_FALSE(SolveDpll(f).satisfiable);
}

TEST(DpllTest, EmptyFormulaIsSat) {
  CnfFormula f = Make(3, {});
  SatResult r = SolveDpll(f);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_TRUE(f.Evaluate(r.assignment));
}

TEST(DpllTest, AgreesWithBruteForceOnRandom) {
  util::Rng rng(1);
  for (int trial = 0; trial < 40; ++trial) {
    int n = 4 + static_cast<int>(rng.NextBounded(7));
    int m = static_cast<int>(rng.NextBounded(5 * n));
    CnfFormula f = RandomKSat(n, m, 3, &rng);
    SatResult dpll = SolveDpll(f);
    SatResult brute = SolveBruteForce(f);
    EXPECT_EQ(dpll.satisfiable, brute.satisfiable) << "trial " << trial;
    if (dpll.satisfiable) {
      EXPECT_TRUE(f.Evaluate(dpll.assignment));
    }
  }
}

TEST(DpllTest, PlantedAlwaysSat) {
  util::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<bool> hidden;
    CnfFormula f = PlantedKSat(20, 100, 3, &rng, &hidden);
    EXPECT_TRUE(f.Evaluate(hidden));
    SatResult r = SolveDpll(f);
    ASSERT_TRUE(r.satisfiable);
    EXPECT_TRUE(f.Evaluate(r.assignment));
  }
}

TEST(DpllTest, DecisionLimitAborts) {
  util::Rng rng(3);
  CnfFormula f = RandomKSat(40, 180, 3, &rng);
  DpllSolver solver(DpllSolver::Options{.use_pure_literal = true,
                                        .max_decisions = 1});
  solver.Solve(f);
  // Either solved within one decision or aborted; no hang either way.
  SUCCEED();
}

TEST(TwoSatTest, KnownInstances) {
  // (x1 or x2) and (!x1 or x2) and (!x2 or x1) -> x1 = x2 = true.
  CnfFormula f = Make(2, {{1, 2}, {-1, 2}, {-2, 1}});
  SatResult r = SolveTwoSat(f);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(f.Evaluate(r.assignment));
  // x1 and !x1 via units.
  EXPECT_FALSE(SolveTwoSat(Make(1, {{1}, {-1}})).satisfiable);
  // Chain of implications forcing contradiction:
  // (x1->x2), (x2->!x1), (!x1->x3), (x3->x1).
  CnfFormula g = Make(3, {{-1, 2}, {-2, -1}, {1, 3}, {-3, 1}});
  SatResult rg = SolveTwoSat(g);
  EXPECT_FALSE(rg.satisfiable);
}

TEST(TwoSatTest, AgreesWithDpllOnRandom) {
  util::Rng rng(4);
  for (int trial = 0; trial < 60; ++trial) {
    int n = 3 + static_cast<int>(rng.NextBounded(12));
    int m = static_cast<int>(rng.NextBounded(4 * n)) + 1;
    CnfFormula f = RandomTwoSat(n, m, &rng);
    SatResult ts = SolveTwoSat(f);
    SatResult dp = SolveDpll(f);
    EXPECT_EQ(ts.satisfiable, dp.satisfiable) << "trial " << trial;
    if (ts.satisfiable) {
      EXPECT_TRUE(f.Evaluate(ts.assignment));
    }
  }
}

TEST(HornSatTest, MinimalModel) {
  // facts: x1; rules: x1 -> x2; x2 & x1 -> x3; goal clause !x3 fails.
  CnfFormula f = Make(4, {{1}, {-1, 2}, {-2, -1, 3}});
  SatResult r = SolveHornSat(f);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_EQ(r.assignment, (std::vector<bool>{true, true, true, false}));
  f.AddClause({-3});
  EXPECT_FALSE(SolveHornSat(f).satisfiable);
}

TEST(HornSatTest, AllNegativeClausesSatisfiedByAllFalse) {
  CnfFormula f = Make(3, {{-1, -2}, {-3}});
  SatResult r = SolveHornSat(f);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_EQ(r.assignment, (std::vector<bool>{false, false, false}));
}

TEST(HornSatTest, AgreesWithDpllOnRandom) {
  util::Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    int n = 3 + static_cast<int>(rng.NextBounded(10));
    int m = static_cast<int>(rng.NextBounded(3 * n)) + 1;
    CnfFormula f = RandomHorn(n, m, 2, 0.7, &rng);
    ASSERT_TRUE(f.IsHorn());
    SatResult horn = SolveHornSat(f);
    SatResult dp = SolveDpll(f);
    EXPECT_EQ(horn.satisfiable, dp.satisfiable) << "trial " << trial;
    if (horn.satisfiable) {
      EXPECT_TRUE(f.Evaluate(horn.assignment));
    }
  }
}

TEST(XorSatTest, SmallSystems) {
  XorSystem s;
  s.num_vars = 3;
  s.AddEquation({0, 1}, true);   // x0 + x1 = 1.
  s.AddEquation({1, 2}, true);   // x1 + x2 = 1.
  s.AddEquation({0, 2}, false);  // x0 + x2 = 0.
  XorResult r = SolveXorSystem(s);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(s.Evaluate(r.assignment));
  EXPECT_EQ(r.rank, 2);  // Third equation is dependent.

  s.AddEquation({0, 2}, true);  // Contradicts the previous one.
  EXPECT_FALSE(SolveXorSystem(s).satisfiable);
}

TEST(XorSatTest, DuplicateVariablesCancel) {
  XorSystem s;
  s.num_vars = 2;
  s.AddEquation({0, 0, 1}, true);  // Reduces to x1 = 1.
  XorResult r = SolveXorSystem(s);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(r.assignment[1]);
}

TEST(XorSatTest, RandomSystemsSolutionsVerify) {
  util::Rng rng(6);
  int sat_count = 0;
  for (int trial = 0; trial < 40; ++trial) {
    XorSystem s = RandomXorSystem(12, 10, 3, &rng);
    XorResult r = SolveXorSystem(s);
    if (r.satisfiable) {
      ++sat_count;
      EXPECT_TRUE(s.Evaluate(r.assignment));
      EXPECT_LE(r.rank, 10);
    }
  }
  EXPECT_GT(sat_count, 0);
}

TEST(BruteForceTest, CountsAllDecisionsWhenUnsat) {
  CnfFormula f = Make(3, {{1}, {-1}});
  SatResult r = SolveBruteForce(f);
  EXPECT_FALSE(r.satisfiable);
  EXPECT_EQ(r.decisions, 8u);
}

}  // namespace
}  // namespace qc::sat
