#include <gtest/gtest.h>

#include "finegrained/hyperclique.h"
#include "finegrained/orthogonal_vectors.h"
#include "finegrained/sequences.h"
#include "graph/cliques.h"
#include "graph/generators.h"
#include "sat/cnf.h"
#include "sat/generators.h"
#include "util/rng.h"

namespace qc::finegrained {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistanceQuadratic("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistanceQuadratic("", "abc"), 3);
  EXPECT_EQ(EditDistanceQuadratic("abc", ""), 3);
  EXPECT_EQ(EditDistanceQuadratic("abc", "abc"), 0);
  EXPECT_EQ(EditDistanceQuadratic("abcdef", "azced"), 3);
}

TEST(EditDistanceTest, Symmetry) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    std::string a = RandomString(30, 4, &rng);
    std::string b = RandomString(25, 4, &rng);
    EXPECT_EQ(EditDistanceQuadratic(a, b), EditDistanceQuadratic(b, a));
  }
}

TEST(EditDistanceTest, TriangleInequalityOnRandomTriples) {
  util::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::string a = RandomString(20, 3, &rng);
    std::string b = RandomString(22, 3, &rng);
    std::string c = RandomString(18, 3, &rng);
    EXPECT_LE(EditDistanceQuadratic(a, c),
              EditDistanceQuadratic(a, b) + EditDistanceQuadratic(b, c));
  }
}

class BandedEditDistanceTest : public ::testing::TestWithParam<int> {};

TEST_P(BandedEditDistanceTest, MatchesQuadraticWithinBand) {
  util::Rng rng(2000 + GetParam());
  std::string a = RandomString(40 + GetParam(), 4, &rng);
  std::string b = MutateString(a, GetParam() % 7, 4, &rng);
  int exact = EditDistanceQuadratic(a, b);
  for (int band : {0, 1, 3, 8, 60}) {
    auto banded = EditDistanceBanded(a, b, band);
    if (exact <= band) {
      ASSERT_TRUE(banded.has_value()) << "band " << band;
      EXPECT_EQ(*banded, exact) << "band " << band;
    } else {
      EXPECT_FALSE(banded.has_value()) << "band " << band;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandedEditDistanceTest,
                         ::testing::Range(0, 20));

TEST(LcsTest, KnownValuesAndDuality) {
  EXPECT_EQ(LongestCommonSubsequence("ABCBDAB", "BDCABA"), 4);
  EXPECT_EQ(LongestCommonSubsequence("", "xyz"), 0);
  EXPECT_EQ(LongestCommonSubsequence("abc", "abc"), 3);
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::string a = RandomString(25, 3, &rng);
    std::string b = RandomString(30, 3, &rng);
    EXPECT_EQ(LongestCommonSubsequence(a, b),
              LongestCommonSubsequenceLinearSpace(a, b));
    // For equal-length strings with only substitutions... skip; check the
    // generic bound |a|+|b| - 2*LCS >= edit distance.
    int lcs = LongestCommonSubsequence(a, b);
    int indel_distance = static_cast<int>(a.size() + b.size()) - 2 * lcs;
    EXPECT_LE(EditDistanceQuadratic(a, b), indel_distance);
  }
}

TEST(OrthogonalVectorsTest, HandBuiltInstances) {
  OvInstance inst;
  inst.dimension = 3;
  auto vec = [](std::initializer_list<int> bits) {
    util::Bitset b(3);
    for (int i : bits) b.Set(i);
    return b;
  };
  inst.a = {vec({0, 1}), vec({2})};
  inst.b = {vec({0}), vec({1})};
  // a[1]={2} is orthogonal to b[0]={0} and b[1]={1}.
  auto pair = FindOrthogonalPair(inst);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(CountOrthogonalPairs(inst), 2u);
  // Remove orthogonality.
  inst.a = {vec({0, 1})};
  inst.b = {vec({0}), vec({1})};
  EXPECT_FALSE(FindOrthogonalPair(inst).has_value());
}

TEST(OrthogonalVectorsTest, DenseRandomHasNoPairSparseDoes) {
  util::Rng rng(4);
  OvInstance dense = RandomOvInstance(30, 12, 0.9, &rng);
  OvInstance sparse = RandomOvInstance(30, 12, 0.05, &rng);
  // Statistically certain at these densities (probabilistic but with fixed
  // deterministic seed, stable).
  EXPECT_GT(CountOrthogonalPairs(sparse), 0u);
  EXPECT_EQ(CountOrthogonalPairs(dense), 0u);
}

TEST(OrthogonalVectorsTest, SplitAndListMatchesSat) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 6 + static_cast<int>(rng.NextBounded(4));
    int m = 3 + static_cast<int>(rng.NextBounded(20));
    sat::CnfFormula f = sat::RandomKSat(n, m, 3, &rng);
    std::vector<std::vector<int>> clauses(f.clauses.begin(), f.clauses.end());
    OvInstance inst = OvFromCnf(f.num_vars, m, clauses);
    bool sat = SolveBruteForce(f).satisfiable;
    EXPECT_EQ(FindOrthogonalPair(inst).has_value(), sat) << trial;
  }
}

TEST(HypercliqueTest, GraphCaseMatchesCliqueSearch) {
  // d = 2 hypercliques are ordinary cliques.
  util::Rng rng(6);
  graph::Graph g = graph::RandomGnp(12, 0.5, &rng);
  graph::Hypergraph h(12);
  for (auto [u, v] : g.Edges()) h.AddEdge({u, v});
  HypercliqueSearcher searcher(h, 2);
  for (int k = 2; k <= 5; ++k) {
    EXPECT_EQ(searcher.Find(k).has_value(),
              graph::FindKCliqueBruteForce(g, k).has_value())
        << k;
    EXPECT_EQ(searcher.Count(k), graph::CountKCliques(g, k)) << k;
  }
}

TEST(HypercliqueTest, ThreeUniformPlanted) {
  // All triples on {0..4} plus noise vertices: 5-hyperclique exists, k=6
  // does not.
  util::Rng rng(7);
  graph::Hypergraph h(8);
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      for (int c = b + 1; c < 5; ++c) h.AddEdge({a, b, c});
    }
  }
  h.AddEdge({5, 6, 7});
  HypercliqueSearcher searcher(h, 3);
  auto found = searcher.Find(5);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(graph::InducesHyperclique(h, *found, 3));
  EXPECT_FALSE(searcher.Find(6).has_value());
  // k = 3 hypercliques are exactly the edges: C(5,3) + 1.
  EXPECT_EQ(searcher.Count(3), 11u);
  // k = 4: C(5,4) = 5 from the planted block.
  EXPECT_EQ(searcher.Count(4), 5u);
}

TEST(HypercliqueTest, CountAgreesWithDefinitionOnRandom) {
  util::Rng rng(8);
  graph::Hypergraph h = graph::RandomUniformHypergraph(9, 3, 0.45, &rng);
  HypercliqueSearcher searcher(h, 3);
  // Exhaustive 4-subset check.
  std::uint64_t expected = 0;
  for (int a = 0; a < 9; ++a) {
    for (int b = a + 1; b < 9; ++b) {
      for (int c = b + 1; c < 9; ++c) {
        for (int d = c + 1; d < 9; ++d) {
          if (graph::InducesHyperclique(h, {a, b, c, d}, 3)) ++expected;
        }
      }
    }
  }
  EXPECT_EQ(searcher.Count(4), expected);
}

}  // namespace
}  // namespace qc::finegrained
