// Copy-on-write Database::Clone and MvccDatabase snapshot isolation.
//
// The snapshot-isolation suite is the tentpole's correctness core: one
// writer streaming AddTuple against 8 concurrent readers, where every
// reader must observe a database bit-identical to a serial reconstruction
// at its pinned epoch. The suite names match the tsan preset filter
// (Mvcc*/DatabaseClone*), so the race-detecting build runs them too.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/context.h"
#include "db/database.h"
#include "db/generic_join.h"
#include "db/index_cache.h"
#include "db/mvcc.h"

namespace qc {
namespace {

db::Database TwoRelationDb() {
  db::Database d;
  EXPECT_TRUE(d.SetRelation("R", 2, {{1, 2}, {2, 3}}));
  EXPECT_TRUE(d.SetRelation("S", 2, {{2, 10}, {3, 11}}));
  return d;
}

TEST(DatabaseCloneTest, SharesPayloadAndPreservesVersions) {
  db::Database original = TwoRelationDb();
  const std::uint64_t r_version = original.RelationVersion("R");
  const std::uint64_t s_version = original.RelationVersion("S");

  db::Database clone = original.Clone();
  // Version stamps carry over — this is what keeps (name, version)-keyed
  // IndexCache entries warm across snapshots.
  EXPECT_EQ(clone.RelationVersion("R"), r_version);
  EXPECT_EQ(clone.RelationVersion("S"), s_version);
  // The flat payload is shared, not copied.
  EXPECT_EQ(&clone.Flat("R"), &original.Flat("R"));
  EXPECT_EQ(&clone.Flat("S"), &original.Flat("S"));
}

TEST(DatabaseCloneTest, MutatingOriginalLeavesCloneUntouched) {
  db::Database original = TwoRelationDb();
  db::Database clone = original.Clone();

  ASSERT_TRUE(original.AddTuple("R", {7, 8}));
  EXPECT_EQ(original.NumTuples("R"), 3u);
  EXPECT_EQ(clone.NumTuples("R"), 2u);
  // The mutation copied privately and restamped only the original.
  EXPECT_NE(&clone.Flat("R"), &original.Flat("R"));
  EXPECT_NE(clone.RelationVersion("R"), original.RelationVersion("R"));
  // The untouched relation stays shared.
  EXPECT_EQ(&clone.Flat("S"), &original.Flat("S"));
  EXPECT_EQ(clone.Tuples("R"), (std::vector<db::Tuple>{{1, 2}, {2, 3}}));
}

TEST(DatabaseCloneTest, MutatingCloneLeavesOriginalUntouched) {
  db::Database original = TwoRelationDb();
  db::Database clone = original.Clone();

  ASSERT_TRUE(clone.SetRelation("R", 2, {{9, 9}}));
  ASSERT_TRUE(clone.AddTuple("S", {5, 5}));
  EXPECT_EQ(original.NumTuples("R"), 2u);
  EXPECT_EQ(original.NumTuples("S"), 2u);
  EXPECT_EQ(clone.NumTuples("R"), 1u);
  EXPECT_EQ(clone.NumTuples("S"), 3u);
}

TEST(DatabaseCloneTest, CloneChainsShareUntilMutation) {
  db::Database a = TwoRelationDb();
  db::Database b = a.Clone();
  db::Database c = b.Clone();
  EXPECT_EQ(&a.Flat("R"), &c.Flat("R"));
  ASSERT_TRUE(b.AddTuple("R", {4, 5}));
  // b copied privately; a and c still share the original payload.
  EXPECT_EQ(&a.Flat("R"), &c.Flat("R"));
  EXPECT_NE(&b.Flat("R"), &a.Flat("R"));
  EXPECT_EQ(a.NumTuples("R"), 2u);
  EXPECT_EQ(c.NumTuples("R"), 2u);
  EXPECT_EQ(b.NumTuples("R"), 3u);
}

TEST(MvccTest, SnapshotsAtSameEpochShareOneClone) {
  db::MvccDatabase mvcc;
  ASSERT_TRUE(mvcc.SetRelation("R", 1, {{1}}));
  db::MvccSnapshot s1 = mvcc.Snapshot();
  db::MvccSnapshot s2 = mvcc.Snapshot();
  EXPECT_EQ(s1.epoch, s2.epoch);
  EXPECT_EQ(s1.db.get(), s2.db.get());
  EXPECT_EQ(mvcc.stats().snapshot_builds, 1u);
  EXPECT_EQ(mvcc.stats().snapshots, 2u);

  ASSERT_TRUE(mvcc.AddTuple("R", {2}));
  db::MvccSnapshot s3 = mvcc.Snapshot();
  EXPECT_GT(s3.epoch, s1.epoch);
  EXPECT_NE(s3.db.get(), s1.db.get());
  EXPECT_EQ(mvcc.stats().snapshot_builds, 2u);
  // The pre-mutation snapshot still reads the old payload.
  EXPECT_EQ(s1.db->NumTuples("R"), 1u);
  EXPECT_EQ(s3.db->NumTuples("R"), 2u);
}

TEST(MvccTest, AddTuplesIsOneAtomicTransaction) {
  db::MvccDatabase mvcc;
  ASSERT_TRUE(mvcc.SetRelation("R", 2, {{1, 1}}));
  const std::uint64_t epoch_before = mvcc.Epoch();

  // Batch with a bad arity at index 2: all-or-nothing, named index.
  db::MutationResult r =
      mvcc.AddTuples("R", {{2, 2}, {3, 3}, {4, 4, 4}, {5, 5}});
  ASSERT_FALSE(r);
  EXPECT_NE(r.message.find("2"), std::string::npos) << r.message;
  EXPECT_EQ(mvcc.Epoch(), epoch_before);
  EXPECT_EQ(mvcc.Snapshot().db->NumTuples("R"), 1u);

  // A valid batch is one epoch bump, not four.
  ASSERT_TRUE(mvcc.AddTuples("R", {{2, 2}, {3, 3}, {4, 4}, {5, 5}}));
  EXPECT_EQ(mvcc.Epoch(), epoch_before + 1);
  EXPECT_EQ(mvcc.Snapshot().db->NumTuples("R"), 5u);
}

TEST(MvccTest, FailedMutateLambdaLeavesEpochUsable) {
  db::MvccDatabase mvcc;
  ASSERT_TRUE(mvcc.SetRelation("R", 1, {{1}}));
  db::MutationResult r = mvcc.Mutate([](db::Database&) {
    return db::MutationResult::Fail("rejected before touching anything");
  });
  EXPECT_FALSE(r);
  // Snapshots still serve the last good state.
  EXPECT_EQ(mvcc.Snapshot().db->NumTuples("R"), 1u);
}

// The headline isolation test: one writer streams single-tuple appends
// while 8 readers concurrently pin snapshots. Every snapshot at epoch e
// must contain exactly the serial prefix [0, e - 1) — bit-identical to a
// serial run paused at that version.
TEST(MvccSnapshotIsolationTest, WriterStreamsAgainstEightReaders) {
  constexpr int kWrites = 400;
  constexpr int kReaders = 8;
  db::MvccDatabase mvcc;
  ASSERT_TRUE(mvcc.SetRelation("R", 1, {}));  // Epoch 1, empty.

  std::atomic<bool> writer_done{false};
  std::atomic<int> isolation_failures{0};

  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      ASSERT_TRUE(mvcc.AddTuple("R", {i}));
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      do {
        db::MvccSnapshot snap = mvcc.Snapshot();
        // SetRelation was write #1, so epoch e pins e - 1 appends.
        const std::size_t expected_rows =
            static_cast<std::size_t>(snap.epoch - 1);
        const std::vector<db::Tuple>& rows = snap.db->Tuples("R");
        if (rows.size() != expected_rows) {
          isolation_failures.fetch_add(1);
          continue;
        }
        for (std::size_t i = 0; i < rows.size(); ++i) {
          if (rows[i] != db::Tuple{static_cast<db::Value>(i)}) {
            isolation_failures.fetch_add(1);
            break;
          }
        }
      } while (!writer_done.load());
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(isolation_failures.load(), 0);
  EXPECT_EQ(mvcc.Epoch(), static_cast<std::uint64_t>(kWrites) + 1);
  EXPECT_EQ(mvcc.Snapshot().db->NumTuples("R"),
            static_cast<std::size_t>(kWrites));
}

// IndexCache entries are keyed on (relation, version, signature) and
// snapshots preserve version stamps, so a query on a *new* snapshot hits
// the index built by a query on an *old* snapshot as long as the relation
// itself did not change.
TEST(MvccTest, IndexCacheStaysWarmAcrossSnapshots) {
  db::MvccDatabase mvcc;
  ASSERT_TRUE(mvcc.SetRelation("R", 2, {{1, 2}, {2, 3}, {3, 1}}));
  ASSERT_TRUE(mvcc.SetRelation("S", 2, {{2, 7}, {3, 8}, {1, 9}}));

  db::IndexCache cache(64 << 20);
  db::JoinQuery query;
  query.Add("R", {"a", "b"}).Add("S", {"b", "c"});
  auto run = [&](const db::Database& snapshot_db) {
    ExecutionContext ctx;
    ctx.index_cache = &cache;
    db::GenericJoin join(query, snapshot_db, ctx);
    db::JoinResult result = join.Evaluate();
    result.Normalize();
    return result;
  };

  db::MvccSnapshot snap1 = mvcc.Snapshot();
  db::JoinResult first = run(*snap1.db);
  const db::IndexCacheStats cold = cache.stats();
  EXPECT_GT(cold.misses, 0u);

  // Mutate an *unrelated* relation: new epoch, new snapshot, same R/S
  // versions.
  ASSERT_TRUE(mvcc.SetRelation("T", 1, {{42}}));
  db::MvccSnapshot snap2 = mvcc.Snapshot();
  ASSERT_NE(snap2.epoch, snap1.epoch);
  db::JoinResult second = run(*snap2.db);

  const db::IndexCacheStats warm = cache.stats();
  EXPECT_GT(warm.hits, cold.hits);
  EXPECT_EQ(warm.misses, cold.misses);  // Nothing rebuilt.
  EXPECT_EQ(first.tuples, second.tuples);

  // Mutating R invalidates by version: the next query misses for R.
  ASSERT_TRUE(mvcc.AddTuple("R", {9, 9}));
  run(*mvcc.Snapshot().db);
  EXPECT_GT(cache.stats().misses, warm.misses);
}

TEST(MvccTest, EmptyAddTuplesBatchIsANoOp) {
  db::MvccDatabase mvcc;
  ASSERT_TRUE(mvcc.SetRelation("R", 2, {{1, 2}}));
  const std::uint64_t epoch = mvcc.Epoch();
  db::MvccSnapshot before = mvcc.Snapshot();

  // A zero-record batch must not bump the epoch or invalidate the cached
  // snapshot: downstream, a spurious epoch bump forces snapshot rebuilds
  // and IndexCache misses for data that did not change.
  ASSERT_TRUE(mvcc.AddTuples("R", {}));
  EXPECT_EQ(mvcc.Epoch(), epoch);
  db::MvccSnapshot after = mvcc.Snapshot();
  EXPECT_EQ(after.epoch, before.epoch);
  EXPECT_EQ(after.db.get(), before.db.get());  // Same cached clone.
  EXPECT_EQ(mvcc.stats().mutations, 1u);       // Only the SetRelation.

  // Still a validated path: the relation must exist.
  EXPECT_FALSE(mvcc.AddTuples("missing", {}));
  EXPECT_EQ(mvcc.Epoch(), epoch);
}

TEST(DatabaseCloneTest, ConcurrentCloneReadersSeeConsistentRows) {
  // Regression guard for the row-cache carry question: Clone() must NOT
  // copy the source's materialized row_cache (the source may still be
  // filling it while the clone reads lock-free). Eight readers hammer
  // Tuples() on fresh clones while the original keeps mutating; TSan
  // (preset: tsan, filter DatabaseClone*) would flag a copied cache.
  db::Database original = TwoRelationDb();
  // Warm the original's row cache so a buggy Clone would have bytes to
  // carry.
  (void)original.Tuples("R");

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::vector<db::Database> clones;
  clones.reserve(8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(original.AddTuple("R", {100 + i, 200 + i}));
    clones.push_back(original.Clone());
  }
  for (int i = 0; i < 8; ++i) {
    db::Database* clone = &clones[i];
    const std::size_t expect_rows = 3 + static_cast<std::size_t>(i);
    readers.emplace_back([clone, expect_rows, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<db::Tuple>& rows = clone->Tuples("R");
        ASSERT_EQ(rows.size(), expect_rows);
        ASSERT_EQ(rows[0], (db::Tuple{1, 2}));
      }
    });
  }
  // Writer keeps mutating (and re-materializing) the original concurrently.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(original.AddTuple("S", {i, i}));
    (void)original.Tuples("S");
    (void)original.Tuples("R");
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
}

}  // namespace
}  // namespace qc
