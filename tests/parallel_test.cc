// Tests for the parallel execution runtime: ThreadPool semantics, the
// unified Counters/ExecutionContext surface, and — the load-bearing
// guarantee — bit-identical results between serial and parallel runs of
// every parallelized kernel (BoolMatrix::Multiply, GenericJoin,
// ExactTreewidth, color coding) at 1, 2, and 8 threads.

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/context.h"
#include "db/agm.h"
#include "db/generic_join.h"
#include "graph/boolmatrix.h"
#include "graph/colorcoding.h"
#include "graph/graph.h"
#include "graph/treewidth.h"
#include "util/counters.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace qc {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, EmptyAndSingletonRanges) {
  util::ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> sum(0);
  pool.ParallelFor(41, 42, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 41);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](std::int64_t lo, std::int64_t) {
                         if (lo >= 0) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> sum(0);
  pool.ParallelFor(0, 10, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  util::ThreadPool pool(2);
  std::atomic<int> total(0);
  pool.ParallelFor(0, 4, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      pool.ParallelFor(0, 8, [&](std::int64_t ilo, std::int64_t ihi) {
        for (std::int64_t j = ilo; j < ihi; ++j) total.fetch_add(1);
      });
    }
  });
  EXPECT_EQ(total.load(), 4 * 8);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  util::ThreadPool pool(2);
  std::atomic<int> ran(0);
  auto f1 = pool.Submit([&] { ran.fetch_add(1); });
  auto f2 = pool.Submit([&] { ran.fetch_add(10); });
  f1.get();
  f2.get();
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(util::ThreadPool::DefaultThreadCount(), 1);
  EXPECT_GE(util::ThreadPool::HardwareThreads(), 1);
}

// ---------------------------------------------------------------------------
// Counters / ExecutionContext

TEST(CountersTest, AddGetMergeToString) {
  util::Counters c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.Get("missing"), 0u);
  c.Add("a.x", 2);
  c.Add("a.x", 3);
  c.Set("b.y", 7);
  EXPECT_EQ(c.Get("a.x"), 5u);
  EXPECT_EQ(c.Get("b.y"), 7u);
  util::Counters d;
  d.Add("a.x", 10);
  d.Add("c.z", 1);
  c.Merge(d);
  EXPECT_EQ(c.Get("a.x"), 15u);
  EXPECT_EQ(c.Get("c.z"), 1u);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.ToString(), "a.x=15\nb.y=7\nc.z=1");
}

TEST(ExecutionContextTest, CountIsNullSafeAndRoutesToSink) {
  ExecutionContext ctx;
  ctx.Count("k", 3);  // No sink: must not crash.
  util::Counters sink;
  ctx.counters = &sink;
  ctx.Count("k", 3);
  ctx.Count("k", 4);
  EXPECT_EQ(sink.Get("k"), 7u);
  EXPECT_GE(ctx.ResolvedThreads(), 1);
  ctx.threads = 5;
  EXPECT_EQ(ctx.ResolvedThreads(), 5);
  EXPECT_FALSE(ctx.DeadlineExpired());  // No deadline configured.
}

// ---------------------------------------------------------------------------
// BoolMatrix determinism

TEST(ParallelDeterminismTest, BoolMatrixMultiplyBitIdentical) {
  util::Rng rng(42);
  const int n = 257;  // Deliberately not a multiple of the word size.
  graph::BoolMatrix a(n, n), b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.NextBounded(4) == 0) a.Set(i, j);
      if (rng.NextBounded(4) == 0) b.Set(i, j);
    }
  }
  graph::BoolMatrix serial = a.Multiply(b, 1);
  for (int threads : {2, 8}) {
    graph::BoolMatrix parallel = a.Multiply(b, threads);
    ASSERT_EQ(parallel.rows(), serial.rows());
    ASSERT_EQ(parallel.cols(), serial.cols());
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        ASSERT_EQ(parallel.Test(i, j), serial.Test(i, j))
            << "threads=" << threads << " at (" << i << "," << j << ")";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// GenericJoin determinism

db::GenericJoin MakeJoin(const db::JoinQuery& q, const db::Database& d,
                         int threads) {
  ExecutionContext ctx;
  ctx.threads = threads;
  return db::GenericJoin(q, d, ctx);
}

class GenericJoinDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(GenericJoinDeterminismTest, ParallelMatchesSerialBitForBit) {
  util::Rng rng(9100 + GetParam());
  db::JoinQuery q = db::RandomBinaryQuery(3 + GetParam() % 3, 4, &rng);
  db::Database d = db::RandomDatabase(q, 20, 5, &rng);

  db::GenericJoin serial = MakeJoin(q, d, 1);
  db::JoinResult reference = serial.Evaluate();
  std::uint64_t ref_count = MakeJoin(q, d, 1).Count();
  bool ref_empty = MakeJoin(q, d, 1).IsEmpty();
  EXPECT_EQ(ref_count, reference.tuples.size());
  EXPECT_EQ(ref_empty, reference.tuples.empty());

  for (int threads : {2, 8}) {
    db::GenericJoin gj = MakeJoin(q, d, threads);
    db::JoinResult out = gj.Evaluate();
    // Bit-identical: same attribute schema, same tuples in the same order.
    EXPECT_EQ(out.attributes, reference.attributes);
    ASSERT_EQ(out.tuples, reference.tuples) << "threads=" << threads;
    // Full traversals also reproduce the serial effort exactly.
    EXPECT_EQ(gj.stats().nodes, serial.stats().nodes);
    EXPECT_EQ(gj.stats().probes, serial.stats().probes);
    EXPECT_EQ(MakeJoin(q, d, threads).Count(), ref_count);
    EXPECT_EQ(MakeJoin(q, d, threads).IsEmpty(), ref_empty);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenericJoinDeterminismTest,
                         ::testing::Range(0, 12));

TEST(GenericJoinDeterminismTest, AcyclicQueriesAndCustomOrder) {
  for (int seed = 0; seed < 6; ++seed) {
    util::Rng rng(9300 + seed);
    db::JoinQuery q = db::RandomAcyclicQuery(2 + seed % 4, 3, &rng);
    db::Database d = db::RandomDatabase(q, 15, 4, &rng);
    db::JoinResult reference = MakeJoin(q, d, 1).Evaluate();
    db::JoinResult parallel = MakeJoin(q, d, 8).Evaluate();
    ASSERT_EQ(parallel.tuples, reference.tuples) << "seed " << seed;
  }
}

TEST(GenericJoinDeterminismTest, CountersExportedThroughContext) {
  util::Rng rng(9400);
  db::JoinQuery q = db::RandomBinaryQuery(3, 4, &rng);
  db::Database d = db::RandomDatabase(q, 20, 5, &rng);
  util::Counters sink;
  ExecutionContext ctx;
  ctx.threads = 2;
  ctx.counters = &sink;
  db::GenericJoin gj(q, d, ctx);
  gj.Evaluate();
  EXPECT_EQ(sink.Get("generic_join.nodes"), gj.stats().nodes);
  EXPECT_EQ(sink.Get("generic_join.probes"), gj.stats().probes);
  EXPECT_GT(gj.stats().nodes, 0u);
}

// ---------------------------------------------------------------------------
// ExactTreewidth determinism (per-component DP)

TEST(ParallelDeterminismTest, ExactTreewidthPerComponentMatchesSerial) {
  // Three components: a 4-clique, a 6-cycle, and a path.
  graph::Graph g(13);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.AddEdge(i, j);
  }
  for (int i = 0; i < 6; ++i) g.AddEdge(4 + i, 4 + (i + 1) % 6);
  g.AddEdge(10, 11);
  g.AddEdge(11, 12);

  auto serial = graph::ExactTreewidth(g, 24, 1);
  EXPECT_EQ(serial.treewidth, 3);  // The 4-clique dominates.
  EXPECT_GT(serial.dp_states, 0u);
  for (int threads : {2, 8}) {
    auto parallel = graph::ExactTreewidth(g, 24, threads);
    EXPECT_EQ(parallel.treewidth, serial.treewidth);
    EXPECT_EQ(parallel.elimination_order, serial.elimination_order);
    EXPECT_EQ(parallel.dp_states, serial.dp_states);
  }
}

TEST(ParallelDeterminismTest, ExactTreewidthComponentsLiftSizeLimit) {
  // Two 15-vertex paths: 30 vertices total exceeds the old monolithic 2^n
  // limit, but each component is small, so the per-component DP handles it.
  graph::Graph g(30);
  for (int i = 0; i + 1 < 15; ++i) {
    g.AddEdge(i, i + 1);
    g.AddEdge(15 + i, 15 + i + 1);
  }
  auto r = graph::ExactTreewidth(g, 15);
  EXPECT_EQ(r.treewidth, 1);
  EXPECT_EQ(static_cast<int>(r.elimination_order.size()), 30);
}

// ---------------------------------------------------------------------------
// Color coding determinism

TEST(ParallelDeterminismTest, ColorCodingIdenticalResultAndRngState) {
  util::Rng graph_rng(77);
  graph::Graph g(24);
  for (int i = 0; i < 24; ++i) {
    for (int j = i + 1; j < 24; ++j) {
      if (graph_rng.NextBounded(5) == 0) g.AddEdge(i, j);
    }
  }
  for (int k : {4, 6}) {
    util::Rng rng_serial(123);
    util::Rng rng_parallel(123);
    auto serial = graph::FindKPathColorCoding(g, k, &rng_serial, 0, 1);
    auto parallel = graph::FindKPathColorCoding(g, k, &rng_parallel, 0, 4);
    ASSERT_EQ(serial.has_value(), parallel.has_value()) << "k=" << k;
    if (serial.has_value()) {
      EXPECT_EQ(*parallel, *serial);
      EXPECT_TRUE(graph::IsSimplePath(g, *parallel));
    }
    // Both runs must consume the caller's generator identically.
    EXPECT_EQ(rng_serial.Next(), rng_parallel.Next());
  }
}

}  // namespace
}  // namespace qc
