#include <gtest/gtest.h>

#include "graph/domination.h"
#include "graph/generators.h"
#include "graph/nice_decomposition.h"
#include "graph/treewidth.h"
#include "graph/vertexcover.h"
#include "util/rng.h"

namespace qc::graph {
namespace {

NiceTreeDecomposition NiceOf(const Graph& g) {
  TreeDecomposition td = ExactTreewidth(g).decomposition;
  return NiceTreeDecomposition::FromTreeDecomposition(td, g);
}

TEST(NiceDecompositionTest, ConversionValidatesOnKnownGraphs) {
  for (const Graph& g : {Path(6), Cycle(7), Complete(5), Grid(3, 3),
                         Star(5), Path(3).DisjointUnion(Cycle(4))}) {
    TreeDecomposition td = ExactTreewidth(g).decomposition;
    NiceTreeDecomposition ntd =
        NiceTreeDecomposition::FromTreeDecomposition(td, g);
    EXPECT_EQ(ntd.Validate(g), std::nullopt);
    EXPECT_EQ(ntd.Width(), td.Width());
  }
}

TEST(NiceDecompositionTest, ConversionValidatesOnRandomGraphs) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomGnp(12, 0.25, &rng);
    NiceTreeDecomposition ntd = NiceOf(g);
    EXPECT_EQ(ntd.Validate(g), std::nullopt) << "trial " << trial;
  }
}

TEST(NiceDecompositionTest, EmptyGraph) {
  Graph g(0);
  NiceTreeDecomposition ntd = NiceTreeDecomposition::FromTreeDecomposition(
      TreeDecomposition{}, g);
  EXPECT_EQ(ntd.Width(), -1);
  EXPECT_EQ(MinDominatingSetTreewidth(g, ntd), 0);
}

TEST(MisTreewidthTest, KnownGraphs) {
  // alpha(P_6) = 3, alpha(C_7) = 3, alpha(K_5) = 1, alpha(K_{3,4}) = 4,
  // alpha(star_5) = 5.
  EXPECT_EQ(MaxIndependentSetTreewidth(Path(6), NiceOf(Path(6))), 3);
  EXPECT_EQ(MaxIndependentSetTreewidth(Cycle(7), NiceOf(Cycle(7))), 3);
  EXPECT_EQ(MaxIndependentSetTreewidth(Complete(5), NiceOf(Complete(5))), 1);
  Graph kb = CompleteBipartite(3, 4);
  EXPECT_EQ(MaxIndependentSetTreewidth(kb, NiceOf(kb)), 4);
  EXPECT_EQ(MaxIndependentSetTreewidth(Star(5), NiceOf(Star(5))), 5);
}

class MisTreewidthRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MisTreewidthRandomTest, AgreesWithBranchingSolver) {
  util::Rng rng(2000 + GetParam());
  Graph g = RandomGnp(12, 0.2 + 0.04 * (GetParam() % 5), &rng);
  NiceTreeDecomposition ntd = NiceOf(g);
  std::vector<int> witness;
  int dp = MaxIndependentSetTreewidth(g, ntd, &witness);
  int exact = static_cast<int>(MaxIndependentSet(g).size());
  EXPECT_EQ(dp, exact);
  // The witness is a real independent set of the claimed size.
  EXPECT_EQ(static_cast<int>(witness.size()), dp);
  for (std::size_t i = 0; i < witness.size(); ++i) {
    for (std::size_t j = i + 1; j < witness.size(); ++j) {
      EXPECT_FALSE(g.HasEdge(witness[i], witness[j]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisTreewidthRandomTest,
                         ::testing::Range(0, 15));

TEST(DomSetTreewidthTest, KnownGraphs) {
  // gamma(P_9) = 3, gamma(P_10) = 4, gamma(C_9) = 3, gamma(K_5) = 1,
  // gamma(star_6) = 1, gamma(grid 2x3) = 2.
  EXPECT_EQ(MinDominatingSetTreewidth(Path(9), NiceOf(Path(9))), 3);
  EXPECT_EQ(MinDominatingSetTreewidth(Path(10), NiceOf(Path(10))), 4);
  EXPECT_EQ(MinDominatingSetTreewidth(Cycle(9), NiceOf(Cycle(9))), 3);
  EXPECT_EQ(MinDominatingSetTreewidth(Complete(5), NiceOf(Complete(5))), 1);
  EXPECT_EQ(MinDominatingSetTreewidth(Star(6), NiceOf(Star(6))), 1);
  Graph grid = Grid(2, 3);
  EXPECT_EQ(MinDominatingSetTreewidth(grid, NiceOf(grid)), 2);
}

class DomSetTreewidthRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DomSetTreewidthRandomTest, AgreesWithBranchAndBound) {
  util::Rng rng(2100 + GetParam());
  Graph g = RandomGnp(11, 0.2 + 0.05 * (GetParam() % 4), &rng);
  NiceTreeDecomposition ntd = NiceOf(g);
  int dp = MinDominatingSetTreewidth(g, ntd);
  int exact = static_cast<int>(MinDominatingSet(g).size());
  EXPECT_EQ(dp, exact) << "trial " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomSetTreewidthRandomTest,
                         ::testing::Range(0, 15));

TEST(DomSetTreewidthTest, PartialKTreesStayFast) {
  // Width stays ~k, so the 3^w DP handles larger graphs easily.
  util::Rng rng(5);
  Graph g = RandomPartialKTree(60, 3, 0.7, &rng);
  TreeDecomposition td = HeuristicTreewidth(g).decomposition;
  NiceTreeDecomposition ntd =
      NiceTreeDecomposition::FromTreeDecomposition(td, g);
  ASSERT_EQ(ntd.Validate(g), std::nullopt);
  int dp = MinDominatingSetTreewidth(g, ntd);
  EXPECT_GT(dp, 0);
  EXPECT_TRUE(IsDominatingSet(g, GreedyDominatingSet(g)));
  EXPECT_LE(dp, static_cast<int>(GreedyDominatingSet(g).size()));
}

TEST(MisTreewidthTest, LargePartialKTreeMatchesGreedyBound) {
  util::Rng rng(6);
  Graph g = RandomPartialKTree(80, 2, 0.8, &rng);
  TreeDecomposition td = HeuristicTreewidth(g).decomposition;
  NiceTreeDecomposition ntd =
      NiceTreeDecomposition::FromTreeDecomposition(td, g);
  std::vector<int> witness;
  int dp = MaxIndependentSetTreewidth(g, ntd, &witness);
  EXPECT_EQ(static_cast<int>(witness.size()), dp);
  for (std::size_t i = 0; i < witness.size(); ++i) {
    for (std::size_t j = i + 1; j < witness.size(); ++j) {
      EXPECT_FALSE(g.HasEdge(witness[i], witness[j]));
    }
  }
}

}  // namespace
}  // namespace qc::graph
