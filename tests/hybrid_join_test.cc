// Tests for the degree-split hybrid MM/WCOJ planner (db::HybridJoin,
// DESIGN.md §15): pattern detection, bit-identical equivalence against pure
// GenericJoin and the nested-loop reference on Zipf/hub-skewed instances
// across Δ ∈ {1, √m, m} at 1/2/8 threads, threshold policy, the all-light
// delegated fast path, budget partial-result semantics, and autosolver
// routing under --hybrid auto|on|off.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/autosolver.h"
#include "core/context.h"
#include "db/database.h"
#include "db/generic_join.h"
#include "db/hybrid_join.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "gtest/gtest.h"
#include "util/budget.h"
#include "util/rng.h"

namespace qc::db {
namespace {

JoinQuery TriangleQuery() {
  JoinQuery q;
  q.Add("E", {"a", "b"}).Add("E", {"a", "c"}).Add("E", {"b", "c"});
  return q;
}

JoinQuery FourCycleQuery() {
  JoinQuery q;
  q.Add("E", {"a", "b"}).Add("E", {"b", "c"}).Add("E", {"c", "d"})
      .Add("E", {"a", "d"});
  return q;
}

JoinQuery FourCliqueQuery() {
  JoinQuery q;
  q.Add("E", {"a", "b"}).Add("E", {"a", "c"}).Add("E", {"a", "d"})
      .Add("E", {"b", "c"}).Add("E", {"b", "d"}).Add("E", {"c", "d"});
  return q;
}

JoinQuery FiveCliqueQuery() {
  JoinQuery q;
  const std::vector<std::string> v = {"a", "b", "c", "d", "e"};
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (std::size_t j = i + 1; j < v.size(); ++j) {
      q.Add("E", {v[i], v[j]});
    }
  }
  return q;
}

/// Symmetric edge relation: both orientations of every edge, so pattern
/// queries over one relation see the undirected graph.
Database EdgeDb(const graph::Graph& g) {
  std::vector<Tuple> rows;
  rows.reserve(2 * g.Edges().size());
  for (const auto& [u, v] : g.Edges()) {
    rows.push_back({u, v});
    rows.push_back({v, u});
  }
  Database db;
  db.SetRelation("E", 2, std::move(rows));
  return db;
}

/// Pure GenericJoin reference, serial (its Evaluate output is the sorted
/// deduped answer in attribute order — the bit-identity baseline).
JoinResult GenericReference(const JoinQuery& q, const Database& db) {
  GenericJoin gj(q, db, ExecutionContext());
  return gj.Evaluate();
}

/// Hybrid vs GenericJoin at the given Δ and 1/2/8 threads: Evaluate output
/// bit-identical (same tuple vector), Count and IsEmpty agree.
void ExpectHybridMatchesGeneric(const JoinQuery& q, const Database& db,
                                std::int64_t delta) {
  const JoinResult reference = GenericReference(q, db);
  for (int threads : {1, 2, 8}) {
    ExecutionContext ctx;
    ctx.threads = threads;
    HybridJoin hybrid(q, db, ctx, delta);
    ASSERT_TRUE(hybrid.applicable());
    JoinResult result = hybrid.Evaluate();
    EXPECT_EQ(result.attributes, reference.attributes)
        << "delta=" << delta << " threads=" << threads;
    EXPECT_EQ(result.tuples, reference.tuples)
        << "delta=" << delta << " threads=" << threads;
    EXPECT_FALSE(result.truncated);

    HybridJoin counter(q, db, ctx, delta);
    EXPECT_EQ(counter.Count(), reference.tuples.size())
        << "delta=" << delta << " threads=" << threads;
    HybridJoin decider(q, db, ctx, delta);
    EXPECT_EQ(decider.IsEmpty(), reference.tuples.empty())
        << "delta=" << delta << " threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Pattern detection

TEST(HybridJoinDetectTest, RecognizedPatterns) {
  EXPECT_EQ(DetectHybridPattern(TriangleQuery()), HybridPattern::kTriangle);
  EXPECT_EQ(DetectHybridPattern(FourCycleQuery()), HybridPattern::kFourCycle);
  EXPECT_EQ(DetectHybridPattern(FourCliqueQuery()),
            HybridPattern::kFourClique);
  EXPECT_EQ(DetectHybridPattern(FiveCliqueQuery()),
            HybridPattern::kFiveClique);
}

TEST(HybridJoinDetectTest, RejectsNonPatterns) {
  // Acyclic path: 4 attributes, 3 pairs.
  JoinQuery path;
  path.Add("E", {"a", "b"}).Add("E", {"b", "c"}).Add("E", {"c", "d"});
  EXPECT_EQ(DetectHybridPattern(path), HybridPattern::kNone);

  // Ternary atom.
  JoinQuery ternary;
  ternary.Add("R", {"a", "b", "c"}).Add("E", {"a", "b"}).Add("E", {"b", "c"});
  EXPECT_EQ(DetectHybridPattern(ternary), HybridPattern::kNone);

  // Repeated attribute pair (would double-count in the split).
  JoinQuery repeated;
  repeated.Add("E", {"a", "b"}).Add("F", {"a", "b"}).Add("E", {"b", "c"})
      .Add("E", {"a", "c"});
  EXPECT_EQ(DetectHybridPattern(repeated), HybridPattern::kNone);

  // Triangle plus pendant: 4 attributes, 4 pairs, but degree-1 attribute d.
  JoinQuery pendant;
  pendant.Add("E", {"a", "b"}).Add("E", {"b", "c"}).Add("E", {"a", "c"})
      .Add("E", {"c", "d"});
  EXPECT_EQ(DetectHybridPattern(pendant), HybridPattern::kNone);

  // Within-atom repeated attribute.
  JoinQuery selfpair;
  selfpair.Add("E", {"a", "a"}).Add("E", {"a", "b"}).Add("E", {"a", "c"});
  EXPECT_EQ(DetectHybridPattern(selfpair), HybridPattern::kNone);
}

TEST(HybridJoinDetectTest, MissingRelationFallsBackToNone) {
  Database db;
  db.SetRelation("E", 2, {{0, 1}});
  JoinQuery q;
  q.Add("E", {"a", "b"}).Add("Missing", {"a", "c"}).Add("E", {"b", "c"});
  HybridJoin hybrid(q, db);
  EXPECT_FALSE(hybrid.applicable());
  EXPECT_TRUE(hybrid.Evaluate().tuples.empty());
  EXPECT_EQ(hybrid.Count(), 0u);
  EXPECT_TRUE(hybrid.IsEmpty());
}

// ---------------------------------------------------------------------------
// Threshold policy

TEST(HybridJoinPlanTest, AutoThresholdIsSqrtOfLargestAtom) {
  util::Rng rng(7);
  graph::Graph g = graph::RandomGnm(40, 50, &rng);
  Database db = EdgeDb(g);  // 100 projected rows.
  JoinQuery q = TriangleQuery();  // Must outlive the planner.
  HybridJoin hybrid(q, db);
  EXPECT_EQ(hybrid.plan().threshold, 10);
  EXPECT_FALSE(hybrid.plan().threshold_overridden);
}

TEST(HybridJoinPlanTest, ExplicitDeltaOverrides) {
  util::Rng rng(7);
  Database db = EdgeDb(graph::RandomGnm(40, 50, &rng));
  JoinQuery q = TriangleQuery();
  HybridJoin hybrid(q, db, ExecutionContext(), 7);
  EXPECT_EQ(hybrid.plan().threshold, 7);
  EXPECT_TRUE(hybrid.plan().threshold_overridden);

  ExecutionContext ctx;
  ctx.hybrid_delta = 3;
  HybridJoin from_ctx(q, db, ctx);
  EXPECT_EQ(from_ctx.plan().threshold, 3);
  EXPECT_TRUE(from_ctx.plan().threshold_overridden);
}

TEST(HybridJoinPlanTest, AllLightInstanceDelegates) {
  util::Rng rng(9);
  Database db = EdgeDb(graph::RandomGnm(50, 80, &rng));
  // Δ = number of rows: no value can exceed it, so nothing is heavy.
  JoinQuery q = TriangleQuery();
  HybridJoin hybrid(q, db, ExecutionContext(), 160);
  EXPECT_TRUE(hybrid.plan().delegated);
  EXPECT_EQ(hybrid.plan().heavy_values, 0u);
  EXPECT_FALSE(hybrid.ProfitableUnderAuto());
  JoinResult reference = GenericReference(q, db);
  EXPECT_EQ(hybrid.Evaluate().tuples, reference.tuples);
}

TEST(HybridJoinPlanTest, EmptyRelationDelegatesAndMatches) {
  Database db;
  db.SetRelation("E", 2, std::vector<Tuple>{});
  JoinQuery q = TriangleQuery();
  HybridJoin hybrid(q, db);
  EXPECT_TRUE(hybrid.applicable());
  EXPECT_TRUE(hybrid.plan().delegated);
  EXPECT_TRUE(hybrid.Evaluate().tuples.empty());
  EXPECT_TRUE(hybrid.IsEmpty());
}

// ---------------------------------------------------------------------------
// Equivalence: hybrid vs GenericJoin vs nested-loop reference on skewed
// instances, across the Δ sweep and thread counts (the tsan preset runs
// these suites at QC_THREADS=8).

TEST(HybridJoinEquivalenceTest, NestedLoopReferenceOnSmallZipf) {
  // Scalar enumeration cross-check, kept small so the nested loop stays
  // cheap; the wide sweep below uses GenericJoin as the reference.
  for (double exponent : {1.0, 1.5, 2.0}) {
    util::Rng rng(29);
    graph::Graph g = graph::ZipfGraph(24, 40, exponent, &rng);
    Database db = EdgeDb(g);
    JoinQuery q = TriangleQuery();
    JoinResult reference = EvaluateNestedLoop(q, db);
    reference.Normalize();
    JoinResult generic = GenericReference(q, db);
    EXPECT_EQ(generic.tuples, reference.tuples) << "exponent=" << exponent;
    for (std::int64_t delta : {1, 7, 80}) {
      HybridJoin hybrid(q, db, ExecutionContext(), delta);
      EXPECT_EQ(hybrid.Evaluate().tuples, reference.tuples)
          << "exponent=" << exponent << " delta=" << delta;
    }
  }
}

TEST(HybridJoinEquivalenceTest, TriangleOnZipfSweep) {
  for (double exponent : {1.0, 1.5, 2.0}) {
    for (std::uint64_t seed : {1, 2, 3}) {
      util::Rng rng(seed);
      graph::Graph g = graph::ZipfGraph(60, 200, exponent, &rng);
      Database db = EdgeDb(g);
      const std::int64_t m = 2 * g.num_edges();
      const auto sqrt_m =
          static_cast<std::int64_t>(std::sqrt(static_cast<double>(m)));
      for (std::int64_t delta : {std::int64_t{1}, sqrt_m, m}) {
        ExpectHybridMatchesGeneric(TriangleQuery(), db, delta);
      }
    }
  }
}

TEST(HybridJoinEquivalenceTest, FourCycleOnZipfSweep) {
  for (double exponent : {1.0, 1.5, 2.0}) {
    for (std::uint64_t seed : {1, 2, 3}) {
      util::Rng rng(seed);
      graph::Graph g = graph::ZipfGraph(50, 120, exponent, &rng);
      Database db = EdgeDb(g);
      const std::int64_t m = 2 * g.num_edges();
      const auto sqrt_m =
          static_cast<std::int64_t>(std::sqrt(static_cast<double>(m)));
      for (std::int64_t delta : {std::int64_t{1}, sqrt_m, m}) {
        ExpectHybridMatchesGeneric(FourCycleQuery(), db, delta);
      }
    }
  }
}

TEST(HybridJoinEquivalenceTest, TriangleAndFourCycleOnHubGraph) {
  util::Rng rng(5);
  graph::Graph g = graph::HubGraph(80, 4, 60, &rng);
  Database db = EdgeDb(g);
  for (std::int64_t delta : {1, 8, 1000}) {
    ExpectHybridMatchesGeneric(TriangleQuery(), db, delta);
    ExpectHybridMatchesGeneric(FourCycleQuery(), db, delta);
  }
}

TEST(HybridJoinEquivalenceTest, CliquesOnSkewedGraphs) {
  util::Rng rng(13);
  graph::Graph g = graph::HubGraph(40, 5, 40, &rng);
  Database db = EdgeDb(g);
  for (std::int64_t delta : {1, 6, 500}) {
    ExpectHybridMatchesGeneric(FourCliqueQuery(), db, delta);
    ExpectHybridMatchesGeneric(FiveCliqueQuery(), db, delta);
  }
}

TEST(HybridJoinEquivalenceTest, MultiRelationTriangle) {
  // Distinct relations per atom, different contents: the split must track
  // per-atom columns, not just one edge relation.
  util::Rng rng(17);
  Database db;
  for (const char* name : {"R1", "R2", "R3"}) {
    std::vector<Tuple> rows;
    for (int i = 0; i < 150; ++i) {
      rows.push_back({static_cast<Value>(rng.NextBounded(25)),
                      static_cast<Value>(rng.NextBounded(25))});
    }
    db.SetRelation(name, 2, std::move(rows));
  }
  JoinQuery q;
  q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  for (std::int64_t delta : {1, 5, 12, 300}) {
    ExpectHybridMatchesGeneric(q, db, delta);
  }
}

// ---------------------------------------------------------------------------
// Budget semantics

TEST(HybridJoinBudgetTest, RowLimitYieldsExactSubset) {
  util::Rng rng(21);
  graph::Graph g = graph::HubGraph(60, 4, 40, &rng);
  Database db = EdgeDb(g);
  JoinQuery q = TriangleQuery();
  const JoinResult full = GenericReference(q, db);
  ASSERT_GT(full.tuples.size(), 10u);

  ExecutionContext ctx;
  ctx.budget = std::make_shared<util::Budget>();
  ctx.budget->ArmRowLimit(10);
  HybridJoin hybrid(q, db, ctx, 1);
  JoinResult partial = hybrid.Evaluate();
  EXPECT_TRUE(partial.truncated);
  EXPECT_EQ(hybrid.status(), util::RunStatus::kBudgetExhausted);
  // Charge-after-materialize: exactly row_limit rows land at the limit.
  EXPECT_EQ(partial.tuples.size(), 10u);
  // A subset of the true answer (NOT necessarily a lexicographic prefix —
  // phases complete in partition order).
  for (const Tuple& t : partial.tuples) {
    EXPECT_TRUE(std::binary_search(full.tuples.begin(), full.tuples.end(), t));
  }
}

TEST(HybridJoinBudgetTest, PreCancelledReturnsPromptly) {
  util::Rng rng(23);
  Database db = EdgeDb(graph::HubGraph(60, 4, 40, &rng));
  JoinQuery q = TriangleQuery();
  ExecutionContext ctx;
  ctx.budget = std::make_shared<util::Budget>();
  ctx.budget->RequestCancel();
  HybridJoin hybrid(q, db, ctx, 1);
  JoinResult partial = hybrid.Evaluate();
  EXPECT_TRUE(partial.truncated);
  EXPECT_EQ(hybrid.status(), util::RunStatus::kCancelled);

  HybridJoin decider(q, db, ctx, 1);
  EXPECT_TRUE(decider.IsEmpty());  // "Empty" here means Unknown:
  EXPECT_EQ(decider.status(), util::RunStatus::kCancelled);
}

TEST(HybridJoinBudgetTest, ArmedUntrippedBudgetIsBitIdentical) {
  util::Rng rng(25);
  Database db = EdgeDb(graph::ZipfGraph(50, 150, 1.5, &rng));
  JoinQuery q = TriangleQuery();
  const JoinResult reference = GenericReference(q, db);
  ExecutionContext ctx;
  ctx.budget = std::make_shared<util::Budget>();
  ctx.budget->ArmRowLimit(1u << 30);
  ctx.budget->ArmDeadlineAfter(3600.0);
  HybridJoin hybrid(q, db, ctx, 4);
  JoinResult result = hybrid.Evaluate();
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.tuples, reference.tuples);
}

// ---------------------------------------------------------------------------
// Autosolver routing

TEST(HybridJoinRoutingTest, OnForcesHybridAndMatchesOff) {
  util::Rng rng(31);
  Database db = EdgeDb(graph::ZipfGraph(50, 150, 1.5, &rng));
  JoinQuery q = TriangleQuery();

  ExecutionContext off;
  off.hybrid_mode = HybridMode::kOff;
  core::AutoQueryResult base = core::EvaluateQueryAuto(q, db, off);
  EXPECT_EQ(base.method, core::SolveMethod::kGenericJoin);
  EXPECT_EQ(base.plan.pattern, HybridPattern::kNone);  // Planner never ran.

  ExecutionContext on;
  on.hybrid_mode = HybridMode::kOn;
  core::AutoQueryResult forced = core::EvaluateQueryAuto(q, db, on);
  EXPECT_EQ(forced.method, core::SolveMethod::kHybridJoin);
  EXPECT_EQ(forced.plan.pattern, HybridPattern::kTriangle);
  EXPECT_EQ(forced.result.tuples, base.result.tuples);
}

TEST(HybridJoinRoutingTest, AutoRejectionStillRecordsPlan) {
  // Tiny instance: the heavy core can't clear the profitability bar, so
  // auto mode falls through to GenericJoin — but the decision record shows
  // the planner looked.
  Database db;
  db.SetRelation("E", 2, {{0, 1}, {1, 2}, {0, 2}, {1, 0}, {2, 1}, {2, 0}});
  core::AutoQueryResult r =
      core::EvaluateQueryAuto(TriangleQuery(), db, ExecutionContext());
  EXPECT_EQ(r.method, core::SolveMethod::kGenericJoin);
  EXPECT_EQ(r.plan.pattern, HybridPattern::kTriangle);
}

TEST(HybridJoinRoutingTest, AcyclicQueryStaysWithYannakakis) {
  Database db;
  db.SetRelation("E", 2, {{0, 1}, {1, 2}});
  JoinQuery path;
  path.Add("E", {"a", "b"}).Add("E", {"b", "c"});
  ExecutionContext on;
  on.hybrid_mode = HybridMode::kOn;
  core::AutoQueryResult r = core::EvaluateQueryAuto(path, db, on);
  EXPECT_EQ(r.method, core::SolveMethod::kYannakakis);
}

}  // namespace
}  // namespace qc::db
