#include <gtest/gtest.h>

#include <algorithm>

#include "csp/generators.h"
#include "csp/solver.h"
#include "csp/treedp.h"
#include "db/agm.h"
#include "db/generic_join.h"
#include "graph/cliques.h"
#include "graph/coloring.h"
#include "graph/domination.h"
#include "graph/generators.h"
#include "graph/treewidth.h"
#include "reductions/clique_reductions.h"
#include "reductions/domset_reduction.h"
#include "reductions/query_reductions.h"
#include "reductions/sat_reductions.h"
#include "sat/dpll.h"
#include "sat/generators.h"
#include "util/rng.h"

namespace qc::reductions {
namespace {

class SatToCspTest : public ::testing::TestWithParam<int> {};

TEST_P(SatToCspTest, PreservesSatisfiabilityAndModelCount) {
  util::Rng rng(1000 + GetParam());
  int n = 4 + GetParam() % 5;
  int m = 2 + static_cast<int>(rng.NextBounded(4 * n));
  sat::CnfFormula f = sat::RandomKSat(n, m, 3, &rng);
  csp::CspInstance csp = CspFromSat(f);
  EXPECT_EQ(csp.domain_size, 2);
  sat::SatResult dpll = sat::SolveDpll(f);
  csp::CspSolution sol = csp::BacktrackingSolver().Solve(csp);
  EXPECT_EQ(sol.found, dpll.satisfiable);
  if (sol.found) {
    std::vector<bool> assignment(csp.num_vars);
    for (int v = 0; v < csp.num_vars; ++v) assignment[v] = sol.assignment[v];
    EXPECT_TRUE(f.Evaluate(assignment));
  }
  // Model counts agree with brute force over the formula.
  std::uint64_t models = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<bool> a(n);
    for (int v = 0; v < n; ++v) a[v] = (mask >> v) & 1u;
    if (f.Evaluate(a)) ++models;
  }
  EXPECT_EQ(csp::CountSolutionsBruteForce(csp), models);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatToCspTest, ::testing::Range(0, 15));

class ThreeColoringTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreeColoringTest, EquivalentToSatisfiability) {
  util::Rng rng(1100 + GetParam());
  int n = 3 + GetParam() % 3;
  int m = 3 + static_cast<int>(rng.NextBounded(3 * n));
  sat::CnfFormula f = sat::RandomKSat(n, m, 3, &rng);
  ThreeColoringReduction red = ThreeColoringFromSat(f);
  // Size is linear: 3 + 2n + 6m vertices.
  EXPECT_EQ(red.graph.num_vertices(), 3 + 2 * n + 6 * m);
  auto coloring = graph::FindKColoring(red.graph, 3);
  bool satisfiable = sat::SolveDpll(f).satisfiable;
  ASSERT_EQ(coloring.has_value(), satisfiable);
  if (coloring) {
    EXPECT_TRUE(graph::IsProperColoring(red.graph, *coloring));
    EXPECT_TRUE(f.Evaluate(red.DecodeAssignment(*coloring)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeColoringTest, ::testing::Range(0, 15));

TEST(ThreeColoringTest, UnsatUnitContradiction) {
  sat::CnfFormula f;
  f.num_vars = 1;
  f.AddClause({1});
  f.AddClause({-1});
  ThreeColoringReduction red = ThreeColoringFromSat(f);
  EXPECT_FALSE(graph::FindKColoring(red.graph, 3).has_value());
}

class CliqueToCspTest : public ::testing::TestWithParam<int> {};

TEST_P(CliqueToCspTest, SolutionsAreCliques) {
  util::Rng rng(1200 + GetParam());
  graph::Graph g = graph::RandomGnp(14, 0.45, &rng);
  for (int k = 2; k <= 4; ++k) {
    csp::CspInstance csp = CspFromClique(g, k);
    EXPECT_EQ(csp.num_vars, k);
    EXPECT_EQ(static_cast<int>(csp.constraints.size()), k * (k - 1) / 2);
    csp::CspSolution sol = csp::BacktrackingSolver().Solve(csp);
    bool has = graph::FindKCliqueBruteForce(g, k).has_value();
    EXPECT_EQ(sol.found, has) << "k=" << k;
    if (sol.found) {
      std::vector<int> clique = ExtractClique(sol.assignment, k);
      EXPECT_TRUE(graph::IsClique(g, clique));
      std::sort(clique.begin(), clique.end());
      EXPECT_EQ(std::unique(clique.begin(), clique.end()), clique.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliqueToCspTest, ::testing::Range(0, 10));

TEST(SpecialCspTest, ShapeAndEquivalence) {
  util::Rng rng(5);
  graph::Graph g = graph::RandomGnp(12, 0.5, &rng);
  const int k = 3;
  csp::CspInstance csp = SpecialCspFromClique(g, k);
  EXPECT_EQ(csp.num_vars, k + 8);
  // The primal graph is "special": a k-clique plus a path on 2^k vertices.
  graph::Graph primal = csp.PrimalGraph();
  auto comps = primal.ConnectedComponents();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0].size(), static_cast<std::size_t>(k));
  EXPECT_EQ(comps[1].size(), 8u);
  // Solvable iff a k-clique exists.
  csp::CspSolution sol = csp::BacktrackingSolver().Solve(csp);
  EXPECT_EQ(sol.found, graph::FindKCliqueBruteForce(g, k).has_value());
  if (sol.found) {
    EXPECT_TRUE(graph::IsClique(g, ExtractClique(sol.assignment, k)));
  }
}

TEST(GraphHomCspTest, MatchesColoringSemantics) {
  util::Rng rng(6);
  graph::Graph h = graph::RandomGnp(7, 0.4, &rng);
  for (int k = 2; k <= 4; ++k) {
    csp::CspInstance csp = CspFromGraphHomomorphism(h, graph::Complete(k));
    bool solvable = csp::BacktrackingSolver().Solve(csp).found;
    EXPECT_EQ(solvable, graph::FindKColoring(h, k).has_value()) << k;
  }
}

class DomSetReductionTest : public ::testing::TestWithParam<int> {};

TEST_P(DomSetReductionTest, EquivalentToDominatingSet) {
  util::Rng rng(1300 + GetParam());
  graph::Graph g = graph::RandomGnp(9, 0.3, &rng);
  for (int t : {2, 3}) {
    DomSetReduction red = CspFromDominatingSet(g, t);
    bool direct = graph::FindDominatingSetOfSize(g, t).has_value();
    csp::CspSolution sol = csp::BacktrackingSolver().Solve(red.csp);
    EXPECT_EQ(sol.found, direct) << "t=" << t;
    if (sol.found) {
      std::vector<int> ds = red.ExtractDominatingSet(sol.assignment);
      EXPECT_TRUE(graph::IsDominatingSet(g, ds));
      EXPECT_LE(ds.size(), static_cast<std::size_t>(t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomSetReductionTest, ::testing::Range(0, 10));

TEST(DomSetReductionTest, GroupingPreservesSemanticsAndShrinksVariables) {
  util::Rng rng(7);
  graph::Graph g = graph::RandomGnp(8, 0.35, &rng);
  const int t = 2;
  DomSetReduction plain = CspFromDominatingSet(g, t, 1);
  DomSetReduction grouped = CspFromDominatingSet(g, t, 2);
  EXPECT_EQ(plain.csp.num_vars, t + 8);
  EXPECT_EQ(grouped.csp.num_vars, t + 4);
  bool direct = graph::FindDominatingSetOfSize(g, t).has_value();
  EXPECT_EQ(csp::BacktrackingSolver().Solve(plain.csp).found, direct);
  csp::CspSolution gsol = csp::BacktrackingSolver().Solve(grouped.csp);
  EXPECT_EQ(gsol.found, direct);
  if (gsol.found) {
    EXPECT_TRUE(
        graph::IsDominatingSet(g, grouped.ExtractDominatingSet(gsol.assignment)));
  }
}

TEST(DomSetReductionTest, PrimalGraphIsCompleteBipartiteWithBoundedWidth) {
  util::Rng rng(8);
  graph::Graph g = graph::RandomGnp(10, 0.4, &rng);
  const int t = 3;
  DomSetReduction red = CspFromDominatingSet(g, t);
  graph::Graph primal = red.csp.PrimalGraph();
  // K_{t,n}: selectors pairwise non-adjacent, witnesses pairwise
  // non-adjacent, all selector-witness pairs adjacent.
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < t; ++j) {
      if (i != j) EXPECT_FALSE(primal.HasEdge(i, j));
    }
  }
  for (int i = 0; i < t; ++i) {
    for (int j = t; j < primal.num_vertices(); ++j) {
      EXPECT_TRUE(primal.HasEdge(i, j));
    }
  }
  EXPECT_LE(graph::ExactTreewidth(primal, 16).treewidth, t);
}

class QueryCspRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryCspRoundTripTest, QueryToCspBijection) {
  util::Rng rng(1400 + GetParam());
  db::JoinQuery q;
  q.Add("R", {"a", "b"}).Add("S", {"b", "c"}).Add("T", {"a", "c"});
  db::Database database = db::RandomDatabase(q, 20, 6, &rng);
  QueryToCspReduction red = CspFromJoinQuery(q, database);
  // Solution count == answer size.
  std::uint64_t answers = db::GenericJoin(q, database).Count();
  EXPECT_EQ(csp::BacktrackingSolver().CountSolutions(red.csp, nullptr),
            answers);
  // A decoded solution is a real answer tuple.
  csp::CspSolution sol = csp::BacktrackingSolver().Solve(red.csp);
  if (sol.found) {
    db::Tuple t = red.DecodeTuple(sol.assignment);
    EXPECT_TRUE(db::TupleSatisfiesQuery(q, database, red.attributes, t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryCspRoundTripTest, ::testing::Range(0, 10));

class CspQueryRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(CspQueryRoundTripTest, CspToQueryBijection) {
  util::Rng rng(1500 + GetParam());
  graph::Graph structure = graph::RandomGnp(5, 0.6, &rng);
  csp::CspInstance csp = csp::RandomBinaryCsp(structure, 3, 0.35, &rng);
  CspToQueryReduction red = JoinQueryFromCsp(csp);
  db::GenericJoin join(red.query, red.db);
  EXPECT_EQ(join.Count(),
            csp::BacktrackingSolver().CountSolutions(csp, nullptr));
  db::JoinResult result = db::GenericJoin(red.query, red.db).Evaluate();
  for (const auto& tuple : result.tuples) {
    EXPECT_TRUE(csp.Check(red.DecodeAssignment(tuple)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CspQueryRoundTripTest, ::testing::Range(0, 10));

TEST(CspQueryRoundTripTest, UnconstrainedVariablesCovered) {
  csp::CspInstance csp;
  csp.num_vars = 3;
  csp.domain_size = 2;
  csp.AddConstraint({0, 1}, csp::DisequalityRelation(2));
  // Variable 2 is unconstrained: 2 (for v0,v1) * 2 (for v2) solutions.
  CspToQueryReduction red = JoinQueryFromCsp(csp);
  EXPECT_EQ(db::GenericJoin(red.query, red.db).Count(), 4u);
}

TEST(SpecialCspTest, TreeDpSolvesSpecialInstancesViaStructure) {
  // The "pedestrian NP-intermediate" discussion: the path part is easy; the
  // clique part dominates. Check the DP on the whole special instance
  // agrees with the backtracking solver.
  util::Rng rng(9);
  graph::Graph g = graph::RandomGnp(8, 0.6, &rng);
  csp::CspInstance csp = SpecialCspFromClique(g, 3);
  bool bt = csp::BacktrackingSolver().Solve(csp).found;
  csp::TreeDpResult dp = csp::SolveTreewidthDp(csp, 0);  // Heuristic TD.
  EXPECT_EQ(dp.satisfiable, bt);
}

}  // namespace
}  // namespace qc::reductions
