// Observability-layer tests: the per-budget Poll stride cache (the
// cross-budget starvation regression), the span/trace subsystem's
// determinism and disabled-path cost, the counter-vs-gauge merge semantics
// of Counters/MetricsRegistry, and the RunReport JSON schema. The tsan
// preset runs the Trace suites at QC_THREADS=8.

#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/context.h"
#include "db/agm.h"
#include "db/database.h"
#include "db/generic_join.h"
#include "gtest/gtest.h"
#include "kernels/dispatch.h"
#include "util/budget.h"
#include "util/counters.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/run_report.h"
#include "util/timer.h"
#include "util/trace.h"

// Wall-clock bounds are scaled up when a sanitizer instruments the build.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define QC_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define QC_UNDER_SANITIZER 1
#endif
#endif

namespace qc {
namespace {

db::JoinQuery TriangleQuery() {
  db::JoinQuery q;
  q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  return q;
}

// ---------------------------------------------------------------------------
// Budget: the stride cache must be per-(budget, arming), never shared.

// The headline regression: with a process-wide thread_local stride counter,
// 255 polls of far-future budget A left a countdown that budget B's first
// poll decremented — B's already-expired deadline was not checked until up
// to kPollStride more polls. The per-budget epoch tag makes B's first poll
// consult the clock.
TEST(BudgetStarvation, SecondBudgetTripsOnFirstPollAfterPollingAnother) {
  util::Budget a;
  a.ArmDeadlineAfter(3600.0);  // Armed, never trips; engages the stride path.
  for (int i = 0; i < 255; ++i) EXPECT_FALSE(a.Poll());

  util::Budget b;
  b.ArmDeadlineAfter(-1.0);  // Already expired.
  EXPECT_TRUE(b.Poll()) << "budget B's first poll must check its deadline "
                           "even after polling budget A";
  EXPECT_EQ(b.status(), util::RunStatus::kDeadlineExceeded);
  // A is still healthy: its own stride state was not corrupted by B.
  EXPECT_FALSE(a.Poll());
  EXPECT_EQ(a.status(), util::RunStatus::kCompleted);
}

TEST(BudgetStarvation, TwoBudgetInterleavedPollPromptness) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    // One far-future budget shared by all workers, plus one pre-expired
    // budget per worker: every worker drains 255 polls of the shared budget
    // on its own thread (populating that thread's stride slot), then its
    // expired budget must trip on the very first poll.
    util::Budget shared;
    shared.ArmDeadlineAfter(3600.0);
    std::vector<std::unique_ptr<util::Budget>> expired;
    for (int t = 0; t < threads; ++t) {
      expired.push_back(std::make_unique<util::Budget>());
      expired.back()->ArmDeadlineAfter(-1.0);
    }
    std::vector<std::thread> workers;
    std::vector<int> first_poll_tripped(threads, 0);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < 255; ++i) shared.Poll();
        first_poll_tripped[t] = expired[t]->Poll() ? 1 : 0;
      });
    }
    for (auto& w : workers) w.join();
    for (int t = 0; t < threads; ++t) {
      EXPECT_EQ(first_poll_tripped[t], 1) << "worker " << t;
      EXPECT_EQ(expired[t]->status(), util::RunStatus::kDeadlineExceeded);
    }
    EXPECT_EQ(shared.status(), util::RunStatus::kCompleted);
  }
}

TEST(BudgetStarvation, RearmRestoresFirstPollPromptness) {
  util::Budget b;
  b.ArmDeadlineAfter(3600.0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(b.Poll());  // Mid-stride.
  b.ArmDeadlineAfter(-1.0);  // Re-arm with an expired deadline.
  EXPECT_TRUE(b.Poll()) << "re-arming must invalidate the stride cache";
}

TEST(BudgetStarvation, ResetRestoresFirstPollPromptness) {
  util::Budget b;
  b.ArmDeadlineAfter(-1.0);
  EXPECT_TRUE(b.Poll());
  // Reset clears the trip but the (still expired) deadline stays armed; a
  // stale countdown must not grant the next run a free stride.
  b.Reset();
  EXPECT_FALSE(b.Stopped());
  EXPECT_TRUE(b.Poll());
  EXPECT_EQ(b.status(), util::RunStatus::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Trace: determinism across thread counts, tree shape, disabled-path cost.

TEST(TraceDeterminism, SpanTreeIdenticalAcrossThreadCounts) {
  util::Rng rng(1);
  db::JoinQuery q = TriangleQuery();
  db::Database d = db::RandomDatabase(q, 1024, 512, &rng);
  std::string baseline;
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    ExecutionContext ctx;
    ctx.threads = threads;
    util::Trace::Enable();
    db::GenericJoin join(q, d, ctx);
    std::uint64_t count = join.Count();
    util::TraceReport report = util::Trace::Collect();
    util::Trace::Disable();
    ASSERT_GT(count, 0u);
    ASSERT_FALSE(report.empty());
    std::string tree = report.TreeString();
    if (threads == 1) {
      baseline = tree;
      // The instrumented stages are all present.
      EXPECT_NE(report.root.Find("generic_join.build_trie"), nullptr);
      EXPECT_NE(report.root.Find("generic_join.search.root"), nullptr);
      EXPECT_NE(report.root.Find("generic_join.search.level0"), nullptr);
      // Level-0 spans open once per root candidate batch entry, level-1
      // once per expanded level-0 node: counts mirror the search shape.
      const util::TraceNode* level1 =
          report.root.Find("generic_join.search.level1");
      ASSERT_NE(level1, nullptr);
      EXPECT_GT(level1->count, 0u);
    } else {
      EXPECT_EQ(tree, baseline)
          << "span tree must be bit-identical at any thread count";
    }
  }
}

TEST(TraceDeterminism, DottedNamesBuildTheTree) {
  util::Trace::Enable();
  std::uint32_t parent = util::Trace::InternName("engine.stage");
  std::uint32_t child = util::Trace::InternName("engine.stage.substage");
  util::Trace::Record(parent, 1000);
  util::Trace::Record(child, 250);
  util::Trace::Record(child, 250);
  util::TraceReport report = util::Trace::Collect();
  util::Trace::Disable();
  const util::TraceNode* stage = report.root.Find("engine.stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->count, 1u);
  EXPECT_EQ(stage->total_ns, 1000);
  auto it = stage->children.find("substage");
  ASSERT_NE(it, stage->children.end());
  EXPECT_EQ(it->second.count, 2u);
  EXPECT_EQ(it->second.total_ns, 500);
  EXPECT_EQ(report.root.Find("engine.absent"), nullptr);
  // The canonical rendering excludes timings and sorts by name.
  EXPECT_EQ(report.TreeString(),
            "engine count=0\n"
            "  stage count=1\n"
            "    substage count=2\n");
}

TEST(TraceDeterminism, CollectIsRepeatableAndResetClears) {
  util::Trace::Enable();
  std::uint32_t id = util::Trace::InternName("engine.repeat");
  util::Trace::Record(id, 1);
  util::TraceReport first = util::Trace::Collect();
  util::TraceReport second = util::Trace::Collect();
  EXPECT_EQ(first.TreeString(), second.TreeString());
  EXPECT_EQ(first.total_records, second.total_records);
  util::Trace::Reset();
  EXPECT_TRUE(util::Trace::Collect().empty());
  util::Trace::Disable();
}

TEST(TraceDeterminism, BufferOverflowFoldsInsteadOfDropping) {
  util::Trace::Enable();
  std::uint32_t id = util::Trace::InternName("engine.flood");
  const std::uint64_t n = 3 * util::Trace::kBufferCapacity + 17;
  for (std::uint64_t i = 0; i < n; ++i) util::Trace::Record(id, 1);
  util::TraceReport report = util::Trace::Collect();
  util::Trace::Disable();
  util::Trace::Reset();
  const util::TraceNode* node = report.root.Find("engine.flood");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, n);
  EXPECT_EQ(node->total_ns, static_cast<std::int64_t>(n));
}

TEST(TraceDeterminism, DisabledTracingIsCheap) {
  ASSERT_FALSE(util::Trace::enabled());
  static const std::uint32_t kId = util::Trace::InternName("engine.noop");
  // 10M disabled span constructions: each is one relaxed load. Generous
  // bound (sanitizer-scaled) — this guards against accidentally putting a
  // lock or a clock read on the disabled path, not against micro-jitter.
  constexpr int kSpans = 10'000'000;
  util::Timer timer;
  for (int i = 0; i < kSpans; ++i) {
    util::ScopedSpan span(kId);
  }
  double ms = timer.Millis();
#ifdef QC_UNDER_SANITIZER
  EXPECT_LT(ms, 5000.0);
#else
  EXPECT_LT(ms, 500.0);
#endif
}

// ---------------------------------------------------------------------------
// Counters / MetricsRegistry: gauge keys must not double-count on merge.

TEST(MetricsTest, EightWorkerMergeSumsCountersAndMaxesGauges) {
  // Regression: Merge used to Add() gauge keys, so a "threads" gauge merged
  // from 8 workers read 64.
  util::Counters total;
  for (int w = 0; w < 8; ++w) {
    util::Counters worker;
    worker.Add("work.items", 100);
    worker.Set("threads", 8);
    worker.Set("peak_depth", static_cast<std::uint64_t>(w));
    total.Merge(worker);
  }
  EXPECT_EQ(total.Get("work.items"), 800u);
  EXPECT_EQ(total.Get("threads"), 8u);
  EXPECT_EQ(total.Get("peak_depth"), 7u);  // Max across workers.
  EXPECT_FALSE(total.IsGauge("work.items"));
  EXPECT_TRUE(total.IsGauge("threads"));
}

TEST(MetricsTest, MergePreservesGaugeKindAcrossChains) {
  util::Counters a, b, c;
  a.Set("threads", 4);
  b.Merge(a);   // b learns "threads" is a gauge.
  c.Set("threads", 2);
  c.Merge(b);   // Max, not sum: 4, not 6.
  EXPECT_EQ(c.Get("threads"), 4u);
  EXPECT_TRUE(c.IsGauge("threads"));
}

TEST(MetricsTest, RegistryIsThreadSafe) {
  util::MetricsRegistry registry;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&registry, t] {
      util::Counters local;
      for (int i = 0; i < 1000; ++i) local.Add("ops");
      local.Set("threads", 8);
      registry.MergeCounters(local);
      registry.AddCounter("merges");
      registry.MaxGauge("max_worker_id", static_cast<std::uint64_t>(t));
    });
  }
  for (auto& w : workers) w.join();
  util::Counters snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.Get("ops"), 8000u);
  EXPECT_EQ(snapshot.Get("merges"), 8u);
  EXPECT_EQ(snapshot.Get("threads"), 8u);
  EXPECT_EQ(snapshot.Get("max_worker_id"), 7u);
}

TEST(MetricsTest, UnknownRunStatusIsSurfacedNotSwallowed) {
  util::RunStatus bogus = static_cast<util::RunStatus>(42);
  EXPECT_FALSE(util::IsKnown(bogus));
  EXPECT_EQ(util::ToString(bogus), "internal-error");
  EXPECT_EQ(util::ExitCode(bogus), 7);
  for (util::RunStatus s :
       {util::RunStatus::kCompleted, util::RunStatus::kDeadlineExceeded,
        util::RunStatus::kBudgetExhausted, util::RunStatus::kCancelled}) {
    EXPECT_TRUE(util::IsKnown(s));
    EXPECT_NE(util::ToString(s), "internal-error");
    EXPECT_NE(util::ExitCode(s), 7);
  }
}

// ---------------------------------------------------------------------------
// RunReport: the one JSON schema every tool emits.

/// Tiny recursive-descent JSON validator: enough to check the report is
/// well-formed and to pull out top-level keys, with no external dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    return Value() && (SkipWs(), pos_ == s_.size());
  }

 private:
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') return ++pos_, true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }

  bool Number() {
    std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(RunReportTest, TriangleJoinReportIsValidJsonWithAllSections) {
  util::Rng rng(1);
  db::JoinQuery q = TriangleQuery();
  db::Database d = db::RandomDatabase(q, 512, 256, &rng);
  util::Counters counters;
  ExecutionContext ctx;
  ctx.counters = &counters;
  auto budget = std::make_shared<util::Budget>();
  budget->ArmRowLimit(1u << 20);
  ctx.budget = budget;
  util::Trace::Enable();
  db::GenericJoin join(q, d, ctx);
  db::JoinResult r = join.Evaluate();

  util::RunReport report;
  report.tool = "observability_test";
  report.status = join.status();
  report.threads = ctx.ResolvedThreads();
  report.wall_ms = 1.5;
  report.FillBudget(*budget, /*deadline_armed=*/false);
  report.counters = counters;
  report.counters.Set("threads", ctx.ResolvedThreads());
  report.trace = util::Trace::Collect();
  util::Trace::Disable();
  util::Trace::Reset();

  std::string json = report.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // Required top-level sections.
  for (const char* key : {"\"tool\"", "\"status\"", "\"exit_code\"",
                          "\"threads\"", "\"wall_ms\"", "\"budget\"",
                          "\"stats\"", "\"counters\"", "\"gauges\"",
                          "\"spans\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  // The stats section records the dispatched kernel level truthfully.
  EXPECT_NE(json.find("\"simd_level\": \"" +
                      std::string(kernels::SimdLevelName(
                          kernels::ActiveSimdLevel())) +
                      "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"arena_high_water_bytes\": "), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"rows_used\": "), std::string::npos);
  // The traced run landed in the span tree; counters and gauges are split.
  EXPECT_NE(json.find("\"generic_join\""), std::string::npos);
  EXPECT_NE(json.find("generic_join.nodes"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": " +
                      std::to_string(ctx.ResolvedThreads())),
            std::string::npos);
  ASSERT_FALSE(r.truncated);
  EXPECT_EQ(budget->rows_used(), r.tuples.size());
}

TEST(RunReportTest, EscapesAndNestsSpans) {
  util::RunReport report;
  report.tool = "tool \"with\" quotes\nand newline";
  report.trace.root.children["a"].children["b"].count = 2;
  std::string json = report.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\\\"with\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  // Nested span object: a's children array holds b.
  EXPECT_NE(json.find("\"name\": \"a\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"b\""), std::string::npos);
}

}  // namespace
}  // namespace qc
