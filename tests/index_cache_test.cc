// Tests for the shared trie-index cache (db::IndexCache) and its threading
// through GenericJoin, Yannakakis and the acyclic enumerator: LRU /
// byte-accounting semantics, bit-identical warm-vs-cold evaluation at 1/2/8
// threads, eviction-pressure degradation, version-keyed invalidation on
// mutation, and safe sharing across concurrent evaluations.

#include <gtest/gtest.h>

#include <thread>

#include "core/context.h"
#include "db/enumeration.h"
#include "db/generic_join.h"
#include "db/hybrid_join.h"
#include "db/index_cache.h"
#include "db/joins.h"
#include "db/yannakakis.h"
#include "util/trace.h"

namespace qc::db {
namespace {

JoinQuery TriangleQuery() {
  JoinQuery q;
  q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  return q;
}

Database TriangleDb() {
  Database db;
  db.SetRelation("R1", 2, {{0, 1}, {1, 2}, {2, 0}, {0, 2}, {1, 0}});
  db.SetRelation("R2", 2, {{0, 1}, {1, 2}, {2, 0}, {0, 2}, {2, 1}});
  db.SetRelation("R3", 2, {{0, 1}, {1, 2}, {2, 0}, {1, 0}, {2, 1}});
  return db;
}

/// Builder producing a synthetic entry with a fixed accounted size; counts
/// invocations so tests can tell build-from-scratch from cache hits.
std::function<IndexCache::Entry()> FixedSizeBuilder(std::size_t bytes,
                                                    int* invocations) {
  return [bytes, invocations]() {
    ++*invocations;
    IndexCache::Entry entry;
    entry.no_rows = true;
    entry.bytes = bytes;
    return entry;
  };
}

TEST(IndexCacheTest, HitMissAndLruEviction) {
  IndexCache cache(250);
  int builds = 0;
  auto build100 = FixedSizeBuilder(100, &builds);

  EXPECT_NE(cache.GetOrBuild("A", 1, "s", build100), nullptr);
  EXPECT_NE(cache.GetOrBuild("B", 1, "s", build100), nullptr);
  EXPECT_EQ(builds, 2);
  IndexCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, 200u);

  // Hit on A refreshes its LRU position without building.
  EXPECT_NE(cache.GetOrBuild("A", 1, "s", build100), nullptr);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.stats().hits, 1u);

  // C does not fit next to A+B: the least-recently-used entry (B) goes.
  EXPECT_NE(cache.GetOrBuild("C", 1, "s", build100), nullptr);
  s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, 200u);
  EXPECT_LE(s.bytes, s.capacity_bytes);

  // A survived (recently used): hit. B was evicted: rebuilt.
  EXPECT_NE(cache.GetOrBuild("A", 1, "s", build100), nullptr);
  EXPECT_EQ(builds, 3);
  cache.GetOrBuild("B", 1, "s", build100);
  EXPECT_EQ(builds, 4);

  // Distinct versions and signatures are distinct keys.
  cache.GetOrBuild("A", 2, "s", build100);
  cache.GetOrBuild("A", 2, "other", build100);
  EXPECT_EQ(builds, 6);
}

TEST(IndexCacheTest, OversizedEntryRejectedButUsable) {
  IndexCache cache(250);
  int builds = 0;
  IndexCache::EntryPtr big =
      cache.GetOrBuild("huge", 1, "s", FixedSizeBuilder(300, &builds));
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big->bytes, 300u);  // The caller still gets a working entry.
  IndexCacheStats s = cache.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  // Every lookup rebuilds: the entry can never be resident.
  cache.GetOrBuild("huge", 1, "s", FixedSizeBuilder(300, &builds));
  EXPECT_EQ(builds, 2);
}

TEST(IndexCacheTest, ClearDropsEntriesKeepsCountersAndHandouts) {
  IndexCache cache(1 << 20);
  int builds = 0;
  IndexCache::EntryPtr held =
      cache.GetOrBuild("A", 1, "s", FixedSizeBuilder(100, &builds));
  cache.Clear();
  IndexCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.misses, 1u);          // Counters survive Clear().
  EXPECT_EQ(held->bytes, 100u);     // In-flight handout stays valid.
  cache.GetOrBuild("A", 1, "s", FixedSizeBuilder(100, &builds));
  EXPECT_EQ(builds, 2);
}

TEST(IndexCacheTest, ExportCountersKindSplit) {
  IndexCache cache(1000);
  int builds = 0;
  cache.GetOrBuild("A", 1, "s", FixedSizeBuilder(100, &builds));
  cache.GetOrBuild("A", 1, "s", FixedSizeBuilder(100, &builds));
  util::Counters counters;
  cache.ExportCounters(&counters);
  EXPECT_EQ(counters.Get("index_cache.hits"), 1u);
  EXPECT_EQ(counters.Get("index_cache.misses"), 1u);
  EXPECT_EQ(counters.Get("index_cache.bytes"), 100u);
  EXPECT_EQ(counters.Get("index_cache.capacity_bytes"), 1000u);
  EXPECT_FALSE(counters.IsGauge("index_cache.hits"));
  EXPECT_TRUE(counters.IsGauge("index_cache.bytes"));
  EXPECT_TRUE(counters.IsGauge("index_cache.entries"));

  util::MetricsRegistry registry;
  cache.ExportMetrics(&registry);
  EXPECT_EQ(registry.Get("index_cache.misses"), 1u);
  EXPECT_EQ(registry.Get("index_cache.entries"), 1u);
}

/// Evaluate + stats via GenericJoin with the given thread count and cache.
JoinResult RunGenericJoin(const JoinQuery& q, const Database& db, int threads,
                          IndexCache* cache, GenericJoinStats* stats) {
  ExecutionContext ctx;
  ctx.threads = threads;
  ctx.index_cache = cache;
  GenericJoin join(q, db, ctx);
  JoinResult result = join.Evaluate();
  *stats = join.stats();
  return result;
}

TEST(WarmCacheTest, GenericJoinBitIdenticalAcrossCacheAndThreads) {
  JoinQuery q = TriangleQuery();
  Database db = TriangleDb();
  GenericJoinStats cold_stats;
  JoinResult cold = RunGenericJoin(q, db, 1, nullptr, &cold_stats);
  ASSERT_FALSE(cold.tuples.empty());

  IndexCache cache(8 << 20);
  for (int threads : {1, 2, 8}) {
    for (int round = 0; round < 2; ++round) {  // Round 0 primes, 1 is warm.
      GenericJoinStats stats;
      JoinResult warm = RunGenericJoin(q, db, threads, &cache, &stats);
      EXPECT_EQ(warm.tuples, cold.tuples)
          << "threads=" << threads << " round=" << round;
      EXPECT_EQ(warm.attributes, cold.attributes);
      EXPECT_EQ(stats.nodes, cold_stats.nodes);
      EXPECT_EQ(stats.probes, cold_stats.probes);
      EXPECT_EQ(stats.gallops, cold_stats.gallops);
    }
    GenericJoinStats stats;
    JoinResult nocache = RunGenericJoin(q, db, threads, nullptr, &stats);
    EXPECT_EQ(nocache.tuples, cold.tuples) << "threads=" << threads;
  }
  IndexCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 3u);  // One build per atom, on the very first run only.
  EXPECT_EQ(s.hits, 3u * 5u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_LE(s.bytes, s.capacity_bytes);
}

TEST(WarmCacheTest, SelfJoinAtomsShareOneEntry) {
  // All three atoms project the same relation onto both columns in order:
  // one signature, one build, two in-construction hits.
  JoinQuery q;
  q.Add("E", {"a", "b"}).Add("E", {"b", "c"}).Add("E", {"a", "c"});
  Database db;
  db.SetRelation("E", 2, {{0, 1}, {1, 2}, {2, 0}, {0, 2}});
  IndexCache cache(8 << 20);
  GenericJoinStats stats;
  JoinResult warm = RunGenericJoin(q, db, 1, &cache, &stats);
  IndexCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.entries, 1u);
  GenericJoinStats cold_stats;
  JoinResult cold = RunGenericJoin(q, db, 1, nullptr, &cold_stats);
  EXPECT_EQ(warm.tuples, cold.tuples);
}

TEST(WarmCacheTest, HybridPartitionsDoNotAliasParentCacheEntries) {
  // Regression for the degree-split planner's cache seam: the light
  // residuals are FILTERED copies of the parent atoms. If their
  // sub-evaluations were served by the parent relation's version-keyed
  // cache entries (the full tries), every partition would see the
  // unfiltered relation — Count would multiply-count across partitions
  // (Evaluate's dedup merge would mask it) and partition tries would land
  // in the cache under the parent's key. The planner gives partitions
  // planner-private names with freshly stamped versions and detaches
  // ctx.index_cache in sub-contexts, so a warm shared cache must change
  // nothing — and a non-delegated hybrid run must not touch it at all.
  JoinQuery q = TriangleQuery();
  Database db = TriangleDb();
  IndexCache cache(8 << 20);
  GenericJoinStats stats;
  JoinResult reference = RunGenericJoin(q, db, 1, &cache, &stats);
  const IndexCacheStats warm = cache.stats();
  ASSERT_GT(warm.entries, 0u);

  ExecutionContext ctx;
  ctx.index_cache = &cache;
  HybridJoin hybrid(q, db, ctx, /*delta=*/1);
  ASSERT_FALSE(hybrid.plan().delegated);  // Partitions actually exist.
  EXPECT_EQ(hybrid.Evaluate().tuples, reference.tuples);
  HybridJoin counter(q, db, ctx, /*delta=*/1);
  EXPECT_EQ(counter.Count(), reference.tuples.size());

  const IndexCacheStats after = cache.stats();
  EXPECT_EQ(after.entries, warm.entries);
  EXPECT_EQ(after.hits, warm.hits);
  EXPECT_EQ(after.misses, warm.misses);

  // The warm entries still serve the parent query bit-identically.
  JoinResult again = RunGenericJoin(q, db, 1, &cache, &stats);
  EXPECT_EQ(again.tuples, reference.tuples);
  EXPECT_GT(cache.stats().hits, after.hits);
}

TEST(WarmCacheTest, BuildTrieSpanAbsentOnWarmHits) {
  JoinQuery q = TriangleQuery();
  Database db = TriangleDb();
  IndexCache cache(8 << 20);

  // Cold (priming) construction records per-build spans.
  util::Trace::Enable();
  {
    ExecutionContext ctx;
    ctx.index_cache = &cache;
    GenericJoin join(q, db, ctx);
  }
  util::TraceReport primed = util::Trace::Collect();
  util::Trace::Disable();
  const util::TraceNode* built = primed.root.Find("generic_join.build_trie");
  ASSERT_NE(built, nullptr);
  EXPECT_EQ(built->count, 3u);
  ASSERT_NE(primed.root.Find("index_cache.miss"), nullptr);

  // Warm construction: every atom hits; no build span at all.
  util::Trace::Enable();
  {
    ExecutionContext ctx;
    ctx.index_cache = &cache;
    GenericJoin join(q, db, ctx);
  }
  util::TraceReport warm = util::Trace::Collect();
  util::Trace::Disable();
  EXPECT_EQ(warm.root.Find("generic_join.build_trie"), nullptr);
  const util::TraceNode* hits = warm.root.Find("index_cache.hit");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->count, 3u);
}

TEST(WarmCacheTest, EvictionPressureDegradesToColdBuilds) {
  // Capacity far below one trie: every build is rejected, nothing is ever
  // resident, and answers still match the uncached run exactly.
  JoinQuery q = TriangleQuery();
  Database db = TriangleDb();
  GenericJoinStats cold_stats;
  JoinResult cold = RunGenericJoin(q, db, 1, nullptr, &cold_stats);

  IndexCache cache(1);
  for (int round = 0; round < 3; ++round) {
    GenericJoinStats stats;
    JoinResult r = RunGenericJoin(q, db, 1, &cache, &stats);
    EXPECT_EQ(r.tuples, cold.tuples) << "round=" << round;
    IndexCacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.bytes, 0u);  // Cap never exceeded.
    EXPECT_EQ(s.rejected, 3u * (round + 1));
  }

  // A small cap between "nothing fits" and "everything fits": whatever mix
  // of evictions and rejections results, the byte accounting never exceeds
  // the cap and answers stay exact.
  IndexCache tight(700);
  for (int round = 0; round < 3; ++round) {
    GenericJoinStats stats;
    JoinResult r = RunGenericJoin(q, db, 1, &tight, &stats);
    EXPECT_EQ(r.tuples, cold.tuples);
    IndexCacheStats s = tight.stats();
    EXPECT_LE(s.bytes, s.capacity_bytes);
  }
}

TEST(WarmCacheTest, MutationBetweenEvaluationsInvalidates) {
  JoinQuery q = TriangleQuery();
  Database db = TriangleDb();
  IndexCache cache(8 << 20);
  GenericJoinStats stats;
  JoinResult before = RunGenericJoin(q, db, 1, &cache, &stats);
  EXPECT_EQ(cache.stats().misses, 3u);

  // Adding a tuple bumps R1's version: its old entry is stale by key, the
  // next evaluation rebuilds it (and only it) and sees the new tuple.
  ASSERT_TRUE(db.AddTuple("R1", {5, 6}));
  ASSERT_TRUE(db.AddTuple("R2", {5, 7}));
  ASSERT_TRUE(db.AddTuple("R3", {6, 7}));
  JoinResult after = RunGenericJoin(q, db, 1, &cache, &stats);
  EXPECT_EQ(cache.stats().misses, 6u);  // All three relations re-keyed.
  GenericJoinStats cold_stats;
  JoinResult cold = RunGenericJoin(q, db, 1, nullptr, &cold_stats);
  EXPECT_EQ(after.tuples, cold.tuples);
  EXPECT_GT(after.tuples.size(), before.tuples.size());

  // SetRelation invalidates the same way (single version-keyed path).
  ASSERT_TRUE(db.SetRelation("R1", 2, {{0, 1}}));
  JoinResult replaced = RunGenericJoin(q, db, 1, &cache, &stats);
  JoinResult replaced_cold = RunGenericJoin(q, db, 1, nullptr, &cold_stats);
  EXPECT_EQ(replaced.tuples, replaced_cold.tuples);
}

TEST(WarmCacheTest, YannakakisBitIdenticalWithCache) {
  JoinQuery q;  // Acyclic path query with a branch: R(a,b), S(b,c), T(b,d).
  q.Add("R", {"a", "b"}).Add("S", {"b", "c"}).Add("T", {"b", "d"});
  Database db;
  db.SetRelation("R", 2, {{0, 1}, {2, 1}, {3, 4}, {5, 6}});
  db.SetRelation("S", 2, {{1, 7}, {1, 8}, {4, 9}, {6, 2}});
  db.SetRelation("T", 2, {{1, 3}, {4, 4}, {2, 5}});
  JoinStats cold_stats;
  auto cold = EvaluateYannakakis(q, db, &cold_stats);
  ASSERT_TRUE(cold.has_value());
  ASSERT_FALSE(cold->tuples.empty());

  IndexCache cache(8 << 20);
  for (int round = 0; round < 2; ++round) {
    JoinStats stats;
    auto warm = EvaluateYannakakis(q, db, &stats, nullptr, &cache);
    ASSERT_TRUE(warm.has_value());
    EXPECT_EQ(warm->tuples, cold->tuples) << "round=" << round;
    EXPECT_EQ(warm->attributes, cold->attributes);
    EXPECT_EQ(stats.intermediate_tuples, cold_stats.intermediate_tuples);
    EXPECT_EQ(stats.probes, cold_stats.probes);
  }
  IndexCacheStats s = cache.stats();
  EXPECT_GT(s.hits, 0u);  // Round 2 reused the leaf key sets.
  EXPECT_LE(s.bytes, s.capacity_bytes);

  auto cold_bool = BooleanYannakakis(q, db);
  auto warm_bool = BooleanYannakakis(q, db, nullptr, &cache);
  ASSERT_TRUE(cold_bool.has_value());
  ASSERT_TRUE(warm_bool.has_value());
  EXPECT_EQ(*warm_bool, *cold_bool);
}

TEST(WarmCacheTest, EnumeratorBitIdenticalWithCache) {
  JoinQuery q;
  q.Add("R", {"a", "b"}).Add("S", {"b", "c"});
  Database db;
  db.SetRelation("R", 2, {{0, 1}, {2, 1}, {3, 4}, {0, 4}});
  db.SetRelation("S", 2, {{1, 7}, {1, 8}, {4, 9}});
  auto drain = [](AcyclicEnumerator& e) {
    std::vector<Tuple> out;
    while (auto t = e.Next()) out.push_back(*t);
    return out;
  };
  AcyclicEnumerator cold(q, db);
  ASSERT_TRUE(cold.IsValid());
  std::vector<Tuple> cold_answers = drain(cold);
  ASSERT_FALSE(cold_answers.empty());

  IndexCache cache(8 << 20);
  for (int round = 0; round < 2; ++round) {
    AcyclicEnumerator warm(q, db, nullptr, &cache);
    ASSERT_TRUE(warm.IsValid());
    EXPECT_EQ(drain(warm), cold_answers) << "round=" << round;
    EXPECT_EQ(warm.attributes(), cold.attributes());
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(IndexCacheConcurrencyTest, SharedAcrossConcurrentEvaluations) {
  // Eight threads evaluate concurrently against one cache starting cold:
  // racing misses may build the same key twice, but every thread must get
  // the exact answer and the cache must stay within its cap. (TSan covers
  // the synchronization; this also runs under the tsan preset.)
  JoinQuery q = TriangleQuery();
  Database db = TriangleDb();
  GenericJoinStats cold_stats;
  JoinResult cold = RunGenericJoin(q, db, 1, nullptr, &cold_stats);

  IndexCache cache(8 << 20);
  std::vector<std::thread> threads;
  std::vector<int> ok(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&q, &db, &cache, &cold, &ok, t]() {
      GenericJoinStats stats;
      JoinResult r = RunGenericJoin(q, db, 1, &cache, &stats);
      ok[t] = r.tuples == cold.tuples ? 1 : 0;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(ok[t], 1) << "thread " << t;
  IndexCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 8u * 3u);
  EXPECT_EQ(s.entries, 3u);
  EXPECT_LE(s.bytes, s.capacity_bytes);
}

}  // namespace
}  // namespace qc::db
