// Randomized agreement sweeps over generated query shapes: every evaluator
// must produce the same answers on random acyclic and random binary
// (possibly cyclic) queries, and the structural analyzers must agree with
// the queries' construction guarantees.

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "db/agm.h"
#include "db/enumeration.h"
#include "db/generic_join.h"
#include "db/joins.h"
#include "db/yannakakis.h"
#include "util/rng.h"

namespace qc::db {
namespace {

class RandomAcyclicQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomAcyclicQueryTest, ConstructionIsAcyclicAndEvaluatorsAgree) {
  util::Rng rng(7000 + GetParam());
  JoinQuery q = RandomAcyclicQuery(2 + GetParam() % 4, 3, &rng);
  EXPECT_TRUE(IsAcyclicQuery(q)) << "seed " << GetParam();
  Database d = RandomDatabase(q, 15, 4, &rng);

  JoinResult reference = GenericJoin(q, d).Evaluate();
  reference.Normalize();

  auto yan = EvaluateYannakakis(q, d);
  ASSERT_TRUE(yan.has_value());
  yan->Normalize();
  EXPECT_EQ(yan->tuples, reference.tuples);

  JoinResult greedy = EvaluateGreedyBinaryJoin(q, d);
  greedy.Normalize();
  // Schemas may be ordered differently; compare via projection onto the
  // canonical order.
  JoinResult canon;
  canon.attributes = q.AttributeOrder();
  for (const auto& t : greedy.tuples) {
    Tuple u(canon.attributes.size());
    for (std::size_t i = 0; i < canon.attributes.size(); ++i) {
      auto it = std::find(greedy.attributes.begin(), greedy.attributes.end(),
                          canon.attributes[i]);
      u[i] = t[it - greedy.attributes.begin()];
    }
    canon.tuples.push_back(u);
  }
  canon.Normalize();
  EXPECT_EQ(canon.tuples, reference.tuples);

  AcyclicEnumerator e(q, d);
  ASSERT_TRUE(e.IsValid());
  JoinResult enumerated;
  enumerated.attributes = e.attributes();
  while (auto t = e.Next()) enumerated.tuples.push_back(*t);
  std::size_t raw = enumerated.tuples.size();
  enumerated.Normalize();
  EXPECT_EQ(enumerated.tuples.size(), raw) << "duplicate answers";
  EXPECT_EQ(enumerated.tuples, reference.tuples);

  // Analyzer consistency: acyclic implies fhw upper bound 1.
  core::Analysis a = core::AnalyzeQuery(q);
  EXPECT_TRUE(a.acyclic);
  ASSERT_TRUE(a.fhw_valid);
  EXPECT_EQ(a.fhw_upper, util::Fraction(1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAcyclicQueryTest,
                         ::testing::Range(0, 20));

class RandomBinaryQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomBinaryQueryTest, GenericJoinMatchesNestedLoop) {
  util::Rng rng(7100 + GetParam());
  JoinQuery q = RandomBinaryQuery(3 + GetParam() % 3, 4, &rng);
  Database d = RandomDatabase(q, 12, 4, &rng);
  JoinResult reference = EvaluateNestedLoop(q, d);
  reference.Normalize();
  JoinResult wcoj = GenericJoin(q, d).Evaluate();
  wcoj.Normalize();
  EXPECT_EQ(wcoj.tuples, reference.tuples);
  // AGM bound sanity on the measured answer.
  auto agm = AnalyzeAgm(q);
  ASSERT_TRUE(agm.has_value());
  EXPECT_LE(static_cast<double>(reference.tuples.size()),
            agm->BoundForN(static_cast<double>(d.MaxRelationSize())) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBinaryQueryTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace qc::db
