// Equivalence tests for the trie-indexed GenericJoin against the seed
// nested-loop reference (EvaluateNestedLoop): the trie engine must produce
// the same answer set on self-joins, repeated-attribute atoms, skewed
// Zipfian data, and empty relations — and the same bit-identical Evaluate
// output and stats at every thread count.

#include <algorithm>
#include <cmath>

#include "db/database.h"
#include "db/generic_join.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace qc::db {
namespace {

/// Zipf-skewed value in [0, n): value v is drawn with probability roughly
/// proportional to 1/(v+1), so a few heavy hitters dominate.
Value ZipfValue(int n, util::Rng* rng) {
  double u = rng->NextDouble();
  double v = std::exp(u * std::log(static_cast<double>(n))) - 1.0;
  return static_cast<Value>(v) % n;
}

/// Checks the trie engine against the nested-loop reference on `q` over
/// `d`, at 1, 2, and 8 threads: same answer set (Evaluate), same
/// cardinality (Count), same emptiness (IsEmpty), and Evaluate output and
/// stats bit-identical across thread counts.
void ExpectMatchesReference(const JoinQuery& q, const Database& d) {
  JoinResult reference = EvaluateNestedLoop(q, d);
  reference.Normalize();

  JoinResult serial;
  GenericJoinStats serial_stats;
  for (int threads : {1, 2, 8}) {
    ExecutionContext ctx;
    ctx.threads = threads;
    GenericJoin gj(q, d, ctx);
    JoinResult result = gj.Evaluate();
    EXPECT_EQ(result.attributes, reference.attributes) << threads;

    JoinResult sorted = result;
    sorted.Normalize();
    EXPECT_EQ(sorted.tuples, reference.tuples) << "threads=" << threads;

    GenericJoin counter(q, d, ctx);
    EXPECT_EQ(counter.Count(), reference.tuples.size())
        << "threads=" << threads;
    GenericJoin decider(q, d, ctx);
    EXPECT_EQ(decider.IsEmpty(), reference.tuples.empty())
        << "threads=" << threads;

    if (threads == 1) {
      serial = std::move(result);
      serial_stats = gj.stats();
    } else {
      EXPECT_EQ(result.tuples, serial.tuples)
          << "Evaluate not bit-identical at threads=" << threads;
      EXPECT_EQ(gj.stats().nodes, serial_stats.nodes) << threads;
      EXPECT_EQ(gj.stats().probes, serial_stats.probes) << threads;
      EXPECT_EQ(gj.stats().gallops, serial_stats.gallops) << threads;
    }
  }
}

TEST(TrieJoinEquivalenceTest, TriangleSelfJoin) {
  // Triangle query over three copies of ONE relation — the E9 pattern.
  util::Rng rng(11);
  std::vector<Tuple> edges;
  for (int i = 0; i < 300; ++i) {
    Value a = static_cast<Value>(rng.NextBounded(40));
    Value b = static_cast<Value>(rng.NextBounded(40));
    if (a < b) edges.push_back({a, b});
  }
  Database d;
  d.SetRelation("E", 2, edges);
  JoinQuery q;
  q.Add("E", {"a", "b"}).Add("E", {"a", "c"}).Add("E", {"b", "c"});
  ExpectMatchesReference(q, d);
}

TEST(TrieJoinEquivalenceTest, RepeatedAttributeAtoms) {
  // R(x, x) forces the within-atom equality filter; S(x, y, x) repeats a
  // non-adjacent column.
  util::Rng rng(12);
  std::vector<Tuple> r, s;
  for (int i = 0; i < 200; ++i) {
    r.push_back({static_cast<Value>(rng.NextBounded(12)),
                 static_cast<Value>(rng.NextBounded(12))});
    s.push_back({static_cast<Value>(rng.NextBounded(12)),
                 static_cast<Value>(rng.NextBounded(12)),
                 static_cast<Value>(rng.NextBounded(12))});
  }
  Database d;
  d.SetRelation("R", 2, r);
  d.SetRelation("S", 3, s);
  JoinQuery q;
  q.Add("R", {"x", "x"}).Add("S", {"x", "y", "x"});
  ExpectMatchesReference(q, d);
}

TEST(TrieJoinEquivalenceTest, ZipfianSkew) {
  // Heavy-hitter values stress the galloping seeks: most probes land in a
  // few giant runs.
  util::Rng rng(13);
  std::vector<Tuple> r1, r2, r3;
  for (int i = 0; i < 500; ++i) {
    r1.push_back({ZipfValue(64, &rng), ZipfValue(64, &rng)});
    r2.push_back({ZipfValue(64, &rng), ZipfValue(64, &rng)});
    r3.push_back({ZipfValue(64, &rng), ZipfValue(64, &rng)});
  }
  Database d;
  d.SetRelation("R1", 2, r1);
  d.SetRelation("R2", 2, r2);
  d.SetRelation("R3", 2, r3);
  JoinQuery q;
  q.Add("R1", {"a", "b"}).Add("R2", {"a", "c"}).Add("R3", {"b", "c"});
  ExpectMatchesReference(q, d);
}

TEST(TrieJoinEquivalenceTest, EmptyRelation) {
  Database d;
  d.SetRelation("R", 2, {{1, 2}, {3, 4}});
  d.SetRelation("S", 2, {});
  JoinQuery q;
  q.Add("R", {"a", "b"}).Add("S", {"b", "c"});
  ExpectMatchesReference(q, d);
}

TEST(TrieJoinEquivalenceTest, DisconnectedCrossProduct) {
  // Atoms sharing no attributes: the descent crosses independent tries.
  Database d;
  d.SetRelation("R", 2, {{1, 2}, {1, 3}, {4, 2}});
  d.SetRelation("S", 1, {{7}, {9}});
  JoinQuery q;
  q.Add("R", {"a", "b"}).Add("S", {"c"});
  ExpectMatchesReference(q, d);
}

TEST(TrieJoinEquivalenceTest, TrieNodeCounterExported) {
  Database d;
  d.SetRelation("R", 2, {{1, 2}, {1, 3}, {2, 3}});
  JoinQuery q;
  q.Add("R", {"a", "b"}).Add("R", {"b", "c"});
  ExecutionContext ctx;
  util::Counters sink;
  ctx.counters = &sink;
  GenericJoin gj(q, d, ctx);
  EXPECT_GT(gj.trie_nodes(), 0u);
  EXPECT_EQ(sink.Get("trie.nodes"), gj.trie_nodes());
}

}  // namespace
}  // namespace qc::db
