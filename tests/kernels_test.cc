// Property tests for the SIMD kernel layer (src/kernels/, DESIGN.md §12)
// and the util::Arena scratch allocator.
//
// The contract under test is bit-identity: every kernel variant (scalar /
// AVX2 / AVX-512 / galloping) must produce byte-identical outputs over
// randomized sizes, alignments, densities and adversarial skew, and the
// engines built on top (GenericJoin, Yannakakis, AcyclicEnumerator,
// BoolMatrix::Multiply) must return identical answers at every forced
// QC_SIMD level and thread count. Variants above the machine's best
// supported level are skipped, never failed.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "core/context.h"
#include "db/agm.h"
#include "db/database.h"
#include "db/enumeration.h"
#include "db/generic_join.h"
#include "db/yannakakis.h"
#include "graph/boolmatrix.h"
#include "gtest/gtest.h"
#include "kernels/boolmm.h"
#include "kernels/dispatch.h"
#include "kernels/intersect.h"
#include "kernels/sort.h"
#include "util/arena.h"
#include "util/rng.h"

namespace qc {
namespace {

using kernels::SimdLevel;

/// Forces a kernel dispatch level for one scope and restores the previous
/// one on exit (ForceSimdLevel is process-global).
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : prev_(kernels::ActiveSimdLevel()) {
    kernels::ForceSimdLevel(level);
  }
  ~ScopedSimdLevel() { kernels::ForceSimdLevel(prev_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel prev_;
};

/// Levels this machine can actually run, scalar first.
std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (kernels::BestSupportedSimdLevel() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  if (kernels::BestSupportedSimdLevel() >= SimdLevel::kAvx512) {
    levels.push_back(SimdLevel::kAvx512);
  }
  return levels;
}

/// Strictly increasing values, possibly negative, drawn from a range whose
/// width controls the hit density against a second draw.
std::vector<std::int64_t> SortedUnique(std::size_t n, std::int64_t lo,
                                       std::int64_t hi, util::Rng* rng) {
  std::vector<std::int64_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng->NextInt(lo, hi));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

struct IntersectOut {
  std::size_t count = 0;
  std::vector<std::int32_t> pos_a, pos_b;
};

using IntersectFn = std::size_t (*)(const std::int64_t*, std::size_t,
                                    const std::int64_t*, std::size_t,
                                    std::int32_t*, std::int32_t*);

IntersectOut RunIntersect(IntersectFn fn, const std::vector<std::int64_t>& a,
                          const std::vector<std::int64_t>& b) {
  IntersectOut out;
  const std::size_t cap = std::min(a.size(), b.size()) + 1;
  out.pos_a.resize(cap);
  out.pos_b.resize(cap);
  out.count = fn(a.data(), a.size(), b.data(), b.size(), out.pos_a.data(),
                 out.pos_b.data());
  out.pos_a.resize(out.count);
  out.pos_b.resize(out.count);
  return out;
}

/// Checks `got` against the scalar reference and against first principles:
/// matched values ascending, positions pointing at equal elements.
void ExpectSameIntersection(const std::vector<std::int64_t>& a,
                            const std::vector<std::int64_t>& b,
                            const IntersectOut& ref, const IntersectOut& got,
                            const std::string& what) {
  ASSERT_EQ(got.count, ref.count) << what;
  ASSERT_EQ(got.pos_a, ref.pos_a) << what;
  ASSERT_EQ(got.pos_b, ref.pos_b) << what;
  for (std::size_t i = 0; i < got.count; ++i) {
    ASSERT_EQ(a[got.pos_a[i]], b[got.pos_b[i]]) << what << " at " << i;
    if (i > 0) {
      ASSERT_LT(a[got.pos_a[i - 1]], a[got.pos_a[i]]) << what << " at " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Arena

TEST(ArenaTest, AllocationsAreAlignedAndTracked) {
  util::Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.high_water_bytes(), 0u);
  for (std::size_t align : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
    void* p = arena.Allocate(13, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
  }
  EXPECT_GE(arena.bytes_used(), 3 * 13u);
  EXPECT_EQ(arena.high_water_bytes(), arena.bytes_used());
  std::int64_t* xs = arena.AllocateArray<std::int64_t>(100);
  for (int i = 0; i < 100; ++i) xs[i] = i;  // Must be writable memory.
  EXPECT_EQ(xs[99], 99);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(xs) % alignof(std::int64_t), 0u);
}

TEST(ArenaTest, ResetRecyclesCapacityAndKeepsHighWater) {
  util::Arena arena;
  // Force growth past the first block.
  const std::size_t big = util::Arena::kMinBlockBytes * 3;
  arena.Allocate(util::Arena::kMinBlockBytes / 2);
  arena.Allocate(big);
  const std::size_t high = arena.high_water_bytes();
  EXPECT_GE(high, big);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GE(reserved, big);

  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.high_water_bytes(), high);  // Survives the reset.
  // The retained block serves a same-sized allocation without growing.
  arena.Allocate(big / 2);
  EXPECT_LE(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, DistinctAllocationsDoNotOverlap) {
  util::Arena arena;
  std::vector<std::uint32_t*> ptrs;
  for (int i = 0; i < 64; ++i) {
    std::uint32_t* p = arena.AllocateArray<std::uint32_t>(97);
    std::fill(p, p + 97, static_cast<std::uint32_t>(i));
    ptrs.push_back(p);
  }
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 97; ++j) {
      ASSERT_EQ(ptrs[i][j], static_cast<std::uint32_t>(i)) << i << "," << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Intersection kernels

TEST(IntersectKernelTest, AllVariantsMatchScalarOnRandomInputs) {
  util::Rng rng(20260808);
  const SimdLevel best = kernels::BestSupportedSimdLevel();
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t na = rng.NextBounded(300);
    const std::size_t nb = rng.NextBounded(300);
    // Range width sweeps the hit density from ~100% overlap to sparse.
    const std::int64_t width =
        1 + static_cast<std::int64_t>(rng.NextBounded(1000));
    std::vector<std::int64_t> a = SortedUnique(na, -width, width, &rng);
    std::vector<std::int64_t> b = SortedUnique(nb, -width, width, &rng);

    IntersectOut ref =
        RunIntersect(kernels::IntersectPairPositionsScalar, a, b);
    ExpectSameIntersection(
        a, b, ref, RunIntersect(kernels::IntersectPairPositionsGallop, a, b),
        "gallop trial " + std::to_string(trial));
    if (best >= SimdLevel::kAvx2) {
      ExpectSameIntersection(
          a, b, ref, RunIntersect(kernels::IntersectPairPositionsAvx2, a, b),
          "avx2 trial " + std::to_string(trial));
    }
    if (best >= SimdLevel::kAvx512) {
      ExpectSameIntersection(
          a, b, ref,
          RunIntersect(kernels::IntersectPairPositionsAvx512, a, b),
          "avx512 trial " + std::to_string(trial));
    }
    ExpectSameIntersection(a, b, ref,
                           RunIntersect(kernels::IntersectPairPositions, a, b),
                           "dispatched trial " + std::to_string(trial));
  }
}

TEST(IntersectKernelTest, EdgeCases) {
  const std::vector<std::int64_t> empty;
  const std::vector<std::int64_t> one = {42};
  const std::vector<std::int64_t> other = {41};
  const std::vector<std::int64_t> run = {-3, -1, 0, 7, 9, 12, 40, 42, 99};
  for (IntersectFn fn :
       {static_cast<IntersectFn>(kernels::IntersectPairPositionsScalar),
        static_cast<IntersectFn>(kernels::IntersectPairPositionsGallop),
        static_cast<IntersectFn>(kernels::IntersectPairPositions)}) {
    EXPECT_EQ(RunIntersect(fn, empty, empty).count, 0u);
    EXPECT_EQ(RunIntersect(fn, empty, run).count, 0u);
    EXPECT_EQ(RunIntersect(fn, run, empty).count, 0u);
    EXPECT_EQ(RunIntersect(fn, one, other).count, 0u);
    IntersectOut hit = RunIntersect(fn, one, run);
    ASSERT_EQ(hit.count, 1u);
    EXPECT_EQ(hit.pos_a[0], 0);
    EXPECT_EQ(hit.pos_b[0], 7);
    // Identical inputs: everything matches, in place.
    IntersectOut self = RunIntersect(fn, run, run);
    ASSERT_EQ(self.count, run.size());
    for (std::size_t i = 0; i < run.size(); ++i) {
      EXPECT_EQ(self.pos_a[i], static_cast<std::int32_t>(i));
      EXPECT_EQ(self.pos_b[i], static_cast<std::int32_t>(i));
    }
  }
}

TEST(IntersectKernelTest, MisalignedSpansMatchScalar) {
  // Trie level spans start at arbitrary node offsets, so the kernels must
  // not assume 32/64-byte alignment. Slice a shared buffer at every offset
  // modulo a vector width.
  util::Rng rng(77);
  std::vector<std::int64_t> pool = SortedUnique(4096, 0, 6000, &rng);
  const SimdLevel best = kernels::BestSupportedSimdLevel();
  for (std::size_t off_a = 0; off_a < 8; ++off_a) {
    for (std::size_t off_b = 0; off_b < 8; ++off_b) {
      std::vector<std::int64_t> a(pool.begin() + off_a,
                                  pool.begin() + off_a + 333);
      std::vector<std::int64_t> b(pool.begin() + off_b + 100,
                                  pool.begin() + off_b + 600);
      // Re-slice *views* into the same allocation to vary pointer alignment.
      const std::int64_t* ap = pool.data() + off_a;
      const std::int64_t* bp = pool.data() + off_b + 100;
      std::vector<std::int32_t> ref_a(333), ref_b(333), got_a(333), got_b(333);
      const std::size_t ref = kernels::IntersectPairPositionsScalar(
          ap, 333, bp, 500, ref_a.data(), ref_b.data());
      if (best >= SimdLevel::kAvx2) {
        const std::size_t got = kernels::IntersectPairPositionsAvx2(
            ap, 333, bp, 500, got_a.data(), got_b.data());
        ASSERT_EQ(got, ref) << off_a << "," << off_b;
        ASSERT_TRUE(std::equal(ref_a.begin(), ref_a.begin() + ref,
                               got_a.begin()));
        ASSERT_TRUE(std::equal(ref_b.begin(), ref_b.begin() + ref,
                               got_b.begin()));
      }
      if (best >= SimdLevel::kAvx512) {
        const std::size_t got = kernels::IntersectPairPositionsAvx512(
            ap, 333, bp, 500, got_a.data(), got_b.data());
        ASSERT_EQ(got, ref) << off_a << "," << off_b;
        ASSERT_TRUE(std::equal(ref_a.begin(), ref_a.begin() + ref,
                               got_a.begin()));
        ASSERT_TRUE(std::equal(ref_b.begin(), ref_b.begin() + ref,
                               got_b.begin()));
      }
    }
  }
}

TEST(IntersectKernelTest, ExtremeSkewTakesGallopAndMatches) {
  // 1000x skew: the dispatched kernel must route to galloping (in either
  // argument order) and still produce the scalar answer.
  util::Rng rng(5150);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t small_n = 8 + rng.NextBounded(56);
    std::vector<std::int64_t> big =
        SortedUnique(1000 * small_n, 0, 4'000'000, &rng);
    std::vector<std::int64_t> small;
    for (std::size_t i = 0; i < small_n; ++i) {
      // Half the probes hit, half miss.
      if (i % 2 == 0 && !big.empty()) {
        small.push_back(big[rng.NextBounded(big.size())]);
      } else {
        small.push_back(rng.NextInt(0, 4'000'000));
      }
    }
    std::sort(small.begin(), small.end());
    small.erase(std::unique(small.begin(), small.end()), small.end());

    IntersectOut ref =
        RunIntersect(kernels::IntersectPairPositionsScalar, small, big);
    ExpectSameIntersection(small, big, ref,
                           RunIntersect(kernels::IntersectPairPositions,
                                        small, big),
                           "skew small-first " + std::to_string(trial));
    IntersectOut ref_rev =
        RunIntersect(kernels::IntersectPairPositionsScalar, big, small);
    ExpectSameIntersection(big, small, ref_rev,
                           RunIntersect(kernels::IntersectPairPositions, big,
                                        small),
                           "skew big-first " + std::to_string(trial));
  }
}

// ---------------------------------------------------------------------------
// Radix sort

TEST(RadixSortKernelTest, MatchesComparatorOnRandomRows) {
  util::Rng rng(31337);
  util::Arena arena;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t stride = 1 + rng.NextBounded(5);
    const std::size_t n = 1 + rng.NextBounded(3000);
    // Narrow domains produce heavy ties; wide ones exercise all key bytes.
    const std::int64_t width = (trial % 2 == 0)
                                   ? 8
                                   : (std::int64_t{1} << 40);
    std::vector<std::int64_t> rows(n * stride);
    for (auto& v : rows) v = rng.NextInt(-width, width);

    std::vector<std::int32_t> cols(stride);
    std::iota(cols.begin(), cols.end(), 0);
    std::vector<std::uint32_t> idx(n), want(n);
    std::iota(idx.begin(), idx.end(), 0u);
    want = idx;
    std::stable_sort(want.begin(), want.end(),
                     [&](std::uint32_t x, std::uint32_t y) {
                       return std::lexicographical_compare(
                           rows.begin() + x * stride,
                           rows.begin() + (x + 1) * stride,
                           rows.begin() + y * stride,
                           rows.begin() + (y + 1) * stride);
                     });
    util::Arena* scratch = trial % 2 == 0 ? &arena : nullptr;
    kernels::SortRowsByColumns(rows.data(), stride, n, cols.data(),
                               cols.size(), idx.data(), scratch);
    ASSERT_EQ(idx, want) << "trial " << trial;
    arena.Reset();
  }
}

TEST(RadixSortKernelTest, IsStableOnTiedKeys) {
  // Sort 2-column rows by column 0 only: rows with equal keys must keep
  // their incoming idx order — the enumerator's shared-cols-then-all-cols
  // ordering depends on this.
  util::Rng rng(99);
  const std::size_t n = 2000;
  std::vector<std::int64_t> rows(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    rows[i * 2] = static_cast<std::int64_t>(rng.NextBounded(7)) - 3;
    rows[i * 2 + 1] = static_cast<std::int64_t>(i);  // Identity tag.
  }
  std::vector<std::int32_t> cols = {0};
  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  kernels::SortRowsByColumns(rows.data(), 2, n, cols.data(), 1, idx.data(),
                             nullptr);
  for (std::size_t i = 1; i < n; ++i) {
    const std::int64_t ka = rows[idx[i - 1] * 2], kb = rows[idx[i] * 2];
    ASSERT_LE(ka, kb) << "at " << i;
    if (ka == kb) ASSERT_LT(idx[i - 1], idx[i]) << "stability at " << i;
  }
}

// ---------------------------------------------------------------------------
// Boolean-OR kernels and BoolMatrix

TEST(BoolMmKernelTest, OrVariantsAreBitwiseIdentical) {
  util::Rng rng(4242);
  const SimdLevel best = kernels::BestSupportedSimdLevel();
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                        std::size_t{64}, std::size_t{129}}) {
    std::vector<std::uint64_t> dst(n), src(n), s1(n), s2(n), s3(n);
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = rng.Next();
      src[i] = rng.Next();
      s1[i] = rng.Next();
      s2[i] = rng.Next();
      s3[i] = rng.Next();
    }
    std::vector<std::uint64_t> ref = dst;
    kernels::OrWordsScalar(ref.data(), src.data(), n);
    std::vector<std::uint64_t> got = dst;
    kernels::OrWords(got.data(), src.data(), n);
    EXPECT_EQ(got, ref) << "OrWords n=" << n;
    if (best >= SimdLevel::kAvx2) {
      got = dst;
      kernels::OrWordsAvx2(got.data(), src.data(), n);
      EXPECT_EQ(got, ref) << "OrWordsAvx2 n=" << n;
    }
    if (best >= SimdLevel::kAvx512) {
      got = dst;
      kernels::OrWordsAvx512(got.data(), src.data(), n);
      EXPECT_EQ(got, ref) << "OrWordsAvx512 n=" << n;
    }

    std::vector<std::uint64_t> ref4 = dst;
    kernels::OrWords4Scalar(ref4.data(), src.data(), s1.data(), s2.data(),
                            s3.data(), n);
    // OrWords4 == four sequential OrWords by definition.
    std::vector<std::uint64_t> seq = dst;
    for (const auto* s : {&src, &s1, &s2, &s3}) {
      kernels::OrWordsScalar(seq.data(), s->data(), n);
    }
    EXPECT_EQ(ref4, seq) << "OrWords4 decomposition n=" << n;
    got = dst;
    kernels::OrWords4(got.data(), src.data(), s1.data(), s2.data(), s3.data(),
                      n);
    EXPECT_EQ(got, ref4) << "OrWords4 n=" << n;
    if (best >= SimdLevel::kAvx2) {
      got = dst;
      kernels::OrWords4Avx2(got.data(), src.data(), s1.data(), s2.data(),
                            s3.data(), n);
      EXPECT_EQ(got, ref4) << "OrWords4Avx2 n=" << n;
    }
    if (best >= SimdLevel::kAvx512) {
      got = dst;
      kernels::OrWords4Avx512(got.data(), src.data(), s1.data(), s2.data(),
                              s3.data(), n);
      EXPECT_EQ(got, ref4) << "OrWords4Avx512 n=" << n;
    }
  }
}

TEST(BoolMmKernelTest, MultiplyIdenticalAcrossLevelsAndThreads) {
  util::Rng rng(888);
  const int n = 301;  // Not a multiple of 64: padding words in play.
  graph::BoolMatrix a(n, n), b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.NextBounded(5) == 0) a.Set(i, j);
      if (rng.NextBounded(5) == 0) b.Set(i, j);
    }
  }
  graph::BoolMatrix ref(0, 0);
  {
    ScopedSimdLevel force(SimdLevel::kScalar);
    ref = a.Multiply(b, 1);
  }
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel force(level);
    for (int threads : {1, 2, 8}) {
      graph::BoolMatrix got = a.Multiply(b, threads);
      ASSERT_TRUE(got == ref) << "level=" << kernels::SimdLevelName(level)
                              << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine bit-identity across forced SIMD levels

/// Evaluates `q` against `d` with a forced kernel level and thread count,
/// routing scratch through a per-run arena exactly like api::ExecuteQuery.
db::JoinResult EvalGenericJoin(const db::JoinQuery& q, const db::Database& d,
                               SimdLevel level, int threads) {
  ScopedSimdLevel force(level);
  util::Arena arena;
  ExecutionContext ctx;
  ctx.threads = threads;
  ctx.arena = &arena;
  db::GenericJoin join(q, d, ctx);
  return join.Evaluate();
}

TEST(EngineSimdIdentityTest, GenericJoinBitIdenticalAcrossLevelsAndThreads) {
  util::Rng rng(7070);
  std::vector<db::JoinQuery> queries;
  {  // Triangle: the two-holder SIMD path runs on the last attribute.
    db::JoinQuery q;
    q.atoms.push_back({"R1", {"a", "b"}});
    q.atoms.push_back({"R2", {"a", "c"}});
    q.atoms.push_back({"R3", {"b", "c"}});
    queries.push_back(q);
  }
  for (int i = 0; i < 3; ++i) {
    queries.push_back(db::RandomBinaryQuery(3 + i, 4, &rng));
  }
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    // Dense domain so level spans are long enough to hit the kernel path.
    db::Database d = db::RandomDatabase(queries[qi], 900, 60, &rng);
    db::JoinResult ref =
        EvalGenericJoin(queries[qi], d, SimdLevel::kScalar, 1);
    for (SimdLevel level : SupportedLevels()) {
      for (int threads : {1, 2, 8}) {
        db::JoinResult got = EvalGenericJoin(queries[qi], d, level, threads);
        ASSERT_EQ(got.attributes, ref.attributes)
            << "query " << qi << " level " << kernels::SimdLevelName(level)
            << " threads " << threads;
        ASSERT_EQ(got.tuples, ref.tuples)
            << "query " << qi << " level " << kernels::SimdLevelName(level)
            << " threads " << threads;
      }
    }
  }
}

TEST(EngineSimdIdentityTest, YannakakisAndEnumeratorIdenticalAcrossLevels) {
  util::Rng rng(6060);
  for (int trial = 0; trial < 3; ++trial) {
    db::JoinQuery q = db::RandomAcyclicQuery(4, 3, &rng);
    db::Database d = db::RandomDatabase(q, 600, 12, &rng);

    std::optional<db::JoinResult> ref;
    std::vector<db::Tuple> ref_stream;
    {
      ScopedSimdLevel force(SimdLevel::kScalar);
      ref = db::EvaluateYannakakis(q, d);
      db::AcyclicEnumerator en(q, d);
      ASSERT_TRUE(en.IsValid());
      while (auto t = en.Next()) ref_stream.push_back(*t);
    }
    ASSERT_TRUE(ref.has_value());

    for (SimdLevel level : SupportedLevels()) {
      ScopedSimdLevel force(level);
      util::Arena arena;
      std::optional<db::JoinResult> got =
          db::EvaluateYannakakis(q, d, nullptr, nullptr, nullptr, &arena);
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(got->attributes, ref->attributes)
          << kernels::SimdLevelName(level);
      ASSERT_EQ(got->tuples, ref->tuples) << kernels::SimdLevelName(level);

      db::AcyclicEnumerator en(q, d, nullptr, nullptr, &arena);
      ASSERT_TRUE(en.IsValid());
      std::vector<db::Tuple> stream;
      while (auto t = en.Next()) stream.push_back(*t);
      ASSERT_EQ(stream, ref_stream) << kernels::SimdLevelName(level);
    }
  }
}

TEST(EngineSimdIdentityTest, SimdBlockCounterTracksDispatchedPath) {
  // Under a forced scalar level the engine must take the historical
  // leapfrog (simd_blocks == 0); under any wider level on a dense pair
  // join the blocked path must actually run.
  db::JoinQuery q;
  q.atoms.push_back({"R1", {"a", "b"}});
  q.atoms.push_back({"R2", {"a", "b"}});
  util::Rng rng(11);
  db::Database d = db::RandomDatabase(q, 4000, 200, &rng);

  {
    ScopedSimdLevel force(SimdLevel::kScalar);
    db::GenericJoin join(q, d, ExecutionContext());
    (void)join.Evaluate();
    EXPECT_EQ(join.stats().simd_blocks, 0u);
  }
  if (kernels::BestSupportedSimdLevel() >= SimdLevel::kAvx2) {
    ScopedSimdLevel force(kernels::BestSupportedSimdLevel());
    db::GenericJoin join(q, d, ExecutionContext());
    (void)join.Evaluate();
    EXPECT_GT(join.stats().simd_blocks, 0u);
  }
}

}  // namespace
}  // namespace qc
