#include <gtest/gtest.h>

#include "csp/generators.h"
#include "csp/serialization.h"
#include "csp/solver.h"
#include "db/generic_join.h"
#include "db/joins.h"
#include "db/relational_ops.h"
#include "graph/generators.h"
#include "structures/structure.h"
#include "util/rng.h"

namespace qc {
namespace {

db::JoinResult SampleResult() {
  return db::JoinResult{{"a", "b", "c"},
                        {{1, 2, 3}, {1, 2, 4}, {5, 5, 6}, {7, 8, 7}}};
}

TEST(RelationalOpsTest, ProjectDeduplicates) {
  db::JoinResult r = db::Project(SampleResult(), {"a", "b"});
  EXPECT_EQ(r.attributes, (std::vector<std::string>{"a", "b"}));
  r.Normalize();
  EXPECT_EQ(r.tuples,
            (std::vector<db::Tuple>{{1, 2}, {5, 5}, {7, 8}}));
  // Column reorder works too.
  db::JoinResult rev = db::Project(SampleResult(), {"c", "a"});
  EXPECT_EQ(rev.attributes, (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ(rev.tuples[0], (db::Tuple{3, 1}));
}

TEST(RelationalOpsTest, Selections) {
  db::JoinResult eq = db::SelectEquals(SampleResult(), "a", 1);
  EXPECT_EQ(eq.tuples.size(), 2u);
  db::JoinResult coleq = db::SelectColumnsEqual(SampleResult(), "a", "b");
  ASSERT_EQ(coleq.tuples.size(), 1u);
  EXPECT_EQ(coleq.tuples[0], (db::Tuple{5, 5, 6}));
  db::JoinResult ac = db::SelectColumnsEqual(SampleResult(), "a", "c");
  ASSERT_EQ(ac.tuples.size(), 1u);
  EXPECT_EQ(ac.tuples[0], (db::Tuple{7, 8, 7}));
}

TEST(RelationalOpsTest, UnionAndDifference) {
  db::JoinResult a{{"x"}, {{1}, {2}, {3}}};
  db::JoinResult b{{"x"}, {{3}, {4}}};
  EXPECT_EQ(db::Union(a, b).tuples,
            (std::vector<db::Tuple>{{1}, {2}, {3}, {4}}));
  EXPECT_EQ(db::Difference(a, b).tuples,
            (std::vector<db::Tuple>{{1}, {2}}));
  EXPECT_EQ(db::Difference(b, a).tuples, (std::vector<db::Tuple>{{4}}));
}

TEST(RelationalOpsTest, RenameAffectsJoins) {
  // pi_{b->x}(R) joined with S(x, y) behaves as a join on the renamed
  // column.
  db::JoinResult r{{"a", "b"}, {{1, 10}, {2, 20}}};
  db::JoinResult renamed = db::Rename(r, "b", "x");
  EXPECT_EQ(renamed.attributes, (std::vector<std::string>{"a", "x"}));
  db::JoinResult s{{"x", "y"}, {{10, 100}}};
  db::JoinResult joined = db::HashJoin(renamed, s);
  ASSERT_EQ(joined.tuples.size(), 1u);
  EXPECT_EQ(joined.tuples[0], (db::Tuple{1, 10, 100}));
}

TEST(CspSerializationTest, RoundTrip) {
  util::Rng rng(1);
  graph::Graph structure = graph::RandomGnp(6, 0.5, &rng);
  csp::CspInstance csp = csp::RandomBinaryCsp(structure, 3, 0.4, &rng);
  std::string text = csp::ToText(csp);
  auto parsed = csp::FromText(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_vars, csp.num_vars);
  EXPECT_EQ(parsed->domain_size, csp.domain_size);
  ASSERT_EQ(parsed->constraints.size(), csp.constraints.size());
  for (std::size_t i = 0; i < csp.constraints.size(); ++i) {
    EXPECT_EQ(parsed->constraints[i].scope, csp.constraints[i].scope);
    EXPECT_EQ(parsed->constraints[i].relation.tuples(),
              csp.constraints[i].relation.tuples());
  }
  // Semantics preserved.
  EXPECT_EQ(csp::CountSolutionsBruteForce(*parsed),
            csp::CountSolutionsBruteForce(csp));
}

TEST(CspSerializationTest, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(csp::FromText("", &error).has_value());
  EXPECT_FALSE(csp::FromText("constraint 2 0 1\nend\n", &error).has_value());
  EXPECT_FALSE(csp::FromText("csp 2 2\nconstraint 2 0 5\nend\n", &error)
                   .has_value());
  EXPECT_FALSE(csp::FromText("csp 2 2\nconstraint 2 0 1\n0 9\nend\n", &error)
                   .has_value());
  EXPECT_FALSE(
      csp::FromText("csp 2 2\nconstraint 2 0 1\n0 1\n", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(StructureToolsTest, IsomorphismBasics) {
  using structures::Structure;
  Structure c4a = Structure::FromGraph(graph::Cycle(4));
  // A relabelled 4-cycle: 0-2-1-3-0.
  graph::Graph g(4);
  g.AddEdge(0, 2);
  g.AddEdge(2, 1);
  g.AddEdge(1, 3);
  g.AddEdge(3, 0);
  Structure c4b = Structure::FromGraph(g);
  EXPECT_TRUE(structures::AreIsomorphic(c4a, c4b));
  // P_4 has the same vertex count and edge count as... no: use K_3 vs P_3.
  Structure k3 = Structure::FromGraph(graph::Complete(3));
  Structure p3 = Structure::FromGraph(graph::Path(3));
  EXPECT_FALSE(structures::AreIsomorphic(k3, p3));
  // C_4 vs K_{1,3}: both 4 vertices 3... C_4 has 4 edges; use star_3 vs P_4
  // (both 4 vertices, 3 edges, different degree sequences).
  Structure star = Structure::FromGraph(graph::Star(3));
  Structure p4 = Structure::FromGraph(graph::Path(4));
  EXPECT_FALSE(structures::AreIsomorphic(star, p4));
}

TEST(StructureToolsTest, CoreUniqueUpToIsomorphism) {
  // Compute the core of C_6 + K_2 twice from differently-labelled copies;
  // the results must be isomorphic (both are single edges).
  using structures::Structure;
  graph::Graph g1 = graph::Cycle(6).DisjointUnion(graph::Complete(2));
  graph::Graph g2 = graph::Complete(2).DisjointUnion(graph::Cycle(6));
  Structure core1 = structures::ComputeCore(Structure::FromGraph(g1));
  Structure core2 = structures::ComputeCore(Structure::FromGraph(g2));
  EXPECT_TRUE(structures::AreIsomorphic(core1, core2));
  EXPECT_EQ(core1.universe_size(), 2);
}

TEST(StructureToolsTest, DisjointUnionHomBehaviour) {
  using structures::Structure;
  Structure c5 = Structure::FromGraph(graph::Cycle(5));
  Structure k3 = Structure::FromGraph(graph::Complete(3));
  Structure both = structures::DisjointUnion(c5, k3);
  EXPECT_EQ(both.universe_size(), 8);
  // C_5 + K_3 maps into K_3 (each component does).
  EXPECT_TRUE(structures::FindHomomorphism(both, k3).has_value());
  // K_3 maps into the union (into its K_3 part).
  EXPECT_TRUE(structures::FindHomomorphism(k3, both).has_value());
}

TEST(StructureToolsTest, TreewidthHomCountMatchesBacktracking) {
  util::Rng rng(2);
  for (int trial = 0; trial < 6; ++trial) {
    graph::Graph ha = graph::RandomPartialKTree(7, 2, 0.8, &rng);
    graph::Graph gb = graph::RandomGnp(5, 0.5, &rng);
    structures::Structure a = structures::Structure::FromGraph(ha);
    structures::Structure b = structures::Structure::FromGraph(gb);
    EXPECT_EQ(structures::CountHomomorphismsTreewidth(a, b),
              structures::CountHomomorphisms(a, b))
        << trial;
  }
}

}  // namespace
}  // namespace qc
