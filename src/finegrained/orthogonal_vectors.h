#ifndef QC_FINEGRAINED_ORTHOGONAL_VECTORS_H_
#define QC_FINEGRAINED_ORTHOGONAL_VECTORS_H_

#include <optional>
#include <utility>
#include <vector>

#include "util/bitset.h"
#include "util/budget.h"
#include "util/rng.h"

namespace qc::finegrained {

/// An Orthogonal Vectors instance: two families of d-dimensional 0/1
/// vectors. OV is the canonical intermediate problem of the SETH-based
/// fine-grained reductions cited in Section 7 (e.g. [3]).
struct OvInstance {
  std::vector<util::Bitset> a;
  std::vector<util::Bitset> b;
  int dimension = 0;
};

/// Quadratic scan with word-parallel inner product: finds (i, j) with
/// a_i . b_j = 0, or nullopt. Polls `budget` once per examined pair; on a
/// trip the nullopt means "not found in the pairs scanned so far", not
/// "none exists" — check budget->Stopped() to tell them apart.
std::optional<std::pair<int, int>> FindOrthogonalPair(
    const OvInstance& inst, util::Budget* budget = nullptr);

/// Exhaustive count of orthogonal pairs (a lower bound when `budget`
/// tripped mid-scan).
std::uint64_t CountOrthogonalPairs(const OvInstance& inst,
                                   util::Budget* budget = nullptr);

/// Random OV instance: each coordinate is 1 with probability `density`.
OvInstance RandomOvInstance(int n, int dimension, double density,
                            util::Rng* rng);

/// The SETH connection (split-and-list): a SAT assignment-pair search as OV.
/// Splits the variables of a CNF in half; vector a_x has a 0 in coordinate c
/// iff half-assignment x satisfies clause c (so an orthogonal pair is a pair
/// of half-assignments jointly satisfying every clause).
OvInstance OvFromCnf(int num_vars, int num_clauses,
                     const std::vector<std::vector<int>>& clauses);

}  // namespace qc::finegrained

#endif  // QC_FINEGRAINED_ORTHOGONAL_VECTORS_H_
