#ifndef QC_FINEGRAINED_CURVES_H_
#define QC_FINEGRAINED_CURVES_H_

#include <utility>
#include <vector>

#include "util/rng.h"

namespace qc::finegrained {

using Point = std::pair<double, double>;

/// Dynamic time warping distance between two numeric series (squared-error
/// local cost), by the quadratic DP — the problem whose SETH-hardness
/// Bringmann–Künnemann proved (cited in Section 7).
double DynamicTimeWarping(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Discrete Fréchet distance between two polygonal curves (Euclidean local
/// distance), quadratic DP — Bringmann's "walking the dog" lower bound
/// target (cited in Section 7).
double DiscreteFrechet(const std::vector<Point>& a,
                       const std::vector<Point>& b);

/// Random walk curve with `n` points and steps of the given scale.
std::vector<Point> RandomCurve(int n, double step, util::Rng* rng);

/// Random numeric series in [0, 1).
std::vector<double> RandomSeries(int n, util::Rng* rng);

}  // namespace qc::finegrained

#endif  // QC_FINEGRAINED_CURVES_H_
