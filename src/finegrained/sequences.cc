#include "finegrained/sequences.h"

#include <algorithm>
#include <climits>
#include <vector>

namespace qc::finegrained {

int EditDistanceQuadratic(const std::string& a, const std::string& b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  std::vector<int> prev(m + 1), cur(m + 1);
  for (int j = 0; j <= m; ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    cur[0] = i;
    for (int j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] != b[j - 1] ? 1 : 0);
      cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::optional<int> EditDistanceBanded(const std::string& a,
                                      const std::string& b,
                                      int max_distance) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (std::abs(n - m) > max_distance) return std::nullopt;
  const int band = max_distance;
  // dp[i][j] only for |i - j| <= band; store as offset row.
  const int width = 2 * band + 1;
  const int inf = INT_MAX / 2;
  std::vector<int> prev(width, inf), cur(width, inf);
  // Row 0: dp[0][j] = j for j <= band.
  for (int j = 0; j <= std::min(m, band); ++j) prev[band + j] = j;
  for (int i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), inf);
    int lo = std::max(0, i - band), hi = std::min(m, i + band);
    for (int j = lo; j <= hi; ++j) {
      int off = band + j - i;
      int best = inf;
      if (j > 0) {
        // Substitution uses prev row at offset (j-1)-(i-1) = off.
        int sub = prev[off] + (a[i - 1] != b[j - 1] ? 1 : 0);
        best = std::min(best, sub);
      } else {
        best = std::min(best, i);  // Delete the whole prefix of a.
      }
      if (off + 1 < width) best = std::min(best, prev[off + 1] + 1);  // Del.
      if (off - 1 >= 0) best = std::min(best, cur[off - 1] + 1);      // Ins.
      cur[off] = best;
    }
    std::swap(prev, cur);
  }
  int result = prev[band + m - n];
  if (result > max_distance) return std::nullopt;
  return result;
}

int LongestCommonSubsequence(const std::string& a, const std::string& b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  std::vector<std::vector<int>> dp(n + 1, std::vector<int>(m + 1, 0));
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= m; ++j) {
      dp[i][j] = (a[i - 1] == b[j - 1])
                     ? dp[i - 1][j - 1] + 1
                     : std::max(dp[i - 1][j], dp[i][j - 1]);
    }
  }
  return dp[n][m];
}

int LongestCommonSubsequenceLinearSpace(const std::string& a,
                                        const std::string& b) {
  const int m = static_cast<int>(b.size());
  std::vector<int> prev(m + 1, 0), cur(m + 1, 0);
  for (char ca : a) {
    for (int j = 1; j <= m; ++j) {
      cur[j] = (ca == b[j - 1]) ? prev[j - 1] + 1
                                : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::string RandomString(int length, int alphabet, util::Rng* rng) {
  std::string s(length, 'a');
  for (auto& c : s) {
    c = static_cast<char>('a' + rng->NextBounded(alphabet));
  }
  return s;
}

std::string MutateString(const std::string& s, int edits, int alphabet,
                         util::Rng* rng) {
  std::string out = s;
  for (int e = 0; e < edits; ++e) {
    if (out.empty()) {
      out.push_back(static_cast<char>('a' + rng->NextBounded(alphabet)));
      continue;
    }
    std::size_t pos = rng->NextBounded(out.size());
    switch (rng->NextBounded(3)) {
      case 0:  // Substitute.
        out[pos] = static_cast<char>('a' + rng->NextBounded(alphabet));
        break;
      case 1:  // Insert.
        out.insert(out.begin() + pos,
                   static_cast<char>('a' + rng->NextBounded(alphabet)));
        break;
      default:  // Delete.
        out.erase(out.begin() + pos);
        break;
    }
  }
  return out;
}

}  // namespace qc::finegrained
