#include "finegrained/curves.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qc::finegrained {

double DynamicTimeWarping(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n == 0 || m == 0) {
    return (n == 0 && m == 0) ? 0.0
                              : std::numeric_limits<double>::infinity();
  }
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(m + 1, inf), cur(m + 1, inf);
  prev[0] = 0.0;
  for (int i = 1; i <= n; ++i) {
    cur[0] = inf;
    for (int j = 1; j <= m; ++j) {
      double d = a[i - 1] - b[j - 1];
      cur[j] = d * d + std::min({prev[j - 1], prev[j], cur[j - 1]});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

namespace {

double Dist(const Point& p, const Point& q) {
  double dx = p.first - q.first, dy = p.second - q.second;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

double DiscreteFrechet(const std::vector<Point>& a,
                       const std::vector<Point>& b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n == 0 || m == 0) return std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(n, std::vector<double>(m));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      double d = Dist(a[i], b[j]);
      if (i == 0 && j == 0) {
        dp[i][j] = d;
      } else if (i == 0) {
        dp[i][j] = std::max(dp[i][j - 1], d);
      } else if (j == 0) {
        dp[i][j] = std::max(dp[i - 1][j], d);
      } else {
        dp[i][j] = std::max(
            std::min({dp[i - 1][j], dp[i][j - 1], dp[i - 1][j - 1]}), d);
      }
    }
  }
  return dp[n - 1][m - 1];
}

std::vector<Point> RandomCurve(int n, double step, util::Rng* rng) {
  std::vector<Point> curve;
  curve.reserve(n);
  double x = 0, y = 0;
  for (int i = 0; i < n; ++i) {
    curve.emplace_back(x, y);
    x += (rng->NextDouble() - 0.5) * step;
    y += (rng->NextDouble() - 0.5) * step;
  }
  return curve;
}

std::vector<double> RandomSeries(int n, util::Rng* rng) {
  std::vector<double> s(n);
  for (auto& v : s) v = rng->NextDouble();
  return s;
}

}  // namespace qc::finegrained
