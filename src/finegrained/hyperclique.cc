#include "finegrained/hyperclique.h"

#include <algorithm>
#include <cstdlib>

namespace qc::finegrained {

HypercliqueSearcher::HypercliqueSearcher(const graph::Hypergraph& h, int d,
                                         util::Budget* budget)
    : h_(h), d_(d), budget_(budget) {
  if (!h.IsUniform(d)) std::abort();
  sorted_edges_ = h.Edges();
  std::sort(sorted_edges_.begin(), sorted_edges_.end());
}

bool HypercliqueSearcher::ClosesAllEdges(const std::vector<int>& current,
                                         int v) const {
  // Every (d-1)-subset of `current`, together with v, must be an edge.
  const int s = static_cast<int>(current.size());
  if (s < d_ - 1) return true;
  std::vector<int> idx(d_ - 1);
  for (int i = 0; i < d_ - 1; ++i) idx[i] = i;
  while (true) {
    std::vector<int> edge;
    edge.reserve(d_);
    for (int i : idx) edge.push_back(current[i]);
    edge.push_back(v);
    std::sort(edge.begin(), edge.end());
    if (!std::binary_search(sorted_edges_.begin(), sorted_edges_.end(),
                            edge)) {
      return false;
    }
    int i = d_ - 2;
    while (i >= 0 && idx[i] == s - (d_ - 1) + i) --i;
    if (i < 0) break;
    ++idx[i];
    for (int j = i + 1; j < d_ - 1; ++j) idx[j] = idx[j - 1] + 1;
  }
  return true;
}

bool HypercliqueSearcher::Extend(int k, int next, std::vector<int>* current,
                                 std::uint64_t* count, bool count_all) {
  if (static_cast<int>(current->size()) == k) {
    if (count != nullptr) ++*count;
    return !count_all;
  }
  for (int v = next; v < h_.num_vertices(); ++v) {
    // Safe point per candidate vertex; `stopped_` marks the unwind so the
    // true return below is not mistaken for a witness.
    if (budget_ != nullptr && budget_->Poll()) {
      stopped_ = true;
      return true;
    }
    ++nodes_;
    if (!ClosesAllEdges(*current, v)) continue;
    current->push_back(v);
    if (Extend(k, v + 1, current, count, count_all)) return true;
    current->pop_back();
  }
  return false;
}

std::optional<std::vector<int>> HypercliqueSearcher::Find(int k) {
  nodes_ = 0;
  stopped_ = false;
  status_ = util::RunStatus::kCompleted;
  if (k < d_) return std::nullopt;  // Degenerate: no edges to witness.
  std::vector<int> current;
  bool found = Extend(k, 0, &current, nullptr, false);
  if (stopped_) {
    status_ = budget_->status();
    return std::nullopt;
  }
  if (found) return current;
  return std::nullopt;
}

std::uint64_t HypercliqueSearcher::Count(int k) {
  nodes_ = 0;
  stopped_ = false;
  status_ = util::RunStatus::kCompleted;
  if (k < d_) return 0;
  std::vector<int> current;
  std::uint64_t count = 0;
  Extend(k, 0, &current, &count, true);
  if (stopped_) status_ = budget_->status();
  return count;
}

}  // namespace qc::finegrained
