#include "finegrained/orthogonal_vectors.h"

namespace qc::finegrained {

std::optional<std::pair<int, int>> FindOrthogonalPair(const OvInstance& inst,
                                                      util::Budget* budget) {
  for (std::size_t i = 0; i < inst.a.size(); ++i) {
    for (std::size_t j = 0; j < inst.b.size(); ++j) {
      if (budget != nullptr && budget->Poll()) return std::nullopt;
      if (!inst.a[i].Intersects(inst.b[j])) {
        return std::make_pair(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return std::nullopt;
}

std::uint64_t CountOrthogonalPairs(const OvInstance& inst,
                                   util::Budget* budget) {
  std::uint64_t count = 0;
  for (const auto& a : inst.a) {
    for (const auto& b : inst.b) {
      if (budget != nullptr && budget->Poll()) return count;
      if (!a.Intersects(b)) ++count;
    }
  }
  return count;
}

OvInstance RandomOvInstance(int n, int dimension, double density,
                            util::Rng* rng) {
  OvInstance inst;
  inst.dimension = dimension;
  for (int side = 0; side < 2; ++side) {
    auto& family = side == 0 ? inst.a : inst.b;
    family.reserve(n);
    for (int i = 0; i < n; ++i) {
      util::Bitset v(dimension);
      for (int d = 0; d < dimension; ++d) {
        if (rng->NextBool(density)) v.Set(d);
      }
      family.push_back(std::move(v));
    }
  }
  return inst;
}

OvInstance OvFromCnf(int num_vars, int num_clauses,
                     const std::vector<std::vector<int>>& clauses) {
  OvInstance inst;
  inst.dimension = num_clauses;
  const int half = num_vars / 2;
  const int rest = num_vars - half;
  // Side A enumerates assignments of variables [1, half]; side B of
  // variables (half, num_vars]. Coordinate c of a vector is 1 iff the
  // half-assignment does NOT satisfy clause c.
  auto build = [&](int offset, int count, std::vector<util::Bitset>* out) {
    for (std::uint64_t mask = 0; mask < (1ULL << count); ++mask) {
      util::Bitset v(num_clauses);
      for (int c = 0; c < num_clauses; ++c) {
        bool satisfied = false;
        for (int lit : clauses[c]) {
          int var = lit > 0 ? lit : -lit;
          if (var <= offset || var > offset + count) continue;
          bool value = (mask >> (var - offset - 1)) & 1ULL;
          if ((lit > 0) == value) {
            satisfied = true;
            break;
          }
        }
        if (!satisfied) v.Set(c);
      }
      out->push_back(std::move(v));
    }
  };
  build(0, half, &inst.a);
  build(half, rest, &inst.b);
  return inst;
}

}  // namespace qc::finegrained
