#ifndef QC_FINEGRAINED_SEQUENCES_H_
#define QC_FINEGRAINED_SEQUENCES_H_

#include <cstdint>
#include <optional>
#include <string>

#include "util/rng.h"

namespace qc::finegrained {

/// The textbook O(n^2) edit-distance dynamic program whose SETH-optimality
/// the paper cites (Backurs–Indyk, Section 7). Unit costs.
int EditDistanceQuadratic(const std::string& a, const std::string& b);

/// Banded variant: O((|a|+|b|) * s) time; returns nullopt if the distance
/// exceeds `max_distance`. Exact whenever the true distance is within the
/// band — the standard output-sensitive refinement.
std::optional<int> EditDistanceBanded(const std::string& a,
                                      const std::string& b, int max_distance);

/// Longest common subsequence length by the quadratic DP (the LCS lower
/// bound literature cited in Section 7).
int LongestCommonSubsequence(const std::string& a, const std::string& b);

/// Memory-light LCS: two rows instead of a full table.
int LongestCommonSubsequenceLinearSpace(const std::string& a,
                                        const std::string& b);

/// Random string over an alphabet of the given size (characters 'a'...).
std::string RandomString(int length, int alphabet, util::Rng* rng);

/// Mutates `s` with `edits` random single-character substitutions,
/// insertions, or deletions; for generating similar-string workloads.
std::string MutateString(const std::string& s, int edits, int alphabet,
                         util::Rng* rng);

}  // namespace qc::finegrained

#endif  // QC_FINEGRAINED_SEQUENCES_H_
