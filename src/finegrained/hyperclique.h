#ifndef QC_FINEGRAINED_HYPERCLIQUE_H_
#define QC_FINEGRAINED_HYPERCLIQUE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/hypergraph.h"
#include "util/budget.h"

namespace qc::finegrained {

/// Backtracking search for a k-hyperclique in a d-uniform hypergraph: k
/// vertices inducing all C(k, d) hyperedges (Section 8). For d >= 3 the
/// hyperclique conjecture says nothing beats this n^k-style enumeration —
/// in contrast to d = 2, where matrix multiplication helps.
class HypercliqueSearcher {
 public:
  /// `budget` (optional, not owned; must outlive the searcher) is polled
  /// once per examined candidate vertex. On a trip, Find returns nullopt
  /// without having exhausted the space and Count returns the count so far
  /// (a lower bound); status() distinguishes both from a completed run.
  HypercliqueSearcher(const graph::Hypergraph& h, int d,
                      util::Budget* budget = nullptr);

  /// Finds a k-hyperclique, or nullopt. A nullopt is "none exists" only
  /// when status() == kCompleted.
  std::optional<std::vector<int>> Find(int k);

  /// Counts all k-hypercliques (a lower bound when the budget tripped).
  std::uint64_t Count(int k);

  /// Candidate sets examined during the last call.
  std::uint64_t nodes_visited() const { return nodes_; }

  /// How the last Find/Count ended.
  util::RunStatus status() const { return status_; }

 private:
  bool Extend(int k, int next, std::vector<int>* current,
              std::uint64_t* count, bool count_all);
  bool ClosesAllEdges(const std::vector<int>& current, int v) const;

  const graph::Hypergraph& h_;
  int d_;
  std::vector<std::vector<int>> sorted_edges_;
  std::uint64_t nodes_ = 0;
  util::Budget* budget_ = nullptr;  ///< Not owned; may be null.
  /// True while unwinding out of a tripped search — distinguishes the abort
  /// unwind from a genuine witness (both make Extend return true).
  bool stopped_ = false;
  util::RunStatus status_ = util::RunStatus::kCompleted;
};

}  // namespace qc::finegrained

#endif  // QC_FINEGRAINED_HYPERCLIQUE_H_
