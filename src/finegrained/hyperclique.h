#ifndef QC_FINEGRAINED_HYPERCLIQUE_H_
#define QC_FINEGRAINED_HYPERCLIQUE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/hypergraph.h"

namespace qc::finegrained {

/// Backtracking search for a k-hyperclique in a d-uniform hypergraph: k
/// vertices inducing all C(k, d) hyperedges (Section 8). For d >= 3 the
/// hyperclique conjecture says nothing beats this n^k-style enumeration —
/// in contrast to d = 2, where matrix multiplication helps.
class HypercliqueSearcher {
 public:
  HypercliqueSearcher(const graph::Hypergraph& h, int d);

  /// Finds a k-hyperclique, or nullopt.
  std::optional<std::vector<int>> Find(int k);

  /// Counts all k-hypercliques.
  std::uint64_t Count(int k);

  /// Candidate sets examined during the last call.
  std::uint64_t nodes_visited() const { return nodes_; }

 private:
  bool Extend(int k, int next, std::vector<int>* current,
              std::uint64_t* count, bool count_all);
  bool ClosesAllEdges(const std::vector<int>& current, int v) const;

  const graph::Hypergraph& h_;
  int d_;
  std::vector<std::vector<int>> sorted_edges_;
  std::uint64_t nodes_ = 0;
};

}  // namespace qc::finegrained

#endif  // QC_FINEGRAINED_HYPERCLIQUE_H_
