#include "sat/walksat.h"

#include <algorithm>
#include <climits>

namespace qc::sat {

namespace {

/// Occurrence-indexed state for O(clause-size) flip evaluation.
struct WalkState {
  const CnfFormula& f;
  std::vector<bool> assignment;
  std::vector<int> true_count;        ///< Satisfied literals per clause.
  std::vector<int> unsat;             ///< Ids of unsatisfied clauses.
  std::vector<int> unsat_pos;         ///< Position in `unsat` per clause.
  std::vector<std::vector<int>> occ;  ///< Clauses containing each variable.

  explicit WalkState(const CnfFormula& formula) : f(formula) {
    occ.resize(f.num_vars + 1);
    for (int ci = 0; ci < static_cast<int>(f.clauses.size()); ++ci) {
      for (Lit l : f.clauses[ci]) {
        occ[l > 0 ? l : -l].push_back(ci);
      }
    }
  }

  void Reset(util::Rng* rng) {
    assignment.assign(f.num_vars, false);
    for (int v = 0; v < f.num_vars; ++v) assignment[v] = rng->NextBool(0.5);
    true_count.assign(f.clauses.size(), 0);
    unsat.clear();
    unsat_pos.assign(f.clauses.size(), -1);
    for (int ci = 0; ci < static_cast<int>(f.clauses.size()); ++ci) {
      for (Lit l : f.clauses[ci]) {
        if (LitTrue(l)) ++true_count[ci];
      }
      if (true_count[ci] == 0) {
        unsat_pos[ci] = static_cast<int>(unsat.size());
        unsat.push_back(ci);
      }
    }
  }

  bool LitTrue(Lit l) const {
    int v = l > 0 ? l : -l;
    return assignment[v - 1] == (l > 0);
  }

  /// Number of currently-satisfied clauses that flipping `var` would break.
  int BreakCount(int var) const {
    int broken = 0;
    for (int ci : occ[var]) {
      if (true_count[ci] != 1) continue;
      // The single satisfying literal must be var's.
      for (Lit l : f.clauses[ci]) {
        int v = l > 0 ? l : -l;
        if (v == var && LitTrue(l)) {
          ++broken;
          break;
        }
      }
    }
    return broken;
  }

  void Flip(int var) {
    assignment[var - 1] = !assignment[var - 1];
    for (int ci : occ[var]) {
      int delta = 0;
      for (Lit l : f.clauses[ci]) {
        int v = l > 0 ? l : -l;
        if (v == var) delta += LitTrue(l) ? 1 : -1;
      }
      int before = true_count[ci];
      true_count[ci] += delta;
      if (before == 0 && true_count[ci] > 0) {
        // Remove from unsat list (swap with last).
        int pos = unsat_pos[ci];
        int last = unsat.back();
        unsat[pos] = last;
        unsat_pos[last] = pos;
        unsat.pop_back();
        unsat_pos[ci] = -1;
      } else if (before > 0 && true_count[ci] == 0) {
        unsat_pos[ci] = static_cast<int>(unsat.size());
        unsat.push_back(ci);
      }
    }
  }
};

}  // namespace

SatResult SolveWalkSat(const CnfFormula& f, util::Rng* rng,
                       const WalkSatOptions& options) {
  SatResult result;
  for (const auto& c : f.clauses) {
    if (c.empty()) return result;  // Trivially unsatisfiable.
  }
  WalkState state(f);
  for (int restart = 0; restart < options.restarts; ++restart) {
    state.Reset(rng);
    for (std::uint64_t flip = 0; flip < options.max_flips; ++flip) {
      if (state.unsat.empty()) {
        result.satisfiable = true;
        result.assignment = state.assignment;
        result.decisions = flip;
        return result;
      }
      int ci = state.unsat[rng->NextBounded(state.unsat.size())];
      const auto& clause = f.clauses[ci];
      int var;
      if (rng->NextBool(options.noise)) {
        Lit l = clause[rng->NextBounded(clause.size())];
        var = l > 0 ? l : -l;
      } else {
        var = -1;
        int best_break = INT_MAX;
        for (Lit l : clause) {
          int v = l > 0 ? l : -l;
          int b = state.BreakCount(v);
          if (b < best_break) {
            best_break = b;
            var = v;
          }
        }
      }
      state.Flip(var);
      ++result.propagations;
    }
  }
  return result;
}

}  // namespace qc::sat
