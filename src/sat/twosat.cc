#include "sat/twosat.h"

#include <algorithm>
#include <cstdlib>

namespace qc::sat {

namespace {

/// Iterative Tarjan SCC on the implication graph. Node encoding: variable v
/// (1-based) true -> 2(v-1), false -> 2(v-1)+1.
class TwoSatGraph {
 public:
  explicit TwoSatGraph(int num_vars)
      : n_(2 * num_vars), adj_(n_) {}

  static int NodeOf(Lit l) {
    int v = l > 0 ? l : -l;
    return 2 * (v - 1) + (l > 0 ? 0 : 1);
  }
  static int Negation(int node) { return node ^ 1; }

  /// clause (a or b) adds implications !a -> b and !b -> a.
  void AddClause(Lit a, Lit b) {
    adj_[Negation(NodeOf(a))].push_back(NodeOf(b));
    adj_[Negation(NodeOf(b))].push_back(NodeOf(a));
  }

  /// Computes SCC ids in reverse topological order of components.
  std::vector<int> SccIds() {
    std::vector<int> index(n_, -1), low(n_, 0), comp(n_, -1);
    std::vector<bool> on_stack(n_, false);
    std::vector<int> stack;
    int next_index = 0, next_comp = 0;
    // Explicit DFS stack: (node, child cursor).
    std::vector<std::pair<int, std::size_t>> frames;
    for (int s = 0; s < n_; ++s) {
      if (index[s] >= 0) continue;
      frames.emplace_back(s, 0);
      while (!frames.empty()) {
        auto& [v, cursor] = frames.back();
        if (cursor == 0) {
          index[v] = low[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
        }
        if (cursor < adj_[v].size()) {
          int w = adj_[v][cursor++];
          if (index[w] < 0) {
            frames.emplace_back(w, 0);
          } else if (on_stack[w]) {
            low[v] = std::min(low[v], index[w]);
          }
        } else {
          if (low[v] == index[v]) {
            while (true) {
              int w = stack.back();
              stack.pop_back();
              on_stack[w] = false;
              comp[w] = next_comp;
              if (w == v) break;
            }
            ++next_comp;
          }
          int finished = v;
          frames.pop_back();
          if (!frames.empty()) {
            int parent = frames.back().first;
            low[parent] = std::min(low[parent], low[finished]);
          }
        }
      }
    }
    return comp;
  }

 private:
  int n_;
  std::vector<std::vector<int>> adj_;
};

}  // namespace

SatResult SolveTwoSat(const CnfFormula& f) {
  TwoSatGraph g(f.num_vars);
  for (const auto& clause : f.clauses) {
    if (clause.size() == 1) {
      g.AddClause(clause[0], clause[0]);
    } else if (clause.size() == 2) {
      g.AddClause(clause[0], clause[1]);
    } else {
      std::abort();  // Not a 2SAT instance.
    }
  }
  std::vector<int> comp = g.SccIds();
  SatResult r;
  r.assignment.resize(f.num_vars);
  for (int v = 1; v <= f.num_vars; ++v) {
    int t = TwoSatGraph::NodeOf(v), fnode = TwoSatGraph::NodeOf(-v);
    if (comp[t] == comp[fnode]) return r;  // Unsatisfiable.
    // Tarjan yields reverse topological order: pick the later component.
    r.assignment[v - 1] = comp[t] < comp[fnode];
  }
  r.satisfiable = true;
  return r;
}

}  // namespace qc::sat
