#include "sat/generators.h"

namespace qc::sat {

namespace {

std::vector<Lit> RandomClause(int num_vars, int k, util::Rng* rng) {
  std::vector<int> vars = rng->Sample(num_vars, k);
  std::vector<Lit> clause(k);
  for (int i = 0; i < k; ++i) {
    clause[i] = (vars[i] + 1) * (rng->NextBool(0.5) ? 1 : -1);
  }
  return clause;
}

}  // namespace

CnfFormula RandomKSat(int num_vars, int num_clauses, int k, util::Rng* rng) {
  CnfFormula f;
  f.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    f.AddClause(RandomClause(num_vars, k, rng));
  }
  return f;
}

CnfFormula PlantedKSat(int num_vars, int num_clauses, int k, util::Rng* rng,
                       std::vector<bool>* hidden) {
  std::vector<bool> model(num_vars);
  for (int v = 0; v < num_vars; ++v) model[v] = rng->NextBool(0.5);
  CnfFormula f;
  f.num_vars = num_vars;
  while (static_cast<int>(f.clauses.size()) < num_clauses) {
    std::vector<Lit> clause = RandomClause(num_vars, k, rng);
    bool sat = false;
    for (Lit l : clause) {
      int v = l > 0 ? l : -l;
      if ((l > 0) == model[v - 1]) {
        sat = true;
        break;
      }
    }
    if (sat) f.AddClause(std::move(clause));
  }
  if (hidden != nullptr) *hidden = model;
  return f;
}

CnfFormula RandomTwoSat(int num_vars, int num_clauses, util::Rng* rng) {
  return RandomKSat(num_vars, num_clauses, 2, rng);
}

CnfFormula RandomHorn(int num_vars, int num_clauses, int body,
                      double head_prob, util::Rng* rng) {
  CnfFormula f;
  f.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    int want_head = rng->NextBool(head_prob) ? 1 : 0;
    std::vector<int> vars = rng->Sample(num_vars, body + want_head);
    std::vector<Lit> clause;
    for (int j = 0; j < body; ++j) clause.push_back(-(vars[j] + 1));
    if (want_head) clause.push_back(vars[body] + 1);
    f.AddClause(std::move(clause));
  }
  return f;
}

XorSystem RandomXorSystem(int num_vars, int num_equations, int width,
                          util::Rng* rng) {
  XorSystem s;
  s.num_vars = num_vars;
  for (int i = 0; i < num_equations; ++i) {
    s.AddEquation(rng->Sample(num_vars, width), rng->NextBool(0.5));
  }
  return s;
}

}  // namespace qc::sat
