#ifndef QC_SAT_GENERATORS_H_
#define QC_SAT_GENERATORS_H_

#include "sat/cnf.h"
#include "sat/xorsat.h"
#include "util/rng.h"

namespace qc::sat {

/// Uniform random k-SAT: m clauses, each with k distinct variables and
/// random polarities. The E11 experiment sweeps m/n across the 3SAT
/// satisfiability threshold (~4.27).
CnfFormula RandomKSat(int num_vars, int num_clauses, int k, util::Rng* rng);

/// Random k-SAT guaranteed satisfiable: a hidden assignment is drawn and
/// every clause is re-rolled until it satisfies it.
CnfFormula PlantedKSat(int num_vars, int num_clauses, int k, util::Rng* rng,
                       std::vector<bool>* hidden = nullptr);

/// Random 2SAT at given clause count.
CnfFormula RandomTwoSat(int num_vars, int num_clauses, util::Rng* rng);

/// Random Horn formula: each clause has `body` negative literals and, with
/// probability `head_prob`, one positive head.
CnfFormula RandomHorn(int num_vars, int num_clauses, int body,
                      double head_prob, util::Rng* rng);

/// Random XOR system with `width` variables per equation.
XorSystem RandomXorSystem(int num_vars, int num_equations, int width,
                          util::Rng* rng);

}  // namespace qc::sat

#endif  // QC_SAT_GENERATORS_H_
