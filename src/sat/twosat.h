#ifndef QC_SAT_TWOSAT_H_
#define QC_SAT_TWOSAT_H_

#include "sat/cnf.h"

namespace qc::sat {

/// Linear-time 2SAT via strongly connected components of the implication
/// graph (Aspvall–Plass–Tarjan). This is the polynomial-time case the paper
/// contrasts with 3SAT in Section 4 ("with |D|=2 and binary constraints the
/// problem becomes the polynomial-time solvable 2SAT").
///
/// Every clause must have one or two literals; aborts otherwise.
SatResult SolveTwoSat(const CnfFormula& f);

}  // namespace qc::sat

#endif  // QC_SAT_TWOSAT_H_
