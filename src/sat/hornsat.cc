#include "sat/hornsat.h"

#include <cstdlib>

namespace qc::sat {

SatResult SolveHornSat(const CnfFormula& f) {
  if (!f.IsHorn()) std::abort();
  SatResult r;
  std::vector<bool> value(f.num_vars + 1, false);  // Minimal model candidate.
  // Saturate: a clause whose negative literals are all true forces its
  // positive literal (or fails if it has none).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& clause : f.clauses) {
      Lit head = 0;
      bool body_satisfied = true;  // All negated vars currently true?
      bool clause_satisfied = false;
      for (Lit l : clause) {
        int v = l > 0 ? l : -l;
        if (l > 0) {
          head = l;
          if (value[v]) clause_satisfied = true;
        } else if (!value[v]) {
          body_satisfied = false;
        }
      }
      if (clause_satisfied || !body_satisfied) continue;
      if (head == 0) return r;  // All-negative clause violated: UNSAT.
      value[head] = true;
      ++r.propagations;
      changed = true;
    }
  }
  r.satisfiable = true;
  r.assignment.resize(f.num_vars);
  for (int v = 1; v <= f.num_vars; ++v) r.assignment[v - 1] = value[v];
  return r;
}

}  // namespace qc::sat
