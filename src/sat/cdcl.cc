#include "sat/cdcl.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "util/trace.h"

namespace qc::sat {

namespace {

/// Internal literal encoding: variable v (0-based) positive -> 2v,
/// negative -> 2v+1.
int Enc(Lit l) {
  int v = l > 0 ? l : -l;
  return 2 * (v - 1) + (l > 0 ? 0 : 1);
}
int Neg(int lit) { return lit ^ 1; }
int VarOf(int lit) { return lit >> 1; }
bool SignOf(int lit) { return lit & 1; }  // true = negated.

/// i-th element of the Luby sequence (1, 1, 2, 1, 1, 2, 4, ...).
std::uint64_t Luby(std::uint64_t i) {
  std::uint64_t k = 1;
  while ((1ULL << k) - 1 < i + 1) ++k;
  while ((1ULL << k) - 1 != i + 1) {
    --k;
    i -= (1ULL << k) - 1;
  }
  return 1ULL << (k - 1);
}

class Engine {
 public:
  Engine(const CnfFormula& f, const CdclSolver::Options& options,
         CdclSolver::Stats* stats)
      : n_(f.num_vars), options_(options), stats_(stats) {
    value_.assign(n_, -1);
    level_.assign(n_, 0);
    reason_.assign(n_, -1);
    activity_.assign(n_, 0.0);
    phase_.assign(n_, 0);
    seen_.assign(n_, 0);
    watches_.assign(2 * n_, {});
    ok_ = true;
    for (const auto& clause : f.clauses) {
      std::vector<int> lits;
      lits.reserve(clause.size());
      bool tautology = false;
      for (Lit l : clause) {
        int e = Enc(l);
        if (std::find(lits.begin(), lits.end(), e) != lits.end()) continue;
        if (std::find(lits.begin(), lits.end(), Neg(e)) != lits.end()) {
          tautology = true;
          break;
        }
        lits.push_back(e);
      }
      if (tautology) continue;
      if (lits.empty()) {
        ok_ = false;
        return;
      }
      if (lits.size() == 1) {
        if (!EnqueueRoot(lits[0])) {
          ok_ = false;
          return;
        }
        continue;
      }
      AddClause(std::move(lits));
    }
  }

  /// Returns +1 SAT, 0 UNSAT, -1 aborted.
  int Run() {
    if (!ok_) return 0;
    // One span per Luby restart segment (the solver is serial, so the
    // segment count is deterministic); re-emplaced at each restart.
    static const std::uint32_t kSegmentSpan =
        util::Trace::InternName("sat.cdcl.restart_segment");
    std::optional<util::ScopedSpan> segment_span;
    segment_span.emplace(kSegmentSpan);
    std::uint64_t restart_budget = options_.luby_unit * Luby(0);
    std::uint64_t conflicts_at_restart = 0;
    while (true) {
      int confl = Propagate();
      if (confl >= 0) {
        ++stats_->conflicts;
        if (CurrentLevel() == 0) return 0;
        std::vector<int> learned;
        int backjump = Analyze(confl, &learned);
        Backtrack(backjump);
        if (learned.size() == 1) {
          if (!EnqueueRoot(learned[0])) return 0;
        } else {
          int id = AddClause(std::move(learned));
          ++stats_->learned_clauses;
          Enqueue(clauses_[id][0], id);
        }
        DecayActivities();
        if (options_.max_conflicts != 0 &&
            stats_->conflicts >= options_.max_conflicts) {
          return -1;
        }
        if (options_.budget != nullptr && options_.budget->Poll()) return -1;
        if (stats_->conflicts - conflicts_at_restart >= restart_budget) {
          ++stats_->restarts;
          conflicts_at_restart = stats_->conflicts;
          restart_budget = options_.luby_unit * Luby(stats_->restarts);
          Backtrack(0);
          segment_span.emplace(kSegmentSpan);
        }
      } else {
        // Safe point per decision as well: satisfiable runs can make long
        // conflict-free progress and must still honour the budget.
        if (options_.budget != nullptr && options_.budget->Poll()) return -1;
        int var = PickVariable();
        if (var < 0) return 1;  // All assigned: model found.
        ++stats_->decisions;
        trail_lim_.push_back(static_cast<int>(trail_.size()));
        Enqueue(2 * var + (phase_[var] ? 1 : 0), -1);
      }
    }
  }

  std::vector<bool> Model() const {
    std::vector<bool> model(n_);
    for (int v = 0; v < n_; ++v) model[v] = value_[v] == 1;
    return model;
  }

 private:
  int CurrentLevel() const { return static_cast<int>(trail_lim_.size()); }

  bool IsTrue(int lit) const {
    signed char v = value_[VarOf(lit)];
    return v >= 0 && (v == 1) == !SignOf(lit);
  }
  bool IsFalse(int lit) const {
    signed char v = value_[VarOf(lit)];
    return v >= 0 && (v == 1) == SignOf(lit);
  }
  bool IsUnset(int lit) const { return value_[VarOf(lit)] < 0; }

  int AddClause(std::vector<int> lits) {
    int id = static_cast<int>(clauses_.size());
    watches_[Neg(lits[0])].push_back(id);
    watches_[Neg(lits[1])].push_back(id);
    clauses_.push_back(std::move(lits));
    return id;
  }

  void Enqueue(int lit, int reason) {
    int var = VarOf(lit);
    value_[var] = SignOf(lit) ? 0 : 1;
    phase_[var] = SignOf(lit) ? 1 : 0;
    level_[var] = CurrentLevel();
    reason_[var] = reason;
    trail_.push_back(lit);
    ++stats_->propagations;
  }

  bool EnqueueRoot(int lit) {
    if (IsFalse(lit)) return false;
    if (IsUnset(lit)) Enqueue(lit, -1);
    return true;
  }

  /// Watch-based unit propagation; returns a conflicting clause id or -1.
  int Propagate() {
    while (head_ < trail_.size()) {
      int lit = trail_[head_++];       // lit became true...
      int falsified = Neg(lit);        // ...so Neg(lit) became false.
      auto& watch_list = watches_[lit];
      // Clauses watching `falsified` are stored under watches_[lit]
      // (indexed by the negation so this lookup is one array access).
      std::size_t keep = 0;
      for (std::size_t i = 0; i < watch_list.size(); ++i) {
        int id = watch_list[i];
        auto& c = clauses_[id];
        // Normalize: watched literals are c[0], c[1]; put the falsified
        // one at c[1].
        if (c[0] == falsified) std::swap(c[0], c[1]);
        if (IsTrue(c[0])) {
          watch_list[keep++] = id;
          continue;
        }
        // Find a replacement watch.
        bool moved = false;
        for (std::size_t j = 2; j < c.size(); ++j) {
          if (!IsFalse(c[j])) {
            std::swap(c[1], c[j]);
            watches_[Neg(c[1])].push_back(id);
            moved = true;
            break;
          }
        }
        if (moved) continue;  // Dropped from this watch list.
        watch_list[keep++] = id;
        if (IsFalse(c[0])) {
          // Conflict: restore the untouched tail of the list.
          for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
            watch_list[keep++] = watch_list[j];
          }
          watch_list.resize(keep);
          head_ = trail_.size();
          return id;
        }
        Enqueue(c[0], id);
      }
      watch_list.resize(keep);
    }
    return -1;
  }

  void BumpActivity(int var) {
    activity_[var] += activity_inc_;
    if (activity_[var] > 1e100) {
      for (auto& a : activity_) a *= 1e-100;
      activity_inc_ *= 1e-100;
    }
  }

  void DecayActivities() { activity_inc_ /= options_.activity_decay; }

  /// First-UIP conflict analysis. Fills *learned (asserting literal first)
  /// and returns the backjump level.
  int Analyze(int confl, std::vector<int>* learned) {
    learned->clear();
    learned->push_back(-1);  // Placeholder for the asserting literal.
    int counter = 0;
    int index = static_cast<int>(trail_.size()) - 1;
    int lit = -1;
    int clause = confl;
    while (true) {
      for (int q : clauses_[clause]) {
        if (q == lit) continue;
        int var = VarOf(q);
        if (!seen_[var] && level_[var] > 0) {
          seen_[var] = 1;
          BumpActivity(var);
          if (level_[var] == CurrentLevel()) {
            ++counter;
          } else {
            learned->push_back(q);
          }
        }
      }
      // Walk the trail back to the next marked literal of this level.
      while (!seen_[VarOf(trail_[index])]) --index;
      lit = trail_[index];
      seen_[VarOf(lit)] = 0;
      --counter;
      if (counter == 0) break;
      clause = reason_[VarOf(lit)];
      --index;
    }
    (*learned)[0] = Neg(lit);
    // Backjump level: highest level among the other literals.
    int backjump = 0;
    std::size_t second = 1;
    for (std::size_t i = 1; i < learned->size(); ++i) {
      int lvl = level_[VarOf((*learned)[i])];
      if (lvl > backjump) {
        backjump = lvl;
        second = i;
      }
    }
    if (learned->size() > 1) std::swap((*learned)[1], (*learned)[second]);
    for (std::size_t i = 1; i < learned->size(); ++i) {
      seen_[VarOf((*learned)[i])] = 0;
    }
    return backjump;
  }

  void Backtrack(int target_level) {
    if (CurrentLevel() <= target_level) return;
    int boundary = trail_lim_[target_level];
    for (int i = static_cast<int>(trail_.size()) - 1; i >= boundary; --i) {
      value_[VarOf(trail_[i])] = -1;
      reason_[VarOf(trail_[i])] = -1;
    }
    trail_.resize(boundary);
    trail_lim_.resize(target_level);
    head_ = trail_.size();
  }

  int PickVariable() const {
    int best = -1;
    for (int v = 0; v < n_; ++v) {
      if (value_[v] < 0 && (best < 0 || activity_[v] > activity_[best])) {
        best = v;
      }
    }
    return best;
  }

  int n_;
  const CdclSolver::Options& options_;
  CdclSolver::Stats* stats_;
  bool ok_;
  std::vector<std::vector<int>> clauses_;
  std::vector<std::vector<int>> watches_;  ///< Indexed by Neg(watched lit).
  std::vector<signed char> value_, phase_, seen_;
  std::vector<int> level_, reason_;
  std::vector<int> trail_, trail_lim_;
  std::size_t head_ = 0;
  double activity_inc_ = 1.0;
  std::vector<double> activity_;
};

}  // namespace

CdclSolver::CdclSolver() : options_() {}

SatResult CdclSolver::Solve(const CnfFormula& f) {
  stats_ = Stats();
  aborted_ = false;
  SatResult result;
  Engine engine(f, options_, &stats_);
  int outcome = engine.Run();
  result.decisions = stats_.decisions;
  result.propagations = stats_.propagations;
  result.conflicts = stats_.conflicts;
  if (outcome < 0) {
    aborted_ = true;
    result.status = options_.budget != nullptr && options_.budget->Stopped()
                        ? options_.budget->status()
                        : util::RunStatus::kBudgetExhausted;
    return result;
  }
  if (outcome == 1) {
    result.satisfiable = true;
    result.assignment = engine.Model();
  }
  return result;
}

}  // namespace qc::sat
