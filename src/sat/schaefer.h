#ifndef QC_SAT_SCHAEFER_H_
#define QC_SAT_SCHAEFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sat/cnf.h"

namespace qc::sat {

/// A Boolean relation of small arity, stored extensionally as a bitmap over
/// the 2^arity tuples. Tuple encoding: bit i of the tuple index is the value
/// of the i-th position of the constraint scope.
class BoolRelation {
 public:
  /// Empty relation of the given arity (1 <= arity <= 16).
  explicit BoolRelation(int arity);

  static BoolRelation FromTuples(int arity,
                                 const std::vector<std::uint32_t>& tuples);

  int arity() const { return arity_; }
  int size() const;  ///< Number of allowed tuples.
  bool IsEmpty() const { return size() == 0; }

  void Allow(std::uint32_t tuple) { allowed_[tuple] = true; }
  bool Allows(std::uint32_t tuple) const { return allowed_[tuple]; }

  std::vector<std::uint32_t> Tuples() const;

  // --- The six closure properties of Schaefer's Dichotomy Theorem. ---

  /// Contains the all-zero tuple.
  bool IsZeroValid() const { return allowed_[0]; }
  /// Contains the all-one tuple.
  bool IsOneValid() const { return allowed_[(1u << arity_) - 1]; }
  /// Closed under bitwise AND (definable by Horn clauses).
  bool IsHornClosed() const;
  /// Closed under bitwise OR (definable by dual-Horn clauses).
  bool IsDualHornClosed() const;
  /// Closed under ternary XOR x^y^z (definable by linear equations).
  bool IsAffineClosed() const;
  /// Closed under ternary majority (definable by 2-clauses).
  bool IsBijunctiveClosed() const;

  bool operator==(const BoolRelation& other) const {
    return arity_ == other.arity_ && allowed_ == other.allowed_;
  }

 private:
  int arity_;
  std::vector<bool> allowed_;
};

/// Which Schaefer classes a *set* of relations falls into (each flag is the
/// AND over all relations). CSP(R) is polynomial iff any flag holds;
/// otherwise Schaefer's theorem says it is NP-hard.
struct SchaeferVerdict {
  bool zero_valid = false;
  bool one_valid = false;
  bool horn = false;
  bool dual_horn = false;
  bool affine = false;
  bool bijunctive = false;

  bool Tractable() const {
    return zero_valid || one_valid || horn || dual_horn || affine ||
           bijunctive;
  }
  std::string ToString() const;
};

SchaeferVerdict ClassifyRelations(const std::vector<BoolRelation>& relations);

/// A Boolean CSP instance with extensional constraints (the CSP(R) world of
/// Section 4, domain size 2).
struct BoolCsp {
  int num_vars = 0;
  struct Constraint {
    std::vector<int> scope;  ///< 0-based variables; scope.size() == arity.
    BoolRelation relation;
  };
  std::vector<Constraint> constraints;

  void AddConstraint(std::vector<int> scope, BoolRelation relation);

  bool Evaluate(const std::vector<bool>& assignment) const;

  /// CNF encoding: one clause forbidding each disallowed tuple.
  CnfFormula ToCnf() const;

  /// Verdict over this instance's constraint relations.
  SchaeferVerdict Classify() const;
};

/// How SolveSchaefer discharged the instance.
enum class SchaeferMethod {
  kZeroValid,
  kOneValid,
  kBijunctive,  // 2SAT.
  kHorn,
  kDualHorn,
  kAffine,      // Gaussian elimination.
  kGeneral,     // NP-hard side: fell back to DPLL.
};

std::string ToString(SchaeferMethod method);

struct SchaeferSolveResult {
  bool satisfiable = false;
  std::vector<bool> assignment;
  SchaeferMethod method = SchaeferMethod::kGeneral;
};

/// The dichotomy dispatcher: classifies the instance and runs the matching
/// polynomial algorithm (trivial / 2SAT / Horn / dual-Horn / Gaussian);
/// for instances outside every tractable class it falls back to DPLL.
SchaeferSolveResult SolveSchaefer(const BoolCsp& csp);

// --- Named relations for tests, examples, and generators. ---

/// The relation of a k-clause with the given polarities: allowed tuples are
/// those satisfying OR_i (x_i == polarity_i).
BoolRelation ClauseRelation(const std::vector<bool>& polarities);

/// x1 + ... + xr = rhs (mod 2).
BoolRelation ParityRelation(int arity, bool rhs);

/// The 1-in-3 relation {001, 010, 100} (NP-hard side of the dichotomy).
BoolRelation OneInThreeRelation();

/// Not-all-equal on 3 variables (NP-hard side).
BoolRelation NaeThreeRelation();

/// x -> y, i.e. {00, 01, 11}.
BoolRelation ImplicationRelation();

}  // namespace qc::sat

#endif  // QC_SAT_SCHAEFER_H_
