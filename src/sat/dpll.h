#ifndef QC_SAT_DPLL_H_
#define QC_SAT_DPLL_H_

#include "sat/cnf.h"

namespace qc::sat {

/// DPLL with unit propagation, pure-literal elimination, and a MOMS-style
/// branching heuristic (most occurrences in minimum-size clauses).
///
/// This is the project's "general-purpose exponential SAT solver": the
/// object whose 2^{Theta(n)} scaling the ETH experiments (E10/E11) measure.
class DpllSolver {
 public:
  struct Options {
    bool use_pure_literal = true;
    /// Stop after this many decisions (0 = unlimited); when hit, the result
    /// is reported unsatisfiable with `aborted` set.
    std::uint64_t max_decisions = 0;
    /// Optional cooperative budget, polled once per search node. On a trip
    /// the result is Unknown: satisfiable=false with `status` set.
    util::Budget* budget = nullptr;
  };

  DpllSolver();
  explicit DpllSolver(Options options) : options_(options) {}

  /// Solves f. The returned SatResult carries decision/propagation counts.
  SatResult Solve(const CnfFormula& f);

  /// True if the last Solve hit the decision limit.
  bool aborted() const { return aborted_; }

 private:
  // Assignment values: 0 = false, 1 = true, -1 = unset (indexed by var).
  bool Search(const CnfFormula& f, std::vector<signed char>* value,
              SatResult* result);
  bool UnitPropagate(const CnfFormula& f, std::vector<signed char>* value,
                     std::vector<int>* trail, SatResult* result);
  int PickBranchVariable(const CnfFormula& f,
                         const std::vector<signed char>& value) const;

  Options options_;
  bool aborted_ = false;
};

/// Convenience wrapper.
SatResult SolveDpll(const CnfFormula& f);

}  // namespace qc::sat

#endif  // QC_SAT_DPLL_H_
