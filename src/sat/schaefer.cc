#include "sat/schaefer.h"

#include <algorithm>
#include <cstdlib>

#include "sat/dpll.h"
#include "sat/hornsat.h"
#include "sat/twosat.h"
#include "sat/xorsat.h"

namespace qc::sat {

BoolRelation::BoolRelation(int arity) : arity_(arity) {
  if (arity < 1 || arity > 16) std::abort();
  allowed_.assign(1u << arity, false);
}

BoolRelation BoolRelation::FromTuples(
    int arity, const std::vector<std::uint32_t>& tuples) {
  BoolRelation r(arity);
  for (std::uint32_t t : tuples) r.Allow(t);
  return r;
}

int BoolRelation::size() const {
  return static_cast<int>(std::count(allowed_.begin(), allowed_.end(), true));
}

std::vector<std::uint32_t> BoolRelation::Tuples() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t t = 0; t < allowed_.size(); ++t) {
    if (allowed_[t]) out.push_back(t);
  }
  return out;
}

bool BoolRelation::IsHornClosed() const {
  std::vector<std::uint32_t> tuples = Tuples();
  for (std::uint32_t a : tuples) {
    for (std::uint32_t b : tuples) {
      if (!allowed_[a & b]) return false;
    }
  }
  return true;
}

bool BoolRelation::IsDualHornClosed() const {
  std::vector<std::uint32_t> tuples = Tuples();
  for (std::uint32_t a : tuples) {
    for (std::uint32_t b : tuples) {
      if (!allowed_[a | b]) return false;
    }
  }
  return true;
}

bool BoolRelation::IsAffineClosed() const {
  std::vector<std::uint32_t> tuples = Tuples();
  for (std::uint32_t a : tuples) {
    for (std::uint32_t b : tuples) {
      for (std::uint32_t c : tuples) {
        if (!allowed_[a ^ b ^ c]) return false;
      }
    }
  }
  return true;
}

bool BoolRelation::IsBijunctiveClosed() const {
  std::vector<std::uint32_t> tuples = Tuples();
  for (std::uint32_t a : tuples) {
    for (std::uint32_t b : tuples) {
      for (std::uint32_t c : tuples) {
        std::uint32_t maj = (a & b) | (a & c) | (b & c);
        if (!allowed_[maj]) return false;
      }
    }
  }
  return true;
}

SchaeferVerdict ClassifyRelations(const std::vector<BoolRelation>& relations) {
  SchaeferVerdict v;
  v.zero_valid = v.one_valid = v.horn = v.dual_horn = v.affine =
      v.bijunctive = true;
  for (const auto& r : relations) {
    v.zero_valid &= r.IsZeroValid();
    v.one_valid &= r.IsOneValid();
    v.horn &= r.IsHornClosed();
    v.dual_horn &= r.IsDualHornClosed();
    v.affine &= r.IsAffineClosed();
    v.bijunctive &= r.IsBijunctiveClosed();
  }
  return v;
}

std::string SchaeferVerdict::ToString() const {
  std::string out;
  auto add = [&out](bool flag, const char* name) {
    if (flag) {
      if (!out.empty()) out += ",";
      out += name;
    }
  };
  add(zero_valid, "0-valid");
  add(one_valid, "1-valid");
  add(horn, "horn");
  add(dual_horn, "dual-horn");
  add(affine, "affine");
  add(bijunctive, "bijunctive");
  if (out.empty()) out = "np-hard";
  return out;
}

void BoolCsp::AddConstraint(std::vector<int> scope, BoolRelation relation) {
  if (static_cast<int>(scope.size()) != relation.arity()) std::abort();
  constraints.push_back(Constraint{std::move(scope), std::move(relation)});
}

bool BoolCsp::Evaluate(const std::vector<bool>& assignment) const {
  for (const auto& c : constraints) {
    std::uint32_t tuple = 0;
    for (std::size_t i = 0; i < c.scope.size(); ++i) {
      if (assignment[c.scope[i]]) tuple |= 1u << i;
    }
    if (!c.relation.Allows(tuple)) return false;
  }
  return true;
}

CnfFormula BoolCsp::ToCnf() const {
  CnfFormula f;
  f.num_vars = num_vars;
  for (const auto& c : constraints) {
    const int r = c.relation.arity();
    for (std::uint32_t t = 0; t < (1u << r); ++t) {
      if (c.relation.Allows(t)) continue;
      // Forbid tuple t: clause with each scope literal negated wrt t.
      std::vector<Lit> clause(r);
      for (int i = 0; i < r; ++i) {
        int var = c.scope[i] + 1;
        clause[i] = ((t >> i) & 1u) ? -var : var;
      }
      f.AddClause(std::move(clause));
    }
  }
  return f;
}

SchaeferVerdict BoolCsp::Classify() const {
  std::vector<BoolRelation> rels;
  rels.reserve(constraints.size());
  for (const auto& c : constraints) rels.push_back(c.relation);
  return ClassifyRelations(rels);
}

namespace {

/// True if every allowed tuple of `rel` satisfies the clause given as
/// (position, polarity) pairs.
bool ClauseImplied(const BoolRelation& rel,
                   const std::vector<std::pair<int, bool>>& clause) {
  for (std::uint32_t t : rel.Tuples()) {
    bool sat = false;
    for (auto [pos, polarity] : clause) {
      if (((t >> pos) & 1u) == static_cast<std::uint32_t>(polarity)) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

/// All implied clauses of size <= 2, as a CNF over the instance variables.
/// For a bijunctive-closed relation their conjunction defines it exactly.
void AppendImpliedTwoClauses(const BoolCsp::Constraint& c, CnfFormula* f) {
  const int r = c.relation.arity();
  for (int i = 0; i < r; ++i) {
    for (bool pi : {false, true}) {
      if (ClauseImplied(c.relation, {{i, pi}})) {
        f->AddClause({pi ? c.scope[i] + 1 : -(c.scope[i] + 1)});
      }
    }
  }
  for (int i = 0; i < r; ++i) {
    for (int j = i + 1; j < r; ++j) {
      for (bool pi : {false, true}) {
        for (bool pj : {false, true}) {
          if (ClauseImplied(c.relation, {{i, pi}, {j, pj}})) {
            f->AddClause({pi ? c.scope[i] + 1 : -(c.scope[i] + 1),
                          pj ? c.scope[j] + 1 : -(c.scope[j] + 1)});
          }
        }
      }
    }
  }
}

/// All implied Horn clauses (<=1 positive literal); for a Horn-closed
/// relation their conjunction defines it exactly. With `dual` the roles of
/// the polarities are swapped (<=1 negative literal).
void AppendImpliedHornClauses(const BoolCsp::Constraint& c, bool dual,
                              CnfFormula* f) {
  const int r = c.relation.arity();
  // N = set of "default-polarity" positions, plus at most one flipped head.
  for (std::uint32_t body = 0; body < (1u << r); ++body) {
    for (int head = -1; head < r; ++head) {
      if (head >= 0 && ((body >> head) & 1u)) continue;
      std::vector<std::pair<int, bool>> clause;
      for (int i = 0; i < r; ++i) {
        if ((body >> i) & 1u) clause.push_back({i, dual});
      }
      if (head >= 0) clause.push_back({head, !dual});
      if (clause.empty()) continue;
      if (!ClauseImplied(c.relation, clause)) continue;
      std::vector<Lit> lits;
      lits.reserve(clause.size());
      for (auto [pos, polarity] : clause) {
        lits.push_back(polarity ? c.scope[pos] + 1 : -(c.scope[pos] + 1));
      }
      f->AddClause(std::move(lits));
    }
  }
}

/// Extracts the affine hull of an affine-closed relation as XOR equations
/// over the instance variables: every (subset, parity) pair satisfied by all
/// allowed tuples.
void AppendAffineEquations(const BoolCsp::Constraint& c, XorSystem* system) {
  const int r = c.relation.arity();
  std::vector<std::uint32_t> tuples = c.relation.Tuples();
  for (std::uint32_t mask = 1; mask < (1u << r); ++mask) {
    bool first = true, parity = false, consistent = true;
    for (std::uint32_t t : tuples) {
      bool p = __builtin_popcount(t & mask) % 2 != 0;
      if (first) {
        parity = p;
        first = false;
      } else if (p != parity) {
        consistent = false;
        break;
      }
    }
    if (!consistent || first) continue;
    std::vector<int> vars;
    for (int i = 0; i < r; ++i) {
      if ((mask >> i) & 1u) vars.push_back(c.scope[i]);
    }
    system->AddEquation(std::move(vars), parity);
  }
}

SchaeferSolveResult TrivialResult(const BoolCsp& csp, bool value,
                                  SchaeferMethod method) {
  SchaeferSolveResult r;
  r.method = method;
  r.satisfiable = true;
  r.assignment.assign(csp.num_vars, value);
  return r;
}

}  // namespace

std::string ToString(SchaeferMethod method) {
  switch (method) {
    case SchaeferMethod::kZeroValid:
      return "0-valid";
    case SchaeferMethod::kOneValid:
      return "1-valid";
    case SchaeferMethod::kBijunctive:
      return "2sat";
    case SchaeferMethod::kHorn:
      return "horn";
    case SchaeferMethod::kDualHorn:
      return "dual-horn";
    case SchaeferMethod::kAffine:
      return "affine";
    case SchaeferMethod::kGeneral:
      return "dpll";
  }
  return "?";
}

SchaeferSolveResult SolveSchaefer(const BoolCsp& csp) {
  SchaeferSolveResult result;
  // An empty constraint relation makes the instance trivially unsat.
  for (const auto& c : csp.constraints) {
    if (c.relation.IsEmpty()) return result;
  }
  SchaeferVerdict verdict = csp.Classify();
  if (verdict.zero_valid) {
    return TrivialResult(csp, false, SchaeferMethod::kZeroValid);
  }
  if (verdict.one_valid) {
    return TrivialResult(csp, true, SchaeferMethod::kOneValid);
  }
  if (verdict.bijunctive) {
    CnfFormula f;
    f.num_vars = csp.num_vars;
    for (const auto& c : csp.constraints) AppendImpliedTwoClauses(c, &f);
    SatResult sat = SolveTwoSat(f);
    result.method = SchaeferMethod::kBijunctive;
    result.satisfiable = sat.satisfiable;
    result.assignment = std::move(sat.assignment);
    return result;
  }
  if (verdict.horn || verdict.dual_horn) {
    bool dual = !verdict.horn;
    CnfFormula f;
    f.num_vars = csp.num_vars;
    for (const auto& c : csp.constraints) {
      AppendImpliedHornClauses(c, dual, &f);
    }
    if (dual) {
      // Flip every literal: a dual-Horn formula becomes Horn.
      for (auto& clause : f.clauses) {
        for (Lit& l : clause) l = -l;
      }
    }
    SatResult sat = SolveHornSat(f);
    result.method = dual ? SchaeferMethod::kDualHorn : SchaeferMethod::kHorn;
    result.satisfiable = sat.satisfiable;
    if (sat.satisfiable) {
      result.assignment = std::move(sat.assignment);
      if (dual) {
        for (std::size_t i = 0; i < result.assignment.size(); ++i) {
          result.assignment[i] = !result.assignment[i];
        }
      }
    }
    return result;
  }
  if (verdict.affine) {
    XorSystem system;
    system.num_vars = csp.num_vars;
    for (const auto& c : csp.constraints) AppendAffineEquations(c, &system);
    XorResult xr = SolveXorSystem(system);
    result.method = SchaeferMethod::kAffine;
    result.satisfiable = xr.satisfiable;
    result.assignment = std::move(xr.assignment);
    return result;
  }
  // NP-hard side of the dichotomy: general search.
  SatResult sat = SolveDpll(csp.ToCnf());
  result.method = SchaeferMethod::kGeneral;
  result.satisfiable = sat.satisfiable;
  result.assignment = std::move(sat.assignment);
  return result;
}

BoolRelation ClauseRelation(const std::vector<bool>& polarities) {
  const int r = static_cast<int>(polarities.size());
  BoolRelation rel(r);
  for (std::uint32_t t = 0; t < (1u << r); ++t) {
    for (int i = 0; i < r; ++i) {
      if (((t >> i) & 1u) == static_cast<std::uint32_t>(polarities[i])) {
        rel.Allow(t);
        break;
      }
    }
  }
  return rel;
}

BoolRelation ParityRelation(int arity, bool rhs) {
  BoolRelation rel(arity);
  for (std::uint32_t t = 0; t < (1u << arity); ++t) {
    if ((__builtin_popcount(t) % 2 != 0) == rhs) rel.Allow(t);
  }
  return rel;
}

BoolRelation OneInThreeRelation() {
  return BoolRelation::FromTuples(3, {0b001, 0b010, 0b100});
}

BoolRelation NaeThreeRelation() {
  BoolRelation rel(3);
  for (std::uint32_t t = 1; t < 7; ++t) rel.Allow(t);
  return rel;
}

BoolRelation ImplicationRelation() {
  return BoolRelation::FromTuples(2, {0b00, 0b10, 0b11});
}

}  // namespace qc::sat
