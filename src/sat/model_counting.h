#ifndef QC_SAT_MODEL_COUNTING_H_
#define QC_SAT_MODEL_COUNTING_H_

#include "sat/cnf.h"

namespace qc::sat {

/// Exact #SAT by DPLL-style counting with unit propagation and connected-
/// component decomposition (disjoint variable components multiply). The
/// counting cousin of the solvers used in the ETH experiments; counting
/// CSP solutions is one of the problem variants Section 2.2 names.
///
/// Free variables (appearing in no active clause) contribute a factor of 2
/// each. Counts are exact for num_vars <= 63.
std::uint64_t CountModels(const CnfFormula& f);

}  // namespace qc::sat

#endif  // QC_SAT_MODEL_COUNTING_H_
