#include "sat/dpll.h"

#include <algorithm>
#include <climits>

namespace qc::sat {

namespace {

/// Clause status under a partial assignment.
struct ClauseState {
  bool satisfied = false;
  int unassigned = 0;
  Lit last_unassigned = 0;
};

ClauseState Inspect(const std::vector<Lit>& clause,
                    const std::vector<signed char>& value) {
  ClauseState s;
  for (Lit l : clause) {
    int v = l > 0 ? l : -l;
    signed char val = value[v];
    if (val < 0) {
      ++s.unassigned;
      s.last_unassigned = l;
    } else if ((l > 0) == (val == 1)) {
      s.satisfied = true;
      return s;
    }
  }
  return s;
}

}  // namespace

DpllSolver::DpllSolver() : options_() {}

bool DpllSolver::UnitPropagate(const CnfFormula& f,
                               std::vector<signed char>* value,
                               std::vector<int>* trail, SatResult* result) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& clause : f.clauses) {
      ClauseState s = Inspect(clause, *value);
      if (s.satisfied) continue;
      if (s.unassigned == 0) return false;  // Conflict.
      if (s.unassigned == 1) {
        Lit l = s.last_unassigned;
        int v = l > 0 ? l : -l;
        (*value)[v] = (l > 0) ? 1 : 0;
        trail->push_back(v);
        ++result->propagations;
        changed = true;
      }
    }
  }
  return true;
}

int DpllSolver::PickBranchVariable(
    const CnfFormula& f, const std::vector<signed char>& value) const {
  // MOMS: among the shortest non-satisfied clauses, pick the variable with
  // the most occurrences.
  int min_size = INT_MAX;
  for (const auto& clause : f.clauses) {
    ClauseState s = Inspect(clause, value);
    if (!s.satisfied && s.unassigned > 0 && s.unassigned < min_size) {
      min_size = s.unassigned;
    }
  }
  if (min_size == INT_MAX) {
    for (int v = 1; v <= f.num_vars; ++v) {
      if (value[v] < 0) return v;
    }
    return 0;
  }
  std::vector<int> score(f.num_vars + 1, 0);
  for (const auto& clause : f.clauses) {
    ClauseState s = Inspect(clause, value);
    if (s.satisfied || s.unassigned != min_size) continue;
    for (Lit l : clause) {
      int v = l > 0 ? l : -l;
      if (value[v] < 0) ++score[v];
    }
  }
  int best = 0, best_score = -1;
  for (int v = 1; v <= f.num_vars; ++v) {
    if (value[v] < 0 && score[v] > best_score) {
      best_score = score[v];
      best = v;
    }
  }
  return best;
}

bool DpllSolver::Search(const CnfFormula& f, std::vector<signed char>* value,
                        SatResult* result) {
  if (options_.max_decisions != 0 &&
      result->decisions >= options_.max_decisions) {
    aborted_ = true;
    return false;
  }
  if (options_.budget != nullptr && options_.budget->Poll()) {
    aborted_ = true;
    return false;
  }
  std::vector<int> trail;
  auto undo = [&]() {
    for (int v : trail) (*value)[v] = -1;
  };
  if (!UnitPropagate(f, value, &trail, result)) {
    undo();
    return false;
  }

  if (options_.use_pure_literal) {
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<signed char> seen_pos(f.num_vars + 1, 0);
      std::vector<signed char> seen_neg(f.num_vars + 1, 0);
      for (const auto& clause : f.clauses) {
        if (Inspect(clause, *value).satisfied) continue;
        for (Lit l : clause) {
          int v = l > 0 ? l : -l;
          if ((*value)[v] < 0) (l > 0 ? seen_pos : seen_neg)[v] = 1;
        }
      }
      for (int v = 1; v <= f.num_vars; ++v) {
        if ((*value)[v] < 0 && (seen_pos[v] ^ seen_neg[v])) {
          (*value)[v] = seen_pos[v] ? 1 : 0;
          trail.push_back(v);
          ++result->propagations;
          changed = true;
        }
      }
    }
  }

  bool all_satisfied = true;
  for (const auto& clause : f.clauses) {
    ClauseState s = Inspect(clause, *value);
    if (s.satisfied) continue;
    all_satisfied = false;
    if (s.unassigned == 0) {
      undo();
      return false;
    }
  }
  if (all_satisfied) return true;

  int branch = PickBranchVariable(f, *value);
  for (signed char polarity : {1, 0}) {
    ++result->decisions;
    (*value)[branch] = polarity;
    if (Search(f, value, result)) return true;
    (*value)[branch] = -1;
    if (aborted_) break;
  }
  undo();
  return false;
}

SatResult DpllSolver::Solve(const CnfFormula& f) {
  aborted_ = false;
  SatResult result;
  std::vector<signed char> value(f.num_vars + 1, -1);
  if (Search(f, &value, &result)) {
    result.satisfiable = true;
    result.assignment.resize(f.num_vars);
    for (int v = 1; v <= f.num_vars; ++v) {
      // Unset variables (untouched by any clause) default to false.
      result.assignment[v - 1] = value[v] == 1;
    }
  }
  if (aborted_) {
    result.status = options_.budget != nullptr && options_.budget->Stopped()
                        ? options_.budget->status()
                        : util::RunStatus::kBudgetExhausted;
  }
  return result;
}

SatResult SolveDpll(const CnfFormula& f) { return DpllSolver().Solve(f); }

}  // namespace qc::sat
