#ifndef QC_SAT_HORNSAT_H_
#define QC_SAT_HORNSAT_H_

#include "sat/cnf.h"

namespace qc::sat {

/// Polynomial-time Horn-SAT by unit propagation from the all-false
/// assignment; when satisfiable the returned assignment is the unique
/// minimal model. Every clause must have at most one positive literal;
/// aborts otherwise.
SatResult SolveHornSat(const CnfFormula& f);

}  // namespace qc::sat

#endif  // QC_SAT_HORNSAT_H_
