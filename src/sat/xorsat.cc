#include "sat/xorsat.h"

#include "util/bitset.h"

namespace qc::sat {

bool XorSystem::Evaluate(const std::vector<bool>& assignment) const {
  for (const auto& eq : equations) {
    bool sum = false;
    for (int v : eq.vars) sum ^= assignment[v];
    if (sum != eq.rhs) return false;
  }
  return true;
}

XorResult SolveXorSystem(const XorSystem& system) {
  const int n = system.num_vars;
  const int m = static_cast<int>(system.equations.size());
  // Augmented matrix: column n is the right-hand side.
  std::vector<util::Bitset> rows(m, util::Bitset(n + 1));
  for (int i = 0; i < m; ++i) {
    for (int v : system.equations[i].vars) {
      // Duplicate variables cancel (x + x = 0).
      if (rows[i].Test(v)) {
        rows[i].Reset(v);
      } else {
        rows[i].Set(v);
      }
    }
    if (system.equations[i].rhs) rows[i].Set(n);
  }

  XorResult result;
  std::vector<int> pivot_col;
  int row = 0;
  for (int col = 0; col < n && row < m; ++col) {
    int pivot = -1;
    for (int i = row; i < m; ++i) {
      if (rows[i].Test(col)) {
        pivot = i;
        break;
      }
    }
    if (pivot < 0) continue;
    std::swap(rows[row], rows[pivot]);
    for (int i = 0; i < m; ++i) {
      if (i != row && rows[i].Test(col)) {
        for (std::size_t w = 0; w < rows[i].words().size(); ++w) {
          rows[i].words()[w] ^= rows[row].words()[w];
        }
      }
    }
    pivot_col.push_back(col);
    ++row;
  }
  result.rank = row;
  // Inconsistent row: all-zero coefficients with rhs 1.
  for (int i = row; i < m; ++i) {
    if (rows[i].Test(n)) return result;
  }
  result.satisfiable = true;
  result.assignment.assign(n, false);
  for (int i = 0; i < row; ++i) {
    result.assignment[pivot_col[i]] = rows[i].Test(n);
  }
  return result;
}

}  // namespace qc::sat
