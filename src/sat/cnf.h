#ifndef QC_SAT_CNF_H_
#define QC_SAT_CNF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/budget.h"

namespace qc::sat {

/// Literals use the DIMACS convention: variables are 1..num_vars, literal
/// +v is the variable, -v its negation.
using Lit = int;

/// A CNF formula.
struct CnfFormula {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;

  /// Appends a clause (no tautology/duplicate cleanup; generators emit
  /// clean clauses).
  void AddClause(std::vector<Lit> clause) {
    clauses.push_back(std::move(clause));
  }

  /// Evaluates under a full assignment (assignment[v-1] is var v's value).
  bool Evaluate(const std::vector<bool>& assignment) const;

  /// True if every clause has at most `k` literals.
  bool MaxClauseSize(int k) const;

  /// True if every clause has at most one positive literal.
  bool IsHorn() const;

  /// True if every clause has at most two literals.
  bool IsTwoSat() const { return MaxClauseSize(2); }

  /// Serializes in DIMACS "p cnf" format.
  std::string ToDimacs() const;

  /// Parses DIMACS; returns nullopt on malformed input.
  static std::optional<CnfFormula> FromDimacs(const std::string& text);
};

/// Result of a satisfiability search, with solver effort counters so the
/// ETH/SETH experiments can report search-tree sizes alongside wall time.
///
/// When `status != kCompleted` the search gave up (deadline/budget/cancel or
/// a solver-native limit like max_conflicts): the answer is *Unknown*, so
/// `satisfiable == false` must not be read as UNSAT. The effort counters
/// (decisions, propagations, conflicts) still report the work done.
struct SatResult {
  bool satisfiable = false;
  std::vector<bool> assignment;  ///< Valid when satisfiable.
  std::uint64_t decisions = 0;   ///< Branching nodes explored.
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;   ///< CDCL only; 0 for the other solvers.
  util::RunStatus status = util::RunStatus::kCompleted;
};

/// Tries all 2^n assignments (the "brute force search" of Hypothesis 3).
/// Polls `budget` once per candidate assignment.
SatResult SolveBruteForce(const CnfFormula& f, util::Budget* budget = nullptr);

}  // namespace qc::sat

#endif  // QC_SAT_CNF_H_
