#ifndef QC_SAT_CDCL_H_
#define QC_SAT_CDCL_H_

#include "sat/cnf.h"

namespace qc::sat {

/// Conflict-driven clause learning SAT solver: two-watched-literal
/// propagation, first-UIP conflict analysis with non-chronological
/// backjumping, VSIDS-style variable activities with phase saving, and Luby
/// restarts.
///
/// This is the library's strong general-purpose solver — the modern
/// counterpart to DpllSolver that makes the ETH experiments honest about
/// what "the best we can do in practice" looks like (the exponent shrinks,
/// but remains an exponent, exactly as the ETH predicts).
class CdclSolver {
 public:
  struct Options {
    std::uint64_t max_conflicts = 0;  ///< 0 = unlimited.
    double activity_decay = 0.95;
    int luby_unit = 64;  ///< Conflicts per Luby restart unit.
    /// Optional cooperative budget, polled once per decision and per
    /// conflict. On a trip Solve reports Unknown: satisfiable=false with
    /// `status` recording the cause and `conflicts` the effort so far.
    util::Budget* budget = nullptr;
  };

  struct Stats {
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t learned_clauses = 0;
    std::uint64_t restarts = 0;
  };

  CdclSolver();
  explicit CdclSolver(Options options) : options_(options) {}

  /// Solves f; `decisions` and `propagations` of the returned SatResult are
  /// filled from the internal stats.
  SatResult Solve(const CnfFormula& f);

  const Stats& stats() const { return stats_; }
  /// True if the last Solve gave up (max_conflicts or a tripped budget);
  /// the SatResult's `status` distinguishes the causes.
  bool aborted() const { return aborted_; }

 private:
  Options options_;
  Stats stats_;
  bool aborted_ = false;
};

}  // namespace qc::sat

#endif  // QC_SAT_CDCL_H_
