#ifndef QC_SAT_WALKSAT_H_
#define QC_SAT_WALKSAT_H_

#include "sat/cnf.h"
#include "util/rng.h"

namespace qc::sat {

/// WalkSAT local search: start from a random assignment; repeatedly pick an
/// unsatisfied clause and flip either a random variable in it (with
/// probability `noise`) or the variable minimizing the number of clauses
/// broken. Incomplete — it can only certify satisfiability, never refute —
/// which is exactly the asymmetry the paper's decision-problem framing
/// cares about.
struct WalkSatOptions {
  std::uint64_t max_flips = 100000;
  double noise = 0.5;
  int restarts = 10;
};

/// Returns a satisfying assignment if one was found within the budget;
/// result.satisfiable == false only means "not found".
SatResult SolveWalkSat(const CnfFormula& f, util::Rng* rng,
                       const WalkSatOptions& options = WalkSatOptions());

}  // namespace qc::sat

#endif  // QC_SAT_WALKSAT_H_
