#include "sat/model_counting.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace qc::sat {

namespace {

/// Recursive counter. Every call counts satisfying assignments of the
/// *currently unassigned* variables in its `owned` scope against its clause
/// set; variables whose clauses all become satisfied are free and
/// contribute a factor of 2, and variable-disjoint clause components
/// multiply.
class Counter {
 public:
  explicit Counter(const CnfFormula& f) : f_(f), value_(f.num_vars + 1, -1) {}

  std::uint64_t Count() {
    std::vector<int> clauses;
    for (int ci = 0; ci < static_cast<int>(f_.clauses.size()); ++ci) {
      clauses.push_back(ci);
    }
    std::vector<int> owned;
    for (int v = 1; v <= f_.num_vars; ++v) owned.push_back(v);
    return CountScoped(clauses, owned);
  }

 private:
  enum class Status { kSatisfied, kConflict, kActive };

  Status Inspect(int ci, std::vector<Lit>* unassigned) const {
    unassigned->clear();
    for (Lit l : f_.clauses[ci]) {
      int v = l > 0 ? l : -l;
      if (value_[v] < 0) {
        unassigned->push_back(l);
      } else if ((l > 0) == (value_[v] == 1)) {
        return Status::kSatisfied;
      }
    }
    return unassigned->empty() ? Status::kConflict : Status::kActive;
  }

  std::uint64_t CountScoped(const std::vector<int>& clauses,
                            const std::vector<int>& owned) {
    // Unit propagation within the scope.
    std::vector<int> trail;
    std::vector<Lit> unassigned;
    bool changed = true;
    while (changed) {
      changed = false;
      for (int ci : clauses) {
        Status s = Inspect(ci, &unassigned);
        if (s == Status::kConflict) {
          Undo(trail);
          return 0;
        }
        if (s == Status::kActive && unassigned.size() == 1) {
          Assign(unassigned[0], &trail);
          changed = true;
        }
      }
    }
    // Live clauses and their unassigned variables.
    std::vector<int> live;
    std::vector<bool> in_live_clause(f_.num_vars + 1, false);
    for (int ci : clauses) {
      Status s = Inspect(ci, &unassigned);
      if (s == Status::kConflict) {
        Undo(trail);
        return 0;
      }
      if (s == Status::kActive) {
        live.push_back(ci);
        for (Lit l : unassigned) in_live_clause[l > 0 ? l : -l] = true;
      }
    }
    // Free scope variables: unassigned and in no live clause.
    std::uint64_t result = 1;
    for (int v : owned) {
      if (value_[v] < 0 && !in_live_clause[v]) result *= 2;
    }
    // Component split over the live clauses.
    std::vector<char> done(live.size(), 0);
    for (std::size_t i = 0; i < live.size() && result > 0; ++i) {
      if (done[i]) continue;
      std::vector<int> comp_clauses = {live[i]};
      std::vector<bool> comp_var(f_.num_vars + 1, false);
      MarkVars(live[i], &comp_var);
      done[i] = 1;
      bool grew = true;
      while (grew) {
        grew = false;
        for (std::size_t j = 0; j < live.size(); ++j) {
          if (done[j] || !SharesVar(live[j], comp_var)) continue;
          done[j] = 1;
          comp_clauses.push_back(live[j]);
          MarkVars(live[j], &comp_var);
          grew = true;
        }
      }
      std::vector<int> comp_owned;
      for (int v = 1; v <= f_.num_vars; ++v) {
        if (comp_var[v]) comp_owned.push_back(v);
      }
      result *= Branch(comp_clauses, comp_owned);
    }
    Undo(trail);
    return result;
  }

  /// Branches on one unassigned variable of the component.
  std::uint64_t Branch(const std::vector<int>& clauses,
                       const std::vector<int>& owned) {
    int branch_var = -1;
    for (int v : owned) {
      if (value_[v] < 0) {
        branch_var = v;
        break;
      }
    }
    if (branch_var < 0) return 1;  // Fully assigned, conflicts caught above.
    std::uint64_t total = 0;
    for (signed char polarity : {1, 0}) {
      value_[branch_var] = polarity;
      total += CountScoped(clauses, owned);
      value_[branch_var] = -1;
    }
    return total;
  }

  void Assign(Lit l, std::vector<int>* trail) {
    int v = l > 0 ? l : -l;
    value_[v] = l > 0 ? 1 : 0;
    trail->push_back(v);
  }

  void Undo(const std::vector<int>& trail) {
    for (int v : trail) value_[v] = -1;
  }

  void MarkVars(int ci, std::vector<bool>* mark) const {
    for (Lit l : f_.clauses[ci]) {
      int v = l > 0 ? l : -l;
      if (value_[v] < 0) (*mark)[v] = true;
    }
  }

  bool SharesVar(int ci, const std::vector<bool>& mark) const {
    for (Lit l : f_.clauses[ci]) {
      int v = l > 0 ? l : -l;
      if (value_[v] < 0 && mark[v]) return true;
    }
    return false;
  }

  const CnfFormula& f_;
  std::vector<signed char> value_;
};

}  // namespace

std::uint64_t CountModels(const CnfFormula& f) {
  if (f.num_vars > 63) std::abort();
  return Counter(f).Count();
}

}  // namespace qc::sat
