#include "sat/cnf.h"

#include <cstdlib>
#include <sstream>

namespace qc::sat {

bool CnfFormula::Evaluate(const std::vector<bool>& assignment) const {
  for (const auto& clause : clauses) {
    bool sat = false;
    for (Lit l : clause) {
      int v = l > 0 ? l : -l;
      bool val = assignment[v - 1];
      if ((l > 0) == val) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

bool CnfFormula::MaxClauseSize(int k) const {
  for (const auto& c : clauses) {
    if (static_cast<int>(c.size()) > k) return false;
  }
  return true;
}

bool CnfFormula::IsHorn() const {
  for (const auto& c : clauses) {
    int positives = 0;
    for (Lit l : c) {
      if (l > 0) ++positives;
    }
    if (positives > 1) return false;
  }
  return true;
}

std::string CnfFormula::ToDimacs() const {
  std::ostringstream out;
  out << "p cnf " << num_vars << " " << clauses.size() << "\n";
  for (const auto& c : clauses) {
    for (Lit l : c) out << l << " ";
    out << "0\n";
  }
  return out.str();
}

std::optional<CnfFormula> CnfFormula::FromDimacs(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  CnfFormula f;
  int expected_clauses = -1;
  std::vector<Lit> current;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream hs(line);
      std::string p, cnf;
      if (!(hs >> p >> cnf >> f.num_vars >> expected_clauses)) {
        return std::nullopt;
      }
      if (cnf != "cnf" || f.num_vars < 0 || expected_clauses < 0) {
        return std::nullopt;
      }
      continue;
    }
    std::istringstream ls(line);
    Lit l;
    while (ls >> l) {
      if (l == 0) {
        f.clauses.push_back(current);
        current.clear();
      } else {
        int v = l > 0 ? l : -l;
        if (v > f.num_vars) return std::nullopt;
        current.push_back(l);
      }
    }
  }
  if (!current.empty()) return std::nullopt;  // Unterminated clause.
  if (expected_clauses >= 0 &&
      static_cast<int>(f.clauses.size()) != expected_clauses) {
    return std::nullopt;
  }
  return f;
}

SatResult SolveBruteForce(const CnfFormula& f, util::Budget* budget) {
  SatResult r;
  if (f.num_vars > 62) std::abort();
  std::vector<bool> assignment(f.num_vars);
  for (std::uint64_t mask = 0; mask < (1ULL << f.num_vars); ++mask) {
    if (budget != nullptr && budget->ChargeWork(1)) {
      r.status = budget->status();
      return r;
    }
    ++r.decisions;
    for (int v = 0; v < f.num_vars; ++v) assignment[v] = (mask >> v) & 1ULL;
    if (f.Evaluate(assignment)) {
      r.satisfiable = true;
      r.assignment = assignment;
      return r;
    }
  }
  return r;
}

}  // namespace qc::sat
