#ifndef QC_SAT_XORSAT_H_
#define QC_SAT_XORSAT_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace qc::sat {

/// A system of XOR (affine GF(2)) equations: each equation is
/// x_{v1} + x_{v2} + ... = rhs (mod 2), variables 0-based.
struct XorSystem {
  int num_vars = 0;
  struct Equation {
    std::vector<int> vars;
    bool rhs = false;
  };
  std::vector<Equation> equations;

  void AddEquation(std::vector<int> vars, bool rhs) {
    equations.push_back(Equation{std::move(vars), rhs});
  }

  bool Evaluate(const std::vector<bool>& assignment) const;
};

/// Result of Gaussian elimination over GF(2).
struct XorResult {
  bool satisfiable = false;
  std::vector<bool> assignment;  ///< One solution (free vars set to false).
  int rank = 0;                  ///< Rank of the coefficient matrix.
  /// Number of solutions is 2^(num_vars - rank) when satisfiable.
};

/// Solves the system in O(m * n^2 / 64) via bitset Gaussian elimination —
/// the polynomial "affine" case of Schaefer's dichotomy (Section 4).
XorResult SolveXorSystem(const XorSystem& system);

}  // namespace qc::sat

#endif  // QC_SAT_XORSAT_H_
