#include "db/trie_index.h"

#include <algorithm>
#include <utility>

#include "util/arena.h"

namespace qc::db {

TrieIndex::TrieIndex(const FlatRelation& rel, util::Arena* scratch) {
  const int arity = rel.arity();
  const std::size_t n = rel.size();
  if (arity == 0 || n == 0) return;
  levels_.resize(arity);

  // Row ranges of the nodes at the previous level (one virtual root range
  // to start). Splitting a range by the values in column `l` yields that
  // node's children; the rows are sorted, so each child is a contiguous run.
  // A level never has more nodes than rows, so two n-sized ping-pong arrays
  // cover every level without reallocation.
  struct Range {
    std::uint32_t begin, end;
  };
  util::Arena local;
  util::Arena* a = scratch != nullptr ? scratch : &local;
  Range* ranges = a->AllocateArray<Range>(n);
  Range* next_ranges = a->AllocateArray<Range>(n);
  ranges[0] = {0u, static_cast<std::uint32_t>(n)};
  std::size_t num_ranges = 1;
  for (int l = 0; l < arity; ++l) {
    Level& level = levels_[l];
    std::vector<std::int32_t> parent_offsets;
    parent_offsets.reserve(num_ranges + 1);
    std::size_t num_next = 0;
    for (std::size_t r = 0; r < num_ranges; ++r) {
      const auto [begin, end] = ranges[r];
      parent_offsets.push_back(static_cast<std::int32_t>(level.values.size()));
      std::uint32_t i = begin;
      while (i < end) {
        Value v = rel.At(i, l);
        std::uint32_t j = i + 1;
        while (j < end && rel.At(j, l) == v) ++j;
        level.values.push_back(v);
        next_ranges[num_next++] = {i, j};
        i = j;
      }
    }
    parent_offsets.push_back(static_cast<std::int32_t>(level.values.size()));
    if (l > 0) levels_[l - 1].child_offsets = std::move(parent_offsets);
    num_nodes_ += level.values.size();
    std::swap(ranges, next_ranges);
    num_ranges = num_next;
  }
}

std::size_t TrieIndex::MemoryBytes() const {
  std::size_t bytes = sizeof(TrieIndex);
  bytes += levels_.capacity() * sizeof(Level);
  for (const Level& level : levels_) {
    bytes += level.values.capacity() * sizeof(Value);
    bytes += level.child_offsets.capacity() * sizeof(std::int32_t);
  }
  return bytes;
}

bool TrieIndex::ContainsRow(const Value* row) const {
  if (empty()) return false;
  std::int32_t begin = 0;
  std::int32_t end = static_cast<std::int32_t>(levels_[0].values.size());
  for (int l = 0; l < levels(); ++l) {
    const Value* vals = levels_[l].values.data();
    const Value* hit = std::lower_bound(vals + begin, vals + end, row[l]);
    if (hit == vals + end || *hit != row[l]) return false;
    if (l + 1 == levels()) return true;
    std::int32_t node = static_cast<std::int32_t>(hit - vals);
    begin = ChildrenBegin(l, node);
    end = ChildrenEnd(l, node);
  }
  return true;
}

FlatRelation TrieIndex::ToFlat() const {
  const int arity = levels();
  FlatRelation out(arity);
  if (arity == 0 || empty()) return out;
  out.Reserve(levels_.back().values.size());
  Tuple row(arity);
  // Depth-first over the child spans; leaves appear in lexicographic row
  // order because every span's values are sorted.
  struct Frame {
    std::int32_t node, end;
  };
  std::vector<Frame> stack(arity);
  stack[0] = {0, static_cast<std::int32_t>(levels_[0].values.size())};
  int depth = 0;
  while (depth >= 0) {
    Frame& f = stack[depth];
    if (f.node == f.end) {
      --depth;
      if (depth >= 0) ++stack[depth].node;
      continue;
    }
    row[depth] = levels_[depth].values[f.node];
    if (depth + 1 == arity) {
      out.PushRow(row.data());
      ++f.node;
    } else {
      stack[depth + 1] = {ChildrenBegin(depth, f.node),
                          ChildrenEnd(depth, f.node)};
      ++depth;
    }
  }
  return out;
}

}  // namespace qc::db
