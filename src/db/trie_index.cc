#include "db/trie_index.h"

namespace qc::db {

TrieIndex::TrieIndex(const FlatRelation& rel) {
  const int arity = rel.arity();
  const std::size_t n = rel.size();
  if (arity == 0 || n == 0) return;
  levels_.resize(arity);

  // Row ranges of the nodes at the previous level (one virtual root range
  // to start). Splitting a range by the values in column `l` yields that
  // node's children; the rows are sorted, so each child is a contiguous run.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges = {
      {0u, static_cast<std::uint32_t>(n)}};
  for (int l = 0; l < arity; ++l) {
    Level& level = levels_[l];
    std::vector<std::int32_t> parent_offsets;
    parent_offsets.reserve(ranges.size() + 1);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> next_ranges;
    for (const auto& [begin, end] : ranges) {
      parent_offsets.push_back(static_cast<std::int32_t>(level.values.size()));
      std::uint32_t i = begin;
      while (i < end) {
        Value v = rel.At(i, l);
        std::uint32_t j = i + 1;
        while (j < end && rel.At(j, l) == v) ++j;
        level.values.push_back(v);
        next_ranges.push_back({i, j});
        i = j;
      }
    }
    parent_offsets.push_back(static_cast<std::int32_t>(level.values.size()));
    if (l > 0) levels_[l - 1].child_offsets = std::move(parent_offsets);
    num_nodes_ += level.values.size();
    ranges = std::move(next_ranges);
  }
}

}  // namespace qc::db
