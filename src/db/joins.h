#ifndef QC_DB_JOINS_H_
#define QC_DB_JOINS_H_

#include <cstdint>
#include <map>

#include "db/database.h"
#include "util/budget.h"

namespace qc::db {

/// Statistics for plan-based evaluation — E2 reports the intermediate-result
/// blowup that worst-case-optimal joins avoid.
struct JoinStats {
  std::uint64_t intermediate_tuples = 0;  ///< Total tuples materialized.
  std::uint64_t max_intermediate = 0;     ///< Largest intermediate result.
  std::uint64_t probes = 0;               ///< Hash probes performed.
};

/// Hash-joins two materialized results on their shared attributes
/// (natural join). The output schema is left's attributes followed by
/// right's non-shared attributes. Polls `budget` once per probed left tuple;
/// on a trip the result carries the rows produced so far with
/// `truncated = true`.
JoinResult HashJoin(const JoinResult& left, const JoinResult& right,
                    JoinStats* stats = nullptr,
                    util::Budget* budget = nullptr);

/// Evaluates the query with a left-deep sequence of binary hash joins in the
/// given atom order (indices into query.atoms).
JoinResult EvaluateBinaryJoinPlan(const JoinQuery& query, const Database& db,
                                  const std::vector<int>& atom_order,
                                  JoinStats* stats = nullptr);

/// Greedy plan: start from the smallest relation; repeatedly join the atom
/// sharing attributes with the current result (smallest first), falling back
/// to a cross product only when forced.
std::vector<int> GreedyJoinOrder(const JoinQuery& query, const Database& db);

/// EvaluateBinaryJoinPlan with GreedyJoinOrder.
JoinResult EvaluateGreedyBinaryJoin(const JoinQuery& query, const Database& db,
                                    JoinStats* stats = nullptr);

/// Loads one atom as a JoinResult (handles repeated attributes within the
/// atom by filtering on equality and dropping the duplicate columns).
/// Attributes keep their first-occurrence order; rows keep database order.
JoinResult MaterializeAtom(const Atom& atom, const Database& db);

/// Flat-columnar atom materialization for the trie engine: repeated
/// attributes are equality-filtered and deduplicated as in MaterializeAtom,
/// but the kept columns are permuted into `global_order` position order and
/// the rows land directly in flat storage (no per-tuple allocation).
/// Writes the global position of each output column to *attr_positions
/// (strictly increasing). Rows preserve database order; callers sort.
FlatRelation MaterializeAtomFlat(const Atom& atom, const Database& db,
                                 const std::map<std::string, int>& global_order,
                                 std::vector<int>* attr_positions);

/// Distinct attributes of `atom` in first-occurrence order — the schema
/// MaterializeAtom produces.
std::vector<std::string> AtomAttributes(const Atom& atom);

/// Canonical cache signature of the sorted projection of `atom` onto
/// `attrs` (a subset of the atom's distinct attributes, in output-column
/// order): the row filter (equality classes of repeated attributes) plus
/// the source column of each output attribute. Two (atom, attrs) pairs with
/// equal signatures over the same relation version produce byte-identical
/// MaterializeSortedProjection results — the IndexCache keys trie indexes
/// by (relation name, version, signature).
std::string AtomProjectionSignature(const Atom& atom,
                                    const std::vector<std::string>& attrs);

/// Sorted, duplicate-free flat projection of `atom` onto `attrs` (output
/// columns in that order): rows failing the atom's repeated-attribute
/// equality filter are dropped, the kept source columns are gathered, and
/// the result is SortLexAndDedup'ed — the canonical relation a TrieIndex
/// (and a cached semijoin key set) is built over. `scratch`, when non-null,
/// backs the sort kernel's transient buffers.
FlatRelation MaterializeSortedProjection(const Atom& atom, const Database& db,
                                         const std::vector<std::string>& attrs,
                                         util::Arena* scratch = nullptr);

}  // namespace qc::db

#endif  // QC_DB_JOINS_H_
