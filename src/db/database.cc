#include "db/database.h"

#include <algorithm>
#include <cstdlib>
#include <set>

namespace qc::db {

JoinQuery& JoinQuery::Add(std::string relation,
                          std::vector<std::string> attributes) {
  atoms.push_back(Atom{std::move(relation), std::move(attributes)});
  return *this;
}

std::vector<std::string> JoinQuery::AttributeOrder() const {
  std::vector<std::string> order;
  for (const auto& atom : atoms) {
    for (const auto& a : atom.attributes) {
      if (std::find(order.begin(), order.end(), a) == order.end()) {
        order.push_back(a);
      }
    }
  }
  return order;
}

std::map<std::string, int> JoinQuery::AttributeIndex() const {
  std::map<std::string, int> index;
  std::vector<std::string> order = AttributeOrder();
  for (int i = 0; i < static_cast<int>(order.size()); ++i) {
    index[order[i]] = i;
  }
  return index;
}

graph::Hypergraph JoinQuery::Hypergraph() const {
  std::map<std::string, int> index = AttributeIndex();
  graph::Hypergraph h(static_cast<int>(index.size()));
  for (const auto& atom : atoms) {
    std::vector<int> edge;
    for (const auto& a : atom.attributes) edge.push_back(index[a]);
    h.AddEdge(std::move(edge));
  }
  return h;
}

graph::Graph JoinQuery::PrimalGraph() const { return Hypergraph().PrimalGraph(); }

namespace {

/// Process-wide version stamps: unique across relations and Database
/// instances, never 0. Uniqueness is what lets the shared IndexCache key on
/// (name, version) without ever confusing two databases that reuse a name.
std::uint64_t NextVersionStamp() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

void Database::Touch(Rel& rel) {
  rel.version = NextVersionStamp();
  std::lock_guard<std::mutex> lock(rel.row_cache_mu);
  rel.row_cache.clear();
  rel.row_cache_version.store(0, std::memory_order_relaxed);
}

MutationResult Database::SetRelation(const std::string& name, int arity,
                                     std::vector<Tuple> tuples) {
  if (arity < 0) {
    return MutationResult::Fail("relation " + name + ": negative arity " +
                                std::to_string(arity));
  }
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (static_cast<int>(tuples[i].size()) != arity) {
      return MutationResult::Fail(
          "relation " + name + ": tuple " + std::to_string(i) + " has arity " +
          std::to_string(tuples[i].size()) + ", expected " +
          std::to_string(arity));
    }
  }
  return SetRelation(name, FlatRelation::FromRows(arity, tuples));
}

MutationResult Database::SetRelation(const std::string& name,
                                     FlatRelation relation) {
  Rel& rel = relations_[name];
  // A replacement never mutates the old payload in place, so clones that
  // still hold the previous shared_ptr keep reading their snapshot.
  rel.flat = std::make_shared<FlatRelation>(std::move(relation));
  rel.maybe_shared = false;
  Touch(rel);
  return MutationResult::Ok();
}

MutationResult Database::AddTuple(const std::string& name, Tuple tuple) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return MutationResult::Fail("no such relation " + name);
  }
  Rel& rel = it->second;
  if (static_cast<int>(tuple.size()) != rel.flat->arity()) {
    return MutationResult::Fail(
        "relation " + name + ": tuple has arity " +
        std::to_string(tuple.size()) + ", expected " +
        std::to_string(rel.flat->arity()));
  }
  if (rel.maybe_shared) {
    // Copy-on-write: a Clone() snapshot still reads the old payload. One
    // private copy here un-shares the relation, so a burst of appends
    // between snapshots pays the copy once and then appends in place.
    rel.flat = std::make_shared<FlatRelation>(*rel.flat);
    rel.maybe_shared = false;
  }
  rel.flat->PushRow(tuple);
  Touch(rel);
  return MutationResult::Ok();
}

Database Database::Clone() const {
  Database out;
  for (const auto& [name, rel] : relations_) {
    Rel& copy = out.relations_[name];
    copy.flat = rel.flat;
    copy.version = rel.version;
    // Both sides now share one payload; whichever mutates first copies.
    copy.maybe_shared = true;
    rel.maybe_shared = true;
    // Deliberately NOT carried: the source's materialized row_cache. The
    // clone's Rel starts with an empty cache at row_cache_version 0, which
    // can never equal a real version stamp (stamps start at 1), so the
    // clone's first Tuples() call always rebuilds under its own lock —
    // a copied cache paired with the copied version stamp would be read
    // lock-free while the source may still be filling it.
  }
  return out;
}

bool Database::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

int Database::Arity(const std::string& name) const {
  return relations_.at(name).flat->arity();
}

const FlatRelation& Database::Flat(const std::string& name) const {
  return *relations_.at(name).flat;
}

std::size_t Database::NumTuples(const std::string& name) const {
  return relations_.at(name).flat->size();
}

std::uint64_t Database::RelationVersion(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? 0 : it->second.version;
}

const std::vector<Tuple>& Database::Tuples(const std::string& name) const {
  const Rel& rel = relations_.at(name);
  // Double-checked lazy materialization: the acquire load pairs with the
  // release store so a reader that observes the current version also
  // observes the fully built row_cache. ThreadPool workers sharing one
  // const Database may race here freely; mutations follow the class-level
  // "mutate before sharing" contract.
  if (rel.row_cache_version.load(std::memory_order_acquire) != rel.version) {
    std::lock_guard<std::mutex> lock(rel.row_cache_mu);
    if (rel.row_cache_version.load(std::memory_order_relaxed) != rel.version) {
      rel.row_cache = rel.flat->ToRows();
      rel.row_cache_version.store(rel.version, std::memory_order_release);
    }
  }
  return rel.row_cache;
}

std::size_t Database::MaxRelationSize() const {
  std::size_t n = 0;
  for (const auto& [name, rel] : relations_) {
    n = std::max(n, rel.flat->size());
  }
  return n;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

void JoinResult::Normalize() {
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
}

FlatRelation JoinResult::ToFlat() const {
  return FlatRelation::FromRows(static_cast<int>(attributes.size()), tuples);
}

JoinResult JoinResult::FromFlat(std::vector<std::string> attributes,
                                const FlatRelation& relation) {
  JoinResult out;
  out.attributes = std::move(attributes);
  out.tuples = relation.ToRows();
  return out;
}

bool TupleSatisfiesQuery(const JoinQuery& query, const Database& db,
                         const std::vector<std::string>& attrs,
                         const Tuple& tuple) {
  for (const auto& atom : query.atoms) {
    Tuple projection;
    projection.reserve(atom.attributes.size());
    for (const auto& a : atom.attributes) {
      auto it = std::find(attrs.begin(), attrs.end(), a);
      if (it == attrs.end()) std::abort();
      projection.push_back(tuple[it - attrs.begin()]);
    }
    const auto& rel = db.Tuples(atom.relation);
    if (std::find(rel.begin(), rel.end(), projection) == rel.end()) {
      return false;
    }
  }
  return true;
}

JoinResult EvaluateNestedLoop(const JoinQuery& query, const Database& db) {
  JoinResult result;
  result.attributes = query.AttributeOrder();
  const int n = static_cast<int>(result.attributes.size());
  // Candidate values per attribute: intersection over the atoms containing
  // it of the values in the matching column.
  std::vector<std::vector<Value>> candidates(n);
  std::map<std::string, int> index = query.AttributeIndex();
  std::vector<bool> seen(n, false);
  for (const auto& atom : query.atoms) {
    for (std::size_t col = 0; col < atom.attributes.size(); ++col) {
      int ai = index[atom.attributes[col]];
      std::set<Value> column;
      for (const auto& t : db.Tuples(atom.relation)) column.insert(t[col]);
      if (!seen[ai]) {
        candidates[ai].assign(column.begin(), column.end());
        seen[ai] = true;
      } else {
        std::vector<Value> kept;
        for (Value v : candidates[ai]) {
          if (column.count(v)) kept.push_back(v);
        }
        candidates[ai] = std::move(kept);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (candidates[i].empty()) return result;
  }
  // Odometer over the candidate grid.
  std::vector<std::size_t> idx(n, 0);
  Tuple tuple(n);
  while (true) {
    for (int i = 0; i < n; ++i) tuple[i] = candidates[i][idx[i]];
    if (TupleSatisfiesQuery(query, db, result.attributes, tuple)) {
      result.tuples.push_back(tuple);
    }
    int i = 0;
    while (i < n && ++idx[i] == candidates[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return result;
}

}  // namespace qc::db
