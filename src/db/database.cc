#include "db/database.h"

#include <algorithm>
#include <cstdlib>
#include <set>

namespace qc::db {

JoinQuery& JoinQuery::Add(std::string relation,
                          std::vector<std::string> attributes) {
  atoms.push_back(Atom{std::move(relation), std::move(attributes)});
  return *this;
}

std::vector<std::string> JoinQuery::AttributeOrder() const {
  std::vector<std::string> order;
  for (const auto& atom : atoms) {
    for (const auto& a : atom.attributes) {
      if (std::find(order.begin(), order.end(), a) == order.end()) {
        order.push_back(a);
      }
    }
  }
  return order;
}

std::map<std::string, int> JoinQuery::AttributeIndex() const {
  std::map<std::string, int> index;
  std::vector<std::string> order = AttributeOrder();
  for (int i = 0; i < static_cast<int>(order.size()); ++i) {
    index[order[i]] = i;
  }
  return index;
}

graph::Hypergraph JoinQuery::Hypergraph() const {
  std::map<std::string, int> index = AttributeIndex();
  graph::Hypergraph h(static_cast<int>(index.size()));
  for (const auto& atom : atoms) {
    std::vector<int> edge;
    for (const auto& a : atom.attributes) edge.push_back(index[a]);
    h.AddEdge(std::move(edge));
  }
  return h;
}

graph::Graph JoinQuery::PrimalGraph() const { return Hypergraph().PrimalGraph(); }

void Database::SetRelation(const std::string& name, int arity,
                           std::vector<Tuple> tuples) {
  for (const auto& t : tuples) {
    if (static_cast<int>(t.size()) != arity) std::abort();
  }
  SetRelation(name, FlatRelation::FromRows(arity, tuples));
}

void Database::SetRelation(const std::string& name, FlatRelation relation) {
  Rel& rel = relations_[name];
  rel.flat = std::move(relation);
  rel.row_cache.clear();
  rel.row_cache_valid = false;
}

void Database::AddTuple(const std::string& name, Tuple tuple) {
  auto it = relations_.find(name);
  if (it == relations_.end() ||
      static_cast<int>(tuple.size()) != it->second.flat.arity()) {
    std::abort();
  }
  it->second.flat.PushRow(tuple);
  it->second.row_cache.clear();
  it->second.row_cache_valid = false;
}

bool Database::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

int Database::Arity(const std::string& name) const {
  return relations_.at(name).flat.arity();
}

const FlatRelation& Database::Flat(const std::string& name) const {
  return relations_.at(name).flat;
}

std::size_t Database::NumTuples(const std::string& name) const {
  return relations_.at(name).flat.size();
}

const std::vector<Tuple>& Database::Tuples(const std::string& name) const {
  const Rel& rel = relations_.at(name);
  if (!rel.row_cache_valid) {
    rel.row_cache = rel.flat.ToRows();
    rel.row_cache_valid = true;
  }
  return rel.row_cache;
}

std::size_t Database::MaxRelationSize() const {
  std::size_t n = 0;
  for (const auto& [name, rel] : relations_) {
    n = std::max(n, rel.flat.size());
  }
  return n;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

void JoinResult::Normalize() {
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
}

FlatRelation JoinResult::ToFlat() const {
  return FlatRelation::FromRows(static_cast<int>(attributes.size()), tuples);
}

JoinResult JoinResult::FromFlat(std::vector<std::string> attributes,
                                const FlatRelation& relation) {
  JoinResult out;
  out.attributes = std::move(attributes);
  out.tuples = relation.ToRows();
  return out;
}

bool TupleSatisfiesQuery(const JoinQuery& query, const Database& db,
                         const std::vector<std::string>& attrs,
                         const Tuple& tuple) {
  for (const auto& atom : query.atoms) {
    Tuple projection;
    projection.reserve(atom.attributes.size());
    for (const auto& a : atom.attributes) {
      auto it = std::find(attrs.begin(), attrs.end(), a);
      if (it == attrs.end()) std::abort();
      projection.push_back(tuple[it - attrs.begin()]);
    }
    const auto& rel = db.Tuples(atom.relation);
    if (std::find(rel.begin(), rel.end(), projection) == rel.end()) {
      return false;
    }
  }
  return true;
}

JoinResult EvaluateNestedLoop(const JoinQuery& query, const Database& db) {
  JoinResult result;
  result.attributes = query.AttributeOrder();
  const int n = static_cast<int>(result.attributes.size());
  // Candidate values per attribute: intersection over the atoms containing
  // it of the values in the matching column.
  std::vector<std::vector<Value>> candidates(n);
  std::map<std::string, int> index = query.AttributeIndex();
  std::vector<bool> seen(n, false);
  for (const auto& atom : query.atoms) {
    for (std::size_t col = 0; col < atom.attributes.size(); ++col) {
      int ai = index[atom.attributes[col]];
      std::set<Value> column;
      for (const auto& t : db.Tuples(atom.relation)) column.insert(t[col]);
      if (!seen[ai]) {
        candidates[ai].assign(column.begin(), column.end());
        seen[ai] = true;
      } else {
        std::vector<Value> kept;
        for (Value v : candidates[ai]) {
          if (column.count(v)) kept.push_back(v);
        }
        candidates[ai] = std::move(kept);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (candidates[i].empty()) return result;
  }
  // Odometer over the candidate grid.
  std::vector<std::size_t> idx(n, 0);
  Tuple tuple(n);
  while (true) {
    for (int i = 0; i < n; ++i) tuple[i] = candidates[i][idx[i]];
    if (TupleSatisfiesQuery(query, db, result.attributes, tuple)) {
      result.tuples.push_back(tuple);
    }
    int i = 0;
    while (i < n && ++idx[i] == candidates[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return result;
}

}  // namespace qc::db
