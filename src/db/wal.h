#ifndef QC_DB_WAL_H_
#define QC_DB_WAL_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "db/database.h"

namespace qc::db {

/// When appended WAL records reach the disk.
///   kAlways — fdatasync after every record: an acknowledged mutation
///             survives kill -9 and power loss (the durability default).
///   kBatch  — fdatasync once at least batch_bytes have accumulated:
///             bounded loss window, much higher ingest throughput.
///   kOff    — never fsync; the OS flushes when it pleases. For tests and
///             for workloads where a crash may lose the tail.
enum class FsyncPolicy { kAlways, kBatch, kOff };

/// "always" | "batch" | "off"; false on anything else.
bool ParseFsyncPolicy(std::string_view text, FsyncPolicy* out);
const char* ToString(FsyncPolicy policy);

struct WalOptions {
  /// Directory holding wal.log + snapshot.dat. Empty = WAL disabled.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// kBatch: bytes appended between fdatasync calls.
  std::uint64_t batch_bytes = 1 << 20;
  /// Log size that triggers compaction (snapshot + rotation) on the next
  /// MvccDatabase::MaybeCompactWal. 0 = compact only on explicit request.
  std::uint64_t compact_bytes = std::uint64_t{64} << 20;
};

/// One logical logged mutation. The WAL speaks the same mutation
/// vocabulary as MvccDatabase: structured relation writes plus the raw
/// dataset batches the server's `mutate` frames carry (replayed through
/// api::LoadDataset by the recovery callback, so the db layer never
/// depends on the api layer).
struct WalRecord {
  enum class Kind : std::uint8_t {
    kSetRelation = 1,  ///< Create/replace `relation` (arity + tuples).
    kAddTuples = 2,    ///< Append `tuples` to `relation`.
    kDataset = 3,      ///< Apply `dataset` text (api::LoadDataset format).
    kDedup = 4,        ///< Snapshot-only: applied request-id window.
    /// Materialized-view registration (see db/ivm.h): `relation` holds the
    /// view name, `arity` the ViewDefinition::Kind, `dataset` the
    /// definition body (query text / edge relation name). Logged when a
    /// view registers and carried by every compaction snapshot, so
    /// recovery rebuilds registered views after replaying the data.
    kViewDef = 5,
  };

  Kind kind = Kind::kAddTuples;
  /// Client-supplied idempotency token (0 = none). Recovery reports every
  /// id it saw so the server can refuse to re-apply a retried mutation
  /// that already committed before the crash.
  std::uint64_t request_id = 0;
  std::string relation;        ///< kSetRelation / kAddTuples.
  int arity = 0;               ///< kSetRelation.
  std::vector<Tuple> tuples;   ///< kSetRelation / kAddTuples.
  std::string dataset;         ///< kDataset: raw dataset text.
  bool continue_on_error = false;  ///< kDataset: LoadDataset semantics.
  std::vector<std::uint64_t> dedup_ids;  ///< kDedup.
};

/// Serialized payload (no framing); the inverse of DecodeWalRecord.
std::string EncodeWalRecord(const WalRecord& record);
/// False + error on a malformed payload (never crashes on garbage).
bool DecodeWalRecord(std::string_view payload, WalRecord* out,
                     std::string* error);

struct WalStats {
  std::uint64_t records_appended = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t syncs = 0;
  std::uint64_t compactions = 0;
  std::uint64_t log_bytes = 0;       ///< Current wal.log size.
  std::uint64_t append_failures = 0; ///< I/O or injected-fault rejections.
};

/// Outcome of Wal::Replay.
struct WalRecovery {
  bool ok = false;
  std::string error;  ///< Meaningful only when !ok.
  std::uint64_t snapshot_records = 0;  ///< Applied from snapshot.dat.
  std::uint64_t log_records = 0;       ///< Applied from wal.log.
  std::uint64_t torn_bytes_truncated = 0;  ///< Invalid tail cut from the log.
  /// Records skipped because their nonzero request_id was already applied.
  /// A failed fsync can persist a record whose mutation was rejected; the
  /// client's acknowledged retry then logs a second copy of the same id.
  std::uint64_t duplicate_records_skipped = 0;
  /// Bytes of a wal.log whose generation the snapshot already covers —
  /// a crash between Compact's snapshot rename and its log rotation.
  /// Replaying it would double-apply everything, so it is discarded.
  std::uint64_t stale_log_bytes_skipped = 0;
  /// Every request id seen (dedup window from the snapshot plus the id of
  /// each replayed record) — the server's idempotency set after recovery.
  std::vector<std::uint64_t> request_ids;
};

/// Checksummed, length-prefixed write-ahead log of database mutations.
///
/// On-disk layout inside `dir`:
///   wal.log       16-byte header (8-byte magic + u64 generation), then
///                 records: u32 payload-bytes, u32 CRC32(payload),
///                 payload (EncodeWalRecord)
///   snapshot.dat  same header and record format, holding one
///                 kSetRelation per relation plus one kDedup record;
///                 written to snapshot.tmp, fsynced, atomically renamed
///
/// Recovery invariants (see DESIGN.md §13):
///   * a record is applied iff its length fits the file AND its CRC
///     matches — the first violation ends the log, and Replay truncates
///     that torn tail so the next boot starts from a clean file;
///   * snapshot.dat is always complete (fsync-then-rename) — a corrupt
///     snapshot is a hard recovery error, never silently skipped;
///   * Append writes and syncs *before* the mutation is applied or
///     acknowledged, so acknowledged writes are exactly the durable ones
///     under fsync=always;
///   * a snapshot at generation G supersedes every log record at
///     generation <= G. Compact stamps the snapshot with the current log
///     generation and then rotates (tmp + rename) to a fresh G+1 log, so
///     a crash anywhere between the two renames leaves a log that Replay
///     recognizes as already-compacted and discards instead of
///     re-applying on top of the snapshot;
///   * a record whose nonzero request_id was already applied is skipped
///     on replay — a failed fsync can leave a rejected mutation's bytes
///     in the log ahead of its acknowledged retry.
///
/// Fault points: wal.open, wal.write, wal.fsync, wal.compact — each
/// injected failure surfaces as a false return with a structured error.
///
/// Threading: all members thread-safe behind one mutex; in practice every
/// writer call happens under MvccDatabase's write lock and stats() is the
/// only concurrent reader.
class Wal {
 public:
  Wal() = default;
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Creates `options.dir` if needed and opens wal.log for appending
  /// (writing the magic on a fresh/empty file). Run Replay first: Open
  /// refuses a log whose header is damaged beyond the torn-header case.
  bool Open(const WalOptions& options, std::string* error);
  void Close();
  bool is_open() const;

  /// Serializes, appends, and applies the fsync policy. False on any I/O
  /// error or injected fault — the caller must then reject the mutation
  /// (the record did not durably commit).
  bool Append(const WalRecord& record, std::string* error);

  /// Explicit fdatasync (used on graceful shutdown for kBatch).
  bool Sync(std::string* error);

  /// Durable snapshot + log rotation: writes every relation of `db` (plus
  /// the `request_ids` dedup window) into snapshot.tmp, fsyncs, renames
  /// over snapshot.dat, then rotates wal.log to a fresh, higher-generation
  /// file (also tmp + rename — never an in-place truncate, so no crash can
  /// pair the new snapshot with the records it already contains). If the
  /// rotation fails after the snapshot rename, the WAL closes itself:
  /// appends to the superseded log would be silently dropped by the next
  /// recovery, so refusing mutations (retryably) is the safe state. Caller
  /// must hold the database still (MvccDatabase::MaybeCompactWal runs it
  /// under the writer lock).
  bool Compact(const Database& db,
               const std::vector<std::uint64_t>& request_ids,
               std::string* error);

  /// Compact with additional records (e.g. kViewDef definitions) appended
  /// to the snapshot after the dedup window — durable derived state that
  /// must survive log rotation.
  bool Compact(const Database& db,
               const std::vector<std::uint64_t>& request_ids,
               const std::vector<WalRecord>& extra_records,
               std::string* error);

  /// Current wal.log size (header included); 0 when closed.
  std::uint64_t log_bytes() const;

  /// Generation of the open log (bumped by every compaction); 0 when
  /// closed.
  std::uint64_t generation() const;

  WalStats stats() const;
  const WalOptions& options() const { return options_; }

  /// Replays `dir`'s snapshot + log into `apply`, truncating any torn log
  /// tail. Safe on a missing/empty directory (clean recovery, 0 records).
  /// `apply` returning failure aborts recovery with that diagnostic —
  /// every durable record must replay cleanly or the store is rejected
  /// loudly rather than silently diverging.
  static WalRecovery Replay(
      const WalOptions& options,
      const std::function<MutationResult(const WalRecord&)>& apply);

 private:
  bool SyncLocked(std::string* error);

  mutable std::mutex mu_;
  WalOptions options_;
  int fd_ = -1;
  std::uint64_t generation_ = 0;
  std::uint64_t log_bytes_ = 0;
  std::uint64_t unsynced_bytes_ = 0;
  WalStats stats_;
};

}  // namespace qc::db

#endif  // QC_DB_WAL_H_
