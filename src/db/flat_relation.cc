#include "db/flat_relation.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "kernels/sort.h"

namespace qc::db {

FlatRelation FlatRelation::FromRows(int arity, const std::vector<Tuple>& rows) {
  FlatRelation rel(arity);
  rel.Reserve(rows.size());
  for (const auto& t : rows) rel.PushRow(t);
  return rel;
}

std::vector<Tuple> FlatRelation::ToRows() const {
  std::vector<Tuple> rows;
  rows.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    const Value* r = Row(i);
    rows.emplace_back(r, r + arity_);
  }
  return rows;
}

void FlatRelation::PushRow(const Value* row) {
  data_.insert(data_.end(), row, row + arity_);
  ++size_;
}

void FlatRelation::PushRow(const Tuple& row) {
  if (static_cast<int>(row.size()) != arity_) std::abort();
  data_.insert(data_.end(), row.begin(), row.end());
  ++size_;
}

void FlatRelation::Reserve(std::size_t rows) {
  data_.reserve(rows * static_cast<std::size_t>(arity_));
}

void FlatRelation::Clear() {
  data_.clear();
  size_ = 0;
}

void FlatRelation::SortLexAndDedup(SortPolicy policy, util::Arena* scratch) {
  if (size_ <= 1) return;
  std::vector<std::uint32_t> idx(size_);
  std::iota(idx.begin(), idx.end(), 0u);
  const int r = arity_;
  const Value* base = data_.data();
  const bool radix =
      r > 0 && (policy == SortPolicy::kRadix ||
                (policy == SortPolicy::kAuto && size_ >= kernels::kRadixMinRows));
  if (radix) {
    std::vector<std::int32_t> cols(static_cast<std::size_t>(r));
    std::iota(cols.begin(), cols.end(), 0);
    kernels::SortRowsByColumns(base, static_cast<std::size_t>(r), size_,
                               cols.data(), cols.size(), idx.data(), scratch);
  } else {
    std::sort(idx.begin(), idx.end(),
              [base, r](std::uint32_t a, std::uint32_t b) {
                const Value* pa = base + a * static_cast<std::size_t>(r);
                const Value* pb = base + b * static_cast<std::size_t>(r);
                for (int i = 0; i < r; ++i) {
                  if (pa[i] != pb[i]) return pa[i] < pb[i];
                }
                return false;
              });
  }
  std::vector<Value> sorted;
  sorted.reserve(data_.size());
  std::size_t kept = 0;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const Value* row = base + idx[i] * static_cast<std::size_t>(r);
    if (kept > 0) {
      const Value* prev = sorted.data() + (kept - 1) * static_cast<std::size_t>(r);
      if (std::equal(row, row + r, prev)) continue;
    }
    sorted.insert(sorted.end(), row, row + r);
    ++kept;
  }
  data_ = std::move(sorted);
  size_ = kept;
}

bool SortedContains(const FlatRelation& sorted, const Value* row) {
  const int r = sorted.arity();
  std::size_t lo = 0, hi = sorted.size();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    const Value* m = sorted.Row(mid);
    int cmp = 0;
    for (int i = 0; i < r; ++i) {
      if (m[i] != row[i]) {
        cmp = m[i] < row[i] ? -1 : 1;
        break;
      }
    }
    if (cmp == 0) return true;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // Arity-0 rows are all equal: present iff the relation is nonempty.
  return r == 0 && !sorted.empty();
}

void FlatRelation::ApplyPermutation(const std::vector<std::uint32_t>& perm) {
  std::vector<Value> out;
  out.reserve(data_.size());
  const int r = arity_;
  for (std::uint32_t i : perm) {
    const Value* row = data_.data() + i * static_cast<std::size_t>(r);
    out.insert(out.end(), row, row + r);
  }
  data_ = std::move(out);
  size_ = perm.size();
}

}  // namespace qc::db
