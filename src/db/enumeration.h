#ifndef QC_DB_ENUMERATION_H_
#define QC_DB_ENUMERATION_H_

#include <memory>
#include <optional>

#include "db/index_cache.h"
#include "db/joins.h"
#include "util/budget.h"

namespace qc::db {

/// Constant-delay enumeration for alpha-acyclic queries (Bagan–Durand–
/// Grandjean [13], cited in Section 8): after a linear-time semijoin
/// preprocessing pass (full Yannakakis reduction), answers are produced one
/// at a time with per-answer delay independent of the database size. The
/// hyperclique conjecture rules this out for cyclic queries — experiment
/// E16 measures exactly that contrast.
class AcyclicEnumerator {
 public:
  /// Preprocesses; fails (IsValid() == false) if the query is cyclic.
  /// `budget` (optional, not owned; must outlive the enumerator) is polled
  /// during the preprocessing pass and once per Next(): if it trips during
  /// preprocessing the enumerator comes up invalid with status() recording
  /// the cause; if it trips mid-enumeration, Next() returns nullopt early —
  /// distinguish exhaustion from a trip via status().
  ///
  /// `cache` (optional, not owned) is the shared trie-index cache: when set,
  /// preprocessing loads each atom's sorted projection from a warm cache
  /// entry (skipping the scan+sort) and probes cached key-set tries in the
  /// semijoin sweeps for pristine sides. The enumeration order and answers
  /// are bit-identical with or without it.
  ///
  /// `arena` (optional, not owned; only used during construction) backs the
  /// preprocessing scratch: sort-kernel buffers and semijoin key sorts.
  AcyclicEnumerator(const JoinQuery& query, const Database& db,
                    util::Budget* budget = nullptr,
                    IndexCache* cache = nullptr,
                    util::Arena* arena = nullptr);

  bool IsValid() const { return valid_; }

  /// kCompleted unless the budget cut the run short (then the tripped
  /// status; the answers streamed so far are a prefix of the full answer).
  util::RunStatus status() const { return status_; }

  /// Result schema (canonical attribute order).
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Next answer tuple, or nullopt when exhausted. After the preprocessing
  /// in the constructor, each call does work proportional to the query size
  /// only (index lookups on fully-reduced relations), not to the data size.
  std::optional<Tuple> Next();

  /// Restart the enumeration from the first answer.
  void Reset();

 private:
  struct Frame;
  bool Descend(std::size_t level);
  bool Advance(std::size_t level);

  bool valid_ = false;
  std::vector<std::string> attributes_;
  /// Join-tree nodes in root-first order; each holds its reduced relation,
  /// sorted by the projection onto the parent's shared attributes.
  struct TreeNode {
    int parent = -1;
    std::vector<std::string> attrs;
    std::vector<int> shared_cols;        ///< Columns shared with the parent.
    std::vector<int> parent_shared_cols; ///< Matching columns in the parent.
    /// Reduced relation in flat storage, sorted by the projection onto
    /// shared_cols and then by the full row — Descend() binary-searches the
    /// shared-key block without materializing projection keys.
    FlatRelation rows;
  };
  std::vector<TreeNode> nodes_;
  std::vector<int> order_;  ///< Root-first traversal order.
  /// Iteration state: per node, the [lo, hi) candidate range and cursor.
  struct Frame {
    int lo = 0, hi = 0, cursor = 0;
  };
  std::vector<Frame> frames_;
  /// Reusable projection-key buffer for Descend(): constant-delay Next()
  /// calls allocate nothing per answer.
  Tuple key_buf_;
  bool done_ = false;
  bool started_ = false;
  util::Budget* budget_ = nullptr;  ///< Not owned; may be null.
  util::RunStatus status_ = util::RunStatus::kCompleted;
};

}  // namespace qc::db

#endif  // QC_DB_ENUMERATION_H_
