#ifndef QC_DB_RELATIONAL_OPS_H_
#define QC_DB_RELATIONAL_OPS_H_

#include "db/database.h"

namespace qc::db {

/// Projection onto a subset of attributes (duplicates removed — set
/// semantics, consistent with the rest of the library).
JoinResult Project(const JoinResult& input,
                   const std::vector<std::string>& attributes);

/// Selection sigma_{attribute = value}.
JoinResult SelectEquals(const JoinResult& input, const std::string& attribute,
                        Value value);

/// Selection sigma_{attribute1 = attribute2}.
JoinResult SelectColumnsEqual(const JoinResult& input,
                              const std::string& attribute1,
                              const std::string& attribute2);

/// Set union (schemas must match exactly).
JoinResult Union(const JoinResult& a, const JoinResult& b);

/// Set difference a \ b (schemas must match exactly).
JoinResult Difference(const JoinResult& a, const JoinResult& b);

/// Renames an attribute.
JoinResult Rename(const JoinResult& input, const std::string& from,
                  const std::string& to);

}  // namespace qc::db

#endif  // QC_DB_RELATIONAL_OPS_H_
