#include "db/relational_ops.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

namespace qc::db {

namespace {

int ColumnOf(const JoinResult& r, const std::string& attribute) {
  auto it = std::find(r.attributes.begin(), r.attributes.end(), attribute);
  if (it == r.attributes.end()) std::abort();
  return static_cast<int>(it - r.attributes.begin());
}

}  // namespace

JoinResult Project(const JoinResult& input,
                   const std::vector<std::string>& attributes) {
  std::vector<int> cols;
  cols.reserve(attributes.size());
  for (const auto& a : attributes) cols.push_back(ColumnOf(input, a));
  JoinResult out;
  out.attributes = attributes;
  // First-occurrence dedup without a tree of heap-allocated keys: project
  // into flat storage, sort row indices, and keep the smallest original
  // index of every distinct row — emitted in original order.
  FlatRelation projected(static_cast<int>(cols.size()));
  projected.Reserve(input.tuples.size());
  Tuple buffer(cols.size());
  for (const auto& t : input.tuples) {
    for (std::size_t i = 0; i < cols.size(); ++i) buffer[i] = t[cols[i]];
    projected.PushRow(buffer.data());
  }
  std::vector<std::uint32_t> idx(projected.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::sort(idx.begin(), idx.end(),
            [&projected](std::uint32_t a, std::uint32_t b) {
              RowView ra = projected.View(a), rb = projected.View(b);
              if (ra == rb) return a < b;
              return ra < rb;
            });
  std::vector<bool> keep(projected.size(), false);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (i == 0 || !(projected.View(idx[i]) == projected.View(idx[i - 1]))) {
      keep[idx[i]] = true;
    }
  }
  for (std::size_t i = 0; i < projected.size(); ++i) {
    if (!keep[i]) continue;
    const Value* row = projected.Row(i);
    out.tuples.emplace_back(row, row + projected.arity());
  }
  return out;
}

JoinResult SelectEquals(const JoinResult& input, const std::string& attribute,
                        Value value) {
  int col = ColumnOf(input, attribute);
  JoinResult out;
  out.attributes = input.attributes;
  for (const auto& t : input.tuples) {
    if (t[col] == value) out.tuples.push_back(t);
  }
  return out;
}

JoinResult SelectColumnsEqual(const JoinResult& input,
                              const std::string& attribute1,
                              const std::string& attribute2) {
  int c1 = ColumnOf(input, attribute1);
  int c2 = ColumnOf(input, attribute2);
  JoinResult out;
  out.attributes = input.attributes;
  for (const auto& t : input.tuples) {
    if (t[c1] == t[c2]) out.tuples.push_back(t);
  }
  return out;
}

JoinResult Union(const JoinResult& a, const JoinResult& b) {
  if (a.attributes != b.attributes) std::abort();
  JoinResult out;
  out.attributes = a.attributes;
  out.tuples = a.tuples;
  out.tuples.insert(out.tuples.end(), b.tuples.begin(), b.tuples.end());
  out.Normalize();
  return out;
}

JoinResult Difference(const JoinResult& a, const JoinResult& b) {
  if (a.attributes != b.attributes) std::abort();
  FlatRelation remove = b.ToFlat();
  remove.SortLexAndDedup();
  JoinResult out;
  out.attributes = a.attributes;
  for (const auto& t : a.tuples) {
    if (!SortedContains(remove, t.data())) out.tuples.push_back(t);
  }
  out.Normalize();
  return out;
}

JoinResult Rename(const JoinResult& input, const std::string& from,
                  const std::string& to) {
  JoinResult out = input;
  out.attributes[ColumnOf(input, from)] = to;
  return out;
}

}  // namespace qc::db
