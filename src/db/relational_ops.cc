#include "db/relational_ops.h"

#include <algorithm>
#include <cstdlib>
#include <set>

namespace qc::db {

namespace {

int ColumnOf(const JoinResult& r, const std::string& attribute) {
  auto it = std::find(r.attributes.begin(), r.attributes.end(), attribute);
  if (it == r.attributes.end()) std::abort();
  return static_cast<int>(it - r.attributes.begin());
}

}  // namespace

JoinResult Project(const JoinResult& input,
                   const std::vector<std::string>& attributes) {
  std::vector<int> cols;
  cols.reserve(attributes.size());
  for (const auto& a : attributes) cols.push_back(ColumnOf(input, a));
  JoinResult out;
  out.attributes = attributes;
  std::set<Tuple> seen;
  for (const auto& t : input.tuples) {
    Tuple projected;
    projected.reserve(cols.size());
    for (int c : cols) projected.push_back(t[c]);
    if (seen.insert(projected).second) {
      out.tuples.push_back(std::move(projected));
    }
  }
  return out;
}

JoinResult SelectEquals(const JoinResult& input, const std::string& attribute,
                        Value value) {
  int col = ColumnOf(input, attribute);
  JoinResult out;
  out.attributes = input.attributes;
  for (const auto& t : input.tuples) {
    if (t[col] == value) out.tuples.push_back(t);
  }
  return out;
}

JoinResult SelectColumnsEqual(const JoinResult& input,
                              const std::string& attribute1,
                              const std::string& attribute2) {
  int c1 = ColumnOf(input, attribute1);
  int c2 = ColumnOf(input, attribute2);
  JoinResult out;
  out.attributes = input.attributes;
  for (const auto& t : input.tuples) {
    if (t[c1] == t[c2]) out.tuples.push_back(t);
  }
  return out;
}

JoinResult Union(const JoinResult& a, const JoinResult& b) {
  if (a.attributes != b.attributes) std::abort();
  JoinResult out;
  out.attributes = a.attributes;
  out.tuples = a.tuples;
  out.tuples.insert(out.tuples.end(), b.tuples.begin(), b.tuples.end());
  out.Normalize();
  return out;
}

JoinResult Difference(const JoinResult& a, const JoinResult& b) {
  if (a.attributes != b.attributes) std::abort();
  std::set<Tuple> remove(b.tuples.begin(), b.tuples.end());
  JoinResult out;
  out.attributes = a.attributes;
  for (const auto& t : a.tuples) {
    if (!remove.count(t)) out.tuples.push_back(t);
  }
  out.Normalize();
  return out;
}

JoinResult Rename(const JoinResult& input, const std::string& from,
                  const std::string& to) {
  JoinResult out = input;
  out.attributes[ColumnOf(input, from)] = to;
  return out;
}

}  // namespace qc::db
