#ifndef QC_DB_AGM_H_
#define QC_DB_AGM_H_

#include <optional>

#include "db/database.h"
#include "util/fraction.h"
#include "util/rng.h"

namespace qc::db {

/// The fractional-edge-cover analysis behind the AGM bound (Theorems
/// 3.1/3.2): the optimal cover, its weight rho*, and the optimal dual
/// (fractional vertex packing) which drives the tight-instance construction.
struct AgmAnalysis {
  util::Fraction rho_star;
  std::vector<util::Fraction> edge_weights;    ///< Per atom.
  std::vector<util::Fraction> vertex_shares;   ///< Per attribute (dual).

  /// The AGM output-size bound N^{rho*} as a double.
  double BoundForN(double n) const;
};

/// Solves both the fractional edge cover LP and its dual exactly. Returns
/// nullopt if some attribute occurs in no atom (degenerate query).
std::optional<AgmAnalysis> AnalyzeAgm(const JoinQuery& query);

/// The extremal database of Theorem 3.2. With the optimal dual shares
/// x_a = p_a / q_a and L = lcm(q_a), attribute a receives the domain
/// [0, t^{L * x_a}) and every relation is the full cross product of its
/// attributes' domains. Then every relation has at most N = t^L tuples and
/// |Q(D)| = t^{L * rho*} = N^{rho*} exactly.
///
/// Returns the database; writes N to *relation_bound if non-null.
Database AgmTightInstance(const JoinQuery& query, const AgmAnalysis& analysis,
                          int t, long long* relation_bound = nullptr);

/// Random database: each relation receives `tuples_per_relation` distinct
/// uniform tuples over [0, domain)^arity.
Database RandomDatabase(const JoinQuery& query, int tuples_per_relation,
                        Value domain, util::Rng* rng);

/// Random alpha-acyclic query: atoms are generated along a random join
/// tree (each new atom shares a random nonempty subset of a random earlier
/// atom's attributes and adds fresh ones). Relation names are "R0", "R1"...
JoinQuery RandomAcyclicQuery(int num_atoms, int max_arity, util::Rng* rng);

/// Random query with `num_atoms` binary atoms over `num_attributes`
/// attributes (may be cyclic).
JoinQuery RandomBinaryQuery(int num_atoms, int num_attributes,
                            util::Rng* rng);

}  // namespace qc::db

#endif  // QC_DB_AGM_H_
