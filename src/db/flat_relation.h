#ifndef QC_DB_FLAT_RELATION_H_
#define QC_DB_FLAT_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qc::util {
class Arena;
}  // namespace qc::util

namespace qc::db {

using Value = std::int64_t;
using Tuple = std::vector<Value>;

/// Zero-copy view of one tuple inside a FlatRelation: a pointer into the
/// contiguous column data plus the arity. Comparisons are lexicographic.
struct RowView {
  const Value* data = nullptr;
  int arity = 0;

  Value operator[](int col) const { return data[col]; }
  const Value* begin() const { return data; }
  const Value* end() const { return data + arity; }

  friend bool operator==(const RowView& a, const RowView& b) {
    if (a.arity != b.arity) return false;
    for (int i = 0; i < a.arity; ++i) {
      if (a.data[i] != b.data[i]) return false;
    }
    return true;
  }
  friend bool operator<(const RowView& a, const RowView& b) {
    const int n = a.arity < b.arity ? a.arity : b.arity;
    for (int i = 0; i < n; ++i) {
      if (a.data[i] != b.data[i]) return a.data[i] < b.data[i];
    }
    return a.arity < b.arity;
  }
};

/// Flat, arity-strided columnar tuple storage: all tuples of one relation
/// live in a single contiguous std::vector<Value>, row-major with stride
/// `arity`. This replaces the per-tuple heap allocation of
/// std::vector<std::vector<Value>> on every hot path — tuple access is a
/// pointer bump, sorting permutes indices and gathers once, and scans are
/// sequential over one allocation.
///
/// The row count is tracked explicitly so arity-0 relations (legal for
/// attribute-free atoms) behave: they hold up to one conceptually-empty row.
class FlatRelation {
 public:
  FlatRelation() = default;
  explicit FlatRelation(int arity) : arity_(arity) {}

  /// Copies row-wise tuples into flat storage. Every tuple must have size
  /// `arity`.
  static FlatRelation FromRows(int arity, const std::vector<Tuple>& rows);

  /// Materializes row-wise tuples (the legacy JoinResult boundary).
  std::vector<Tuple> ToRows() const;

  int arity() const { return arity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const Value* Row(std::size_t i) const {
    return data_.data() + i * static_cast<std::size_t>(arity_);
  }
  RowView View(std::size_t i) const { return RowView{Row(i), arity_}; }
  Value At(std::size_t row, int col) const { return Row(row)[col]; }

  /// Appends one row (copies `arity` values from `row`).
  void PushRow(const Value* row);
  void PushRow(const Tuple& row);
  void Reserve(std::size_t rows);
  void Clear();

  /// How SortLexAndDedup orders the permutation. kAuto picks the LSD radix
  /// kernel (kernels::SortRowsByColumns) above its break-even row count and
  /// comparison sort below it; both are stable and produce the identical
  /// lexicographic order, so the choice never changes results — only time.
  enum class SortPolicy { kAuto, kComparison, kRadix };

  /// Sorts rows lexicographically and removes exact duplicates. `scratch`,
  /// when non-null, supplies the radix kernel's key/index buffers so
  /// repeated sorts in one query reuse the same blocks.
  void SortLexAndDedup(SortPolicy policy = SortPolicy::kAuto,
                       util::Arena* scratch = nullptr);

  /// Reorders rows into the order given by `perm` (a permutation of
  /// [0, size())). Used to sort by arbitrary keys: sort the index vector,
  /// then gather once.
  void ApplyPermutation(const std::vector<std::uint32_t>& perm);

  /// Raw column data, row-major with stride arity().
  const std::vector<Value>& data() const { return data_; }

 private:
  int arity_ = 0;
  std::size_t size_ = 0;
  std::vector<Value> data_;
};

/// Binary-searches a lexicographically sorted relation for an exact row
/// (`row` points at arity() values). The flat membership primitive behind
/// semijoins and set difference — no per-probe key allocation.
bool SortedContains(const FlatRelation& sorted, const Value* row);

}  // namespace qc::db

#endif  // QC_DB_FLAT_RELATION_H_
