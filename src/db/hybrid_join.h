#ifndef QC_DB_HYBRID_JOIN_H_
#define QC_DB_HYBRID_JOIN_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/context.h"
#include "db/database.h"
#include "graph/boolmatrix.h"
#include "util/budget.h"

namespace qc::db {

/// Small join patterns the degree-split hybrid planner recognizes: every
/// atom must be binary over two distinct attributes, no attribute pair may
/// repeat, and the pair graph must be one of the shapes below (the cyclic
/// core of Fan–Koutris's fine-grained taxonomy, where the MM route of
/// Abo Khamis–Hu–Suciu beats the submodular-width bound on skewed inputs).
/// Everything else is kNone and stays with the caller's usual engine.
enum class HybridPattern {
  kNone = 0,
  kTriangle,    ///< 3 attributes, all 3 pairs.
  kFourCycle,   ///< 4 attributes, 4 pairs forming a cycle.
  kFourClique,  ///< 4 attributes, all 6 pairs.
  kFiveClique,  ///< 5 attributes, all 10 pairs.
};

std::string ToString(HybridPattern pattern);

/// Classifies `query`, returning kNone when the planner does not apply.
/// Purely structural and cheap — safe to call on every routed query.
HybridPattern DetectHybridPattern(const JoinQuery& query);

/// What the planner decided and how much each phase saw. Surfaced as the
/// RunReport "planner" section and the "hybrid.*" counters.
struct HybridPlan {
  HybridPattern pattern = HybridPattern::kNone;
  std::int64_t threshold = 0;         ///< Resolved degree threshold Δ.
  bool threshold_overridden = false;  ///< Δ came from the caller, not √N.
  std::uint64_t heavy_values = 0;     ///< Heavy (attribute, value) pairs.
  std::uint64_t heavy_tuples = 0;     ///< Atom tuples with both ends heavy.
  std::uint64_t light_tuples = 0;     ///< Atom tuples across light residuals.
  std::uint64_t heavy_rows = 0;       ///< Result rows from the heavy phase.
  std::uint64_t light_rows = 0;       ///< Result rows from the light phase.
  /// True when no value was heavy: the whole run was one pure GenericJoin
  /// over the original instance (the all-light fast path).
  bool delegated = false;
};

/// Degree-splitting hybrid MM/WCOJ join (DESIGN.md §15).
///
/// A value is HEAVY for attribute X iff some atom column holding X contains
/// it more than Δ times (Δ defaults to max(1, √N) over the largest atom —
/// the AGM-style balance point — and the same `deg > Δ` predicate is used
/// everywhere, so Δ-boundary values are always light, exactly like the AYZ
/// triangle split in graph/triangles.cc). Result tuples are partitioned by
/// their first light attribute: residual i (all attributes before i heavy,
/// attribute i light) is evaluated by the trie/leapfrog GenericJoin over
/// filtered copies of the atoms, and the all-heavy core is evaluated on
/// bit-packed BoolMatrix rows — a blocked Boolean product over the kernels'
/// word-OR path prunes the candidate pairs, then word-AND row intersections
/// enumerate witnesses. The parts are disjoint by construction, so Count
/// sums them and Evaluate's final sort+dedup merge reproduces GenericJoin's
/// output bit-identically at any thread count and any QC_SIMD level.
///
/// Cache seam: the light residuals are materialized into fresh sub-relations
/// with planner-private names and freshly stamped versions, and their
/// sub-evaluations run with ctx.index_cache detached — partition tries never
/// alias the parent relation's version-keyed IndexCache entries (and never
/// pollute the shared cache with single-use partitions). Only the delegated
/// all-light fast path, which evaluates the *original* atoms, uses the
/// shared cache.
///
/// Budget: both phases observe the budget resolved from `ctx` (the light
/// residuals through GenericJoin's per-node poll, the heavy phase per MM
/// row, per candidate tuple, and per emitted row). Partial-result semantics
/// on a trip: Evaluate returns a subset of the answer with
/// `truncated = true` — unlike pure GenericJoin the subset is NOT a
/// lexicographic prefix, because phases complete in partition order, not
/// output order. Count returns a partial undercount; IsEmpty's "empty" is
/// only trustworthy when status() == kCompleted.
///
/// `query` and `db` must outlive the planner (the delegated fast path
/// re-reads them at evaluation time).
class HybridJoin {
 public:
  HybridJoin(const JoinQuery& query, const Database& db,
             const ExecutionContext& ctx = ExecutionContext(),
             std::int64_t delta = 0);

  /// False when the query is not one of the supported patterns; every
  /// evaluation entry point then returns an empty/zero result — callers
  /// check applicable() first (core::EvaluateQueryAuto does).
  bool applicable() const { return plan_.pattern != HybridPattern::kNone; }

  /// Auto-mode profitability: the pattern applies, some values are heavy,
  /// and the heavy core is dense enough (average heavy degree clears the
  /// word-parallel break-even) that the MM route should beat running the
  /// whole instance through the trie engine.
  bool ProfitableUnderAuto() const;

  JoinResult Evaluate();
  std::uint64_t Count();
  bool IsEmpty();

  const HybridPlan& plan() const { return plan_; }
  util::RunStatus status() const { return run_status_; }
  const std::vector<std::string>& attribute_order() const {
    return attribute_order_;
  }

 private:
  enum class Mode { kEvaluate, kCount, kIsEmpty };

  /// One atom projected onto its (sorted-by-global-index) attribute pair.
  struct PatternAtom {
    int u = 0;           ///< Smaller global attribute index.
    int v = 0;           ///< Larger global attribute index.
    FlatRelation rows;   ///< Sorted deduped projection, columns (u, v).
    /// Heavy-restricted tuples as dense (H_u, H_v) index pairs, row order.
    std::vector<std::pair<int, int>> heavy_pairs;
    graph::BoolMatrix fwd;  ///< |H_u| x |H_v| heavy bi-adjacency.
    graph::BoolMatrix rev;  ///< Transpose of fwd.
  };

  /// Heavy value domain of one attribute.
  struct HeavyDomain {
    std::vector<Value> values;             ///< Sorted heavy values.
    std::unordered_map<Value, int> index;  ///< value -> dense id.
    bool IsHeavy(Value value) const { return index.count(value) != 0; }
  };

  /// One light residual: a private sub-database (planner-named relations,
  /// fresh versions) plus the restricted query over it.
  struct LightPart {
    Database db;
    JoinQuery query;
    bool has_empty_atom = false;  ///< Some restriction emptied an atom.
  };

  void BuildPartition(const Database& db, std::int64_t delta_override);
  /// Builds the light residual sub-instances on first use (RunLight).
  void EnsureLightParts();
  /// Oriented heavy matrix for ordered attribute pair (i, j): rows over
  /// H_i, columns over H_j. The pair must be an atom of the pattern.
  const graph::BoolMatrix& Mat(int i, int j) const;
  const PatternAtom& AtomOf(int i, int j) const;

  /// Runs one full evaluation; exactly one of out/count/found is used,
  /// matching `mode`.
  void RunLight(Mode mode, std::vector<Tuple>* out, std::uint64_t* count,
                bool* found);
  void RunHeavy(Mode mode, std::vector<Tuple>* out, std::uint64_t* count,
                bool* found);
  void HeavyTriangle(Mode mode, std::vector<Tuple>* out, std::uint64_t* count,
                     bool* found);
  void HeavyFourCycle(Mode mode, std::vector<Tuple>* out, std::uint64_t* count,
                      bool* found);
  void HeavyClique(Mode mode, std::vector<Tuple>* out, std::uint64_t* count,
                   bool* found);

  bool Stopped() const { return budget_ != nullptr && budget_->Stopped(); }

  const JoinQuery& query_;
  const Database& db_;
  ExecutionContext ctx_;
  std::shared_ptr<util::Budget> budget_;
  std::vector<std::string> attribute_order_;
  HybridPlan plan_;
  util::RunStatus run_status_ = util::RunStatus::kCompleted;

  std::vector<PatternAtom> atoms_;
  std::vector<HeavyDomain> heavy_;       ///< One per global attribute.
  std::vector<LightPart> light_parts_;   ///< One per global attribute.
  std::array<int, 4> cycle_{};           ///< 4-cycle attr order (c0..c3).
};

}  // namespace qc::db

#endif  // QC_DB_HYBRID_JOIN_H_
