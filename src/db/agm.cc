#include "db/agm.h"

#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>

#include "util/lp.h"

namespace qc::db {

double AgmAnalysis::BoundForN(double n) const {
  return std::pow(n, rho_star.ToDouble());
}

std::optional<AgmAnalysis> AnalyzeAgm(const JoinQuery& query) {
  graph::Hypergraph h = query.Hypergraph();
  auto cover = graph::FractionalEdgeCoverNumber(h);
  if (!cover.has_value()) return std::nullopt;

  // Dual: maximize sum_v x_v subject to sum_{v in e} x_v <= 1.
  util::LpProblem dual;
  dual.num_vars = h.num_vertices();
  dual.objective.assign(dual.num_vars, util::Fraction(1));
  for (int e = 0; e < h.num_edges(); ++e) {
    std::vector<util::Fraction> row(dual.num_vars, util::Fraction(0));
    for (int v : h.Edge(e)) row[v] = util::Fraction(1);
    dual.AddRow(std::move(row), util::LpProblem::Sense::kLe,
                util::Fraction(1));
  }
  util::LpSolution dual_sol = util::MaximizeLp(dual);
  if (dual_sol.status != util::LpSolution::Status::kOptimal) {
    return std::nullopt;
  }
  // Strong duality check: the exact optima must coincide.
  if (!(dual_sol.objective == cover->total)) std::abort();

  AgmAnalysis analysis;
  analysis.rho_star = cover->total;
  analysis.edge_weights = std::move(cover->weight);
  analysis.vertex_shares = std::move(dual_sol.x);
  return analysis;
}

Database AgmTightInstance(const JoinQuery& query, const AgmAnalysis& analysis,
                          int t, long long* relation_bound) {
  graph::Hypergraph h = query.Hypergraph();
  // L = lcm of the share denominators.
  long long lcm = 1;
  for (const auto& share : analysis.vertex_shares) {
    lcm = std::lcm(lcm, share.den());
  }
  // Domain size per attribute: t^(L * x_a).
  std::vector<long long> domain(h.num_vertices(), 1);
  for (int v = 0; v < h.num_vertices(); ++v) {
    long long exponent =
        (lcm / analysis.vertex_shares[v].den()) * analysis.vertex_shares[v].num();
    long long size = 1;
    for (long long i = 0; i < exponent; ++i) {
      size *= t;
      if (size > (1LL << 40)) std::abort();  // Instance would be absurd.
    }
    domain[v] = size;
  }
  if (relation_bound != nullptr) {
    long long n = 1;
    for (long long i = 0; i < lcm; ++i) n *= t;
    *relation_bound = n;
  }

  Database db;
  std::map<std::string, int> index = query.AttributeIndex();
  for (const auto& atom : query.atoms) {
    // Full cross product of the attribute domains.
    std::vector<long long> sizes;
    sizes.reserve(atom.attributes.size());
    for (const auto& a : atom.attributes) sizes.push_back(domain[index[a]]);
    std::vector<Tuple> tuples;
    std::vector<long long> odo(sizes.size(), 0);
    while (true) {
      tuples.emplace_back(odo.begin(), odo.end());
      std::size_t i = 0;
      while (i < odo.size() && ++odo[i] == sizes[i]) {
        odo[i] = 0;
        ++i;
      }
      if (i == odo.size()) break;
    }
    // Self-joins of the same relation name must agree; the construction
    // gives every atom of the same relation the same content only if the
    // attribute shares match, so just overwrite (identical by symmetry when
    // arities match; otherwise the query was malformed).
    db.SetRelation(atom.relation, static_cast<int>(atom.attributes.size()),
                   std::move(tuples));
  }
  return db;
}

JoinQuery RandomAcyclicQuery(int num_atoms, int max_arity, util::Rng* rng) {
  JoinQuery q;
  auto attr_name = [](int i) { return "v" + std::to_string(i); };
  int next_attr = 0;
  std::vector<std::vector<std::string>> schemas;
  for (int i = 0; i < num_atoms; ++i) {
    std::vector<std::string> attrs;
    if (i == 0) {
      int arity = 1 + static_cast<int>(rng->NextBounded(max_arity));
      for (int j = 0; j < arity; ++j) attrs.push_back(attr_name(next_attr++));
    } else {
      // Connect to a random earlier atom via a random nonempty subset of
      // its attributes (keeps the GYO join tree property), then add fresh
      // attributes up to the arity budget.
      const auto& parent = schemas[rng->NextBounded(schemas.size())];
      int shared = 1 + static_cast<int>(rng->NextBounded(parent.size()));
      std::vector<int> picks =
          rng->Sample(static_cast<int>(parent.size()), shared);
      for (int p : picks) attrs.push_back(parent[p]);
      int fresh = static_cast<int>(
          rng->NextBounded(std::max(1, max_arity - shared) + 1));
      for (int j = 0; j < fresh; ++j) attrs.push_back(attr_name(next_attr++));
    }
    schemas.push_back(attrs);
    q.Add("R" + std::to_string(i), std::move(attrs));
  }
  return q;
}

JoinQuery RandomBinaryQuery(int num_atoms, int num_attributes,
                            util::Rng* rng) {
  JoinQuery q;
  for (int i = 0; i < num_atoms; ++i) {
    int a = static_cast<int>(rng->NextBounded(num_attributes));
    int b = static_cast<int>(rng->NextBounded(num_attributes));
    while (b == a) b = static_cast<int>(rng->NextBounded(num_attributes));
    q.Add("R" + std::to_string(i),
          {"v" + std::to_string(a), "v" + std::to_string(b)});
  }
  return q;
}

Database RandomDatabase(const JoinQuery& query, int tuples_per_relation,
                        Value domain, util::Rng* rng) {
  Database db;
  for (const auto& atom : query.atoms) {
    if (db.HasRelation(atom.relation)) continue;  // Self-join reuse.
    int arity = static_cast<int>(atom.attributes.size());
    std::set<Tuple> tuples;
    // Distinct tuples; bail out gracefully if the space is too small.
    long long space = 1;
    bool small = false;
    for (int i = 0; i < arity; ++i) {
      space *= domain;
      if (space >= tuples_per_relation * 4LL) break;
      if (i == arity - 1 && space < tuples_per_relation) small = true;
    }
    int want = small ? static_cast<int>(space) : tuples_per_relation;
    while (static_cast<int>(tuples.size()) < want) {
      Tuple t(arity);
      for (auto& v : t) v = rng->NextInt(0, domain - 1);
      tuples.insert(std::move(t));
    }
    db.SetRelation(atom.relation, arity,
                   std::vector<Tuple>(tuples.begin(), tuples.end()));
  }
  return db;
}

}  // namespace qc::db
