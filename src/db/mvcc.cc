#include "db/mvcc.h"

#include <map>
#include <utility>

namespace qc::db {

void MvccDatabase::AttachWal(Wal* wal) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_ = wal;
}

void MvccDatabase::AttachViews(ViewRegistry* views) {
  std::lock_guard<std::mutex> lock(mu_);
  views_ = views;
}

bool MvccDatabase::ViewsActiveLocked() const {
  return views_ != nullptr && !views_->empty();
}

void MvccDatabase::NotifyViewsLocked(
    const std::vector<RelationDelta>& deltas) {
  if (views_ == nullptr || deltas.empty()) return;
  views_->OnCommit(db_, epoch_, deltas);
}

std::map<std::string, std::pair<std::uint64_t, std::size_t>>
MvccDatabase::RelationFingerprintsLocked() const {
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> out;
  for (const std::string& name : db_.RelationNames()) {
    out[name] = {db_.RelationVersion(name), db_.NumTuples(name)};
  }
  return out;
}

MutationResult MvccDatabase::RegisterView(const ViewDefinition& def) {
  std::lock_guard<std::mutex> lock(mu_);
  if (views_ == nullptr) {
    return MutationResult::Fail("no view registry attached");
  }
  MutationResult valid = views_->Validate(def, db_);
  if (!valid) return valid;
  // Log-before-register, like every durable mutation: a WAL rejection
  // means the definition would not survive a restart, so it is refused
  // outright rather than registered volatile.
  MutationResult out = MutationResult::Ok();
  if (wal_ != nullptr && !LogLocked(ViewDefinitionRecord(def), &out)) {
    return out;
  }
  return views_->Register(def, db_, epoch_);
}

void MvccDatabase::TouchLocked() {
  ++epoch_;
  ++stats_.mutations;
  cached_.reset();  // The next Snapshot() re-clones at the new epoch.
}

bool MvccDatabase::LogLocked(const WalRecord& record, MutationResult* out) {
  if (wal_ == nullptr) return true;
  std::string error;
  if (!wal_->Append(record, &error)) {
    ++stats_.wal_rejections;
    *out = MutationResult::Fail("wal append failed: " + error);
    return false;
  }
  return true;
}

MutationResult MvccDatabase::SetRelation(const std::string& name, int arity,
                                         std::vector<Tuple> tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  // Validate (cheaply, before logging): SetRelation only fails on an arity
  // mismatch inside the batch.
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (static_cast<int>(tuples[i].size()) != arity) {
      return MutationResult::Fail(
          "relation " + name + ": tuple " + std::to_string(i) +
          " has arity " + std::to_string(tuples[i].size()) + ", expected " +
          std::to_string(arity));
    }
  }
  MutationResult out = MutationResult::Ok();
  if (wal_ != nullptr) {
    WalRecord record;
    record.kind = WalRecord::Kind::kSetRelation;
    record.relation = name;
    record.arity = arity;
    record.tuples = tuples;  // Copy: the db takes the originals below.
    if (!LogLocked(record, &out)) return out;
  }
  const std::size_t old_size =
      db_.HasRelation(name) ? db_.NumTuples(name) : 0;
  MutationResult r = db_.SetRelation(name, arity, std::move(tuples));
  if (r) {
    TouchLocked();
    NotifyViewsLocked(
        {{name, RelationDelta::Kind::kReplace, old_size}});
  }
  return r;
}

MutationResult MvccDatabase::SetRelation(const std::string& name,
                                         FlatRelation relation) {
  std::lock_guard<std::mutex> lock(mu_);
  MutationResult out = MutationResult::Ok();
  if (wal_ != nullptr) {
    WalRecord record;
    record.kind = WalRecord::Kind::kSetRelation;
    record.relation = name;
    record.arity = relation.arity();
    record.tuples.reserve(relation.size());
    for (std::size_t i = 0; i < relation.size(); ++i) {
      const Value* row = relation.Row(i);
      record.tuples.emplace_back(row, row + relation.arity());
    }
    if (!LogLocked(record, &out)) return out;
  }
  const std::size_t old_size =
      db_.HasRelation(name) ? db_.NumTuples(name) : 0;
  MutationResult r = db_.SetRelation(name, std::move(relation));
  if (r) {
    TouchLocked();
    NotifyViewsLocked(
        {{name, RelationDelta::Kind::kReplace, old_size}});
  }
  return r;
}

MutationResult MvccDatabase::AddTuple(const std::string& name, Tuple tuple) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ != nullptr) {
    // Validate first so that a logged record is guaranteed to apply.
    if (!db_.HasRelation(name)) {
      return MutationResult::Fail("no such relation " + name);
    }
    if (static_cast<int>(tuple.size()) != db_.Arity(name)) {
      return MutationResult::Fail(
          "relation " + name + ": tuple has arity " +
          std::to_string(tuple.size()) + ", expected " +
          std::to_string(db_.Arity(name)));
    }
    WalRecord record;
    record.kind = WalRecord::Kind::kAddTuples;
    record.relation = name;
    record.arity = static_cast<int>(tuple.size());
    record.tuples.push_back(tuple);
    MutationResult out = MutationResult::Ok();
    if (!LogLocked(record, &out)) return out;
  }
  const std::size_t old_size =
      db_.HasRelation(name) ? db_.NumTuples(name) : 0;
  MutationResult r = db_.AddTuple(name, std::move(tuple));
  if (r) {
    TouchLocked();
    NotifyViewsLocked({{name, RelationDelta::Kind::kAppend, old_size}});
  }
  return r;
}

MutationResult MvccDatabase::AddTuples(const std::string& name,
                                       std::vector<Tuple> tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!db_.HasRelation(name)) {
    return MutationResult::Fail("no such relation " + name);
  }
  const int arity = db_.Arity(name);
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (static_cast<int>(tuples[i].size()) != arity) {
      return MutationResult::Fail(
          "relation " + name + ": batch tuple " + std::to_string(i) +
          " has arity " + std::to_string(tuples[i].size()) + ", expected " +
          std::to_string(arity));
    }
  }
  // An empty batch is a validated no-op: logging a zero-tuple record and
  // bumping the epoch would invalidate the cached reader snapshot (and
  // every version-keyed cache above it) for a write that changed nothing.
  if (tuples.empty()) return MutationResult::Ok();
  if (wal_ != nullptr) {
    WalRecord record;
    record.kind = WalRecord::Kind::kAddTuples;
    record.relation = name;
    record.arity = arity;
    record.tuples = tuples;
    MutationResult out = MutationResult::Ok();
    if (!LogLocked(record, &out)) return out;
  }
  const std::size_t old_size = db_.NumTuples(name);
  for (auto& t : tuples) {
    MutationResult r = db_.AddTuple(name, std::move(t));
    if (!r) return r;  // Unreachable after validation; kept for safety.
  }
  TouchLocked();
  NotifyViewsLocked({{name, RelationDelta::Kind::kAppend, old_size}});
  return MutationResult::Ok();
}

MutationResult MvccDatabase::Mutate(
    const std::function<MutationResult(Database&)>& fn) {
  // An empty kDataset record is the "nothing to log" sentinel — plain
  // Mutate offers transactional semantics but no durable replay record
  // (callers that need durability use MutateLogged or the structured ops).
  WalRecord unlogged;
  unlogged.kind = WalRecord::Kind::kDataset;
  return MutateLogged(unlogged, fn);
}

MutationResult MvccDatabase::MutateLogged(
    const WalRecord& record,
    const std::function<MutationResult(Database&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  // Stage on a copy-on-write clone: a failing lambda (or a WAL rejection)
  // rolls back by simply dropping the clone — the live database and the
  // epoch never see the partial work. The clone is O(#relations) pointer
  // copies; only relations `fn` actually mutates get copied.
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> pre;
  if (ViewsActiveLocked()) pre = RelationFingerprintsLocked();
  Database staged = db_.Clone();
  MutationResult r = fn(staged);
  if (!r) return r;
  // Log after `fn` succeeded but before publishing: an acknowledged
  // mutation is exactly one that is durable AND applied. Kind kDataset
  // with empty text (the default record) carries no replay work; skip it.
  const bool loggable = record.kind != WalRecord::Kind::kDataset ||
                        !record.dataset.empty();
  if (loggable && !LogLocked(record, &r)) return r;
  db_ = std::move(staged);
  TouchLocked();
  if (views_ != nullptr && !pre.empty()) {
    // `fn` is arbitrary: a changed version means anything could have
    // happened to that relation, so classify conservatively as a replace.
    // Brand-new relations are appends from row 0 (trivially exact).
    std::vector<RelationDelta> deltas;
    for (const std::string& name : db_.RelationNames()) {
      auto it = pre.find(name);
      if (it == pre.end()) {
        deltas.push_back({name, RelationDelta::Kind::kAppend, 0});
      } else if (db_.RelationVersion(name) != it->second.first) {
        deltas.push_back(
            {name, RelationDelta::Kind::kReplace, it->second.second});
      }
    }
    NotifyViewsLocked(deltas);
  } else if (views_ != nullptr && ViewsActiveLocked()) {
    // A view registered concurrently is impossible (registration holds
    // mu_); pre being empty with active views means the database had no
    // relations before, so everything is new.
    std::vector<RelationDelta> deltas;
    for (const std::string& name : db_.RelationNames()) {
      deltas.push_back({name, RelationDelta::Kind::kAppend, 0});
    }
    NotifyViewsLocked(deltas);
  }
  return r;
}

MutationResult MvccDatabase::MutateLoggedInPlace(
    const WalRecord& record,
    const std::function<MutationResult(const Database&)>& validate,
    const std::function<MutationResult(Database&)>& apply) {
  std::lock_guard<std::mutex> lock(mu_);
  MutationResult r = validate(db_);
  if (!r) return r;
  // Log-before-apply, same as the structured ops: a WAL rejection leaves
  // the database and the epoch untouched. An empty kDataset record is the
  // "nothing to log" sentinel, as in MutateLogged.
  const bool loggable = record.kind != WalRecord::Kind::kDataset ||
                        !record.dataset.empty();
  if (loggable && !LogLocked(record, &r)) return r;
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> pre;
  const bool views_active = ViewsActiveLocked();
  if (views_active) pre = RelationFingerprintsLocked();
  r = apply(db_);
  // Touch even on (contract-breaking) apply failure: the database may be
  // part-mutated, and a stale cached snapshot would hide that from readers.
  TouchLocked();
  if (views_active) {
    // Create-or-append contract (see mvcc.h): a changed existing relation
    // that did not shrink was appended to; shrinkage is defensively a
    // replace. Runs even on a failed apply — the database may be
    // part-mutated and the views must chase whatever state readers see.
    std::vector<RelationDelta> deltas;
    for (const std::string& name : db_.RelationNames()) {
      auto it = pre.find(name);
      if (it == pre.end()) {
        deltas.push_back({name, RelationDelta::Kind::kAppend, 0});
      } else if (db_.RelationVersion(name) != it->second.first) {
        const std::size_t old_size = it->second.second;
        deltas.push_back({name,
                          db_.NumTuples(name) >= old_size
                              ? RelationDelta::Kind::kAppend
                              : RelationDelta::Kind::kReplace,
                          old_size});
      }
    }
    NotifyViewsLocked(deltas);
  }
  return r;
}

MutationResult MvccDatabase::CompactWal(
    const std::vector<std::uint64_t>& request_ids) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return MutationResult::Ok();
  std::vector<WalRecord> extras;
  if (views_ != nullptr) extras = views_->DefinitionRecords();
  std::string error;
  if (!wal_->Compact(db_, request_ids, extras, &error)) {
    return MutationResult::Fail("wal compaction failed: " + error);
  }
  return MutationResult::Ok();
}

bool MvccDatabase::MaybeCompactWal(
    const std::vector<std::uint64_t>& request_ids, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return false;
  const std::uint64_t threshold = wal_->options().compact_bytes;
  if (threshold == 0 || wal_->log_bytes() < threshold) return false;
  std::vector<WalRecord> extras;
  if (views_ != nullptr) extras = views_->DefinitionRecords();
  std::string local;
  if (!wal_->Compact(db_, request_ids, extras, &local)) {
    if (error != nullptr) *error = local;
    return false;
  }
  return true;
}

MvccSnapshot MvccDatabase::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.snapshots;
  if (cached_ == nullptr || cached_epoch_ != epoch_) {
    cached_ = std::make_shared<const Database>(db_.Clone());
    cached_epoch_ = epoch_;
    ++stats_.snapshot_builds;
  }
  return MvccSnapshot{cached_, epoch_};
}

std::uint64_t MvccDatabase::Epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

MvccStats MvccDatabase::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MvccDatabase::ExportCounters(util::Counters* sink) const {
  MvccStats s = stats();
  sink->Add("mvcc.mutations", s.mutations);
  sink->Add("mvcc.snapshots", s.snapshots);
  sink->Add("mvcc.snapshot_builds", s.snapshot_builds);
  sink->Add("mvcc.wal_rejections", s.wal_rejections);
}

}  // namespace qc::db
