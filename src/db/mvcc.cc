#include "db/mvcc.h"

#include <utility>

namespace qc::db {

void MvccDatabase::AttachWal(Wal* wal) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_ = wal;
}

void MvccDatabase::TouchLocked() {
  ++epoch_;
  ++stats_.mutations;
  cached_.reset();  // The next Snapshot() re-clones at the new epoch.
}

bool MvccDatabase::LogLocked(const WalRecord& record, MutationResult* out) {
  if (wal_ == nullptr) return true;
  std::string error;
  if (!wal_->Append(record, &error)) {
    ++stats_.wal_rejections;
    *out = MutationResult::Fail("wal append failed: " + error);
    return false;
  }
  return true;
}

MutationResult MvccDatabase::SetRelation(const std::string& name, int arity,
                                         std::vector<Tuple> tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  // Validate (cheaply, before logging): SetRelation only fails on an arity
  // mismatch inside the batch.
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (static_cast<int>(tuples[i].size()) != arity) {
      return MutationResult::Fail(
          "relation " + name + ": tuple " + std::to_string(i) +
          " has arity " + std::to_string(tuples[i].size()) + ", expected " +
          std::to_string(arity));
    }
  }
  MutationResult out = MutationResult::Ok();
  if (wal_ != nullptr) {
    WalRecord record;
    record.kind = WalRecord::Kind::kSetRelation;
    record.relation = name;
    record.arity = arity;
    record.tuples = tuples;  // Copy: the db takes the originals below.
    if (!LogLocked(record, &out)) return out;
  }
  MutationResult r = db_.SetRelation(name, arity, std::move(tuples));
  if (r) TouchLocked();
  return r;
}

MutationResult MvccDatabase::SetRelation(const std::string& name,
                                         FlatRelation relation) {
  std::lock_guard<std::mutex> lock(mu_);
  MutationResult out = MutationResult::Ok();
  if (wal_ != nullptr) {
    WalRecord record;
    record.kind = WalRecord::Kind::kSetRelation;
    record.relation = name;
    record.arity = relation.arity();
    record.tuples.reserve(relation.size());
    for (std::size_t i = 0; i < relation.size(); ++i) {
      const Value* row = relation.Row(i);
      record.tuples.emplace_back(row, row + relation.arity());
    }
    if (!LogLocked(record, &out)) return out;
  }
  MutationResult r = db_.SetRelation(name, std::move(relation));
  if (r) TouchLocked();
  return r;
}

MutationResult MvccDatabase::AddTuple(const std::string& name, Tuple tuple) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ != nullptr) {
    // Validate first so that a logged record is guaranteed to apply.
    if (!db_.HasRelation(name)) {
      return MutationResult::Fail("no such relation " + name);
    }
    if (static_cast<int>(tuple.size()) != db_.Arity(name)) {
      return MutationResult::Fail(
          "relation " + name + ": tuple has arity " +
          std::to_string(tuple.size()) + ", expected " +
          std::to_string(db_.Arity(name)));
    }
    WalRecord record;
    record.kind = WalRecord::Kind::kAddTuples;
    record.relation = name;
    record.arity = static_cast<int>(tuple.size());
    record.tuples.push_back(tuple);
    MutationResult out = MutationResult::Ok();
    if (!LogLocked(record, &out)) return out;
  }
  MutationResult r = db_.AddTuple(name, std::move(tuple));
  if (r) TouchLocked();
  return r;
}

MutationResult MvccDatabase::AddTuples(const std::string& name,
                                       std::vector<Tuple> tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!db_.HasRelation(name)) {
    return MutationResult::Fail("no such relation " + name);
  }
  const int arity = db_.Arity(name);
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (static_cast<int>(tuples[i].size()) != arity) {
      return MutationResult::Fail(
          "relation " + name + ": batch tuple " + std::to_string(i) +
          " has arity " + std::to_string(tuples[i].size()) + ", expected " +
          std::to_string(arity));
    }
  }
  if (wal_ != nullptr) {
    WalRecord record;
    record.kind = WalRecord::Kind::kAddTuples;
    record.relation = name;
    record.arity = arity;
    record.tuples = tuples;
    MutationResult out = MutationResult::Ok();
    if (!LogLocked(record, &out)) return out;
  }
  for (auto& t : tuples) {
    MutationResult r = db_.AddTuple(name, std::move(t));
    if (!r) return r;  // Unreachable after validation; kept for safety.
  }
  TouchLocked();
  return MutationResult::Ok();
}

MutationResult MvccDatabase::Mutate(
    const std::function<MutationResult(Database&)>& fn) {
  // An empty kDataset record is the "nothing to log" sentinel — plain
  // Mutate offers transactional semantics but no durable replay record
  // (callers that need durability use MutateLogged or the structured ops).
  WalRecord unlogged;
  unlogged.kind = WalRecord::Kind::kDataset;
  return MutateLogged(unlogged, fn);
}

MutationResult MvccDatabase::MutateLogged(
    const WalRecord& record,
    const std::function<MutationResult(Database&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  // Stage on a copy-on-write clone: a failing lambda (or a WAL rejection)
  // rolls back by simply dropping the clone — the live database and the
  // epoch never see the partial work. The clone is O(#relations) pointer
  // copies; only relations `fn` actually mutates get copied.
  Database staged = db_.Clone();
  MutationResult r = fn(staged);
  if (!r) return r;
  // Log after `fn` succeeded but before publishing: an acknowledged
  // mutation is exactly one that is durable AND applied. Kind kDataset
  // with empty text (the default record) carries no replay work; skip it.
  const bool loggable = record.kind != WalRecord::Kind::kDataset ||
                        !record.dataset.empty();
  if (loggable && !LogLocked(record, &r)) return r;
  db_ = std::move(staged);
  TouchLocked();
  return r;
}

MutationResult MvccDatabase::MutateLoggedInPlace(
    const WalRecord& record,
    const std::function<MutationResult(const Database&)>& validate,
    const std::function<MutationResult(Database&)>& apply) {
  std::lock_guard<std::mutex> lock(mu_);
  MutationResult r = validate(db_);
  if (!r) return r;
  // Log-before-apply, same as the structured ops: a WAL rejection leaves
  // the database and the epoch untouched. An empty kDataset record is the
  // "nothing to log" sentinel, as in MutateLogged.
  const bool loggable = record.kind != WalRecord::Kind::kDataset ||
                        !record.dataset.empty();
  if (loggable && !LogLocked(record, &r)) return r;
  r = apply(db_);
  // Touch even on (contract-breaking) apply failure: the database may be
  // part-mutated, and a stale cached snapshot would hide that from readers.
  TouchLocked();
  return r;
}

MutationResult MvccDatabase::CompactWal(
    const std::vector<std::uint64_t>& request_ids) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return MutationResult::Ok();
  std::string error;
  if (!wal_->Compact(db_, request_ids, &error)) {
    return MutationResult::Fail("wal compaction failed: " + error);
  }
  return MutationResult::Ok();
}

bool MvccDatabase::MaybeCompactWal(
    const std::vector<std::uint64_t>& request_ids, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return false;
  const std::uint64_t threshold = wal_->options().compact_bytes;
  if (threshold == 0 || wal_->log_bytes() < threshold) return false;
  std::string local;
  if (!wal_->Compact(db_, request_ids, &local)) {
    if (error != nullptr) *error = local;
    return false;
  }
  return true;
}

MvccSnapshot MvccDatabase::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.snapshots;
  if (cached_ == nullptr || cached_epoch_ != epoch_) {
    cached_ = std::make_shared<const Database>(db_.Clone());
    cached_epoch_ = epoch_;
    ++stats_.snapshot_builds;
  }
  return MvccSnapshot{cached_, epoch_};
}

std::uint64_t MvccDatabase::Epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

MvccStats MvccDatabase::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MvccDatabase::ExportCounters(util::Counters* sink) const {
  MvccStats s = stats();
  sink->Add("mvcc.mutations", s.mutations);
  sink->Add("mvcc.snapshots", s.snapshots);
  sink->Add("mvcc.snapshot_builds", s.snapshot_builds);
  sink->Add("mvcc.wal_rejections", s.wal_rejections);
}

}  // namespace qc::db
