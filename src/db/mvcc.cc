#include "db/mvcc.h"

namespace qc::db {

void MvccDatabase::TouchLocked() {
  ++epoch_;
  ++stats_.mutations;
  cached_.reset();  // The next Snapshot() re-clones at the new epoch.
}

MutationResult MvccDatabase::SetRelation(const std::string& name, int arity,
                                         std::vector<Tuple> tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  MutationResult r = db_.SetRelation(name, arity, std::move(tuples));
  if (r) TouchLocked();
  return r;
}

MutationResult MvccDatabase::SetRelation(const std::string& name,
                                         FlatRelation relation) {
  std::lock_guard<std::mutex> lock(mu_);
  MutationResult r = db_.SetRelation(name, std::move(relation));
  if (r) TouchLocked();
  return r;
}

MutationResult MvccDatabase::AddTuple(const std::string& name, Tuple tuple) {
  std::lock_guard<std::mutex> lock(mu_);
  MutationResult r = db_.AddTuple(name, std::move(tuple));
  if (r) TouchLocked();
  return r;
}

MutationResult MvccDatabase::AddTuples(const std::string& name,
                                       std::vector<Tuple> tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!db_.HasRelation(name)) {
    return MutationResult::Fail("no such relation " + name);
  }
  const int arity = db_.Arity(name);
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (static_cast<int>(tuples[i].size()) != arity) {
      return MutationResult::Fail(
          "relation " + name + ": batch tuple " + std::to_string(i) +
          " has arity " + std::to_string(tuples[i].size()) + ", expected " +
          std::to_string(arity));
    }
  }
  for (auto& t : tuples) {
    MutationResult r = db_.AddTuple(name, std::move(t));
    if (!r) return r;  // Unreachable after validation; kept for safety.
  }
  TouchLocked();
  return MutationResult::Ok();
}

MutationResult MvccDatabase::Mutate(
    const std::function<MutationResult(Database&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  MutationResult r = fn(db_);
  // `fn` may have applied part of its work before failing; the epoch bumps
  // unconditionally so no snapshot can alias a half-applied state.
  TouchLocked();
  return r;
}

MvccSnapshot MvccDatabase::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.snapshots;
  if (cached_ == nullptr || cached_epoch_ != epoch_) {
    cached_ = std::make_shared<const Database>(db_.Clone());
    cached_epoch_ = epoch_;
    ++stats_.snapshot_builds;
  }
  return MvccSnapshot{cached_, epoch_};
}

std::uint64_t MvccDatabase::Epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

MvccStats MvccDatabase::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MvccDatabase::ExportCounters(util::Counters* sink) const {
  MvccStats s = stats();
  sink->Add("mvcc.mutations", s.mutations);
  sink->Add("mvcc.snapshots", s.snapshots);
  sink->Add("mvcc.snapshot_builds", s.snapshot_builds);
}

}  // namespace qc::db
