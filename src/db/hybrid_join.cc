#include "db/hybrid_join.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "db/generic_join.h"
#include "db/joins.h"
#include "kernels/boolmm.h"
#include "util/trace.h"

namespace qc::db {

namespace {

/// True when work should stop (one work unit charged, budget tripped).
bool ChargeAndPoll(util::Budget* budget) {
  return budget != nullptr && budget->ChargeWork(1);
}

/// Set bits of `words[0..n)` as dense indices, in ascending order.
template <class Visit>
void ForEachBit(const std::uint64_t* words, std::size_t n, Visit&& visit) {
  for (std::size_t w = 0; w < n; ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      visit(static_cast<int>(w * 64) + __builtin_ctzll(bits));
      bits &= bits - 1;
    }
  }
}

bool AnyBit(const std::uint64_t* words, std::size_t n) {
  for (std::size_t w = 0; w < n; ++w) {
    if (words[w] != 0) return true;
  }
  return false;
}

std::uint64_t PopcountWords(const std::uint64_t* words, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < n; ++w) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(words[w]));
  }
  return total;
}

}  // namespace

std::string ToString(HybridPattern pattern) {
  switch (pattern) {
    case HybridPattern::kNone:
      return "none";
    case HybridPattern::kTriangle:
      return "triangle";
    case HybridPattern::kFourCycle:
      return "4-cycle";
    case HybridPattern::kFourClique:
      return "4-clique";
    case HybridPattern::kFiveClique:
      return "5-clique";
  }
  return "?";
}

HybridPattern DetectHybridPattern(const JoinQuery& query) {
  const std::vector<std::string> attrs = query.AttributeOrder();
  const int k = static_cast<int>(attrs.size());
  if (k < 3 || k > 5 || query.atoms.empty()) return HybridPattern::kNone;
  const std::map<std::string, int> index = query.AttributeIndex();
  std::set<std::pair<int, int>> pairs;
  for (const Atom& atom : query.atoms) {
    const std::vector<std::string> a = AtomAttributes(atom);
    if (a.size() != 2) return HybridPattern::kNone;
    int u = index.at(a[0]);
    int v = index.at(a[1]);
    if (u > v) std::swap(u, v);
    // A repeated pair would double-count in the disjoint partition.
    if (!pairs.insert({u, v}).second) return HybridPattern::kNone;
  }
  const std::size_t all = static_cast<std::size_t>(k) * (k - 1) / 2;
  if (pairs.size() == all) {
    if (k == 3) return HybridPattern::kTriangle;
    if (k == 4) return HybridPattern::kFourClique;
    return HybridPattern::kFiveClique;
  }
  if (k == 4 && pairs.size() == 4) {
    // 4 distinct pairs on 4 attributes with every attribute in exactly two
    // atoms is necessarily a single 4-cycle (two 2-cycles would need a
    // repeated pair, a triangle-plus-pendant has a degree-1 attribute).
    int deg[4] = {0, 0, 0, 0};
    for (const auto& [u, v] : pairs) {
      ++deg[u];
      ++deg[v];
    }
    for (int d : deg) {
      if (d != 2) return HybridPattern::kNone;
    }
    return HybridPattern::kFourCycle;
  }
  return HybridPattern::kNone;
}

HybridJoin::HybridJoin(const JoinQuery& query, const Database& db,
                       const ExecutionContext& ctx, std::int64_t delta)
    : query_(query), db_(db), ctx_(ctx), budget_(ctx.ResolveBudget()) {
  ctx_.budget = budget_;
  attribute_order_ = query.AttributeOrder();
  plan_.pattern = DetectHybridPattern(query);
  if (plan_.pattern == HybridPattern::kNone) return;
  for (const Atom& atom : query.atoms) {
    if (!db.HasRelation(atom.relation)) {
      // Leave malformed queries to the default engine's diagnostics.
      plan_.pattern = HybridPattern::kNone;
      return;
    }
  }
  if (delta <= 0 && ctx_.hybrid_delta > 0) delta = ctx_.hybrid_delta;
  static const std::uint32_t kPartitionSpan =
      util::Trace::InternName("hybrid.partition");
  util::ScopedSpan span(kPartitionSpan);
  BuildPartition(db, delta);
  ctx_.Count("hybrid.heavy_values", plan_.heavy_values);
  ctx_.Count("hybrid.heavy_tuples", plan_.heavy_tuples);
}

void HybridJoin::BuildPartition(const Database& db,
                                std::int64_t delta_override) {
  const std::map<std::string, int> index = query_.AttributeIndex();
  const int k = static_cast<int>(attribute_order_.size());

  // Atom skeleton first: attribute pair and raw size only. The sorted
  // deduplicated projections are deferred until a heavy value is found, so
  // the all-light delegation decision costs one counting pass, not a sort.
  std::size_t max_rows = 0;
  for (const Atom& atom : query_.atoms) {
    std::vector<std::string> a = AtomAttributes(atom);
    int u = index.at(a[0]);
    int v = index.at(a[1]);
    PatternAtom pa;
    pa.u = std::min(u, v);
    pa.v = std::max(u, v);
    max_rows = std::max(max_rows, db.Flat(atom.relation).size());
    atoms_.push_back(std::move(pa));
  }

  if (plan_.pattern == HybridPattern::kFourCycle) {
    // Canonical traversal order: start at attribute 0, take its
    // smaller-indexed neighbour first — deterministic across runs.
    std::vector<std::vector<int>> adj(k);
    for (const PatternAtom& pa : atoms_) {
      adj[pa.u].push_back(pa.v);
      adj[pa.v].push_back(pa.u);
    }
    for (auto& nbrs : adj) std::sort(nbrs.begin(), nbrs.end());
    cycle_[0] = 0;
    cycle_[1] = adj[0][0];
    cycle_[3] = adj[0][1];
    cycle_[2] =
        adj[cycle_[1]][0] == 0 ? adj[cycle_[1]][1] : adj[cycle_[1]][0];
  }

  // Threshold: Δ = max(1, √N) over the largest atom unless overridden —
  // the AGM-style balance point where the light residual's O(N·Δ) work and
  // the heavy core's (N/Δ)-sized dimensions meet, exactly the AYZ pick.
  if (delta_override > 0) {
    plan_.threshold = delta_override;
    plan_.threshold_overridden = true;
  } else {
    plan_.threshold = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::sqrt(static_cast<double>(max_rows))));
  }
  const std::int64_t delta = plan_.threshold;

  // Degree of value x for attribute d: the MAX occurrence count over every
  // (atom, column) pair holding d, counted over the atom's raw rows. Heavy
  // iff deg > Δ — the single predicate both phases share (Δ-boundary values
  // are light). The max never needs merging: x is heavy exactly when SOME
  // column count clears Δ, so each column just contributes its over-Δ
  // values and the union is deduplicated at the end. Duplicate base rows
  // inflate a raw count relative to the deduplicated projection the phases
  // evaluate; that only nudges a value across the (free-to-choose) split,
  // never the result. Dense-ranged columns (the common vertex-id case)
  // count through a flat array; anything sparse falls back to hashing.
  std::vector<std::vector<Value>> heavy_candidates(k);
  for (const Atom& atom : query_.atoms) {
    const FlatRelation& rows = db.Flat(atom.relation);
    const std::vector<std::string> a = AtomAttributes(atom);
    const int attr_of_col[2] = {index.at(a[0]), index.at(a[1])};
    if (rows.empty()) continue;
    for (int col = 0; col < 2; ++col) {
      std::vector<Value>& out = heavy_candidates[attr_of_col[col]];
      Value lo = rows.At(0, col), hi = lo;
      for (std::size_t r = 1; r < rows.size(); ++r) {
        const Value x = rows.At(r, col);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      const std::uint64_t range =
          static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
      if (range <= 4 * rows.size() + 1024) {
        std::vector<std::int64_t> cnt(static_cast<std::size_t>(range), 0);
        for (std::size_t r = 0; r < rows.size(); ++r) {
          ++cnt[static_cast<std::size_t>(rows.At(r, col) - lo)];
        }
        for (std::size_t i = 0; i < cnt.size(); ++i) {
          if (cnt[i] > delta) out.push_back(lo + static_cast<Value>(i));
        }
      } else {
        std::unordered_map<Value, std::int64_t> cnt;
        for (std::size_t r = 0; r < rows.size(); ++r) {
          ++cnt[rows.At(r, col)];
        }
        for (const auto& [value, c] : cnt) {
          if (c > delta) out.push_back(value);
        }
      }
    }
  }
  heavy_.resize(k);
  for (int d = 0; d < k; ++d) {
    std::sort(heavy_candidates[d].begin(), heavy_candidates[d].end());
    heavy_candidates[d].erase(
        std::unique(heavy_candidates[d].begin(), heavy_candidates[d].end()),
        heavy_candidates[d].end());
    heavy_[d].values = std::move(heavy_candidates[d]);
    for (std::size_t i = 0; i < heavy_[d].values.size(); ++i) {
      heavy_[d].index.emplace(heavy_[d].values[i], static_cast<int>(i));
    }
    plan_.heavy_values += heavy_[d].values.size();
  }
  if (plan_.heavy_values == 0) {
    // All-light fast path: the entire instance IS the light residual, so
    // the original query runs through one pure GenericJoin (shared cache
    // allowed — it evaluates the original, unfiltered atoms).
    plan_.delegated = true;
    return;
  }

  // Canonical projections, built only now that the split is real: each atom
  // onto its attribute pair, columns in global-index order, sorted and
  // deduplicated (the same representation the trie engine indexes; the
  // residual filters and heavy matrices below slice these rows).
  for (std::size_t a = 0; a < query_.atoms.size(); ++a) {
    PatternAtom& pa = atoms_[a];
    std::vector<std::string> ordered = {attribute_order_[pa.u],
                                        attribute_order_[pa.v]};
    pa.rows =
        MaterializeSortedProjection(query_.atoms[a], db, ordered, ctx_.arena);
  }

  // Heavy core: per atom, the both-ends-heavy tuples as dense pairs plus
  // the bit-packed bi-adjacency (and its transpose, so either orientation
  // of a row intersection is a contiguous load).
  for (PatternAtom& pa : atoms_) {
    const HeavyDomain& hu = heavy_[pa.u];
    const HeavyDomain& hv = heavy_[pa.v];
    pa.fwd = graph::BoolMatrix(static_cast<int>(hu.values.size()),
                               static_cast<int>(hv.values.size()));
    pa.rev = graph::BoolMatrix(static_cast<int>(hv.values.size()),
                               static_cast<int>(hu.values.size()));
    for (std::size_t r = 0; r < pa.rows.size(); ++r) {
      auto iu = hu.index.find(pa.rows.At(r, 0));
      if (iu == hu.index.end()) continue;
      auto iv = hv.index.find(pa.rows.At(r, 1));
      if (iv == hv.index.end()) continue;
      pa.heavy_pairs.emplace_back(iu->second, iv->second);
      pa.fwd.Set(iu->second, iv->second);
      pa.rev.Set(iv->second, iu->second);
    }
    plan_.heavy_tuples += pa.heavy_pairs.size();
  }

}

void HybridJoin::EnsureLightParts() {
  if (!light_parts_.empty()) return;
  const int k = static_cast<int>(attribute_order_.size());
  // Light residuals: partition i keeps tuples whose attribute-i columns are
  // light, attribute-j columns for j < i are heavy, and later columns are
  // unrestricted. A result tuple lands in exactly the partition of its
  // first light attribute, so the parts (and the all-heavy core) are
  // disjoint. Sub-relations get planner-private names and fresh version
  // stamps, and the sub-evaluations detach ctx.index_cache — they can never
  // alias the parent relation's cache entries. Built lazily: an auto-mode
  // rejection never pays for the filtered copies.
  light_parts_.resize(k);
  for (int i = 0; i < k; ++i) {
    LightPart& part = light_parts_[i];
    for (std::size_t a = 0; a < atoms_.size(); ++a) {
      const PatternAtom& pa = atoms_[a];
      // 0 = unrestricted, 1 = light-only, 2 = heavy-only.
      auto col_class = [i](int attr) {
        if (attr == i) return 1;
        return attr < i ? 2 : 0;
      };
      const int cu = col_class(pa.u);
      const int cv = col_class(pa.v);
      FlatRelation filtered(2);
      for (std::size_t r = 0; r < pa.rows.size(); ++r) {
        const Value x = pa.rows.At(r, 0);
        const Value y = pa.rows.At(r, 1);
        const bool xh = heavy_[pa.u].IsHeavy(x);
        const bool yh = heavy_[pa.v].IsHeavy(y);
        if (cu == 1 && xh) continue;
        if (cu == 2 && !xh) continue;
        if (cv == 1 && yh) continue;
        if (cv == 2 && !yh) continue;
        filtered.PushRow(pa.rows.Row(r));
      }
      if (filtered.empty()) part.has_empty_atom = true;
      plan_.light_tuples += filtered.size();
      const std::string name = "__hyb" + std::to_string(a);
      part.query.Add(name, {attribute_order_[pa.u], attribute_order_[pa.v]});
      part.db.SetRelation(name, std::move(filtered));
    }
  }
  ctx_.Count("hybrid.light_tuples", plan_.light_tuples);
}

const HybridJoin::PatternAtom& HybridJoin::AtomOf(int i, int j) const {
  const int u = std::min(i, j);
  const int v = std::max(i, j);
  for (const PatternAtom& pa : atoms_) {
    if (pa.u == u && pa.v == v) return pa;
  }
  // Unreachable for detected patterns; keep the compiler honest.
  return atoms_.front();
}

const graph::BoolMatrix& HybridJoin::Mat(int i, int j) const {
  const PatternAtom& pa = AtomOf(i, j);
  return i < j ? pa.fwd : pa.rev;
}

bool HybridJoin::ProfitableUnderAuto() const {
  if (!applicable() || plan_.delegated) return false;
  // The heavy core pays when its average degree clears the word-parallel
  // break-even: each bitset row op touches H/64 words, so per-vertex work
  // amortizes once a heavy value participates in a few dozen heavy tuples.
  const std::uint64_t avg_heavy_degree =
      plan_.heavy_tuples / std::max<std::uint64_t>(1, plan_.heavy_values);
  return plan_.heavy_tuples >= 256 && avg_heavy_degree >= 16;
}

void HybridJoin::RunLight(Mode mode, std::vector<Tuple>* out,
                          std::uint64_t* count, bool* found) {
  static const std::uint32_t kLightSpan =
      util::Trace::InternName("hybrid.light");
  util::ScopedSpan span(kLightSpan);
  EnsureLightParts();
  for (LightPart& part : light_parts_) {
    if (Stopped()) return;
    if (mode == Mode::kIsEmpty && *found) return;
    if (part.has_empty_atom) continue;
    ExecutionContext sub = ctx_;
    sub.budget = budget_;
    sub.index_cache = nullptr;  // never cache single-use partitions
    GenericJoin gj(part.query, part.db, attribute_order_, sub);
    switch (mode) {
      case Mode::kEvaluate: {
        JoinResult r = gj.Evaluate();
        plan_.light_rows += r.tuples.size();
        out->insert(out->end(), std::make_move_iterator(r.tuples.begin()),
                    std::make_move_iterator(r.tuples.end()));
        break;
      }
      case Mode::kCount: {
        const std::uint64_t c = gj.Count();
        plan_.light_rows += c;
        *count += c;
        break;
      }
      case Mode::kIsEmpty:
        if (!gj.IsEmpty()) *found = true;
        break;
    }
  }
}

void HybridJoin::RunHeavy(Mode mode, std::vector<Tuple>* out,
                          std::uint64_t* count, bool* found) {
  static const std::uint32_t kHeavySpan =
      util::Trace::InternName("hybrid.heavy");
  util::ScopedSpan span(kHeavySpan);
  if (Stopped()) return;
  if (mode == Mode::kIsEmpty && *found) return;
  switch (plan_.pattern) {
    case HybridPattern::kTriangle:
      HeavyTriangle(mode, out, count, found);
      break;
    case HybridPattern::kFourCycle:
      HeavyFourCycle(mode, out, count, found);
      break;
    case HybridPattern::kFourClique:
    case HybridPattern::kFiveClique:
      HeavyClique(mode, out, count, found);
      break;
    case HybridPattern::kNone:
      break;
  }
}

void HybridJoin::HeavyTriangle(Mode mode, std::vector<Tuple>* out,
                               std::uint64_t* count, bool* found) {
  // Attributes 0,1,2. MM prefilter: P = M(1,0)·M(0,2) marks the (b, c)
  // pairs with at least one heavy-0 witness; the per-pair witness set is
  // then one word-AND of two rows over the H_0 dimension.
  const graph::BoolMatrix* p = nullptr;
  graph::BoolMatrix product;
  {
    static const std::uint32_t kMmSpan = util::Trace::InternName("hybrid.mm");
    util::ScopedSpan mm_span(kMmSpan);
    product =
        Mat(1, 0).Multiply(Mat(0, 2), ctx_.ResolvedThreads(), budget_.get());
    p = &product;
  }
  if (Stopped()) return;
  const graph::BoolMatrix& m10 = Mat(1, 0);
  const graph::BoolMatrix& m20 = Mat(2, 0);
  const std::size_t wn = m10.words_per_row();  // H_0 words (== m20's)
  std::vector<std::uint64_t> witness(wn);
  Tuple binding(3);
  for (const auto& [b, c] : AtomOf(1, 2).heavy_pairs) {
    if (ChargeAndPoll(budget_.get())) return;
    if (!p->Test(b, c)) continue;
    switch (mode) {
      case Mode::kCount: {
        const std::uint64_t w =
            kernels::AndPopcount(m10.RowWords(b), m20.RowWords(c), wn);
        plan_.heavy_rows += w;
        *count += w;
        break;
      }
      case Mode::kIsEmpty:
        // The product bit already proves a witness exists.
        *found = true;
        return;
      case Mode::kEvaluate: {
        kernels::AndWords2(witness.data(), m10.RowWords(b), m20.RowWords(c),
                           wn);
        bool stop = false;
        ForEachBit(witness.data(), wn, [&](int a) {
          if (stop) return;
          binding[0] = heavy_[0].values[a];
          binding[1] = heavy_[1].values[b];
          binding[2] = heavy_[2].values[c];
          out->push_back(binding);
          ++plan_.heavy_rows;
          // Charge after materializing, like GenericJoin: exactly
          // row_limit rows land at the limit.
          if (budget_ != nullptr && budget_->ChargeRows(1)) stop = true;
        });
        if (stop) return;
        break;
      }
    }
  }
}

void HybridJoin::HeavyFourCycle(Mode mode, std::vector<Tuple>* out,
                                std::uint64_t* count, bool* found) {
  const int c0 = cycle_[0], c1 = cycle_[1], c2 = cycle_[2], c3 = cycle_[3];
  // Two MM prefilters over the opposite corner pair (c0, c2): P1 routes
  // through c1, P2 through c3. A bit set in both means at least one full
  // 4-cycle crosses that corner pair.
  graph::BoolMatrix p1, p2;
  {
    static const std::uint32_t kMmSpan = util::Trace::InternName("hybrid.mm");
    util::ScopedSpan mm_span(kMmSpan);
    p1 = Mat(c0, c1).Multiply(Mat(c1, c2), ctx_.ResolvedThreads(),
                              budget_.get());
    if (!Stopped()) {
      p2 = Mat(c0, c3).Multiply(Mat(c3, c2), ctx_.ResolvedThreads(),
                                budget_.get());
    }
  }
  if (Stopped()) return;
  const graph::BoolMatrix& m01 = Mat(c0, c1);
  const graph::BoolMatrix& m21 = Mat(c2, c1);
  const graph::BoolMatrix& m03 = Mat(c0, c3);
  const graph::BoolMatrix& m23 = Mat(c2, c3);
  const std::size_t corner_words = p1.words_per_row();  // H_c2 words
  const std::size_t b_words = m01.words_per_row();      // H_c1 words
  const std::size_t d_words = m03.words_per_row();      // H_c3 words
  std::vector<std::uint64_t> corners(corner_words);
  std::vector<std::uint64_t> side_b(b_words);
  std::vector<std::uint64_t> side_d(d_words);
  Tuple binding(4);
  const int rows = p1.rows();
  for (int x = 0; x < rows; ++x) {
    if (ChargeAndPoll(budget_.get())) return;
    kernels::AndWords2(corners.data(), p1.RowWords(x), p2.RowWords(x),
                       corner_words);
    bool stop = false;
    ForEachBit(corners.data(), corner_words, [&](int z) {
      if (stop) return;
      switch (mode) {
        case Mode::kCount: {
          // |witnesses through c1| x |witnesses through c3|, no
          // enumeration: both popcounts are nonzero by the prefilter.
          const std::uint64_t nb =
              kernels::AndPopcount(m01.RowWords(x), m21.RowWords(z), b_words);
          const std::uint64_t nd =
              kernels::AndPopcount(m03.RowWords(x), m23.RowWords(z), d_words);
          plan_.heavy_rows += nb * nd;
          *count += nb * nd;
          break;
        }
        case Mode::kIsEmpty:
          *found = true;
          stop = true;
          break;
        case Mode::kEvaluate: {
          kernels::AndWords2(side_b.data(), m01.RowWords(x), m21.RowWords(z),
                             b_words);
          kernels::AndWords2(side_d.data(), m03.RowWords(x), m23.RowWords(z),
                             d_words);
          binding[c0] = heavy_[c0].values[x];
          binding[c2] = heavy_[c2].values[z];
          ForEachBit(side_b.data(), b_words, [&](int b) {
            if (stop) return;
            binding[c1] = heavy_[c1].values[b];
            ForEachBit(side_d.data(), d_words, [&](int d) {
              if (stop) return;
              binding[c3] = heavy_[c3].values[d];
              out->push_back(binding);
              ++plan_.heavy_rows;
              if (budget_ != nullptr && budget_->ChargeRows(1)) stop = true;
            });
          });
          break;
        }
      }
    });
    if (stop) return;  // emptiness witnessed, or row budget tripped
  }
}

void HybridJoin::HeavyClique(Mode mode, std::vector<Tuple>* out,
                             std::uint64_t* count, bool* found) {
  // k-clique (k = 4 or 5) by bitset descent over the heavy tuples of atom
  // (0,1): candidate sets for each later attribute are word-ANDs of the
  // rows of every already-bound attribute.
  const bool five = plan_.pattern == HybridPattern::kFiveClique;
  const std::size_t w2 = Mat(0, 2).words_per_row();
  const std::size_t w3 = Mat(0, 3).words_per_row();
  const std::size_t w4 = five ? Mat(0, 4).words_per_row() : 0;
  std::vector<std::uint64_t> s2(w2), s3ab(w3), s3(w3), s4ab(w4), s4(w4),
      s4d(w4);
  Tuple binding(five ? 5 : 4);
  for (const auto& [a, b] : AtomOf(0, 1).heavy_pairs) {
    if (ChargeAndPoll(budget_.get())) return;
    kernels::AndWords2(s2.data(), Mat(0, 2).RowWords(a), Mat(1, 2).RowWords(b),
                       w2);
    if (!AnyBit(s2.data(), w2)) continue;
    kernels::AndWords2(s3ab.data(), Mat(0, 3).RowWords(a),
                       Mat(1, 3).RowWords(b), w3);
    if (five) {
      kernels::AndWords2(s4ab.data(), Mat(0, 4).RowWords(a),
                         Mat(1, 4).RowWords(b), w4);
    }
    binding[0] = heavy_[0].values[a];
    binding[1] = heavy_[1].values[b];
    bool stop = false;
    ForEachBit(s2.data(), w2, [&](int c) {
      if (stop) return;
      kernels::AndWords2(s3.data(), s3ab.data(), Mat(2, 3).RowWords(c), w3);
      binding[2] = heavy_[2].values[c];
      if (!five) {
        switch (mode) {
          case Mode::kCount: {
            const std::uint64_t n = PopcountWords(s3.data(), w3);
            plan_.heavy_rows += n;
            *count += n;
            break;
          }
          case Mode::kIsEmpty:
            if (AnyBit(s3.data(), w3)) {
              *found = true;
              stop = true;
            }
            break;
          case Mode::kEvaluate:
            ForEachBit(s3.data(), w3, [&](int d) {
              if (stop) return;
              binding[3] = heavy_[3].values[d];
              out->push_back(binding);
              ++plan_.heavy_rows;
              if (budget_ != nullptr && budget_->ChargeRows(1)) stop = true;
            });
            break;
        }
        return;
      }
      kernels::AndWords2(s4.data(), s4ab.data(), Mat(2, 4).RowWords(c), w4);
      ForEachBit(s3.data(), w3, [&](int d) {
        if (stop) return;
        binding[3] = heavy_[3].values[d];
        switch (mode) {
          case Mode::kCount: {
            const std::uint64_t n =
                kernels::AndPopcount(s4.data(), Mat(3, 4).RowWords(d), w4);
            plan_.heavy_rows += n;
            *count += n;
            break;
          }
          case Mode::kIsEmpty:
            if (kernels::AndPopcount(s4.data(), Mat(3, 4).RowWords(d), w4) >
                0) {
              *found = true;
              stop = true;
            }
            break;
          case Mode::kEvaluate:
            kernels::AndWords2(s4d.data(), s4.data(), Mat(3, 4).RowWords(d),
                               w4);
            ForEachBit(s4d.data(), w4, [&](int e) {
              if (stop) return;
              binding[4] = heavy_[4].values[e];
              out->push_back(binding);
              ++plan_.heavy_rows;
              if (budget_ != nullptr && budget_->ChargeRows(1)) stop = true;
            });
            break;
        }
      });
    });
    if (stop) return;  // emptiness witnessed, or row budget tripped
  }
}

JoinResult HybridJoin::Evaluate() {
  JoinResult result;
  result.attributes = attribute_order_;
  if (!applicable()) return result;
  plan_.heavy_rows = 0;
  plan_.light_rows = 0;
  if (plan_.delegated) {
    GenericJoin gj(query_, db_, attribute_order_, ctx_);
    result = gj.Evaluate();
    plan_.light_rows = result.tuples.size();
    run_status_ = gj.status();
    return result;
  }
  RunLight(Mode::kEvaluate, &result.tuples, nullptr, nullptr);
  RunHeavy(Mode::kEvaluate, &result.tuples, nullptr, nullptr);
  {
    // The parts are disjoint, so this dedup never drops rows — the sort
    // alone re-establishes GenericJoin's lexicographic output order.
    static const std::uint32_t kMergeSpan =
        util::Trace::InternName("hybrid.merge");
    util::ScopedSpan span(kMergeSpan);
    std::sort(result.tuples.begin(), result.tuples.end());
    result.tuples.erase(
        std::unique(result.tuples.begin(), result.tuples.end()),
        result.tuples.end());
  }
  run_status_ = Stopped() ? budget_->status() : util::RunStatus::kCompleted;
  result.truncated = run_status_ != util::RunStatus::kCompleted;
  ctx_.Count("hybrid.heavy_rows", plan_.heavy_rows);
  ctx_.Count("hybrid.light_rows", plan_.light_rows);
  return result;
}

std::uint64_t HybridJoin::Count() {
  if (!applicable()) return 0;
  plan_.heavy_rows = 0;
  plan_.light_rows = 0;
  if (plan_.delegated) {
    GenericJoin gj(query_, db_, attribute_order_, ctx_);
    const std::uint64_t c = gj.Count();
    plan_.light_rows = c;
    run_status_ = gj.status();
    return c;
  }
  std::uint64_t count = 0;
  RunLight(Mode::kCount, nullptr, &count, nullptr);
  RunHeavy(Mode::kCount, nullptr, &count, nullptr);
  run_status_ = Stopped() ? budget_->status() : util::RunStatus::kCompleted;
  ctx_.Count("hybrid.heavy_rows", plan_.heavy_rows);
  ctx_.Count("hybrid.light_rows", plan_.light_rows);
  return count;
}

bool HybridJoin::IsEmpty() {
  if (!applicable()) return true;
  if (plan_.delegated) {
    GenericJoin gj(query_, db_, attribute_order_, ctx_);
    const bool empty = gj.IsEmpty();
    run_status_ = gj.status();
    return empty;
  }
  bool found = false;
  RunLight(Mode::kIsEmpty, nullptr, nullptr, &found);
  if (!found) RunHeavy(Mode::kIsEmpty, nullptr, nullptr, &found);
  run_status_ = (!found && Stopped()) ? budget_->status()
                                      : util::RunStatus::kCompleted;
  return !found;
}

}  // namespace qc::db
