#ifndef QC_DB_MVCC_H_
#define QC_DB_MVCC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "db/database.h"
#include "db/ivm.h"
#include "db/wal.h"
#include "util/counters.h"

namespace qc::db {

/// Point-in-time usage counters of one MvccDatabase.
struct MvccStats {
  std::uint64_t mutations = 0;        ///< Successful write transactions.
  std::uint64_t snapshots = 0;        ///< Snapshot() calls served.
  std::uint64_t snapshot_builds = 0;  ///< Snapshots that cloned (cache miss).
  std::uint64_t wal_rejections = 0;   ///< Mutations refused by a WAL append.
};

/// A reader snapshot: an immutable Database pinned at a write epoch.
/// Relation payloads are shared copy-on-write with the live database, and
/// version stamps are preserved — IndexCache entries keyed on
/// (relation, version) built against one snapshot stay valid for every
/// other snapshot and for the live database until the relation mutates.
struct MvccSnapshot {
  std::shared_ptr<const Database> db;
  /// Number of write transactions applied before this snapshot was taken.
  /// Two snapshots at the same epoch see bit-identical data.
  std::uint64_t epoch = 0;
};

/// Multi-version concurrency control over one Database: serialized writers,
/// lock-free readers.
///
/// Writers (SetRelation/AddTuple/AddTuples/Mutate) are serialized behind one
/// mutex and bump the write epoch. Readers call Snapshot() — a short
/// critical section that hands out a cached shared_ptr<const Database>
/// clone, rebuilding it (O(#relations) pointer copies, no tuple data) only
/// when a write happened since the last snapshot. After Snapshot() returns,
/// a reader never takes a lock again: it evaluates against its pinned,
/// immutable clone while writers keep mutating the live database.
///
/// Writers never block readers: the first mutation of a relation shared
/// with an outstanding snapshot copies that relation privately
/// (Database::Clone copy-on-write), so snapshot readers keep scanning the
/// old payload untouched. A stream of AddTuples between two snapshots pays
/// one such copy per mutated relation, then appends in place.
///
/// Durability: after AttachWal, every write transaction is logged before it
/// is applied — a mutation the WAL refuses (I/O error, injected fault) is
/// rejected without touching the database or the epoch, so acknowledged
/// writes are exactly the durable ones. Mutate() runs its lambda against a
/// staged copy-on-write clone and only publishes the clone after the WAL
/// accepts the record; a failed lambda leaves database and epoch untouched.
class MvccDatabase {
 public:
  MvccDatabase() = default;
  MvccDatabase(const MvccDatabase&) = delete;
  MvccDatabase& operator=(const MvccDatabase&) = delete;

  /// Routes every subsequent mutation through `wal` (log-before-apply).
  /// Call once after recovery, before serving writers; `wal` must stay
  /// alive as long as this database and must already be Open. Pass nullptr
  /// to detach.
  void AttachWal(Wal* wal);

  /// Routes every committed mutation through `views` (ViewRegistry::
  /// OnCommit under the writer lock), so registered materialized views
  /// stay current with the write epoch. `views` must outlive this
  /// database. Pass nullptr to detach. With no registered views the
  /// per-mutation overhead is one empty() check.
  void AttachViews(ViewRegistry* views);

  /// Validates `def` against the live database, logs a durable kViewDef
  /// record (when a WAL is attached), and registers the view — its initial
  /// state is computed from the current database and maintained from the
  /// current epoch on. Registration does not bump the write epoch (the
  /// data did not change). Fails without an attached ViewRegistry.
  MutationResult RegisterView(const ViewDefinition& def);

  /// Seeds the live database (epoch bumps like any write).
  MutationResult SetRelation(const std::string& name, int arity,
                             std::vector<Tuple> tuples);
  MutationResult SetRelation(const std::string& name, FlatRelation relation);

  /// Appends one tuple as one write transaction.
  MutationResult AddTuple(const std::string& name, Tuple tuple);

  /// Appends a batch as ONE write transaction (one epoch bump, one
  /// copy-on-write at most). All-or-nothing: every tuple's arity is
  /// validated against the relation before any is applied, and the failure
  /// diagnostic names the offending batch index — the batched-append
  /// counterpart of SetRelation's atomic validation. An EMPTY batch is a
  /// validated no-op: nothing reaches the WAL, the epoch does not bump,
  /// and the cached reader snapshot stays warm (a zero-record batch that
  /// invalidated the snapshot used to force spurious rebuilds and
  /// IndexCache misses downstream).
  MutationResult AddTuples(const std::string& name, std::vector<Tuple> tuples);

  /// Runs `fn(Database&)` as one serialized write transaction against a
  /// staged copy-on-write clone. On success the clone is published and the
  /// epoch bumps; on failure (from `fn` or from the WAL) the live database
  /// and the epoch are untouched — callers get transactional rollback for
  /// free, at the cost of one copy-on-write clone per call.
  MutationResult Mutate(const std::function<MutationResult(Database&)>& fn);

  /// Mutate() that also appends `record` to the attached WAL before
  /// publishing — the durable form of a server `mutate` frame. `record`
  /// must describe exactly what `fn` does (it is what recovery replays).
  /// Without an attached WAL this is identical to Mutate().
  MutationResult MutateLogged(
      const WalRecord& record,
      const std::function<MutationResult(Database&)>& fn);

  /// Two-phase durable write for callers that can validate before applying:
  /// `validate` runs read-only against the live database; if it passes,
  /// `record` is logged and `apply` mutates the live database directly —
  /// no staged clone. This is what keeps a stream of single-tuple dataset
  /// mutations O(total rows): the staged clone marks every relation shared,
  /// so the first append after it copies the whole payload, turning bulk
  /// ingest (and kDataset recovery replay) quadratic. In exchange `apply`
  /// MUST succeed once `validate` passed under the same lock; an `apply`
  /// failure means a durable record that cannot replay and is surfaced as
  /// a failed mutation with the database possibly part-mutated (the epoch
  /// still bumps so readers refresh).
  ///
  /// IVM contract: in-place appliers must be create-or-append per relation
  /// (exactly what dataset apply does — SetRelation only for brand-new
  /// names, AddTuple for existing ones). Deltas for attached views are
  /// classified from the pre/post (version, size) pair under that
  /// assumption; a relation that shrank is defensively treated as replaced
  /// (full view recompute). An applier that replaces an existing relation
  /// at equal-or-larger size would silently corrupt maintained views —
  /// use MutateLogged (staged clone, conservative replace deltas) for
  /// arbitrary mutations.
  MutationResult MutateLoggedInPlace(
      const WalRecord& record,
      const std::function<MutationResult(const Database&)>& validate,
      const std::function<MutationResult(Database&)>& apply);

  /// Compacts the attached WAL (snapshot + log rotation) under the writer
  /// lock, so no mutation can slip between the snapshot and the log
  /// truncation. `request_ids` is the dedup window to persist. No-op
  /// without an attached WAL.
  MutationResult CompactWal(const std::vector<std::uint64_t>& request_ids);

  /// CompactWal iff the attached WAL's log has outgrown
  /// WalOptions::compact_bytes (0 = never). Returns true when a compaction
  /// ran and succeeded.
  bool MaybeCompactWal(const std::vector<std::uint64_t>& request_ids,
                       std::string* error);

  /// Pins the current state. Lock held only for the (cheap) clone; the
  /// returned snapshot is immutable and safe to read from any thread with
  /// no further synchronization. Consecutive calls with no intervening
  /// write share one clone.
  MvccSnapshot Snapshot() const;

  /// Write epoch: number of write transactions applied so far.
  std::uint64_t Epoch() const;

  MvccStats stats() const;

  /// Publishes "mvcc.{mutations,snapshots,snapshot_builds,wal_rejections}"
  /// counters.
  void ExportCounters(util::Counters* sink) const;

 private:
  /// Caller holds mu_. Bumps the epoch and drops the cached snapshot.
  void TouchLocked();

  /// Caller holds mu_. Appends `record` to the attached WAL (no-op when
  /// detached); false means the mutation must be rejected.
  bool LogLocked(const WalRecord& record, MutationResult* out);

  /// Caller holds mu_. True when a registry with >= 1 view is attached —
  /// the gate for collecting deltas on the mutation paths.
  bool ViewsActiveLocked() const;

  /// Caller holds mu_, after a committed mutation (epoch already bumped).
  /// Forwards the deltas to the attached registry.
  void NotifyViewsLocked(const std::vector<RelationDelta>& deltas);

  /// Caller holds mu_. (version, size) per relation — the "before" side of
  /// delta classification for the staged/in-place mutation paths.
  std::map<std::string, std::pair<std::uint64_t, std::size_t>>
  RelationFingerprintsLocked() const;

  mutable std::mutex mu_;
  Database db_;
  Wal* wal_ = nullptr;
  ViewRegistry* views_ = nullptr;
  std::uint64_t epoch_ = 0;
  mutable std::shared_ptr<const Database> cached_;
  mutable std::uint64_t cached_epoch_ = 0;
  mutable MvccStats stats_;
};

}  // namespace qc::db

#endif  // QC_DB_MVCC_H_
