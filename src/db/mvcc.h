#ifndef QC_DB_MVCC_H_
#define QC_DB_MVCC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/database.h"
#include "util/counters.h"

namespace qc::db {

/// Point-in-time usage counters of one MvccDatabase.
struct MvccStats {
  std::uint64_t mutations = 0;        ///< Successful write transactions.
  std::uint64_t snapshots = 0;        ///< Snapshot() calls served.
  std::uint64_t snapshot_builds = 0;  ///< Snapshots that cloned (cache miss).
};

/// A reader snapshot: an immutable Database pinned at a write epoch.
/// Relation payloads are shared copy-on-write with the live database, and
/// version stamps are preserved — IndexCache entries keyed on
/// (relation, version) built against one snapshot stay valid for every
/// other snapshot and for the live database until the relation mutates.
struct MvccSnapshot {
  std::shared_ptr<const Database> db;
  /// Number of write transactions applied before this snapshot was taken.
  /// Two snapshots at the same epoch see bit-identical data.
  std::uint64_t epoch = 0;
};

/// Multi-version concurrency control over one Database: serialized writers,
/// lock-free readers.
///
/// Writers (SetRelation/AddTuple/AddTuples/Mutate) are serialized behind one
/// mutex and bump the write epoch. Readers call Snapshot() — a short
/// critical section that hands out a cached shared_ptr<const Database>
/// clone, rebuilding it (O(#relations) pointer copies, no tuple data) only
/// when a write happened since the last snapshot. After Snapshot() returns,
/// a reader never takes a lock again: it evaluates against its pinned,
/// immutable clone while writers keep mutating the live database.
///
/// Writers never block readers: the first mutation of a relation shared
/// with an outstanding snapshot copies that relation privately
/// (Database::Clone copy-on-write), so snapshot readers keep scanning the
/// old payload untouched. A stream of AddTuples between two snapshots pays
/// one such copy per mutated relation, then appends in place.
class MvccDatabase {
 public:
  MvccDatabase() = default;
  MvccDatabase(const MvccDatabase&) = delete;
  MvccDatabase& operator=(const MvccDatabase&) = delete;

  /// Seeds the live database (epoch bumps like any write).
  MutationResult SetRelation(const std::string& name, int arity,
                             std::vector<Tuple> tuples);
  MutationResult SetRelation(const std::string& name, FlatRelation relation);

  /// Appends one tuple as one write transaction.
  MutationResult AddTuple(const std::string& name, Tuple tuple);

  /// Appends a batch as ONE write transaction (one epoch bump, one
  /// copy-on-write at most). All-or-nothing: every tuple's arity is
  /// validated against the relation before any is applied, and the failure
  /// diagnostic names the offending batch index — the batched-append
  /// counterpart of SetRelation's atomic validation.
  MutationResult AddTuples(const std::string& name, std::vector<Tuple> tuples);

  /// Runs `fn(Database&)` as one serialized write transaction. `fn` returns
  /// a MutationResult; the epoch is bumped (and the snapshot cache
  /// invalidated) even on failure when `fn` may have partially applied —
  /// pass `applied=false` semantics by returning early before mutating.
  MutationResult Mutate(const std::function<MutationResult(Database&)>& fn);

  /// Pins the current state. Lock held only for the (cheap) clone; the
  /// returned snapshot is immutable and safe to read from any thread with
  /// no further synchronization. Consecutive calls with no intervening
  /// write share one clone.
  MvccSnapshot Snapshot() const;

  /// Write epoch: number of write transactions applied so far.
  std::uint64_t Epoch() const;

  MvccStats stats() const;

  /// Publishes "mvcc.{mutations,snapshots,snapshot_builds}" counters.
  void ExportCounters(util::Counters* sink) const;

 private:
  /// Caller holds mu_. Bumps the epoch and drops the cached snapshot.
  void TouchLocked();

  mutable std::mutex mu_;
  Database db_;
  std::uint64_t epoch_ = 0;
  mutable std::shared_ptr<const Database> cached_;
  mutable std::uint64_t cached_epoch_ = 0;
  mutable MvccStats stats_;
};

}  // namespace qc::db

#endif  // QC_DB_MVCC_H_
