#include "db/index_cache.h"

#include <utility>

#include "util/fault.h"
#include "util/trace.h"

namespace qc::db {

namespace {

std::string MakeKey(const std::string& relation, std::uint64_t version,
                    const std::string& signature) {
  // '\x1f' (unit separator) cannot appear in relation names or signatures,
  // so the concatenation is injective.
  std::string key;
  key.reserve(relation.size() + signature.size() + 24);
  key += relation;
  key += '\x1f';
  key += std::to_string(version);
  key += '\x1f';
  key += signature;
  return key;
}

}  // namespace

IndexCache::EntryPtr IndexCache::GetOrBuild(
    const std::string& relation, std::uint64_t version,
    const std::string& signature, const std::function<Entry()>& build) {
  static const std::uint32_t kHitSpan = util::Trace::InternName("index_cache.hit");
  static const std::uint32_t kMissSpan =
      util::Trace::InternName("index_cache.miss");
  const std::string key = MakeKey(relation, version, signature);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      util::ScopedSpan span(kHitSpan);
      return it->second.entry;
    }
    ++misses_;
  }
  // Build outside the lock: a large build must not serialize unrelated
  // lookups. Concurrent misses on one key may both reach here; the second
  // insert below detects the race and adopts the first winner's entry.
  EntryPtr built;
  {
    util::ScopedSpan span(kMissSpan);
    auto fresh = std::make_shared<Entry>(build());
    if (fresh->bytes == 0) {
      fresh->bytes = fresh->trie.MemoryBytes() + sizeof(Entry) +
                     sizeof(Slot) + 2 * key.size();
    }
    built = std::move(fresh);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Lost the build race: keep the resident entry so both callers share
    // one footprint.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.entry;
  }
  if (built->bytes > capacity_bytes_) {
    ++rejected_;
    return built;  // Usable, but too large to ever share.
  }
  // "index_cache.insert" degrades exactly like the oversized path above:
  // the caller keeps a private, fully usable index and only the sharing is
  // lost — the graceful-degradation contract for cache faults.
  if (util::FaultsEnabled() && util::FaultPoint("index_cache.insert")) {
    ++rejected_;
    return built;
  }
  EvictToFitLocked(built->bytes);
  lru_.push_front(key);
  bytes_ += built->bytes;
  map_.emplace(key, Slot{built, lru_.begin()});
  return built;
}

void IndexCache::EvictToFitLocked(std::size_t incoming) {
  while (!lru_.empty() && bytes_ + incoming > capacity_bytes_) {
    auto victim = map_.find(lru_.back());
    bytes_ -= victim->second.entry->bytes;
    map_.erase(victim);
    lru_.pop_back();
    ++evictions_;
  }
}

IndexCacheStats IndexCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IndexCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.rejected = rejected_;
  s.bytes = bytes_;
  s.entries = map_.size();
  s.capacity_bytes = capacity_bytes_;
  return s;
}

void IndexCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
}

void IndexCache::ExportCounters(util::Counters* sink) const {
  IndexCacheStats s = stats();
  sink->Add("index_cache.hits", s.hits);
  sink->Add("index_cache.misses", s.misses);
  sink->Add("index_cache.evictions", s.evictions);
  sink->Add("index_cache.rejected", s.rejected);
  sink->Set("index_cache.bytes", s.bytes);
  sink->Set("index_cache.entries", s.entries);
  sink->Set("index_cache.capacity_bytes", s.capacity_bytes);
}

void IndexCache::ExportMetrics(util::MetricsRegistry* registry) const {
  IndexCacheStats s = stats();
  registry->AddCounter("index_cache.hits", s.hits);
  registry->AddCounter("index_cache.misses", s.misses);
  registry->AddCounter("index_cache.evictions", s.evictions);
  registry->AddCounter("index_cache.rejected", s.rejected);
  registry->SetGauge("index_cache.bytes", s.bytes);
  registry->SetGauge("index_cache.entries", s.entries);
  registry->SetGauge("index_cache.capacity_bytes", s.capacity_bytes);
}

}  // namespace qc::db
