#ifndef QC_DB_PARSER_H_
#define QC_DB_PARSER_H_

#include <optional>
#include <string>
#include <utility>

#include "db/database.h"

namespace qc::db {

/// A parse failure with the 1-based source position it occurred at.
struct ParseError {
  int line = 0;
  int column = 0;
  std::string message;

  /// "line L, column C: message".
  std::string ToString() const;
};

/// Outcome of a parse: either a value or a position-annotated error.
/// Replaces the old nullopt-plus-out-parameter reporting.
template <typename T>
struct ParseResult {
  std::optional<T> value;
  ParseError error;  ///< Meaningful only when !has_value().

  bool has_value() const { return value.has_value(); }
  explicit operator bool() const { return value.has_value(); }
  T& operator*() { return *value; }
  const T& operator*() const { return *value; }
  T* operator->() { return &*value; }
  const T* operator->() const { return &*value; }

  static ParseResult Ok(T v) {
    ParseResult r;
    r.value = std::move(v);
    return r;
  }
  static ParseResult Fail(ParseError e) {
    ParseResult r;
    r.error = std::move(e);
    return r;
  }
};

/// Parses a join query in the conventional text form
///
///     R1(a, b), R2(a, c), R3(b, c)
///
/// (atom separators: comma or whitespace; identifiers are
/// [A-Za-z_][A-Za-z0-9_]*).
ParseResult<JoinQuery> ParseJoinQuery(const std::string& text);

/// Parses a relation body: one tuple per line, integer values separated by
/// whitespace or commas; blank lines and '#' comments ignored. All tuples
/// must have the same arity.
ParseResult<std::vector<Tuple>> ParseTuples(const std::string& text);

}  // namespace qc::db

#endif  // QC_DB_PARSER_H_
