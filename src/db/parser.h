#ifndef QC_DB_PARSER_H_
#define QC_DB_PARSER_H_

#include <string>

#include "db/database.h"
#include "util/parse.h"

namespace qc::db {

/// Parse errors/results are the shared util types so db and csp front ends
/// report failures identically; the aliases keep existing call sites
/// (`db::ParseError`, `db::ParseResult<T>`) source-compatible.
using ParseError = util::ParseError;
template <typename T>
using ParseResult = util::ParseResult<T>;

/// Hardening caps on untrusted text input. Inputs past these are rejected
/// with a position-annotated error rather than parsed into pathological
/// in-memory structures (a 10MB identifier, a 100k-ary atom).
inline constexpr std::size_t kMaxIdentifierLength = 1 << 16;
inline constexpr std::size_t kMaxAtomArity = 4096;
inline constexpr std::size_t kMaxTupleArity = 1 << 16;

/// Parses a join query in the conventional text form
///
///     R1(a, b), R2(a, c), R3(b, c)
///
/// (atom separators: comma or whitespace; identifiers are
/// [A-Za-z_][A-Za-z0-9_]*).
ParseResult<JoinQuery> ParseJoinQuery(const std::string& text);

/// Parses a relation body: one tuple per line, integer values separated by
/// whitespace or commas; blank lines and '#' comments ignored. All tuples
/// must have the same arity.
ParseResult<std::vector<Tuple>> ParseTuples(const std::string& text);

}  // namespace qc::db

#endif  // QC_DB_PARSER_H_
