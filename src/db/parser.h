#ifndef QC_DB_PARSER_H_
#define QC_DB_PARSER_H_

#include <optional>
#include <string>

#include "db/database.h"

namespace qc::db {

/// Parses a join query in the conventional text form
///
///     R1(a, b), R2(a, c), R3(b, c)
///
/// (atom separators: comma or whitespace; identifiers are
/// [A-Za-z_][A-Za-z0-9_]*). On failure returns nullopt and, if `error` is
/// non-null, stores a message with the offending position.
std::optional<JoinQuery> ParseJoinQuery(const std::string& text,
                                        std::string* error = nullptr);

/// Parses a relation body: one tuple per line, integer values separated by
/// whitespace or commas; blank lines and '#' comments ignored. All tuples
/// must have the same arity.
std::optional<std::vector<Tuple>> ParseTuples(const std::string& text,
                                              std::string* error = nullptr);

}  // namespace qc::db

#endif  // QC_DB_PARSER_H_
