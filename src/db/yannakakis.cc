#include "db/yannakakis.h"

#include <algorithm>
#include <optional>

#include "graph/hypergraph.h"
#include "util/trace.h"

namespace qc::db {

/// Join-tree structure from the GYO reduction: parent per atom (-1 at the
/// root) and a root-last processing order. Returns false if cyclic.
bool BuildJoinTree(const JoinQuery& query, std::vector<int>* parent,
                   std::vector<int>* order) {
  graph::Hypergraph h = query.Hypergraph();
  if (!graph::IsAlphaAcyclic(h, parent)) return false;
  const int m = static_cast<int>(query.atoms.size());
  // Topological order: parents after children (root last). Kahn-style.
  std::vector<int> child_count(m, 0);
  for (int e = 0; e < m; ++e) {
    if ((*parent)[e] >= 0) ++child_count[(*parent)[e]];
  }
  std::vector<int> queue;
  for (int e = 0; e < m; ++e) {
    if (child_count[e] == 0) queue.push_back(e);
  }
  order->clear();
  for (std::size_t head = 0; head < queue.size(); ++head) {
    int e = queue[head];
    order->push_back(e);
    int p = (*parent)[e];
    if (p >= 0 && --child_count[p] == 0) queue.push_back(p);
  }
  return static_cast<int>(order->size()) == m;
}

bool IsAcyclicQuery(const JoinQuery& query) {
  graph::Hypergraph h = query.Hypergraph();
  return graph::IsAlphaAcyclic(h);
}

JoinResult Semijoin(const JoinResult& a, const JoinResult& b,
                    util::Budget* budget, util::Arena* arena) {
  std::vector<int> a_cols, b_cols;
  for (std::size_t i = 0; i < a.attributes.size(); ++i) {
    auto it =
        std::find(b.attributes.begin(), b.attributes.end(), a.attributes[i]);
    if (it != b.attributes.end()) {
      a_cols.push_back(static_cast<int>(i));
      b_cols.push_back(static_cast<int>(it - b.attributes.begin()));
    }
  }
  JoinResult out;
  out.attributes = a.attributes;
  out.truncated = a.truncated || b.truncated;
  if (a_cols.empty()) {
    // No shared attributes: keep all of A iff B is nonempty.
    if (!b.tuples.empty()) out.tuples = a.tuples;
    return out;
  }
  // Flat sorted key set from B, probed by binary search: no per-tuple key
  // allocation on either side.
  FlatRelation keys(static_cast<int>(b_cols.size()));
  keys.Reserve(b.tuples.size());
  Tuple key(b_cols.size());
  for (const auto& t : b.tuples) {
    for (std::size_t i = 0; i < b_cols.size(); ++i) key[i] = t[b_cols[i]];
    keys.PushRow(key.data());
  }
  keys.SortLexAndDedup(FlatRelation::SortPolicy::kAuto, arena);
  for (const auto& t : a.tuples) {
    if (budget != nullptr && budget->Poll()) {
      out.truncated = true;
      break;
    }
    for (std::size_t i = 0; i < a_cols.size(); ++i) key[i] = t[a_cols[i]];
    if (SortedContains(keys, key.data())) out.tuples.push_back(t);
  }
  return out;
}

JoinResult SemijoinAgainstAtom(const JoinResult& a, const JoinResult& b,
                               const Atom& b_atom, const Database& db,
                               IndexCache* cache, util::Budget* budget,
                               util::Arena* arena) {
  if (cache == nullptr) return Semijoin(a, b, budget, arena);
  std::vector<int> a_cols;
  std::vector<std::string> shared;
  for (std::size_t i = 0; i < a.attributes.size(); ++i) {
    if (std::find(b.attributes.begin(), b.attributes.end(), a.attributes[i]) !=
        b.attributes.end()) {
      a_cols.push_back(static_cast<int>(i));
      shared.push_back(a.attributes[i]);
    }
  }
  JoinResult out;
  out.attributes = a.attributes;
  out.truncated = a.truncated || b.truncated;
  if (a_cols.empty()) {
    if (!b.tuples.empty()) out.tuples = a.tuples;
    return out;
  }
  // Because `b` is b_atom's pristine materialization, its projection onto
  // the shared attributes — what Semijoin would sort per call — equals
  // MaterializeSortedProjection(b_atom, ..., shared), which the cache keys
  // by relation version + signature and shares across calls and sweeps.
  IndexCache::EntryPtr keys = cache->GetOrBuild(
      b_atom.relation, db.RelationVersion(b_atom.relation),
      AtomProjectionSignature(b_atom, shared), [&]() {
        IndexCache::Entry entry;
        FlatRelation proj =
            MaterializeSortedProjection(b_atom, db, shared, arena);
        entry.no_rows = proj.empty();
        entry.trie = TrieIndex(proj, arena);
        return entry;
      });
  Tuple key(a_cols.size());
  for (const auto& t : a.tuples) {
    if (budget != nullptr && budget->Poll()) {
      out.truncated = true;
      break;
    }
    for (std::size_t i = 0; i < a_cols.size(); ++i) key[i] = t[a_cols[i]];
    if (keys->trie.ContainsRow(key.data())) out.tuples.push_back(t);
  }
  return out;
}

std::optional<JoinResult> EvaluateYannakakis(const JoinQuery& query,
                                             const Database& db,
                                             JoinStats* stats,
                                             util::Budget* budget,
                                             IndexCache* cache,
                                             util::Arena* arena) {
  std::vector<int> parent, order;
  if (!BuildJoinTree(query, &parent, &order)) return std::nullopt;
  const int m = static_cast<int>(query.atoms.size());
  if (m == 0) {
    JoinResult empty;
    empty.tuples.push_back({});
    return empty;
  }
  // On a budget trip, bail out with the canonical schema and whatever subset
  // of the answer the phases below produced (often nothing) — a dropped
  // tuple anywhere in the pipeline only ever shrinks the final answer.
  auto truncated_result = [&](std::vector<Tuple> tuples = {}) {
    JoinResult out;
    out.attributes = query.AttributeOrder();
    out.tuples = std::move(tuples);
    out.truncated = true;
    return out;
  };
  // One span per phase of Theorem 4.1's three-pass evaluation: the report's
  // tree makes the semijoin/join cost split visible per run.
  static const std::uint32_t kMaterializeSpan =
      util::Trace::InternName("yannakakis.materialize");
  static const std::uint32_t kUpSpan =
      util::Trace::InternName("yannakakis.semijoin_up");
  static const std::uint32_t kDownSpan =
      util::Trace::InternName("yannakakis.semijoin_down");
  static const std::uint32_t kJoinSpan =
      util::Trace::InternName("yannakakis.join");
  static const std::uint32_t kProjectSpan =
      util::Trace::InternName("yannakakis.project");
  std::vector<JoinResult> rel(m);
  {
    util::ScopedSpan span(kMaterializeSpan);
    for (int e = 0; e < m; ++e) {
      if (budget != nullptr && budget->Poll()) return truncated_result();
      rel[e] = MaterializeAtom(query.atoms[e], db);
    }
  }

  // Pristine = still exactly MaterializeAtom's output; only those B-sides
  // may be served from the shared key-set cache (a shrunk side's key set is
  // run-specific and must be rebuilt per call).
  std::vector<bool> pristine(m, true);
  // Upward sweep: parent ⋉ child, children first.
  {
    util::ScopedSpan span(kUpSpan);
    for (int e : order) {
      if (parent[e] >= 0) {
        rel[parent[e]] = SemijoinAgainstAtom(
            rel[parent[e]], rel[e], query.atoms[e], db,
            pristine[e] ? cache : nullptr, budget, arena);
        pristine[parent[e]] = false;
        if (rel[parent[e]].truncated) return truncated_result();
      }
    }
  }
  // Downward sweep: child ⋉ parent, root first.
  {
    util::ScopedSpan span(kDownSpan);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      if (parent[*it] >= 0) {
        rel[*it] = SemijoinAgainstAtom(
            rel[*it], rel[parent[*it]], query.atoms[parent[*it]], db,
            pristine[parent[*it]] ? cache : nullptr, budget, arena);
        pristine[*it] = false;
        if (rel[*it].truncated) return truncated_result();
      }
    }
  }
  // Join phase: fold children into parents bottom-up; the root accumulates
  // the full answer.
  std::vector<JoinResult> acc = rel;
  int root = -1;
  {
    util::ScopedSpan span(kJoinSpan);
    for (int e : order) {
      if (parent[e] >= 0) {
        acc[parent[e]] = HashJoin(acc[parent[e]], acc[e], stats, budget);
        if (acc[parent[e]].truncated) return truncated_result();
      } else {
        root = e;
      }
    }
  }
  util::ScopedSpan project_span(kProjectSpan);
  JoinResult answer = std::move(acc[root]);
  // Align the schema with the canonical attribute order.
  std::vector<std::string> want = query.AttributeOrder();
  std::vector<int> perm;
  perm.reserve(want.size());
  for (const auto& a : want) {
    auto it = std::find(answer.attributes.begin(), answer.attributes.end(), a);
    perm.push_back(static_cast<int>(it - answer.attributes.begin()));
  }
  JoinResult out;
  out.attributes = want;
  out.tuples.reserve(answer.tuples.size());
  for (const auto& t : answer.tuples) {
    // Charge each delivered answer row so `--max-rows` caps the final
    // output exactly, mirroring GenericJoin::Evaluate.
    Tuple reordered;
    reordered.reserve(perm.size());
    for (int c : perm) reordered.push_back(t[c]);
    out.tuples.push_back(std::move(reordered));
    if (budget != nullptr && budget->ChargeRows(1)) {
      out.truncated = true;
      break;
    }
  }
  return out;
}

std::optional<bool> BooleanYannakakis(const JoinQuery& query,
                                      const Database& db,
                                      util::Budget* budget,
                                      IndexCache* cache,
                                      util::Arena* arena) {
  std::vector<int> parent, order;
  if (!BuildJoinTree(query, &parent, &order)) return std::nullopt;
  const int m = static_cast<int>(query.atoms.size());
  if (m == 0) return true;
  std::vector<JoinResult> rel(m);
  for (int e = 0; e < m; ++e) {
    if (budget != nullptr && budget->Poll()) return false;  // Unknown.
    rel[e] = MaterializeAtom(query.atoms[e], db);
  }
  std::vector<bool> pristine(m, true);
  int root = -1;
  for (int e : order) {
    if (parent[e] >= 0) {
      rel[parent[e]] = SemijoinAgainstAtom(rel[parent[e]], rel[e],
                                           query.atoms[e], db,
                                           pristine[e] ? cache : nullptr,
                                           budget, arena);
      pristine[parent[e]] = false;
    } else {
      root = e;
    }
  }
  return !rel[root].tuples.empty();
}

}  // namespace qc::db
