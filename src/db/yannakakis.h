#ifndef QC_DB_YANNAKAKIS_H_
#define QC_DB_YANNAKAKIS_H_

#include <optional>

#include "db/index_cache.h"
#include "db/joins.h"
#include "util/budget.h"

namespace qc::db {

/// True if the query hypergraph is alpha-acyclic (GYO reducible).
bool IsAcyclicQuery(const JoinQuery& query);

/// Builds the GYO join tree of an acyclic query: parent atom index per atom
/// (-1 at the root) and a children-before-parents processing order. Returns
/// false if the query is cyclic.
bool BuildJoinTree(const JoinQuery& query, std::vector<int>* parent,
                   std::vector<int>* order);

/// Semijoin A ⋉ B: tuples of A whose projection onto the shared attributes
/// occurs in B. Polls `budget` once per probed tuple; on a trip the result
/// carries the tuples kept so far with `truncated = true`. `arena`, when
/// non-null, backs the key-set sort scratch.
JoinResult Semijoin(const JoinResult& a, const JoinResult& b,
                    util::Budget* budget = nullptr,
                    util::Arena* arena = nullptr);

/// Semijoin A ⋉ B where B is the *pristine* materialization of `b_atom`:
/// MaterializeAtom(b_atom, db), possibly Normalize()d, but never shrunk by
/// an earlier semijoin (reordering/deduplicating B cannot change its key
/// set; dropping rows can). Produces output identical to
/// Semijoin(a, b, budget) — same
/// tuples, same order, same per-probe budget poll points — but when `cache`
/// is non-null the sorted key set over the shared attributes comes from the
/// shared IndexCache (keyed by relation version + projection signature), so
/// a warm cache skips the per-call project+sort entirely and probes the
/// cached trie instead. With `cache == nullptr` it defers to Semijoin.
JoinResult SemijoinAgainstAtom(const JoinResult& a, const JoinResult& b,
                               const Atom& b_atom, const Database& db,
                               IndexCache* cache,
                               util::Budget* budget = nullptr,
                               util::Arena* arena = nullptr);

/// Yannakakis' algorithm for alpha-acyclic queries: two semijoin sweeps over
/// the GYO join tree (full reduction), then joins along the tree, keeping
/// every intermediate no larger than its own size times the output.
/// Returns nullopt if the query is cyclic. Observes `budget` at every
/// per-tuple safe point; when it trips, the returned result has
/// `truncated = true`, the canonical attribute schema, and a subset of the
/// answer rows (possibly none) — inspect budget->status() for the cause.
/// When `cache` is non-null, the semijoin sweeps probe cached key-set tries
/// for pristine (never-yet-shrunk) B-sides — in tree order that is exactly
/// the leaf atoms of the upward sweep; answers are bit-identical either way.
std::optional<JoinResult> EvaluateYannakakis(const JoinQuery& query,
                                             const Database& db,
                                             JoinStats* stats = nullptr,
                                             util::Budget* budget = nullptr,
                                             IndexCache* cache = nullptr,
                                             util::Arena* arena = nullptr);

/// Boolean acyclic query evaluation: one semijoin sweep towards the root;
/// nonempty root == nonempty answer. Returns nullopt if cyclic. On a budget
/// trip the verdict is unreliable only when it says "empty": callers must
/// treat a `false` under budget->Stopped() as Unknown.
std::optional<bool> BooleanYannakakis(const JoinQuery& query,
                                      const Database& db,
                                      util::Budget* budget = nullptr,
                                      IndexCache* cache = nullptr,
                                      util::Arena* arena = nullptr);

}  // namespace qc::db

#endif  // QC_DB_YANNAKAKIS_H_
