#ifndef QC_DB_YANNAKAKIS_H_
#define QC_DB_YANNAKAKIS_H_

#include <optional>

#include "db/joins.h"

namespace qc::db {

/// True if the query hypergraph is alpha-acyclic (GYO reducible).
bool IsAcyclicQuery(const JoinQuery& query);

/// Builds the GYO join tree of an acyclic query: parent atom index per atom
/// (-1 at the root) and a children-before-parents processing order. Returns
/// false if the query is cyclic.
bool BuildJoinTree(const JoinQuery& query, std::vector<int>* parent,
                   std::vector<int>* order);

/// Semijoin A ⋉ B: tuples of A whose projection onto the shared attributes
/// occurs in B.
JoinResult Semijoin(const JoinResult& a, const JoinResult& b);

/// Yannakakis' algorithm for alpha-acyclic queries: two semijoin sweeps over
/// the GYO join tree (full reduction), then joins along the tree, keeping
/// every intermediate no larger than its own size times the output.
/// Returns nullopt if the query is cyclic.
std::optional<JoinResult> EvaluateYannakakis(const JoinQuery& query,
                                             const Database& db,
                                             JoinStats* stats = nullptr);

/// Boolean acyclic query evaluation: one semijoin sweep towards the root;
/// nonempty root == nonempty answer. Returns nullopt if cyclic.
std::optional<bool> BooleanYannakakis(const JoinQuery& query,
                                      const Database& db);

}  // namespace qc::db

#endif  // QC_DB_YANNAKAKIS_H_
