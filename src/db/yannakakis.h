#ifndef QC_DB_YANNAKAKIS_H_
#define QC_DB_YANNAKAKIS_H_

#include <optional>

#include "db/joins.h"
#include "util/budget.h"

namespace qc::db {

/// True if the query hypergraph is alpha-acyclic (GYO reducible).
bool IsAcyclicQuery(const JoinQuery& query);

/// Builds the GYO join tree of an acyclic query: parent atom index per atom
/// (-1 at the root) and a children-before-parents processing order. Returns
/// false if the query is cyclic.
bool BuildJoinTree(const JoinQuery& query, std::vector<int>* parent,
                   std::vector<int>* order);

/// Semijoin A ⋉ B: tuples of A whose projection onto the shared attributes
/// occurs in B. Polls `budget` once per probed tuple; on a trip the result
/// carries the tuples kept so far with `truncated = true`.
JoinResult Semijoin(const JoinResult& a, const JoinResult& b,
                    util::Budget* budget = nullptr);

/// Yannakakis' algorithm for alpha-acyclic queries: two semijoin sweeps over
/// the GYO join tree (full reduction), then joins along the tree, keeping
/// every intermediate no larger than its own size times the output.
/// Returns nullopt if the query is cyclic. Observes `budget` at every
/// per-tuple safe point; when it trips, the returned result has
/// `truncated = true`, the canonical attribute schema, and a subset of the
/// answer rows (possibly none) — inspect budget->status() for the cause.
std::optional<JoinResult> EvaluateYannakakis(const JoinQuery& query,
                                             const Database& db,
                                             JoinStats* stats = nullptr,
                                             util::Budget* budget = nullptr);

/// Boolean acyclic query evaluation: one semijoin sweep towards the root;
/// nonempty root == nonempty answer. Returns nullopt if cyclic. On a budget
/// trip the verdict is unreliable only when it says "empty": callers must
/// treat a `false` under budget->Stopped() as Unknown.
std::optional<bool> BooleanYannakakis(const JoinQuery& query,
                                      const Database& db,
                                      util::Budget* budget = nullptr);

}  // namespace qc::db

#endif  // QC_DB_YANNAKAKIS_H_
