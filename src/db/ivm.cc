#include "db/ivm.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <set>
#include <unordered_map>
#include <utility>

#include "db/joins.h"
#include "db/parser.h"
#include "db/yannakakis.h"

namespace qc::db {

namespace {

/// Skew threshold at which intersection counting switches from a linear
/// merge to galloping probes of the larger side — same policy (and ratio)
/// as the kernel layer's kGallopSkewRatio, restated here because the IVM
/// adjacency lists are plain sorted vectors, not kernel spans.
constexpr std::size_t kGallopSkewRatio = 32;

std::uint64_t CountSortedIntersect(const std::vector<Value>& a,
                                   const std::vector<Value>& b) {
  const std::vector<Value>& small = a.size() <= b.size() ? a : b;
  const std::vector<Value>& large = a.size() <= b.size() ? b : a;
  if (small.empty()) return 0;
  std::uint64_t count = 0;
  if (large.size() / small.size() >= kGallopSkewRatio) {
    auto lo = large.begin();
    for (Value x : small) {
      lo = std::lower_bound(lo, large.end(), x);
      if (lo == large.end()) break;
      if (*lo == x) {
        ++count;
        ++lo;
      }
    }
    return count;
  }
  auto ia = small.begin();
  auto ib = large.begin();
  while (ia != small.end() && ib != large.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

/// Inserts into a sorted vector keeping it sorted; false if already there.
bool SortedInsert(std::vector<Value>& vec, Value x) {
  auto it = std::lower_bound(vec.begin(), vec.end(), x);
  if (it != vec.end() && *it == x) return false;
  vec.insert(it, x);
  return true;
}

std::string TrimCopy(const std::string& text) {
  std::size_t b = text.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = text.find_last_not_of(" \t\r\n");
  return text.substr(b, e - b + 1);
}

}  // namespace

namespace ivm_internal {

/// Per-view maintained state. The join-side members implement the delta
/// rule; the triangle-side members the per-edge counting. Exactly one side
/// is populated, per def.kind.
struct ViewState {
  ViewDefinition def;
  std::uint64_t epoch = 0;
  /// Relations the view reads — the commit filter.
  std::set<std::string> relations;

  // ---- kJoin ----

  /// Canonical schema (query AttributeOrder) and the normalized result:
  /// lex-sorted, duplicate-free rows over it.
  std::vector<std::string> attributes;
  std::vector<Tuple> rows;

  /// Per-atom access shape: distinct attributes, the source column of
  /// each, the repeated-attribute equality filter, and each attribute's
  /// canonical index.
  struct Shape {
    std::vector<std::string> attrs;
    std::vector<int> src_col;
    std::vector<std::pair<int, int>> eq_checks;
    std::vector<int> canon;
  };
  std::vector<Shape> shapes;

  /// One probe of the delta expansion: look up `atom`'s sorted projection
  /// (columns in proj_attrs order, the first key_len of which are the
  /// already-bound join key) and bind every projection column into the
  /// partial tuple.
  struct Step {
    int atom = 0;
    int key_len = 0;
    std::vector<int> key_from;  ///< Canonical index per key column.
    std::vector<int> bind_to;   ///< Canonical index per projection column.
    std::vector<std::string> proj_attrs;
    std::string cache_key;
  };
  /// plans[d] = the sweep executed when atom d is dirty: a breadth-first
  /// walk of the join tree rooted at d (so only subtrees reachable from
  /// the dirty atom are touched), with any disconnected components
  /// appended last (their key is empty — a cross product, as the query
  /// semantics demand).
  std::vector<std::vector<Step>> plans;

  /// Sorted projections reused across commits, keyed by the source
  /// relation's version stamp — a clean relation's projection survives any
  /// number of commits that do not touch it.
  struct ProjEntry {
    bool valid = false;
    std::uint64_t version = 0;
    FlatRelation proj;
  };
  std::map<std::string, ProjEntry> proj_cache;

  // ---- kTriangleCount ----

  std::uint64_t count = 0;
  /// Sorted out-/in-neighbor lists (set semantics: duplicate edge rows are
  /// ignored on insert).
  std::unordered_map<Value, std::vector<Value>> out_adj;
  std::unordered_map<Value, std::vector<Value>> in_adj;
};

}  // namespace ivm_internal

namespace {

using View = ivm_internal::ViewState;

bool PassesEqChecks(const FlatRelation& flat, std::size_t row,
                    const std::vector<std::pair<int, int>>& eq_checks) {
  for (const auto& [i, j] : eq_checks) {
    if (flat.At(row, i) != flat.At(row, j)) return false;
  }
  return true;
}

/// Rows of `rel` (sorted lexicographically) whose first key_from.size()
/// columns equal partial[key_from[i]]. Empty key = the whole relation.
std::pair<std::size_t, std::size_t> PrefixEqualRange(
    const FlatRelation& rel, const Tuple& partial,
    const std::vector<int>& key_from) {
  const std::size_t n = rel.size();
  const int k = static_cast<int>(key_from.size());
  if (k == 0) return {0, n};
  auto row_less_key = [&](std::size_t row) {
    for (int c = 0; c < k; ++c) {
      Value rv = rel.At(row, c);
      Value kv = partial[key_from[c]];
      if (rv != kv) return rv < kv;
    }
    return false;
  };
  auto key_less_row = [&](std::size_t row) {
    for (int c = 0; c < k; ++c) {
      Value rv = rel.At(row, c);
      Value kv = partial[key_from[c]];
      if (rv != kv) return kv < rv;
    }
    return false;
  };
  std::size_t lo = 0, hi = n;
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (row_less_key(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  std::size_t first = lo;
  hi = n;
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (key_less_row(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return {first, lo};
}

/// Builds shapes, the join tree, and the per-dirty-atom sweep plans.
/// Caller guarantees the query is acyclic (Validate ran).
void BuildJoinPlans(View& v) {
  const JoinQuery& query = v.def.query;
  const std::size_t m = query.atoms.size();
  v.attributes = query.AttributeOrder();
  std::map<std::string, int> canon = query.AttributeIndex();

  v.shapes.clear();
  v.shapes.resize(m);
  for (std::size_t a = 0; a < m; ++a) {
    const Atom& atom = query.atoms[a];
    View::Shape& sh = v.shapes[a];
    sh.attrs = AtomAttributes(atom);
    std::map<std::string, int> first_col;
    for (std::size_t c = 0; c < atom.attributes.size(); ++c) {
      auto [it, inserted] =
          first_col.emplace(atom.attributes[c], static_cast<int>(c));
      if (!inserted) {
        sh.eq_checks.emplace_back(it->second, static_cast<int>(c));
      }
    }
    for (const std::string& attr : sh.attrs) {
      sh.src_col.push_back(first_col.at(attr));
      sh.canon.push_back(canon.at(attr));
    }
  }

  std::vector<int> parent;
  std::vector<int> order;
  BuildJoinTree(query, &parent, &order);
  std::vector<std::vector<int>> adj(m);
  for (std::size_t a = 0; a < m; ++a) {
    if (parent[a] >= 0) {
      adj[a].push_back(parent[a]);
      adj[parent[a]].push_back(static_cast<int>(a));
    }
  }

  v.plans.assign(m, {});
  for (std::size_t d = 0; d < m; ++d) {
    std::vector<char> used(m, 0);
    std::vector<char> bound(v.attributes.size(), 0);
    used[d] = 1;
    for (int ci : v.shapes[d].canon) bound[ci] = 1;

    auto push_step = [&](int a) {
      const View::Shape& sh = v.shapes[a];
      View::Step step;
      step.atom = a;
      std::vector<std::string> key_attrs, rest_attrs;
      for (std::size_t k = 0; k < sh.attrs.size(); ++k) {
        if (bound[sh.canon[k]]) {
          key_attrs.push_back(sh.attrs[k]);
          step.key_from.push_back(sh.canon[k]);
        } else {
          rest_attrs.push_back(sh.attrs[k]);
        }
      }
      step.key_len = static_cast<int>(key_attrs.size());
      step.proj_attrs = key_attrs;
      step.proj_attrs.insert(step.proj_attrs.end(), rest_attrs.begin(),
                             rest_attrs.end());
      for (const std::string& attr : step.proj_attrs) {
        step.bind_to.push_back(canon.at(attr));
      }
      step.cache_key = std::to_string(a) + "|" +
                       AtomProjectionSignature(v.def.query.atoms[a],
                                               step.proj_attrs);
      for (int ci : sh.canon) bound[ci] = 1;
      used[a] = 1;
      v.plans[d].push_back(std::move(step));
    };

    std::deque<int> queue{static_cast<int>(d)};
    while (!queue.empty()) {
      int cur = queue.front();
      queue.pop_front();
      for (int nb : adj[cur]) {
        if (used[nb]) continue;
        push_step(nb);
        queue.push_back(nb);
      }
    }
    // Atoms in other connected components (attribute-disjoint by
    // construction of the join forest): cross products, appended last.
    for (std::size_t a = 0; a < m; ++a) {
      if (!used[a]) push_step(static_cast<int>(a));
    }
  }
}

const FlatRelation& GetProjection(View& v, const View::Step& step,
                                  const Database& db) {
  const Atom& atom = v.def.query.atoms[step.atom];
  View::ProjEntry& entry = v.proj_cache[step.cache_key];
  std::uint64_t version = db.RelationVersion(atom.relation);
  if (!entry.valid || entry.version != version) {
    entry.proj = MaterializeSortedProjection(atom, db, step.proj_attrs);
    entry.version = version;
    entry.valid = true;
  }
  return entry.proj;
}

void ExpandSteps(View& v, const Database& db,
                 const std::vector<View::Step>& plan, std::size_t si,
                 Tuple& partial, std::vector<Tuple>& out) {
  if (si == plan.size()) {
    out.push_back(partial);
    return;
  }
  const View::Step& step = plan[si];
  const FlatRelation& proj = GetProjection(v, step, db);
  auto [lo, hi] = PrefixEqualRange(proj, partial, step.key_from);
  const int arity = proj.arity();
  for (std::size_t r = lo; r < hi; ++r) {
    for (int c = 0; c < arity; ++c) {
      partial[step.bind_to[c]] = proj.At(r, c);
    }
    ExpandSteps(v, db, plan, si + 1, partial, out);
  }
}

/// Directed edge u->w becomes present (caller already dropped duplicates
/// and updated the adjacency lists to the post-insert state E'). Counts
/// the triangles the new edge completes, in each of its three possible
/// roles, with inclusion–exclusion for triangles that use it twice:
///
///   as E(a,b): c in out'(w) ∩ out'(u)
///   as E(b,c): a in in'(u) ∩ in'(w)
///   as E(a,c): b in out'(u) ∩ in'(w)
///   minus [ (w,w) in E' ] + [ (u,u) in E' ]
///
/// The subtractions remove the double count of triangles (u,w,w) and
/// (u,u,w), which use the new edge in two roles at once; when u == w the
/// self-triangle (u,u,u) is counted three times and both corrections fire.
std::uint64_t TriangleDeltaForEdge(const View& v, Value u, Value w) {
  static const std::vector<Value> kEmpty;
  auto list = [&](const std::unordered_map<Value, std::vector<Value>>& adj,
                  Value x) -> const std::vector<Value>& {
    auto it = adj.find(x);
    return it == adj.end() ? kEmpty : it->second;
  };
  auto has_edge = [&](Value a, Value b) {
    const std::vector<Value>& outs = list(v.out_adj, a);
    return std::binary_search(outs.begin(), outs.end(), b);
  };
  std::uint64_t delta = CountSortedIntersect(list(v.out_adj, w),
                                             list(v.out_adj, u)) +
                        CountSortedIntersect(list(v.in_adj, u),
                                             list(v.in_adj, w)) +
                        CountSortedIntersect(list(v.out_adj, u),
                                             list(v.in_adj, w));
  if (has_edge(w, w)) --delta;
  if (has_edge(u, u)) --delta;
  return delta;
}

/// Applies one edge row; false (and no state change) on a duplicate.
bool ApplyEdgeInsert(View& v, Value u, Value w) {
  if (!SortedInsert(v.out_adj[u], w)) return false;
  SortedInsert(v.in_adj[w], u);
  v.count += TriangleDeltaForEdge(v, u, w);
  return true;
}

}  // namespace

ViewRegistry::ViewRegistry() = default;
ViewRegistry::~ViewRegistry() = default;

namespace {

MutationResult ValidateDefinition(const ViewDefinition& def,
                                  const Database& db) {
  if (def.name.empty()) {
    return MutationResult::Fail("view name must be non-empty");
  }
  switch (def.kind) {
    case ViewDefinition::Kind::kJoin: {
      if (def.query.atoms.empty()) {
        return MutationResult::Fail("view '" + def.name +
                                    "': query has no atoms");
      }
      for (const Atom& atom : def.query.atoms) {
        if (!db.HasRelation(atom.relation)) {
          return MutationResult::Fail("view '" + def.name +
                                      "': unknown relation '" +
                                      atom.relation + "'");
        }
        if (static_cast<int>(atom.attributes.size()) !=
            db.Arity(atom.relation)) {
          return MutationResult::Fail(
              "view '" + def.name + "': atom over '" + atom.relation +
              "' has " + std::to_string(atom.attributes.size()) +
              " attributes, relation arity is " +
              std::to_string(db.Arity(atom.relation)));
        }
      }
      if (!IsAcyclicQuery(def.query)) {
        return MutationResult::Fail("view '" + def.name +
                                    "': query is not acyclic (only "
                                    "alpha-acyclic joins are maintainable)");
      }
      return MutationResult::Ok();
    }
    case ViewDefinition::Kind::kTriangleCount: {
      if (!db.HasRelation(def.relation)) {
        return MutationResult::Fail("view '" + def.name +
                                    "': unknown relation '" + def.relation +
                                    "'");
      }
      if (db.Arity(def.relation) != 2) {
        return MutationResult::Fail(
            "view '" + def.name + "': triangle counting needs a binary "
            "relation, '" + def.relation + "' has arity " +
            std::to_string(db.Arity(def.relation)));
      }
      return MutationResult::Ok();
    }
  }
  return MutationResult::Fail("view '" + def.name + "': unknown kind");
}

}  // namespace

MutationResult ViewRegistry::Validate(const ViewDefinition& def,
                                      const Database& db) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (views_.count(def.name) != 0) {
    return MutationResult::Fail("view '" + def.name +
                                "' is already registered");
  }
  return ValidateDefinition(def, db);
}

MutationResult ViewRegistry::Register(const ViewDefinition& def,
                                      const Database& db,
                                      std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (views_.count(def.name) != 0) {
    return MutationResult::Fail("view '" + def.name +
                                "' is already registered");
  }
  MutationResult valid = ValidateDefinition(def, db);
  if (!valid) return valid;

  auto view = std::make_unique<ivm_internal::ViewState>();
  view->def = def;
  view->epoch = epoch;
  if (def.kind == ViewDefinition::Kind::kJoin) {
    for (const Atom& atom : def.query.atoms) {
      view->relations.insert(atom.relation);
    }
    BuildJoinPlans(*view);
  } else {
    view->relations.insert(def.relation);
  }
  MutationResult computed = RecomputeLocked(*view, db);
  if (!computed) return computed;
  views_[def.name] = std::move(view);
  stats_.views = views_.size();
  return MutationResult::Ok();
}

bool ViewRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  bool erased = views_.erase(name) != 0;
  stats_.views = views_.size();
  return erased;
}

ViewRead ViewRegistry::Read(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  ViewRead out;
  auto it = views_.find(name);
  if (it == views_.end()) {
    out.error = "no such view '" + name + "'";
    return out;
  }
  const View& v = *it->second;
  out.ok = true;
  out.kind = v.def.kind;
  out.epoch = v.epoch;
  if (v.def.kind == ViewDefinition::Kind::kJoin) {
    out.attributes = v.attributes;
    out.rows = v.rows;
  } else {
    out.attributes = {"count"};
    out.rows = {{static_cast<Value>(v.count)}};
  }
  return out;
}

bool ViewRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.count(name) != 0;
}

std::vector<std::string> ViewRegistry::ViewNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, view] : views_) names.push_back(name);
  return names;
}

bool ViewRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.empty();
}

std::size_t ViewRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.size();
}

IvmStats ViewRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<WalRecord> ViewRegistry::DefinitionRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WalRecord> records;
  records.reserve(views_.size());
  for (const auto& [name, view] : views_) {
    records.push_back(ViewDefinitionRecord(view->def));
  }
  return records;
}

void ViewRegistry::OnCommit(const Database& db, std::uint64_t epoch,
                            const std::vector<RelationDelta>& deltas) {
  std::lock_guard<std::mutex> lock(mu_);
  if (views_.empty()) return;
  bool touched_any = false;
  for (auto& [name, view] : views_) {
    view->epoch = epoch;
    bool touched = false;
    for (const RelationDelta& delta : deltas) {
      if (view->relations.count(delta.relation) != 0) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;
    touched_any = true;
    MaintainLocked(*view, db, deltas);
  }
  if (touched_any) ++stats_.updates;
}

void ViewRegistry::MaintainLocked(ivm_internal::ViewState& view,
                                  const Database& db,
                                  const std::vector<RelationDelta>& deltas) {
  // Any replace-style delta on a view relation forfeits the delta rule.
  for (const RelationDelta& delta : deltas) {
    if (view.relations.count(delta.relation) != 0 &&
        delta.kind == RelationDelta::Kind::kReplace) {
      RecomputeLocked(view, db);
      return;
    }
  }

  if (view.def.kind == ViewDefinition::Kind::kTriangleCount) {
    for (const RelationDelta& delta : deltas) {
      if (delta.relation != view.def.relation) continue;
      const FlatRelation& flat = db.Flat(delta.relation);
      std::size_t from = std::min(delta.old_size, flat.size());
      if (from >= flat.size()) continue;
      ++stats_.dirty_subtree_sweeps;
      for (std::size_t r = from; r < flat.size(); ++r) {
        if (ApplyEdgeInsert(view, flat.At(r, 0), flat.At(r, 1))) {
          ++stats_.rows_delta_applied;
        }
      }
    }
    return;
  }

  // Delta rule: dQ = union over dirty atoms d of Q[d -> delta_d], all
  // other atoms at their post-commit state. Sound under insert-only set
  // semantics (a new result row uses a new tuple in at least one atom);
  // the union's overcount is removed by dedup against the stored rows.
  std::map<std::string, const RelationDelta*> by_relation;
  for (const RelationDelta& delta : deltas) by_relation[delta.relation] = &delta;
  std::vector<Tuple> candidates;
  Tuple partial(view.attributes.size(), 0);
  for (std::size_t a = 0; a < view.def.query.atoms.size(); ++a) {
    const Atom& atom = view.def.query.atoms[a];
    auto it = by_relation.find(atom.relation);
    if (it == by_relation.end()) continue;
    const RelationDelta& delta = *it->second;
    const FlatRelation& flat = db.Flat(atom.relation);
    std::size_t from = std::min(delta.old_size, flat.size());
    if (from >= flat.size()) continue;
    ++stats_.dirty_subtree_sweeps;
    const View::Shape& sh = view.shapes[a];
    for (std::size_t r = from; r < flat.size(); ++r) {
      if (!PassesEqChecks(flat, r, sh.eq_checks)) continue;
      for (std::size_t k = 0; k < sh.canon.size(); ++k) {
        partial[sh.canon[k]] = flat.At(r, sh.src_col[k]);
      }
      ExpandSteps(view, db, view.plans[a], 0, partial, candidates);
    }
  }
  if (candidates.empty()) return;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<Tuple> fresh;
  fresh.reserve(candidates.size());
  for (Tuple& t : candidates) {
    if (!std::binary_search(view.rows.begin(), view.rows.end(), t)) {
      fresh.push_back(std::move(t));
    }
  }
  if (fresh.empty()) return;
  stats_.rows_delta_applied += fresh.size();
  std::size_t mid = view.rows.size();
  view.rows.insert(view.rows.end(), std::make_move_iterator(fresh.begin()),
                   std::make_move_iterator(fresh.end()));
  std::inplace_merge(view.rows.begin(), view.rows.begin() + mid,
                     view.rows.end());
}

MutationResult ViewRegistry::RecomputeLocked(ivm_internal::ViewState& view,
                                             const Database& db) {
  ++stats_.full_recomputes;
  if (view.def.kind == ViewDefinition::Kind::kTriangleCount) {
    view.count = 0;
    view.out_adj.clear();
    view.in_adj.clear();
    const FlatRelation& flat = db.Flat(view.def.relation);
    for (std::size_t r = 0; r < flat.size(); ++r) {
      ApplyEdgeInsert(view, flat.At(r, 0), flat.At(r, 1));
    }
    return MutationResult::Ok();
  }
  std::optional<JoinResult> result = EvaluateYannakakis(view.def.query, db);
  if (!result.has_value()) {
    return MutationResult::Fail("view '" + view.def.name +
                                "': query is not acyclic");
  }
  result->Normalize();
  view.attributes = std::move(result->attributes);
  view.rows = std::move(result->tuples);
  return MutationResult::Ok();
}

WalRecord ViewDefinitionRecord(const ViewDefinition& def) {
  WalRecord record;
  record.kind = WalRecord::Kind::kViewDef;
  record.relation = def.name;
  record.arity = static_cast<int>(def.kind);
  record.dataset = def.text;
  return record;
}

MutationResult ViewDefinitionFromRecord(const WalRecord& record,
                                        ViewDefinition* out) {
  if (record.kind != WalRecord::Kind::kViewDef) {
    return MutationResult::Fail("not a view definition record");
  }
  ViewDefinition def;
  def.name = record.relation;
  def.text = record.dataset;
  switch (record.arity) {
    case 0: {
      def.kind = ViewDefinition::Kind::kJoin;
      ParseResult<JoinQuery> parsed = ParseJoinQuery(record.dataset);
      if (!parsed) {
        return MutationResult::Fail("view '" + def.name + "': " +
                                    parsed.error.ToString());
      }
      def.query = std::move(*parsed);
      break;
    }
    case 1:
      def.kind = ViewDefinition::Kind::kTriangleCount;
      def.relation = TrimCopy(record.dataset);
      if (def.relation.empty()) {
        return MutationResult::Fail("view '" + def.name +
                                    "': empty relation name");
      }
      break;
    default:
      return MutationResult::Fail("view '" + def.name +
                                  "': unknown view kind " +
                                  std::to_string(record.arity));
  }
  *out = std::move(def);
  return MutationResult::Ok();
}

ViewRead RecomputeView(const ViewDefinition& def, const Database& db,
                       std::uint64_t epoch) {
  ViewRead out;
  out.kind = def.kind;
  out.epoch = epoch;
  if (def.kind == ViewDefinition::Kind::kJoin) {
    std::optional<JoinResult> result = EvaluateYannakakis(def.query, db);
    if (!result.has_value()) {
      out.error = "view '" + def.name + "': query is not acyclic";
      return out;
    }
    result->Normalize();
    out.ok = true;
    out.attributes = std::move(result->attributes);
    out.rows = std::move(result->tuples);
    return out;
  }
  // Independent static count (different code path from the incremental
  // maintenance on purpose): every triangle (a,b,c) is counted exactly
  // once, by its (a,b) edge, as |out(a) ∩ out(b)|.
  if (!db.HasRelation(def.relation) || db.Arity(def.relation) != 2) {
    out.error = "view '" + def.name + "': relation '" + def.relation +
                "' missing or not binary";
    return out;
  }
  std::unordered_map<Value, std::vector<Value>> out_adj;
  const FlatRelation& flat = db.Flat(def.relation);
  for (std::size_t r = 0; r < flat.size(); ++r) {
    SortedInsert(out_adj[flat.At(r, 0)], flat.At(r, 1));
  }
  std::uint64_t total = 0;
  for (const auto& [a, outs] : out_adj) {
    for (Value b : outs) {
      auto it = out_adj.find(b);
      if (it == out_adj.end()) continue;
      total += CountSortedIntersect(outs, it->second);
    }
  }
  out.ok = true;
  out.attributes = {"count"};
  out.rows = {{static_cast<Value>(total)}};
  return out;
}

}  // namespace qc::db
