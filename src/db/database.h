#ifndef QC_DB_DATABASE_H_
#define QC_DB_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "db/flat_relation.h"
#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace qc::db {

/// One atom R(a1, ..., ar) of a join query.
struct Atom {
  std::string relation;                 ///< Relation name.
  std::vector<std::string> attributes;  ///< Column attribute names.
};

/// A (natural) join query Q = R1(...) |><| ... |><| Rm(...) as in
/// Section 2.1. Repeated relation names are allowed (self-joins); repeated
/// attributes within an atom are allowed and mean equality on the columns.
struct JoinQuery {
  std::vector<Atom> atoms;

  /// Adds an atom and returns *this (builder style).
  JoinQuery& Add(std::string relation, std::vector<std::string> attributes);

  /// Distinct attributes in order of first appearance — the result schema.
  std::vector<std::string> AttributeOrder() const;

  /// Index of each attribute in AttributeOrder().
  std::map<std::string, int> AttributeIndex() const;

  /// Query hypergraph (Section 3): vertices = attributes, one hyperedge per
  /// atom.
  graph::Hypergraph Hypergraph() const;

  /// Primal graph of the query.
  graph::Graph PrimalGraph() const;
};

/// A database instance: named relations with explicit arity.
///
/// Storage is flat and columnar (FlatRelation): every relation is one
/// contiguous Value array with arity stride. The engines (Generic Join's
/// trie build, semijoins, enumeration) read the flat data directly via
/// Flat(); the legacy row-wise Tuples() accessor materializes a cached
/// vector<Tuple> on first use so existing callers stay source-compatible.
class Database {
 public:
  /// Creates/replaces a relation. All tuples must have size `arity`.
  void SetRelation(const std::string& name, int arity,
                   std::vector<Tuple> tuples);

  /// Creates/replaces a relation from flat storage directly (zero-copy).
  void SetRelation(const std::string& name, FlatRelation relation);

  /// Appends one tuple (relation must exist).
  void AddTuple(const std::string& name, Tuple tuple);

  bool HasRelation(const std::string& name) const;
  int Arity(const std::string& name) const;

  /// Flat columnar storage of the relation — the primary representation.
  const FlatRelation& Flat(const std::string& name) const;

  /// Number of tuples without materializing rows.
  std::size_t NumTuples(const std::string& name) const;

  /// Legacy row-wise view; lazily materialized from the flat storage and
  /// cached until the relation is next mutated.
  const std::vector<Tuple>& Tuples(const std::string& name) const;

  /// N = max number of tuples in any relation (0 for the empty database).
  std::size_t MaxRelationSize() const;

  std::vector<std::string> RelationNames() const;

 private:
  struct Rel {
    FlatRelation flat;
    mutable std::vector<Tuple> row_cache;
    mutable bool row_cache_valid = false;
  };
  std::map<std::string, Rel> relations_;
};

/// A materialized query result: schema plus tuples. This row-wise struct is
/// the stable materialized-output boundary — engines compute on FlatRelation
/// internally and convert at the edges.
struct JoinResult {
  std::vector<std::string> attributes;
  std::vector<Tuple> tuples;
  /// True when the producing engine stopped early (deadline, row limit,
  /// cancellation): `tuples` is a subset of the true answer.
  bool truncated = false;

  /// Sorts tuples (for order-insensitive comparison in tests) and removes
  /// duplicates.
  void Normalize();

  /// Copies the tuples into flat columnar storage.
  FlatRelation ToFlat() const;

  /// Builds a result from flat storage (copies rows out).
  static JoinResult FromFlat(std::vector<std::string> attributes,
                             const FlatRelation& relation);
};

/// Reference evaluation by full nested-loop enumeration over the attribute
/// domains induced by the database; exponential, for testing only.
JoinResult EvaluateNestedLoop(const JoinQuery& query, const Database& db);

/// True if `tuple` (aligned with `attrs`) satisfies every atom of `query`.
bool TupleSatisfiesQuery(const JoinQuery& query, const Database& db,
                         const std::vector<std::string>& attrs,
                         const Tuple& tuple);

}  // namespace qc::db

#endif  // QC_DB_DATABASE_H_
