#ifndef QC_DB_DATABASE_H_
#define QC_DB_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/flat_relation.h"
#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace qc::db {

/// Outcome of a Database mutation. Malformed input (arity mismatch, missing
/// relation) is a diagnostic, not a process abort: the mutation is rejected,
/// the database is left unchanged, and the caller decides how to surface the
/// message (the CLIs print it and exit 1 — the same structured-error
/// convention the text parsers follow with util::ParseError).
struct MutationResult {
  bool ok = true;
  std::string message;  ///< Meaningful only when !ok.

  explicit operator bool() const { return ok; }

  static MutationResult Ok() { return MutationResult{}; }
  static MutationResult Fail(std::string message) {
    return MutationResult{false, std::move(message)};
  }
};

/// One atom R(a1, ..., ar) of a join query.
struct Atom {
  std::string relation;                 ///< Relation name.
  std::vector<std::string> attributes;  ///< Column attribute names.
};

/// A (natural) join query Q = R1(...) |><| ... |><| Rm(...) as in
/// Section 2.1. Repeated relation names are allowed (self-joins); repeated
/// attributes within an atom are allowed and mean equality on the columns.
struct JoinQuery {
  std::vector<Atom> atoms;

  /// Adds an atom and returns *this (builder style).
  JoinQuery& Add(std::string relation, std::vector<std::string> attributes);

  /// Distinct attributes in order of first appearance — the result schema.
  std::vector<std::string> AttributeOrder() const;

  /// Index of each attribute in AttributeOrder().
  std::map<std::string, int> AttributeIndex() const;

  /// Query hypergraph (Section 3): vertices = attributes, one hyperedge per
  /// atom.
  graph::Hypergraph Hypergraph() const;

  /// Primal graph of the query.
  graph::Graph PrimalGraph() const;
};

/// A database instance: named relations with explicit arity.
///
/// Storage is flat and columnar (FlatRelation): every relation is one
/// contiguous Value array with arity stride. The engines (Generic Join's
/// trie build, semijoins, enumeration) read the flat data directly via
/// Flat(); the legacy row-wise Tuples() accessor materializes a cached
/// vector<Tuple> on first use so existing callers stay source-compatible.
///
/// Every successful mutation stamps the relation with a process-unique
/// version (RelationVersion); derived read-side structures — the internal
/// row cache and the shared trie IndexCache — key on that stamp, so any
/// mutation path provably invalidates them without per-site cache-clearing
/// code. Versions are unique across relations and Database instances, which
/// makes (name, version) a safe cache key even when several databases reuse
/// a relation name.
///
/// Relation storage is copy-on-write: Clone() produces a second Database
/// that *shares* every relation's flat payload (and keeps its version
/// stamp, so IndexCache entries built against the original stay valid for
/// the clone). The first mutation of a shared relation copies it privately
/// first — a clone is therefore an immutable point-in-time snapshot for as
/// long as nobody mutates the clone itself. This is the primitive
/// db::MvccDatabase builds reader snapshots from.
///
/// Threading contract: concurrent *const* access (Flat, Tuples, versions,
/// lookups) from any number of threads is safe — Tuples() guards its lazy
/// materialization internally. Mutations and Clone() are not synchronized
/// against readers or each other: mutate/clone before sharing, or
/// externally serialize them with reads (the same "arm before sharing"
/// contract as util::Budget; MvccDatabase provides that serialization).
class Database {
 public:
  /// Creates/replaces a relation. All tuples must have size `arity`; on a
  /// mismatch the database is unchanged and the result carries a diagnostic.
  MutationResult SetRelation(const std::string& name, int arity,
                             std::vector<Tuple> tuples);

  /// Creates/replaces a relation from flat storage directly (zero-copy).
  MutationResult SetRelation(const std::string& name, FlatRelation relation);

  /// Appends one tuple. Fails (database unchanged) when the relation does
  /// not exist or the tuple's arity does not match.
  MutationResult AddTuple(const std::string& name, Tuple tuple);

  bool HasRelation(const std::string& name) const;
  int Arity(const std::string& name) const;

  /// Version stamp of the relation's last mutation: process-unique, bumped
  /// by every SetRelation/AddTuple, never 0 for an existing relation.
  /// Returns 0 when the relation does not exist.
  std::uint64_t RelationVersion(const std::string& name) const;

  /// Flat columnar storage of the relation — the primary representation.
  const FlatRelation& Flat(const std::string& name) const;

  /// Number of tuples without materializing rows.
  std::size_t NumTuples(const std::string& name) const;

  /// Legacy row-wise view; lazily materialized from the flat storage and
  /// cached until the relation is next mutated (the cache is keyed on the
  /// relation version, so every mutation path invalidates it). Safe to call
  /// concurrently from many threads on a shared const Database.
  const std::vector<Tuple>& Tuples(const std::string& name) const;

  /// N = max number of tuples in any relation (0 for the empty database).
  std::size_t MaxRelationSize() const;

  std::vector<std::string> RelationNames() const;

  /// Copy-on-write snapshot: the clone shares every relation's flat payload
  /// and keeps its version stamp. O(#relations) pointer copies — no tuple
  /// data moves until one side mutates a shared relation (that mutation
  /// pays one private copy of just that relation). Must be serialized with
  /// mutations of *this* database (see the class threading contract); the
  /// clone starts with cold row caches.
  Database Clone() const;

 private:
  struct Rel {
    /// Shared flat payload. Never null for a live relation; shared (use
    /// maybe_shared) with clones until the next mutation copies it.
    std::shared_ptr<FlatRelation> flat;
    /// True when `flat` may be shared with a Clone(): the next in-place
    /// mutation must copy first. Set on both sides by Clone(), cleared by
    /// the copy (plain bool — Clone and mutations are externally
    /// serialized per the class contract).
    mutable bool maybe_shared = false;
    /// Stamp of the last mutation; see RelationVersion().
    std::uint64_t version = 0;
    /// Lazy row-wise view: valid iff row_cache_version == version. The
    /// acquire/release pair on row_cache_version publishes row_cache to
    /// concurrent readers; row_cache_mu serializes the materialization.
    mutable std::mutex row_cache_mu;
    mutable std::vector<Tuple> row_cache;
    mutable std::atomic<std::uint64_t> row_cache_version{0};
  };

  /// Stamps `rel` with a fresh version after a mutation. The version bump
  /// alone invalidates the row cache (version 0 never matches a stamp); the
  /// stale rows are dropped eagerly to return their memory.
  static void Touch(Rel& rel);

  std::map<std::string, Rel> relations_;
};

/// A materialized query result: schema plus tuples. This row-wise struct is
/// the stable materialized-output boundary — engines compute on FlatRelation
/// internally and convert at the edges.
struct JoinResult {
  std::vector<std::string> attributes;
  std::vector<Tuple> tuples;
  /// True when the producing engine stopped early (deadline, row limit,
  /// cancellation): `tuples` is a subset of the true answer.
  bool truncated = false;

  /// Sorts tuples (for order-insensitive comparison in tests) and removes
  /// duplicates.
  void Normalize();

  /// Copies the tuples into flat columnar storage.
  FlatRelation ToFlat() const;

  /// Builds a result from flat storage (copies rows out).
  static JoinResult FromFlat(std::vector<std::string> attributes,
                             const FlatRelation& relation);
};

/// Reference evaluation by full nested-loop enumeration over the attribute
/// domains induced by the database; exponential, for testing only.
JoinResult EvaluateNestedLoop(const JoinQuery& query, const Database& db);

/// True if `tuple` (aligned with `attrs`) satisfies every atom of `query`.
bool TupleSatisfiesQuery(const JoinQuery& query, const Database& db,
                         const std::vector<std::string>& attrs,
                         const Tuple& tuple);

}  // namespace qc::db

#endif  // QC_DB_DATABASE_H_
