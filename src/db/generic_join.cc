#include "db/generic_join.h"

#include <algorithm>
#include <cstdlib>

#include "db/joins.h"

namespace qc::db {

GenericJoin::GenericJoin(const JoinQuery& query, const Database& db,
                         std::vector<std::string> attribute_order) {
  attribute_order_ = attribute_order.empty() ? query.AttributeOrder()
                                             : std::move(attribute_order);
  std::map<std::string, int> global;
  for (int i = 0; i < static_cast<int>(attribute_order_.size()); ++i) {
    global[attribute_order_[i]] = i;
  }
  atoms_of_attr_.resize(attribute_order_.size());

  for (const auto& atom : query.atoms) {
    // Deduplicated schema + equality filtering for repeated attributes.
    JoinResult mat = MaterializeAtom(atom, db);
    AtomIndex idx;
    // Column permutation: schema attributes sorted by global position.
    std::vector<int> perm(mat.attributes.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
    std::sort(perm.begin(), perm.end(), [&](int a, int b) {
      return global.at(mat.attributes[a]) < global.at(mat.attributes[b]);
    });
    idx.attr_positions.reserve(perm.size());
    for (int c : perm) idx.attr_positions.push_back(global.at(mat.attributes[c]));
    idx.tuples.reserve(mat.tuples.size());
    for (const auto& t : mat.tuples) {
      Tuple permuted;
      permuted.reserve(perm.size());
      for (int c : perm) permuted.push_back(t[c]);
      idx.tuples.push_back(std::move(permuted));
    }
    std::sort(idx.tuples.begin(), idx.tuples.end());
    idx.tuples.erase(std::unique(idx.tuples.begin(), idx.tuples.end()),
                     idx.tuples.end());
    int atom_id = static_cast<int>(atoms_.size());
    for (std::size_t col = 0; col < idx.attr_positions.size(); ++col) {
      atoms_of_attr_[idx.attr_positions[col]].push_back(
          {atom_id, static_cast<int>(col)});
    }
    atoms_.push_back(std::move(idx));
  }
}

void GenericJoin::Search(int depth, std::vector<std::pair<int, int>>& ranges,
                         Tuple& binding,
                         const std::function<bool(const Tuple&)>& visitor,
                         bool* stop) {
  if (depth == static_cast<int>(attribute_order_.size())) {
    if (!visitor(binding)) *stop = true;
    return;
  }
  const auto& holders = atoms_of_attr_[depth];
  if (holders.empty()) std::abort();  // Every attribute comes from an atom.

  // Iterate the atom with the smallest live range.
  int it_atom = -1, it_col = -1;
  for (auto [a, col] : holders) {
    if (it_atom < 0 || ranges[a].second - ranges[a].first <
                           ranges[it_atom].second - ranges[it_atom].first) {
      it_atom = a;
      it_col = col;
    }
  }
  auto narrowed = [&](int a, int col, Value v) -> std::pair<int, int> {
    const auto& tuples = atoms_[a].tuples;
    auto lo = std::lower_bound(
        tuples.begin() + ranges[a].first, tuples.begin() + ranges[a].second, v,
        [col](const Tuple& t, Value value) { return t[col] < value; });
    auto hi = std::upper_bound(
        tuples.begin() + ranges[a].first, tuples.begin() + ranges[a].second, v,
        [col](Value value, const Tuple& t) { return value < t[col]; });
    ++stats_.probes;
    return {static_cast<int>(lo - tuples.begin()),
            static_cast<int>(hi - tuples.begin())};
  };

  int pos = ranges[it_atom].first;
  while (pos < ranges[it_atom].second && !*stop) {
    Value v = atoms_[it_atom].tuples[pos][it_col];
    // Sub-range of the iterator atom with this value.
    auto it_range = narrowed(it_atom, it_col, v);
    // Intersect with every other holder.
    std::vector<std::pair<int, int>> saved;
    saved.reserve(holders.size());
    bool ok = true;
    for (auto [a, col] : holders) {
      saved.push_back(ranges[a]);
      auto r = (a == it_atom) ? it_range : narrowed(a, col, v);
      if (r.first >= r.second) {
        ok = false;
        // Restore what we already narrowed.
        for (std::size_t i = 0; i < saved.size(); ++i) {
          ranges[holders[i].first] = saved[i];
        }
        break;
      }
      ranges[a] = r;
    }
    if (ok) {
      ++stats_.nodes;
      binding[depth] = v;
      Search(depth + 1, ranges, binding, visitor, stop);
      for (std::size_t i = 0; i < holders.size(); ++i) {
        ranges[holders[i].first] = saved[i];
      }
    }
    pos = it_range.second;  // Skip past all copies of v.
  }
}

void GenericJoin::Enumerate(const std::function<bool(const Tuple&)>& visitor) {
  std::vector<std::pair<int, int>> ranges(atoms_.size());
  for (std::size_t a = 0; a < atoms_.size(); ++a) {
    ranges[a] = {0, static_cast<int>(atoms_[a].tuples.size())};
    if (atoms_[a].tuples.empty()) return;  // Empty relation: empty join.
  }
  Tuple binding(attribute_order_.size());
  bool stop = false;
  Search(0, ranges, binding, visitor, &stop);
}

JoinResult GenericJoin::Evaluate() {
  JoinResult out;
  out.attributes = attribute_order_;
  Enumerate([&out](const Tuple& t) {
    out.tuples.push_back(t);
    return true;
  });
  return out;
}

bool GenericJoin::IsEmpty() {
  bool found = false;
  Enumerate([&found](const Tuple&) {
    found = true;
    return false;
  });
  return !found;
}

std::uint64_t GenericJoin::Count() {
  std::uint64_t count = 0;
  Enumerate([&count](const Tuple&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace qc::db
