#include "db/generic_join.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <optional>

#include "db/joins.h"
#include "kernels/dispatch.h"
#include "kernels/intersect.h"
#include "util/threadpool.h"

namespace qc::db {

GenericJoin::GenericJoin(const JoinQuery& query, const Database& db,
                         std::vector<std::string> attribute_order,
                         const ExecutionContext& ctx)
    : ctx_(ctx) {
  attribute_order_ = attribute_order.empty() ? query.AttributeOrder()
                                             : std::move(attribute_order);
  std::map<std::string, int> global;
  for (int i = 0; i < static_cast<int>(attribute_order_.size()); ++i) {
    global[attribute_order_[i]] = i;
  }
  atoms_of_attr_.resize(attribute_order_.size());
  root_span_ = util::Trace::InternName("generic_join.search.root");
  level_spans_.reserve(attribute_order_.size());
  for (std::size_t d = 0; d < attribute_order_.size(); ++d) {
    level_spans_.push_back(util::Trace::InternName(
        "generic_join.search.level" + std::to_string(d)));
  }

  static const std::uint32_t kBuildSpan =
      util::Trace::InternName("generic_join.build_trie");
  IndexCache* cache = ctx_.index_cache;
  // Without a cache every atom builds, so one span wraps the whole loop (the
  // historical shape). With a cache the span moves inside the builder: it
  // records only actual builds and is absent from a fully warm run.
  std::optional<util::ScopedSpan> all_builds_span;
  if (cache == nullptr) all_builds_span.emplace(kBuildSpan);
  for (const auto& atom : query.atoms) {
    AtomIndex idx;
    // Deduplicated schema + equality filtering for repeated attributes,
    // columns permuted into global order: the atom's distinct attributes
    // sorted by global position, which is both the trie level order and the
    // canonical projection the cache keys on.
    std::vector<std::string> ordered = AtomAttributes(atom);
    std::sort(ordered.begin(), ordered.end(),
              [&](const std::string& a, const std::string& b) {
                return global.at(a) < global.at(b);
              });
    idx.attr_positions.reserve(ordered.size());
    for (const auto& a : ordered) idx.attr_positions.push_back(global.at(a));
    auto build = [&]() {
      std::optional<util::ScopedSpan> build_span;
      if (cache != nullptr) build_span.emplace(kBuildSpan);
      IndexCache::Entry entry;
      // ctx.arena backs the sort and trie-build scratch; the entry itself
      // owns its memory, so a cached trie never outlives into the arena.
      FlatRelation flat =
          MaterializeSortedProjection(atom, db, ordered, ctx_.arena);
      entry.no_rows = flat.empty();
      entry.trie = TrieIndex(flat, ctx_.arena);
      return entry;
    };
    if (cache != nullptr) {
      // Hit/miss/eviction accounting lives in the cache itself (exported
      // once per tool via ExportCounters/ExportMetrics, not per engine run,
      // so shared-cache totals are never double-counted).
      idx.entry = cache->GetOrBuild(atom.relation,
                                    db.RelationVersion(atom.relation),
                                    AtomProjectionSignature(atom, ordered),
                                    build);
    } else {
      idx.entry = std::make_shared<const IndexCache::Entry>(build());
    }
    int atom_id = static_cast<int>(atoms_.size());
    for (std::size_t col = 0; col < idx.attr_positions.size(); ++col) {
      atoms_of_attr_[idx.attr_positions[col]].push_back(
          {atom_id, static_cast<int>(col)});
    }
    trie_nodes_ += idx.trie().num_nodes();
    atoms_.push_back(std::move(idx));
  }
  ctx_.Count("trie.nodes", trie_nodes_);
  budget_ = ctx_.ResolveBudget();
}

int GenericJoin::ResolvedThreads() const { return ctx_.ResolvedThreads(); }

void GenericJoin::ExportStats(const GenericJoinStats& run) const {
  ctx_.Count("generic_join.nodes", run.nodes);
  ctx_.Count("generic_join.probes", run.probes);
  ctx_.Count("generic_join.gallops", run.gallops);
  ctx_.Count("generic_join.simd_blocks", run.simd_blocks);
}

bool GenericJoin::HasEmptyAtom() const {
  for (const auto& a : atoms_) {
    if (a.no_rows()) return true;
  }
  return false;
}

std::vector<GenericJoin::Span> GenericJoin::FullSpans() const {
  std::vector<Span> spans(atoms_.size());
  for (std::size_t a = 0; a < atoms_.size(); ++a) {
    const TrieIndex& trie = atoms_[a].trie();
    std::int32_t n = trie.levels() > 0
                         ? static_cast<std::int32_t>(trie.LevelSize(0))
                         : 0;
    spans[a] = Span{0, n};
  }
  return spans;
}

std::vector<GenericJoin::DepthScratch> GenericJoin::MakeScratch() const {
  std::vector<DepthScratch> scratch(atoms_of_attr_.size());
  for (std::size_t d = 0; d < atoms_of_attr_.size(); ++d) {
    const std::size_t h = atoms_of_attr_[d].size();
    scratch[d].cursors.resize(h);
    scratch[d].values.resize(h);
    scratch[d].ends.resize(h);
    scratch[d].saved.resize(h);
  }
  return scratch;
}

std::int32_t GenericJoin::GallopSeek(const Value* vals, std::int32_t pos,
                                     std::int32_t end, Value target,
                                     GenericJoinStats* stats) const {
  // Doubling probe: grow the window until it brackets the target (or hits
  // the span end), then one bounded binary search inside it.
  std::int32_t offset = 1;
  while (pos + offset < end && vals[pos + offset] < target) {
    ++stats->gallops;
    offset <<= 1;
  }
  std::int32_t lo = pos + (offset >> 1);
  std::int32_t hi = std::min<std::int64_t>(
      static_cast<std::int64_t>(pos) + offset + 1, end);
  ++stats->probes;
  return static_cast<std::int32_t>(
      std::lower_bound(vals + lo, vals + hi, target) - vals);
}

GenericJoin::Span GenericJoin::DescendSpan(int atom, int col,
                                           std::int32_t pos) const {
  const TrieIndex& trie = atoms_[atom].trie();
  if (col + 1 >= trie.levels()) return Span{0, 0};  // Leaf: fully bound.
  return Span{trie.ChildrenBegin(col, pos), trie.ChildrenEnd(col, pos)};
}

template <class Emit>
void GenericJoin::PairIntersect(DepthScratch& scratch, GenericJoinStats* stats,
                                Emit&& emit) const {
  auto& cur = scratch.cursors;
  const Value* A = scratch.values[0];
  const Value* B = scratch.values[1];
  const std::int32_t ea = scratch.ends[0], eb = scratch.ends[1];
  std::int32_t ia = cur[0], jb = cur[1];
  if (scratch.pos_a.size() < static_cast<std::size_t>(kPairChunk)) {
    scratch.pos_a.resize(kPairChunk);
    scratch.pos_b.resize(kPairChunk);
  }
  while (ia < ea && jb < eb) {
    const std::int32_t ca = std::min(kPairChunk, ea - ia);
    const Value amax = A[ia + ca - 1];
    // First B index past this chunk's maximum: doubling probe from jb, then
    // one bounded upper_bound — every B value at or below amax belongs to
    // this chunk and is consumed by it.
    std::int32_t off = 1;
    while (jb + off < eb && B[jb + off] <= amax) off <<= 1;
    const std::int32_t lo = jb + (off >> 1);
    const std::int32_t hi = static_cast<std::int32_t>(std::min<std::int64_t>(
        static_cast<std::int64_t>(jb) + off + 1, eb));
    const std::int32_t bhi =
        static_cast<std::int32_t>(std::upper_bound(B + lo, B + hi, amax) - B);
    const std::size_t k = kernels::IntersectPairPositions(
        A + ia, static_cast<std::size_t>(ca), B + jb,
        static_cast<std::size_t>(bhi - jb), scratch.pos_a.data(),
        scratch.pos_b.data());
    ++stats->simd_blocks;
    for (std::size_t t = 0; t < k; ++t) {
      cur[0] = ia + scratch.pos_a[t];
      cur[1] = jb + scratch.pos_b[t];
      if (!emit(A[cur[0]], cur.data())) return;
    }
    ia += ca;
    jb = bhi;
  }
}

template <class Emit>
void GenericJoin::LeapfrogIntersect(int depth, const std::vector<Span>& spans,
                                    DepthScratch& scratch,
                                    GenericJoinStats* stats,
                                    Emit&& emit) const {
  const auto& holders = atoms_of_attr_[depth];
  if (holders.empty()) std::abort();  // Every attribute comes from an atom.
  const int h = static_cast<int>(holders.size());
  auto& cur = scratch.cursors;
  auto& vals = scratch.values;
  auto& ends = scratch.ends;
  for (int i = 0; i < h; ++i) {
    auto [a, col] = holders[i];
    vals[i] = atoms_[a].trie().Values(col);
    cur[i] = spans[a].begin;
    ends[i] = spans[a].end;
    if (cur[i] >= ends[i]) return;  // Empty span: empty intersection.
  }
  if (h == 1) {
    // Single holder: every node value survives; pure pointer bump.
    for (; cur[0] < ends[0]; ++cur[0]) {
      if (!emit(vals[0][cur[0]], cur.data())) return;
    }
    return;
  }
  if (h == 2 && kernels::ActiveSimdLevel() != kernels::SimdLevel::kScalar) {
    // Two holders cover most real per-level intersections (binary-relation
    // queries); hand non-skewed, non-trivial pairs to the blocked SIMD
    // kernel. Skewed pairs stay on the leapfrog, whose galloping already is
    // the right algorithm there. QC_SIMD=scalar never enters this branch —
    // it runs the historical engine path unchanged.
    const std::int64_t na = ends[0] - cur[0], nb = ends[1] - cur[1];
    const std::int64_t shorter = std::min(na, nb);
    const std::int64_t longer = std::max(na, nb);
    if (shorter >= 16 &&
        longer <= shorter * static_cast<std::int64_t>(
                                kernels::kGallopSkewRatio)) {
      PairIntersect(scratch, stats, static_cast<Emit&&>(emit));
      return;
    }
  }
  Value max_v = vals[0][cur[0]];
  for (int i = 1; i < h; ++i) max_v = std::max(max_v, vals[i][cur[i]]);
  for (;;) {
    // Leapfrog: gallop every lagging cursor up to the current maximum until
    // all cursors agree; each overshoot raises the maximum.
    bool aligned = false;
    while (!aligned) {
      aligned = true;
      for (int i = 0; i < h; ++i) {
        if (vals[i][cur[i]] < max_v) {
          cur[i] = GallopSeek(vals[i], cur[i], ends[i], max_v, stats);
          if (cur[i] == ends[i]) return;
          if (vals[i][cur[i]] > max_v) {
            max_v = vals[i][cur[i]];
            aligned = false;
          }
        }
      }
    }
    if (!emit(max_v, cur.data())) return;
    if (++cur[0] == ends[0]) return;
    max_v = vals[0][cur[0]];
  }
}

void GenericJoin::Search(int depth, std::vector<Span>& spans,
                         std::vector<DepthScratch>& scratch, Tuple& binding,
                         const std::function<bool(const Tuple&)>& visitor,
                         bool* stop, GenericJoinStats* stats) const {
  if (depth == static_cast<int>(attribute_order_.size())) {
    if (!visitor(binding)) *stop = true;
    return;
  }
  // Span per parent node at this level (inclusive of the whole descent
  // below); ~1 relaxed load when tracing is off, same placement cost as the
  // budget poll.
  util::ScopedSpan level_span(level_spans_[depth]);
  const auto& holders = atoms_of_attr_[depth];
  const int h = static_cast<int>(holders.size());
  DepthScratch& ds = scratch[depth];
  LeapfrogIntersect(depth, spans, ds, stats,
                    [&](Value v, const std::int32_t* pos) {
                      // Safe point: one budget poll per search node (~1
                      // relaxed atomic load; see util::Budget).
                      if (budget_->Poll()) {
                        *stop = true;
                        return false;
                      }
                      ++stats->nodes;
                      binding[depth] = v;
                      for (int i = 0; i < h; ++i) {
                        auto [a, col] = holders[i];
                        ds.saved[i] = spans[a];
                        spans[a] = DescendSpan(a, col, pos[i]);
                      }
                      Search(depth + 1, spans, scratch, binding, visitor, stop,
                             stats);
                      for (int i = 0; i < h; ++i) {
                        spans[holders[i].first] = ds.saved[i];
                      }
                      return !*stop;
                    });
}

bool GenericJoin::ComputeRootCandidates(RootCandidates* candidates,
                                        GenericJoinStats* stats) const {
  if (attribute_order_.empty() || HasEmptyAtom()) return false;
  util::ScopedSpan root_span(root_span_);
  std::vector<Span> spans = FullSpans();
  const std::size_t h = atoms_of_attr_[0].size();
  DepthScratch scratch;
  scratch.cursors.resize(h);
  scratch.values.resize(h);
  scratch.ends.resize(h);
  LeapfrogIntersect(0, spans, scratch, stats,
                    [&](Value v, const std::int32_t* pos) {
                      // A tripped budget leaves a prefix of the candidates —
                      // a subset of the answer, consistent with truncation.
                      if (budget_->Poll()) return false;
                      candidates->values.push_back(v);
                      candidates->positions.insert(candidates->positions.end(),
                                                   pos, pos + h);
                      return true;
                    });
  return true;
}

void GenericJoin::SearchCandidate(
    const RootCandidates& candidates, std::size_t i, std::vector<Span>& spans,
    std::vector<DepthScratch>& scratch, Tuple& binding,
    const std::function<bool(const Tuple&)>& visitor, bool* stop,
    GenericJoinStats* stats) const {
  const auto& holders = atoms_of_attr_[0];
  const std::size_t h = holders.size();
  const std::int32_t* pos = candidates.positions.data() + i * h;
  // Level-0 span opens once per root candidate, independent of how the
  // candidate range is partitioned across worker threads.
  util::ScopedSpan level_span(level_spans_[0]);
  DepthScratch& ds = scratch[0];
  if (budget_->Poll()) {
    *stop = true;
    return;
  }
  ++stats->nodes;
  binding[0] = candidates.values[i];
  for (std::size_t j = 0; j < h; ++j) {
    auto [a, col] = holders[j];
    ds.saved[j] = spans[a];
    spans[a] = DescendSpan(a, col, pos[j]);
  }
  Search(1, spans, scratch, binding, visitor, stop, stats);
  for (std::size_t j = 0; j < h; ++j) {
    spans[holders[j].first] = ds.saved[j];
  }
}

void GenericJoin::Enumerate(const std::function<bool(const Tuple&)>& visitor) {
  GenericJoinStats run;
  if (attribute_order_.empty()) {
    // No attributes to bind: one empty answer unless some atom is empty.
    if (!HasEmptyAtom()) {
      Tuple binding;
      visitor(binding);
    }
  } else {
    RootCandidates candidates;
    if (ComputeRootCandidates(&candidates, &run)) {
      std::vector<Span> spans = FullSpans();
      std::vector<DepthScratch> scratch = MakeScratch();
      Tuple binding(attribute_order_.size());
      bool stop = false;
      for (std::size_t i = 0; i < candidates.values.size() && !stop; ++i) {
        SearchCandidate(candidates, i, spans, scratch, binding, visitor, &stop,
                        &run);
      }
    }
  }
  stats_ += run;
  ExportStats(run);
  run_status_ = budget_->status();
}

JoinResult GenericJoin::Evaluate() {
  JoinResult out;
  out.attributes = attribute_order_;
  if (ResolvedThreads() <= 1 || attribute_order_.empty()) {
    // Charge after pushing: at a row limit R, exactly R rows materialize.
    Enumerate([this, &out](const Tuple& t) {
      out.tuples.push_back(t);
      return !budget_->ChargeRows(1);
    });
    run_status_ = budget_->status();
    out.truncated = run_status_ != util::RunStatus::kCompleted;
    return out;
  }

  GenericJoinStats run;
  RootCandidates candidates;
  if (ComputeRootCandidates(&candidates, &run)) {
    // Contiguous chunks of candidates with per-chunk output buffers and
    // stats (not per-candidate: one allocation per chunk, not per root
    // value), merged in chunk order below — the result is bit-identical to
    // the serial enumeration order at any thread count.
    const std::int64_t n = static_cast<std::int64_t>(candidates.values.size());
    const int threads = ResolvedThreads();
    const std::int64_t chunks =
        std::min<std::int64_t>(n, static_cast<std::int64_t>(threads) * 8);
    std::vector<std::vector<Tuple>> buffers(chunks);
    std::vector<GenericJoinStats> chunk_stats(chunks);
    util::ThreadPool::Shared().ParallelFor(
        0, chunks,
        [&](std::int64_t clo, std::int64_t chi) {
          for (std::int64_t c = clo; c < chi; ++c) {
            std::vector<Span> spans = FullSpans();
            std::vector<DepthScratch> scratch = MakeScratch();
            Tuple binding(attribute_order_.size());
            bool stop = false;
            auto sink = [this, &buffers, &stop, c](const Tuple& t) {
              buffers[c].push_back(t);
              if (budget_->ChargeRows(1)) {
                stop = true;
                return false;
              }
              return true;
            };
            for (std::int64_t i = c * n / chunks;
                 i < (c + 1) * n / chunks && !stop; ++i) {
              SearchCandidate(candidates, static_cast<std::size_t>(i), spans,
                              scratch, binding, sink, &stop, &chunk_stats[c]);
            }
          }
        },
        threads, /*min_grain=*/1, budget_.get());
    for (std::int64_t c = 0; c < chunks; ++c) {
      run += chunk_stats[c];
      out.tuples.insert(out.tuples.end(),
                        std::make_move_iterator(buffers[c].begin()),
                        std::make_move_iterator(buffers[c].end()));
    }
    // Concurrent chunks may each materialize a last row before observing the
    // global row limit; clamp so the merged answer honours it exactly.
    if (budget_->row_limit() > 0 && out.tuples.size() > budget_->row_limit()) {
      out.tuples.resize(budget_->row_limit());
    }
  }
  stats_ += run;
  ExportStats(run);
  run_status_ = budget_->status();
  out.truncated = run_status_ != util::RunStatus::kCompleted;
  return out;
}

bool GenericJoin::IsEmpty() {
  if (ResolvedThreads() <= 1 || attribute_order_.empty()) {
    bool found = false;
    Enumerate([&found](const Tuple&) {
      found = true;
      return false;
    });
    return !found;
  }
  // "Non-empty" is always a real witness; "empty" under a tripped budget
  // (status() != kCompleted) means Unknown.

  GenericJoinStats run;
  RootCandidates candidates;
  std::atomic<bool> found(false);
  if (ComputeRootCandidates(&candidates, &run)) {
    const std::int64_t n = static_cast<std::int64_t>(candidates.values.size());
    const int threads = ResolvedThreads();
    const std::int64_t chunks =
        std::min<std::int64_t>(n, static_cast<std::int64_t>(threads) * 8);
    std::vector<GenericJoinStats> chunk_stats(chunks);
    util::ThreadPool::Shared().ParallelFor(
        0, chunks,
        [&](std::int64_t clo, std::int64_t chi) {
          for (std::int64_t c = clo; c < chi; ++c) {
            if (found.load(std::memory_order_relaxed)) return;
            std::vector<Span> spans = FullSpans();
            std::vector<DepthScratch> scratch = MakeScratch();
            Tuple binding(attribute_order_.size());
            bool stop = false;
            auto sink = [&found](const Tuple&) {
              found.store(true, std::memory_order_relaxed);
              return false;  // Stop this partition's search.
            };
            for (std::int64_t i = c * n / chunks;
                 i < (c + 1) * n / chunks && !stop; ++i) {
              SearchCandidate(candidates, static_cast<std::size_t>(i), spans,
                              scratch, binding, sink, &stop, &chunk_stats[c]);
            }
          }
        },
        threads, /*min_grain=*/1, budget_.get());
    for (const auto& cs : chunk_stats) run += cs;
  }
  stats_ += run;
  ExportStats(run);
  run_status_ = budget_->status();
  return !found.load();
}

std::uint64_t GenericJoin::Count() {
  // Counted rows are charged like materialized ones, so --max-rows bounds
  // counting effort too; on a trip the count-so-far is returned (a lower
  // bound on the true count) with status() recording the cause.
  if (ResolvedThreads() <= 1 || attribute_order_.empty()) {
    std::uint64_t count = 0;
    Enumerate([this, &count](const Tuple&) {
      ++count;
      return !budget_->ChargeRows(1);
    });
    return count;
  }

  GenericJoinStats run;
  RootCandidates candidates;
  std::uint64_t count = 0;
  if (ComputeRootCandidates(&candidates, &run)) {
    const std::int64_t n = static_cast<std::int64_t>(candidates.values.size());
    const int threads = ResolvedThreads();
    const std::int64_t chunks =
        std::min<std::int64_t>(n, static_cast<std::int64_t>(threads) * 8);
    std::vector<std::uint64_t> counts(chunks, 0);
    std::vector<GenericJoinStats> chunk_stats(chunks);
    util::ThreadPool::Shared().ParallelFor(
        0, chunks,
        [&](std::int64_t clo, std::int64_t chi) {
          for (std::int64_t c = clo; c < chi; ++c) {
            std::vector<Span> spans = FullSpans();
            std::vector<DepthScratch> scratch = MakeScratch();
            Tuple binding(attribute_order_.size());
            bool stop = false;
            auto sink = [this, &counts, &stop, c](const Tuple&) {
              ++counts[c];
              if (budget_->ChargeRows(1)) {
                stop = true;
                return false;
              }
              return true;
            };
            for (std::int64_t i = c * n / chunks;
                 i < (c + 1) * n / chunks && !stop; ++i) {
              SearchCandidate(candidates, static_cast<std::size_t>(i), spans,
                              scratch, binding, sink, &stop, &chunk_stats[c]);
            }
          }
        },
        threads, /*min_grain=*/1, budget_.get());
    for (std::int64_t c = 0; c < chunks; ++c) {
      run += chunk_stats[c];
      count += counts[c];
    }
  }
  stats_ += run;
  ExportStats(run);
  run_status_ = budget_->status();
  return count;
}

}  // namespace qc::db
