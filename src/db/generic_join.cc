#include "db/generic_join.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "db/joins.h"
#include "util/threadpool.h"

namespace qc::db {

GenericJoin::GenericJoin(const JoinQuery& query, const Database& db,
                         std::vector<std::string> attribute_order,
                         const ExecutionContext& ctx)
    : ctx_(ctx) {
  attribute_order_ = attribute_order.empty() ? query.AttributeOrder()
                                             : std::move(attribute_order);
  std::map<std::string, int> global;
  for (int i = 0; i < static_cast<int>(attribute_order_.size()); ++i) {
    global[attribute_order_[i]] = i;
  }
  atoms_of_attr_.resize(attribute_order_.size());

  for (const auto& atom : query.atoms) {
    // Deduplicated schema + equality filtering for repeated attributes.
    JoinResult mat = MaterializeAtom(atom, db);
    AtomIndex idx;
    // Column permutation: schema attributes sorted by global position.
    std::vector<int> perm(mat.attributes.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
    std::sort(perm.begin(), perm.end(), [&](int a, int b) {
      return global.at(mat.attributes[a]) < global.at(mat.attributes[b]);
    });
    idx.attr_positions.reserve(perm.size());
    for (int c : perm) idx.attr_positions.push_back(global.at(mat.attributes[c]));
    idx.tuples.reserve(mat.tuples.size());
    for (const auto& t : mat.tuples) {
      Tuple permuted;
      permuted.reserve(perm.size());
      for (int c : perm) permuted.push_back(t[c]);
      idx.tuples.push_back(std::move(permuted));
    }
    std::sort(idx.tuples.begin(), idx.tuples.end());
    idx.tuples.erase(std::unique(idx.tuples.begin(), idx.tuples.end()),
                     idx.tuples.end());
    int atom_id = static_cast<int>(atoms_.size());
    for (std::size_t col = 0; col < idx.attr_positions.size(); ++col) {
      atoms_of_attr_[idx.attr_positions[col]].push_back(
          {atom_id, static_cast<int>(col)});
    }
    atoms_.push_back(std::move(idx));
  }
}

int GenericJoin::ResolvedThreads() const { return ctx_.ResolvedThreads(); }

void GenericJoin::ExportStats(const GenericJoinStats& run) const {
  ctx_.Count("generic_join.nodes", run.nodes);
  ctx_.Count("generic_join.probes", run.probes);
}

std::pair<int, int> GenericJoin::Narrow(
    int atom, int col, Value v, const std::vector<std::pair<int, int>>& ranges,
    GenericJoinStats* stats) const {
  const auto& tuples = atoms_[atom].tuples;
  auto lo = std::lower_bound(
      tuples.begin() + ranges[atom].first, tuples.begin() + ranges[atom].second,
      v, [col](const Tuple& t, Value value) { return t[col] < value; });
  auto hi = std::upper_bound(
      tuples.begin() + ranges[atom].first, tuples.begin() + ranges[atom].second,
      v, [col](Value value, const Tuple& t) { return value < t[col]; });
  ++stats->probes;
  return {static_cast<int>(lo - tuples.begin()),
          static_cast<int>(hi - tuples.begin())};
}

void GenericJoin::Search(int depth, std::vector<std::pair<int, int>>& ranges,
                         Tuple& binding,
                         const std::function<bool(const Tuple&)>& visitor,
                         bool* stop, GenericJoinStats* stats) const {
  if (depth == static_cast<int>(attribute_order_.size())) {
    if (!visitor(binding)) *stop = true;
    return;
  }
  const auto& holders = atoms_of_attr_[depth];
  if (holders.empty()) std::abort();  // Every attribute comes from an atom.

  // Iterate the atom with the smallest live range.
  int it_atom = -1, it_col = -1;
  for (auto [a, col] : holders) {
    if (it_atom < 0 || ranges[a].second - ranges[a].first <
                           ranges[it_atom].second - ranges[it_atom].first) {
      it_atom = a;
      it_col = col;
    }
  }

  int pos = ranges[it_atom].first;
  while (pos < ranges[it_atom].second && !*stop) {
    Value v = atoms_[it_atom].tuples[pos][it_col];
    // Sub-range of the iterator atom with this value.
    auto it_range = Narrow(it_atom, it_col, v, ranges, stats);
    // Intersect with every other holder.
    std::vector<std::pair<int, int>> saved;
    saved.reserve(holders.size());
    bool ok = true;
    for (auto [a, col] : holders) {
      saved.push_back(ranges[a]);
      auto r = (a == it_atom) ? it_range : Narrow(a, col, v, ranges, stats);
      if (r.first >= r.second) {
        ok = false;
        // Restore what we already narrowed.
        for (std::size_t i = 0; i < saved.size(); ++i) {
          ranges[holders[i].first] = saved[i];
        }
        break;
      }
      ranges[a] = r;
    }
    if (ok) {
      ++stats->nodes;
      binding[depth] = v;
      Search(depth + 1, ranges, binding, visitor, stop, stats);
      for (std::size_t i = 0; i < holders.size(); ++i) {
        ranges[holders[i].first] = saved[i];
      }
    }
    pos = it_range.second;  // Skip past all copies of v.
  }
}

bool GenericJoin::RootCandidates(std::vector<RootCandidate>* candidates,
                                 int* it_atom_out,
                                 std::vector<std::pair<int, int>>* base_ranges,
                                 GenericJoinStats* stats) const {
  base_ranges->resize(atoms_.size());
  for (std::size_t a = 0; a < atoms_.size(); ++a) {
    (*base_ranges)[a] = {0, static_cast<int>(atoms_[a].tuples.size())};
    if (atoms_[a].tuples.empty()) return false;  // Empty relation: empty join.
  }
  const auto& holders = atoms_of_attr_[0];
  if (holders.empty()) std::abort();

  int it_atom = -1, it_col = -1;
  for (auto [a, col] : holders) {
    if (it_atom < 0 ||
        (*base_ranges)[a].second - (*base_ranges)[a].first <
            (*base_ranges)[it_atom].second - (*base_ranges)[it_atom].first) {
      it_atom = a;
      it_col = col;
    }
  }
  int pos = (*base_ranges)[it_atom].first;
  while (pos < (*base_ranges)[it_atom].second) {
    Value v = atoms_[it_atom].tuples[pos][it_col];
    auto it_range = Narrow(it_atom, it_col, v, *base_ranges, stats);
    candidates->push_back({v, it_range});
    pos = it_range.second;  // Skip past all copies of v.
  }
  *it_atom_out = it_atom;
  return true;
}

void GenericJoin::SearchCandidate(
    const RootCandidate& candidate, int it_atom,
    const std::vector<std::pair<int, int>>& base_ranges,
    const std::function<bool(const Tuple&)>& visitor, bool* stop,
    GenericJoinStats* stats) const {
  const auto& holders = atoms_of_attr_[0];
  std::vector<std::pair<int, int>> ranges = base_ranges;
  for (auto [a, col] : holders) {
    auto r = (a == it_atom) ? candidate.it_range
                            : Narrow(a, col, candidate.value, ranges, stats);
    if (r.first >= r.second) return;
    ranges[a] = r;
  }
  ++stats->nodes;
  Tuple binding(attribute_order_.size());
  binding[0] = candidate.value;
  Search(1, ranges, binding, visitor, stop, stats);
}

void GenericJoin::Enumerate(const std::function<bool(const Tuple&)>& visitor) {
  GenericJoinStats run;
  std::vector<std::pair<int, int>> ranges(atoms_.size());
  bool empty = false;
  for (std::size_t a = 0; a < atoms_.size(); ++a) {
    ranges[a] = {0, static_cast<int>(atoms_[a].tuples.size())};
    if (atoms_[a].tuples.empty()) empty = true;  // Empty relation: empty join.
  }
  if (!empty) {
    Tuple binding(attribute_order_.size());
    bool stop = false;
    Search(0, ranges, binding, visitor, &stop, &run);
  }
  stats_ += run;
  ExportStats(run);
}

JoinResult GenericJoin::Evaluate() {
  JoinResult out;
  out.attributes = attribute_order_;
  if (ResolvedThreads() <= 1) {
    Enumerate([&out](const Tuple& t) {
      out.tuples.push_back(t);
      return true;
    });
    return out;
  }

  GenericJoinStats run;
  std::vector<RootCandidate> candidates;
  int it_atom = -1;
  std::vector<std::pair<int, int>> base_ranges;
  if (RootCandidates(&candidates, &it_atom, &base_ranges, &run)) {
    // Per-candidate output buffers, merged in candidate order below: the
    // result is bit-identical to the serial enumeration order.
    std::vector<std::vector<Tuple>> buffers(candidates.size());
    std::vector<GenericJoinStats> worker_stats(candidates.size());
    util::ThreadPool::Shared().ParallelFor(
        0, static_cast<std::int64_t>(candidates.size()),
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            bool stop = false;
            SearchCandidate(
                candidates[i], it_atom, base_ranges,
                [&buffers, i](const Tuple& t) {
                  buffers[i].push_back(t);
                  return true;
                },
                &stop, &worker_stats[i]);
          }
        },
        ResolvedThreads());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      run += worker_stats[i];
      out.tuples.insert(out.tuples.end(),
                        std::make_move_iterator(buffers[i].begin()),
                        std::make_move_iterator(buffers[i].end()));
    }
  }
  stats_ += run;
  ExportStats(run);
  return out;
}

bool GenericJoin::IsEmpty() {
  if (ResolvedThreads() <= 1) {
    bool found = false;
    Enumerate([&found](const Tuple&) {
      found = true;
      return false;
    });
    return !found;
  }

  GenericJoinStats run;
  std::vector<RootCandidate> candidates;
  int it_atom = -1;
  std::vector<std::pair<int, int>> base_ranges;
  std::atomic<bool> found(false);
  if (RootCandidates(&candidates, &it_atom, &base_ranges, &run)) {
    std::vector<GenericJoinStats> worker_stats(candidates.size());
    util::ThreadPool::Shared().ParallelFor(
        0, static_cast<std::int64_t>(candidates.size()),
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            if (found.load(std::memory_order_relaxed)) return;
            bool stop = false;
            SearchCandidate(
                candidates[i], it_atom, base_ranges,
                [&found](const Tuple&) {
                  found.store(true, std::memory_order_relaxed);
                  return false;  // Stop this partition's search.
                },
                &stop, &worker_stats[i]);
          }
        },
        ResolvedThreads());
    for (const auto& ws : worker_stats) run += ws;
  }
  stats_ += run;
  ExportStats(run);
  return !found.load();
}

std::uint64_t GenericJoin::Count() {
  if (ResolvedThreads() <= 1) {
    std::uint64_t count = 0;
    Enumerate([&count](const Tuple&) {
      ++count;
      return true;
    });
    return count;
  }

  GenericJoinStats run;
  std::vector<RootCandidate> candidates;
  int it_atom = -1;
  std::vector<std::pair<int, int>> base_ranges;
  std::uint64_t count = 0;
  if (RootCandidates(&candidates, &it_atom, &base_ranges, &run)) {
    std::vector<std::uint64_t> counts(candidates.size(), 0);
    std::vector<GenericJoinStats> worker_stats(candidates.size());
    util::ThreadPool::Shared().ParallelFor(
        0, static_cast<std::int64_t>(candidates.size()),
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            bool stop = false;
            SearchCandidate(
                candidates[i], it_atom, base_ranges,
                [&counts, i](const Tuple&) {
                  ++counts[i];
                  return true;
                },
                &stop, &worker_stats[i]);
          }
        },
        ResolvedThreads());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      run += worker_stats[i];
      count += counts[i];
    }
  }
  stats_ += run;
  ExportStats(run);
  return count;
}

}  // namespace qc::db
