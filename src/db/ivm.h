#ifndef QC_DB_IVM_H_
#define QC_DB_IVM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/wal.h"

namespace qc::db {

namespace ivm_internal {
struct ViewState;  // One view's maintained state (defined in ivm.cc).
}  // namespace ivm_internal

/// What a materialized view computes. Two families (Section 6 / ROADMAP
/// item 1 — the dynamic side of the lower-bound story):
///   kJoin          — a full acyclic join query, maintained by delta-rule
///                    sweeps over the Yannakakis join tree;
///   kTriangleCount — |{(a,b,c) : E(a,b), E(b,c), E(a,c)}| over one binary
///                    relation, maintained by per-edge delta counting
///                    (the OMv-hard query of Section 6.2).
struct ViewDefinition {
  enum class Kind : std::uint8_t { kJoin = 0, kTriangleCount = 1 };

  std::string name;
  Kind kind = Kind::kJoin;
  /// kJoin: the query (must be alpha-acyclic over existing relations).
  JoinQuery query;
  /// kTriangleCount: the binary edge relation.
  std::string relation;
  /// The definition body exactly as the client sent it (query text for
  /// kJoin, relation name for kTriangleCount) — what the WAL persists, so
  /// recovery re-parses the same bytes the original registration did.
  std::string text;
};

/// One relation's change inside a committed write transaction, classified
/// by the mutation path that produced it. kAppend is the fast path: rows
/// [old_size, current size) are exactly the new tuples and the delta rule
/// applies. kReplace means "anything may have changed" and forces a full
/// recompute of every view over the relation.
struct RelationDelta {
  enum class Kind : std::uint8_t { kAppend = 0, kReplace = 1 };

  std::string relation;
  Kind kind = Kind::kAppend;
  std::size_t old_size = 0;  ///< kAppend: first new row index.
};

/// Monotonic maintenance counters (the RunReport `ivm` section).
struct IvmStats {
  std::uint64_t views = 0;    ///< Currently registered views.
  std::uint64_t updates = 0;  ///< Commits that touched >= 1 view.
  /// Delta sweeps executed: one per (view, dirty atom) pair with a
  /// nonempty delta on a commit.
  std::uint64_t dirty_subtree_sweeps = 0;
  /// New result rows merged into maintained state by delta sweeps.
  std::uint64_t rows_delta_applied = 0;
  /// Full recomputes (registration, kReplace deltas, rebuilds).
  std::uint64_t full_recomputes = 0;
};

/// A consistent copy of one view's maintained state.
struct ViewRead {
  bool ok = false;
  std::string error;  ///< Meaningful only when !ok.
  ViewDefinition::Kind kind = ViewDefinition::Kind::kJoin;
  /// Write epoch the state is current as of (== MvccDatabase::Epoch() at
  /// the last commit the registry observed).
  std::uint64_t epoch = 0;
  std::vector<std::string> attributes;
  /// kJoin: the normalized result (lex-sorted, duplicate-free) over the
  /// query's canonical AttributeOrder — bit-identical to
  /// ExecuteQuery-then-Normalize on a snapshot at `epoch`.
  /// kTriangleCount: one row [count] with attribute "count".
  std::vector<Tuple> rows;
};

/// Registry of materialized views maintained incrementally under
/// MvccDatabase write epochs.
///
/// Maintenance model (DESIGN.md §14): the database calls OnCommit() under
/// its writer lock after every committed mutation, passing per-relation
/// deltas. For an append delta the registry re-evaluates the delta rule
///
///   dQ = U_{dirty atom d}  Q[d -> delta_d]   (all other atoms at their
///                                             post-commit state)
///
/// walking the Yannakakis join tree breadth-first from each dirty atom —
/// only subtrees reachable from a dirty atom are swept, and the sweep
/// probes sorted per-atom projections that are cached and reused across
/// commits keyed by the relation version stamps (a clean relation's
/// projection is never rebuilt). Insert-only set semantics make the rule
/// sound: every new result tuple uses at least one new tuple in some atom,
/// and the union's overcount is removed by dedup against stored rows.
/// Replace-style mutations fall back to a full recompute.
///
/// Threading: all methods take one internal mutex. OnCommit runs inside
/// the MvccDatabase writer lock; Read() only takes the registry lock, so
/// readers never block writers for longer than one state copy.
class ViewRegistry {
 public:
  ViewRegistry();
  ~ViewRegistry();
  ViewRegistry(const ViewRegistry&) = delete;
  ViewRegistry& operator=(const ViewRegistry&) = delete;

  /// Checks `def` against `db` without registering: name free and
  /// non-empty, relations exist, kJoin query acyclic, kTriangleCount
  /// relation binary.
  MutationResult Validate(const ViewDefinition& def, const Database& db) const;

  /// Validates, computes the initial state from `db` (counted as one full
  /// recompute), and registers the view as current at `epoch`.
  MutationResult Register(const ViewDefinition& def, const Database& db,
                          std::uint64_t epoch);

  /// True if the view existed.
  bool Unregister(const std::string& name);

  ViewRead Read(const std::string& name) const;
  bool Has(const std::string& name) const;
  std::vector<std::string> ViewNames() const;

  bool empty() const;
  std::size_t size() const;
  IvmStats stats() const;

  /// One kViewDef WAL record per registered view — appended to every
  /// compaction snapshot so definitions survive log rotation.
  std::vector<WalRecord> DefinitionRecords() const;

  /// Maintains every registered view to the post-commit database state and
  /// stamps it with `epoch`. Called by MvccDatabase under its writer lock
  /// after each committed mutation; `deltas` classifies what changed.
  void OnCommit(const Database& db, std::uint64_t epoch,
                const std::vector<RelationDelta>& deltas);

 private:
  void MaintainLocked(ivm_internal::ViewState& view, const Database& db,
                      const std::vector<RelationDelta>& deltas);
  MutationResult RecomputeLocked(ivm_internal::ViewState& view,
                                 const Database& db);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ivm_internal::ViewState>> views_;
  IvmStats stats_;
};

/// def -> durable kViewDef record (see db/wal.h).
WalRecord ViewDefinitionRecord(const ViewDefinition& def);

/// kViewDef record -> def, re-parsing the persisted definition body.
/// Fails on a non-kViewDef record or an unparseable body.
MutationResult ViewDefinitionFromRecord(const WalRecord& record,
                                        ViewDefinition* out);

/// Definitional recompute from a snapshot — what the maintained state must
/// stay bit-identical to. Used by tests and bench_e19 as the naive
/// baseline; Read().rows == RecomputeView(...).rows at every epoch is the
/// correctness contract.
ViewRead RecomputeView(const ViewDefinition& def, const Database& db,
                       std::uint64_t epoch);

}  // namespace qc::db

#endif  // QC_DB_IVM_H_
