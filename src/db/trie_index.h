#ifndef QC_DB_TRIE_INDEX_H_
#define QC_DB_TRIE_INDEX_H_

#include <cstdint>
#include <vector>

#include "db/flat_relation.h"

namespace qc::util {
class Arena;
}  // namespace qc::util

namespace qc::db {

/// Sorted path-compressed-free trie over a lexicographically sorted,
/// duplicate-free FlatRelation: level l holds one node per distinct prefix
/// of length l+1, stored as a contiguous (value, child-range) span in
/// prefix order. Children of a node are the contiguous run
/// [ChildrenBegin(l, i), ChildrenEnd(l, i)) of level l+1, and the values
/// inside any such run are strictly increasing — so per-level intersection
/// is a pointer bump plus galloping search, never a re-scan of tuple rows.
///
///   level 0:  [ v00 | v01 | v02 ]          (children of the virtual root)
///               |     |      |
///   level 1:  [ v10 v11 | v12 | v13 v14 ]  (child spans, CSR offsets)
///
/// Invariants (checked by construction from the sorted relation):
///   - values are strictly increasing within every child span;
///   - child spans partition the next level (offsets are monotone, CSR);
///   - every node at the last level corresponds to exactly one tuple.
class TrieIndex {
 public:
  TrieIndex() = default;

  /// Builds the index. `rel` must already be sorted lexicographically with
  /// duplicates removed (FlatRelation::SortLexAndDedup). `scratch`, when
  /// non-null, supplies the build's transient row-range buffers (two
  /// n-sized arrays); the built index itself never points into the arena.
  explicit TrieIndex(const FlatRelation& rel, util::Arena* scratch = nullptr);

  int levels() const { return static_cast<int>(levels_.size()); }
  std::size_t num_nodes() const { return num_nodes_; }
  bool empty() const { return levels_.empty() || levels_[0].values.empty(); }

  std::size_t LevelSize(int level) const { return levels_[level].values.size(); }

  /// Node values at `level`, contiguous in prefix order.
  const Value* Values(int level) const { return levels_[level].values.data(); }

  Value ValueAt(int level, std::int32_t node) const {
    return levels_[level].values[node];
  }

  /// Child span of `node` at `level` within level + 1. Only valid for
  /// non-leaf levels.
  std::int32_t ChildrenBegin(int level, std::int32_t node) const {
    return levels_[level].child_offsets[node];
  }
  std::int32_t ChildrenEnd(int level, std::int32_t node) const {
    return levels_[level].child_offsets[node + 1];
  }

  /// Heap + object footprint in bytes (capacity-accurate: what the vectors
  /// actually reserved, not just what they hold). The unit of the
  /// IndexCache's memory accounting.
  std::size_t MemoryBytes() const;

  /// True when the indexed relation contains the tuple `row` (levels()
  /// values): one bounded binary search per level. The flat-membership
  /// primitive behind cached semijoin probes; equivalent to SortedContains
  /// on the source relation.
  bool ContainsRow(const Value* row) const;

  /// Reconstructs the indexed relation: sorted, duplicate-free rows in
  /// lexicographic order (exactly the FlatRelation the trie was built from).
  FlatRelation ToFlat() const;

 private:
  struct Level {
    std::vector<Value> values;
    /// CSR offsets into level + 1: node i's children occupy
    /// [child_offsets[i], child_offsets[i+1]). Empty at the leaf level.
    std::vector<std::int32_t> child_offsets;
  };
  std::vector<Level> levels_;
  std::size_t num_nodes_ = 0;
};

}  // namespace qc::db

#endif  // QC_DB_TRIE_INDEX_H_
