#include "db/enumeration.h"

#include <algorithm>
#include <map>

#include "db/yannakakis.h"

namespace qc::db {

namespace {

Tuple Project(const Tuple& t, const std::vector<int>& cols) {
  Tuple out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(t[c]);
  return out;
}

}  // namespace

AcyclicEnumerator::AcyclicEnumerator(const JoinQuery& query,
                                     const Database& db) {
  std::vector<int> parent, bottom_up;
  if (!BuildJoinTree(query, &parent, &bottom_up)) return;
  const int m = static_cast<int>(query.atoms.size());
  if (m == 0) {
    valid_ = true;
    done_ = false;
    return;  // One empty answer; handled in Next().
  }
  attributes_ = query.AttributeOrder();

  // Materialize + full semijoin reduction (the linear preprocessing pass).
  std::vector<JoinResult> rel(m);
  for (int e = 0; e < m; ++e) {
    rel[e] = MaterializeAtom(query.atoms[e], db);
    rel[e].Normalize();
  }
  for (int e : bottom_up) {
    if (parent[e] >= 0) rel[parent[e]] = Semijoin(rel[parent[e]], rel[e]);
  }
  for (auto it = bottom_up.rbegin(); it != bottom_up.rend(); ++it) {
    if (parent[*it] >= 0) rel[*it] = Semijoin(rel[*it], rel[parent[*it]]);
  }

  // Root-first order.
  order_.assign(bottom_up.rbegin(), bottom_up.rend());
  nodes_.resize(m);
  for (int e = 0; e < m; ++e) {
    TreeNode& node = nodes_[e];
    node.parent = parent[e];
    node.attrs = rel[e].attributes;
    if (parent[e] >= 0) {
      const auto& pattrs = rel[parent[e]].attributes;
      for (std::size_t i = 0; i < node.attrs.size(); ++i) {
        auto it = std::find(pattrs.begin(), pattrs.end(), node.attrs[i]);
        if (it != pattrs.end()) {
          node.shared_cols.push_back(static_cast<int>(i));
          node.parent_shared_cols.push_back(
              static_cast<int>(it - pattrs.begin()));
        }
      }
    }
    node.tuples = std::move(rel[e].tuples);
    // Sort by the projection onto the shared columns, then the rest.
    std::sort(node.tuples.begin(), node.tuples.end(),
              [&node](const Tuple& a, const Tuple& b) {
                Tuple ka = Project(a, node.shared_cols);
                Tuple kb = Project(b, node.shared_cols);
                if (ka != kb) return ka < kb;
                return a < b;
              });
  }
  frames_.resize(m);
  valid_ = true;
  Reset();
}

bool AcyclicEnumerator::Descend(std::size_t level) {
  // (Re)compute the candidate range at order_[level] given its parent's
  // current tuple, and place the cursor at the start. After full reduction
  // the range is guaranteed nonempty.
  int e = order_[level];
  TreeNode& node = nodes_[e];
  Frame& frame = frames_[e];
  if (node.parent < 0) {
    frame.lo = 0;
    frame.hi = static_cast<int>(node.tuples.size());
  } else {
    const TreeNode& pnode = nodes_[node.parent];
    const Frame& pframe = frames_[node.parent];
    Tuple key = Project(pnode.tuples[pframe.cursor], node.parent_shared_cols);
    auto cmp_lo = [&node](const Tuple& t, const Tuple& k) {
      return Project(t, node.shared_cols) < k;
    };
    auto cmp_hi = [&node](const Tuple& k, const Tuple& t) {
      return k < Project(t, node.shared_cols);
    };
    auto lo = std::lower_bound(node.tuples.begin(), node.tuples.end(), key,
                               cmp_lo);
    auto hi = std::upper_bound(node.tuples.begin(), node.tuples.end(), key,
                               cmp_hi);
    frame.lo = static_cast<int>(lo - node.tuples.begin());
    frame.hi = static_cast<int>(hi - node.tuples.begin());
  }
  frame.cursor = frame.lo;
  return frame.lo < frame.hi;
}

void AcyclicEnumerator::Reset() {
  done_ = false;
  started_ = false;
}

std::optional<Tuple> AcyclicEnumerator::Next() {
  if (!valid_ || done_) return std::nullopt;
  if (order_.empty()) {
    // Zero atoms: exactly one empty answer.
    done_ = true;
    return Tuple{};
  }
  if (!started_) {
    started_ = true;
    for (std::size_t level = 0; level < order_.size(); ++level) {
      if (!Descend(level)) {
        done_ = true;  // Some relation is empty: no answers at all.
        return std::nullopt;
      }
    }
  } else {
    // Advance the deepest frame with headroom; re-descend below it.
    int level = static_cast<int>(order_.size()) - 1;
    while (level >= 0) {
      Frame& frame = frames_[order_[level]];
      if (frame.cursor + 1 < frame.hi) {
        ++frame.cursor;
        break;
      }
      --level;
    }
    if (level < 0) {
      done_ = true;
      return std::nullopt;
    }
    for (std::size_t l = level + 1; l < order_.size(); ++l) {
      if (!Descend(l)) {
        // Impossible after full reduction; fail closed if it ever happens.
        done_ = true;
        return std::nullopt;
      }
    }
  }
  // Assemble the answer over the canonical attribute order.
  Tuple answer(attributes_.size());
  for (int e : order_) {
    const TreeNode& node = nodes_[e];
    const Tuple& t = node.tuples[frames_[e].cursor];
    for (std::size_t i = 0; i < node.attrs.size(); ++i) {
      auto it = std::find(attributes_.begin(), attributes_.end(),
                          node.attrs[i]);
      answer[it - attributes_.begin()] = t[i];
    }
  }
  return answer;
}

}  // namespace qc::db
