#include "db/enumeration.h"

#include <algorithm>
#include <numeric>

#include "db/yannakakis.h"
#include "kernels/sort.h"

namespace qc::db {

namespace {

/// Compares the projection of flat row `row` onto `cols` against `key`:
/// <0, 0, >0 as in memcmp.
int CompareProjection(const Value* row, const std::vector<int>& cols,
                      const Tuple& key) {
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (row[cols[i]] != key[i]) return row[cols[i]] < key[i] ? -1 : 1;
  }
  return 0;
}

}  // namespace

AcyclicEnumerator::AcyclicEnumerator(const JoinQuery& query,
                                     const Database& db,
                                     util::Budget* budget,
                                     IndexCache* cache,
                                     util::Arena* arena)
    : budget_(budget) {
  std::vector<int> parent, bottom_up;
  if (!BuildJoinTree(query, &parent, &bottom_up)) return;
  const int m = static_cast<int>(query.atoms.size());
  if (m == 0) {
    valid_ = true;
    done_ = false;
    return;  // One empty answer; handled in Next().
  }
  attributes_ = query.AttributeOrder();

  // A trip during preprocessing leaves the enumerator invalid — a partially
  // reduced tree cannot promise constant-delay answers.
  auto tripped = [&] {
    if (budget_ == nullptr || !budget_->Stopped()) return false;
    status_ = budget_->status();
    return true;
  };

  // Materialize + full semijoin reduction (the linear preprocessing pass).
  // The normalized (sorted, deduplicated) atom projection is exactly what a
  // cached trie indexes, so a warm cache serves it back via ToFlat() with no
  // scan or sort; atoms without attributes stay on the direct path (a trie
  // cannot represent a non-empty arity-0 projection).
  std::vector<JoinResult> rel(m);
  for (int e = 0; e < m; ++e) {
    if (budget_ != nullptr && budget_->Poll()) break;
    const Atom& atom = query.atoms[e];
    std::vector<std::string> attrs = AtomAttributes(atom);
    if (cache != nullptr && !attrs.empty()) {
      IndexCache::EntryPtr entry = cache->GetOrBuild(
          atom.relation, db.RelationVersion(atom.relation),
          AtomProjectionSignature(atom, attrs), [&]() {
            IndexCache::Entry fresh;
            FlatRelation proj =
                MaterializeSortedProjection(atom, db, attrs, arena);
            fresh.no_rows = proj.empty();
            fresh.trie = TrieIndex(proj, arena);
            return fresh;
          });
      rel[e] = JoinResult::FromFlat(attrs, entry->trie.ToFlat());
    } else {
      rel[e] = MaterializeAtom(atom, db);
      rel[e].Normalize();
    }
  }
  if (tripped()) return;
  std::vector<bool> pristine(m, true);
  for (int e : bottom_up) {
    if (parent[e] >= 0) {
      rel[parent[e]] = SemijoinAgainstAtom(rel[parent[e]], rel[e],
                                           query.atoms[e], db,
                                           pristine[e] ? cache : nullptr,
                                           budget_, arena);
      pristine[parent[e]] = false;
    }
  }
  if (tripped()) return;
  for (auto it = bottom_up.rbegin(); it != bottom_up.rend(); ++it) {
    if (parent[*it] >= 0) {
      rel[*it] = SemijoinAgainstAtom(
          rel[*it], rel[parent[*it]], query.atoms[parent[*it]], db,
          pristine[parent[*it]] ? cache : nullptr, budget_, arena);
      pristine[*it] = false;
    }
  }
  if (tripped()) return;

  // Root-first order.
  order_.assign(bottom_up.rbegin(), bottom_up.rend());
  nodes_.resize(m);
  for (int e = 0; e < m; ++e) {
    if (budget_ != nullptr && budget_->Poll()) break;
    TreeNode& node = nodes_[e];
    node.parent = parent[e];
    node.attrs = rel[e].attributes;
    if (parent[e] >= 0) {
      const auto& pattrs = rel[parent[e]].attributes;
      for (std::size_t i = 0; i < node.attrs.size(); ++i) {
        auto it = std::find(pattrs.begin(), pattrs.end(), node.attrs[i]);
        if (it != pattrs.end()) {
          node.shared_cols.push_back(static_cast<int>(i));
          node.parent_shared_cols.push_back(
              static_cast<int>(it - pattrs.begin()));
        }
      }
    }
    node.rows = rel[e].ToFlat();
    // Sort by the projection onto the shared columns, then the rest:
    // index sort over flat rows, one gather. The rows are distinct (fully
    // reduced), so the shared-then-all-columns key is a strict total order
    // and the radix kernel yields the identical permutation as the
    // comparator for any row count.
    std::vector<std::uint32_t> idx(node.rows.size());
    std::iota(idx.begin(), idx.end(), 0u);
    const int arity = node.rows.arity();
    if (node.rows.size() >= kernels::kRadixMinRows && arity > 0) {
      std::vector<std::int32_t> cols;
      cols.reserve(node.shared_cols.size() + static_cast<std::size_t>(arity));
      for (int c : node.shared_cols) cols.push_back(c);
      for (int c = 0; c < arity; ++c) cols.push_back(c);
      kernels::SortRowsByColumns(node.rows.data().data(),
                                 static_cast<std::size_t>(arity),
                                 node.rows.size(), cols.data(), cols.size(),
                                 idx.data(), arena);
    } else {
      std::sort(idx.begin(), idx.end(),
                [&node](std::uint32_t a, std::uint32_t b) {
                  const Value* ra = node.rows.Row(a);
                  const Value* rb = node.rows.Row(b);
                  for (int c : node.shared_cols) {
                    if (ra[c] != rb[c]) return ra[c] < rb[c];
                  }
                  return node.rows.View(a) < node.rows.View(b);
                });
    }
    node.rows.ApplyPermutation(idx);
  }
  if (tripped()) return;
  frames_.resize(m);
  valid_ = true;
  Reset();
}

bool AcyclicEnumerator::Descend(std::size_t level) {
  // (Re)compute the candidate range at order_[level] given its parent's
  // current tuple, and place the cursor at the start. After full reduction
  // the range is guaranteed nonempty.
  int e = order_[level];
  TreeNode& node = nodes_[e];
  Frame& frame = frames_[e];
  if (node.parent < 0) {
    frame.lo = 0;
    frame.hi = static_cast<int>(node.rows.size());
  } else {
    const TreeNode& pnode = nodes_[node.parent];
    const Frame& pframe = frames_[node.parent];
    const Value* prow = pnode.rows.Row(pframe.cursor);
    Tuple& key = key_buf_;
    key.clear();
    for (int c : node.parent_shared_cols) key.push_back(prow[c]);
    // Binary search the shared-key block directly on the flat rows.
    int lo = 0, hi = static_cast<int>(node.rows.size());
    while (lo < hi) {
      int mid = lo + (hi - lo) / 2;
      if (CompareProjection(node.rows.Row(mid), node.shared_cols, key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    frame.lo = lo;
    hi = static_cast<int>(node.rows.size());
    while (lo < hi) {
      int mid = lo + (hi - lo) / 2;
      if (CompareProjection(node.rows.Row(mid), node.shared_cols, key) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    frame.hi = lo;
  }
  frame.cursor = frame.lo;
  return frame.lo < frame.hi;
}

void AcyclicEnumerator::Reset() {
  done_ = false;
  started_ = false;
}

std::optional<Tuple> AcyclicEnumerator::Next() {
  if (!valid_ || done_) return std::nullopt;
  if (budget_ != nullptr && budget_->Poll()) {
    status_ = budget_->status();
    done_ = true;
    return std::nullopt;
  }
  if (order_.empty()) {
    // Zero atoms: exactly one empty answer.
    done_ = true;
    return Tuple{};
  }
  if (!started_) {
    started_ = true;
    for (std::size_t level = 0; level < order_.size(); ++level) {
      if (!Descend(level)) {
        done_ = true;  // Some relation is empty: no answers at all.
        return std::nullopt;
      }
    }
  } else {
    // Advance the deepest frame with headroom; re-descend below it.
    int level = static_cast<int>(order_.size()) - 1;
    while (level >= 0) {
      Frame& frame = frames_[order_[level]];
      if (frame.cursor + 1 < frame.hi) {
        ++frame.cursor;
        break;
      }
      --level;
    }
    if (level < 0) {
      done_ = true;
      return std::nullopt;
    }
    for (std::size_t l = level + 1; l < order_.size(); ++l) {
      if (!Descend(l)) {
        // Impossible after full reduction; fail closed if it ever happens.
        done_ = true;
        return std::nullopt;
      }
    }
  }
  // Assemble the answer over the canonical attribute order.
  Tuple answer(attributes_.size());
  for (int e : order_) {
    const TreeNode& node = nodes_[e];
    const Value* t = node.rows.Row(frames_[e].cursor);
    for (std::size_t i = 0; i < node.attrs.size(); ++i) {
      auto it = std::find(attributes_.begin(), attributes_.end(),
                          node.attrs[i]);
      answer[it - attributes_.begin()] = t[i];
    }
  }
  // Charge the row being delivered: with a row limit of R, exactly R answers
  // stream out and the (R+1)-th call observes the trip at its entry poll.
  if (budget_ != nullptr && budget_->ChargeRows(1)) {
    status_ = budget_->status();
  }
  return answer;
}

}  // namespace qc::db
